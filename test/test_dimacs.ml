(* DIMACS parsing, rendering and miter export. *)

let test_parse_basic () =
  let text = "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n" in
  match Sat.Dimacs.parse text with
  | Ok (3, [ [ 1; -2 ]; [ 2; 3 ] ]) -> ()
  | Ok (v, cs) -> Alcotest.failf "wrong parse: %d vars %d clauses" v (List.length cs)
  | Error e -> Alcotest.failf "parse error: %s" e

let test_parse_multiline_clause () =
  (* A clause may span lines; 0 terminates. *)
  let text = "p cnf 4 1\n1 2\n3 4 0\n" in
  match Sat.Dimacs.parse text with
  | Ok (4, [ [ 1; 2; 3; 4 ] ]) -> ()
  | _ -> Alcotest.fail "expected one 4-literal clause"

let test_parse_errors () =
  let bad text =
    match Sat.Dimacs.parse text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected error for %S" text
  in
  bad "";
  bad "1 2 0\n";
  bad "p cnf x 1\n";
  bad "p cnf 2 1\n1 5 0\n";
  bad "p cnf 2 1\n1 two 0\n"

let test_roundtrip () =
  let clauses = [ [ 1; -2 ]; [ 3 ]; [ -1; -3; 2 ] ] in
  let text = Sat.Dimacs.to_string ~nvars:3 clauses in
  match Sat.Dimacs.parse text with
  | Ok (3, cs) -> Alcotest.(check bool) "same clauses" true (cs = clauses)
  | _ -> Alcotest.fail "roundtrip failed"

(* Write -> parse -> write must reproduce the exact bytes: to_string is
   canonical, so a formula that survives one round survives any number. *)
let prop_write_parse_write_identity =
  QCheck.Test.make ~name:"write->parse->write byte identity" ~count:100
    Util.arb_seed (fun seed ->
      let rng = Sim.Rng.create ~seed:(Int64.of_int seed) in
      let bits n = Int64.to_int (Sim.Rng.next64 rng) land ((1 lsl n) - 1) in
      let nvars = 1 + bits 4 in
      let nclauses = bits 4 in
      let clauses =
        List.init nclauses (fun _ ->
            let len = 1 + bits 2 in
            List.init len (fun _ ->
                let v = 1 + (bits 8 mod nvars) in
                if bits 1 = 0 then v else -v))
      in
      let text = Sat.Dimacs.to_string ~nvars clauses in
      match Sat.Dimacs.parse text with
      | Error e -> QCheck.Test.fail_reportf "reparse failed: %s" e
      | Ok (nvars', clauses') ->
          let text' = Sat.Dimacs.to_string ~nvars:nvars' clauses' in
          text = text')

let test_parse_whitespace () =
  (* Tabs and CRLF line endings are legal DIMACS token separators. *)
  let text = "c\tcomment\r\np cnf 3\t2\r\n1\t-2 0\r\n2 \t 3 0\r\n" in
  match Sat.Dimacs.parse text with
  | Ok (3, [ [ 1; -2 ]; [ 2; 3 ] ]) -> ()
  | Ok (v, cs) ->
      Alcotest.failf "wrong parse: %d vars %d clauses" v (List.length cs)
  | Error e -> Alcotest.failf "parse error: %s" e

let test_load_and_solve () =
  let s = Sat.Solver.create () in
  (match Sat.Dimacs.load s "p cnf 2 3\n1 2 0\n-1 0\n-2 0\n" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "load: %s" e);
  Alcotest.(check bool) "unsat" true (Sat.Solver.solve s = Sat.Solver.Unsat)

let test_of_miter_equivalent () =
  (* Equivalent pair: the exported formula must be UNSAT. *)
  let g = Gen.Arith.adder ~bits:4 in
  let m = Aig.Miter.build g (Opt.Xorflip.run g) in
  let text = Sat.Dimacs.of_miter m in
  let s = Sat.Solver.create () in
  (match Sat.Dimacs.load s text with
  | Ok true -> Alcotest.(check bool) "unsat" true (Sat.Solver.solve s = Sat.Solver.Unsat)
  | Ok false -> () (* trivially unsat is also a proof *)
  | Error e -> Alcotest.failf "load: %s" e)

let test_of_miter_inequivalent () =
  let g = Gen.Arith.adder ~bits:4 in
  let bad = Aig.Network.copy g in
  Aig.Network.set_po bad 2 (Aig.Lit.neg (Aig.Network.po bad 2));
  let m = Aig.Miter.build g bad in
  let text = Sat.Dimacs.of_miter m in
  let s = Sat.Solver.create () in
  match Sat.Dimacs.load s text with
  | Ok true -> (
      match Sat.Solver.solve s with
      | Sat.Solver.Sat ->
          (* The model restricted to the PIs must be a genuine CEX. *)
          let cex =
            Array.init (Aig.Network.num_pis m) (fun i ->
                Sat.Solver.model_value s (Aig.Network.pi m i))
          in
          Alcotest.(check bool) "model is a cex" true
            (List.exists (fun po -> Sim.Cex.check m cex po)
               (List.init (Aig.Network.num_pos m) Fun.id))
      | _ -> Alcotest.fail "expected SAT")
  | Ok false -> Alcotest.fail "unexpected trivial unsat"
  | Error e -> Alcotest.failf "load: %s" e

let prop_export_matches_sweep =
  QCheck.Test.make ~name:"of_miter verdict matches the sweeping checker"
    ~count:20 Util.arb_seed (fun seed ->
      Util.with_pool (fun pool ->
          let g1 = Util.random_network ~pis:5 ~nodes:30 ~pos:3 seed in
          let g2 =
            if seed mod 2 = 0 then Opt.Xorflip.run g1
            else Util.random_network ~pis:5 ~nodes:30 ~pos:3 (seed + 2)
          in
          let m = Aig.Miter.build g1 g2 in
          let s = Sat.Solver.create () in
          let dimacs_unsat =
            match Sat.Dimacs.load s (Sat.Dimacs.of_miter m) with
            | Ok false -> true
            | Ok true -> Sat.Solver.solve s = Sat.Solver.Unsat
            | Error _ -> false
          in
          let sweep_eq = fst (Sat.Sweep.check ~pool m) = Sat.Sweep.Equivalent in
          dimacs_unsat = sweep_eq))

let () =
  Alcotest.run "dimacs"
    [
      ( "unit",
        [
          Alcotest.test_case "parse basic" `Quick test_parse_basic;
          Alcotest.test_case "multiline clause" `Quick test_parse_multiline_clause;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "whitespace" `Quick test_parse_whitespace;
          Alcotest.test_case "load+solve" `Quick test_load_and_solve;
          Alcotest.test_case "miter equivalent" `Quick test_of_miter_equivalent;
          Alcotest.test_case "miter inequivalent" `Quick test_of_miter_inequivalent;
        ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [ prop_export_matches_sweep; prop_write_parse_write_identity ] );
    ]
