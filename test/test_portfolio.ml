(* Portfolio checker (Conformal stand-in): engine selection and
   correctness. *)

let check ?bdd_node_limit ?bdd_step_limit ?mode m =
  Util.with_pool (fun pool ->
      Simsweep.Portfolio.check ?bdd_node_limit ?bdd_step_limit ?mode ~pool m)

let test_bdd_wins_on_voter () =
  (* Symmetric control logic: the BDD engine should answer first — the
     Table II crossover where Conformal beats the GPU engine on voter. *)
  let g = Gen.Control.voter ~n:15 in
  let m = Aig.Miter.build g (Opt.Resyn.light g) in
  let r = check m in
  Alcotest.(check bool) "proved" true (r.Simsweep.Portfolio.outcome = Simsweep.Engine.Proved);
  match r.Simsweep.Portfolio.winner with
  | Some Simsweep.Portfolio.Bdd_engine -> ()
  | w ->
      Alcotest.failf "expected bdd winner, got %s"
        (match w with Some e -> Simsweep.Portfolio.engine_name e | None -> "none")

let test_sim_engine_on_multiplier () =
  (* Multipliers blow the BDD budget; the simulation engine takes over. *)
  let g = Gen.Arith.multiplier ~bits:6 in
  let m = Aig.Miter.build g (Opt.Resyn.resyn2 g) in
  let r = check ~bdd_node_limit:1000 m in
  Alcotest.(check bool) "proved" true (r.Simsweep.Portfolio.outcome = Simsweep.Engine.Proved);
  match r.Simsweep.Portfolio.winner with
  | Some Simsweep.Portfolio.Sim_engine | Some Simsweep.Portfolio.Sat_engine -> ()
  | _ -> Alcotest.fail "expected a non-bdd winner"

let test_disproof () =
  let g = Gen.Arith.adder ~bits:5 in
  let bad = Aig.Network.copy g in
  Aig.Network.set_po bad 2 (Aig.Lit.neg (Aig.Network.po bad 2));
  let m = Aig.Miter.build g bad in
  let r = check m in
  match r.Simsweep.Portfolio.outcome with
  | Simsweep.Engine.Disproved (cex, po) ->
      Alcotest.(check bool) "cex valid" true (Sim.Cex.check m cex po)
  | _ -> Alcotest.fail "expected disproof"

let test_engine_names () =
  Alcotest.(check string) "bdd" "bdd" (Simsweep.Portfolio.engine_name Simsweep.Portfolio.Bdd_engine);
  Alcotest.(check string) "sim" "sim" (Simsweep.Portfolio.engine_name Simsweep.Portfolio.Sim_engine);
  Alcotest.(check string) "sat" "sat" (Simsweep.Portfolio.engine_name Simsweep.Portfolio.Sat_engine)

(* Telemetry presence invariants: which stats ride along is determined by
   which engine produced the answer (BDD runs first and carries no
   engine/sat telemetry; the SAT fallback only reports when it ran). *)
let check_stats_invariants r =
  let open Simsweep.Portfolio in
  match r.winner with
  | Some Bdd_engine ->
      Alcotest.(check bool) "bdd: no engine stats" true (r.engine_stats = None);
      Alcotest.(check bool) "bdd: no sat stats" true (r.sat_stats = None)
  | Some Sim_engine ->
      Alcotest.(check bool) "sim: engine stats present" true (r.engine_stats <> None);
      Alcotest.(check bool) "sim: no sat stats" true (r.sat_stats = None)
  | Some Sat_engine ->
      Alcotest.(check bool) "sat: engine stats present" true (r.engine_stats <> None);
      Alcotest.(check bool) "sat: sat stats present" true (r.sat_stats <> None)
  | Some (Extra_engine name) ->
      Alcotest.(check bool) "extra: stats recorded" true
        (List.mem_assoc name r.extra_stats)
  | None ->
      Alcotest.(check bool) "undecided: engine stats present" true
        (r.engine_stats <> None)

let test_winner_outcome_agreement_proved () =
  (* A conclusive outcome always names a winner; Undecided never does. *)
  let g = Gen.Arith.adder ~bits:5 in
  let m = Aig.Miter.build g (Opt.Resyn.light g) in
  let r = check m in
  Alcotest.(check bool) "proved" true (r.Simsweep.Portfolio.outcome = Simsweep.Engine.Proved);
  Alcotest.(check bool) "winner named" true (r.Simsweep.Portfolio.winner <> None);
  Alcotest.(check bool) "time recorded" true (r.Simsweep.Portfolio.time >= 0.0);
  check_stats_invariants r

let test_winner_outcome_agreement_disproved () =
  let g = Gen.Arith.multiplier ~bits:4 in
  let bad = Aig.Network.copy g in
  Aig.Network.set_po bad 0 (Aig.Lit.neg (Aig.Network.po bad 0));
  let m = Aig.Miter.build g bad in
  let r = check m in
  (match r.Simsweep.Portfolio.outcome with
  | Simsweep.Engine.Disproved (cex, po) ->
      Alcotest.(check bool) "cex replays" true (Sim.Cex.check m cex po)
  | _ -> Alcotest.fail "expected disproof");
  Alcotest.(check bool) "winner named" true (r.Simsweep.Portfolio.winner <> None);
  check_stats_invariants r

let test_bdd_budget_blowup_falls_through () =
  (* A one-node BDD budget blows up on anything non-trivial: the portfolio
     must still answer, via the sim engine or the SAT fallback, and must
     carry their telemetry. *)
  let g = Gen.Arith.multiplier ~bits:5 in
  let m = Aig.Miter.build g (Opt.Resyn.light g) in
  let r = check ~bdd_node_limit:1 m in
  Alcotest.(check bool) "proved" true (r.Simsweep.Portfolio.outcome = Simsweep.Engine.Proved);
  (match r.Simsweep.Portfolio.winner with
  | Some Simsweep.Portfolio.Bdd_engine -> Alcotest.fail "bdd cannot win under a 1-node budget"
  | Some _ -> ()
  | None -> Alcotest.fail "expected a winner");
  Alcotest.(check bool) "engine stats present after blowup" true
    (r.Simsweep.Portfolio.engine_stats <> None);
  check_stats_invariants r

let test_bdd_budget_blowup_disproof () =
  let g = Gen.Arith.multiplier ~bits:4 in
  let bad = Aig.Network.copy g in
  Aig.Network.set_po bad 1 (Aig.Lit.neg (Aig.Network.po bad 1));
  let m = Aig.Miter.build g bad in
  let r = check ~bdd_node_limit:1 m in
  (match r.Simsweep.Portfolio.outcome with
  | Simsweep.Engine.Disproved (cex, po) ->
      Alcotest.(check bool) "cex replays" true (Sim.Cex.check m cex po)
  | _ -> Alcotest.fail "expected disproof");
  check_stats_invariants r

let test_sequential_result_fields () =
  (* Sequential runs: no cancel latency, mode echoed back, the winner's
     wall-clock is reported, the BDD ran within its step budget. *)
  let g = Gen.Arith.adder ~bits:5 in
  let m = Aig.Miter.build g (Opt.Resyn.light g) in
  let r = check ~mode:`Sequential m in
  let open Simsweep.Portfolio in
  Alcotest.(check bool) "sequential mode" true (r.mode_used = `Sequential);
  Alcotest.(check bool) "no cancel latency" true (r.cancel_latency = None);
  Alcotest.(check bool) "no bdd timeout" false r.bdd_timeout;
  Alcotest.(check bool) "per-engine times recorded" true (r.per_engine_time <> []);
  List.iter
    (fun (_, t) -> Alcotest.(check bool) "time non-negative" true (t >= 0.0))
    r.per_engine_time;
  match r.winner with
  | Some w ->
      Alcotest.(check bool) "winner has a time" true
        (List.mem_assoc w r.per_engine_time)
  | None -> Alcotest.fail "expected a winner"

let test_bdd_step_budget_timeout () =
  (* A 1-step BDD budget: the run must fall through to another engine and
     flag the timeout (distinct from a node-budget blow-up). *)
  let g = Gen.Arith.multiplier ~bits:4 in
  let m = Aig.Miter.build g (Opt.Resyn.light g) in
  let r = check ~bdd_step_limit:1 m in
  let open Simsweep.Portfolio in
  Alcotest.(check bool) "proved" true (r.outcome = Simsweep.Engine.Proved);
  Alcotest.(check bool) "bdd timeout flagged" true r.bdd_timeout;
  (match r.winner with
  | Some Bdd_engine -> Alcotest.fail "bdd cannot win under a 1-step budget"
  | Some _ -> ()
  | None -> Alcotest.fail "expected a winner");
  check_stats_invariants r

let prop_stats_invariants =
  QCheck.Test.make ~name:"stats presence matches winner" ~count:12 Util.arb_seed
    (fun seed ->
      let g1 = Util.random_network ~pis:5 ~nodes:40 ~pos:3 seed in
      let g2 =
        if seed mod 2 = 0 then Opt.Resyn.light g1
        else Util.random_network ~pis:5 ~nodes:40 ~pos:3 (seed + 9)
      in
      let r = check ~bdd_node_limit:(if seed mod 3 = 0 then 1 else 1 lsl 20)
          (Aig.Miter.build g1 g2) in
      check_stats_invariants r;
      (match r.Simsweep.Portfolio.outcome with
      | Simsweep.Engine.Proved | Simsweep.Engine.Disproved _ ->
          r.Simsweep.Portfolio.winner <> None
      | Simsweep.Engine.Undecided -> r.Simsweep.Portfolio.winner = None))

let prop_agrees_with_brute =
  QCheck.Test.make ~name:"portfolio agrees with brute force" ~count:15
    Util.arb_seed (fun seed ->
      let g1 = Util.random_network ~pis:5 ~nodes:35 ~pos:3 seed in
      let g2 =
        if seed mod 2 = 0 then Opt.Xorflip.run g1
        else Util.random_network ~pis:5 ~nodes:35 ~pos:3 (seed + 3)
      in
      let m = Aig.Miter.build g1 g2 in
      let expect = Util.equivalent_brute g1 g2 in
      let r = check m in
      match r.Simsweep.Portfolio.outcome with
      | Simsweep.Engine.Proved -> expect
      | Simsweep.Engine.Disproved (cex, po) -> (not expect) && Sim.Cex.check m cex po
      | Simsweep.Engine.Undecided -> false)

let () =
  Alcotest.run "portfolio"
    [
      ( "unit",
        [
          Alcotest.test_case "bdd wins voter" `Quick test_bdd_wins_on_voter;
          Alcotest.test_case "sim engine on multiplier" `Quick test_sim_engine_on_multiplier;
          Alcotest.test_case "disproof" `Quick test_disproof;
          Alcotest.test_case "names" `Quick test_engine_names;
          Alcotest.test_case "proved agreement" `Quick test_winner_outcome_agreement_proved;
          Alcotest.test_case "disproved agreement" `Quick
            test_winner_outcome_agreement_disproved;
          Alcotest.test_case "bdd blowup proof" `Quick test_bdd_budget_blowup_falls_through;
          Alcotest.test_case "bdd blowup disproof" `Quick test_bdd_budget_blowup_disproof;
          Alcotest.test_case "sequential result fields" `Quick
            test_sequential_result_fields;
          Alcotest.test_case "bdd step budget" `Quick test_bdd_step_budget_timeout;
        ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [ prop_agrees_with_brute; prop_stats_invariants ] );
    ]
