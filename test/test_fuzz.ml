(* Differential fuzzing subsystem: surgery edits, brute oracle, fault
   injection, case generation determinism, oracle failure detection,
   shrinking, and the end-to-end self-test. *)

let prop_brute_matches_reference =
  QCheck.Test.make ~name:"brute check_miter matches reference brute force" ~count:40
    Util.arb_seed (fun seed ->
      let g1 = Util.random_network ~pis:6 ~nodes:40 ~pos:3 seed in
      let g2 =
        if seed mod 3 = 0 then Opt.Xorflip.run g1
        else Util.random_network ~pis:6 ~nodes:40 ~pos:3 (seed + 11)
      in
      let m = Aig.Miter.build g1 g2 in
      match Fuzz.Brute.check_miter m with
      | `Equivalent -> Util.solved_brute m
      | `Inequivalent (cex, po) -> (not (Util.solved_brute m)) && Sim.Cex.check m cex po)

let prop_brute_equivalent =
  QCheck.Test.make ~name:"brute equivalent matches reference" ~count:40 Util.arb_seed
    (fun seed ->
      let g1 = Util.random_network ~pis:5 ~nodes:30 ~pos:4 seed in
      let g2 =
        if seed mod 2 = 0 then Opt.Rewrite.run g1
        else Util.random_network ~pis:5 ~nodes:30 ~pos:4 (seed + 7)
      in
      Fuzz.Brute.equivalent g1 g2 = Util.equivalent_brute g1 g2)

let test_surgery_substitute () =
  (* Forwarding a node to constant false must equal evaluating the
     network with that node's function forced to 0. *)
  let g = Util.random_network ~pis:5 ~nodes:30 ~pos:2 42 in
  let some_and = ref (-1) in
  Aig.Network.iter_ands g (fun n -> if !some_and < 0 then some_and := n);
  let h = Fuzz.Surgery.substitute g ~node:!some_and ~by:Aig.Lit.const_false in
  Alcotest.(check (result unit string)) "well-formed" (Ok ()) (Aig.Network.check h);
  Alcotest.(check int) "pis preserved" (Aig.Network.num_pis g) (Aig.Network.num_pis h);
  Alcotest.(check int) "pos preserved" (Aig.Network.num_pos g) (Aig.Network.num_pos h)

let test_surgery_identity () =
  let g = Util.random_network ~pis:6 ~nodes:50 ~pos:4 7 in
  let h = Fuzz.Surgery.rewrite g ~edit_of:(fun _ -> Fuzz.Surgery.Keep) in
  Alcotest.(check bool) "identity rewrite equivalent" true (Util.equivalent_brute g h)

let test_surgery_restrict () =
  let g = Util.random_network ~pis:6 ~nodes:50 ~pos:4 19 in
  let h = Fuzz.Surgery.restrict_pos g ~keep:[ 2 ] in
  Alcotest.(check int) "one po" 1 (Aig.Network.num_pos h);
  Alcotest.(check bool) "no bigger" true (Aig.Network.num_ands h <= Aig.Network.num_ands g);
  Alcotest.(check (result unit string)) "well-formed" (Ok ()) (Aig.Network.check h)

let test_mutate_changes_function () =
  (* inject is brute-verified: the mutant must differ from the base. *)
  let rng = Sim.Rng.create ~seed:99L in
  for _ = 1 to 10 do
    let g = Util.random_network ~pis:6 ~nodes:40 ~pos:3 (Sim.Rng.int rng 10_000) in
    let fault, mutant = Fuzz.Gencase.inject rng ~left:g g in
    ignore (Fuzz.Mutate.describe fault);
    Alcotest.(check bool) "mutant differs" false (Util.equivalent_brute g mutant);
    Alcotest.(check int) "interface preserved" (Aig.Network.num_pis g)
      (Aig.Network.num_pis mutant)
  done

let test_gencase_deterministic () =
  for id = 0 to 7 do
    let a = Fuzz.Gencase.generate ~run_seed:123L ~id in
    let b = Fuzz.Gencase.generate ~run_seed:123L ~id in
    Alcotest.(check string) "descr" a.Fuzz.Gencase.descr b.Fuzz.Gencase.descr;
    Alcotest.(check string) "same miter"
      (Aig.Aiger_io.to_string a.Fuzz.Gencase.miter)
      (Aig.Aiger_io.to_string b.Fuzz.Gencase.miter)
  done

let test_gencase_expected_matches_brute () =
  for id = 0 to 11 do
    let c = Fuzz.Gencase.generate ~run_seed:77L ~id in
    Alcotest.(check (result unit string)) "well-formed" (Ok ())
      (Aig.Network.check c.Fuzz.Gencase.miter);
    let brute =
      match Fuzz.Brute.check_miter c.Fuzz.Gencase.miter with
      | `Equivalent -> `Equivalent
      | `Inequivalent _ -> `Inequivalent
    in
    Alcotest.(check bool)
      (Printf.sprintf "case %d (%s) expected verdict" id c.Fuzz.Gencase.descr)
      true
      (brute = (c.Fuzz.Gencase.expected :> [ `Equivalent | `Inequivalent ]))
  done

let liar = { Fuzz.Oracle.name = "liar"; run = (fun ~pool:_ _ -> Fuzz.Oracle.V_equivalent) }

let test_oracle_clean_case () =
  Util.with_pool @@ fun pool ->
  let g = Util.random_network ~pis:6 ~nodes:40 ~pos:3 5 in
  let m = Aig.Miter.build g (Opt.Resyn.light g) in
  let o = Fuzz.Oracle.run ~expected:`Equivalent ~certify:true ~pool m in
  Alcotest.(check int) "no failures" 0 (List.length o.Fuzz.Oracle.failures);
  Alcotest.(check bool) "brute participated" true
    (List.mem_assoc "brute" o.Fuzz.Oracle.verdicts)

let test_oracle_catches_liar () =
  Util.with_pool @@ fun pool ->
  let rng = Sim.Rng.create ~seed:5L in
  let g = Util.random_network ~pis:7 ~nodes:60 ~pos:4 31 in
  let _, mutant = Fuzz.Gencase.inject rng ~left:g g in
  let m = Aig.Miter.build g mutant in
  let engines = Fuzz.Oracle.default_engines () @ [ liar ] in
  let o = Fuzz.Oracle.run ~engines ~pool m in
  let caught =
    List.exists
      (function
        | Fuzz.Oracle.Disagreement { equiv; inequiv } ->
            List.mem "liar" equiv && List.mem "brute" inequiv
        | _ -> false)
      o.Fuzz.Oracle.failures
  in
  Alcotest.(check bool) "liar flagged against brute" true caught

let test_oracle_catches_bad_cex () =
  Util.with_pool @@ fun pool ->
  let g = Util.random_network ~pis:6 ~nodes:40 ~pos:3 8 in
  let m = Aig.Miter.build g (Aig.Network.copy g) in
  (* An engine claiming inequivalence with a CEX that cannot replay. *)
  let bogus =
    {
      Fuzz.Oracle.name = "bogus";
      run =
        (fun ~pool:_ m ->
          Fuzz.Oracle.V_inequivalent (Array.make (Aig.Network.num_pis m) false, 0));
    }
  in
  let o =
    Fuzz.Oracle.run ~engines:(Fuzz.Oracle.default_engines () @ [ bogus ]) ~pool m
  in
  let caught =
    List.exists
      (function Fuzz.Oracle.Bad_cex { engine = "bogus"; _ } -> true | _ -> false)
      o.Fuzz.Oracle.failures
  in
  Alcotest.(check bool) "bogus cex flagged" true caught

let test_shrink_keeps_failure () =
  let rng = Sim.Rng.create ~seed:17L in
  let g = Util.random_network ~pis:8 ~nodes:120 ~pos:6 55 in
  let _, mutant = Fuzz.Gencase.inject rng ~left:g g in
  let m = Aig.Miter.build g mutant in
  let fails g =
    match Fuzz.Brute.check_miter g with `Inequivalent _ -> true | `Equivalent -> false
  in
  let shrunk, evals = Fuzz.Shrink.shrink ~budget:300 ~fails m in
  Alcotest.(check bool) "still failing" true (fails shrunk);
  Alcotest.(check bool) "not bigger" true
    (Aig.Network.num_ands shrunk <= Aig.Network.num_ands m);
  Alcotest.(check bool) "spent bounded evals" true (evals <= 300);
  Alcotest.(check (result unit string)) "well-formed" (Ok ())
    (Aig.Network.check shrunk)

let test_shrink_noop_on_passing () =
  let g = Util.random_network ~pis:5 ~nodes:30 ~pos:2 3 in
  let m = Aig.Miter.build g (Aig.Network.copy g) in
  let shrunk, evals = Fuzz.Shrink.shrink ~fails:(fun _ -> false) m in
  Alcotest.(check int) "no evals" 0 evals;
  Alcotest.(check bool) "unchanged" true (shrunk == m)

let run_config cases seed =
  {
    Fuzz.Runner.default_config with
    Fuzz.Runner.seed;
    cases;
    out_dir = Filename.concat (Filename.get_temp_dir_name ()) "simsweep-fuzz-test";
    certify_every = 5;
  }

let test_runner_deterministic () =
  Util.with_pool @@ fun pool ->
  let collect () =
    let lines = ref [] in
    let summary =
      Fuzz.Runner.run ~log:(fun l -> lines := l :: !lines) ~pool (run_config 6 42L)
    in
    (List.rev !lines, summary)
  in
  let l1, s1 = collect () in
  let l2, s2 = collect () in
  Alcotest.(check (list string)) "identical verdict logs" l1 l2;
  Alcotest.(check int) "no failures" 0 s1.Fuzz.Runner.failed_cases;
  Alcotest.(check int) "same failures" s1.Fuzz.Runner.failed_cases
    s2.Fuzz.Runner.failed_cases

let test_runner_flags_liar () =
  Util.with_pool @@ fun pool ->
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "simsweep-fuzz-liar" in
  let config =
    { (run_config 4 7L) with Fuzz.Runner.out_dir = dir; shrink_budget = 150 }
  in
  let summary = Fuzz.Runner.run ~extra_engines:[ liar ] ~pool config in
  (* Only the mutated (inequivalent) cases expose the liar. *)
  let expected_failures =
    let n = ref 0 in
    for id = 0 to config.Fuzz.Runner.cases - 1 do
      let c = Fuzz.Gencase.generate ~run_seed:config.Fuzz.Runner.seed ~id in
      if c.Fuzz.Gencase.expected = `Inequivalent then incr n
    done;
    !n
  in
  Alcotest.(check int) "each inequivalent case failed" expected_failures
    summary.Fuzz.Runner.failed_cases;
  List.iter
    (fun r ->
      Alcotest.(check bool) "repro file exists" true (Sys.file_exists r.Fuzz.Report.path);
      (* The artifact must parse and still disagree with the liar. *)
      let g = Aig.Aiger_io.read_file r.Fuzz.Report.path in
      match Fuzz.Brute.check_miter g with
      | `Inequivalent _ -> ()
      | `Equivalent -> Alcotest.fail "repro lost the inequivalence")
    summary.Fuzz.Runner.repros

let test_self_test () =
  Util.with_pool @@ fun pool ->
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "simsweep-fuzz-self" in
  match Fuzz.Runner.self_test ~pool ~out_dir:dir ~seed:1L () with
  | Error msg -> Alcotest.fail msg
  | Ok repro ->
      Alcotest.(check bool) "shrunk to <= 20%" true
        (repro.Fuzz.Report.shrunk_ands * 5 <= repro.Fuzz.Report.original_ands);
      Alcotest.(check bool) "repro written" true (Sys.file_exists repro.Fuzz.Report.path)

let () =
  (* The oracle's shard engine re-execs this test binary as its workers. *)
  Shard.Worker.maybe_become_worker ();
  Alcotest.run "fuzz"
    [
      ( "surgery",
        [
          Alcotest.test_case "substitute" `Quick test_surgery_substitute;
          Alcotest.test_case "identity rewrite" `Quick test_surgery_identity;
          Alcotest.test_case "restrict pos" `Quick test_surgery_restrict;
        ] );
      ( "generator",
        [
          Alcotest.test_case "mutants change function" `Quick test_mutate_changes_function;
          Alcotest.test_case "deterministic" `Quick test_gencase_deterministic;
          Alcotest.test_case "expected matches brute" `Quick
            test_gencase_expected_matches_brute;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "clean case" `Quick test_oracle_clean_case;
          Alcotest.test_case "catches liar" `Quick test_oracle_catches_liar;
          Alcotest.test_case "catches bad cex" `Quick test_oracle_catches_bad_cex;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "keeps failure" `Quick test_shrink_keeps_failure;
          Alcotest.test_case "noop on passing" `Quick test_shrink_noop_on_passing;
        ] );
      ( "runner",
        [
          Alcotest.test_case "deterministic" `Slow test_runner_deterministic;
          Alcotest.test_case "flags liar" `Slow test_runner_flags_liar;
          Alcotest.test_case "self test" `Slow test_self_test;
        ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [ prop_brute_matches_reference; prop_brute_equivalent ] );
    ]
