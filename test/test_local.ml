(* Local function checking (Algorithm 2): soundness of every merge it
   reports, behaviour on SDC-induced mismatches, buffer flushing. *)

let make_classes pool g seed =
  let rng = Sim.Rng.create ~seed in
  let sigs = Sim.Psim.run g ~nwords:4 ~rng ~pool ~embed:[] in
  Sim.Eclass.of_sigs g sigs ()

let run_pass ?(cfg = Simsweep.Config.default) ?(pass = Cuts.Criteria.Fanout_first) g classes =
  Util.with_pool (fun pool ->
      let stats = Simsweep.Exhaustive.new_stats () in
      let arena = Simsweep.Arena.create ~words:cfg.Simsweep.Config.memory_words in
      Simsweep.Local.run_pass cfg ~pass ~pool ~arena ~stats g classes)

let test_proves_xor_pair () =
  (* Two XOR decompositions deep inside a shared cone: a common cut of the
     pair proves them without touching the PIs. *)
  let g = Aig.Network.create () in
  let pis = Array.init 10 (fun _ -> Aig.Network.add_pi g) in
  (* Shared lower structure. *)
  let f = Aig.Network.add_and g pis.(0) pis.(1) in
  let h = Aig.Network.add_and g pis.(2) (Aig.Lit.neg pis.(3)) in
  let x1 = Aig.Network.add_xor g f h in
  let u = Aig.Network.add_and g f (Aig.Lit.neg h) in
  let v = Aig.Network.add_and g (Aig.Lit.neg f) h in
  let x2 = Aig.Lit.neg (Aig.Network.add_and g (Aig.Lit.neg u) (Aig.Lit.neg v)) in
  Aig.Network.add_po g x1;
  Aig.Network.add_po g x2;
  Util.with_pool (fun pool ->
      let classes = make_classes pool g 7L in
      let result = run_pass g classes in
      (* The pair (node x1, node x2) must be provable locally. *)
      let proved_x2 =
        List.exists
          (fun (m, target) ->
            m = Aig.Lit.node x2
            && Aig.Lit.node target = Aig.Lit.node x1
            && Aig.Lit.is_compl target = Aig.Lit.is_compl x2)
          result.Simsweep.Local.proved
      in
      Alcotest.(check bool) "x2 proved against x1" true proved_x2)

let prop_merges_sound =
  QCheck.Test.make ~name:"every local merge is functionally correct" ~count:30
    Util.arb_seed (fun seed ->
      Util.with_pool (fun pool ->
          let g0 = Util.random_network ~pis:7 ~nodes:50 ~pos:4 seed in
          let g = Aig.Miter.build g0 (Opt.Xorflip.run g0) in
          if Aig.Network.num_pis g > 16 then true
          else begin
            let classes = make_classes pool g (Int64.of_int seed) in
            let result = run_pass g classes in
            List.for_all
              (fun (m, target) ->
                let tm = Util.global_tt g (Aig.Lit.make m false) in
                let tt = Util.global_tt g target in
                Bv.Tt.equal tm tt)
              result.Simsweep.Local.proved
          end))

let test_sdc_inconclusive () =
  (* Paper Fig. 2 flavour: two nodes whose local functions differ on a cut
     only at SDC patterns; that cut must be inconclusive rather than a
     disproof, and the pass must simply not report the pair. *)
  let g = Aig.Network.create () in
  let x = Aig.Network.add_pi g and y = Aig.Network.add_pi g and z = Aig.Network.add_pi g in
  let n1 = Aig.Network.add_or g x y in
  let n2 = Aig.Network.add_and g y z in
  (* n3 = n1 & n2; the cut {n1, n2} has SDC (n1=0, n2=1). *)
  let n3 = Aig.Network.add_and g n1 n2 in
  (* m = y & z = n2, and also m = n3 | (y & z & !x)… keep it simple:
     n3 = n1 & n2 = (x|y) & y & z = y & z = n2 globally! *)
  Aig.Network.add_po g n3;
  Aig.Network.add_po g n2;
  Util.with_pool (fun pool ->
      let classes = make_classes pool g 99L in
      (* n3 and n2 simulate identically (they are equal): they share a
         class, and the local pass may or may not prove them depending on
         the cut; what must NOT happen is a wrong merge. *)
      let result = run_pass g classes in
      List.iter
        (fun (m, target) ->
          let tm = Util.global_tt g (Aig.Lit.make m false) in
          let tt = Util.global_tt g target in
          Alcotest.(check bool) "sound under SDCs" true (Bv.Tt.equal tm tt))
        result.Simsweep.Local.proved)

let test_buffer_flush () =
  (* A tiny buffer forces interleaved flushing (Algorithm 2 lines 13-15);
     results must match a huge buffer. *)
  let g0 = Gen.Arith.adder ~bits:6 in
  let g = Aig.Miter.build g0 (Opt.Xorflip.run g0) in
  Util.with_pool (fun pool ->
      let classes = make_classes pool g 3L in
      let run cap =
        let cfg = { Simsweep.Config.default with cut_buffer_capacity = cap } in
        let stats = Simsweep.Exhaustive.new_stats () in
        let arena =
          Simsweep.Arena.create ~words:cfg.Simsweep.Config.memory_words
        in
        let r =
          Simsweep.Local.run_pass cfg ~pass:Cuts.Criteria.Fanout_first ~pool
            ~arena ~stats g classes
        in
        List.sort compare r.Simsweep.Local.proved
      in
      Alcotest.(check bool) "tiny buffer = big buffer" true (run 2 = run 100000))

let test_const_candidates () =
  (* A node that is constant false but structurally alive: local checking
     proves it against the constant. *)
  let g = Aig.Network.create () in
  let a = Aig.Network.add_pi g and b = Aig.Network.add_pi g in
  let u = Aig.Network.add_and g a b in
  let v = Aig.Network.add_and g a (Aig.Lit.neg b) in
  (* u & v = a & b & !b = 0, structurally non-trivial. *)
  let w = Aig.Network.add_and g u v in
  Aig.Network.add_po g w;
  Util.with_pool (fun pool ->
      let classes = make_classes pool g 11L in
      let result = run_pass g classes in
      let proved_const =
        List.exists
          (fun (m, target) -> m = Aig.Lit.node w && target = Aig.Lit.const_false)
          result.Simsweep.Local.proved
      in
      Alcotest.(check bool) "constant node proved" true proved_const)

let test_three_passes_distinct () =
  (* The three Table I passes generate different cut sets; at minimum they
     must all be sound and their pair counts must agree. *)
  let g0 = Util.random_network ~pis:6 ~nodes:70 ~pos:4 21 in
  let g = Aig.Miter.build g0 (Opt.Xorflip.run g0) in
  Util.with_pool (fun pool ->
      let classes = make_classes pool g 5L in
      let counts =
        List.map
          (fun pass ->
            let r = run_pass ~pass g classes in
            Alcotest.(check bool) "tried pairs" true (r.Simsweep.Local.pairs_tried >= 0);
            r.Simsweep.Local.pairs_tried)
          Cuts.Criteria.table1
      in
      match counts with
      | [ a; b; c ] ->
          Alcotest.(check bool) "same candidate pairs" true (a = b && b = c)
      | _ -> Alcotest.fail "expected three passes")

let () =
  Alcotest.run "local"
    [
      ( "unit",
        [
          Alcotest.test_case "proves xor pair" `Quick test_proves_xor_pair;
          Alcotest.test_case "sdc inconclusive" `Quick test_sdc_inconclusive;
          Alcotest.test_case "buffer flush" `Quick test_buffer_flush;
          Alcotest.test_case "const candidates" `Quick test_const_candidates;
          Alcotest.test_case "three passes" `Quick test_three_passes_distinct;
        ] );
      ("props", [ QCheck_alcotest.to_alcotest prop_merges_sound ]);
    ]
