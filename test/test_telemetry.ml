(* Telemetry: the JSON layer must round-trip through its own parser, the
   exhaustive simulator's words_computed counter must be exact (including
   windows whose truth table is shorter than the chunk's entry size), and
   engine counters must be coherent after a real run. *)

open Simsweep.Telemetry

(* --- JSON round-trips ---------------------------------------------------- *)

let sample =
  Obj
    [
      ("null", Null);
      ("yes", Bool true);
      ("no", Bool false);
      ("int", Int 42);
      ("neg", Int (-7));
      ("zero", Int 0);
      ("float", Float 3.25);
      ("small", Float 1.5e-9);
      ("big", Float 123456789.0);
      ("str", String "plain");
      ( "escaped",
        String "quote:\" backslash:\\ newline:\n tab:\t ctrl:\x01 end" );
      ("empty_list", List []);
      ("empty_obj", Obj []);
      ("list", List [ Int 1; String "two"; Bool false; Null; Float 0.5 ]);
      ("nested", Obj [ ("inner", List [ Obj [ ("k", Int 9) ] ]) ]);
    ]

let check_roundtrip name ~indent v =
  match parse (to_string ~indent v) with
  | Ok v' -> Alcotest.(check bool) name true (v = v')
  | Error e -> Alcotest.fail (name ^ ": parse error: " ^ e)

let test_json_roundtrip () =
  check_roundtrip "compact" ~indent:false sample;
  check_roundtrip "indented" ~indent:true sample

let test_json_values () =
  Alcotest.(check string) "int" "42" (to_string (Int 42));
  Alcotest.(check string) "bool" "true" (to_string (Bool true));
  Alcotest.(check string) "null" "null" (to_string Null);
  Alcotest.(check string) "float keeps a dot" "2.0" (to_string (Float 2.));
  Alcotest.(check string) "nan is null" "null" (to_string (Float Float.nan));
  Alcotest.(check string) "inf is null" "null" (to_string (Float Float.infinity));
  (match parse "{\"a\": [1, 2.5, \"x\"]}" with
  | Ok (Obj [ ("a", List [ Int 1; Float 2.5; String "x" ]) ]) -> ()
  | Ok _ -> Alcotest.fail "wrong parse"
  | Error e -> Alcotest.fail e);
  (match parse "\\u0041 junk" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted");
  (match parse "{\"s\": \"\\u0041\\u00e9\"}" with
  | Ok (Obj [ ("s", String "A\xc3\xa9") ]) -> ()
  | Ok _ -> Alcotest.fail "wrong unicode decode"
  | Error e -> Alcotest.fail e);
  (match parse "[1, 2] trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted")

let test_member () =
  let j = Obj [ ("a", Int 1); ("b", String "x") ] in
  Alcotest.(check bool) "present" true (member "b" j = Some (String "x"));
  Alcotest.(check bool) "absent" true (member "c" j = None);
  Alcotest.(check bool) "non-object" true (member "a" (Int 3) = None)

(* --- exact words_computed ------------------------------------------------ *)

(* A chain AND cone over [k] fresh PIs; returns the root node id and the
   input node array. *)
let chain_cone g k =
  let pis = Array.init k (fun _ -> Aig.Network.add_pi g) in
  let root = Array.fold_left (fun acc l -> Aig.Network.add_and g acc l) pis.(0)
      (Array.sub pis 1 (k - 1)) in
  (Aig.Lit.node root, Array.map Aig.Lit.node pis)

(* Self-comparison pair: survives every simulation round, so the window is
   simulated completely and the verdict is [Proved]. *)
let self_job root inputs tag =
  {
    Simsweep.Exhaustive.inputs;
    pairs = [ { Simsweep.Exhaustive.a = root; b = root; compl_ = false; tag } ];
  }

(* Two windows in one chunk: 11 inputs (tt = 32 words) and 13 inputs
   (tt = 128 words).  With a large memory budget the chunk's entry size is
   128 words — larger than the first window's whole truth table — so exact
   counting must charge only the words actually computed:
   rows * tt_words per fully simulated window. *)
let words_computed_case ~memory_words ~expected_rounds () =
  let g = Aig.Network.create () in
  let root_a, inputs_a = chain_cone g 11 in
  let root_b, inputs_b = chain_cone g 13 in
  Aig.Network.add_po g (Aig.Lit.make root_a false);
  Aig.Network.add_po g (Aig.Lit.make root_b false);
  let jobs = [ self_job root_a inputs_a 0; self_job root_b inputs_b 1 ] in
  let stats = Simsweep.Exhaustive.new_stats () in
  let verdicts =
    Util.with_pool (fun pool ->
        Simsweep.Exhaustive.run g ~pool ~memory_words ~stats ~jobs ~num_tags:2 ())
  in
  Alcotest.(check bool) "A proved" true (verdicts.(0) = Simsweep.Exhaustive.Proved);
  Alcotest.(check bool) "B proved" true (verdicts.(1) = Simsweep.Exhaustive.Proved);
  (* rows_A = 11 inputs + 10 ANDs = 21, tt_A = 2^(11-6) = 32;
     rows_B = 13 + 12 = 25, tt_B = 128. *)
  let expected = (21 * 32) + (25 * 128) in
  Alcotest.(check int) "exact words" expected stats.Simsweep.Exhaustive.words_computed;
  Alcotest.(check int) "rounds" expected_rounds stats.Simsweep.Exhaustive.rounds;
  Alcotest.(check int) "windows" 2 stats.Simsweep.Exhaustive.windows;
  Alcotest.(check int) "no small windows" 0 stats.Simsweep.Exhaustive.small_windows;
  Alcotest.(check int) "nodes" (10 + 12) stats.Simsweep.Exhaustive.nodes_simulated

(* Large budget: entry size 128 (capped by the longest table); window A's
   32-word table is shorter than one entry, one round per window. *)
let test_words_entry_larger_than_tt () =
  words_computed_case ~memory_words:(1 lsl 20) ~expected_rounds:2 ()

(* Tight budget: the doubling loop stops at entry size 32
   (2*16*46 = 1472 <= 2000 < 2*32*46 = 2944); window A takes 1 round,
   window B 4 rounds — same exact word total. *)
let test_words_multi_round () =
  words_computed_case ~memory_words:2000 ~expected_rounds:5 ()

let test_words_small_window_fast_path () =
  let g = Aig.Network.create () in
  let root, inputs = chain_cone g 4 in
  Aig.Network.add_po g (Aig.Lit.make root false);
  let stats = Simsweep.Exhaustive.new_stats () in
  let verdicts =
    Util.with_pool (fun pool ->
        Simsweep.Exhaustive.run g ~pool ~memory_words:(1 lsl 16) ~stats
          ~jobs:[ self_job root inputs 0 ] ~num_tags:1 ())
  in
  Alcotest.(check bool) "proved" true (verdicts.(0) = Simsweep.Exhaustive.Proved);
  Alcotest.(check int) "fast path hit" 1 stats.Simsweep.Exhaustive.small_windows;
  (* 3 AND nodes + 4 projection tables, one word each. *)
  Alcotest.(check int) "exact words" 7 stats.Simsweep.Exhaustive.words_computed

(* --- engine counters ----------------------------------------------------- *)

let test_engine_counters () =
  (* 22 PIs exceed the scaled one-shot P threshold (k_P = 20), so the G and
     L phases must do the proving and their counters fire. *)
  let original = Gen.Arith.multiplier ~bits:11 in
  let optimized = Opt.Resyn.resyn2 original in
  let miter = Aig.Miter.build original optimized in
  let r =
    Util.with_pool (fun pool ->
        Simsweep.Engine.run ~config:Simsweep.Config.scaled ~pool miter)
  in
  let s = r.Simsweep.Engine.stats in
  Alcotest.(check bool) "proved" true (r.Simsweep.Engine.outcome = Simsweep.Engine.Proved);
  Alcotest.(check bool) "times nonneg" true
    (s.Simsweep.Stats.time_p >= 0. && s.Simsweep.Stats.time_g >= 0.
     && s.Simsweep.Stats.time_l >= 0.);
  Alcotest.(check bool) "psim ran" true (s.Simsweep.Stats.psim.Sim.Psim.runs >= 1);
  Alcotest.(check bool) "psim words counted" true
    (s.Simsweep.Stats.psim.Sim.Psim.node_words > 0);
  Alcotest.(check bool) "g iterations counted" true (s.Simsweep.Stats.g_iterations >= 1);
  Alcotest.(check bool) "candidates >= proved" true
    (s.Simsweep.Stats.g_candidates >= s.Simsweep.Stats.pairs_proved_global);
  Alcotest.(check bool) "no deadline configured, none hit" true
    ((not s.Simsweep.Stats.deadline_exceeded) && s.Simsweep.Stats.deadline_hits = 0);
  Alcotest.(check bool) "exhaustive work counted" true
    (s.Simsweep.Stats.exhaustive.Simsweep.Exhaustive.windows > 0
     && s.Simsweep.Stats.exhaustive.Simsweep.Exhaustive.words_computed > 0
     && s.Simsweep.Stats.exhaustive.Simsweep.Exhaustive.rounds
        >= s.Simsweep.Stats.exhaustive.Simsweep.Exhaustive.windows);
  (* The JSON snapshot of a real run is parseable and carries the fields
     downstream tooling keys on. *)
  let j = of_run r in
  (match parse (to_string ~indent:true j) with
  | Ok j' -> Alcotest.(check bool) "snapshot round-trips" true (j = j')
  | Error e -> Alcotest.fail e);
  (match member "stats" j with
  | Some st ->
      Alcotest.(check bool) "has exhaustive" true (member "exhaustive" st <> None);
      Alcotest.(check bool) "has psim" true (member "psim" st <> None)
  | None -> Alcotest.fail "missing stats")

(* A tiny time limit must set the deadline flag instead of running the
   engine to convergence. *)
let test_deadline_flag () =
  (* 22 PIs: the P phase cannot solve the whole miter, so the flow reaches
     the deadline checks of the G/L phases. *)
  let original = Gen.Arith.multiplier ~bits:11 in
  let optimized = Opt.Resyn.resyn2 original in
  let miter = Aig.Miter.build original optimized in
  let config =
    { Simsweep.Config.scaled with Simsweep.Config.time_limit = Some 0. }
  in
  let r = Util.with_pool (fun pool -> Simsweep.Engine.run ~config ~pool miter) in
  let s = r.Simsweep.Engine.stats in
  Alcotest.(check bool) "deadline recorded" true
    (s.Simsweep.Stats.deadline_exceeded && s.Simsweep.Stats.deadline_hits >= 1)

let test_pool_stats () =
  let stats =
    Util.with_pool (fun pool ->
        Par.Pool.parallel_for pool ~chunk:10 ~start:0 ~stop:1000 (fun _ -> ());
        Par.Pool.parallel_for pool ~start:0 ~stop:1 (fun _ -> ());
        Par.Pool.stats pool)
  in
  Alcotest.(check int) "one dispatched job" 1 stats.Par.Pool.jobs;
  Alcotest.(check int) "one inline job" 1 stats.Par.Pool.seq_jobs;
  Alcotest.(check int) "items" 1001 stats.Par.Pool.items;
  (* The range is partitioned into blocks that are chunked independently:
     one block per worker (sum of per-block ceilings — 3 workers over 1000
     at chunk 10 gives 34 * 3 = 102) or, on an oversubscribed host, a
     single block (ceil(1000/10) = 100). *)
  let claims = Array.fold_left ( + ) 0 stats.Par.Pool.chunks_per_worker in
  Alcotest.(check bool)
    (Printf.sprintf "chunk claims total (%d)" claims)
    true
    (claims >= 100 && claims <= 102);
  Alcotest.(check bool) "barrier wait nonneg" true (stats.Par.Pool.barrier_wait >= 0.);
  Alcotest.(check bool) "steals within claims" true
    (Array.for_all2 ( >= ) stats.Par.Pool.chunks_per_worker stats.Par.Pool.steals);
  (* of_pool serialises the new scheduling fields and round-trips. *)
  match parse (to_string (of_pool stats)) with
  | Ok v ->
      Alcotest.(check bool) "pool json" true (member "jobs" v = Some (Int 1));
      Alcotest.(check bool) "has steals" true (member "steals" v <> None);
      Alcotest.(check bool) "has regions" true (member "regions" v <> None);
      Alcotest.(check bool) "has region_jobs" true (member "region_jobs" v <> None)
  | Error e -> Alcotest.fail e

let () =
  Alcotest.run "telemetry"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "values" `Quick test_json_values;
          Alcotest.test_case "member" `Quick test_member;
        ] );
      ( "words",
        [
          Alcotest.test_case "entry larger than tt" `Quick
            test_words_entry_larger_than_tt;
          Alcotest.test_case "multi round" `Quick test_words_multi_round;
          Alcotest.test_case "small-window fast path" `Quick
            test_words_small_window_fast_path;
        ] );
      ( "engine",
        [
          Alcotest.test_case "counters" `Quick test_engine_counters;
          Alcotest.test_case "deadline flag" `Quick test_deadline_flag;
          Alcotest.test_case "pool stats" `Quick test_pool_stats;
        ] );
    ]
