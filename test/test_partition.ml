(* Output partitioning and reverse simulation. *)

let test_groups_doubled () =
  (* A doubled adder has two independent halves: exactly two groups. *)
  let g = Gen.Double.double (Gen.Arith.adder ~bits:4) in
  let gs = Simsweep.Partition.groups g in
  Alcotest.(check int) "two groups" 2 (List.length gs);
  let sizes = List.map List.length gs |> List.sort compare in
  Alcotest.(check (list int)) "five POs each" [ 5; 5 ] sizes

let test_groups_cover_all () =
  let g = Gen.Control.regfile ~regs:4 ~width:4 in
  let gs = Simsweep.Partition.groups g in
  let all = List.concat gs |> List.sort compare in
  Alcotest.(check (list int)) "all POs covered"
    (List.init (Aig.Network.num_pos g) Fun.id)
    all

let test_extract () =
  let g = Gen.Double.double (Gen.Arith.adder ~bits:3) in
  (* Extract only the second copy's outputs (POs 4..7). *)
  let sub, origin = Simsweep.Partition.extract g [ 4; 5; 6; 7 ] in
  Alcotest.(check int) "pis" 6 (Aig.Network.num_pis sub);
  Alcotest.(check int) "pos" 4 (Aig.Network.num_pos sub);
  (* Original PI indices of the second copy are 6..11. *)
  Alcotest.(check (list int)) "origin" [ 6; 7; 8; 9; 10; 11 ]
    (Array.to_list origin);
  (* The extracted network computes the same functions. *)
  for m = 0 to 63 do
    let sub_cex = Array.init 6 (fun i -> (m lsr i) land 1 = 1) in
    let full_cex = Array.make 12 false in
    Array.iteri (fun j orig -> full_cex.(orig) <- sub_cex.(j)) origin;
    for k = 0 to 3 do
      if Sim.Cex.check sub sub_cex k <> Sim.Cex.check g full_cex (4 + k) then
        Alcotest.failf "extract mismatch m=%d k=%d" m k
    done
  done

let test_partition_check_equivalent () =
  Util.with_pool (fun pool ->
      let g = Gen.Double.double (Gen.Arith.multiplier ~bits:4) in
      let m = Aig.Miter.build g (Opt.Resyn.light g) in
      let outcome, ngroups = Simsweep.Partition.check ~pool m in
      Alcotest.(check bool) "proved" true (outcome = Simsweep.Engine.Proved);
      Alcotest.(check bool) "multiple groups" true (ngroups >= 2))

let test_partition_check_inequivalent () =
  Util.with_pool (fun pool ->
      let g = Gen.Double.double (Gen.Arith.adder ~bits:3) in
      let bad = Aig.Network.copy g in
      (* Break an output in the SECOND half: the lifted CEX must still
         validate on the full miter. *)
      Aig.Network.set_po bad 6 (Aig.Lit.neg (Aig.Network.po bad 6));
      let m = Aig.Miter.build g bad in
      match Simsweep.Partition.check ~pool m with
      | Simsweep.Engine.Disproved (cex, po), _ ->
          Alcotest.(check int) "right PO" 6 po;
          Alcotest.(check bool) "lifted CEX valid" true (Sim.Cex.check m cex po)
      | _ -> Alcotest.fail "expected disproof")

let test_partition_check_cancelled_single_group () =
  Util.with_pool (fun pool ->
      (* One PO, one support group: an already-expired deadline must be
         honoured inside the group's engine/SAT fallback, not only at the
         (non-existent) next group boundary.  The miter is equivalent, so
         anything but Undecided means the token was ignored. *)
      let g = Gen.Control.random_logic ~pis:10 ~nodes:200 ~pos:1 ~seed:7L in
      let m = Aig.Miter.build g (Opt.Resyn.light g) in
      Alcotest.(check int) "single group" 1
        (List.length (Simsweep.Partition.groups m));
      let cancel = Par.Cancel.create ~deadline_in:0.0 () in
      let outcome, _ = Simsweep.Partition.check ~cancel ~pool m in
      Alcotest.(check bool) "undecided under expired deadline" true
        (outcome = Simsweep.Engine.Undecided))

let prop_partition_agrees =
  QCheck.Test.make ~name:"partitioned check = monolithic check" ~count:15
    Util.arb_seed (fun seed ->
      Util.with_pool (fun pool ->
          let half1 = Util.random_network ~pis:4 ~nodes:25 ~pos:2 seed in
          let half2 = Util.random_network ~pis:4 ~nodes:25 ~pos:2 (seed + 1) in
          (* Two independent halves glued into one network. *)
          let g = Aig.Network.create () in
          let p1 = Array.init 4 (fun _ -> Aig.Network.add_pi g) in
          let p2 = Array.init 4 (fun _ -> Aig.Network.add_pi g) in
          Array.iter (Aig.Network.add_po g) (Aig.Miter.append g half1 ~pi_map:p1);
          Array.iter (Aig.Network.add_po g) (Aig.Miter.append g half2 ~pi_map:p2);
          let opt = if seed mod 2 = 0 then Opt.Xorflip.run g else Aig.Network.copy g in
          let opt =
            if seed mod 3 = 0 then begin
              let b = Aig.Network.copy opt in
              Aig.Network.set_po b 1 (Aig.Lit.neg (Aig.Network.po b 1));
              b
            end
            else opt
          in
          let m = Aig.Miter.build g opt in
          let mono = (Simsweep.Engine.check_with_fallback ~pool m).Simsweep.Engine.final in
          let part, _ = Simsweep.Partition.check ~pool m in
          match (mono, part) with
          | Simsweep.Engine.Proved, Simsweep.Engine.Proved -> true
          | Simsweep.Engine.Disproved _, Simsweep.Engine.Disproved (cex, po) ->
              Sim.Cex.check m cex po
          | _ -> false))

let test_justify () =
  let g = Gen.Arith.adder ~bits:4 in
  let rng = Sim.Rng.create ~seed:3L in
  (* Justify the carry-out to 1 and to 0. *)
  let carry = Aig.Network.po g 4 in
  (match Sim.Rsim.justify g ~rng carry true with
  | Some cex -> Alcotest.(check bool) "carry=1" true (Sim.Cex.eval_lit g cex carry)
  | None -> Alcotest.fail "carry=1 should be justifiable");
  match Sim.Rsim.justify g ~rng carry false with
  | Some cex -> Alcotest.(check bool) "carry=0" false (Sim.Cex.eval_lit g cex carry)
  | None -> Alcotest.fail "carry=0 should be justifiable"

let test_justify_constant () =
  let g = Aig.Network.create () in
  let a = Aig.Network.add_pi g in
  let z = Aig.Network.add_and g a (Aig.Lit.neg a) in
  Aig.Network.add_po g z;
  (* z is the constant node: it can never be 1. *)
  Alcotest.(check bool) "const cannot be 1" true
    (Sim.Rsim.justify g z true = None)

let prop_justify_sound =
  QCheck.Test.make ~name:"justified patterns set the literal" ~count:60
    Util.arb_seed (fun seed ->
      let g = Util.random_network ~pis:6 ~nodes:40 seed in
      let rng = Sim.Rng.create ~seed:(Int64.of_int seed) in
      let l = Aig.Network.po g 0 in
      let ok v =
        match Sim.Rsim.justify g ~rng l v with
        | Some cex -> Sim.Cex.eval_lit g cex l = v
        | None -> true (* incomplete is fine; wrong is not *)
      in
      ok true && ok false)

let test_distinguishing () =
  let g = Aig.Network.create () in
  let a = Aig.Network.add_pi g and b = Aig.Network.add_pi g and c = Aig.Network.add_pi g in
  let x = Aig.Network.add_and g a b in
  let y = Aig.Network.add_and g a c in
  Aig.Network.add_po g x;
  Aig.Network.add_po g y;
  let pats =
    Sim.Rsim.distinguishing_patterns g ~a:(Aig.Lit.node x) ~b:(Aig.Lit.node y) 8
  in
  Alcotest.(check bool) "some patterns" true (pats <> []);
  (* At least one pattern must actually distinguish a&b from a&c. *)
  let distinguishes cex =
    Sim.Cex.eval_lit g cex x <> Sim.Cex.eval_lit g cex y
  in
  Alcotest.(check bool) "a distinguishing pattern found" true
    (List.exists distinguishes pats)

let () =
  Alcotest.run "partition-rsim"
    [
      ( "partition",
        [
          Alcotest.test_case "groups doubled" `Quick test_groups_doubled;
          Alcotest.test_case "groups cover" `Quick test_groups_cover_all;
          Alcotest.test_case "extract" `Quick test_extract;
          Alcotest.test_case "check equivalent" `Quick test_partition_check_equivalent;
          Alcotest.test_case "check inequivalent" `Quick test_partition_check_inequivalent;
          Alcotest.test_case "check cancelled (single group)" `Quick
            test_partition_check_cancelled_single_group;
        ] );
      ( "rsim",
        [
          Alcotest.test_case "justify" `Quick test_justify;
          Alcotest.test_case "justify constant" `Quick test_justify_constant;
          Alcotest.test_case "distinguishing" `Quick test_distinguishing;
        ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [ prop_partition_agrees; prop_justify_sound ] );
    ]
