(* Word-level sweeping: detection ground truth on the arithmetic
   generators, rewrite normalization vs. brute force, and the engine's
   soundness, fallback, cancellation and pool-invariance properties. *)

module D = Word.Detect
module R = Word.Rewrite

let eval g cex l = Sim.Cex.eval_lit g cex l

(* Every detected cell must satisfy its semantic identity on every input
   assignment: sum = XOR(ops), carry = MAJ(ops) (full adder, 3 ops) or
   AND(ops) (half adder, 2 ops).  Detection is allowed to miss structure,
   never to mislabel it. *)
let check_cells_sound g =
  let d = D.run g in
  let n = Aig.Network.num_pis g in
  assert (n <= 12);
  List.iter
    (fun (c : D.cell) ->
      for m = 0 to (1 lsl n) - 1 do
        let cex = Array.init n (fun i -> (m lsr i) land 1 = 1) in
        let ops = Array.map (eval g cex) c.D.ops in
        let sum = Array.fold_left ( <> ) false ops in
        let carry =
          match Array.length ops with
          | 2 -> ops.(0) && ops.(1)
          | 3 ->
              (ops.(0) && ops.(1)) || (ops.(0) && ops.(2))
              || (ops.(1) && ops.(2))
          | _ -> Alcotest.fail "cell with unexpected operand count"
        in
        if eval g cex c.D.sum <> sum then Alcotest.fail "cell sum mismatch";
        if eval g cex c.D.carry <> carry then Alcotest.fail "cell carry mismatch"
      done)
    d.D.cells;
  d

let test_adder_cells_sound () =
  let d = check_cells_sound (Gen.Arith.adder ~bits:5) in
  Alcotest.(check bool) "cells found" true (List.length d.D.cells >= 4)

let test_wallace_cells_sound () =
  let d = check_cells_sound (Gen.Wallace.multiplier ~bits:3) in
  Alcotest.(check bool) "cells found" true (List.length d.D.cells >= 3);
  Alcotest.(check bool) "compressor columns found" true
    (Array.exists (fun col -> col <> []) d.D.columns)

let test_adder_chain_detected () =
  (* A [bits]-bit ripple adder is one chain; detection must recover nearly
     all of it (the LSB half-adder cell may fall outside). *)
  let d = D.run (Gen.Arith.adder ~bits:8) in
  let longest =
    List.fold_left (fun acc (c : D.chain) -> max acc (Array.length c.cells)) 0
      d.D.chains
  in
  Alcotest.(check bool) "chain covers the adder" true (longest >= 7);
  Alcotest.(check bool) "high coverage" true (D.coverage_percent d > 60.)

let test_barrel_rows_detected () =
  (* A barrel shifter is log2(bits) mux stages, each selected by one PI of
     the shift amount (data PIs 0..7, amount PIs 8..10 for bits = 8). *)
  let g = Gen.Barrel.shifter ~bits:8 ~rotate:false in
  let d = D.run g in
  Alcotest.(check bool) "rows found" true (List.length d.D.rows >= 2);
  List.iter
    (fun (r : D.row) ->
      let n = Aig.Lit.node r.D.select in
      Alcotest.(check bool) "row select is a PI" true (Aig.Network.is_pi g n);
      Alcotest.(check bool) "row select is an amount PI" true
        (Aig.Network.pi_index g n >= 8))
    d.D.rows

(* Random bit-vector expressions over at most 3 variables. *)
let rec random_expr st depth =
  if depth = 0 then
    if Random.State.bool st then R.Var (Random.State.int st 3)
    else R.Const (Random.State.int st 16)
  else
    let sub d = random_expr st d in
    match Random.State.int st 4 with
    | 0 -> R.Add [ sub (depth - 1); sub (depth - 1) ]
    | 1 -> R.Add [ sub (depth - 1); sub (depth - 1); sub (depth - 1) ]
    | 2 -> R.Mul [ sub (depth - 1); sub (depth - 1) ]
    | _ -> R.Shl (sub (depth - 1), 1 + Random.State.int st 3)

let prop_normalize_preserves_eval =
  QCheck.Test.make ~name:"normalize preserves eval" ~count:200 Util.arb_seed
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let e = random_expr st 3 in
      let env_arr = Array.init 3 (fun _ -> Random.State.int st 256) in
      let env i = env_arr.(i) in
      let n = R.normalize e in
      R.equal n (R.normalize n)
      && List.for_all
           (fun width -> R.eval ~env ~width e = R.eval ~env ~width n)
           [ 1; 4; 8; 16 ])

let prop_normal_form_equal_implies_equivalent =
  (* The engine trusts [normalize] to nominate candidates: if two normal
     forms compare equal, the bit-blasted cones must be brute-force
     equivalent.  Commuted/reassociated/distributed variants of the same
     expression exercise exactly the identities normalization applies. *)
  QCheck.Test.make ~name:"equal normal forms are equivalent (vs brute)"
    ~count:40 Util.arb_seed (fun seed ->
      let st = Random.State.make [| seed + 77 |] in
      let e = random_expr st 2 in
      let variant =
        match e with
        | R.Add l -> R.Add (List.rev l)
        | R.Mul l -> R.Mul (List.rev l)
        | R.Shl (e', k) -> R.Mul [ R.Const (1 lsl k); e' ]
        | other -> R.Add [ other; R.Const 0 ]
      in
      let ne = R.normalize e and nv = R.normalize variant in
      if not (R.equal ne nv) then
        QCheck.Test.fail_reportf "variant changed the normal form";
      let width = 4 in
      let blast x = R.to_network ~width ~num_vars:3 x in
      Util.equivalent_brute (blast e) (blast variant)
      && Util.equivalent_brute (blast e) (blast ne))

let check_word ?config ?cancel ~pool m =
  Word.Sweep.check
    ~config:(Option.value config ~default:Simsweep.Config.scaled)
    ?cancel ~pool m

let test_proves_adder_miter () =
  let g = Gen.Arith.adder ~bits:16 in
  let m = Aig.Miter.build g (Opt.Resyn.resyn2 g) in
  Util.with_pool (fun pool ->
      let outcome, st = check_word ~pool m in
      Alcotest.(check bool) "proved" true (outcome = Simsweep.Engine.Proved);
      Alcotest.(check bool) "word merges happened" true (st.Word.Sweep.bits_merged > 0))

let test_fallback_on_no_word_structure () =
  (* Symmetric control logic has no adder chains: detection comes up
     empty and the bit-level fallback must finish the proof. *)
  let g = Gen.Control.voter ~n:9 in
  let m = Aig.Miter.build g (Opt.Resyn.light g) in
  Util.with_pool (fun pool ->
      let outcome, st = check_word ~pool m in
      Alcotest.(check bool) "proved" true (outcome = Simsweep.Engine.Proved);
      Alcotest.(check bool) "fell back" true st.Word.Sweep.fallback)

let test_preset_cancel_unwinds () =
  let g = Gen.Arith.adder ~bits:12 in
  let m = Aig.Miter.build g (Opt.Resyn.resyn2 g) in
  let cancel = Par.Cancel.create () in
  Par.Cancel.set cancel;
  Util.with_pool (fun pool ->
      let outcome, st = check_word ~cancel ~pool m in
      Alcotest.(check bool) "undecided" true (outcome = Simsweep.Engine.Undecided);
      Alcotest.(check bool) "cancelled flagged" true st.Word.Sweep.cancelled)

let test_pool_size_invariance () =
  let g = Gen.Arith.adder ~bits:10 in
  let m = Aig.Miter.build g (Opt.Resyn.resyn2 g) in
  let run domains =
    let pool = Par.Pool.create ~num_domains:domains () in
    Fun.protect ~finally:(fun () -> Par.Pool.shutdown pool) (fun () ->
        check_word ~pool m)
  in
  let o1, s1 = run 1 and o3, s3 = run 3 in
  Alcotest.(check bool) "same outcome" true (o1 = o3);
  Alcotest.(check bool) "proved" true (o1 = Simsweep.Engine.Proved);
  Alcotest.(check int) "same merges" s1.Word.Sweep.bits_merged
    s3.Word.Sweep.bits_merged

let test_register_idempotent () =
  Simsweep.Portfolio.clear_extras ();
  (* The registry is global: clean up even when an assertion fails, or
     the extra leaks into every later test in this binary. *)
  Fun.protect
    ~finally:(fun () -> Simsweep.Portfolio.clear_extras ())
    (fun () ->
      Word.Sweep.register ();
      Word.Sweep.register ();
      let extras = Simsweep.Portfolio.registered_extras () in
      Alcotest.(check (list string)) "registered once" [ "wordsweep" ] extras;
      (* The portfolio must still answer with the extra racer registered,
         whether or not the machine has cores to race. *)
      let g = Gen.Arith.adder ~bits:6 in
      let m = Aig.Miter.build g (Opt.Resyn.light g) in
      let r =
        Util.with_pool (fun pool ->
            Simsweep.Portfolio.check ~mode:`Race ~pool m)
      in
      Alcotest.(check bool) "proved" true
        (r.Simsweep.Portfolio.outcome = Simsweep.Engine.Proved);
      Alcotest.(check bool) "racers recorded" true
        (r.Simsweep.Portfolio.racers <> []))

let prop_agrees_with_brute =
  (* Random logic rarely has word structure: this drives the
     detection-failure path end to end and must still match brute force. *)
  QCheck.Test.make ~name:"wordsweep agrees with brute force" ~count:12
    Util.arb_seed (fun seed ->
      let g1 = Util.random_network ~pis:5 ~nodes:35 ~pos:3 seed in
      let g2 =
        if seed mod 2 = 0 then Opt.Resyn.light g1
        else Util.random_network ~pis:5 ~nodes:35 ~pos:3 (seed + 13)
      in
      let m = Aig.Miter.build g1 g2 in
      let expect = Util.equivalent_brute g1 g2 in
      let outcome, _ = Util.with_pool (fun pool -> check_word ~pool m) in
      match outcome with
      | Simsweep.Engine.Proved -> expect
      | Simsweep.Engine.Disproved (cex, po) ->
          (not expect) && Sim.Cex.check m cex po
      | Simsweep.Engine.Undecided -> false)

let () =
  Alcotest.run "word"
    [
      ( "detect",
        [
          Alcotest.test_case "adder cells sound" `Quick test_adder_cells_sound;
          Alcotest.test_case "wallace cells sound" `Quick test_wallace_cells_sound;
          Alcotest.test_case "adder chain" `Quick test_adder_chain_detected;
          Alcotest.test_case "barrel rows" `Quick test_barrel_rows_detected;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "proves adder miter" `Quick test_proves_adder_miter;
          Alcotest.test_case "fallback without words" `Quick
            test_fallback_on_no_word_structure;
          Alcotest.test_case "preset cancel unwinds" `Quick
            test_preset_cancel_unwinds;
          Alcotest.test_case "pool-size invariance" `Quick
            test_pool_size_invariance;
          Alcotest.test_case "register idempotent" `Quick
            test_register_idempotent;
        ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_normalize_preserves_eval;
            prop_normal_form_equal_implies_equivalent;
            prop_agrees_with_brute;
          ] );
    ]
