(* The sweep daemon: protocol framing, equivalence cache, FIFO
   scheduler, and end-to-end service over a Unix socket. *)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

(* {2 Protocol} *)

let roundtrip_request req =
  let hdr, payload = Serve.Protocol.request_to_frame req in
  match Serve.Protocol.(request_of_frame { hdr; payload }) with
  | Ok r -> r
  | Error e -> Alcotest.failf "request did not roundtrip: %s" e

let test_protocol_json () =
  List.iter
    (fun req -> assert (roundtrip_request req = req))
    [
      Serve.Protocol.Ping;
      Serve.Protocol.Cache_stats;
      Serve.Protocol.Script { script = "gen adder 4; stats"; timeout_s = None };
      Serve.Protocol.Script { script = "a\nb;c \"q;q\""; timeout_s = Some 1.5 };
      Serve.Protocol.Cec
        { aiger = "aag 0 0 0 0 0\n"; engine = "sat"; timeout_s = Some 0.25 };
    ];
  let resp =
    {
      Serve.Protocol.ok = true;
      output = "EQUIVALENT";
      cache_hits = 3;
      cache_misses = 1;
      elapsed_s = 0.125;
    }
  in
  match Serve.Protocol.(response_of_json (response_to_json resp)) with
  | Ok r -> Alcotest.(check bool) "response roundtrips" true (r = resp)
  | Error e -> Alcotest.failf "response did not roundtrip: %s" e

let test_protocol_frames () =
  let rd, wr = Unix.pipe () in
  let ic = Unix.in_channel_of_descr rd and oc = Unix.out_channel_of_descr wr in
  let j1, _ = Serve.Protocol.request_to_frame Serve.Protocol.Ping in
  let j2, _ =
    Serve.Protocol.request_to_frame
      (Serve.Protocol.Script { script = "x \"esc\\\"ape\""; timeout_s = None })
  in
  Serve.Protocol.write_frame oc j1;
  Serve.Protocol.write_frame oc j2;
  (match Serve.Protocol.read_frame ic with
  | Ok inc ->
      Alcotest.(check bool) "frame 1" true (inc.Serve.Protocol.hdr = j1);
      Alcotest.(check string) "frame 1 no payload" "" inc.Serve.Protocol.payload
  | Error e -> Alcotest.failf "frame 1: %s" e);
  (match Serve.Protocol.read_frame ic with
  | Ok inc -> Alcotest.(check bool) "frame 2" true (inc.Serve.Protocol.hdr = j2)
  | Error e -> Alcotest.failf "frame 2: %s" e);
  close_out oc;
  (match Serve.Protocol.read_frame ic with
  | Error "eof" -> ()
  | Ok _ -> Alcotest.fail "expected eof"
  | Error e -> Alcotest.failf "expected eof, got: %s" e);
  close_in ic

let test_protocol_payload () =
  (* Binary trailers must survive byte-exactly — every byte value, no
     JSON escaping — and the io counters must account for them. *)
  let rd, wr = Unix.pipe () in
  let ic = Unix.in_channel_of_descr rd and oc = Unix.out_channel_of_descr wr in
  let tx = Simsweep.Telemetry.io_create () in
  let rx = Simsweep.Telemetry.io_create () in
  let payload = String.init 4096 (fun i -> Char.chr (i * 31 mod 256)) in
  let hdr = Simsweep.Telemetry.Obj [ ("type", Simsweep.Telemetry.String "t") ] in
  Serve.Protocol.write_frame ~io:tx ~payload oc hdr;
  (match Serve.Protocol.read_frame ~io:rx ic with
  | Ok inc ->
      Alcotest.(check string) "payload intact" payload inc.Serve.Protocol.payload;
      Alcotest.(check bool) "payload_len in header" true
        (Simsweep.Telemetry.int_member "payload_len" inc.Serve.Protocol.hdr
        = Some (String.length payload))
  | Error e -> Alcotest.failf "payload frame: %s" e);
  Alcotest.(check bool) "tx counted payload" true
    Simsweep.Telemetry.(tx.io_bytes_tx > String.length payload);
  Alcotest.(check int) "tx = rx bytes" tx.Simsweep.Telemetry.io_bytes_tx
    rx.Simsweep.Telemetry.io_bytes_rx;
  Alcotest.(check int) "one frame out" 1 tx.Simsweep.Telemetry.io_frames_tx;
  Alcotest.(check int) "one frame in" 1 rx.Simsweep.Telemetry.io_frames_rx;
  Alcotest.(check int) "one flush" 1 tx.Simsweep.Telemetry.io_flushes;
  (* Coalescing: two unflushed writes + one flushed = one flush. *)
  Serve.Protocol.write_frame ~flush:false ~io:tx oc hdr;
  Serve.Protocol.write_frame ~flush:false ~io:tx oc hdr;
  Serve.Protocol.write_frame ~io:tx oc hdr;
  Alcotest.(check int) "batched flush" 2 tx.Simsweep.Telemetry.io_flushes;
  for i = 1 to 3 do
    match Serve.Protocol.read_frame ic with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "batched frame %d: %s" i e
  done;
  close_out oc;
  close_in ic

let test_protocol_frame_cap () =
  (* The cap is configurable and enforced at the boundary on both sides.
     Alcotest runs in-process, so restore the default before leaving. *)
  let saved = Serve.Protocol.max_frame () in
  Fun.protect ~finally:(fun () -> Serve.Protocol.set_max_frame saved)
  @@ fun () ->
  Serve.Protocol.set_max_frame 65536;
  Alcotest.(check int) "floor clamps" 65536 (Serve.Protocol.max_frame ());
  (* A socketpair, not a pipe: an at-cap frame (64 KiB + framing) would
     fill a pipe's buffer and deadlock this single-threaded test. *)
  let rd, wr = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let ic = Unix.in_channel_of_descr rd and oc = Unix.out_channel_of_descr wr in
  let hdr = Simsweep.Telemetry.Obj [ ("type", Simsweep.Telemetry.String "t") ] in
  let hdr_len =
    String.length (Simsweep.Telemetry.to_string hdr)
    + String.length ",\"payload_len\":65536"
  in
  (* Exactly at the cap: passes. *)
  let at_cap = String.make (65536 - hdr_len) 'x' in
  Serve.Protocol.write_frame ~payload:at_cap oc hdr;
  (match Serve.Protocol.read_frame ic with
  | Ok inc ->
      Alcotest.(check int) "at-cap payload arrives" (String.length at_cap)
        (String.length inc.Serve.Protocol.payload)
  | Error e -> Alcotest.failf "at-cap frame: %s" e);
  (* One byte over: the writer refuses before touching the socket. *)
  (match
     Serve.Protocol.write_frame ~payload:(String.make 65537 'x') oc hdr
   with
  | () -> Alcotest.fail "over-cap write accepted"
  | exception Invalid_argument _ -> ());
  (* An oversized length prefix is rejected reader-side without
     allocating. *)
  let bogus = Bytes.create 4 in
  Bytes.set_int32_be bogus 0 (Int32.of_int (Serve.Protocol.max_frame () + 1));
  output_bytes oc bogus;
  flush oc;
  close_out oc;
  (match Serve.Protocol.read_frame ic with
  | Error e -> Alcotest.(check bool) "oversized rejected" true (contains e "length")
  | Ok _ -> Alcotest.fail "oversized frame accepted");
  close_in ic

(* {2 Equivalence cache} *)

let test_ecache_counting () =
  let cache = Serve.Ecache.create () in
  let hook, take = Serve.Ecache.view cache in
  Alcotest.(check bool) "miss" true (hook.Aig.Pcache.lookup_po "k1" = None);
  hook.Aig.Pcache.record_po "k1" Aig.Pcache.Const_false;
  Alcotest.(check bool) "hit" true
    (hook.Aig.Pcache.lookup_po "k1" = Some Aig.Pcache.Const_false);
  Alcotest.(check bool) "pair miss" false (hook.Aig.Pcache.lookup_pair "p1");
  hook.Aig.Pcache.record_pair "p1";
  Alcotest.(check bool) "pair hit" true (hook.Aig.Pcache.lookup_pair "p1");
  Alcotest.(check (pair int int)) "view counts" (2, 2) (take ());
  Alcotest.(check (pair int int)) "take resets" (0, 0) (take ());
  (* A second view counts separately but shares the store. *)
  let hook2, take2 = Serve.Ecache.view cache in
  Alcotest.(check bool) "shared" true (hook2.Aig.Pcache.lookup_pair "p1");
  Alcotest.(check (pair int int)) "view 2" (1, 0) (take2 ());
  Alcotest.(check (pair int int)) "view 1 untouched" (0, 0) (take ());
  let entries, hits, misses = Serve.Ecache.stats cache in
  Alcotest.(check int) "entries" 2 entries;
  Alcotest.(check int) "lifetime hits" 3 hits;
  Alcotest.(check int) "lifetime misses" 2 misses

let test_ecache_cap () =
  let cache = Serve.Ecache.create ~max_entries:2 () in
  let hook, _ = Serve.Ecache.view cache in
  hook.Aig.Pcache.record_pair "a";
  hook.Aig.Pcache.record_pair "b";
  hook.Aig.Pcache.record_pair "c";  (* dropped: cache is full *)
  Alcotest.(check bool) "kept a" true (hook.Aig.Pcache.lookup_pair "a");
  Alcotest.(check bool) "kept b" true (hook.Aig.Pcache.lookup_pair "b");
  Alcotest.(check bool) "dropped c" false (hook.Aig.Pcache.lookup_pair "c");
  let entries, _, _ = Serve.Ecache.stats cache in
  Alcotest.(check int) "bounded" 2 entries

let test_ecache_byte_cap () =
  (* A generous entry cap but a tiny byte budget: megabyte-scale cone
     keys must not accumulate past the byte bound. *)
  let cache = Serve.Ecache.create ~max_entries:1_000_000 ~max_bytes:4_096 () in
  let hook, _ = Serve.Ecache.view cache in
  let big i = String.make 1_500 (Char.chr (Char.code 'a' + i)) in
  hook.Aig.Pcache.record_pair (big 0);
  hook.Aig.Pcache.record_pair (big 1);
  hook.Aig.Pcache.record_pair (big 2);  (* would exceed the byte budget *)
  Alcotest.(check bool) "kept 0" true (hook.Aig.Pcache.lookup_pair (big 0));
  Alcotest.(check bool) "kept 1" true (hook.Aig.Pcache.lookup_pair (big 1));
  Alcotest.(check bool) "dropped 2" false (hook.Aig.Pcache.lookup_pair (big 2));
  Alcotest.(check bool) "bytes bounded" true
    (Serve.Ecache.bytes_used cache <= 4_096);
  (* A small key still fits: the cap is bytes, not entries. *)
  hook.Aig.Pcache.record_po "tiny" Aig.Pcache.Const_false;
  Alcotest.(check bool) "small key admitted" true
    (hook.Aig.Pcache.lookup_po "tiny" = Some Aig.Pcache.Const_false)

(* {2 Scheduler} *)

let test_scheduler_fifo () =
  let sched = Serve.Scheduler.create () in
  let mu = Mutex.create () in
  let order = ref [] in
  let gate = Semaphore.Binary.make false in
  (* First occupant holds the scheduler until both followers queued. *)
  let t0 =
    Thread.create
      (fun () ->
        Serve.Scheduler.run sched (fun () ->
            Semaphore.Binary.acquire gate;
            Mutex.lock mu;
            order := 0 :: !order;
            Mutex.unlock mu))
      ()
  in
  while Serve.Scheduler.pending sched < 1 do
    Thread.yield ()
  done;
  let follower i =
    Thread.create
      (fun () ->
        Serve.Scheduler.run sched (fun () ->
            Mutex.lock mu;
            order := i :: !order;
            Mutex.unlock mu))
      ()
  in
  let t1 = follower 1 in
  while Serve.Scheduler.pending sched < 2 do
    Thread.yield ()
  done;
  let t2 = follower 2 in
  while Serve.Scheduler.pending sched < 3 do
    Thread.yield ()
  done;
  Semaphore.Binary.release gate;
  List.iter Thread.join [ t0; t1; t2 ];
  Alcotest.(check (list int)) "served in arrival order" [ 0; 1; 2 ]
    (List.rev !order)

(* {2 End-to-end over a Unix socket} *)

let with_server f =
  Util.with_pool (fun pool ->
      let path =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "simsweep-test-%d.sock" (Unix.getpid ()))
      in
      let config =
        {
          Serve.Server.addr = Serve.Server.Unix_path path;
          cache_entries = 100_000;
          cache_bytes = 256_000_000;
          default_timeout_s = None;
          max_frame_bytes = Serve.Protocol.default_max_frame;
          pool = Some pool;
        }
      in
      let srv = Serve.Server.start ~config () in
      Fun.protect ~finally:(fun () -> Serve.Server.stop srv) (fun () -> f srv path))

let client path =
  match Serve.Client.connect (Serve.Client.parse_addr path) with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect: %s" e

let request c req =
  match Serve.Client.request c req with
  | Ok r -> r
  | Error e -> Alcotest.failf "request: %s" e

let script ?timeout_s s = Serve.Protocol.Script { script = s; timeout_s }

let test_server_roundtrip () =
  with_server (fun _srv path ->
      let c = client path in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      let r = request c Serve.Protocol.Ping in
      Alcotest.(check bool) "ping ok" true r.Serve.Protocol.ok;
      Alcotest.(check string) "pong" "pong" r.Serve.Protocol.output;
      let r = request c (script "gen adder 4; store a; xorflip; miter a; cec sim")
      in
      Alcotest.(check bool) "script ok" true r.Serve.Protocol.ok;
      Alcotest.(check bool) "equivalent" true
        (contains r.Serve.Protocol.output "EQUIVALENT");
      (* Errors carry the command index and do not kill the connection. *)
      let r = request c (script "gen adder 4; frobnicate") in
      Alcotest.(check bool) "error reported" false r.Serve.Protocol.ok;
      Alcotest.(check bool) "indexed" true
        (contains r.Serve.Protocol.output "command 2");
      let r = request c Serve.Protocol.Ping in
      Alcotest.(check bool) "still alive" true r.Serve.Protocol.ok)

let test_server_cache_hits () =
  with_server (fun _srv path ->
      let run () =
        let c = client path in
        Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
        request c (script "gen multiplier 6; store a; resyn2; miter a; cec")
      in
      let cold = run () in
      Alcotest.(check bool) "cold ok" true cold.Serve.Protocol.ok;
      Alcotest.(check int) "cold has no hits" 0 cold.Serve.Protocol.cache_hits;
      Alcotest.(check bool) "cold misses" true
        (cold.Serve.Protocol.cache_misses > 0);
      (* The identical request from a fresh connection reuses the proofs. *)
      let warm = run () in
      Alcotest.(check bool) "warm ok" true warm.Serve.Protocol.ok;
      Alcotest.(check bool) "warm hits" true
        (warm.Serve.Protocol.cache_hits > 0);
      Alcotest.(check int) "warm misses" 0 warm.Serve.Protocol.cache_misses;
      let entries, hits, _ = Serve.Ecache.stats (Serve.Server.ecache _srv) in
      Alcotest.(check bool) "cache populated" true (entries > 0);
      Alcotest.(check bool) "lifetime hits" true (hits > 0))

let test_server_cec_request () =
  with_server (fun _srv path ->
      let g1 = Gen.Arith.multiplier ~bits:5 in
      let g2 = Opt.Resyn.resyn2 (Aig.Network.copy g1) in
      let miter = Aig.Miter.build g1 g2 in
      let aiger = Aig.Aiger_io.to_binary_string miter in
      let req = Serve.Protocol.Cec { aiger; engine = "combined"; timeout_s = None } in
      let c = client path in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      let r1 = request c req in
      Alcotest.(check bool) "ok" true r1.Serve.Protocol.ok;
      Alcotest.(check bool) "equivalent" true
        (contains r1.Serve.Protocol.output "EQUIVALENT");
      let r2 = request c req in
      Alcotest.(check bool) "repeat hits the cache" true
        (r2.Serve.Protocol.cache_hits > 0);
      Alcotest.(check int) "repeat misses nothing" 0
        r2.Serve.Protocol.cache_misses;
      (* An unparsable miter is an error, not a crash. *)
      let bad =
        request c
          (Serve.Protocol.Cec
             { aiger = "not an aiger"; engine = "sat"; timeout_s = None })
      in
      Alcotest.(check bool) "bad aiger rejected" false bad.Serve.Protocol.ok)

let test_server_sessions_isolated () =
  with_server (fun _srv path ->
      let c1 = client path and c2 = client path in
      Fun.protect
        ~finally:(fun () ->
          Serve.Client.close c1;
          Serve.Client.close c2)
        (fun () ->
          let r = request c1 (script "gen adder 4; store a") in
          Alcotest.(check bool) "stored in session 1" true r.Serve.Protocol.ok;
          let r = request c2 (script "load a") in
          Alcotest.(check bool) "invisible in session 2" false
            r.Serve.Protocol.ok;
          Alcotest.(check bool) "explains" true
            (contains r.Serve.Protocol.output "no stored network")))

let test_server_concurrent_clients () =
  with_server (fun _srv path ->
      let results = Array.make 4 None in
      let worker i =
        Thread.create
          (fun () ->
            let c = client path in
            Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
            let name = Printf.sprintf "n%d" i in
            let r =
              request c
                (script
                   (Printf.sprintf
                      "gen adder %d; store %s; xorflip; miter %s; cec sim"
                      (4 + i) name name))
            in
            results.(i) <- Some r)
          ()
      in
      let threads = List.init 4 worker in
      List.iter Thread.join threads;
      Array.iteri
        (fun i r ->
          match r with
          | Some r ->
              Alcotest.(check bool) (Printf.sprintf "client %d ok" i) true
                r.Serve.Protocol.ok;
              Alcotest.(check bool)
                (Printf.sprintf "client %d equivalent" i)
                true
                (contains r.Serve.Protocol.output "EQUIVALENT")
          | None -> Alcotest.failf "client %d got no response" i)
        results)

let test_server_deadline () =
  with_server (fun _srv path ->
      let c = client path in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      (* A deadline that expired before the engines first poll it: the
         check must come back UNDECIDED, not run to completion — for
         every engine the shell can dispatch, so no daemon request can
         dodge its deadline by picking the right engine. *)
      List.iter
        (fun last ->
          let r =
            request c
              (script ~timeout_s:1e-9
                 ("gen multiplier 8; store a; resyn2; miter a; " ^ last))
          in
          Alcotest.(check bool) (last ^ " ok") true r.Serve.Protocol.ok;
          Alcotest.(check bool) (last ^ " undecided") true
            (contains r.Serve.Protocol.output "UNDECIDED"))
        [
          "cec sat"; "cec satdirect"; "cec sim"; "cec bdd"; "cec portfolio";
          "cec partitioned"; "cec combined"; "certify";
        ])

let test_server_client_hangup () =
  (* A client that sends a request and hangs up without reading the
     response: the response write hits a closed socket, which without
     SIGPIPE ignored would kill the whole daemon (here: this test
     process).  The daemon must drop that client alone and keep serving
     others. *)
  with_server (fun _srv path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      let oc = Unix.out_channel_of_descr fd in
      let hdr, payload =
        Serve.Protocol.request_to_frame
          (script "gen multiplier 6; store a; resyn2; miter a; cec sim")
      in
      Serve.Protocol.write_frame ~payload oc hdr;
      (* Close without ever reading the response frame. *)
      Unix.close fd;
      (* The daemon finishes the abandoned request, then serves us. *)
      let c = client path in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      let r = request c Serve.Protocol.Ping in
      Alcotest.(check bool) "daemon survived the hangup" true
        r.Serve.Protocol.ok)

let test_server_socket_in_use () =
  (* Starting a second daemon on a live daemon's socket path must fail
     loudly instead of silently unlinking the first one's endpoint. *)
  with_server (fun _srv path ->
      (match Serve.Server.start ~config:{ Serve.Server.default_config with
                                          addr = Serve.Server.Unix_path path }
               () with
      | _ -> Alcotest.fail "second daemon bound a live socket"
      | exception Failure msg ->
          Alcotest.(check bool) "explains" true (contains msg "listening"));
      (* The first daemon's endpoint is untouched. *)
      let c = client path in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      let r = request c Serve.Protocol.Ping in
      Alcotest.(check bool) "original daemon still serves" true
        r.Serve.Protocol.ok)

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "json roundtrip" `Quick test_protocol_json;
          Alcotest.test_case "framing" `Quick test_protocol_frames;
          Alcotest.test_case "binary payload" `Quick test_protocol_payload;
          Alcotest.test_case "frame cap boundary" `Quick
            test_protocol_frame_cap;
        ] );
      ( "ecache",
        [
          Alcotest.test_case "counting views" `Quick test_ecache_counting;
          Alcotest.test_case "size cap" `Quick test_ecache_cap;
          Alcotest.test_case "byte cap" `Quick test_ecache_byte_cap;
        ] );
      ( "scheduler",
        [ Alcotest.test_case "fifo order" `Quick test_scheduler_fifo ] );
      ( "server",
        [
          Alcotest.test_case "roundtrip" `Quick test_server_roundtrip;
          Alcotest.test_case "cache hits" `Quick test_server_cache_hits;
          Alcotest.test_case "direct cec" `Quick test_server_cec_request;
          Alcotest.test_case "session isolation" `Quick
            test_server_sessions_isolated;
          Alcotest.test_case "concurrent clients" `Quick
            test_server_concurrent_clients;
          Alcotest.test_case "deadline" `Quick test_server_deadline;
          Alcotest.test_case "client hangup" `Quick test_server_client_hangup;
          Alcotest.test_case "socket in use" `Quick test_server_socket_in_use;
        ] );
    ]
