(* SAT sweeping CEC baseline: CNF encoding and the full sweeping flow. *)

let test_cnf_encoding () =
  let g = Gen.Arith.adder ~bits:3 in
  let s = Sat.Solver.create () in
  Alcotest.(check bool) "loaded" true (Sat.Cnf.load s g);
  (* Force an input assignment with assumptions and check the outputs:
     5 + 6 = 11 = 1011. *)
  let asm = ref [] in
  let a = 5 and b = 6 in
  for i = 0 to 2 do
    asm := Sat.Solver.mklit (Aig.Network.pi g i) ((a lsr i) land 1 = 0) :: !asm;
    asm := Sat.Solver.mklit (Aig.Network.pi g (3 + i)) ((b lsr i) land 1 = 0) :: !asm
  done;
  (match Sat.Solver.solve ~assumptions:!asm s with
  | Sat.Solver.Sat -> ()
  | _ -> Alcotest.fail "circuit CNF must be satisfiable");
  for i = 0 to 3 do
    let lit = Aig.Network.po g i in
    let v =
      Sat.Solver.model_value s (Aig.Lit.node lit) <> Aig.Lit.is_compl lit
    in
    Alcotest.(check bool) (Printf.sprintf "sum bit %d" i) ((11 lsr i) land 1 = 1) v
  done

let check_case name g1 g2 expect_eq =
  Util.with_pool (fun pool ->
      let miter = Aig.Miter.build g1 g2 in
      let outcome, _ = Sat.Sweep.check ~pool miter in
      match (outcome, expect_eq) with
      | Sat.Sweep.Equivalent, true -> ()
      | Sat.Sweep.Inequivalent (cex, po), false ->
          Alcotest.(check bool)
            (name ^ ": cex validates") true
            (Sim.Cex.check miter cex po)
      | Sat.Sweep.Equivalent, false -> Alcotest.failf "%s: wrongly proved" name
      | Sat.Sweep.Inequivalent _, true -> Alcotest.failf "%s: wrongly disproved" name
      | Sat.Sweep.Undecided, _ -> Alcotest.failf "%s: undecided" name)

let test_equivalent_opt () =
  let g = Gen.Arith.multiplier ~bits:4 in
  check_case "multiplier vs resyn2" g (Opt.Resyn.resyn2 g) true

let test_inequivalent () =
  let g = Gen.Arith.adder ~bits:3 in
  let bad = Aig.Network.copy g in
  Aig.Network.set_po bad 1 (Aig.Lit.neg (Aig.Network.po bad 1));
  check_case "adder vs broken adder" g bad false

let test_subtle_inequivalence () =
  (* Two circuits differing on exactly one input pattern: random partial
     simulation alone cannot prove it; SAT must find the pattern. *)
  let mk flip =
    let g = Aig.Network.create () in
    let xs = Array.init 8 (fun _ -> Aig.Network.add_pi g) in
    let conj =
      Array.fold_left (fun acc x -> Aig.Network.add_and g acc x) Aig.Lit.const_true xs
    in
    let extra = if flip then conj else Aig.Lit.const_false in
    (* xs.(0) & !xs.(1) is not implied by the conjunction, so the two
       variants differ exactly on the all-ones assignment. *)
    Aig.Network.add_po g
      (Aig.Network.add_or g extra
         (Aig.Network.add_and g xs.(0) (Aig.Lit.neg xs.(1))));
    g
  in
  check_case "single-minterm difference" (mk false) (mk true) false

let test_ec_transfer () =
  Util.with_pool (fun pool ->
      (* Classes computed by the engine are accepted and used. *)
      let g = Gen.Arith.multiplier ~bits:4 in
      let miter = Aig.Miter.build g (Opt.Resyn.resyn2 g) in
      let rng = Sim.Rng.create ~seed:5L in
      let sigs = Sim.Psim.run miter ~nwords:4 ~rng ~pool ~embed:[] in
      let classes = Sim.Eclass.of_sigs miter sigs () in
      let outcome, stats = Sat.Sweep.check ~classes ~pool miter in
      Alcotest.(check bool) "equivalent" true (outcome = Sat.Sweep.Equivalent);
      Alcotest.(check bool) "did work" true (stats.Sat.Sweep.sat_calls > 0))

let test_check_direct () =
  let g = Gen.Arith.adder ~bits:4 in
  let m_eq = Aig.Miter.build g (Opt.Xorflip.run g) in
  Alcotest.(check bool) "direct equivalent" true
    (Sat.Sweep.check_direct m_eq = Sat.Sweep.Equivalent);
  let bad = Aig.Network.copy g in
  Aig.Network.set_po bad 0 (Aig.Lit.neg (Aig.Network.po bad 0));
  (match Sat.Sweep.check_direct (Aig.Miter.build g bad) with
  | Sat.Sweep.Inequivalent _ -> ()
  | _ -> Alcotest.fail "expected inequivalent")

let test_reverse_sim_splits () =
  Util.with_pool (fun pool ->
      (* A miter with spuriously-matching classes: reverse simulation must
         disprove some candidate pairs without SAT calls. *)
      let g1 = Util.random_network ~pis:8 ~nodes:120 ~pos:4 5 in
      let g2 = Util.random_network ~pis:8 ~nodes:120 ~pos:4 6 in
      let miter = Aig.Miter.build g1 g2 in
      let config =
        { Sat.Sweep.default_config with Sat.Sweep.use_reverse_sim = true; sim_words = 1 }
      in
      let outcome, stats = Sat.Sweep.check ~config ~pool miter in
      (* The verdict must match the plain configuration... *)
      let outcome', _ = Sat.Sweep.check ~pool (Aig.Miter.build g1 g2) in
      let same =
        match (outcome, outcome') with
        | Sat.Sweep.Equivalent, Sat.Sweep.Equivalent -> true
        | Sat.Sweep.Inequivalent _, Sat.Sweep.Inequivalent _ -> true
        | Sat.Sweep.Undecided, Sat.Sweep.Undecided -> true
        | _ -> false
      in
      Alcotest.(check bool) "same verdict" true same;
      Alcotest.(check bool) "stat present" true (stats.Sat.Sweep.rsim_splits >= 0))

let prop_reverse_sim_sound =
  QCheck.Test.make ~name:"reverse-sim sweeping agrees with brute force"
    ~count:20 Util.arb_seed (fun seed ->
      Util.with_pool (fun pool ->
          let g1 = Util.random_network ~pis:6 ~nodes:40 ~pos:3 seed in
          let g2 =
            if seed mod 2 = 0 then Opt.Xorflip.run g1
            else Util.random_network ~pis:6 ~nodes:40 ~pos:3 (seed + 9)
          in
          let miter = Aig.Miter.build g1 g2 in
          let config =
            { Sat.Sweep.default_config with Sat.Sweep.use_reverse_sim = true }
          in
          let expect = Util.equivalent_brute g1 g2 in
          match Sat.Sweep.check ~config ~pool miter with
          | Sat.Sweep.Equivalent, _ -> expect
          | Sat.Sweep.Inequivalent (cex, po), _ ->
              (not expect) && Sim.Cex.check miter cex po
          | Sat.Sweep.Undecided, _ -> false))

let test_fraig_reduces_redundancy () =
  Util.with_pool (fun pool ->
      (* Two structurally different xor decompositions of the same signals
         inside one network: fraig must merge them. *)
      let g = Aig.Network.create () in
      let a = Aig.Network.add_pi g and b = Aig.Network.add_pi g in
      let x1 = Aig.Network.add_xor g a b in
      let u = Aig.Network.add_and g a (Aig.Lit.neg b) in
      let v = Aig.Network.add_and g (Aig.Lit.neg a) b in
      let x2 = Aig.Lit.neg (Aig.Network.add_and g (Aig.Lit.neg u) (Aig.Lit.neg v)) in
      Aig.Network.add_po g (Aig.Network.add_and g x1 a);
      Aig.Network.add_po g (Aig.Network.add_and g x2 b);
      let before = Aig.Network.num_ands g in
      let g', stats = Sat.Sweep.fraig ~pool g in
      Alcotest.(check bool) "merged something" true (stats.Sat.Sweep.merged > 0);
      Alcotest.(check bool) "shrank" true (Aig.Network.num_ands g' < before);
      Alcotest.(check bool) "function preserved" true (Util.equivalent_brute g g'))

let prop_fraig_sound =
  QCheck.Test.make ~name:"fraig preserves function and never grows" ~count:25
    Util.arb_seed (fun seed ->
      Util.with_pool (fun pool ->
          let g = Util.random_network ~pis:6 ~nodes:80 ~pos:4 seed in
          let g', _ = Sat.Sweep.fraig ~pool g in
          Aig.Network.num_ands g' <= Aig.Network.num_ands g
          && Util.equivalent_brute g g'))

let prop_fraig_idempotent_size =
  QCheck.Test.make ~name:"fraiging twice does not shrink further much" ~count:10
    Util.arb_seed (fun seed ->
      Util.with_pool (fun pool ->
          let g = Util.random_network ~pis:6 ~nodes:80 ~pos:4 seed in
          let g1, _ = Sat.Sweep.fraig ~pool g in
          let g2, _ = Sat.Sweep.fraig ~pool g1 in
          (* A second pass may catch pairs the CEX budget postponed, but the
             result must already be near the fixed point. *)
          Aig.Network.num_ands g2 <= Aig.Network.num_ands g1))

let test_batch_stats () =
  (* Parallel proof batches leave a coherent telemetry trail: every
     dispatched batch loads the CNF once (the final PO check may add one
     more load), and a tiny pair_batch dispatches several batches. *)
  Util.with_pool (fun pool ->
      let g = Util.random_network ~pis:6 ~nodes:60 ~pos:4 3 in
      let miter = Aig.Miter.build g (Opt.Balance.run (Opt.Xorflip.run g)) in
      let config = { Sat.Sweep.default_config with pair_batch = 2 } in
      let outcome, stats = Sat.Sweep.check ~config ~pool miter in
      Alcotest.(check bool) "proved" true (outcome = Sat.Sweep.Equivalent);
      Alcotest.(check bool) "batches dispatched" true (stats.Sat.Sweep.batches >= 1);
      Alcotest.(check bool) "one cnf load per batch" true
        (stats.Sat.Sweep.cnf_loads >= stats.Sat.Sweep.batches))

let test_cancelled_before_start () =
  (* A token expired before the check starts must stop the batch loop
     before any SAT work: no batches committed, no SAT calls made. *)
  Util.with_pool (fun pool ->
      let g = Util.random_network ~pis:6 ~nodes:60 ~pos:4 3 in
      let miter = Aig.Miter.build g (Opt.Balance.run (Opt.Xorflip.run g)) in
      let cancel = Par.Cancel.create ~deadline_in:0.0 () in
      let outcome, stats = Sat.Sweep.check ~cancel ~pool miter in
      Alcotest.(check bool) "undecided" true (outcome = Sat.Sweep.Undecided);
      Alcotest.(check int) "no batches" 0 stats.Sat.Sweep.batches;
      Alcotest.(check int) "no sat calls" 0 stats.Sat.Sweep.sat_calls)

let prop_pair_batch_size_sound =
  QCheck.Test.make ~name:"any pair_batch agrees with brute force" ~count:10
    (QCheck.pair Util.arb_seed (QCheck.int_range 1 8)) (fun (seed, bsz) ->
      Util.with_pool (fun pool ->
          let g1 = Util.random_network ~pis:6 ~nodes:40 ~pos:3 seed in
          let g2 = Util.random_network ~pis:6 ~nodes:40 ~pos:3 (seed + 1) in
          let miter = Aig.Miter.build g1 g2 in
          let expect = Util.equivalent_brute g1 g2 in
          let config = { Sat.Sweep.default_config with pair_batch = bsz } in
          match Sat.Sweep.check ~config ~pool miter with
          | Sat.Sweep.Equivalent, _ -> expect
          | Sat.Sweep.Inequivalent (cex, po), _ ->
              (not expect) && Sim.Cex.check miter cex po
          | Sat.Sweep.Undecided, _ -> false))

let prop_random_equivalence =
  QCheck.Test.make ~name:"sweep agrees with brute force" ~count:30 Util.arb_seed
    (fun seed ->
      Util.with_pool (fun pool ->
          let g1 = Util.random_network ~pis:6 ~nodes:40 ~pos:3 seed in
          let g2 = Util.random_network ~pis:6 ~nodes:40 ~pos:3 (seed + 1) in
          let miter = Aig.Miter.build g1 g2 in
          let expect = Util.equivalent_brute g1 g2 in
          match Sat.Sweep.check ~pool miter with
          | Sat.Sweep.Equivalent, _ -> expect
          | Sat.Sweep.Inequivalent (cex, po), _ ->
              (not expect) && Sim.Cex.check miter cex po
          | Sat.Sweep.Undecided, _ -> false))

let prop_optimized_equivalence =
  QCheck.Test.make ~name:"sweep proves xorflip+balance miters" ~count:15
    Util.arb_seed (fun seed ->
      Util.with_pool (fun pool ->
          let g = Util.random_network ~pis:6 ~nodes:60 ~pos:4 seed in
          let opt = Opt.Balance.run (Opt.Xorflip.run g) in
          let miter = Aig.Miter.build g opt in
          fst (Sat.Sweep.check ~pool miter) = Sat.Sweep.Equivalent))

let () =
  Alcotest.run "sweep"
    [
      ( "unit",
        [
          Alcotest.test_case "cnf encoding" `Quick test_cnf_encoding;
          Alcotest.test_case "equivalent optimized" `Quick test_equivalent_opt;
          Alcotest.test_case "inequivalent" `Quick test_inequivalent;
          Alcotest.test_case "subtle inequivalence" `Quick test_subtle_inequivalence;
          Alcotest.test_case "ec transfer" `Quick test_ec_transfer;
          Alcotest.test_case "check direct" `Quick test_check_direct;
          Alcotest.test_case "reverse-sim splits" `Quick test_reverse_sim_splits;
          Alcotest.test_case "fraig reduces" `Quick test_fraig_reduces_redundancy;
          Alcotest.test_case "batch stats" `Quick test_batch_stats;
          Alcotest.test_case "cancelled before start" `Quick
            test_cancelled_before_start;
        ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_random_equivalence;
            prop_optimized_equivalence;
            prop_pair_batch_size_sound;
            prop_reverse_sim_sound;
            prop_fraig_sound;
            prop_fraig_idempotent_size;
          ] );
    ]
