(* AIGER ASCII I/O. *)

let test_roundtrip_small () =
  let g = Aig.Network.create () in
  let a = Aig.Network.add_pi g and b = Aig.Network.add_pi g in
  Aig.Network.add_po g (Aig.Network.add_xor g a b);
  Aig.Network.add_po g (Aig.Lit.neg (Aig.Network.add_and g a b));
  let s = Aig.Aiger_io.to_string g in
  let g' = Aig.Aiger_io.of_string s in
  Alcotest.(check int) "pis" 2 (Aig.Network.num_pis g');
  Alcotest.(check int) "pos" 2 (Aig.Network.num_pos g');
  Alcotest.(check bool) "equivalent" true (Util.equivalent_brute g g')

let test_known_format () =
  (* An AND gate in hand-written aag. *)
  let src = "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n" in
  let g = Aig.Aiger_io.of_string src in
  Alcotest.(check int) "pis" 2 (Aig.Network.num_pis g);
  Alcotest.(check int) "ands" 1 (Aig.Network.num_ands g);
  let cex11 = [| true; true |] and cex10 = [| true; false |] in
  Alcotest.(check bool) "1&1" true (Sim.Cex.check g cex11 0);
  Alcotest.(check bool) "1&0" false (Sim.Cex.check g cex10 0)

let test_complemented_output () =
  let src = "aag 3 2 0 1 1\n2\n4\n7\n6 2 4\n" in
  let g = Aig.Aiger_io.of_string src in
  Alcotest.(check bool) "nand" true (Sim.Cex.check g [| true; false |] 0);
  Alcotest.(check bool) "nand11" false (Sim.Cex.check g [| true; true |] 0)

let test_const_output () =
  let src = "aag 1 1 0 2 0\n2\n0\n1\n" in
  let g = Aig.Aiger_io.of_string src in
  Alcotest.(check int) "po0 const0" Aig.Lit.const_false (Aig.Network.po g 0);
  Alcotest.(check int) "po1 const1" Aig.Lit.const_true (Aig.Network.po g 1)

let test_errors () =
  let bad s msg =
    match Aig.Aiger_io.of_string s with
    | exception Aig.Aiger_io.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error: %s" msg
  in
  bad "" "empty";
  bad "aag 1 1 0" "short header";
  bad "aag 1 1 1 0 0\n2\n4 0\n" "latches";
  bad "aag 3 2 0 1 1\n2\n4\n6\n" "truncated";
  bad "aag 3 2 0 1 1\n2\n4\n99\n6 2 4\n" "undefined literal"

let test_file_io () =
  let g = Gen.Arith.adder ~bits:4 in
  let path = Filename.temp_file "simsweep" ".aag" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Aig.Aiger_io.write_file path g;
      let g' = Aig.Aiger_io.read_file path in
      Alcotest.(check bool) "file roundtrip equivalent" true
        (Util.equivalent_brute g g'))

let test_binary_roundtrip () =
  let g = Gen.Arith.multiplier ~bits:5 in
  let b = Aig.Aiger_io.to_binary_string g in
  Alcotest.(check string) "binary header" "aig" (String.sub b 0 3);
  let g' = Aig.Aiger_io.of_string b in
  Alcotest.(check int) "pis" (Aig.Network.num_pis g) (Aig.Network.num_pis g');
  Alcotest.(check bool) "equivalent" true (Util.equivalent_brute g g');
  (* Binary is considerably smaller than ASCII on real circuits. *)
  Alcotest.(check bool) "smaller than ascii" true
    (String.length b < String.length (Aig.Aiger_io.to_string g))

let test_binary_file_extension () =
  let g = Gen.Arith.adder ~bits:4 in
  let path = Filename.temp_file "simsweep" ".aig" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Aig.Aiger_io.write_file path g;
      let ic = open_in_bin path in
      let magic = really_input_string ic 4 in
      close_in ic;
      Alcotest.(check string) "binary magic" "aig " magic;
      Alcotest.(check bool) "roundtrip" true
        (Util.equivalent_brute g (Aig.Aiger_io.read_file path)))

let test_binary_errors () =
  let bad s =
    match Aig.Aiger_io.of_string s with
    | exception Aig.Aiger_io.Parse_error _ -> ()
    | _ -> Alcotest.fail "expected parse error"
  in
  bad "aig 3 2 0 1 1\n6\n";
  (* truncated deltas *)
  bad "aig 3 2 1 1 0\n2\n6\n" (* latches *)

let prop_binary_roundtrip =
  QCheck.Test.make ~name:"binary roundtrip preserves function" ~count:50
    Util.arb_seed (fun seed ->
      let g = Util.random_network ~pis:6 ~nodes:50 ~pos:5 seed in
      let g' = Aig.Aiger_io.of_string (Aig.Aiger_io.to_binary_string g) in
      Util.equivalent_brute g g')

let prop_roundtrip_random =
  QCheck.Test.make ~name:"roundtrip preserves function" ~count:60 Util.arb_seed
    (fun seed ->
      let g = Util.random_network ~pis:6 ~nodes:50 ~pos:5 seed in
      let g' = Aig.Aiger_io.of_string (Aig.Aiger_io.to_string g) in
      Util.equivalent_brute g g')

(* The fuzz repro format depends on write->read->write being the identity:
   a shrunk reproducer checked into the tree must re-serialise
   byte-for-byte, or regression diffs churn. *)
let prop_ascii_write_read_write_identical =
  QCheck.Test.make ~name:"ascii write->read->write is byte-identical" ~count:60
    Util.arb_seed (fun seed ->
      let g = Util.random_network ~pis:6 ~nodes:60 ~pos:5 seed in
      let s = Aig.Aiger_io.to_string g in
      s = Aig.Aiger_io.to_string (Aig.Aiger_io.of_string s))

let prop_binary_write_read_write_identical =
  QCheck.Test.make ~name:"binary write->read->write is byte-identical" ~count:60
    Util.arb_seed (fun seed ->
      let g = Util.random_network ~pis:6 ~nodes:60 ~pos:5 seed in
      let b = Aig.Aiger_io.to_binary_string g in
      b = Aig.Aiger_io.to_binary_string (Aig.Aiger_io.of_string b))

(* Cross-format: the same network serialised via either format reads back
   to the same ascii normal form. *)
let prop_formats_agree =
  QCheck.Test.make ~name:"ascii and binary agree on the normal form" ~count:40
    Util.arb_seed (fun seed ->
      let g = Util.random_network ~pis:6 ~nodes:60 ~pos:5 seed in
      let via_ascii = Aig.Aiger_io.of_string (Aig.Aiger_io.to_string g) in
      let via_binary = Aig.Aiger_io.of_string (Aig.Aiger_io.to_binary_string g) in
      Aig.Aiger_io.to_string via_ascii = Aig.Aiger_io.to_string via_binary)

let test_file_write_read_write_identical () =
  (* Through the file layer too: the repro artifacts go through
     write_file/read_file. *)
  List.iter
    (fun (ext, name, g) ->
      let path = Filename.temp_file "simsweep" ext in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Aig.Aiger_io.write_file path g;
          let g' = Aig.Aiger_io.read_file path in
          Alcotest.(check string) name (Aig.Aiger_io.to_string g)
            (Aig.Aiger_io.to_string g')))
    [
      (".aag", "ascii file identity", Gen.Arith.multiplier ~bits:4);
      (".aig", "binary file identity", Gen.Control.voter ~n:9);
    ]

let () =
  Alcotest.run "aiger"
    [
      ( "unit",
        [
          Alcotest.test_case "roundtrip small" `Quick test_roundtrip_small;
          Alcotest.test_case "known format" `Quick test_known_format;
          Alcotest.test_case "complemented output" `Quick test_complemented_output;
          Alcotest.test_case "const output" `Quick test_const_output;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "file io" `Quick test_file_io;
          Alcotest.test_case "binary roundtrip" `Quick test_binary_roundtrip;
          Alcotest.test_case "binary file ext" `Quick test_binary_file_extension;
          Alcotest.test_case "binary errors" `Quick test_binary_errors;
          Alcotest.test_case "file identity" `Quick test_file_write_read_write_identical;
        ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_roundtrip_random;
            prop_binary_roundtrip;
            prop_ascii_write_read_write_identical;
            prop_binary_write_read_write_identical;
            prop_formats_agree;
          ] );
    ]
