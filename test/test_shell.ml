(* The command interpreter behind simsweep-shell. *)

let exec_ok st cmd =
  match Shell.Command.exec st cmd with
  | Ok out -> out
  | Error e -> Alcotest.failf "command %S failed: %s" cmd e

let exec_err st cmd =
  match Shell.Command.exec st cmd with
  | Error e -> e
  | Ok out -> Alcotest.failf "command %S unexpectedly succeeded: %s" cmd out

let with_state f = Util.with_pool (fun pool -> f (Shell.Command.create ~pool ()))

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let test_gen_and_stats () =
  with_state (fun st ->
      let out = exec_ok st "gen adder 4" in
      Alcotest.(check bool) "stats printed" true (contains out "pi=8");
      let out = exec_ok st "stats" in
      Alcotest.(check bool) "po count" true (contains out "po=5"))

let test_comments_and_blank () =
  with_state (fun st ->
      Alcotest.(check string) "blank" ""
        (match Shell.Command.exec st "   " with Ok s -> s | Error e -> e);
      Alcotest.(check string) "comment" ""
        (match Shell.Command.exec st "# a comment" with Ok s -> s | Error e -> e))

let test_no_current () =
  with_state (fun st ->
      let e = exec_err st "stats" in
      Alcotest.(check bool) "explains" true (contains e "no current network"))

let test_store_load_miter_cec () =
  with_state (fun st ->
      ignore (exec_ok st "gen multiplier 6");
      ignore (exec_ok st "store golden");
      ignore (exec_ok st "xorflip");
      ignore (exec_ok st "miter golden");
      let out = exec_ok st "cec sim" in
      Alcotest.(check bool) "equivalent" true (contains out "EQUIVALENT");
      Alcotest.(check bool) "not NOT" false (contains out "NOT EQUIVALENT"))

let test_all_engines () =
  with_state (fun st ->
      ignore (exec_ok st "gen adder 5");
      ignore (exec_ok st "store a");
      ignore (exec_ok st "light");
      ignore (exec_ok st "miter a");
      List.iter
        (fun engine ->
          let out = exec_ok st ("cec " ^ engine) in
          Alcotest.(check bool) (engine ^ " equivalent") true
            (contains out "EQUIVALENT"))
        [ "sim"; "sat"; "bdd"; "portfolio"; "combined"; "partitioned" ];
      let e = exec_err st "cec nonsense" in
      Alcotest.(check bool) "unknown engine" true (contains e "unknown engine"))

let test_certify () =
  with_state (fun st ->
      ignore (exec_ok st "gen multiplier 6");
      ignore (exec_ok st "store g");
      ignore (exec_ok st "resyn2");
      ignore (exec_ok st "miter g");
      let out = exec_ok st "certify" in
      Alcotest.(check bool) "validated" true (contains out "validated"))

let test_script_and_files () =
  with_state (fun st ->
      let tmp = Filename.temp_file "shell" ".aag" in
      let dot = Filename.temp_file "shell" ".dot" in
      Fun.protect
        ~finally:(fun () ->
          Sys.remove tmp;
          Sys.remove dot)
        (fun () ->
          match
            Shell.Command.exec_script st
              (Printf.sprintf
                 "gen voter 9; write %s; dot %s\nread %s; stats" tmp dot tmp)
          with
          | Ok out ->
              Alcotest.(check bool) "wrote file" true (contains out "written");
              Alcotest.(check bool) "reloaded" true (contains out "pi=9");
              Alcotest.(check bool) "dot exists" true (Sys.file_exists dot)
          | Error e -> Alcotest.failf "script failed: %s" e))

let test_sim_output () =
  with_state (fun st ->
      ignore (exec_ok st "gen adder 2");
      let out = exec_ok st "sim 3" in
      let lines = String.split_on_char '\n' out in
      Alcotest.(check int) "three vectors" 3 (List.length lines);
      List.iter
        (fun l ->
          (* 4 input bits, space, 3 output bits *)
          Alcotest.(check int) "line shape" 8 (String.length l))
        lines)

let test_inequivalent_report () =
  with_state (fun st ->
      (* Multiplier and divider share the 8-PI/8-PO interface but compute
         different functions. *)
      ignore (exec_ok st "gen multiplier 4");
      ignore (exec_ok st "store a");
      ignore (exec_ok st "gen divider 4");
      ignore (exec_ok st "miter a");
      let out = exec_ok st "cec combined" in
      Alcotest.(check bool) "not equivalent" true (contains out "NOT EQUIVALENT"))

let test_map () =
  with_state (fun st ->
      ignore (exec_ok st "gen multiplier 6");
      ignore (exec_ok st "store g");
      let out = exec_ok st "map 5" in
      Alcotest.(check bool) "reports LUTs" true (contains out "LUTs");
      ignore (exec_ok st "miter g");
      let out = exec_ok st "cec sat" in
      Alcotest.(check bool) "mapped equivalent" true (contains out "EQUIVALENT"))

(* Regression: a [#] inside a word (e.g. a filename) is not a comment —
   only a [#] at the start of the line or after a blank is. *)
let test_hash_in_filename () =
  with_state (fun st ->
      let dir = Filename.temp_file "shell" ".d" in
      Sys.remove dir;
      Sys.mkdir dir 0o755;
      let file = Filename.concat dir "net#1.aag" in
      Fun.protect
        ~finally:(fun () ->
          if Sys.file_exists file then Sys.remove file;
          Sys.rmdir dir)
        (fun () ->
          ignore (exec_ok st "gen adder 4");
          let out = exec_ok st ("write " ^ file) in
          Alcotest.(check bool) "wrote" true (contains out "written");
          Alcotest.(check bool) "file exists" true (Sys.file_exists file);
          let out = exec_ok st ("read " ^ file) in
          Alcotest.(check bool) "reloaded" true (contains out "pi=8");
          (* Trailing comments still work. *)
          let out = exec_ok st "stats   # the adder again" in
          Alcotest.(check bool) "comment stripped" true (contains out "pi=8");
          Alcotest.(check string) "whole-line comment" ""
            (exec_ok st "# stats would fail on a blank state")))

(* Quotes group words: filenames may contain blanks and [;], and a
   quoted [;] does not split a script. *)
let test_quoted_filenames () =
  with_state (fun st ->
      let dir = Filename.temp_file "shell" ".d" in
      Sys.remove dir;
      Sys.mkdir dir 0o755;
      let file = Filename.concat dir "a;b c.aag" in
      Fun.protect
        ~finally:(fun () ->
          if Sys.file_exists file then Sys.remove file;
          Sys.rmdir dir)
        (fun () ->
          match
            Shell.Command.exec_script st
              (Printf.sprintf "gen voter 5; write \"%s\"; read \"%s\"" file file)
          with
          | Ok out ->
              Alcotest.(check bool) "file exists" true (Sys.file_exists file);
              Alcotest.(check bool) "reloaded" true (contains out "pi=5")
          | Error e -> Alcotest.failf "script failed: %s" e))

(* Script errors name the offending command and its 1-based index. *)
let test_script_error_index () =
  with_state (fun st ->
      match Shell.Command.exec_script st "gen adder 4\nfrobnicate; stats" with
      | Ok _ -> Alcotest.fail "script should fail"
      | Error e ->
          Alcotest.(check bool) "index" true (contains e "command 2");
          Alcotest.(check bool) "text" true (contains e "frobnicate");
          Alcotest.(check bool) "cause" true (contains e "unknown command"))

(* Concurrent sessions: N domains, each with its own state, all sharing
   the process-wide default pool.  Stores stay isolated, every check
   concludes correctly, and nothing crashes or deadlocks. *)
let test_concurrent_sessions () =
  let n = 4 in
  let results =
    Array.init n (fun i ->
        Domain.spawn (fun () ->
            let pool = Par.Pool.default () in
            let st = Shell.Command.create ~pool () in
            let name = Printf.sprintf "g%d" i in
            let script =
              Printf.sprintf
                "gen adder %d; store %s; xorflip; miter %s; cec sim; load %s"
                (4 + i) name name name
            in
            (* Another session's store name must be invisible here. *)
            let other = Printf.sprintf "g%d" ((i + 1) mod n) in
            ( Shell.Command.exec_script st script,
              Shell.Command.exec st ("load " ^ other) )))
    |> Array.map Domain.join
  in
  Array.iteri
    (fun i (script_result, load_missing) ->
      (match script_result with
      | Ok out ->
          Alcotest.(check bool)
            (Printf.sprintf "session %d equivalent" i)
            true (contains out "EQUIVALENT")
      | Error e -> Alcotest.failf "session %d failed: %s" i e);
      match load_missing with
      | Error e ->
          Alcotest.(check bool)
            (Printf.sprintf "session %d isolated" i)
            true (contains e "no stored network")
      | Ok _ -> Alcotest.failf "session %d saw another session's store" i)
    results

(* The default pool is created exactly once even under a concurrent
   first call (the lazy-init race regression). *)
let test_default_pool_once () =
  let pools =
    Array.init 8 (fun _ -> Domain.spawn (fun () -> Par.Pool.default ()))
    |> Array.map Domain.join
  in
  Array.iter
    (fun p -> Alcotest.(check bool) "same pool" true (p == pools.(0)))
    pools

let test_errors () =
  with_state (fun st ->
      ignore (exec_err st "gen nosuchfamily");
      ignore (exec_err st "gen adder -3");
      ignore (exec_err st "load missing");
      ignore (exec_err st "read /nonexistent/file.aag");
      ignore (exec_err st "frobnicate");
      (* Script stops at the first error. *)
      match Shell.Command.exec_script st "gen adder 4; frobnicate; stats" with
      | Error e -> Alcotest.(check bool) "reports" true (contains e "unknown command")
      | Ok _ -> Alcotest.fail "script should fail")

let () =
  Alcotest.run "shell"
    [
      ( "unit",
        [
          Alcotest.test_case "gen/stats" `Quick test_gen_and_stats;
          Alcotest.test_case "comments" `Quick test_comments_and_blank;
          Alcotest.test_case "no current" `Quick test_no_current;
          Alcotest.test_case "store/load/miter/cec" `Quick test_store_load_miter_cec;
          Alcotest.test_case "all engines" `Quick test_all_engines;
          Alcotest.test_case "certify" `Quick test_certify;
          Alcotest.test_case "script/files" `Quick test_script_and_files;
          Alcotest.test_case "sim output" `Quick test_sim_output;
          Alcotest.test_case "inequivalent" `Quick test_inequivalent_report;
          Alcotest.test_case "map" `Quick test_map;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "hash in filename" `Quick test_hash_in_filename;
          Alcotest.test_case "quoted filenames" `Quick test_quoted_filenames;
          Alcotest.test_case "script error index" `Quick test_script_error_index;
          Alcotest.test_case "concurrent sessions" `Quick
            test_concurrent_sessions;
          Alcotest.test_case "default pool once" `Quick test_default_pool_once;
        ] );
    ]
