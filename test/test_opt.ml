(* Optimisation passes: every pass must preserve function exactly;
   structural effects are also checked. *)

let passes =
  [
    ("balance", Opt.Balance.run);
    ("rewrite", Opt.Rewrite.run);
    ("refactor", fun g -> Opt.Refactor.run g);
    ("xorflip", Opt.Xorflip.run);
    ("light", Opt.Resyn.light);
  ]

let prop_pass_preserves name pass =
  QCheck.Test.make
    ~name:(name ^ " preserves function")
    ~count:40 Util.arb_seed
    (fun seed ->
      let g = Util.random_network ~pis:6 ~nodes:60 ~pos:4 seed in
      Util.equivalent_brute g (pass g))

let prop_resyn2_preserves =
  QCheck.Test.make ~name:"resyn2 preserves function" ~count:10 Util.arb_seed
    (fun seed ->
      let g = Util.random_network ~pis:6 ~nodes:50 ~pos:3 seed in
      Util.equivalent_brute g (Opt.Resyn.resyn2 g))

(* Wider and deeper instances than the quick checks above: different
   fanout/reconvergence statistics exercise different cut shapes. *)
let prop_pass_preserves_wide name pass =
  QCheck.Test.make
    ~name:(name ^ " preserves function (wide)")
    ~count:12 Util.arb_seed
    (fun seed ->
      let g = Util.random_network ~pis:9 ~nodes:140 ~pos:6 seed in
      Util.equivalent_brute g (pass g))

let prop_refactor_cut_sizes =
  QCheck.Test.make ~name:"refactor preserves function for k=6,8,10" ~count:12
    Util.arb_seed (fun seed ->
      let g = Util.random_network ~pis:7 ~nodes:70 ~pos:4 seed in
      List.for_all (fun k -> Util.equivalent_brute g (Opt.Refactor.run ~k g)) [ 6; 8; 10 ])

(* Random pipelines compose passes the way the fuzz generator does; the
   composition must also solve as a brute-force miter, exercising the
   exact workload construction of the fuzz harness. *)
let prop_pipeline_miter_solved =
  QCheck.Test.make ~name:"random pass pipeline yields a solved miter" ~count:15
    Util.arb_seed (fun seed ->
      let g = Util.random_network ~pis:6 ~nodes:60 ~pos:4 seed in
      let all = [| Opt.Balance.run; Opt.Rewrite.run; (fun g -> Opt.Refactor.run g);
                   Opt.Xorflip.run; Opt.Resyn.light |] in
      let rng = Sim.Rng.create ~seed:(Int64.of_int seed) in
      let h = ref g in
      for _ = 1 to 1 + Sim.Rng.int rng 3 do
        h := all.(Sim.Rng.int rng (Array.length all)) !h
      done;
      Util.solved_brute (Aig.Miter.build g !h))

let test_arith_preserved () =
  List.iter
    (fun (name, g) ->
      Alcotest.(check bool) name true (Util.equivalent_brute g (Opt.Resyn.resyn2 g)))
    [
      ("adder6", Gen.Arith.adder ~bits:6);
      ("mult5", Gen.Arith.multiplier ~bits:5);
      ("sqrt8", Gen.Arith.sqrt ~bits:8);
      ("voter11", Gen.Control.voter ~n:11);
    ]

let test_balance_reduces_chain_depth () =
  (* A long AND chain must balance to logarithmic depth. *)
  let g = Aig.Network.create () in
  let xs = Array.init 16 (fun _ -> Aig.Network.add_pi g) in
  let chain = Array.fold_left (fun acc x -> Aig.Network.add_and g acc x) xs.(0) (Array.sub xs 1 15) in
  Aig.Network.add_po g chain;
  Alcotest.(check int) "chain depth" 15 (Aig.Network.depth g);
  let b = Opt.Balance.run g in
  Alcotest.(check int) "balanced depth" 4 (Aig.Network.depth b);
  Alcotest.(check bool) "function" true (Util.equivalent_brute g b)

let test_xorflip_restructures () =
  (* The flipped circuit must differ structurally (the miter with the
     original is non-trivial) while remaining equivalent. *)
  let g = Gen.Arith.adder ~bits:6 in
  let f = Opt.Xorflip.run g in
  Alcotest.(check bool) "equivalent" true (Util.equivalent_brute g f);
  let m = Aig.Miter.build g f in
  Alcotest.(check bool) "non-trivial miter" true (Aig.Network.num_ands m > 0);
  Alcotest.(check bool) "not all outputs const" false (Aig.Miter.solved m)

let test_xorflip_involution_function () =
  (* Flipping twice returns to the original decomposition family. *)
  let g = Gen.Arith.adder ~bits:4 in
  let ff = Opt.Xorflip.run (Opt.Xorflip.run g) in
  Alcotest.(check bool) "still equivalent" true (Util.equivalent_brute g ff)

let test_rewrite_finds_redundancy () =
  (* A circuit with a redundant reconvergent cone: rewriting must shrink
     it.  f = (a & b) | (a & b & c) == a & b. *)
  let g = Aig.Network.create () in
  let a = Aig.Network.add_pi g and b = Aig.Network.add_pi g and c = Aig.Network.add_pi g in
  let ab = Aig.Network.add_and g a b in
  let abc = Aig.Network.add_and g ab c in
  let f = Aig.Network.add_or g ab abc in
  Aig.Network.add_po g f;
  let before = Aig.Network.num_ands g in
  let r = Opt.Rewrite.run g in
  Alcotest.(check bool) "shrank" true (Aig.Network.num_ands r < before);
  Alcotest.(check bool) "function" true (Util.equivalent_brute g r)

let test_drive_rebuild_default () =
  let g = Util.random_network ~pis:5 ~nodes:40 ~pos:3 77 in
  let r = Opt.Drive.rebuild g ~decide:(fun _ -> Opt.Drive.Default) in
  Alcotest.(check bool) "identity rebuild equivalent" true (Util.equivalent_brute g r);
  Alcotest.(check bool) "no growth" true (Aig.Network.num_ands r <= Aig.Network.num_ands g)

let test_conetv () =
  let g = Aig.Network.create () in
  let a = Aig.Network.add_pi g and b = Aig.Network.add_pi g and c = Aig.Network.add_pi g in
  let x = Aig.Network.add_and g a b in
  let y = Aig.Network.add_and g x (Aig.Lit.neg c) in
  Aig.Network.add_po g y;
  let inputs = [| Aig.Lit.node a; Aig.Lit.node b; Aig.Lit.node c |] in
  (match Opt.Conetv.cone_tt g ~inputs ~root:(Aig.Lit.node y) with
  | Some tt ->
      Alcotest.(check bool) "tt correct" true
        (Bv.Tt.equal tt (Util.global_tt g (Aig.Lit.make (Aig.Lit.node y) false)))
  | None -> Alcotest.fail "valid cut");
  let fanouts = Aig.Network.fanout_counts g in
  Alcotest.(check int) "mffc covers private cone" 2
    (Opt.Conetv.mffc_size g ~fanouts ~inputs ~root:(Aig.Lit.node y))

let prop_opt_shrinks_or_equal =
  QCheck.Test.make ~name:"rewrite never increases size" ~count:30 Util.arb_seed
    (fun seed ->
      let g = Util.random_network ~pis:6 ~nodes:80 ~pos:4 seed in
      Aig.Network.num_ands (Opt.Rewrite.run g) <= Aig.Network.num_ands g)

let () =
  Alcotest.run "opt"
    [
      ( "unit",
        [
          Alcotest.test_case "arith preserved" `Quick test_arith_preserved;
          Alcotest.test_case "balance chain" `Quick test_balance_reduces_chain_depth;
          Alcotest.test_case "xorflip restructures" `Quick test_xorflip_restructures;
          Alcotest.test_case "xorflip twice" `Quick test_xorflip_involution_function;
          Alcotest.test_case "rewrite redundancy" `Quick test_rewrite_finds_redundancy;
          Alcotest.test_case "drive default" `Quick test_drive_rebuild_default;
          Alcotest.test_case "conetv" `Quick test_conetv;
        ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          (prop_resyn2_preserves :: prop_opt_shrinks_or_equal
           :: prop_refactor_cut_sizes :: prop_pipeline_miter_solved
          :: List.map (fun (n, p) -> prop_pass_preserves n p) passes
          @ List.map
              (fun (n, p) -> prop_pass_preserves_wide n p)
              (("resyn2", Opt.Resyn.resyn2) :: passes)) );
    ]
