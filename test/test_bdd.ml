(* ROBDD package. *)

let test_basic_ops () =
  let m = Bdd.create ~num_vars:3 () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  let f = Bdd.bdd_and m x y in
  Alcotest.(check bool) "canonical and" true
    (Bdd.equal f (Bdd.bdd_and m y x));
  Alcotest.(check bool) "x & !x = 0" true
    (Bdd.is_false m (Bdd.bdd_and m x (Bdd.bdd_not m x)));
  Alcotest.(check bool) "x | !x = 1" true
    (Bdd.is_true m (Bdd.bdd_or m x (Bdd.bdd_not m x)));
  Alcotest.(check bool) "xor self" true (Bdd.is_false m (Bdd.bdd_xor m f f));
  Alcotest.(check bool) "double not" true (Bdd.equal f (Bdd.bdd_not m (Bdd.bdd_not m f)))

let test_eval_count () =
  let m = Bdd.create ~num_vars:3 () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 and z = Bdd.var m 2 in
  let maj =
    Bdd.bdd_or m
      (Bdd.bdd_or m (Bdd.bdd_and m x y) (Bdd.bdd_and m x z))
      (Bdd.bdd_and m y z)
  in
  Alcotest.(check (float 0.01)) "majority count" 4. (Bdd.count_sat m maj);
  Alcotest.(check bool) "110" true (Bdd.eval m maj [| true; true; false |]);
  Alcotest.(check bool) "100" false (Bdd.eval m maj [| true; false; false |]);
  match Bdd.any_sat m maj with
  | Some a -> Alcotest.(check bool) "witness" true (Bdd.eval m maj a)
  | None -> Alcotest.fail "majority is satisfiable"

let test_ite () =
  let m = Bdd.create ~num_vars:3 () in
  let s = Bdd.var m 0 and a = Bdd.var m 1 and b = Bdd.var m 2 in
  let f = Bdd.ite m s a b in
  for p = 0 to 7 do
    let v = Array.init 3 (fun i -> (p lsr i) land 1 = 1) in
    Alcotest.(check bool)
      (Printf.sprintf "ite %d" p)
      (if v.(0) then v.(1) else v.(2))
      (Bdd.eval m f v)
  done

let test_of_output_matches_aig () =
  let g = Util.random_network ~pis:6 ~nodes:50 ~pos:3 31 in
  let m = Bdd.create ~num_vars:6 () in
  for po = 0 to 2 do
    let b = Bdd.of_output m g po in
    for p = 0 to 63 do
      let v = Array.init 6 (fun i -> (p lsr i) land 1 = 1) in
      if Bdd.eval m b v <> Sim.Cex.check g v po then
        Alcotest.failf "po %d pattern %d" po p
    done
  done

let test_check_equivalence () =
  let g = Gen.Arith.adder ~bits:4 in
  let m = Aig.Miter.build g (Opt.Resyn.light g) in
  (match Bdd.check m with
  | `Equivalent -> ()
  | _ -> Alcotest.fail "adder vs optimised adder");
  let bad = Aig.Network.copy g in
  Aig.Network.set_po bad 2 (Aig.Lit.neg (Aig.Network.po bad 2));
  match Bdd.check (Aig.Miter.build g bad) with
  | `Inequivalent (cex, po) ->
      Alcotest.(check bool) "cex valid" true
        (Sim.Cex.check (Aig.Miter.build g bad) cex po)
  | _ -> Alcotest.fail "expected inequivalence"

let test_node_limit () =
  (* Multipliers have exponential BDDs: a small budget must abort. *)
  let g = Gen.Arith.multiplier ~bits:8 in
  let m = Aig.Miter.build g (Aig.Network.copy g) in
  (* A miter of identical circuits strashes to constants; use a
     non-trivially optimised one instead. *)
  let m2 = Aig.Miter.build g (Opt.Xorflip.run g) in
  ignore m;
  match Bdd.check ~node_limit:2000 m2 with
  | `Node_limit -> ()
  | `Timeout -> Alcotest.fail "expected node-limit abort (got step timeout)"
  | `Equivalent -> Alcotest.fail "expected node-limit abort (got equivalent)"
  | `Inequivalent _ -> Alcotest.fail "multiplier miter is equivalent"

let test_voter_friendly () =
  (* Symmetric functions have polynomial BDDs: the voter must verify within
     a modest budget — this is the portfolio's Table II crossover. *)
  let g = Gen.Control.voter ~n:21 in
  let m = Aig.Miter.build g (Opt.Resyn.light g) in
  match Bdd.check ~node_limit:200_000 m with
  | `Equivalent -> ()
  | `Node_limit | `Timeout -> Alcotest.fail "voter BDD should stay small"
  | `Inequivalent _ -> Alcotest.fail "voter miter is equivalent"

let prop_matches_brute =
  QCheck.Test.make ~name:"bdd check agrees with brute force" ~count:25
    Util.arb_seed (fun seed ->
      let g1 = Util.random_network ~pis:5 ~nodes:30 ~pos:2 seed in
      let g2 = Util.random_network ~pis:5 ~nodes:30 ~pos:2 (seed + 7) in
      let miter = Aig.Miter.build g1 g2 in
      match Bdd.check miter with
      | `Equivalent -> Util.equivalent_brute g1 g2
      | `Inequivalent (cex, po) ->
          (not (Util.equivalent_brute g1 g2)) && Sim.Cex.check miter cex po
      | `Node_limit | `Timeout -> false)

let () =
  Alcotest.run "bdd"
    [
      ( "unit",
        [
          Alcotest.test_case "basic ops" `Quick test_basic_ops;
          Alcotest.test_case "eval/count" `Quick test_eval_count;
          Alcotest.test_case "ite" `Quick test_ite;
          Alcotest.test_case "of_output" `Quick test_of_output_matches_aig;
          Alcotest.test_case "check" `Quick test_check_equivalence;
          Alcotest.test_case "node limit" `Quick test_node_limit;
          Alcotest.test_case "voter friendly" `Quick test_voter_friendly;
        ] );
      ("props", [ QCheck_alcotest.to_alcotest prop_matches_brute ]);
    ]
