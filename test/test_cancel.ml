(* Cooperative cancellation: token semantics, pre-set tokens unwinding
   every engine, the racing combinator, race-vs-sequential determinism and
   the deterministic parallel SAT-sweeping schedule. *)

(* --- token semantics ----------------------------------------------- *)

let test_token_basics () =
  let c = Par.Cancel.create () in
  Alcotest.(check bool) "fresh not set" false (Par.Cancel.is_set c);
  Alcotest.(check bool) "fresh poll" false (Par.Cancel.poll c);
  Par.Cancel.set c;
  Alcotest.(check bool) "set" true (Par.Cancel.is_set c);
  Alcotest.(check bool) "set poll" true (Par.Cancel.poll c);
  Par.Cancel.set c;
  Alcotest.(check bool) "idempotent" true (Par.Cancel.is_set c);
  Alcotest.(check bool) "opt none poll" false (Par.Cancel.poll_opt None);
  Alcotest.(check bool) "opt none is_set" false (Par.Cancel.is_set_opt None);
  Alcotest.(check bool) "opt some" true (Par.Cancel.poll_opt (Some c))

let test_token_deadline () =
  (* An already-expired deadline: is_set alone never consults the clock,
     the first poll latches expiry into the flag. *)
  let c = Par.Cancel.create ~deadline_in:(-1.0) () in
  Alcotest.(check bool) "expired but unpolled" false (Par.Cancel.is_set c);
  Alcotest.(check bool) "poll sees expiry" true (Par.Cancel.poll c);
  Alcotest.(check bool) "expiry latched" true (Par.Cancel.is_set c);
  let far = Par.Cancel.create ~deadline_in:3600.0 () in
  Alcotest.(check bool) "future deadline" false (Par.Cancel.poll far)

let test_token_check_raises () =
  let c = Par.Cancel.create () in
  Par.Cancel.check c;
  Par.Cancel.set c;
  Alcotest.check_raises "check raises" Par.Cancel.Cancelled (fun () ->
      Par.Cancel.check c)

let test_token_child () =
  (* Parent firing propagates into the child on poll… *)
  let p = Par.Cancel.create () in
  let c = Par.Cancel.child p in
  Alcotest.(check bool) "fresh child" false (Par.Cancel.poll c);
  Par.Cancel.set p;
  Alcotest.(check bool) "child unpolled" false (Par.Cancel.is_set c);
  Alcotest.(check bool) "child sees parent" true (Par.Cancel.poll c);
  Alcotest.(check bool) "latched" true (Par.Cancel.is_set c);
  (* …but setting a child never touches the parent (the racing
     portfolio's winner cancels the losers, not the request). *)
  let p2 = Par.Cancel.create () in
  let c2 = Par.Cancel.child p2 in
  Par.Cancel.set c2;
  Alcotest.(check bool) "child set" true (Par.Cancel.poll c2);
  Alcotest.(check bool) "parent clean" false (Par.Cancel.poll p2);
  (* A child may carry its own deadline independent of the parent. *)
  let c3 = Par.Cancel.child ~deadline_in:(-1.0) p2 in
  Alcotest.(check bool) "child deadline" true (Par.Cancel.poll c3);
  Alcotest.(check bool) "parent still clean" false (Par.Cancel.poll p2);
  (* An expired parent deadline also reaches the grandchild. *)
  let gp = Par.Cancel.create ~deadline_in:(-1.0) () in
  let gc = Par.Cancel.child (Par.Cancel.child gp) in
  Alcotest.(check bool) "grandchild sees expiry" true (Par.Cancel.poll gc)

(* --- a pre-set token unwinds every engine immediately --------------- *)

let preset () =
  let c = Par.Cancel.create () in
  Par.Cancel.set c;
  c

(* A miter that no engine solves structurally at build time. *)
let hard_miter () =
  let g = Gen.Arith.multiplier ~bits:4 in
  Aig.Miter.build g (Opt.Resyn.light g)

let test_solver_preset () =
  let s = Sat.Solver.create () in
  let x = Sat.Solver.new_var s and y = Sat.Solver.new_var s in
  let ( + ) v b = Sat.Solver.mklit v b in
  ignore (Sat.Solver.add_clause s [ x + false; y + false ]);
  ignore (Sat.Solver.add_clause s [ x + true; y + false ]);
  Alcotest.(check bool) "solve -> Unknown" true
    (Sat.Solver.solve ~cancel:(preset ()) s = Sat.Solver.Unknown);
  (* The solver stays usable after a cancelled call. *)
  Alcotest.(check bool) "still usable" true
    (Sat.Solver.solve s = Sat.Solver.Sat)

let test_bdd_preset () =
  Alcotest.(check bool) "bdd -> Timeout" true
    (Bdd.check ~cancel:(preset ()) (hard_miter ()) = `Timeout)

let test_bdd_step_budget () =
  (* A tiny step budget cuts the build off even under a huge node budget —
     the per-engine time-budget mechanism of the portfolio. *)
  (match Bdd.check ~node_limit:(1 lsl 20) ~step_limit:10 (hard_miter ()) with
  | `Timeout -> ()
  | _ -> Alcotest.fail "expected `Timeout under a 10-step budget");
  match Bdd.check ~node_limit:(1 lsl 20) (hard_miter ()) with
  | `Equivalent -> ()
  | _ -> Alcotest.fail "expected a proof without the budget"

let test_sweep_preset () =
  Util.with_pool @@ fun pool ->
  let o, _ = Sat.Sweep.check ~cancel:(preset ()) ~pool (hard_miter ()) in
  Alcotest.(check bool) "sweep -> Undecided" true (o = Sat.Sweep.Undecided);
  Alcotest.(check bool) "direct -> Undecided" true
    (Sat.Sweep.check_direct ~cancel:(preset ()) (hard_miter ())
    = Sat.Sweep.Undecided)

let test_engine_preset () =
  Util.with_pool @@ fun pool ->
  let r = Simsweep.Engine.run ~cancel:(preset ()) ~pool (hard_miter ()) in
  Alcotest.(check bool) "engine -> Undecided" true
    (r.Simsweep.Engine.outcome = Simsweep.Engine.Undecided);
  Alcotest.(check bool) "stats.cancelled" true
    r.Simsweep.Engine.stats.Simsweep.Stats.cancelled

let test_combined_preset () =
  (* A cancelled engine run must not fall through to the SAT sweeper. *)
  Util.with_pool @@ fun pool ->
  let c =
    Simsweep.Engine.check_with_fallback ~cancel:(preset ()) ~pool (hard_miter ())
  in
  Alcotest.(check bool) "combined -> Undecided" true
    (c.Simsweep.Engine.final = Simsweep.Engine.Undecided);
  Alcotest.(check bool) "no sat fallback" true
    (c.Simsweep.Engine.sat_outcome = None)

let test_portfolio_preset () =
  (* Every path through the portfolio honors the request token: the
     sequential chain threads it into each member engine, the race makes
     it the racers' parent. *)
  Util.with_pool @@ fun pool ->
  List.iter
    (fun mode ->
      let r =
        Simsweep.Portfolio.check ~mode ~cancel:(preset ()) ~pool (hard_miter ())
      in
      Alcotest.(check bool)
        (Simsweep.Portfolio.mode_name mode ^ " -> Undecided")
        true
        (r.Simsweep.Portfolio.outcome = Simsweep.Engine.Undecided);
      Alcotest.(check bool)
        (Simsweep.Portfolio.mode_name mode ^ " no winner")
        true
        (r.Simsweep.Portfolio.winner = None))
    [ `Sequential; `Race ]

let test_race_parent_token_stays_clean () =
  (* A conclusive race fires its internal child token, never the caller's
     per-request token: later work under the same request must not find
     it cancelled. *)
  let outer = Par.Cancel.create () in
  let instant v = { Simsweep.Portfolio.racer_name = "instant";
                    racer_run = (fun ~cancel:_ -> v);
                    racer_conclusive = (fun _ -> true) } in
  let ro = Simsweep.Portfolio.race ~cancel:outer [ instant 1; instant 2 ] in
  Alcotest.(check bool) "race had a winner" true (ro.Simsweep.Portfolio.race_winner <> None);
  Alcotest.(check bool) "outer token clean" false (Par.Cancel.poll outer)

let test_partition_preset () =
  Util.with_pool @@ fun pool ->
  let o, _ =
    Simsweep.Partition.check ~cancel:(preset ()) ~pool (hard_miter ())
  in
  Alcotest.(check bool) "partition -> Undecided" true
    (o = Simsweep.Engine.Undecided)

let test_certificate_preset () =
  Util.with_pool @@ fun pool ->
  let r, cert =
    Simsweep.Certificate.generate ~cancel:(preset ()) ~pool (hard_miter ())
  in
  Alcotest.(check bool) "certify -> Undecided" true
    (r.Simsweep.Engine.outcome = Simsweep.Engine.Undecided);
  Alcotest.(check bool) "no proof claimed" false
    cert.Simsweep.Certificate.claims_proved

let test_engine_deadline_token () =
  (* An expired deadline behaves exactly like an explicit set. *)
  Util.with_pool @@ fun pool ->
  let cancel = Par.Cancel.create ~deadline_in:(-1.0) () in
  let r = Simsweep.Engine.run ~cancel ~pool (hard_miter ()) in
  Alcotest.(check bool) "deadline -> Undecided" true
    (r.Simsweep.Engine.outcome = Simsweep.Engine.Undecided);
  Alcotest.(check bool) "stats.cancelled" true
    r.Simsweep.Engine.stats.Simsweep.Stats.cancelled

(* --- the racing combinator ------------------------------------------ *)

let fast v =
  {
    Simsweep.Portfolio.racer_name = "fast";
    racer_run = (fun ~cancel:_ -> v);
    racer_conclusive = (fun x -> x <> `Unknown);
  }

(* Returns only once cancelled — the deliberately stuck engine. *)
let hang =
  {
    Simsweep.Portfolio.racer_name = "hang";
    racer_run =
      (fun ~cancel ->
        while not (Par.Cancel.poll cancel) do
          Domain.cpu_relax ()
        done;
        raise Par.Cancel.Cancelled);
    racer_conclusive = (fun _ -> false);
  }

let test_race_cancels_hanging () =
  let open Simsweep.Portfolio in
  let ro = race [ fast `Eq; hang ] in
  (match ro.race_winner with
  | Some (0, `Eq) -> ()
  | _ -> Alcotest.fail "expected the fast racer to win");
  Alcotest.(check bool) "hanging racer cancelled" true (ro.race_results.(1) = None);
  (match ro.race_cancel_latency with
  | Some l -> Alcotest.(check bool) "latency bounded" true (l >= 0.0 && l < 20.0)
  | None -> Alcotest.fail "expected a cancel latency");
  Alcotest.(check bool) "race returned promptly" true (ro.race_time < 30.0)

let test_race_spawned_winner_cancels_caller () =
  (* The winner on a spawned domain must unwind racer 0 on the calling
     domain. *)
  let open Simsweep.Portfolio in
  let ro = race [ hang; fast `Ineq ] in
  (match ro.race_winner with
  | Some (1, `Ineq) -> ()
  | _ -> Alcotest.fail "expected the spawned racer to win");
  Alcotest.(check bool) "caller racer cancelled" true (ro.race_results.(0) = None)

let test_race_inconclusive_no_cancel () =
  (* Nobody concludes: nobody is cancelled, no winner, no latency. *)
  let open Simsweep.Portfolio in
  let ro = race [ fast `Unknown; fast `Unknown ] in
  Alcotest.(check bool) "no winner" true (ro.race_winner = None);
  Alcotest.(check bool) "no latency" true (ro.race_cancel_latency = None);
  Alcotest.(check bool) "all results kept" true
    (Array.for_all Option.is_some ro.race_results)

let test_race_crash_propagates () =
  (* A crashed racer fires the token (so the others unwind) and the
     exception surfaces to the caller. *)
  let open Simsweep.Portfolio in
  let boom =
    {
      racer_name = "boom";
      racer_run = (fun ~cancel:_ -> failwith "boom");
      racer_conclusive = (fun _ -> false);
    }
  in
  Alcotest.check_raises "crash re-raised" (Failure "boom") (fun () ->
      ignore (race [ hang; boom ]))

(* --- portfolio race mode -------------------------------------------- *)

let no_oversubscription pool (r : Simsweep.Portfolio.result) =
  (* The invariant behind graceful degrade: a race only actually runs when
     pool workers plus the two racer domains fit the machine. *)
  if r.Simsweep.Portfolio.mode_used = `Race then
    Alcotest.(check bool) "no oversubscription" true
      (Par.Pool.num_workers pool + Simsweep.Portfolio.race_domains
      <= Domain.recommended_domain_count ())
  else
    Alcotest.(check bool) "sequential has no cancel latency" true
      (r.Simsweep.Portfolio.cancel_latency = None)

let test_sizing () =
  Alcotest.(check int) "race domains" 2 Simsweep.Portfolio.race_domains;
  let p = Simsweep.Portfolio.recommended_pool_domains () in
  Alcotest.(check bool) "pool size positive" true (p >= 1);
  Alcotest.(check bool) "pool + racers fit (or floor of 1)" true
    (p + Simsweep.Portfolio.race_domains
     <= max (Domain.recommended_domain_count ())
          (1 + Simsweep.Portfolio.race_domains))

let conclusive = function
  | Simsweep.Engine.Proved | Simsweep.Engine.Disproved _ -> true
  | Simsweep.Engine.Undecided -> false

let test_race_agrees_with_sequential () =
  (* Determinism across modes: on miters every engine can decide, the race
     and the sequential portfolio must reach the same verdict (the racing
     schedule may pick a different winner, never a different answer).
     Degrades to sequential-vs-sequential on single-core machines — still
     a valid replay check of the dispatch path. *)
  Util.with_pool @@ fun pool ->
  List.iter
    (fun seed ->
      let g1 = Util.random_network ~pis:5 ~nodes:40 ~pos:3 seed in
      let g2 =
        if seed mod 2 = 0 then Opt.Resyn.light g1
        else Util.random_network ~pis:5 ~nodes:40 ~pos:3 (seed + 11)
      in
      let m = Aig.Miter.build g1 g2 in
      let s = Simsweep.Portfolio.check ~mode:`Sequential ~pool m in
      let r = Simsweep.Portfolio.check ~mode:`Race ~pool m in
      no_oversubscription pool r;
      Alcotest.(check bool) "sequential conclusive" true
        (conclusive s.Simsweep.Portfolio.outcome);
      Alcotest.(check bool) "race conclusive" true
        (conclusive r.Simsweep.Portfolio.outcome);
      (match (s.Simsweep.Portfolio.outcome, r.Simsweep.Portfolio.outcome) with
      | Simsweep.Engine.Proved, Simsweep.Engine.Proved -> ()
      | Simsweep.Engine.Disproved (c1, p1), Simsweep.Engine.Disproved (c2, p2) ->
          Alcotest.(check bool) "seq cex replays" true (Sim.Cex.check m c1 p1);
          Alcotest.(check bool) "race cex replays" true (Sim.Cex.check m c2 p2)
      | _ -> Alcotest.failf "mode disagreement on seed %d" seed);
      Alcotest.(check bool) "race winner named" true
        (r.Simsweep.Portfolio.winner <> None);
      Alcotest.(check bool) "race reports engine times" true
        (r.Simsweep.Portfolio.per_engine_time <> []))
    [ 1; 2; 3; 4; 5; 6 ]

(* --- deterministic parallel SAT sweeping ----------------------------- *)

(* Structural identity of two networks: same node table, same outputs. *)
let same_network a b =
  Aig.Network.num_nodes a = Aig.Network.num_nodes b
  && Aig.Network.num_pis a = Aig.Network.num_pis b
  && Aig.Network.num_pos a = Aig.Network.num_pos b
  && Aig.Network.pos a = Aig.Network.pos b
  &&
  let ok = ref true in
  Aig.Network.iter_ands a (fun n ->
      if
        (not (Aig.Network.is_and b n))
        || Aig.Network.fanin0 a n <> Aig.Network.fanin0 b n
        || Aig.Network.fanin1 a n <> Aig.Network.fanin1 b n
      then ok := false);
  !ok

let stats_tuple (s : Sat.Sweep.stats) =
  ( s.Sat.Sweep.sat_calls, s.sat_unsat, s.sat_sat, s.sat_unknown, s.merged,
    s.rounds, s.cex_count, s.rsim_splits, s.candidates, s.conflicts,
    s.batches, s.cnf_loads )

(* Small batches force several parallel proof batches even on the small
   networks the property generates. *)
let det_config = { Sat.Sweep.default_config with pair_batch = 4 }

let with_n_domains n f =
  let pool = Par.Pool.create ~num_domains:n () in
  Fun.protect ~finally:(fun () -> Par.Pool.shutdown pool) (fun () -> f pool)

let prop_parallel_sweep_deterministic =
  QCheck.Test.make ~name:"parallel sweep == sequential schedule" ~count:12
    Util.arb_seed (fun seed ->
      let g1 = Util.random_network ~pis:6 ~nodes:50 ~pos:3 seed in
      let g2 =
        if seed mod 2 = 0 then Opt.Resyn.light g1
        else Util.random_network ~pis:6 ~nodes:50 ~pos:3 (seed + 7)
      in
      let m = Aig.Miter.build g1 g2 in
      let o1, s1 = with_n_domains 1 (fun pool ->
          Sat.Sweep.check ~config:det_config ~pool m) in
      let o3, s3 = with_n_domains 3 (fun pool ->
          Sat.Sweep.check ~config:det_config ~pool m) in
      (* Bit-identical: same verdict (CEX included) and same stats,
         whatever the pool size. *)
      o1 = o3 && stats_tuple s1 = stats_tuple s3)

let prop_parallel_fraig_deterministic =
  QCheck.Test.make ~name:"parallel fraig == sequential schedule" ~count:8
    Util.arb_seed (fun seed ->
      let g = Util.random_network ~pis:6 ~nodes:60 ~pos:4 seed in
      let r1, s1 = with_n_domains 1 (fun pool ->
          Sat.Sweep.fraig ~config:det_config ~pool g) in
      let r3, s3 = with_n_domains 3 (fun pool ->
          Sat.Sweep.fraig ~config:det_config ~pool g) in
      same_network r1 r3 && stats_tuple s1 = stats_tuple s3)

let () =
  Alcotest.run "cancel"
    [
      ( "token",
        [
          Alcotest.test_case "basics" `Quick test_token_basics;
          Alcotest.test_case "deadline" `Quick test_token_deadline;
          Alcotest.test_case "check raises" `Quick test_token_check_raises;
          Alcotest.test_case "child link" `Quick test_token_child;
        ] );
      ( "engines",
        [
          Alcotest.test_case "solver" `Quick test_solver_preset;
          Alcotest.test_case "bdd" `Quick test_bdd_preset;
          Alcotest.test_case "bdd step budget" `Quick test_bdd_step_budget;
          Alcotest.test_case "sweep" `Quick test_sweep_preset;
          Alcotest.test_case "engine" `Quick test_engine_preset;
          Alcotest.test_case "combined" `Quick test_combined_preset;
          Alcotest.test_case "portfolio" `Quick test_portfolio_preset;
          Alcotest.test_case "race parent clean" `Quick
            test_race_parent_token_stays_clean;
          Alcotest.test_case "partition" `Quick test_partition_preset;
          Alcotest.test_case "certificate" `Quick test_certificate_preset;
          Alcotest.test_case "engine deadline" `Quick test_engine_deadline_token;
        ] );
      ( "race",
        [
          Alcotest.test_case "cancels hanging" `Quick test_race_cancels_hanging;
          Alcotest.test_case "spawned winner" `Quick
            test_race_spawned_winner_cancels_caller;
          Alcotest.test_case "inconclusive" `Quick test_race_inconclusive_no_cancel;
          Alcotest.test_case "crash propagates" `Quick test_race_crash_propagates;
          Alcotest.test_case "sizing" `Quick test_sizing;
          Alcotest.test_case "agrees with sequential" `Quick
            test_race_agrees_with_sequential;
        ] );
      ( "determinism",
        List.map QCheck_alcotest.to_alcotest
          [ prop_parallel_sweep_deterministic; prop_parallel_fraig_deterministic ]
      );
    ]
