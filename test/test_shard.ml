(* Multi-process sharded sweeping: plan shape, counter-example lifting
   across shard PI renumbering, verdict determinism for any worker count,
   crash rescheduling, deadline kill+reap (no zombies), and the
   cube-and-conquer tail. *)

let mult ~bits = Gen.Arith.multiplier ~bits

(* Equivalent-by-construction miter: a circuit against its resynthesis. *)
let equiv_miter g = Aig.Miter.build g (Opt.Resyn.light g)

(* Subtly faulty copy: PO 0 is masked with PI 0, so the miter is
   inequivalent on some inputs but no PO is constant (the fault must not
   be decidable at plan time). *)
let faulty g =
  let h = Aig.Network.copy g in
  let p0 = Aig.Network.po h 0 in
  let x0 = Aig.Lit.make (Aig.Network.pi h 0) false in
  Aig.Network.set_po h 0 (Aig.Network.add_and h p0 x0);
  h

(* Disjoint union of two miters: fresh PIs for [m2], POs appended after
   [m1]'s — [m2]'s cones live at high PI indices, so extracting them into
   a shard renumbers every PI. *)
let disjoint_union m1 m2 =
  let g = Aig.Network.copy m1 in
  let pi_map =
    Array.init (Aig.Network.num_pis m2) (fun _ -> Aig.Network.add_pi g)
  in
  let pos2 = Aig.Miter.append g m2 ~pi_map in
  Array.iter (fun l -> Aig.Network.add_po g l) pos2;
  g

let config ~workers =
  {
    Shard.Check.default_config with
    Shard.Check.workers;
    max_shard_ands = 64;
    deadline_s = Some 120.;
  }

(* --- plan ------------------------------------------------------------- *)

let test_plan_pack_and_split () =
  (* A doubled miter has many tiny groups: they must pack into far fewer
     shards, covering every PO exactly once. *)
  let m = Gen.Double.times 3 (equiv_miter (Gen.Arith.adder ~bits:4)) in
  let plan = Shard.Plan.build ~max_ands:200 m in
  Alcotest.(check bool) "many groups" true (plan.Shard.Plan.groups >= 8);
  Alcotest.(check bool)
    "packed into fewer shards" true
    (List.length plan.Shard.Plan.shards < plan.Shard.Plan.groups);
  let seen = Array.make (Aig.Network.num_pos m) 0 in
  List.iter
    (fun sh ->
      List.iter (fun po -> seen.(po) <- seen.(po) + 1) sh.Shard.Plan.pos)
    plan.Shard.Plan.shards;
  (* Constant-false POs are settled at plan time; every other PO appears
     in exactly one shard. *)
  Array.iteri
    (fun po n ->
      let const_false = Aig.Network.po m po = Aig.Lit.const_false in
      Alcotest.(check int)
        (Printf.sprintf "po %d covered once" po)
        (if const_false then 0 else 1)
        n)
    seen;
  (* A single big support group must be split at PO boundaries. *)
  let big = equiv_miter (mult ~bits:6) in
  let plan2 = Shard.Plan.build ~max_ands:200 big in
  Alcotest.(check bool) "group split" true (plan2.Shard.Plan.split_groups >= 1);
  Alcotest.(check bool)
    "window shards" true
    (List.length plan2.Shard.Plan.shards > 1)

let test_lift_cex_unit () =
  let sub_cex = [| true; false; true |] in
  let lifted =
    Simsweep.Partition.lift_cex ~pi_origin:[| 5; 2; 9 |] ~num_pis:11 sub_cex
  in
  Alcotest.(check int) "width" 11 (Array.length lifted);
  Array.iteri
    (fun i v -> Alcotest.(check bool) (Printf.sprintf "pi %d" i) (i = 5 || i = 9) v)
    lifted

(* --- end to end ------------------------------------------------------- *)

let test_disproof_lifted_across_renumbering () =
  (* The faulty block sits behind an equivalent block, so its shard PIs
     are renumbered; the reported CEX must still replay on the full
     miter at the full-miter PO index. *)
  let clean = equiv_miter (mult ~bits:4) in
  let adder = Gen.Arith.adder ~bits:4 in
  let bad = Aig.Miter.build adder (faulty adder) in
  let full = disjoint_union clean bad in
  let outcome, _ = Shard.Check.check ~config:(config ~workers:2) full in
  match outcome with
  | Simsweep.Engine.Disproved (cex, po) ->
      Alcotest.(check bool)
        "po lies in the appended block" true
        (po >= Aig.Network.num_pos clean);
      Alcotest.(check int) "cex covers all pis" (Aig.Network.num_pis full)
        (Array.length cex);
      Alcotest.(check bool) "cex replays on the full miter" true
        (Sim.Cex.check full cex po)
  | Simsweep.Engine.Proved -> Alcotest.fail "faulty miter proved"
  | Simsweep.Engine.Undecided -> Alcotest.fail "faulty miter undecided"

let test_verdict_deterministic_across_worker_counts () =
  let eq = equiv_miter (mult ~bits:5) in
  let adder = Gen.Arith.adder ~bits:6 in
  let ineq = Aig.Miter.build adder (faulty adder) in
  List.iter
    (fun workers ->
      let outcome, _ = Shard.Check.check ~config:(config ~workers) eq in
      (match outcome with
      | Simsweep.Engine.Proved -> ()
      | _ -> Alcotest.fail (Printf.sprintf "equivalent: %d workers" workers));
      let outcome, _ = Shard.Check.check ~config:(config ~workers) ineq in
      match outcome with
      | Simsweep.Engine.Disproved (cex, po) ->
          Alcotest.(check bool)
            (Printf.sprintf "cex replays (%d workers)" workers)
            true (Sim.Cex.check ineq cex po)
      | _ -> Alcotest.fail (Printf.sprintf "inequivalent: %d workers" workers))
    [ 1; 2; 3 ]

let test_crash_rescheduling () =
  let m = equiv_miter (mult ~bits:5) in
  let config =
    {
      (config ~workers:2) with
      Shard.Check.test_kill_worker = Some 0;
      max_respawns = 2;
    }
  in
  let outcome, st = Shard.Check.check ~config m in
  Alcotest.(check bool) "a worker crashed" true (st.Shard.Stats.workers_crashed >= 1);
  Alcotest.(check bool) "a replacement spawned" true (st.Shard.Stats.respawns >= 1);
  match outcome with
  | Simsweep.Engine.Proved -> ()
  | _ -> Alcotest.fail "verdict lost with the killed worker"

let test_deadline_kills_and_reaps () =
  (* A SAT-hard miter (multiplier, engine skipped) with a short deadline:
     the check must come back Undecided with every worker process gone —
     no zombies, no survivors. *)
  let m = equiv_miter (mult ~bits:8) in
  let config =
    {
      (config ~workers:2) with
      Shard.Check.direct_sat = true;
      stall_conflicts = max_int;
      deadline_s = Some 0.3;
    }
  in
  let outcome, st = Shard.Check.check ~config m in
  (match outcome with
  | Simsweep.Engine.Disproved _ -> Alcotest.fail "equivalent miter disproved"
  | _ -> ());
  Alcotest.(check bool) "workers were spawned" true
    (st.Shard.Stats.workers_spawned >= 2);
  (* Every worker pid must be dead (ESRCH on signal 0)... *)
  List.iter
    (fun pid ->
      let alive = match Unix.kill pid 0 with () -> true | exception _ -> false in
      Alcotest.(check bool) (Printf.sprintf "pid %d reaped" pid) false alive)
    st.Shard.Stats.worker_pids;
  (* ...and none may linger as a zombie: with all children reaped,
     waitpid(-1) raises ECHILD. *)
  match Unix.waitpid [ Unix.WNOHANG ] (-1) with
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
  | pid, _ -> Alcotest.fail (Printf.sprintf "unreaped child %d" pid)

let test_cube_and_conquer_tail () =
  (* Engine skipped and a stall budget of 2 conflicts: every shard stalls
     immediately and must be finished by the cube tail. *)
  let m = equiv_miter (mult ~bits:5) in
  let config =
    {
      (config ~workers:2) with
      Shard.Check.direct_sat = true;
      stall_conflicts = 2;
      max_shard_ands = 128;
    }
  in
  let outcome, st = Shard.Check.check ~config m in
  (match outcome with
  | Simsweep.Engine.Proved -> ()
  | Simsweep.Engine.Disproved _ -> Alcotest.fail "equivalent miter disproved"
  | Simsweep.Engine.Undecided -> Alcotest.fail "cube tail left the miter undecided");
  Alcotest.(check bool) "cubes were solved" true (st.Shard.Stats.cubes_solved > 0)

let () =
  (* Coordinators in these tests re-exec this binary as their workers. *)
  Shard.Worker.maybe_become_worker ();
  Alcotest.run "shard"
    [
      ( "plan",
        [
          Alcotest.test_case "pack and split" `Quick test_plan_pack_and_split;
          Alcotest.test_case "lift_cex unit" `Quick test_lift_cex_unit;
        ] );
      ( "coordinator",
        [
          Alcotest.test_case "disproof lifted" `Quick
            test_disproof_lifted_across_renumbering;
          Alcotest.test_case "worker-count determinism" `Slow
            test_verdict_deterministic_across_worker_counts;
          Alcotest.test_case "crash rescheduling" `Quick test_crash_rescheduling;
          Alcotest.test_case "deadline kill+reap" `Quick
            test_deadline_kills_and_reaps;
          Alcotest.test_case "cube-and-conquer tail" `Quick
            test_cube_and_conquer_tail;
        ] );
    ]
