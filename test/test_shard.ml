(* Multi-process sharded sweeping: plan shape, counter-example lifting
   across shard PI renumbering, verdict determinism for any worker count,
   crash rescheduling, deadline kill+reap (no zombies), and the
   cube-and-conquer tail. *)

let mult ~bits = Gen.Arith.multiplier ~bits

(* Equivalent-by-construction miter: a circuit against its resynthesis. *)
let equiv_miter g = Aig.Miter.build g (Opt.Resyn.light g)

(* Subtly faulty copy: PO 0 is masked with PI 0, so the miter is
   inequivalent on some inputs but no PO is constant (the fault must not
   be decidable at plan time). *)
let faulty g =
  let h = Aig.Network.copy g in
  let p0 = Aig.Network.po h 0 in
  let x0 = Aig.Lit.make (Aig.Network.pi h 0) false in
  Aig.Network.set_po h 0 (Aig.Network.add_and h p0 x0);
  h

(* Disjoint union of two miters: fresh PIs for [m2], POs appended after
   [m1]'s — [m2]'s cones live at high PI indices, so extracting them into
   a shard renumbers every PI. *)
let disjoint_union m1 m2 =
  let g = Aig.Network.copy m1 in
  let pi_map =
    Array.init (Aig.Network.num_pis m2) (fun _ -> Aig.Network.add_pi g)
  in
  let pos2 = Aig.Miter.append g m2 ~pi_map in
  Array.iter (fun l -> Aig.Network.add_po g l) pos2;
  g

let config ~workers =
  {
    Shard.Check.default_config with
    Shard.Check.workers;
    max_shard_ands = 64;
    deadline_s = Some 120.;
  }

(* --- plan ------------------------------------------------------------- *)

let test_plan_pack_and_split () =
  (* A doubled miter has many tiny groups: they must pack into far fewer
     shards, covering every PO exactly once. *)
  let m = Gen.Double.times 3 (equiv_miter (Gen.Arith.adder ~bits:4)) in
  let plan = Shard.Plan.build ~max_ands:200 m in
  Alcotest.(check bool) "many groups" true (plan.Shard.Plan.groups >= 8);
  Alcotest.(check bool)
    "packed into fewer shards" true
    (List.length plan.Shard.Plan.shards < plan.Shard.Plan.groups);
  let seen = Array.make (Aig.Network.num_pos m) 0 in
  List.iter
    (fun sh ->
      List.iter (fun po -> seen.(po) <- seen.(po) + 1) sh.Shard.Plan.pos)
    plan.Shard.Plan.shards;
  (* Constant-false POs are settled at plan time; every other PO appears
     in exactly one shard. *)
  Array.iteri
    (fun po n ->
      let const_false = Aig.Network.po m po = Aig.Lit.const_false in
      Alcotest.(check int)
        (Printf.sprintf "po %d covered once" po)
        (if const_false then 0 else 1)
        n)
    seen;
  (* A single big support group must be split at PO boundaries. *)
  let big = equiv_miter (mult ~bits:6) in
  let plan2 = Shard.Plan.build ~max_ands:200 big in
  Alcotest.(check bool) "group split" true (plan2.Shard.Plan.split_groups >= 1);
  Alcotest.(check bool)
    "window shards" true
    (List.length plan2.Shard.Plan.shards > 1)

let test_lift_cex_unit () =
  let sub_cex = [| true; false; true |] in
  let lifted =
    Simsweep.Partition.lift_cex ~pi_origin:[| 5; 2; 9 |] ~num_pis:11 sub_cex
  in
  Alcotest.(check int) "width" 11 (Array.length lifted);
  Array.iteri
    (fun i v -> Alcotest.(check bool) (Printf.sprintf "pi %d" i) (i = 5 || i = 9) v)
    lifted

(* --- end to end ------------------------------------------------------- *)

let test_disproof_lifted_across_renumbering () =
  (* The faulty block sits behind an equivalent block, so its shard PIs
     are renumbered; the reported CEX must still replay on the full
     miter at the full-miter PO index. *)
  let clean = equiv_miter (mult ~bits:4) in
  let adder = Gen.Arith.adder ~bits:4 in
  let bad = Aig.Miter.build adder (faulty adder) in
  let full = disjoint_union clean bad in
  let outcome, _ = Shard.Check.check ~config:(config ~workers:2) full in
  match outcome with
  | Simsweep.Engine.Disproved (cex, po) ->
      Alcotest.(check bool)
        "po lies in the appended block" true
        (po >= Aig.Network.num_pos clean);
      Alcotest.(check int) "cex covers all pis" (Aig.Network.num_pis full)
        (Array.length cex);
      Alcotest.(check bool) "cex replays on the full miter" true
        (Sim.Cex.check full cex po)
  | Simsweep.Engine.Proved -> Alcotest.fail "faulty miter proved"
  | Simsweep.Engine.Undecided -> Alcotest.fail "faulty miter undecided"

let test_verdict_deterministic_across_worker_counts () =
  let eq = equiv_miter (mult ~bits:5) in
  let adder = Gen.Arith.adder ~bits:6 in
  let ineq = Aig.Miter.build adder (faulty adder) in
  List.iter
    (fun workers ->
      let outcome, _ = Shard.Check.check ~config:(config ~workers) eq in
      (match outcome with
      | Simsweep.Engine.Proved -> ()
      | _ -> Alcotest.fail (Printf.sprintf "equivalent: %d workers" workers));
      let outcome, _ = Shard.Check.check ~config:(config ~workers) ineq in
      match outcome with
      | Simsweep.Engine.Disproved (cex, po) ->
          Alcotest.(check bool)
            (Printf.sprintf "cex replays (%d workers)" workers)
            true (Sim.Cex.check ineq cex po)
      | _ -> Alcotest.fail (Printf.sprintf "inequivalent: %d workers" workers))
    [ 1; 2; 3 ]

let test_crash_rescheduling () =
  let m = equiv_miter (mult ~bits:5) in
  let config =
    {
      (config ~workers:2) with
      Shard.Check.test_kill_worker = Some 0;
      max_respawns = 2;
    }
  in
  let outcome, st = Shard.Check.check ~config m in
  Alcotest.(check bool) "a worker crashed" true (st.Shard.Stats.workers_crashed >= 1);
  Alcotest.(check bool) "a replacement spawned" true (st.Shard.Stats.respawns >= 1);
  match outcome with
  | Simsweep.Engine.Proved -> ()
  | _ -> Alcotest.fail "verdict lost with the killed worker"

let test_deadline_kills_and_reaps () =
  (* A SAT-hard miter (multiplier, engine skipped) with a short deadline:
     the check must come back Undecided with every worker process gone —
     no zombies, no survivors. *)
  let m = equiv_miter (mult ~bits:8) in
  let config =
    {
      (config ~workers:2) with
      Shard.Check.direct_sat = true;
      stall_conflicts = max_int;
      deadline_s = Some 0.3;
    }
  in
  let outcome, st = Shard.Check.check ~config m in
  (match outcome with
  | Simsweep.Engine.Disproved _ -> Alcotest.fail "equivalent miter disproved"
  | _ -> ());
  Alcotest.(check bool) "workers were spawned" true
    (st.Shard.Stats.workers_spawned >= 2);
  (* Every worker pid must be dead (ESRCH on signal 0)... *)
  List.iter
    (fun pid ->
      let alive = match Unix.kill pid 0 with () -> true | exception _ -> false in
      Alcotest.(check bool) (Printf.sprintf "pid %d reaped" pid) false alive)
    st.Shard.Stats.worker_pids;
  (* ...and none may linger as a zombie: with all children reaped,
     waitpid(-1) raises ECHILD. *)
  match Unix.waitpid [ Unix.WNOHANG ] (-1) with
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
  | pid, _ -> Alcotest.fail (Printf.sprintf "unreaped child %d" pid)

let test_cube_and_conquer_tail () =
  (* Engine skipped and a stall budget of 2 conflicts: every shard stalls
     immediately and must be finished by the cube tail. *)
  let m = equiv_miter (mult ~bits:5) in
  let config =
    {
      (config ~workers:2) with
      Shard.Check.direct_sat = true;
      stall_conflicts = 2;
      max_shard_ands = 128;
    }
  in
  let outcome, st = Shard.Check.check ~config m in
  (match outcome with
  | Simsweep.Engine.Proved -> ()
  | Simsweep.Engine.Disproved _ -> Alcotest.fail "equivalent miter disproved"
  | Simsweep.Engine.Undecided -> Alcotest.fail "cube tail left the miter undecided");
  Alcotest.(check bool) "cubes were solved" true (st.Shard.Stats.cubes_solved > 0)

(* --- data plane ------------------------------------------------------- *)

(* Nothing this process created may survive: the registry must be empty
   and no segment file of ours may remain on disk. *)
let no_leaked_segments ctx =
  Alcotest.(check (list string))
    (ctx ^ ": no live segments")
    []
    (Shard.Shm.live_segments ());
  let mine = Printf.sprintf "%s%d-" Shard.Shm.prefix (Unix.getpid ()) in
  let leaked =
    Sys.readdir (Shard.Shm.segment_dir ())
    |> Array.to_list
    |> List.filter (String.starts_with ~prefix:mine)
  in
  Alcotest.(check (list string)) (ctx ^ ": no leaked segment files") [] leaked

let test_transport_agreement () =
  (* Same miter, same worker counts, both transports — verdicts and the
     per-shard verdict entries must be bit-identical.  Cube-and-conquer
     forced on (stall budget 2) so the reduced-miter segment path runs. *)
  let eq = equiv_miter (mult ~bits:5) in
  let entry_sig st =
    st.Shard.Stats.entries
    |> List.map (fun e -> (e.Shard.Stats.e_shard, e.Shard.Stats.e_verdict))
    |> List.sort compare
  in
  let run m workers transport =
    let config =
      {
        (config ~workers) with
        Shard.Check.transport;
        direct_sat = true;
        stall_conflicts = 2;
        max_shard_ands = 128;
      }
    in
    Shard.Check.check ~config m
  in
  let reference = ref None in
  List.iter
    (fun workers ->
      let o_shm, st_shm = run eq workers `Shm in
      let o_inl, st_inl = run eq workers `Inline in
      (match (o_shm, o_inl) with
      | Simsweep.Engine.Proved, Simsweep.Engine.Proved -> ()
      | _ -> Alcotest.failf "equivalent miter not proved (%d workers)" workers);
      Alcotest.(check string) "transport tags" "shm" st_shm.Shard.Stats.transport;
      Alcotest.(check string) "inline tag" "inline" st_inl.Shard.Stats.transport;
      Alcotest.(check bool)
        (Printf.sprintf "entries agree across transports (%d workers)" workers)
        true
        (entry_sig st_shm = entry_sig st_inl);
      (* ...and across worker counts. *)
      (match !reference with
      | None -> reference := Some (entry_sig st_shm)
      | Some r ->
          Alcotest.(check bool)
            (Printf.sprintf "entries agree across worker counts (%d)" workers)
            true
            (entry_sig st_shm = r));
      Alcotest.(check bool) "shm created segments" true
        (st_shm.Shard.Stats.segments_created > 0);
      Alcotest.(check int) "inline created none" 0
        st_inl.Shard.Stats.segments_created;
      Alcotest.(check bool) "shm moved fewer payload bytes" true
        (st_shm.Shard.Stats.bytes_tx < st_inl.Shard.Stats.bytes_tx))
    [ 1; 2; 3 ];
  (* A disproof must be found and replay identically on both transports. *)
  let adder = Gen.Arith.adder ~bits:6 in
  let ineq = Aig.Miter.build adder (faulty adder) in
  List.iter
    (fun transport ->
      match run ineq 2 transport with
      | Simsweep.Engine.Disproved (cex, po), _ ->
          Alcotest.(check bool) "cex replays" true (Sim.Cex.check ineq cex po)
      | _ -> Alcotest.fail "inequivalent miter not disproved")
    [ `Shm; `Inline ];
  no_leaked_segments "transport agreement"

let test_segment_lifecycle () =
  let m = equiv_miter (mult ~bits:5) in
  (* Normal path with cube fan-out: every refcount returns to zero, so
     every segment created is unlinked before [check] returns. *)
  let cube_config =
    {
      (config ~workers:2) with
      Shard.Check.direct_sat = true;
      stall_conflicts = 2;
      max_shard_ands = 128;
    }
  in
  let outcome, st = Shard.Check.check ~config:cube_config m in
  (match outcome with
  | Simsweep.Engine.Proved -> ()
  | _ -> Alcotest.fail "equivalent miter not proved");
  Alcotest.(check bool) "segments created" true
    (st.Shard.Stats.segments_created > 0);
  Alcotest.(check int) "every segment unlinked"
    st.Shard.Stats.segments_created st.Shard.Stats.segments_unlinked;
  no_leaked_segments "cube fan-out";
  (* SIGKILL a worker mid-shard: the crash path must not leak. *)
  let crash_config =
    {
      (config ~workers:2) with
      Shard.Check.test_kill_worker = Some 0;
      max_respawns = 2;
    }
  in
  ignore (Shard.Check.check ~config:crash_config m);
  no_leaked_segments "worker SIGKILL";
  (* Deadline kill+reap: segments referenced by killed workers included. *)
  let deadline_config =
    {
      (config ~workers:2) with
      Shard.Check.direct_sat = true;
      stall_conflicts = max_int;
      deadline_s = Some 0.3;
    }
  in
  ignore (Shard.Check.check ~config:deadline_config (equiv_miter (mult ~bits:8)));
  no_leaked_segments "deadline kill"

let test_warm_pool () =
  let m = equiv_miter (mult ~bits:5) in
  let pool = Shard.Pool.create () in
  Fun.protect ~finally:(fun () -> Shard.Pool.shutdown pool) @@ fun () ->
  let cfg = config ~workers:2 in
  let o1, s1 = Shard.Check.check ~config:cfg ~pool m in
  (match o1 with
  | Simsweep.Engine.Proved -> ()
  | _ -> Alcotest.fail "cold run not proved");
  Alcotest.(check int) "first run all cold" 2 s1.Shard.Stats.cold_starts;
  Alcotest.(check int) "first run no warm" 0 s1.Shard.Stats.warm_starts;
  Alcotest.(check bool) "workers released to the pool" true
    (Shard.Pool.idle_count pool >= 1);
  let o2, s2 = Shard.Check.check ~config:cfg ~pool m in
  (match o2 with
  | Simsweep.Engine.Proved -> ()
  | _ -> Alcotest.fail "warm run not proved");
  Alcotest.(check bool) "second run reused warm workers" true
    (s2.Shard.Stats.warm_starts >= 1);
  Alcotest.(check int) "lease is complete" 2
    (s2.Shard.Stats.warm_starts + s2.Shard.Stats.cold_starts);
  (* Warm workers are the same processes the first run used. *)
  let reused =
    List.filter (fun p -> List.mem p s1.Shard.Stats.worker_pids)
      s2.Shard.Stats.worker_pids
  in
  Alcotest.(check bool) "same pids resurface" true
    (List.length reused >= s2.Shard.Stats.warm_starts);
  (* Idle expiry retires them. *)
  Alcotest.(check bool) "reap_idle retires expired workers" true
    (Shard.Pool.reap_idle ~max_idle_s:0. pool >= 1);
  Alcotest.(check int) "pool drained" 0 (Shard.Pool.idle_count pool);
  no_leaked_segments "warm pool"

let () =
  (* Coordinators in these tests re-exec this binary as their workers. *)
  Shard.Worker.maybe_become_worker ();
  Alcotest.run "shard"
    [
      ( "plan",
        [
          Alcotest.test_case "pack and split" `Quick test_plan_pack_and_split;
          Alcotest.test_case "lift_cex unit" `Quick test_lift_cex_unit;
        ] );
      ( "coordinator",
        [
          Alcotest.test_case "disproof lifted" `Quick
            test_disproof_lifted_across_renumbering;
          Alcotest.test_case "worker-count determinism" `Slow
            test_verdict_deterministic_across_worker_counts;
          Alcotest.test_case "crash rescheduling" `Quick test_crash_rescheduling;
          Alcotest.test_case "deadline kill+reap" `Quick
            test_deadline_kills_and_reaps;
          Alcotest.test_case "cube-and-conquer tail" `Quick
            test_cube_and_conquer_tail;
        ] );
      ( "data plane",
        [
          Alcotest.test_case "transport agreement" `Slow
            test_transport_agreement;
          Alcotest.test_case "segment lifecycle" `Quick test_segment_lifecycle;
          Alcotest.test_case "warm pool" `Quick test_warm_pool;
        ] );
    ]
