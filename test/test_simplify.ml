(* The SAT preprocessing pipeline: activity heap, BVE model
   reconstruction, subsumption soundness, XOR/Gauss, probing and
   equivalent literals, cancellation — cross-checked against brute force
   on small random CNFs. *)

let l v = Sat.Solver.mklit v false
let nl v = Sat.Solver.mklit v true

(* --- deterministic random CNFs ------------------------------------------ *)

let mk_rng seed = Sim.Rng.create ~seed:(Int64.of_int (seed + 17))

let bits rng n = Int64.to_int (Sim.Rng.next64 rng) land ((1 lsl n) - 1)

(* A random CNF over [nvars] variables as lists of solver literals. *)
let random_cnf rng ~nvars ~nclauses =
  List.init nclauses (fun _ ->
      let len = 1 + (bits rng 8 mod 4) in
      List.init len (fun _ ->
          let v = bits rng 8 mod nvars in
          if bits rng 1 = 0 then Sat.Solver.mklit v false
          else Sat.Solver.mklit v true))

let lit_true model lit = model.(lit / 2) <> (lit land 1 = 1)

let clause_sat model clause = List.exists (lit_true model) clause

let cnf_sat model cnf = List.for_all (clause_sat model) cnf

(* Brute-force satisfiability of a literal-list CNF. *)
let brute_solutions ~nvars cnf =
  let sols = ref [] in
  for m = 0 to (1 lsl nvars) - 1 do
    let model = Array.init nvars (fun i -> (m lsr i) land 1 = 1) in
    if cnf_sat model cnf then sols := model :: !sols
  done;
  List.rev !sols

(* --- activity heap ------------------------------------------------------ *)

(* Random insert/update/pop trace vs a reference model: every pop must
   return an element of maximum priority, and membership must track. *)
let prop_heap_model =
  QCheck.Test.make ~name:"heap matches reference model" ~count:200
    Util.arb_seed (fun seed ->
      let rng = mk_rng seed in
      let n = 24 in
      let prio = Array.init n (fun _ -> float_of_int (bits rng 16)) in
      let less u v = prio.(u) > prio.(v) in
      let h = Sat.Heap.create ~capacity:n () in
      let in_model = Array.make n false in
      let ok = ref true in
      let check b = if not b then ok := false in
      for _ = 1 to 200 do
        let v = bits rng 16 mod n in
        match bits rng 8 mod 4 with
        | 0 ->
            if not in_model.(v) then begin
              Sat.Heap.insert ~less h v;
              in_model.(v) <- true
            end
        | 1 ->
            (* decrease- or increase-key: change priority, re-sift. *)
            prio.(v) <- float_of_int (bits rng 16);
            if in_model.(v) then Sat.Heap.update ~less h v
        | 2 ->
            if Array.exists Fun.id in_model then begin
              let top = Sat.Heap.pop ~less h in
              check in_model.(top);
              Array.iteri
                (fun u inside ->
                  if inside && u <> top then check (prio.(u) <= prio.(top)))
                in_model;
              in_model.(top) <- false
            end
        | _ ->
            check (Sat.Heap.mem h v = in_model.(v));
            check
              (Sat.Heap.size h
              = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 in_model)
      done;
      (* Draining yields non-increasing priorities. *)
      let last = ref infinity in
      while not (Sat.Heap.is_empty h) do
        let v = Sat.Heap.pop ~less h in
        check (prio.(v) <= !last);
        last := prio.(v)
      done;
      !ok)

(* --- full-pipeline round trip on random CNFs ---------------------------- *)

(* Simplify.run must (a) preserve satisfiability and (b) return a
   reconstruction stack that extends any model of the simplified CNF to a
   model of the original one. *)
let prop_simplify_roundtrip =
  QCheck.Test.make ~name:"simplify round-trip vs brute force" ~count:150
    Util.arb_seed (fun seed ->
      let rng = mk_rng seed in
      let nvars = 4 + (bits rng 8 mod 5) in
      let cnf = random_cnf rng ~nvars ~nclauses:(2 + (bits rng 8 mod 14)) in
      let frozen = Array.init nvars (fun _ -> bits rng 2 = 0) in
      let stats = Sat.Simplify.mk_stats () in
      let res =
        Sat.Simplify.run ~stats ~nvars ~frozen ~units:[]
          (List.map Array.of_list cnf)
      in
      let orig_sols = brute_solutions ~nvars cnf in
      if res.Sat.Simplify.unsat then orig_sols = []
      else begin
        let simplified =
          List.map Array.to_list res.Sat.Simplify.clauses
          @ List.map (fun u -> [ u ]) res.Sat.Simplify.units
        in
        let simp_sols = brute_solutions ~nvars simplified in
        (* Equisatisfiable... *)
        (orig_sols = []) = (simp_sols = [])
        (* ...and every simplified model reconstructs to an original one. *)
        && List.for_all
             (fun m ->
               let model = Array.copy m in
               Sat.Simplify.extend_model res.Sat.Simplify.recon model;
               cnf_sat model cnf)
             simp_sols
      end)

(* Same contract end-to-end through the solver: simplify, solve, and the
   (reconstructed) model must satisfy every original clause; the verdict
   must match brute force. *)
let prop_solver_simplify_verdict =
  QCheck.Test.make ~name:"solver simplify: verdict and model vs brute force"
    ~count:150 Util.arb_seed (fun seed ->
      let rng = mk_rng seed in
      let nvars = 4 + (bits rng 8 mod 5) in
      let cnf = random_cnf rng ~nvars ~nclauses:(2 + (bits rng 8 mod 14)) in
      let s = Sat.Solver.create () in
      for _ = 1 to nvars do
        ignore (Sat.Solver.new_var s)
      done;
      let root_ok = List.for_all (Sat.Solver.add_clause s) cnf in
      if root_ok then Sat.Solver.simplify s;
      let brute_sat = brute_solutions ~nvars cnf <> [] in
      match (root_ok, if root_ok then Sat.Solver.solve s else Sat.Solver.Unsat) with
      | false, _ | _, Sat.Solver.Unsat -> not brute_sat
      | _, Sat.Solver.Unknown -> false
      | _, Sat.Solver.Sat ->
          brute_sat
          && cnf_sat (Array.init nvars (Sat.Solver.model_value s)) cnf)

(* --- subsumption -------------------------------------------------------- *)

(* With only subsumption + self-subsuming resolution enabled (no variable
   ever leaves the formula), simplification must preserve logical
   equivalence, assignment by assignment. *)
let prop_subsumption_equivalent =
  QCheck.Test.make ~name:"subsumption preserves logical equivalence"
    ~count:150 Util.arb_seed (fun seed ->
      let rng = mk_rng seed in
      let nvars = 4 + (bits rng 8 mod 4) in
      let cnf = random_cnf rng ~nvars ~nclauses:(4 + (bits rng 8 mod 12)) in
      let config =
        {
          Sat.Simplify.default_config with
          bve = false;
          elit = false;
          xor_ = false;
          probe = false;
        }
      in
      let stats = Sat.Simplify.mk_stats () in
      let res =
        Sat.Simplify.run ~config ~stats ~nvars
          ~frozen:(Array.make nvars false) ~units:[]
          (List.map Array.of_list cnf)
      in
      let simplified =
        List.map Array.to_list res.Sat.Simplify.clauses
        @ List.map (fun u -> [ u ]) res.Sat.Simplify.units
      in
      let ok = ref true in
      for m = 0 to (1 lsl nvars) - 1 do
        let model = Array.init nvars (fun i -> (m lsr i) land 1 = 1) in
        let a = cnf_sat model cnf in
        let b = if res.Sat.Simplify.unsat then false else cnf_sat model simplified in
        if a <> b then ok := false
      done;
      !ok)

(* --- XOR extraction and Gaussian elimination ---------------------------- *)

(* CNF encoding of x0 xor x1 xor x2 = rhs: the four clauses with an odd
   (rhs=1) / even (rhs=0) number of negations. *)
let xor3_clauses a b c rhs =
  let combos =
    [ (false, false, false); (false, true, true); (true, false, true); (true, true, false) ]
  in
  List.map
    (fun (sa, sb, sc) ->
      (* clause forbids the assignment where parity is wrong *)
      [ Sat.Solver.mklit a sa; Sat.Solver.mklit b sb; Sat.Solver.mklit c sc ])
    (List.map
       (fun (sa, sb, sc) -> if rhs then (sa, sb, sc) else (not sa, sb, sc))
       combos)

let prop_xor_chain =
  QCheck.Test.make ~name:"xor/gauss solves random parity chains" ~count:100
    Util.arb_seed (fun seed ->
      let rng = mk_rng seed in
      let nvars = 5 + (bits rng 8 mod 4) in
      (* Overlapping 3-var parity constraints over a small pool. *)
      let rows = 3 + (bits rng 8 mod 4) in
      let cnf = ref [] in
      for i = 0 to rows - 1 do
        let a = i mod nvars
        and b = (i + 1) mod nvars
        and c = (i + 2 + (bits rng 8 mod (nvars - 2))) mod nvars in
        if a <> b && b <> c && a <> c then
          cnf := xor3_clauses a b c (bits rng 1 = 1) @ !cnf
      done;
      let cnf = !cnf in
      let s = Sat.Solver.create () in
      for _ = 1 to nvars do
        ignore (Sat.Solver.new_var s)
      done;
      let root_ok = List.for_all (Sat.Solver.add_clause s) cnf in
      if root_ok then Sat.Solver.simplify s;
      let brute_sat = brute_solutions ~nvars cnf <> [] in
      match (root_ok, if root_ok then Sat.Solver.solve s else Sat.Solver.Unsat) with
      | false, _ | _, Sat.Solver.Unsat -> not brute_sat
      | _, Sat.Solver.Unknown -> false
      | _, Sat.Solver.Sat ->
          brute_sat
          && cnf_sat (Array.init nvars (Sat.Solver.model_value s)) cnf)

let test_xor_extract () =
  (* x0^x1^x2 = 1 and x1^x2^x3 = 0, explicitly. *)
  let clauses =
    List.map Array.of_list (xor3_clauses 0 1 2 true @ xor3_clauses 1 2 3 false)
  in
  let rows = Sat.Xor.extract clauses in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  List.iter
    (fun (r : Sat.Xor.xor_row) ->
      match r.Sat.Xor.vars with
      | [ 0; 1; 2 ] -> Alcotest.(check bool) "rhs 012" true r.Sat.Xor.rhs
      | [ 1; 2; 3 ] -> Alcotest.(check bool) "rhs 123" false r.Sat.Xor.rhs
      | _ -> Alcotest.fail "unexpected row")
    rows

let test_gauss_unsat () =
  (* a^b^c=0, a^b^d=1, c^d (via c^d^e=0, c^d^e=1) -> contradiction. *)
  let rows =
    [
      { Sat.Xor.vars = [ 0; 1; 2 ]; rhs = false };
      { Sat.Xor.vars = [ 0; 1; 2 ]; rhs = true };
    ]
  in
  match Sat.Xor.eliminate rows with
  | [ Sat.Xor.Unsat ] -> ()
  | _ -> Alcotest.fail "expected Unsat"

(* Gauss-derived unit and equivalence facts must hold in every brute-force
   solution of the parity system. *)
let prop_gauss_facts_sound =
  QCheck.Test.make ~name:"gauss facts hold in every solution" ~count:200
    Util.arb_seed (fun seed ->
      let rng = mk_rng seed in
      let nvars = 4 + (bits rng 8 mod 3) in
      let nrows = 2 + (bits rng 8 mod 4) in
      let rows =
        List.init nrows (fun _ ->
            let arity = 3 + (bits rng 8 mod 2) in
            let vars =
              List.init arity (fun _ -> bits rng 8 mod nvars)
              |> List.sort_uniq compare
            in
            { Sat.Xor.vars; rhs = bits rng 1 = 1 })
        |> List.filter (fun (r : Sat.Xor.xor_row) -> List.length r.Sat.Xor.vars >= 2)
      in
      let row_sat model (r : Sat.Xor.xor_row) =
        List.fold_left (fun p v -> p <> model.(v)) false r.Sat.Xor.vars
        = r.Sat.Xor.rhs
      in
      let sols = ref [] in
      for m = 0 to (1 lsl nvars) - 1 do
        let model = Array.init nvars (fun i -> (m lsr i) land 1 = 1) in
        if List.for_all (row_sat model) rows then sols := model :: !sols
      done;
      let facts = Sat.Xor.eliminate rows in
      if List.mem Sat.Xor.Unsat facts then !sols = []
      else
        List.for_all
          (fun model ->
            List.for_all
              (function
                | Sat.Xor.Unit (v, b) -> model.(v) = b
                | Sat.Xor.Equiv (x, y, odd) -> model.(x) <> model.(y) = odd
                | Sat.Xor.Unsat -> false)
              facts)
          !sols)

(* --- equivalent literals and probing ------------------------------------ *)

let test_elit_substitution () =
  (* a <-> b (binary implication cycle) plus ternary clauses so nothing
     propagates to units before the SCC pass: the equivalence must be
     substituted away and counted, and any model must still set a = b
     (reconstruction included). *)
  let s = Sat.Solver.create () in
  let a = Sat.Solver.new_var s in
  let b = Sat.Solver.new_var s in
  let c = Sat.Solver.new_var s in
  let d = Sat.Solver.new_var s in
  ignore (Sat.Solver.add_clause s [ nl a; l b ]);
  ignore (Sat.Solver.add_clause s [ nl b; l a ]);
  ignore (Sat.Solver.add_clause s [ l a; l c; l d ]);
  ignore (Sat.Solver.add_clause s [ nl c; nl d; l b ]);
  Sat.Solver.simplify s;
  Alcotest.(check bool) "elit counted" true
    ((Sat.Solver.simp_stats s).Sat.Simplify.s_elit >= 1);
  match Sat.Solver.solve s with
  | Sat.Solver.Sat ->
      Alcotest.(check bool) "a = b" (Sat.Solver.model_value s a)
        (Sat.Solver.model_value s b)
  | _ -> Alcotest.fail "expected SAT"

let test_probe_failed_literal () =
  (* a -> b and a -> not b: probing must derive the unit (not a). *)
  let s = Sat.Solver.create () in
  let a = Sat.Solver.new_var s in
  let b = Sat.Solver.new_var s in
  let c = Sat.Solver.new_var s in
  ignore (Sat.Solver.add_clause s [ nl a; l b ]);
  ignore (Sat.Solver.add_clause s [ nl a; nl b ]);
  ignore (Sat.Solver.add_clause s [ l a; l c; l b ]);
  (* keep the instance from being trivially solved before probing *)
  let config =
    { Sat.Simplify.default_config with bve = false; xor_ = false }
  in
  Sat.Solver.simplify ~config ~frozen:[ a; b; c ] s;
  (match Sat.Solver.solve ~assumptions:[ l a ] s with
  | Sat.Solver.Unsat -> ()
  | _ -> Alcotest.fail "assuming a must now be UNSAT");
  match Sat.Solver.solve s with
  | Sat.Solver.Sat ->
      Alcotest.(check bool) "a false" false (Sat.Solver.model_value s a)
  | _ -> Alcotest.fail "expected SAT"

(* --- cancellation ------------------------------------------------------- *)

(* A token that fires immediately: simplify must return promptly and leave
   an equisatisfiable solver behind (partial simplification is fine, a
   wrong verdict afterwards is not). *)
let prop_cancelled_simplify_sound =
  QCheck.Test.make ~name:"cancelled simplify stays equisatisfiable"
    ~count:100 Util.arb_seed (fun seed ->
      let rng = mk_rng seed in
      let nvars = 4 + (bits rng 8 mod 5) in
      let cnf = random_cnf rng ~nvars ~nclauses:(2 + (bits rng 8 mod 14)) in
      let cancel = Par.Cancel.create () in
      Par.Cancel.set cancel;
      let s = Sat.Solver.create () in
      for _ = 1 to nvars do
        ignore (Sat.Solver.new_var s)
      done;
      let root_ok = List.for_all (Sat.Solver.add_clause s) cnf in
      if root_ok then Sat.Solver.simplify ~cancel s;
      let brute_sat = brute_solutions ~nvars cnf <> [] in
      match (root_ok, if root_ok then Sat.Solver.solve s else Sat.Solver.Unsat) with
      | false, _ | _, Sat.Solver.Unsat -> not brute_sat
      | _, Sat.Solver.Unknown -> false
      | _, Sat.Solver.Sat ->
          brute_sat
          && cnf_sat (Array.init nvars (Sat.Solver.model_value s)) cnf)

(* --- frozen variables under assumptions --------------------------------- *)

(* Frozen variables survive simplification and keep working as
   assumptions; non-frozen variables may be eliminated but their model
   values are still reconstructed. *)
let prop_frozen_assumptions =
  QCheck.Test.make ~name:"frozen vars usable as assumptions after simplify"
    ~count:100 Util.arb_seed (fun seed ->
      let rng = mk_rng seed in
      let nvars = 4 + (bits rng 8 mod 4) in
      let cnf = random_cnf rng ~nvars ~nclauses:(2 + (bits rng 8 mod 10)) in
      let fv = bits rng 8 mod nvars in
      let s = Sat.Solver.create () in
      for _ = 1 to nvars do
        ignore (Sat.Solver.new_var s)
      done;
      let root_ok = List.for_all (Sat.Solver.add_clause s) cnf in
      if not root_ok then true
      else begin
        Sat.Solver.simplify ~frozen:[ fv ] s;
        (not (Sat.Solver.is_eliminated s fv))
        &&
        let assumption = Sat.Solver.mklit fv false in
        let with_assumption = [ assumption ] :: cnf in
        let brute_sat = brute_solutions ~nvars with_assumption <> [] in
        match Sat.Solver.solve ~assumptions:[ assumption ] s with
        | Sat.Solver.Unsat -> not brute_sat
        | Sat.Solver.Unknown -> false
        | Sat.Solver.Sat ->
            brute_sat
            && cnf_sat (Array.init nvars (Sat.Solver.model_value s)) with_assumption
      end)

let () =
  Alcotest.run "simplify"
    [
      ( "unit",
        [
          Alcotest.test_case "xor extract" `Quick test_xor_extract;
          Alcotest.test_case "gauss unsat" `Quick test_gauss_unsat;
          Alcotest.test_case "equivalent literals" `Quick test_elit_substitution;
          Alcotest.test_case "failed-literal probing" `Quick test_probe_failed_literal;
        ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_heap_model;
            prop_simplify_roundtrip;
            prop_solver_simplify_verdict;
            prop_subsumption_equivalent;
            prop_xor_chain;
            prop_gauss_facts_sound;
            prop_cancelled_simplify_sound;
            prop_frozen_assumptions;
          ] );
    ]
