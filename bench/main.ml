(* Bench harness: regenerates every table and figure of the paper's
   evaluation (Section IV) on the scaled benchmark suite, plus the ablations
   called out in DESIGN.md and Bechamel micro-benchmarks of the core
   kernels.

     dune exec bench/main.exe               # everything
     dune exec bench/main.exe -- table2     # one experiment
     dune exec bench/main.exe -- fig6 fig7 ablation-passes micro

   Absolute times are CPU-scale; the paper's testbed was an RTX A6000, so
   EXPERIMENTS.md compares shapes (who wins, where the engine stops on its
   own) rather than raw numbers. *)

let pool = lazy (Par.Pool.create ())

let pr fmt = Printf.printf fmt

let heading title = pr "\n=== %s ===\n%!" title

(* ---------------------------------------------------------------- Table II *)

let bench_json_file = "BENCH_cec.json"

(* Compact perf-trajectory digest, committed to the repo; the check-summary
   gate compares a fresh run against it. *)
let summary_file = "BENCH_summary.json"

(* BENCH_CASES=log2,sin restricts table2 to a subset — the CI smoke job
   uses this to exercise the full harness and JSON schema in minutes. *)
let selected_cases () =
  match Sys.getenv_opt "BENCH_CASES" with
  | None | Some "" -> Cases.table2
  | Some spec ->
      let names = String.split_on_char ',' spec |> List.map String.trim in
      List.map Cases.find names

(* Winner name for the histograms ("none" when the portfolio is undecided). *)
let winner_name (r : Simsweep.Portfolio.result) =
  match r.Simsweep.Portfolio.winner with
  | Some e -> Simsweep.Portfolio.engine_name e
  | None -> "none"

let bump h k = Hashtbl.replace h k (1 + Option.value ~default:0 (Hashtbl.find_opt h k))

let hist_json h =
  Simsweep.Telemetry.Obj
    (Hashtbl.fold (fun k v acc -> (k, Simsweep.Telemetry.Int v) :: acc) h []
    |> List.sort compare)

(* Compact per-row portfolio snapshot: verdict, winner, mode, per-engine
   wall-clock — the schema-v3 data the race is judged on. *)
let portfolio_json (r : Simsweep.Portfolio.result) t =
  let open Simsweep.Telemetry in
  Obj
    [
      ("time_s", Float t);
      ("outcome", String (outcome_string r.Simsweep.Portfolio.outcome));
      ("winner", String (winner_name r));
      ("mode_used", String (Simsweep.Portfolio.mode_name r.Simsweep.Portfolio.mode_used));
      ( "per_engine_time_s",
        Obj
          (List.map
             (fun (e, t) -> (Simsweep.Portfolio.engine_name e, Float t))
             r.Simsweep.Portfolio.per_engine_time) );
      ("bdd_timeout", Bool r.Simsweep.Portfolio.bdd_timeout);
      ( "cancel_latency_s",
        match r.Simsweep.Portfolio.cancel_latency with
        | None -> Null
        | Some l -> Float l );
    ]

let table2 () =
  heading
    "Table II - runtime comparison (ABC-analog = SAT sweeping, Cfm-analog = portfolio)";
  let pool = Lazy.force pool in
  Par.Pool.reset_stats pool;
  pr "%-11s %7s %6s %8s | %8s %8s %8s %8s | %8s %7s %8s %9s | %8s %8s\n" "case"
    "PIs" "POs" "ANDs" "SAT(s)" "Pf(s)" "Race(s)" "Word(s)" "GPU(s)" "Red%"
    "SATf(s)" "Total(s)" "vs SAT" "vs Pf";
  let calibration = Harness.calibrate () in
  let sp_sat = ref [] and sp_pf = ref [] and sp_race = ref [] in
  let seq_hist = Hashtbl.create 4 and race_hist = Hashtbl.create 4 in
  (* Seed both histograms with every race participant so the schema names
     each racer (wordsweep included) even when it never wins. *)
  List.iter
    (fun n ->
      Hashtbl.replace seq_hist n 0;
      Hashtbl.replace race_hist n 0)
    ([ "sim"; "bdd"; "sat" ] @ Simsweep.Portfolio.registered_extras ());
  let rows = ref [] and srows = ref [] in
  (* Per-stage progress on stderr: a full table2 run takes tens of minutes
     on small machines and each case's row only prints once all four
     measurements finish. *)
  let progress case stage f =
    Printf.eprintf "[bench] %-11s %s...\n%!" case.Cases.name stage;
    (* Compact before every timed stage: sub-100ms cases otherwise measure
       the major-heap state left behind by whichever stage ran before them,
       not their own work. *)
    Gc.compact ();
    let r, t = Harness.time f in
    Printf.eprintf "[bench] %-11s %s done (%.3fs)\n%!" case.Cases.name stage t;
    r
  in
  List.iter
    (fun case ->
      let p = progress case "prepare" (fun () -> Cases.prepare case) in
      let m = p.Cases.miter in
      let sat_outcome, sat_time =
        progress case "sat-baseline" (fun () -> Harness.run_sat_baseline ~pool m)
      in
      let pf, pf_time =
        progress case "portfolio-seq" (fun () -> Harness.run_portfolio ~pool m)
      in
      let pfr, pfr_time =
        progress case "portfolio-race" (fun () ->
            Harness.run_portfolio ~mode:`Race ~pool m)
      in
      let (ws_outcome, ws_stats), ws_time =
        progress case "wordsweep" (fun () -> Harness.run_wordsweep ~pool m)
      in
      ignore ws_outcome;
      let ours = progress case "ours" (fun () -> Harness.run_ours ~pool m) in
      let su_sat = sat_time /. ours.Harness.total in
      let su_pf = pf_time /. ours.Harness.total in
      sp_sat := su_sat :: !sp_sat;
      sp_pf := su_pf :: !sp_pf;
      sp_race := (pf_time /. pfr_time) :: !sp_race;
      bump seq_hist (winner_name pf);
      bump race_hist (winner_name pfr);
      ignore sat_outcome;
      (let open Simsweep.Telemetry in
       rows :=
         Obj
           [
             ("name", String case.Cases.name);
             ("pis", Int (Aig.Network.num_pis m));
             ("pos", Int (Aig.Network.num_pos m));
             ("ands", Int (Aig.Network.num_ands m));
             ("outcome", String (outcome_string ours.Harness.outcome));
             ("sat_baseline_s", Float sat_time);
             ("portfolio_s", Float pf_time);
             ("portfolio", portfolio_json pf pf_time);
             ("portfolio_race", portfolio_json pfr pfr_time);
             ("wordsweep_s", Float ws_time);
             ("wordsweep", Word.Sweep.to_json ws_stats);
             ("gpu_s", Float ours.Harness.gpu_time);
             ("reduction_percent", Float ours.Harness.reduced_percent);
             ( "sat_fallback_s",
               match ours.Harness.sat_time with
               | None -> Null
               | Some t -> Float t );
             ("total_s", Float ours.Harness.total);
             ("speedup_vs_sat", Float su_sat);
             ("speedup_vs_portfolio", Float su_pf);
             ("engine_stats", of_engine_stats ours.Harness.engine_stats);
             ( "sat_stats",
               match ours.Harness.sat_stats with
               | None -> Null
               | Some s -> of_sat s );
           ]
         :: !rows;
       srows :=
         Obj
           [
             ("name", String case.Cases.name);
             ("ands", Int (Aig.Network.num_ands m));
             ("outcome", String (outcome_string ours.Harness.outcome));
             ("sat_s", Float sat_time);
             ("portfolio_s", Float pf_time);
             ("race_s", Float pfr_time);
             ("wordsweep_s", Float ws_time);
             ("gpu_s", Float ours.Harness.gpu_time);
             ( "sat_fallback_s",
               match ours.Harness.sat_time with
               | None -> Null
               | Some t -> Float t );
             ("total_s", Float ours.Harness.total);
             ("speedup_vs_sat", Float su_sat);
           ]
         :: !srows);
      pr
        "%-11s %7d %6d %8d | %8.3f %8.3f %8.3f %8.3f | %8.3f %7.1f %8s %9.3f | %7.2fx %7.2fx\n%!"
        case.Cases.name (Aig.Network.num_pis m) (Aig.Network.num_pos m)
        (Aig.Network.num_ands m) sat_time pf_time pfr_time ws_time
        ours.Harness.gpu_time ours.Harness.reduced_percent
        (match ours.Harness.sat_time with
        | None -> "-"
        | Some t -> Printf.sprintf "%.3f" t)
        ours.Harness.total su_sat su_pf)
    (selected_cases ());
  pr "%-11s %80s | %7.2fx %7.2fx\n" "geomean" "" (Harness.geomean !sp_sat)
    (Harness.geomean !sp_pf);
  pr "portfolio race vs sequential: %.2fx geomean\n%!"
    (Harness.geomean !sp_race);
  (* Machine-readable snapshot: the perf trajectory future PRs compare
     against. *)
  let open Simsweep.Telemetry in
  write_file bench_json_file
    (Obj
       [
         ("schema", String "bench-cec-v3");
         ("experiment", String "table2");
         ("domains", Int (Par.Pool.num_workers pool));
         ("cases", List (List.rev !rows));
         ("geomean_speedup_vs_sat", Float (Harness.geomean !sp_sat));
         ("geomean_speedup_vs_portfolio", Float (Harness.geomean !sp_pf));
         ("geomean_race_vs_sequential", Float (Harness.geomean !sp_race));
         ( "winner_histogram",
           Obj
             [
               ("sequential", hist_json seq_hist); ("race", hist_json race_hist);
             ] );
         ("pool", of_pool (Par.Pool.stats pool));
       ]);
  pr "wrote %s\n%!" bench_json_file;
  write_file summary_file
    (Obj
       [
         ("schema", String "bench-summary-v3");
         ("experiment", String "table2");
         ("domains", Int (Par.Pool.num_workers pool));
         ("calibration_s", Float calibration);
         ("cases", List (List.rev !srows));
         ("geomean_speedup_vs_sat", Float (Harness.geomean !sp_sat));
         ("geomean_speedup_vs_portfolio", Float (Harness.geomean !sp_pf));
         ("geomean_race_vs_sequential", Float (Harness.geomean !sp_race));
         ( "winner_histogram",
           Obj
             [
               ("sequential", hist_json seq_hist); ("race", hist_json race_hist);
             ] );
       ]);
  pr "wrote %s\n%!" summary_file

(* ------------------------------------------------------------- perf gate *)

(* check-summary: compare the BENCH_summary.json just regenerated by
   [table2] against a baseline (the checked-in digest; override with
   BENCH_BASELINE).  Per-case totals are normalized by each run's
   calibration kernel, so the gate compares work rather than machines;
   >10% geomean regression (BENCH_GATE overrides) exits non-zero. *)
let check_summary () =
  heading "perf gate - fresh BENCH_summary.json vs baseline";
  let open Simsweep.Telemetry in
  let read file =
    let ic = open_in file in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match parse text with
    | Ok j -> j
    | Error e ->
        Printf.eprintf "check-summary: cannot parse %s: %s\n" file e;
        exit 2
  in
  let fresh = read summary_file in
  (* Default baseline: the git-committed copy.  [table2] has just
     overwritten the working-tree file, so falling back to [summary_file]
     would compare the fresh run against itself and trivially pass. *)
  let baseline_from_git () =
    let tmp = Filename.temp_file "bench-baseline" ".json" in
    at_exit (fun () -> try Sys.remove tmp with Sys_error _ -> ());
    let cmd =
      Printf.sprintf "git show HEAD:%s > %s 2>/dev/null"
        (Filename.quote summary_file) (Filename.quote tmp)
    in
    if Sys.command cmd = 0 then tmp
    else begin
      Printf.eprintf
        "check-summary: BENCH_BASELINE is unset and `git show HEAD:%s` \
         failed;\nrefusing to use the freshly written %s as its own \
         baseline.\nSet BENCH_BASELINE to a copy of the committed summary.\n"
        summary_file summary_file;
      exit 2
    end
  in
  let baseline_file =
    match Sys.getenv_opt "BENCH_BASELINE" with
    | Some f when f <> summary_file -> f
    | Some _ ->
        Printf.eprintf
          "check-summary: BENCH_BASELINE points at %s itself; the gate \
           would trivially pass.\n"
          summary_file;
        exit 2
    | None -> baseline_from_git ()
  in
  let baseline = read baseline_file in
  let num = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None in
  let calib j =
    match Option.bind (member "calibration_s" j) num with
    | Some c when c > 0. -> c
    | _ -> 1.
  in
  let cases j =
    match member "cases" j with
    | Some (List l) -> l
    | _ -> []
  in
  let field row key = Option.bind (member key row) num in
  let name_of row =
    match member "name" row with Some (String s) -> s | _ -> ""
  in
  let base_by_name =
    List.map (fun row -> (name_of row, row)) (cases baseline)
  in
  (* Informational: the sharded-sweeping block merged in by the [shard]
     experiment rides along in the summary but is not gated — its wall
     clock depends on worker/core count, not on per-case engine work. *)
  (match member "shard" fresh with
  | Some block ->
      let s key = Option.value ~default:"?" (string_member key block) in
      let f key = Option.value ~default:0. (float_member key block) in
      pr
        "shard block: %s (%d workers) %s in %.3fs, single-process %.3fs \
         (%.2fx, informational)\n"
        (s "case")
        (Option.value ~default:0 (int_member "workers" block))
        (s "outcome") (f "shard_s") (f "single_process_s") (f "speedup")
  | None -> ());
  let fc = calib fresh and bc = calib baseline in
  let gate =
    match Option.bind (Sys.getenv_opt "BENCH_GATE") float_of_string_opt with
    | Some g -> g
    | None -> 1.10
  in
  let ratios = ref [] and sat_ratios = ref [] and floored = ref [] in
  List.iter
    (fun row ->
      match List.assoc_opt (name_of row) base_by_name with
      | None -> ()
      | Some base_row ->
          let ratio key acc =
            match (field row key, field base_row key) with
            | Some f, Some b when f > 0. && b > 0. ->
                let fn = f /. fc and bn = b /. bc in
                (* Noise floor: a case that runs in less than one
                   calibration kernel's worth of time — on both sides —
                   measures constant overheads and GC state, not work;
                   its ratio is reported but kept out of the geomean.  A
                   real regression that pushes the fresh time above the
                   floor is still counted. *)
                if key = "total_s" && fn < 1. && bn < 1. then
                  floored := (name_of row, fn /. bn) :: !floored
                else acc := (name_of row, fn /. bn) :: !acc
            | _ -> ()
          in
          ratio "total_s" ratios;
          ratio "sat_s" sat_ratios)
    (cases fresh);
  if !ratios = [] && !floored = [] then begin
    Printf.eprintf
      "check-summary: no common cases between %s and %s\n" summary_file
      baseline_file;
    exit 2
  end;
  List.iter
    (fun (name, r) ->
      pr "%-11s total %.2fx of baseline (below noise floor, informational)\n"
        name r)
    (List.rev !floored);
  if !ratios = [] then begin
    (* Every common case sits below the noise floor: their ratios are
       measurement noise, and a regression large enough to matter would
       have crossed the floor and been counted.  Pass, loudly. *)
    pr "check-summary: OK (all %d common cases below the noise floor)\n%!"
      (List.length !floored);
    exit 0
  end;
  List.iter
    (fun (name, r) -> pr "%-11s total %.2fx of baseline (normalized)\n" name r)
    (List.rev !ratios);
  let g_total = Harness.geomean (List.map snd !ratios) in
  let g_sat = Harness.geomean (List.map snd !sat_ratios) in
  pr "geomean: total %.3fx, sat %.3fx (gate %.2fx, calibration %.3fs vs %.3fs)\n%!"
    g_total g_sat gate fc bc;
  if g_total > gate then begin
    Printf.eprintf
      "check-summary: FAIL - %.1f%% geomean regression exceeds the %.0f%% gate\n"
      ((g_total -. 1.) *. 100.)
      ((gate -. 1.) *. 100.);
    exit 1
  end
  else pr "check-summary: OK\n%!"

(* ------------------------------------------------------------------ shard *)

(* Multi-process sharded sweeping on a [Gen.Double]-enlarged case tens of
   times larger than any table2 miter, against single-process
   [Partition.check] on the same miter.  SHARD_WORKERS and SHARD_DOUBLE
   override the defaults (2 workers, x2^9 — ~860k ANDs, ~74x the largest
   table2 case).  The result is merged into BENCH_summary.json as a
   ["shard"] block so check-summary reports it alongside the perf gate. *)
let shard_bench () =
  heading "Sharded sweeping - multi-process coordinator vs single process";
  let pool = Lazy.force pool in
  let getenv_int key default =
    match Option.bind (Sys.getenv_opt key) int_of_string_opt with
    | Some v when v > 0 -> v
    | _ -> default
  in
  let workers = getenv_int "SHARD_WORKERS" 2 in
  let doubles = getenv_int "SHARD_DOUBLE" 9 in
  let p = Cases.prepare (Cases.find "ac97_ctrl") in
  let m = Gen.Double.times doubles p.Cases.miter in
  let ands = Aig.Network.num_ands m in
  pr "case ac97_ctrl x2^%d: %d PIs, %d POs, %d ANDs, %d workers\n%!" doubles
    (Aig.Network.num_pis m) (Aig.Network.num_pos m) ands workers;
  let config = { Shard.Check.default_config with Shard.Check.workers } in
  let (sh_outcome, sh_stats), sh_time =
    Harness.time (fun () -> Shard.Check.check ~config m)
  in
  let (sp_outcome, _), sp_time =
    Harness.time (fun () -> Simsweep.Partition.check ~pool m)
  in
  let tag o =
    match o with
    | Simsweep.Engine.Proved -> "equivalent"
    | Simsweep.Engine.Disproved _ -> "inequivalent"
    | Simsweep.Engine.Undecided -> "undecided"
  in
  pr "%-24s %10s %10s\n" "" "outcome" "time";
  pr "%-24s %10s %9.3fs (%d shards, %d steals)\n" "shard coordinator"
    (tag sh_outcome) sh_time sh_stats.Shard.Stats.shards
    (Array.fold_left ( + ) 0 (Shard.Stats.steals sh_stats));
  pr "%-24s %10s %9.3fs\n" "single-process partition" (tag sp_outcome) sp_time;
  pr "speedup: %.2fx on %d domains\n%!" (sp_time /. sh_time)
    (Par.Pool.num_workers pool);
  if tag sh_outcome <> tag sp_outcome then begin
    Printf.eprintf "shard: verdict mismatch (%s vs %s)\n" (tag sh_outcome)
      (tag sp_outcome);
    exit 1
  end;
  (* Merge the shard block into the summary digest in place: the rest of
     the file (table2's cases and geomeans) is left untouched so the perf
     gate's baseline comparison is unaffected. *)
  let open Simsweep.Telemetry in
  let block =
    Obj
      [
        ("case", String (Printf.sprintf "ac97_ctrl(x%d)" (1 lsl doubles)));
        ("ands", Int ands);
        ("workers", Int workers);
        ("outcome", String (tag sh_outcome));
        ("shard_s", Float sh_time);
        ("single_process_s", Float sp_time);
        ("speedup", Float (sp_time /. sh_time));
        ("stats", Shard.Stats.to_json sh_stats);
      ]
  in
  let existing =
    if Sys.file_exists summary_file then begin
      let ic = open_in summary_file in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match parse text with Ok (Obj kvs) -> kvs | _ -> []
    end
    else []
  in
  let kvs = List.filter (fun (k, _) -> k <> "shard") existing in
  write_file summary_file (Obj (kvs @ [ ("shard", block) ]));
  pr "merged shard block into %s\n%!" summary_file

(* ------------------------------------------------------------- Data plane *)

(* Shard data-plane A/B: the same enlarged miter checked under the inline
   and shm transports from cold workers, then twice against one
   persistent pool so the second run starts warm.  Reports bytes moved,
   frames, and wall clock per configuration.  DATAPLANE_WORKERS and
   DATAPLANE_DOUBLE override the defaults (2 workers, x2^6).  Merged into
   BENCH_summary.json as a ["dataplane"] block. *)
let dataplane_bench () =
  heading "Data plane - inline vs shm transport, cold vs warm workers";
  let getenv_int key default =
    match Option.bind (Sys.getenv_opt key) int_of_string_opt with
    | Some v when v > 0 -> v
    | _ -> default
  in
  let workers = getenv_int "DATAPLANE_WORKERS" 2 in
  let doubles = getenv_int "DATAPLANE_DOUBLE" 6 in
  let p = Cases.prepare (Cases.find "ac97_ctrl") in
  let m = Gen.Double.times doubles p.Cases.miter in
  pr "case ac97_ctrl x2^%d: %d PIs, %d POs, %d ANDs, %d workers\n%!" doubles
    (Aig.Network.num_pis m) (Aig.Network.num_pos m) (Aig.Network.num_ands m)
    workers;
  let run ?pool transport =
    let config =
      { Shard.Check.default_config with Shard.Check.workers; transport }
    in
    Harness.time (fun () -> Shard.Check.check ~config ?pool m)
  in
  let (o_inline, st_inline), t_inline = run `Inline in
  let (o_shm, st_shm), t_shm = run `Shm in
  let wpool = Shard.Pool.create () in
  let ((o_cold, st_cold), t_cold), ((o_warm, st_warm), t_warm) =
    Fun.protect
      ~finally:(fun () -> Shard.Pool.shutdown wpool)
      (fun () ->
        let cold = run ~pool:wpool `Shm in
        let warm = run ~pool:wpool `Shm in
        (cold, warm))
  in
  let tag o =
    match o with
    | Simsweep.Engine.Proved -> "equivalent"
    | Simsweep.Engine.Disproved _ -> "inequivalent"
    | Simsweep.Engine.Undecided -> "undecided"
  in
  let mb b = float_of_int b /. 1e6 in
  pr "%-16s %12s %9s %10s %8s %8s %6s %6s\n" "" "outcome" "time" "tx MB"
    "frames" "shm-hit" "warm" "cold";
  let row name (o, (st : Shard.Stats.t)) t =
    pr "%-16s %12s %8.3fs %10.3f %8d %8d %6d %6d\n" name (tag o) t
      (mb st.Shard.Stats.bytes_tx) st.Shard.Stats.frames_tx
      st.Shard.Stats.shm_hits st.Shard.Stats.warm_starts
      st.Shard.Stats.cold_starts
  in
  row "inline cold" (o_inline, st_inline) t_inline;
  row "shm cold" (o_shm, st_shm) t_shm;
  row "shm pool cold" (o_cold, st_cold) t_cold;
  row "shm pool warm" (o_warm, st_warm) t_warm;
  let bytes_ratio =
    float_of_int st_inline.Shard.Stats.bytes_tx
    /. float_of_int (max 1 st_shm.Shard.Stats.bytes_tx)
  in
  pr "payload bytes moved: %.3f MB inline vs %.3f MB shm (%.0fx less)\n"
    (mb st_inline.Shard.Stats.bytes_tx)
    (mb st_shm.Shard.Stats.bytes_tx)
    bytes_ratio;
  pr "warm start: %.3fs cold vs %.3fs warm (%.2fx)\n%!" t_cold t_warm
    (t_cold /. t_warm);
  let tags = List.map tag [ o_inline; o_shm; o_cold; o_warm ] in
  if List.exists (fun t -> t <> List.hd tags) tags then begin
    Printf.eprintf "dataplane: verdict mismatch across configurations (%s)\n"
      (String.concat " " tags);
    exit 1
  end;
  if st_warm.Shard.Stats.warm_starts < 1 then begin
    Printf.eprintf "dataplane: second pool run reused no warm worker\n";
    exit 1
  end;
  let open Simsweep.Telemetry in
  let row_json (st : Shard.Stats.t) t =
    Obj
      [
        ("time_s", Float t);
        ("bytes_tx", Int st.Shard.Stats.bytes_tx);
        ("bytes_rx", Int st.Shard.Stats.bytes_rx);
        ("frames_tx", Int st.Shard.Stats.frames_tx);
        ("batched_flushes", Int st.Shard.Stats.batched_flushes);
        ("shm_hits", Int st.Shard.Stats.shm_hits);
        ("warm_starts", Int st.Shard.Stats.warm_starts);
        ("cold_starts", Int st.Shard.Stats.cold_starts);
      ]
  in
  let block =
    Obj
      [
        ("case", String (Printf.sprintf "ac97_ctrl(x%d)" (1 lsl doubles)));
        ("ands", Int (Aig.Network.num_ands m));
        ("workers", Int workers);
        ("outcome", String (tag o_shm));
        ("inline", row_json st_inline t_inline);
        ("shm", row_json st_shm t_shm);
        ("pool_cold", row_json st_cold t_cold);
        ("pool_warm", row_json st_warm t_warm);
        ("bytes_ratio", Float bytes_ratio);
        ("warm_speedup", Float (t_cold /. t_warm));
      ]
  in
  let existing =
    if Sys.file_exists summary_file then begin
      let ic = open_in summary_file in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match parse text with Ok (Obj kvs) -> kvs | _ -> []
    end
    else []
  in
  let kvs = List.filter (fun (k, _) -> k <> "dataplane") existing in
  write_file summary_file (Obj (kvs @ [ ("dataplane", block) ]));
  pr "merged dataplane block into %s\n%!" summary_file

(* ----------------------------------------------------------------- Fig. 6 *)

let fig6 () =
  heading "Figure 6 - runtime breakdown of the engine phases (P / G / L %)";
  let pool = Lazy.force pool in
  pr "%-11s %8s %8s %8s   %s\n" "case" "P%" "G%" "L%" "(bar)";
  List.iter
    (fun case ->
      let p = Cases.prepare case in
      let r =
        Simsweep.Engine.run ~config:Simsweep.Config.scaled ~pool
          (Aig.Network.copy p.Cases.miter)
      in
      let fp, fg, fl = Simsweep.Stats.breakdown r.Simsweep.Engine.stats in
      let bar =
        let n f = int_of_float (20. *. f) in
        String.make (n fp) 'P' ^ String.make (n fg) 'G' ^ String.make (n fl) 'L'
      in
      pr "%-11s %8.1f %8.1f %8.1f   %s\n%!" case.Cases.name (100. *. fp)
        (100. *. fg) (100. *. fl) bar)
    Cases.table2

(* ----------------------------------------------------------------- Fig. 7 *)

let fig7 () =
  heading
    "Figure 7 - SAT time on the miter after P / P+G / P+G+L, normalized to standalone SAT";
  let pool = Lazy.force pool in
  pr "%-11s %10s %10s %10s %10s\n" "case" "standalone" "P" "PG" "PGL";
  List.iter
    (fun case ->
      let p = Cases.prepare case in
      let m = p.Cases.miter in
      let _, t_alone = Harness.run_sat_baseline ~pool m in
      let reduced_after stop_after =
        let r =
          Simsweep.Engine.run ~config:Simsweep.Config.scaled ?stop_after ~pool
            (Aig.Network.copy m)
        in
        r.Simsweep.Engine.reduced
      in
      let sat_time_on g =
        if Aig.Miter.solved g then 0.
        else snd (Harness.run_sat_baseline ~pool g)
      in
      let tp = sat_time_on (reduced_after (Some `P)) in
      let tpg = sat_time_on (reduced_after (Some `G)) in
      let tpgl = sat_time_on (reduced_after None) in
      let norm t = if t_alone <= 0. then 0. else t /. t_alone in
      pr "%-11s %9.3fs %10.3f %10.3f %10.3f\n%!" case.Cases.name t_alone
        (norm tp) (norm tpg) (norm tpgl))
    Cases.table2

(* -------------------------------------------------------------- ablations *)

(* Table I ablation: run the L phases with a single cut-selection pass. *)
let ablation_passes () =
  heading "Ablation (Table I) - cut-selection passes in the L phase";
  let pool = Lazy.force pool in
  let cases = [ "multiplier"; "square"; "voter" ] in
  pr "%-11s %14s %14s %14s %14s\n" "case" "pass1(fanout)" "pass2(lowlvl)"
    "pass3(highlvl)" "all-three";
  List.iter
    (fun name ->
      let p = Cases.prepare (Cases.find name) in
      let run passes =
        let cfg = { Simsweep.Config.scaled with Simsweep.Config.passes } in
        let r =
          Simsweep.Engine.run ~config:cfg ~pool (Aig.Network.copy p.Cases.miter)
        in
        Simsweep.Engine.reduction_percent r
      in
      let p1 = run [ Cuts.Criteria.Fanout_first ] in
      let p2 = run [ Cuts.Criteria.Small_level_first ] in
      let p3 = run [ Cuts.Criteria.Large_level_first ] in
      let all = run Cuts.Criteria.table1 in
      pr "%-11s %13.1f%% %13.1f%% %13.1f%% %13.1f%%\n%!" name p1 p2 p3 all)
    cases

(* §III-B3 ablation: window merging on/off. *)
let ablation_merge () =
  heading "Ablation (III-B3) - window merging";
  let pool = Lazy.force pool in
  pr "%-11s | %12s %12s %9s | %12s %12s %9s\n" "case" "nodes(on)" "time(on)"
    "windows" "nodes(off)" "time(off)" "windows";
  List.iter
    (fun name ->
      let p = Cases.prepare (Cases.find name) in
      let run window_merging =
        let cfg =
          { Simsweep.Config.scaled with Simsweep.Config.window_merging }
        in
        let r, t =
          Harness.time (fun () ->
              Simsweep.Engine.run ~config:cfg ~pool
                (Aig.Network.copy p.Cases.miter))
        in
        (r.Simsweep.Engine.stats.Simsweep.Stats.exhaustive, t)
      in
      let on, t_on = run true in
      let off, t_off = run false in
      pr "%-11s | %12d %11.3fs %9d | %12d %11.3fs %9d\n%!" name
        on.Simsweep.Exhaustive.nodes_simulated t_on
        on.Simsweep.Exhaustive.windows off.Simsweep.Exhaustive.nodes_simulated
        t_off off.Simsweep.Exhaustive.windows)
    [ "log2"; "sin"; "ac97_ctrl" ]

(* §III-C1 ablation: similarity-steered cut selection on/off. *)
let ablation_similarity () =
  heading "Ablation (III-C1) - similarity-steered cut selection";
  let pool = Lazy.force pool in
  pr "%-11s %16s %16s\n" "case" "reduced%(on)" "reduced%(off)";
  List.iter
    (fun name ->
      let p = Cases.prepare (Cases.find name) in
      let run similarity_selection =
        let cfg =
          {
            Simsweep.Config.scaled with
            Simsweep.Config.similarity_selection;
            max_local_phases = 4;
          }
        in
        let r =
          Simsweep.Engine.run ~config:cfg ~pool (Aig.Network.copy p.Cases.miter)
        in
        Simsweep.Engine.reduction_percent r
      in
      pr "%-11s %15.1f%% %15.1f%%\n%!" name (run true) (run false))
    [ "multiplier"; "square"; "voter" ]

(* §V extension ablation: EC transfer from the engine to the SAT sweeper. *)
let ablation_ec_transfer () =
  heading "Ablation (V) - EC transfer to the SAT fallback";
  let pool = Lazy.force pool in
  pr "%-11s | %12s %10s | %12s %10s\n" "case" "no-transfer" "SAT calls"
    "transfer" "SAT calls";
  List.iter
    (fun name ->
      let p = Cases.prepare (Cases.find name) in
      let cfg =
        { Simsweep.Config.scaled with Simsweep.Config.max_local_phases = 2 }
      in
      let run transfer =
        let c, t =
          Harness.time (fun () ->
              Simsweep.Engine.check_with_fallback ~config:cfg
                ~transfer_classes:transfer ~pool
                (Aig.Network.copy p.Cases.miter))
        in
        let calls =
          match c.Simsweep.Engine.sat_stats with
          | Some st -> st.Sat.Sweep.sat_calls
          | None -> 0
        in
        (t, calls)
      in
      let t0, c0 = run false in
      let t1, c1 = run true in
      pr "%-11s | %11.3fs %10d | %11.3fs %10d\n%!" name t0 c0 t1 c1)
    [ "hyp"; "sqrt"; "voter" ]

(* §V extension ablation: adaptive pass disabling and interleaved
   rewriting during the repeated L phases. *)
let ablation_flow_tweaks () =
  heading "Ablation (V) - adaptive passes & interleaved rewriting";
  let pool = Lazy.force pool in
  pr "%-11s | %10s %7s | %10s %7s | %10s %7s
" "case" "base(s)" "red%"
    "adaptive" "red%" "rewrite" "red%";
  List.iter
    (fun name ->
      let p = Cases.prepare (Cases.find name) in
      let run adaptive rewrite =
        let cfg =
          {
            Simsweep.Config.scaled with
            Simsweep.Config.adaptive_passes = adaptive;
            rewrite_between_phases = rewrite;
            max_local_phases = 8;
          }
        in
        let r, t =
          Harness.time (fun () ->
              Simsweep.Engine.run ~config:cfg ~pool
                (Aig.Network.copy p.Cases.miter))
        in
        (t, Simsweep.Engine.reduction_percent r)
      in
      let tb, rb = run false false in
      let ta, ra = run true false in
      let tr, rr = run false true in
      pr "%-11s | %9.3fs %6.1f%% | %9.3fs %6.1f%% | %9.3fs %6.1f%%
%!" name tb
        rb ta ra tr rr)
    [ "multiplier"; "voter"; "hyp" ]

(* Post-mapping equivalence workload: original AIG vs its k-LUT mapped and
   resynthesised netlist — industrial CEC's main driver, and a harder miter
   family than resyn2's (the mapped structure shares much less). *)
let postmap () =
  heading "Post-mapping CEC (original vs 6-LUT mapped netlist)";
  let pool = Lazy.force pool in
  pr "%-11s %8s %8s | %8s %8s %7s | %8s
" "case" "ANDs" "LUTs" "SAT(s)"
    "GPU(s)" "Red%" "Total(s)";
  List.iter
    (fun name ->
      let p = Cases.prepare (Cases.find name) in
      let g = p.Cases.original in
      let m = Lutmap.Mapper.map ~k:6 g in
      let mapped = Lutmap.Mapper.to_network m in
      let miter = Aig.Miter.build g mapped in
      let _, sat_time = Harness.run_sat_baseline ~pool miter in
      let ours = Harness.run_ours ~pool miter in
      pr "%-11s %8d %8d | %8.3f %8.3f %6.1f%% | %8.3f
%!" name
        (Aig.Network.num_ands miter)
        (Lutmap.Mapper.lut_count m)
        sat_time ours.Harness.gpu_time ours.Harness.reduced_percent
        ours.Harness.total)
    [ "multiplier"; "square"; "voter"; "ac97_ctrl"; "vga_lcd" ]

(* ------------------------------------------------------------- datapath *)

(* Word-level sweeping vs the bit-level engines on datapath miters: the
   resyn2 pairs of the arithmetic table2 cases plus an array-vs-Wallace
   cross miter (different multiplier architectures — no shared adder
   structure to strash away). *)
let datapath () =
  heading "Datapath - word-level sweeping vs sim / SAT / BDD";
  let pool = Lazy.force pool in
  let cross =
    lazy
      (Aig.Miter.build
         (Gen.Arith.multiplier ~bits:8)
         (Gen.Wallace.multiplier ~bits:8))
  in
  let cases =
    [
      ("adder", lazy (Cases.prepare (Cases.find "adder")).Cases.miter);
      ("addtree", lazy (Cases.prepare (Cases.find "addtree")).Cases.miter);
      ("multiplier", lazy (Cases.prepare (Cases.find "multiplier")).Cases.miter);
      ("wallace", lazy (Cases.prepare (Cases.find "wallace")).Cases.miter);
      ("mult-x-wal", cross);
      ("divider", lazy (Cases.prepare (Cases.find "divider")).Cases.miter);
      ("sqrt", lazy (Cases.prepare (Cases.find "sqrt")).Cases.miter);
    ]
  in
  pr "%-11s %8s | %9s %8s %8s %8s | %6s %6s %6s %7s\n" "case" "ANDs" "Word(s)"
    "Sim(s)" "SAT(s)" "BDD(s)" "cov%" "words" "bits" "fb%";
  List.iter
    (fun (name, m) ->
      let m = Lazy.force m in
      let (_, ws), ws_time = Harness.run_wordsweep ~pool m in
      let ours = Harness.run_ours ~pool m in
      let _, sat_time = Harness.run_sat_baseline ~pool m in
      let bdd_r, bdd_time =
        Harness.time (fun () -> Bdd.check (Aig.Network.copy m))
      in
      let bdd_cell =
        match bdd_r with
        | `Equivalent | `Inequivalent _ -> Printf.sprintf "%.3f" bdd_time
        | `Node_limit | `Timeout -> "abort"
      in
      pr "%-11s %8d | %9.3f %8.3f %8.3f %8s | %6.1f %6d %6d %6.0f%%\n%!" name
        (Aig.Network.num_ands m) ws_time ours.Harness.total sat_time bdd_cell
        ws.Word.Sweep.coverage_percent ws.Word.Sweep.words_proved
        ws.Word.Sweep.bits_merged
        (100. *. ws.Word.Sweep.fallback_ratio))
    cases

(* --------------------------------------------------------------- ingest *)

(* BENCH_AIG_DIR=dir: check every AIGER miter in [dir] (the checked-in
   examples/aiger fixtures by default) with the combined flow and the
   word-level engine. *)
let ingest () =
  heading "AIGER ingest - checked-in miters (BENCH_AIG_DIR)";
  let dir =
    match Sys.getenv_opt "BENCH_AIG_DIR" with
    | Some d when d <> "" -> d
    | _ -> Filename.concat "examples" "aiger"
  in
  let files =
    match Sys.readdir dir with
    | entries ->
        Array.to_list entries
        |> List.filter (fun f ->
               Filename.check_suffix f ".aig" || Filename.check_suffix f ".aag")
        |> List.sort compare
    | exception Sys_error e ->
        Printf.eprintf "ingest: cannot read %s: %s\n" dir e;
        exit 2
  in
  if files = [] then begin
    Printf.eprintf "ingest: no .aig/.aag files in %s\n" dir;
    exit 2
  end;
  let pool = Lazy.force pool in
  pr "%-28s %7s %8s | %9s %9s | %s\n" "file" "PIs" "ANDs" "Word(s)" "Total(s)"
    "outcome";
  List.iter
    (fun f ->
      let m = Aig.Aiger_io.read_file (Filename.concat dir f) in
      let (ws_outcome, _), ws_time = Harness.run_wordsweep ~pool m in
      let ours = Harness.run_ours ~pool m in
      pr "%-28s %7d %8d | %9.3f %9.3f | %s\n%!" f (Aig.Network.num_pis m)
        (Aig.Network.num_ands m) ws_time ours.Harness.total
        (Harness.outcome_tag ws_outcome))
    files

(* ------------------------------------------------------- Bechamel kernels *)

let micro () =
  heading "Bechamel micro-benchmarks (one kernel per experiment)";
  let open Bechamel in
  let pool = Lazy.force pool in
  let mult = Cases.prepare (Cases.find "multiplier") in
  let sin_ = Cases.prepare (Cases.find "sin") in
  (* Table II kernel: one full engine run on the multiplier miter. *)
  let t_engine =
    Test.make ~name:"table2-engine-multiplier"
      (Staged.stage (fun () ->
           ignore
             (Simsweep.Engine.run ~config:Simsweep.Config.scaled ~pool
                (Aig.Network.copy mult.Cases.miter))))
  in
  let t_sat =
    Test.make ~name:"table2-satsweep-multiplier"
      (Staged.stage (fun () ->
           ignore (Sat.Sweep.check ~pool (Aig.Network.copy mult.Cases.miter))))
  in
  (* Fig. 6 kernel: the partial simulator that initialises the ECs. *)
  let rng = Sim.Rng.create ~seed:7L in
  let t_psim =
    Test.make ~name:"fig6-partial-sim-multiplier"
      (Staged.stage (fun () ->
           ignore (Sim.Psim.run mult.Cases.miter ~nwords:4 ~rng ~pool ~embed:[])))
  in
  (* Fig. 7 kernel: one-shot exhaustive PO checking on the sin miter. *)
  let sin_pis =
    Array.init
      (Aig.Network.num_pis sin_.Cases.miter)
      (fun i -> Aig.Network.pi sin_.Cases.miter i)
  in
  let sin_jobs =
    List.filter_map
      (fun i ->
        let l = Aig.Network.po sin_.Cases.miter i in
        if l = Aig.Lit.const_false then None
        else
          Some
            {
              Simsweep.Exhaustive.inputs = sin_pis;
              pairs =
                [
                  {
                    Simsweep.Exhaustive.a = Aig.Lit.node l;
                    b = -1;
                    compl_ = Aig.Lit.is_compl l;
                    tag = i;
                  };
                ];
            })
      (List.init (Aig.Network.num_pos sin_.Cases.miter) Fun.id)
  in
  let t_exhaustive =
    Test.make ~name:"fig7-exhaustive-po-sin"
      (Staged.stage (fun () ->
           ignore
             (Simsweep.Exhaustive.run sin_.Cases.miter ~pool
                ~memory_words:(1 lsl 20) ~jobs:sin_jobs
                ~num_tags:(Aig.Network.num_pos sin_.Cases.miter) ())))
  in
  (* Table I kernel: a full cut-enumeration pass. *)
  let t_cuts =
    Test.make ~name:"table1-cut-enumeration-multiplier"
      (Staged.stage (fun () ->
           let g = mult.Cases.miter in
           let fanouts = Aig.Network.fanout_counts g in
           let levels = Aig.Network.levels g in
           let prio = Array.make (Aig.Network.num_nodes g) [] in
           for i = 0 to Aig.Network.num_pis g - 1 do
             let p = Aig.Network.pi g i in
             prio.(p) <- [ Cuts.Cut.trivial p ]
           done;
           let cfg = { Cuts.Enumerate.k_l = 8; c = 8 } in
           Aig.Network.iter_ands g (fun n ->
               prio.(n) <-
                 Cuts.Enumerate.node_cuts g cfg ~pass:Cuts.Criteria.Fanout_first
                   ~fanouts ~levels ~prio ~sim_target:None n)))
  in
  let tests =
    Test.make_grouped ~name:"simsweep"
      [ t_engine; t_sat; t_psim; t_exhaustive; t_cuts ]
  in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 2.0) ~kde:None () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false
      ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) results [] in
  let rows = List.sort compare rows in
  pr "%-45s %16s\n" "kernel" "time/run";
  List.iter
    (fun (name, o) ->
      match Analyze.OLS.estimates o with
      | Some (est :: _) ->
          let pretty =
            if est > 1e9 then Printf.sprintf "%.3f s" (est /. 1e9)
            else if est > 1e6 then Printf.sprintf "%.3f ms" (est /. 1e6)
            else Printf.sprintf "%.3f us" (est /. 1e3)
          in
          pr "%-45s %16s\n" name pretty
      | _ -> pr "%-45s %16s\n" name "n/a")
    rows

(* ------------------------------------------------------------------ main *)

let experiments =
  [
    ("table2", table2);
    ("check-summary", check_summary);
    ("shard", shard_bench);
    ("dataplane", dataplane_bench);
    ("fig6", fig6);
    ("fig7", fig7);
    ("ablation-passes", ablation_passes);
    ("ablation-merge", ablation_merge);
    ("ablation-sim", ablation_similarity);
    ("ablation-ectransfer", ablation_ec_transfer);
    ("ablation-flow", ablation_flow_tweaks);
    ("postmap", postmap);
    ("datapath", datapath);
    ("ingest", ingest);
    ("micro", micro);
  ]

let () =
  (* The shard experiment re-execs this binary as its worker processes. *)
  Shard.Worker.maybe_become_worker ();
  Word.Sweep.register ();
  let args = List.tl (Array.to_list Sys.argv) in
  let chosen = if args = [] then List.map fst experiments else args in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %s (available: %s)\n" name
            (String.concat ", " (List.map fst experiments));
          exit 2)
    chosen;
  Par.Pool.shutdown (Lazy.force pool)
