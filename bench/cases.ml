(* The nine Table II benchmark cases, scaled to CPU budgets.

   Widths are chosen so that each case keeps its paper character relative
   to the scaled engine thresholds (k_P = 20, k_p = k_g = 14):
   - log2 and sin have PO supports below k_P: solved one-shot by the P
     phase (as in the paper);
   - multiplier and square exceed k_P, so internal G + repeated L phases
     must do the proving (engine still finishes alone);
   - sqrt and hyp are deep / wide: the engine reduces only part of the
     miter and the SAT fallback finishes (paper: 0.7% and 40.2%);
   - voter exceeds the thresholds and SAT pays a heavy tail, while the
     BDD-portfolio engine solves it instantly (the Conformal crossover);
   - ac97_ctrl is wide and shallow with mostly-small PO supports: P proves
     most outputs, a small SAT tail remains;
   - vga_lcd has mixed supports just above the thresholds: little
     reduction, but cheap, so the combined flow is roughly neutral. *)

type case = {
  name : string;
  build : unit -> Aig.Network.t;
  doubles : int;  (** applications of [double] at bench scale 1 *)
}

(* Gen.Double-enlarged stress cases.  Not part of the default table2 run
   (select them explicitly, e.g. BENCH_CASES=sqrt,sqrt_x4) so CI smoke
   stays fast; sqrt_x4 is the 4x-size arithmetic case the SAT
   preprocessing payoff is measured on. *)
let enlarged =
  [ { name = "sqrt_x4"; build = (fun () -> Gen.Arith.sqrt ~bits:24); doubles = 2 } ]

let table2 =
  [
    { name = "hyp"; build = (fun () -> Gen.Arith.hypot ~bits:11); doubles = 0 };
    { name = "log2"; build = (fun () -> Gen.Arith.log2 ~bits:14 ~frac:4); doubles = 0 };
    { name = "multiplier"; build = (fun () -> Gen.Arith.multiplier ~bits:12); doubles = 0 };
    { name = "sqrt"; build = (fun () -> Gen.Arith.sqrt ~bits:24); doubles = 0 };
    { name = "square"; build = (fun () -> Gen.Arith.square ~bits:22); doubles = 0 };
    { name = "voter"; build = (fun () -> Gen.Control.voter ~n:41); doubles = 0 };
    { name = "sin"; build = (fun () -> Gen.Arith.sin ~bits:12 ~iters:10); doubles = 0 };
    { name = "ac97_ctrl"; build = (fun () -> Gen.Control.regfile ~regs:4 ~width:4); doubles = 3 };
    { name = "vga_lcd"; build = (fun () -> Gen.Control.display ~hbits:12 ~vbits:11); doubles = 1 };
    (* Datapath cases added with the word-level sweeping engine: ripple
       carry (word detection covers nearly the whole miter), restoring
       division (no word structure survives resyn2 — pure fallback), and a
       Wallace tree (carry-save columns, partial word coverage). *)
    { name = "adder"; build = (fun () -> Gen.Arith.adder ~bits:64); doubles = 0 };
    { name = "addtree"; build = (fun () -> Gen.Arith.addtree ~operands:4 ~bits:24); doubles = 0 };
    { name = "divider"; build = (fun () -> Gen.Divider.divide ~bits:10); doubles = 0 };
    { name = "wallace"; build = (fun () -> Gen.Wallace.multiplier ~bits:8); doubles = 0 };
  ]

type prepared = {
  case : case;
  original : Aig.Network.t;
  optimized : Aig.Network.t;
  miter : Aig.Network.t;
}

let cache : (string, prepared) Hashtbl.t = Hashtbl.create 16

let prepare case =
  match Hashtbl.find_opt cache case.name with
  | Some p -> p
  | None ->
      let original = Gen.Double.times case.doubles (case.build ()) in
      let optimized = Opt.Resyn.resyn2 original in
      let miter = Aig.Miter.build original optimized in
      let p = { case; original; optimized; miter } in
      Hashtbl.replace cache case.name p;
      p

let find name = List.find (fun c -> c.name = name) (table2 @ enlarged)
