(* Shared measurement helpers for the bench harness. *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let geomean xs =
  match xs with
  | [] -> nan
  | _ ->
      let logs = List.fold_left (fun acc x -> acc +. Float.log x) 0. xs in
      Float.exp (logs /. float_of_int (List.length xs))

(* Deterministic CPU calibration kernel (SplitMix64): the perf gate
   normalizes case timings by this, so its regression threshold compares
   work, not machines. *)
let calibrate () =
  let golden = 0x9E3779B97F4A7C15L in
  let s = ref golden in
  let acc = ref 0L in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to 200_000_000 do
    s := Int64.add !s golden;
    let z = !s in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
    in
    acc := Int64.add !acc (Int64.logxor z (Int64.shift_right_logical z 31))
  done;
  let t = Unix.gettimeofday () -. t0 in
  ignore (Sys.opaque_identity !acc);
  t

let outcome_tag = function
  | Simsweep.Engine.Proved -> "EQ"
  | Simsweep.Engine.Disproved _ -> "NEQ"
  | Simsweep.Engine.Undecided -> "UNDEC"

(* The combined "ours" flow of Table II: engine first, SAT sweeper on the
   remainder; returns per-column data. *)
type ours = {
  gpu_time : float;  (** simulation-engine time (the paper's "GPU (s)") *)
  reduced_percent : float;
  sat_time : float option;  (** fallback SAT time, [None] when not needed *)
  total : float;
  outcome : Simsweep.Engine.outcome;
  engine_stats : Simsweep.Stats.t;  (** telemetry of the engine run *)
  sat_stats : Sat.Sweep.stats option;  (** telemetry of the SAT fallback *)
}

let run_ours ?(config = Simsweep.Config.scaled) ~pool miter =
  let r, gpu_time = time (fun () -> Simsweep.Engine.run ~config ~pool (Aig.Network.copy miter)) in
  match r.Simsweep.Engine.outcome with
  | Simsweep.Engine.Proved | Simsweep.Engine.Disproved _ ->
      {
        gpu_time;
        reduced_percent = Simsweep.Engine.reduction_percent r;
        sat_time = None;
        total = gpu_time;
        outcome = r.Simsweep.Engine.outcome;
        engine_stats = r.Simsweep.Engine.stats;
        sat_stats = None;
      }
  | Simsweep.Engine.Undecided ->
      let (sat_outcome, sat_stats), sat_time =
        time (fun () -> Sat.Sweep.check ~pool r.Simsweep.Engine.reduced)
      in
      let outcome =
        match sat_outcome with
        | Sat.Sweep.Equivalent -> Simsweep.Engine.Proved
        | Sat.Sweep.Inequivalent (cex, po) -> Simsweep.Engine.Disproved (cex, po)
        | Sat.Sweep.Undecided -> Simsweep.Engine.Undecided
      in
      {
        gpu_time;
        reduced_percent = Simsweep.Engine.reduction_percent r;
        sat_time = Some sat_time;
        total = gpu_time +. sat_time;
        outcome;
        engine_stats = r.Simsweep.Engine.stats;
        sat_stats = Some sat_stats;
      }

let run_sat_baseline ~pool miter =
  time (fun () -> fst (Sat.Sweep.check ~pool (Aig.Network.copy miter)))

let run_portfolio ?(mode = `Sequential) ~pool miter =
  time (fun () -> Simsweep.Portfolio.check ~mode ~pool (Aig.Network.copy miter))

(* Word-level sweeping, standalone (it never mutates its input). *)
let run_wordsweep ?(config = Simsweep.Config.scaled) ~pool miter =
  time (fun () -> Word.Sweep.check ~config ~pool miter)
