type t = { len : int; data : Bytes.t }

let nwords_of_len len = (len + 63) lsr 6

(* Mask selecting the valid bits of the last word. *)
let tail_mask len =
  let r = len land 63 in
  if r = 0 then -1L else Int64.sub (Int64.shift_left 1L r) 1L

let length v = v.len
let num_words v = nwords_of_len v.len

let create ~len fill =
  if len < 0 then invalid_arg "Bits.create: negative length";
  let nw = nwords_of_len len in
  let data = Bytes.make (nw * 8) (if fill then '\xff' else '\x00') in
  let v = { len; data } in
  if fill && nw > 0 then begin
    let m = tail_mask len in
    Bytes.set_int64_ne data ((nw - 1) * 8) m
  end;
  v

let copy v = { len = v.len; data = Bytes.copy v.data }

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Bits.get: index out of range";
  let w = Bytes.get_int64_ne v.data ((i lsr 6) * 8) in
  Int64.logand (Int64.shift_right_logical w (i land 63)) 1L <> 0L

let set v i b =
  if i < 0 || i >= v.len then invalid_arg "Bits.set: index out of range";
  let off = (i lsr 6) * 8 in
  let w = Bytes.get_int64_ne v.data off in
  let m = Int64.shift_left 1L (i land 63) in
  let w' = if b then Int64.logor w m else Int64.logand w (Int64.lognot m) in
  Bytes.set_int64_ne v.data off w'

let get_word v w = Bytes.get_int64_ne v.data (w * 8)

let set_word v w x =
  let nw = num_words v in
  if w < 0 || w >= nw then invalid_arg "Bits.set_word: index out of range";
  let x = if w = nw - 1 then Int64.logand x (tail_mask v.len) else x in
  Bytes.set_int64_ne v.data (w * 8) x

let check_same_len a b name =
  if a.len <> b.len then invalid_arg (name ^ ": length mismatch")

let map2 name f a b =
  check_same_len a b name;
  let r = create ~len:a.len false in
  let nw = num_words a in
  for w = 0 to nw - 1 do
    let off = w * 8 in
    Bytes.set_int64_ne r.data off
      (f (Bytes.get_int64_ne a.data off) (Bytes.get_int64_ne b.data off))
  done;
  r

let band = map2 "Bits.band" Int64.logand
let bor = map2 "Bits.bor" Int64.logor
let bxor = map2 "Bits.bxor" Int64.logxor

let bnot a =
  let r = create ~len:a.len false in
  let nw = num_words a in
  for w = 0 to nw - 1 do
    let off = w * 8 in
    Bytes.set_int64_ne r.data off (Int64.lognot (Bytes.get_int64_ne a.data off))
  done;
  if nw > 0 then begin
    let off = (nw - 1) * 8 in
    Bytes.set_int64_ne r.data off
      (Int64.logand (Bytes.get_int64_ne r.data off) (tail_mask a.len))
  end;
  r

let and_maybe_not ~c0 a ~c1 b =
  check_same_len a b "Bits.and_maybe_not";
  let r = create ~len:a.len false in
  let nw = num_words a in
  let cm0 = if c0 then -1L else 0L and cm1 = if c1 then -1L else 0L in
  for w = 0 to nw - 1 do
    let off = w * 8 in
    let x = Int64.logxor (Bytes.get_int64_ne a.data off) cm0 in
    let y = Int64.logxor (Bytes.get_int64_ne b.data off) cm1 in
    Bytes.set_int64_ne r.data off (Int64.logand x y)
  done;
  if (c0 || c1) && nw > 0 then begin
    let off = (nw - 1) * 8 in
    Bytes.set_int64_ne r.data off
      (Int64.logand (Bytes.get_int64_ne r.data off) (tail_mask a.len))
  end;
  r

let blit_not ~src ~dst =
  check_same_len src dst "Bits.blit_not";
  let nw = num_words src in
  for w = 0 to nw - 1 do
    let off = w * 8 in
    Bytes.set_int64_ne dst.data off
      (Int64.lognot (Bytes.get_int64_ne src.data off))
  done;
  if nw > 0 then begin
    let off = (nw - 1) * 8 in
    Bytes.set_int64_ne dst.data off
      (Int64.logand (Bytes.get_int64_ne dst.data off) (tail_mask src.len))
  end

let blit_and ~c0 a ~c1 b ~dst =
  check_same_len a b "Bits.blit_and";
  check_same_len a dst "Bits.blit_and";
  let nw = num_words a in
  let cm0 = if c0 then -1L else 0L and cm1 = if c1 then -1L else 0L in
  for w = 0 to nw - 1 do
    let off = w * 8 in
    let x = Int64.logxor (Bytes.get_int64_ne a.data off) cm0 in
    let y = Int64.logxor (Bytes.get_int64_ne b.data off) cm1 in
    Bytes.set_int64_ne dst.data off (Int64.logand x y)
  done;
  if (c0 || c1) && nw > 0 then begin
    let off = (nw - 1) * 8 in
    Bytes.set_int64_ne dst.data off
      (Int64.logand (Bytes.get_int64_ne dst.data off) (tail_mask a.len))
  end

let equal a b = a.len = b.len && Bytes.equal a.data b.data

let equal_mod_compl a b =
  check_same_len a b "Bits.equal_mod_compl";
  let nw = num_words a in
  if nw = 0 then `Equal
  else begin
    let rec scan w eq co =
      if (not eq) && not co then `Diff
      else if w = nw then if eq then `Equal else `Compl
      else
        let off = w * 8 in
        let x = Bytes.get_int64_ne a.data off
        and y = Bytes.get_int64_ne b.data off in
        let m = if w = nw - 1 then tail_mask a.len else -1L in
        let eq = eq && Int64.equal x y in
        let co = co && Int64.equal x (Int64.logand (Int64.lognot y) m) in
        scan (w + 1) eq co
    in
    scan 0 true true
  end

let compare a b =
  let c = Stdlib.compare a.len b.len in
  if c <> 0 then c else Bytes.compare a.data b.data

let hash v = Hashtbl.hash (v.len, v.data)

let is_zero v =
  let nw = num_words v in
  let rec go w = w = nw || (Int64.equal (get_word v w) 0L && go (w + 1)) in
  go 0

let is_ones v =
  let nw = num_words v in
  if nw = 0 then true
  else
    let rec go w =
      if w = nw then true
      else
        let expect = if w = nw - 1 then tail_mask v.len else -1L in
        Int64.equal (get_word v w) expect && go (w + 1)
    in
    go 0

let popcount_word x =
  let x = Int64.sub x (Int64.logand (Int64.shift_right_logical x 1) 0x5555555555555555L) in
  let x =
    Int64.add
      (Int64.logand x 0x3333333333333333L)
      (Int64.logand (Int64.shift_right_logical x 2) 0x3333333333333333L)
  in
  let x = Int64.logand (Int64.add x (Int64.shift_right_logical x 4)) 0x0f0f0f0f0f0f0f0fL in
  Int64.to_int (Int64.shift_right_logical (Int64.mul x 0x0101010101010101L) 56)

let popcount v =
  let nw = num_words v in
  let rec go w acc = if w = nw then acc else go (w + 1) (acc + popcount_word (get_word v w)) in
  go 0 0

(* De Bruijn sequence B(2,6): multiplying an isolated bit [1 << i] by the
   constant places a 6-bit window unique to [i] in the top bits.  The
   lookup table is derived from the constant at module init, so the two
   can never drift apart. *)
let ctz_debruijn = 0x03f79d71b4ca8b09L

let ctz_table =
  let t = Array.make 64 0 in
  for i = 0 to 63 do
    let idx =
      Int64.to_int
        (Int64.shift_right_logical
           (Int64.mul (Int64.shift_left 1L i) ctz_debruijn)
           58)
    in
    t.(idx) <- i
  done;
  t

let ctz64 x =
  if Int64.equal x 0L then 64
  else
    (* x land (-x) isolates the lowest set bit; the rest is branchless. *)
    let lsb = Int64.logand x (Int64.neg x) in
    ctz_table.(Int64.to_int (Int64.shift_right_logical (Int64.mul lsb ctz_debruijn) 58))

let first_diff a b =
  check_same_len a b "Bits.first_diff";
  let nw = num_words a in
  let rec go w =
    if w = nw then None
    else
      let x = Int64.logxor (get_word a w) (get_word b w) in
      if Int64.equal x 0L then go (w + 1) else Some ((w lsl 6) + ctz64 x)
  in
  go 0

let first_one v =
  let nw = num_words v in
  let rec go w =
    if w = nw then None
    else
      let x = get_word v w in
      if Int64.equal x 0L then go (w + 1) else Some ((w lsl 6) + ctz64 x)
  in
  go 0

let randomize v rand64 =
  let nw = num_words v in
  for w = 0 to nw - 1 do
    Bytes.set_int64_ne v.data (w * 8) (rand64 ())
  done;
  if nw > 0 then begin
    let off = (nw - 1) * 8 in
    Bytes.set_int64_ne v.data off
      (Int64.logand (Bytes.get_int64_ne v.data off) (tail_mask v.len))
  end

let to_string v =
  String.init v.len (fun i -> if get v (v.len - 1 - i) then '1' else '0')

let of_string s =
  let len = String.length s in
  let v = create ~len false in
  String.iteri
    (fun i c ->
      match c with
      | '0' -> ()
      | '1' -> set v (len - 1 - i) true
      | _ -> invalid_arg "Bits.of_string: expected '0' or '1'")
    s;
  v

let pp fmt v = Format.pp_print_string fmt (to_string v)
