(* Work-stealing fork–join pool.

   Jobs are published through an atomic generation counter: the caller
   writes the job record, bumps [gen], and every worker picks it up by
   observing the new generation — no mutex/condvar handoff on the dispatch
   path.  Idle workers spin briefly (much longer inside a
   [parallel_region]) before parking on a condvar, so back-to-back loops —
   the per-level barriers of the exhaustive simulator — cost a fetch-add
   and a short spin instead of a wake-up.

   The index range of a loop is statically partitioned into one contiguous
   block per worker; each worker claims fixed-size chunks off its own
   block's atomic cursor (a chunked deque it owns the head of) and, once
   its block is drained, steals chunks from the other blocks' cursors. *)

type job = {
  body : int -> unit;
  chunk : int;
  cursors : int Atomic.t array;  (* per-slot next index in its block *)
  block_stop : int array;  (* per-slot block end *)
  pending : int Atomic.t;  (* spawned workers that have not finished yet *)
  exn : exn option Atomic.t;
}

type stats = {
  mutable jobs : int;
  mutable seq_jobs : int;
  mutable items : int;
  mutable barrier_wait : float;
  chunks_per_worker : int array;
  steals : int array;
  mutable regions : int;
  mutable region_jobs : int;
}

type t = {
  spawned : int;
  mutex : Mutex.t;
  cond : Condition.t;
  sleepers : int Atomic.t;  (* workers parked on [cond] *)
  mutable current : job option;  (* published before [gen] is bumped *)
  gen : int Atomic.t;
  region_on : int Atomic.t;  (* > 0 while some caller holds a region *)
  stopping : bool Atomic.t;
  done_mutex : Mutex.t;
  done_cond : Condition.t;
  mutable domains : unit Domain.t list;
  submit : Mutex.t;
      (* The pool has a single job slot, so concurrent submitters (shared
         sessions, the serve daemon) are serialized: the mutex is held from
         job publication through barrier exit.  Per-job stats are mutated
         under it; only the sequential-fallback counters stay best-effort. *)
  oversubscribed : bool;  (* more domains than cores: see [create] *)
  spin_idle : int;  (* idle spin budget before parking (0 = park at once) *)
  spin_region : int;  (* spin budget inside a region and at the barrier *)
  stat : stats;
}

(* A domain inside a [parallel_for] body must not dispatch another parallel
   loop (the pool has a single job slot); nested calls run inline.  The
   flag is domain-local so the guard also covers worker domains, which the
   old shared [in_loop] ref raced on. *)
let in_body : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

(* Caller-side [parallel_region] nesting.  Domain-local, not a pool field:
   two domains sharing one pool each track their own nesting, so one
   session's region never makes another session's region collapse to a
   plain call (or vice versa). *)
let in_region : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

(* Spin budgets before parking, in [cpu_relax] iterations.  Inside a
   region the budget is high enough that the gaps between the per-level
   loops of one simulation round never reach the condvar.  Spinning is
   only productive when every domain has a core of its own: [cpu_relax]
   does not yield the OS timeslice, so on an oversubscribed host a
   spinning domain starves the one that actually holds work for whole
   scheduler quanta.  [create] zeroes both budgets in that case and the
   pool degrades to plain condvar handoff. *)
let spin_idle_max = 500
let spin_region_max = 100_000

(* Each worker owns one slot of the per-worker stat arrays (slot 0 is the
   calling domain), so plain increments are race-free. *)
let run_chunks t slot job =
  let claims = t.stat.chunks_per_worker in
  let steals = t.stat.steals in
  let num = t.spawned + 1 in
  let flag = Domain.DLS.get in_body in
  flag := true;
  (* Drain the chunks of block [b]; count a steal per chunk when the block
     is not our own. *)
  let drain b =
    let cursor = job.cursors.(b) and stop = job.block_stop.(b) in
    let rec loop () =
      if Atomic.get job.exn <> None then ()
      else begin
        let i = Atomic.fetch_and_add cursor job.chunk in
        if i < stop then begin
          claims.(slot) <- claims.(slot) + 1;
          if b <> slot then steals.(slot) <- steals.(slot) + 1;
          let hi = min stop (i + job.chunk) in
          (try
             for k = i to hi - 1 do
               job.body k
             done
           with e -> ignore (Atomic.compare_and_set job.exn None (Some e)));
          loop ()
        end
      end
    in
    loop ()
  in
  drain slot;
  for d = 1 to num - 1 do
    drain ((slot + d) mod num)
  done;
  flag := false

let wake_sleepers t =
  if Atomic.get t.sleepers > 0 then begin
    Mutex.lock t.mutex;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex
  end

let worker_loop t slot =
  let seen = ref 0 in
  let stop = ref false in
  while not !stop do
    (* Wait for the next generation: spin, then park. *)
    let rec await spins =
      if Atomic.get t.stopping then `Stop
      else if Atomic.get t.gen <> !seen then `Job
      else if
        spins
        < if Atomic.get t.region_on > 0 then t.spin_region else t.spin_idle
      then begin
        Domain.cpu_relax ();
        await (spins + 1)
      end
      else begin
        Mutex.lock t.mutex;
        (* [sleepers] is bumped before the predicate re-check so a
           publisher that observes the old count afterwards is guaranteed
           to see the new generation was not yet observed — no lost
           wake-up. *)
        Atomic.incr t.sleepers;
        while
          (not (Atomic.get t.stopping)) && Atomic.get t.gen = !seen
        do
          Condition.wait t.cond t.mutex
        done;
        Atomic.decr t.sleepers;
        Mutex.unlock t.mutex;
        await 0
      end
    in
    match await 0 with
    | `Stop -> stop := true
    | `Job -> (
        seen := Atomic.get t.gen;
        (* [current] cannot change until every worker has finished the
           published job, so it necessarily matches the generation read
           above. *)
        match t.current with
        | None -> ()
        | Some job ->
            run_chunks t slot job;
            if Atomic.fetch_and_add job.pending (-1) = 1 then begin
              Mutex.lock t.done_mutex;
              Condition.broadcast t.done_cond;
              Mutex.unlock t.done_mutex
            end)
  done

let env_domains () =
  match Sys.getenv_opt "SIMSWEEP_DOMAINS" with
  | Some s -> ( match int_of_string_opt s with Some n when n >= 1 -> Some n | _ -> None)
  | None -> None

let create ?num_domains () =
  let n =
    match num_domains with
    | Some n when n >= 1 -> n
    | Some _ -> invalid_arg "Pool.create: num_domains must be >= 1"
    | None -> (
        match env_domains () with
        | Some n -> n
        | None -> min 8 (Domain.recommended_domain_count ()))
  in
  let cores = Domain.recommended_domain_count () in
  let t =
    {
      spawned = n - 1;
      mutex = Mutex.create ();
      cond = Condition.create ();
      sleepers = Atomic.make 0;
      current = None;
      gen = Atomic.make 0;
      region_on = Atomic.make 0;
      stopping = Atomic.make false;
      done_mutex = Mutex.create ();
      done_cond = Condition.create ();
      domains = [];
      submit = Mutex.create ();
      oversubscribed = n > cores;
      spin_idle = (if n > cores then 0 else spin_idle_max);
      spin_region = (if n > cores then 0 else spin_region_max);
      stat =
        {
          jobs = 0;
          seq_jobs = 0;
          items = 0;
          barrier_wait = 0.;
          chunks_per_worker = Array.make n 0;
          steals = Array.make n 0;
          regions = 0;
          region_jobs = 0;
        };
    }
  in
  t.domains <-
    List.init t.spawned (fun i -> Domain.spawn (fun () -> worker_loop t (i + 1)));
  t

let num_workers t = t.spawned + 1

let stats t =
  {
    t.stat with
    chunks_per_worker = Array.copy t.stat.chunks_per_worker;
    steals = Array.copy t.stat.steals;
  }

let reset_stats t =
  t.stat.jobs <- 0;
  t.stat.seq_jobs <- 0;
  t.stat.items <- 0;
  t.stat.barrier_wait <- 0.;
  Array.fill t.stat.chunks_per_worker 0 (Array.length t.stat.chunks_per_worker) 0;
  Array.fill t.stat.steals 0 (Array.length t.stat.steals) 0;
  t.stat.regions <- 0;
  t.stat.region_jobs <- 0

let parallel_for t ?chunk ~start ~stop body =
  let n = stop - start in
  if n <= 0 then ()
  else if t.spawned = 0 || !(Domain.DLS.get in_body) || n <= 1 then begin
    t.stat.seq_jobs <- t.stat.seq_jobs + 1;
    t.stat.items <- t.stat.items + n;
    for i = start to stop - 1 do
      body i
    done
  end
  else begin
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | _ -> max 1 (n / (8 * (t.spawned + 1)))
    in
    let num = t.spawned + 1 in
    (* Block reservation guarantees every worker finds work whenever it is
       scheduled.  On an oversubscribed host that is exactly wrong: domains
       time-share cores, so handing each a reserved block keeps several
       mutators active at once and every minor GC becomes a stop-the-world
       rendezvous across scheduler timeslices.  There the whole range goes
       into block 0 — whichever domain is actually running drains it, and
       late-woken workers find nothing (the seed pool's behaviour). *)
    let per = if t.oversubscribed then n else (n + num - 1) / num in
    let job =
      {
        body;
        chunk;
        cursors = Array.init num (fun w -> Atomic.make (start + (w * per)));
        block_stop = Array.init num (fun w -> min stop (start + ((w + 1) * per)));
        pending = Atomic.make t.spawned;
        exn = Atomic.make None;
      }
    in
    (* Single job slot: hold [submit] from publication to barrier exit so
       concurrent submitters queue instead of clobbering [current]/[gen]. *)
    Mutex.lock t.submit;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.submit)
      (fun () ->
        t.stat.jobs <- t.stat.jobs + 1;
        t.stat.items <- t.stat.items + n;
        if !(Domain.DLS.get in_region) then
          t.stat.region_jobs <- t.stat.region_jobs + 1;
        t.current <- Some job;
        Atomic.incr t.gen;
        wake_sleepers t;
        run_chunks t 0 job;
        let wait0 = Unix.gettimeofday () in
        let rec spin i =
          if Atomic.get job.pending = 0 then ()
          else if i < t.spin_region then begin
            Domain.cpu_relax ();
            spin (i + 1)
          end
          else begin
            Mutex.lock t.done_mutex;
            while Atomic.get job.pending > 0 do
              Condition.wait t.done_cond t.done_mutex
            done;
            Mutex.unlock t.done_mutex
          end
        in
        spin 0;
        (* Drop the job at barrier exit: retaining it would keep the
           closure — and any buffers it captures — alive until the next
           loop. *)
        t.current <- None;
        t.stat.barrier_wait <-
          t.stat.barrier_wait +. (Unix.gettimeofday () -. wait0));
    match Atomic.get job.exn with None -> () | Some e -> raise e
  end

let parallel_region t f =
  let nested = Domain.DLS.get in_region in
  if t.spawned = 0 || !(Domain.DLS.get in_body) || !nested then
    (* Sequential pool, worker body, or nested region: plain call. *)
    f ()
  else begin
    Mutex.lock t.submit;
    t.stat.regions <- t.stat.regions + 1;
    Mutex.unlock t.submit;
    nested := true;
    Atomic.incr t.region_on;
    Fun.protect
      ~finally:(fun () ->
        Atomic.decr t.region_on;
        nested := false)
      f
  end

let parallel_reduce ?chunk t ~start ~stop ~neutral ~body ~combine =
  let n = stop - start in
  if n <= 0 then neutral
  else begin
    (* Deterministic: chunk boundaries depend only on [n] and [chunk], each
       chunk folds its indices left-to-right, and the chunk partials are
       folded in chunk order — so any associative [combine] gives the same
       result as a sequential left fold, run after run. *)
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | _ -> max 1 (n / (8 * (t.spawned + 1)))
    in
    let nchunks = (n + chunk - 1) / chunk in
    let partial = Array.make nchunks neutral in
    parallel_for t ~chunk:1 ~start:0 ~stop:nchunks (fun c ->
        let lo = start + (c * chunk) in
        let hi = min stop (lo + chunk) in
        let acc = ref neutral in
        for i = lo to hi - 1 do
          acc := combine !acc (body i)
        done;
        partial.(c) <- !acc);
    Array.fold_left combine neutral partial
  end

let shutdown t =
  let already = Atomic.exchange t.stopping true in
  Mutex.lock t.mutex;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  if not already then begin
    List.iter Domain.join t.domains;
    t.domains <- []
  end

(* The check-then-set on [default_pool] must be atomic: two domains racing
   through it would each create a pool and one would leak its worker
   domains forever.  The mutex also makes the [at_exit] registration
   happen exactly once, on the single creation path. *)
let default_pool = ref None
let default_mutex = Mutex.create ()

let default () =
  Mutex.lock default_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock default_mutex)
    (fun () ->
      match !default_pool with
      | Some p -> p
      | None ->
          let p = create () in
          default_pool := Some p;
          (* The default pool's domains are never joined by callers; tear
             them down at process exit so runs under test runners exit
             cleanly. *)
          at_exit (fun () -> shutdown p);
          p)
