(* Cooperative cancellation token: an atomic flag plus an optional
   wall-clock deadline.  [poll] latches a deadline expiry into the flag so
   that later polls cost a single atomic load. *)

type t = { flag : bool Atomic.t; deadline : float; parent : t option }

exception Cancelled

let create ?deadline_in () =
  let deadline =
    match deadline_in with
    | None -> Float.infinity
    | Some d -> Unix.gettimeofday () +. d
  in
  { flag = Atomic.make false; deadline; parent = None }

let child ?deadline_in parent =
  let deadline =
    match deadline_in with
    | None -> Float.infinity
    | Some d -> Unix.gettimeofday () +. d
  in
  { flag = Atomic.make false; deadline; parent = Some parent }

let set t = Atomic.set t.flag true
let is_set t = Atomic.get t.flag

let rec poll t =
  Atomic.get t.flag
  ||
  match t.parent with
  | Some p when poll p ->
      Atomic.set t.flag true;
      true
  | _ ->
      t.deadline < Float.infinity
      && Unix.gettimeofday () > t.deadline
      &&
      (Atomic.set t.flag true;
       true)

let check t = if poll t then raise Cancelled

(* Optional-token helpers: engine loops thread [cancel : t option] and the
   absent token must cost nothing on the hot path. *)
let poll_opt = function None -> false | Some t -> poll t
let is_set_opt = function None -> false | Some t -> is_set t
