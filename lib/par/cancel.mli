(** Cooperative cancellation token.

    A cancellation token is an atomic flag, optionally armed with a
    wall-clock deadline.  Engine loops poll the token at their natural
    batch boundaries (simulation rounds, SAT conflicts, BDD node
    allocations) and unwind with an inconclusive verdict when it fires —
    the mechanism behind the racing portfolio's "first conclusive verdict
    cancels the losers" and behind per-engine time budgets.

    Tokens are domain-safe: [set] and [poll] may be called from any
    domain. *)

type t

exception Cancelled

(** [create ?deadline_in ()] makes a fresh token.  [deadline_in] arms a
    deadline that many seconds from now; polling past the deadline sets
    the token as if {!set} had been called. *)
val create : ?deadline_in:float -> unit -> t

(** [child ?deadline_in parent] is a token that fires when [parent] fires
    (observed on [poll]) or when its own deadline expires or {!set} is
    called on it — but setting the child never touches [parent].  The
    racing portfolio uses this to share a per-request deadline token with
    its racers: the winner cancels the losers through the child while the
    request's own token stays clean for later work. *)
val child : ?deadline_in:float -> t -> t

(** Request cancellation.  Idempotent. *)
val set : t -> unit

(** Flag state only — one atomic load, never consults the clock. *)
val is_set : t -> bool

(** Flag state or deadline expiry.  An expired deadline latches into the
    flag, so repeated polls after expiry cost one atomic load. *)
val poll : t -> bool

(** [check t] raises {!Cancelled} when {!poll} is true. *)
val check : t -> unit

(** [poll_opt c] / [is_set_opt c] on an optional token; [None] is never
    cancelled and costs one branch. *)
val poll_opt : t option -> bool

val is_set_opt : t option -> bool
