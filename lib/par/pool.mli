(** Work-stealing fork–join domain pool.

    This is the stand-in for the paper's GPU runtime: data-parallel loops
    with a barrier at the end, used for all three dimensions of parallelism
    of the exhaustive simulator (words of a truth table, nodes of a
    topological level, windows of a batch).

    A loop's index range is statically partitioned into one contiguous
    block per worker; each worker claims fixed chunks off its own block's
    atomic cursor and steals chunks from the other blocks once its own is
    drained, so load imbalance inside a level costs a steal instead of an
    idle worker.  Jobs are published through an atomic generation counter
    and idle workers spin before parking, which makes a dispatch + barrier
    a pair of fetch-adds on the fast path — see {!parallel_region}. *)

type t

(** Utilization counters, accumulated since pool creation (or the last
    {!reset_stats}).  [chunks_per_worker.(0)] counts chunks claimed by the
    calling domain, slots [1..] the spawned workers — their spread shows
    how evenly the self-scheduling balanced the load.  [steals.(w)] counts
    the subset of worker [w]'s chunks that were claimed from another
    worker's block after its own drained. *)
type stats = {
  mutable jobs : int;  (** parallel loops dispatched to the workers *)
  mutable seq_jobs : int;  (** loops run inline (tiny range or nested) *)
  mutable items : int;  (** loop indices executed, over all loops *)
  mutable barrier_wait : float;
      (** seconds the calling domain spent waiting at end-of-loop barriers *)
  chunks_per_worker : int array;
  steals : int array;  (** stolen chunks per worker slot *)
  mutable regions : int;  (** {!parallel_region} entries (outermost only) *)
  mutable region_jobs : int;
      (** parallel loops dispatched from inside a region *)
}

(** [create ~num_domains ()] spawns [num_domains - 1] worker domains; the
    calling domain participates in every loop, so [num_domains = 1] gives a
    purely sequential pool.  Defaults to [recommended_domain_count],
    overridable with the [SIMSWEEP_DOMAINS] environment variable. *)
val create : ?num_domains:int -> unit -> t

(** Total workers, including the calling domain. *)
val num_workers : t -> int

(** Snapshot of the pool's utilization counters. *)
val stats : t -> stats

val reset_stats : t -> unit

(** [parallel_for t ~chunk ~start ~stop body] runs [body i] for
    [start <= i < stop] across the pool and returns once every index is
    done.  Exceptions raised by [body] are re-raised (first one wins) after
    the barrier.  Nested calls from inside [body] run sequentially.

    Concurrent submitters (several domains or threads sharing one pool —
    the serve daemon's sessions) are safe: the pool has a single job slot
    and serializes loops through an internal submit lock, so concurrent
    loops queue FIFO-ish instead of corrupting each other.  Per-job stats
    stay exact; only [seq_jobs]/[items] of sequential fallbacks are
    best-effort under concurrent submission.

    The published job is dropped at barrier exit — a regression guard:
    retaining the last job used to keep its closure (and any simulation
    buffers it captured) alive until the next loop dispatched. *)
val parallel_for : t -> ?chunk:int -> start:int -> stop:int -> (int -> unit) -> unit

(** [parallel_region t f] runs [f ()] with the workers held in their
    spinning state for the whole call: successive {!parallel_for} jobs
    inside [f] are picked up via the atomic generation counter without any
    park/wake transition, so a tight sequence of small loops (the per-level
    barriers of one simulation round) pays spin-loop latency instead of a
    condvar round-trip per loop.  Purely a scheduling hint — results are
    identical with or without the region.  Nested regions, regions on a
    sequential pool and regions opened from inside a worker body are
    inert: [f] is simply called. *)
val parallel_region : t -> (unit -> 'a) -> 'a

(** [parallel_reduce t ~start ~stop ~neutral ~body ~combine] folds the
    values of [body i] with [combine].  [combine] must be associative and
    [neutral] its unit; commutativity is {e not} required — indices are
    folded left-to-right within fixed chunks and the chunk partials are
    combined in index order, so the result is deterministic and equal to
    the sequential left fold for any associative [combine]. *)
val parallel_reduce :
  ?chunk:int ->
  t ->
  start:int ->
  stop:int ->
  neutral:'a ->
  body:(int -> 'a) ->
  combine:('a -> 'a -> 'a) ->
  'a

(** Terminate the worker domains.  Idempotent; the pool must not be used
    for further loops afterwards. *)
val shutdown : t -> unit

(** Lazily-created process-wide pool; its workers are shut down
    automatically at process exit.  Safe to call from concurrent domains:
    creation is mutex-guarded, so exactly one pool is ever created (and its
    [at_exit] teardown registered exactly once), no matter how many domains
    race through the first call. *)
val default : unit -> t
