(** An ABC-style command interpreter over the whole toolkit.

    The interpreter keeps a {e current network} plus a store of named
    networks, and executes line-oriented commands — reading/generating
    circuits, running optimisation passes, building miters and invoking the
    checkers.  It backs the [simsweep-shell] binary and is a plain library
    so scripts are unit-testable.

    Commands (see [exec _ "help"] for the same list):
    {v
    read FILE              load an AIGER file as the current network
    write FILE             write the current network (.aig = binary)
    gen FAMILY [N]         generate a circuit (adder, multiplier, wallace,
                           square, sqrt, hypot, log2, sin, voter, divider,
                           barrel, alu, regfile, display); N = width/size
    strash                 sweep dangling nodes
    balance | rewrite | refactor | xorflip | resyn2 | light
                           optimisation passes
    double [N]             enlarge N times (default 1)
    store NAME             save the current network under NAME
    load NAME              make a stored network current
    miter NAME             replace current with miter(current, NAME)
    cec [sim|sat|bdd|portfolio|combined|partitioned|wordsweep]
                           check the current miter (default combined)
    certify                check with certificate generation + validation
    sim N                  print N random simulation vectors
    stats                  print size statistics
    dot FILE               write Graphviz
    help                   this list
    v}  *)

type state

(** Fresh interpreter state.  When [pool] is omitted a private pool is
    created lazily and shut down by [Gc] finalisation at exit.  [pcache]
    plugs in a cross-request equivalence cache ({!Aig.Pcache}) consulted
    by the [cec] engines; cache effects are reported in the command
    output.

    A [state] is single-session: it is not safe to share one state
    between domains or threads.  Concurrent sessions must each own a
    [state]; they {e may} share one [pool] (submissions are serialized by
    the pool) and one thread-safe [pcache]. *)
val create : ?pool:Par.Pool.t -> ?pcache:Aig.Pcache.t -> unit -> state

(** [exec ?cancel state line] runs one command; returns its printable
    output or an error message.  Blank lines and comments yield [Ok ""].
    A [#] starts a comment only at the start of the line or after a
    blank, so [read foo#1.aig] names a file.  Double or single quotes
    group a word ([read "my file.aig"]).  [cancel] is forwarded to the
    long-running commands ([cec], [fraig]). *)
val exec : ?cancel:Par.Cancel.t -> state -> string -> (string, string) result

(** [register_engine name run] plugs an extra [cec] engine into the
    interpreter, for libraries the shell cannot link directly (the shard
    coordinator depends on the serve protocol, which depends on this
    shell).  The engine is selected as [cec name] or [cec name.ARG]; the
    part after the first dot reaches [run] as [arg].  Registering an
    existing name replaces it.  Entry points opt in explicitly (same
    pattern as [Word.Sweep.register]). *)
val register_engine :
  string ->
  (?cancel:Par.Cancel.t ->
  arg:string option ->
  Aig.Network.t ->
  (string, string) result) ->
  unit

(** [run_cec ?cancel state miter engine] checks [miter] with the named
    [cec] engine (sim, sat, bdd, portfolio, combined, partitioned,
    wordsweep, or anything from {!register_engine}) using
    the state's pool and equivalence cache, without touching the state's
    current network or store.  The daemon's direct-CEC entry point. *)
val run_cec :
  ?cancel:Par.Cancel.t ->
  state ->
  Aig.Network.t ->
  string ->
  (string, string) result

(** Run a whole script, stopping at the first error; returns the
    concatenated output.  Commands are separated by newlines or [;] —
    except inside quotes or comments — and an error is reported as
    [command N (TEXT): MESSAGE] with N the 1-based index of the offending
    command (blank segments are not counted). *)
val exec_script :
  ?cancel:Par.Cancel.t -> state -> string -> (string, string) result
