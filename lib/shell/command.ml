type state = {
  mutable current : Aig.Network.t option;
  store : (string, Aig.Network.t) Hashtbl.t;
  pool : Par.Pool.t Lazy.t;
}

let create ?pool () =
  {
    current = None;
    store = Hashtbl.create 8;
    pool = (match pool with Some p -> lazy p | None -> lazy (Par.Pool.create ()));
  }

let help_text =
  String.concat "\n"
    [
      "read FILE            load an AIGER file as the current network";
      "write FILE           write the current network (.aig = binary)";
      "gen FAMILY [N]       generate: adder multiplier wallace square sqrt";
      "                     hypot log2 sin voter divider barrel alu regfile display";
      "strash               sweep dangling nodes";
      "balance rewrite refactor xorflip resyn2 light   optimisation passes";
      "double [N]           enlarge N times";
      "store NAME           save the current network";
      "load NAME            recall a stored network";
      "miter NAME           current := miter(current, NAME)";
      "cec [ENGINE]         sim sat bdd portfolio combined partitioned";
      "map [K]              map to K-input LUTs and resynthesise (default 6)";
      "fraig                merge functionally equivalent internal nodes";
      "certify              combined check with certificate validation";
      "sim N                random simulation vectors";
      "stats                print statistics";
      "dot FILE             write Graphviz";
      "help                 this text";
    ]

let stats_line g = Format.asprintf "%a" Aig.Stats.pp (Aig.Stats.of_network g)

let with_current st f =
  match st.current with
  | None -> Error "no current network (use read or gen)"
  | Some g -> f g

let generate family size =
  let size d = match size with Some n -> n | None -> d in
  match family with
  | "adder" -> Ok (Gen.Arith.adder ~bits:(size 8))
  | "multiplier" -> Ok (Gen.Arith.multiplier ~bits:(size 8))
  | "wallace" -> Ok (Gen.Wallace.multiplier ~bits:(size 8))
  | "square" -> Ok (Gen.Arith.square ~bits:(size 8))
  | "sqrt" -> Ok (Gen.Arith.sqrt ~bits:(size 16))
  | "hypot" -> Ok (Gen.Arith.hypot ~bits:(size 8))
  | "log2" -> Ok (Gen.Arith.log2 ~bits:(size 8) ~frac:3)
  | "sin" -> Ok (Gen.Arith.sin ~bits:(size 8) ~iters:(size 8))
  | "voter" -> Ok (Gen.Control.voter ~n:(size 15))
  | "divider" -> Ok (Gen.Divider.divide ~bits:(size 8))
  | "barrel" -> Ok (Gen.Barrel.shifter ~bits:(size 8) ~rotate:false)
  | "alu" -> Ok (Gen.Alu.alu ~bits:(size 8))
  | "regfile" -> Ok (Gen.Control.regfile ~regs:(size 8) ~width:8)
  | "display" -> Ok (Gen.Control.display ~hbits:(size 8) ~vbits:(max 1 (size 8 - 1)))
  | _ -> Error ("unknown family " ^ family)

let outcome_string = function
  | Simsweep.Engine.Proved -> "EQUIVALENT"
  | Simsweep.Engine.Disproved (cex, po) ->
      let bits =
        String.init (Array.length cex) (fun i -> if cex.(i) then '1' else '0')
      in
      Printf.sprintf "NOT EQUIVALENT (output %d, inputs %s)" po bits
  | Simsweep.Engine.Undecided -> "UNDECIDED"

let run_cec st g engine =
  let pool = Lazy.force st.pool in
  match engine with
  | "sim" ->
      let r = Simsweep.Engine.run ~config:Simsweep.Config.scaled ~pool g in
      Ok
        (Printf.sprintf "%s (reduced %.1f%%)"
           (outcome_string r.Simsweep.Engine.outcome)
           (Simsweep.Engine.reduction_percent r))
  | "sat" -> (
      match Sat.Sweep.check ~pool (Aig.Network.copy g) with
      | Sat.Sweep.Equivalent, st_ ->
          Ok (Printf.sprintf "EQUIVALENT (%d SAT calls)" st_.Sat.Sweep.sat_calls)
      | Sat.Sweep.Inequivalent (cex, po), _ ->
          Ok (outcome_string (Simsweep.Engine.Disproved (cex, po)))
      | Sat.Sweep.Undecided, _ -> Ok "UNDECIDED")
  | "bdd" -> (
      match Bdd.check g with
      | `Equivalent -> Ok "EQUIVALENT"
      | `Inequivalent (cex, po) ->
          Ok (outcome_string (Simsweep.Engine.Disproved (cex, po)))
      | `Node_limit -> Ok "UNDECIDED (BDD node limit)"
      | `Timeout -> Ok "UNDECIDED (BDD step budget)")
  | "portfolio" ->
      let r = Simsweep.Portfolio.check ~config:Simsweep.Config.scaled ~pool g in
      Ok
        (Printf.sprintf "%s (winner: %s)"
           (outcome_string r.Simsweep.Portfolio.outcome)
           (match r.Simsweep.Portfolio.winner with
           | Some e -> Simsweep.Portfolio.engine_name e
           | None -> "none"))
  | "combined" ->
      let c =
        Simsweep.Engine.check_with_fallback ~config:Simsweep.Config.scaled ~pool g
      in
      Ok (outcome_string c.Simsweep.Engine.final)
  | "partitioned" ->
      let outcome, n =
        Simsweep.Partition.check ~config:Simsweep.Config.scaled ~pool g
      in
      Ok (Printf.sprintf "%s (%d groups)" (outcome_string outcome) n)
  | other -> Error ("unknown engine " ^ other)

let exec st line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let words =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun w -> w <> "")
  in
  let set g out =
    st.current <- Some g;
    Ok out
  in
  let pass name f =
    with_current st (fun g ->
        let g' = f g in
        set g' (Printf.sprintf "%s: %s" name (stats_line g')))
  in
  try
    match words with
    | [] -> Ok ""
    | [ "help" ] -> Ok help_text
    | [ "read"; file ] ->
        let g = Aig.Aiger_io.read_file file in
        set g (stats_line g)
    | [ "write"; file ] ->
        with_current st (fun g ->
            Aig.Aiger_io.write_file file g;
            Ok ("written " ^ file))
    | "gen" :: family :: rest -> (
        let size =
          match rest with
          | [] -> Ok None
          | [ n ] -> (
              match int_of_string_opt n with
              | Some v when v > 0 -> Ok (Some v)
              | _ -> Error ("bad size " ^ n))
          | _ -> Error "usage: gen FAMILY [N]"
        in
        match size with
        | Error e -> Error e
        | Ok size -> (
            match generate family size with
            | Ok g -> set g (stats_line g)
            | Error e -> Error e))
    | [ "strash" ] -> pass "strash" (fun g -> (Aig.Reduce.sweep g).Aig.Reduce.network)
    | [ "balance" ] -> pass "balance" Opt.Balance.run
    | [ "rewrite" ] -> pass "rewrite" Opt.Rewrite.run
    | [ "refactor" ] -> pass "refactor" (fun g -> Opt.Refactor.run g)
    | [ "xorflip" ] -> pass "xorflip" Opt.Xorflip.run
    | [ "resyn2" ] -> pass "resyn2" Opt.Resyn.resyn2
    | [ "light" ] -> pass "light" Opt.Resyn.light
    | [ "double" ] -> pass "double" Gen.Double.double
    | [ "double"; n ] -> (
        match int_of_string_opt n with
        | Some k when k >= 0 -> pass "double" (Gen.Double.times k)
        | _ -> Error ("bad count " ^ n))
    | [ "store"; name ] ->
        with_current st (fun g ->
            Hashtbl.replace st.store name (Aig.Network.copy g);
            Ok ("stored " ^ name))
    | [ "load"; name ] -> (
        match Hashtbl.find_opt st.store name with
        | Some g -> set (Aig.Network.copy g) (stats_line g)
        | None -> Error ("no stored network " ^ name))
    | [ "miter"; name ] -> (
        match Hashtbl.find_opt st.store name with
        | None -> Error ("no stored network " ^ name)
        | Some other ->
            with_current st (fun g ->
                let m = Aig.Miter.build g other in
                set m ("miter: " ^ stats_line m)))
    | [ "cec" ] -> with_current st (fun g -> run_cec st g "combined")
    | [ "cec"; engine ] -> with_current st (fun g -> run_cec st g engine)
    | [ "certify" ] ->
        with_current st (fun g ->
            let pool = Lazy.force st.pool in
            let result, cert =
              Simsweep.Certificate.generate ~config:Simsweep.Config.scaled ~pool g
            in
            let verdict = outcome_string result.Simsweep.Engine.outcome in
            if not cert.Simsweep.Certificate.claims_proved then
              Ok (verdict ^ " (no full certificate)")
            else begin
              match Simsweep.Certificate.validate g cert with
              | Ok _ ->
                  Ok
                    (Printf.sprintf "%s (certificate with %d steps validated)"
                       verdict
                       (List.length cert.Simsweep.Certificate.steps))
              | Error e -> Error ("certificate INVALID: " ^ e)
            end)
    | [ "sim"; n ] -> (
        match int_of_string_opt n with
        | Some k when k > 0 ->
            with_current st (fun g ->
                let rng = Sim.Rng.create ~seed:9L in
                let buf = Buffer.create 256 in
                for _ = 1 to k do
                  let cex =
                    Array.init (Aig.Network.num_pis g) (fun _ -> Sim.Rng.bool rng)
                  in
                  Array.iter (fun v -> Buffer.add_char buf (if v then '1' else '0')) cex;
                  Buffer.add_char buf ' ';
                  Array.iter
                    (fun l ->
                      Buffer.add_char buf
                        (if Sim.Cex.eval_lit g cex l then '1' else '0'))
                    (Aig.Network.pos g);
                  Buffer.add_char buf '\n'
                done;
                Ok (String.trim (Buffer.contents buf)))
        | _ -> Error ("bad count " ^ n))
    | [ "fraig" ] ->
        with_current st (fun g ->
            let pool = Lazy.force st.pool in
            let g', fstats = Sat.Sweep.fraig ~pool g in
            set g'
              (Printf.sprintf "fraig: %s (%d merges)" (stats_line g')
                 fstats.Sat.Sweep.merged))
    | [ "map" ] | [ "map"; _ ] -> (
        let k =
          match words with
          | [ "map" ] -> Ok 6
          | [ "map"; n ] -> (
              match int_of_string_opt n with
              | Some v -> Ok v
              | None -> Error ("bad k " ^ n))
          | _ -> assert false
        in
        match k with
        | Error e -> Error e
        | Ok k ->
            with_current st (fun g ->
                let m = Lutmap.Mapper.map ~k g in
                let g' = Lutmap.Mapper.to_network m in
                set g'
                  (Printf.sprintf "mapped: %d LUTs, depth %d; resynthesised: %s"
                     (Lutmap.Mapper.lut_count m) m.Lutmap.Mapper.depth
                     (stats_line g'))))
    | [ "stats" ] -> with_current st (fun g -> Ok (stats_line g))
    | [ "dot"; file ] ->
        with_current st (fun g ->
            Aig.Dot.write_file file g;
            Ok ("written " ^ file))
    | cmd :: _ -> Error ("unknown command " ^ cmd ^ " (try help)")
  with
  | Aig.Aiger_io.Parse_error e -> Error ("parse error: " ^ e)
  | Sys_error e -> Error e
  | Invalid_argument e -> Error e

let exec_script st text =
  let lines =
    String.split_on_char '\n' text
    |> List.concat_map (String.split_on_char ';')
  in
  let buf = Buffer.create 256 in
  let rec go = function
    | [] -> Ok (Buffer.contents buf)
    | line :: rest -> (
        match exec st line with
        | Ok "" -> go rest
        | Ok out ->
            Buffer.add_string buf out;
            Buffer.add_char buf '\n';
            go rest
        | Error e -> Error e)
  in
  go lines
