type state = {
  mutable current : Aig.Network.t option;
  store : (string, Aig.Network.t) Hashtbl.t;
  pool : Par.Pool.t Lazy.t;
  pcache : Aig.Pcache.t option;
}

let create ?pool ?pcache () =
  {
    current = None;
    store = Hashtbl.create 8;
    pool = (match pool with Some p -> lazy p | None -> lazy (Par.Pool.create ()));
    pcache;
  }

let help_text =
  String.concat "\n"
    [
      "read FILE            load an AIGER file as the current network";
      "write FILE           write the current network (.aig = binary)";
      "gen FAMILY [N]       generate: adder multiplier wallace square sqrt";
      "                     hypot log2 sin voter divider barrel alu regfile display";
      "strash               sweep dangling nodes";
      "balance rewrite refactor xorflip resyn2 light   optimisation passes";
      "double [N]           enlarge N times";
      "store NAME           save the current network";
      "load NAME            recall a stored network";
      "miter NAME           current := miter(current, NAME)";
      "cec [ENGINE]         sim sat satdirect bdd portfolio combined \
       partitioned wordsweep; plus registered engines (e.g. shard.N: \
       N-process sharded sweeping)";
      "map [K]              map to K-input LUTs and resynthesise (default 6)";
      "fraig                merge functionally equivalent internal nodes";
      "certify              combined check with certificate validation";
      "sim N                random simulation vectors";
      "stats                print statistics";
      "dot FILE             write Graphviz";
      "help                 this text";
    ]

let stats_line g = Format.asprintf "%a" Aig.Stats.pp (Aig.Stats.of_network g)

let with_current st f =
  match st.current with
  | None -> Error "no current network (use read or gen)"
  | Some g -> f g

let generate family size =
  let size d = match size with Some n -> n | None -> d in
  match family with
  | "adder" -> Ok (Gen.Arith.adder ~bits:(size 8))
  | "multiplier" -> Ok (Gen.Arith.multiplier ~bits:(size 8))
  | "wallace" -> Ok (Gen.Wallace.multiplier ~bits:(size 8))
  | "square" -> Ok (Gen.Arith.square ~bits:(size 8))
  | "sqrt" -> Ok (Gen.Arith.sqrt ~bits:(size 16))
  | "hypot" -> Ok (Gen.Arith.hypot ~bits:(size 8))
  | "log2" -> Ok (Gen.Arith.log2 ~bits:(size 8) ~frac:3)
  | "sin" -> Ok (Gen.Arith.sin ~bits:(size 8) ~iters:(size 8))
  | "voter" -> Ok (Gen.Control.voter ~n:(size 15))
  | "divider" -> Ok (Gen.Divider.divide ~bits:(size 8))
  | "barrel" -> Ok (Gen.Barrel.shifter ~bits:(size 8) ~rotate:false)
  | "alu" -> Ok (Gen.Alu.alu ~bits:(size 8))
  | "regfile" -> Ok (Gen.Control.regfile ~regs:(size 8) ~width:8)
  | "display" -> Ok (Gen.Control.display ~hbits:(size 8) ~vbits:(max 1 (size 8 - 1)))
  | _ -> Error ("unknown family " ^ family)

let outcome_string = function
  | Simsweep.Engine.Proved -> "EQUIVALENT"
  | Simsweep.Engine.Disproved (cex, po) ->
      let bits =
        String.init (Array.length cex) (fun i -> if cex.(i) then '1' else '0')
      in
      Printf.sprintf "NOT EQUIVALENT (output %d, inputs %s)" po bits
  | Simsweep.Engine.Undecided -> "UNDECIDED"

(* Append a cache-effect suffix when an equivalence cache is plugged in,
   so clients (and the serve smoke test) can observe reuse. *)
let cache_suffix st ~hits ~misses =
  match st.pcache with
  | None -> ""
  | Some _ -> Printf.sprintf " [cache %d hits, %d misses]" hits misses

(* Extra checking engines registered by libraries the shell cannot link
   directly (dependency direction) — e.g. the multi-process shard
   coordinator, whose library depends on the serve protocol which in turn
   depends on this shell.  Same opt-in pattern as the portfolio's
   [Word.Sweep.register]. *)
let external_engines :
    ( string,
      ?cancel:Par.Cancel.t ->
      arg:string option ->
      Aig.Network.t ->
      (string, string) result )
    Hashtbl.t =
  Hashtbl.create 4

let register_engine name run = Hashtbl.replace external_engines name run

let run_cec ?cancel st g engine =
  let pool = Lazy.force st.pool in
  let pcache = st.pcache in
  match engine with
  | "sim" ->
      let r =
        Simsweep.Engine.run ~config:Simsweep.Config.scaled ?pcache ?cancel ~pool
          g
      in
      let s = r.Simsweep.Engine.stats in
      Ok
        (Printf.sprintf "%s (reduced %.1f%%)%s"
           (outcome_string r.Simsweep.Engine.outcome)
           (Simsweep.Engine.reduction_percent r)
           (cache_suffix st ~hits:s.Simsweep.Stats.cache_hits
              ~misses:s.Simsweep.Stats.cache_misses))
  | "sat" -> (
      match Sat.Sweep.check ?pcache ?cancel ~pool (Aig.Network.copy g) with
      | Sat.Sweep.Equivalent, st_ ->
          Ok
            (Printf.sprintf "EQUIVALENT (%d SAT calls)%s"
               st_.Sat.Sweep.sat_calls
               (cache_suffix st ~hits:st_.Sat.Sweep.cache_hits
                  ~misses:st_.Sat.Sweep.cache_misses))
      | Sat.Sweep.Inequivalent (cex, po), _ ->
          Ok (outcome_string (Simsweep.Engine.Disproved (cex, po)))
      | Sat.Sweep.Undecided, _ -> Ok "UNDECIDED")
  | "satdirect" -> (
      (* Monolithic SAT with preprocessing, no sweeping — exercises the
         Solver.simplify pipeline end to end. *)
      match Sat.Sweep.check_direct ?cancel g with
      | Sat.Sweep.Equivalent -> Ok "EQUIVALENT"
      | Sat.Sweep.Inequivalent (cex, po) ->
          Ok (outcome_string (Simsweep.Engine.Disproved (cex, po)))
      | Sat.Sweep.Undecided -> Ok "UNDECIDED")
  | "bdd" -> (
      match Bdd.check ?cancel g with
      | `Equivalent -> Ok "EQUIVALENT"
      | `Inequivalent (cex, po) ->
          Ok (outcome_string (Simsweep.Engine.Disproved (cex, po)))
      | `Node_limit -> Ok "UNDECIDED (BDD node limit)"
      | `Timeout -> Ok "UNDECIDED (BDD step budget)")
  | "portfolio" ->
      let r =
        Simsweep.Portfolio.check ~config:Simsweep.Config.scaled ?cancel ~pool g
      in
      Ok
        (Printf.sprintf "%s (winner: %s)"
           (outcome_string r.Simsweep.Portfolio.outcome)
           (match r.Simsweep.Portfolio.winner with
           | Some e -> Simsweep.Portfolio.engine_name e
           | None -> "none"))
  | "combined" ->
      let c =
        Simsweep.Engine.check_with_fallback ~config:Simsweep.Config.scaled
          ?pcache ?cancel ~pool g
      in
      let es = c.Simsweep.Engine.engine.Simsweep.Engine.stats in
      let sat_hits, sat_misses =
        match c.Simsweep.Engine.sat_stats with
        | Some s -> (s.Sat.Sweep.cache_hits, s.Sat.Sweep.cache_misses)
        | None -> (0, 0)
      in
      Ok
        (outcome_string c.Simsweep.Engine.final
        ^ cache_suffix st
            ~hits:(es.Simsweep.Stats.cache_hits + sat_hits)
            ~misses:(es.Simsweep.Stats.cache_misses + sat_misses))
  | "partitioned" ->
      let outcome, n =
        Simsweep.Partition.check ~config:Simsweep.Config.scaled ?cancel ~pool g
      in
      Ok (Printf.sprintf "%s (%d groups)" (outcome_string outcome) n)
  | "wordsweep" ->
      let outcome, ws =
        Word.Sweep.check ~config:Simsweep.Config.scaled ?pcache ?cancel ~pool g
      in
      Ok
        (Printf.sprintf
           "%s (%.1f%% word coverage, %d words proved, %d bits merged)%s"
           (outcome_string outcome) ws.Word.Sweep.coverage_percent
           ws.Word.Sweep.words_proved ws.Word.Sweep.bits_merged
           (cache_suffix st ~hits:ws.Word.Sweep.cache_hits
              ~misses:ws.Word.Sweep.cache_misses))
  | other -> (
      (* "name" or "name.ARG" selects a registered engine, ARG passed
         through (e.g. "shard.4" = shard coordinator with 4 workers). *)
      let name, arg =
        match String.index_opt other '.' with
        | Some i ->
            ( String.sub other 0 i,
              Some (String.sub other (i + 1) (String.length other - i - 1)) )
        | None -> (other, None)
      in
      match Hashtbl.find_opt external_engines name with
      | Some run -> run ?cancel ~arg g
      | None -> Error ("unknown engine " ^ other))

(* Tokenize one command line ABC-style: words split on blanks; double or
   single quotes group a word, so filenames may contain blanks, [;] or
   [#]; a [#] starts a comment only at the start of the line or after a
   blank — [read foo#1.aig] names a file, [read x  # note] carries a
   comment. *)
let tokenize line =
  let n = String.length line in
  let words = ref [] in
  let buf = Buffer.create 16 in
  let in_word = ref false in
  let flush () =
    if !in_word then begin
      words := Buffer.contents buf :: !words;
      Buffer.clear buf;
      in_word := false
    end
  in
  let err = ref None in
  let i = ref 0 in
  while !err = None && !i < n do
    (match line.[!i] with
    | ' ' | '\t' | '\r' -> flush ()
    | ('"' | '\'') as q -> (
        match String.index_from_opt line (!i + 1) q with
        | Some j ->
            Buffer.add_string buf (String.sub line (!i + 1) (j - !i - 1));
            in_word := true;
            i := j
        | None -> err := Some (Printf.sprintf "unterminated %c quote" q))
    | '#' when not !in_word -> i := n
    | c ->
        Buffer.add_char buf c;
        in_word := true);
    incr i
  done;
  match !err with
  | Some e -> Error e
  | None ->
      flush ();
      Ok (List.rev !words)

let exec ?cancel st line =
  match tokenize line with
  | Error e -> Error e
  | Ok words ->
  let set g out =
    st.current <- Some g;
    Ok out
  in
  let pass name f =
    with_current st (fun g ->
        let g' = f g in
        set g' (Printf.sprintf "%s: %s" name (stats_line g')))
  in
  try
    match words with
    | [] -> Ok ""
    | [ "help" ] -> Ok help_text
    | [ "read"; file ] ->
        let g = Aig.Aiger_io.read_file file in
        set g (stats_line g)
    | [ "write"; file ] ->
        with_current st (fun g ->
            Aig.Aiger_io.write_file file g;
            Ok ("written " ^ file))
    | "gen" :: family :: rest -> (
        let size =
          match rest with
          | [] -> Ok None
          | [ n ] -> (
              match int_of_string_opt n with
              | Some v when v > 0 -> Ok (Some v)
              | _ -> Error ("bad size " ^ n))
          | _ -> Error "usage: gen FAMILY [N]"
        in
        match size with
        | Error e -> Error e
        | Ok size -> (
            match generate family size with
            | Ok g -> set g (stats_line g)
            | Error e -> Error e))
    | [ "strash" ] -> pass "strash" (fun g -> (Aig.Reduce.sweep g).Aig.Reduce.network)
    | [ "balance" ] -> pass "balance" Opt.Balance.run
    | [ "rewrite" ] -> pass "rewrite" Opt.Rewrite.run
    | [ "refactor" ] -> pass "refactor" (fun g -> Opt.Refactor.run g)
    | [ "xorflip" ] -> pass "xorflip" Opt.Xorflip.run
    | [ "resyn2" ] -> pass "resyn2" Opt.Resyn.resyn2
    | [ "light" ] -> pass "light" Opt.Resyn.light
    | [ "double" ] -> pass "double" Gen.Double.double
    | [ "double"; n ] -> (
        match int_of_string_opt n with
        | Some k when k >= 0 -> pass "double" (Gen.Double.times k)
        | _ -> Error ("bad count " ^ n))
    | [ "store"; name ] ->
        with_current st (fun g ->
            Hashtbl.replace st.store name (Aig.Network.copy g);
            Ok ("stored " ^ name))
    | [ "load"; name ] -> (
        match Hashtbl.find_opt st.store name with
        | Some g -> set (Aig.Network.copy g) (stats_line g)
        | None -> Error ("no stored network " ^ name))
    | [ "miter"; name ] -> (
        match Hashtbl.find_opt st.store name with
        | None -> Error ("no stored network " ^ name)
        | Some other ->
            with_current st (fun g ->
                let m = Aig.Miter.build g other in
                set m ("miter: " ^ stats_line m)))
    | [ "cec" ] -> with_current st (fun g -> run_cec ?cancel st g "combined")
    | [ "cec"; engine ] -> with_current st (fun g -> run_cec ?cancel st g engine)
    | [ "certify" ] ->
        with_current st (fun g ->
            let pool = Lazy.force st.pool in
            let result, cert =
              Simsweep.Certificate.generate ~config:Simsweep.Config.scaled
                ?cancel ~pool g
            in
            let verdict = outcome_string result.Simsweep.Engine.outcome in
            if not cert.Simsweep.Certificate.claims_proved then
              Ok (verdict ^ " (no full certificate)")
            else begin
              match Simsweep.Certificate.validate g cert with
              | Ok _ ->
                  Ok
                    (Printf.sprintf "%s (certificate with %d steps validated)"
                       verdict
                       (List.length cert.Simsweep.Certificate.steps))
              | Error e -> Error ("certificate INVALID: " ^ e)
            end)
    | [ "sim"; n ] -> (
        match int_of_string_opt n with
        | Some k when k > 0 ->
            with_current st (fun g ->
                let rng = Sim.Rng.create ~seed:9L in
                let buf = Buffer.create 256 in
                for _ = 1 to k do
                  let cex =
                    Array.init (Aig.Network.num_pis g) (fun _ -> Sim.Rng.bool rng)
                  in
                  Array.iter (fun v -> Buffer.add_char buf (if v then '1' else '0')) cex;
                  Buffer.add_char buf ' ';
                  Array.iter
                    (fun l ->
                      Buffer.add_char buf
                        (if Sim.Cex.eval_lit g cex l then '1' else '0'))
                    (Aig.Network.pos g);
                  Buffer.add_char buf '\n'
                done;
                Ok (String.trim (Buffer.contents buf)))
        | _ -> Error ("bad count " ^ n))
    | [ "fraig" ] ->
        with_current st (fun g ->
            let pool = Lazy.force st.pool in
            let g', fstats = Sat.Sweep.fraig ?cancel ~pool g in
            set g'
              (Printf.sprintf "fraig: %s (%d merges)" (stats_line g')
                 fstats.Sat.Sweep.merged))
    | [ "map" ] | [ "map"; _ ] -> (
        let k =
          match words with
          | [ "map" ] -> Ok 6
          | [ "map"; n ] -> (
              match int_of_string_opt n with
              | Some v -> Ok v
              | None -> Error ("bad k " ^ n))
          | _ -> assert false
        in
        match k with
        | Error e -> Error e
        | Ok k ->
            with_current st (fun g ->
                let m = Lutmap.Mapper.map ~k g in
                let g' = Lutmap.Mapper.to_network m in
                set g'
                  (Printf.sprintf "mapped: %d LUTs, depth %d; resynthesised: %s"
                     (Lutmap.Mapper.lut_count m) m.Lutmap.Mapper.depth
                     (stats_line g'))))
    | [ "stats" ] -> with_current st (fun g -> Ok (stats_line g))
    | [ "dot"; file ] ->
        with_current st (fun g ->
            Aig.Dot.write_file file g;
            Ok ("written " ^ file))
    | cmd :: _ -> Error ("unknown command " ^ cmd ^ " (try help)")
  with
  | Aig.Aiger_io.Parse_error e -> Error ("parse error: " ^ e)
  | Sys_error e -> Error e
  | Invalid_argument e -> Error e

(* Split a script into commands at newlines and at [;] — but not inside
   quotes (so [read "a;b.aig"] is one command) and not inside a comment
   (which runs to the end of its line). *)
let split_commands text =
  let cmds = ref [] in
  let buf = Buffer.create 64 in
  let flush () =
    cmds := Buffer.contents buf :: !cmds;
    Buffer.clear buf
  in
  let n = String.length text in
  let quote = ref None in
  let in_word = ref false in
  let in_comment = ref false in
  for i = 0 to n - 1 do
    let c = text.[i] in
    if !in_comment then begin
      if c = '\n' then begin
        in_comment := false;
        in_word := false;
        flush ()
      end
      else Buffer.add_char buf c
    end
    else
      match !quote with
      | Some q ->
          Buffer.add_char buf c;
          if c = q then quote := None
      | None -> (
          match c with
          | '\n' | ';' ->
              in_word := false;
              flush ()
          | ' ' | '\t' | '\r' ->
              in_word := false;
              Buffer.add_char buf c
          | ('"' | '\'') as q ->
              quote := Some q;
              in_word := true;
              Buffer.add_char buf c
          | '#' when not !in_word ->
              in_comment := true;
              Buffer.add_char buf c
          | c ->
              in_word := true;
              Buffer.add_char buf c)
  done;
  flush ();
  List.rev !cmds

let exec_script ?cancel st text =
  let buf = Buffer.create 256 in
  let rec go idx = function
    | [] -> Ok (Buffer.contents buf)
    | cmd :: rest -> (
        let blank = String.trim cmd = "" in
        let idx = if blank then idx else idx + 1 in
        match exec ?cancel st cmd with
        | Ok "" -> go idx rest
        | Ok out ->
            Buffer.add_string buf out;
            Buffer.add_char buf '\n';
            go idx rest
        | Error e ->
            Error (Printf.sprintf "command %d (%s): %s" idx (String.trim cmd) e))
  in
  go 0 (split_commands text)
