(** Arithmetic benchmark families, mirroring the EPFL arithmetic suite used
    in the paper's evaluation (adder, multiplier, square, sqrt, hyp, log2,
    sin) at parametric bit widths. *)

(** Ripple-carry adder: [2n] PIs, [n+1] POs. *)
val adder : bits:int -> Aig.Network.t

(** Balanced tree of ripple-carry adders summing [operands] inputs of
    [bits] bits each ([operands * bits] PIs) — a multi-operand
    accumulation datapath. *)
val addtree : operands:int -> bits:int -> Aig.Network.t

(** Array multiplier: [2n] PIs, [2n] POs. *)
val multiplier : bits:int -> Aig.Network.t

(** Squarer [a*a]: [n] PIs, [2n] POs. *)
val square : bits:int -> Aig.Network.t

(** Restoring integer square root of an [n]-bit input ([n] even):
    [n/2]-bit result.  Deep (quadratic-depth) circuit like EPFL [sqrt]. *)
val sqrt : bits:int -> Aig.Network.t

(** [hypot ~bits] computes [sqrt(a^2 + b^2)] — the [hyp]-style mix of
    multipliers, an adder and a deep root extractor. *)
val hypot : bits:int -> Aig.Network.t

(** Binary logarithm: integer part is the leading-one position, [frac]
    fractional bits come from the repeated-squaring recurrence — a chain of
    multipliers, like EPFL [log2]. *)
val log2 : bits:int -> frac:int -> Aig.Network.t

(** Fixed-point sine via CORDIC rotations ([iters] stages of shift-add with
    arctangent constants), like EPFL [sin]. *)
val sin : bits:int -> iters:int -> Aig.Network.t
