let adder ~bits =
  let g = Aig.Network.create () in
  let a = Vecops.inputs g bits and b = Vecops.inputs g bits in
  Vecops.outputs g (Vecops.add g a b);
  g

let addtree ~operands ~bits =
  assert (operands >= 1);
  let g = Aig.Network.create () in
  let vs = List.init operands (fun _ -> Vecops.inputs g bits) in
  let rec reduce = function
    | [] -> assert false
    | [ v ] -> v
    | vs ->
        let rec pair = function
          | a :: b :: tl -> Vecops.add g a b :: pair tl
          | tl -> tl
        in
        reduce (pair vs)
  in
  Vecops.outputs g (reduce vs);
  g

let multiplier ~bits =
  let g = Aig.Network.create () in
  let a = Vecops.inputs g bits and b = Vecops.inputs g bits in
  Vecops.outputs g (Vecops.mul g a b);
  g

let square ~bits =
  let g = Aig.Network.create () in
  let a = Vecops.inputs g bits in
  Vecops.outputs g (Vecops.mul g a a);
  g

(* Restoring square-root digit recurrence on a network [g], reusable by
   [hypot].  [x] must have even length. *)
let sqrt_core g x =
  let n = Array.length x in
  assert (n mod 2 = 0);
  let half = n / 2 in
  let w = half + 2 in
  let rem = ref (Vecops.const ~width:w 0) in
  let root = ref (Vecops.const ~width:half 0) in
  for i = half - 1 downto 0 do
    (* rem = (rem << 2) | x[2i+1..2i] *)
    let shifted = Vecops.resize (Vecops.shl !rem 2) ~width:w in
    shifted.(0) <- x.(2 * i);
    shifted.(1) <- x.((2 * i) + 1);
    (* trial = (root << 2) | 1 *)
    let trial = Vecops.resize (Vecops.shl !root 2) ~width:w in
    trial.(0) <- Aig.Lit.const_true;
    let diff, fits = Vecops.sub g shifted trial in
    rem := Vecops.mux g fits diff shifted;
    (* root = (root << 1) | fits *)
    let r = Vecops.resize (Vecops.shl !root 1) ~width:half in
    r.(0) <- fits;
    root := r
  done;
  !root

let sqrt ~bits =
  if bits mod 2 <> 0 then invalid_arg "Arith.sqrt: bits must be even";
  let g = Aig.Network.create () in
  let x = Vecops.inputs g bits in
  Vecops.outputs g (sqrt_core g x);
  g

let hypot ~bits =
  let g = Aig.Network.create () in
  let a = Vecops.inputs g bits and b = Vecops.inputs g bits in
  let aa = Vecops.mul g a a and bb = Vecops.mul g b b in
  let sum = Vecops.add g aa bb in
  (* 2*bits + 1 bits; pad to the next even width for the root. *)
  let w = Array.length sum in
  let w = if w mod 2 = 0 then w else w + 1 in
  Vecops.outputs g (sqrt_core g (Vecops.resize sum ~width:w));
  g

let log2 ~bits ~frac =
  let g = Aig.Network.create () in
  let x = Vecops.inputs g bits in
  (* Leading-one detection (priority encoding from the MSB). *)
  let found = ref Aig.Lit.const_false in
  let is_leading = Array.make bits Aig.Lit.const_false in
  for i = bits - 1 downto 0 do
    is_leading.(i) <- Aig.Network.add_and g x.(i) (Aig.Lit.neg !found);
    found := Aig.Network.add_or g !found x.(i)
  done;
  let pos_bits = max 1 (int_of_float (ceil (Float.log2 (float_of_int (max 2 bits))))) in
  let pos = Array.make pos_bits Aig.Lit.const_false in
  for k = 0 to pos_bits - 1 do
    let terms = ref Aig.Lit.const_false in
    for i = 0 to bits - 1 do
      if (i lsr k) land 1 = 1 then terms := Aig.Network.add_or g !terms is_leading.(i)
    done;
    pos.(k) <- !terms
  done;
  (* Normalised mantissa: barrel shift so the leading one lands at the top
     bit. *)
  let mant = ref (Vecops.const ~width:bits 0) in
  for i = 0 to bits - 1 do
    let shifted = Vecops.resize (Vecops.shl x (bits - 1 - i)) ~width:bits in
    let selected = Array.map (fun l -> Aig.Network.add_and g l is_leading.(i)) shifted in
    mant := Array.map2 (fun acc l -> Aig.Network.add_or g acc l) !mant selected
  done;
  (* Fractional bits by repeated squaring: y in [1,2); y := y^2, emit the
     overflow bit, renormalise. *)
  let y = ref !mant in
  let fbits = ref [] in
  for _ = 1 to frac do
    let sq = Vecops.mul g !y !y in
    (* sq has 2*bits bits; value in [1,4): bit (2*bits-1) means >= 2. *)
    let ge2 = sq.((2 * bits) - 1) in
    let hi = Array.sub sq bits bits in
    (* y' = ge2 ? sq >> (bits)   (keeps the leading 1 at top)
           : sq >> (bits-1). *)
    let lo = Array.sub sq (bits - 1) bits in
    y := Vecops.mux g ge2 hi lo;
    fbits := ge2 :: !fbits
  done;
  Aig.Network.add_po g !found;
  Vecops.outputs g pos;
  List.iter (fun b -> Aig.Network.add_po g b) (List.rev !fbits);
  g

(* Arithmetic shift right by [k] on a signed fixed-point vector. *)
let asr_vec v k =
  let n = Array.length v in
  let sign = v.(n - 1) in
  Array.init n (fun i -> if i + k < n then v.(i + k) else sign)

let add_fixed g a b =
  Vecops.resize (Vecops.add g a b) ~width:(Array.length a)

let sub_fixed g a b =
  let d, _ = Vecops.sub g a b in
  d

let sin ~bits ~iters =
  let g = Aig.Network.create () in
  let w = bits + 2 in
  let angle = Vecops.inputs g bits in
  let z = ref (Vecops.resize angle ~width:w) in
  (* CORDIC gain-compensated start vector: x = K * 2^(bits-1), y = 0. *)
  let k_scaled = int_of_float (0.6072529350088812 *. float_of_int (1 lsl (bits - 1))) in
  let x = ref (Vecops.const ~width:w k_scaled) in
  let y = ref (Vecops.const ~width:w 0) in
  for i = 0 to iters - 1 do
    let atan_i =
      int_of_float (Float.atan (Float.pow 2. (float_of_int (-i)))
                    *. float_of_int (1 lsl (bits - 1)))
    in
    let c = Vecops.const ~width:w atan_i in
    let neg = (!z).(w - 1) in
    (* d = -1 when z < 0. *)
    let xs = asr_vec !x i and ys = asr_vec !y i in
    let x_plus = add_fixed g !x ys and x_minus = sub_fixed g !x ys in
    let y_plus = add_fixed g !y xs and y_minus = sub_fixed g !y xs in
    let z_plus = add_fixed g !z c and z_minus = sub_fixed g !z c in
    x := Vecops.mux g neg x_plus x_minus;
    y := Vecops.mux g neg y_minus y_plus;
    z := Vecops.mux g neg z_plus z_minus
  done;
  Vecops.outputs g !y;
  g
