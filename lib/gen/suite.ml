type case = {
  name : string;
  original : Aig.Network.t;
  optimized : Aig.Network.t;
  miter : Aig.Network.t;
}

let names =
  [
    "hyp";
    "log2";
    "multiplier";
    "sqrt";
    "square";
    "voter";
    "sin";
    "ac97_ctrl";
    "vga_lcd";
  ]

(* Base circuit and number of doublings per unit of scale.  Sizes are
   chosen so that the full Table II bench finishes in CPU minutes while
   keeping each family's structural character (wide multipliers, deep
   roots, shallow control). *)
let base ?(scale = 1) name =
  let d k g = Double.times (k * scale) g in
  match name with
  | "hyp" -> d 1 (Arith.hypot ~bits:6)
  | "log2" -> d 1 (Arith.log2 ~bits:8 ~frac:3)
  | "multiplier" -> d 2 (Arith.multiplier ~bits:8)
  | "sqrt" -> d 1 (Arith.sqrt ~bits:16)
  | "square" -> d 2 (Arith.square ~bits:8)
  | "voter" -> d 2 (Control.voter ~n:31)
  | "sin" -> d 1 (Arith.sin ~bits:8 ~iters:8)
  | "ac97_ctrl" -> d 2 (Control.regfile ~regs:8 ~width:8)
  | "vga_lcd" -> d 2 (Control.display ~hbits:8 ~vbits:7)
  (* Not part of the Table II [names] set: a plain ripple adder kept as
     a buildable case for word-level smoke tests. *)
  | "adder" -> d 1 (Arith.adder ~bits:32)
  | _ -> invalid_arg ("Suite.build: unknown case " ^ name)

let build ?scale name =
  let original = base ?scale name in
  let optimized = Opt.Resyn.resyn2 original in
  let miter = Aig.Miter.build original optimized in
  { name; original; optimized; miter }

let all ?scale () = List.map (fun n -> build ?scale n) names
