type expr =
  | Var of int
  | Const of int
  | Add of expr list
  | Mul of expr list
  | Shl of expr * int

(* Monomial representation during normalization: a coefficient and a
   sorted list of non-constant atomic factors.  An atomic factor is a
   [Var] or an opaque (unflattenable) subexpression — a product over a
   sum we choose not to distribute, to keep normal forms linear in the
   input size. *)

let rec compare_expr a b =
  match (a, b) with
  | Var x, Var y -> Int.compare x y
  | Var _, _ -> -1
  | _, Var _ -> 1
  | Const x, Const y -> Int.compare x y
  | Const _, _ -> -1
  | _, Const _ -> 1
  | Add xs, Add ys -> compare_list xs ys
  | Add _, _ -> -1
  | _, Add _ -> 1
  | Mul xs, Mul ys -> compare_list xs ys
  | Mul _, _ -> -1
  | _, Mul _ -> 1
  | Shl (x, i), Shl (y, j) ->
      let c = compare_expr x y in
      if c <> 0 then c else Int.compare i j

and compare_list xs ys =
  match (xs, ys) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | x :: xs', y :: ys' ->
      let c = compare_expr x y in
      if c <> 0 then c else compare_list xs' ys'

let compare = compare_expr
let equal a b = compare_expr a b = 0

(* Coefficients live in OCaml's native int; callers evaluate modulo
   2^width, and 63 bits comfortably cover every width the engine or the
   tests use. *)

(* [monomials e] returns the polynomial of [e] as a list of
   (coefficient, sorted factor list) pairs, unsorted and with possible
   duplicate terms (collected later). *)
let rec monomials e =
  match e with
  | Const c -> [ (c, []) ]
  | Var _ -> [ (1, [ e ]) ]
  | Shl (x, k) -> monomials (Mul [ x; Const (1 lsl k) ])
  | Add xs -> List.concat_map monomials xs
  | Mul xs ->
      (* Flatten nested products and fold constant factors first. *)
      let rec flatten acc = function
        | [] -> acc
        | Mul ys :: rest -> flatten (flatten acc ys) rest
        | Shl (x, k) :: rest -> flatten (flatten acc [ x; Const (1 lsl k) ]) rest
        | x :: rest -> flatten (x :: acc) rest
      in
      let factors = flatten [] xs in
      (* Normalize each non-constant factor BEFORE deciding whether the
         product distributes: a factor that is a sum syntactically can
         collapse to a constant or a monomial (e.g. [x + 0*y]), and
         deciding on the raw shape would leave a product opaque on the
         first pass that a second pass distributes — breaking
         idempotence.  Normalized factors are then re-flattened, since
         normalization can surface new constant or product factors. *)
      let factors =
        List.map
          (fun f ->
            match f with Const _ | Var _ -> f | _ -> rebuild (collect (monomials f)))
          factors
      in
      let factors = flatten [] factors in
      let const, rest =
        List.fold_left
          (fun (c, r) f ->
            match f with Const k -> (c * k, r) | f -> (c, f :: r))
          (1, []) factors
      in
      if const = 0 then []
      else begin
        (* Distribute over at most one sum factor (shift-add and
           constant-times-sum identities); a product of two or more sums
           stays an opaque term to avoid exponential expansion. *)
        let sums, atoms =
          List.partition (function Add _ -> true | _ -> false) rest
        in
        match sums with
        | [ Add ys ] ->
            List.concat_map
              (fun y ->
                monomials y
                |> List.map (fun (c, fs) ->
                       (const * c, List.sort compare_expr (fs @ atoms))))
              ys
        | [] -> [ (const, List.sort compare_expr atoms) ]
        | _ -> [ (const, [ Mul (List.sort compare_expr rest) ]) ]
      end

and collect ms =
  let tbl = Hashtbl.create 16 in
  let keys = ref [] in
  List.iter
    (fun (c, fs) ->
      match Hashtbl.find_opt tbl fs with
      | Some r -> r := !r + c
      | None ->
          Hashtbl.add tbl fs (ref c);
          keys := fs :: !keys)
    ms;
  List.rev !keys
  |> List.filter_map (fun fs ->
         let c = !(Hashtbl.find tbl fs) in
         if c = 0 then None else Some (c, fs))
  |> List.sort (fun (c1, f1) (c2, f2) ->
         let c = compare_list f1 f2 in
         if c <> 0 then c else Int.compare c1 c2)

and rebuild ms =
  let term (c, fs) =
    match (c, fs) with
    | c, [] -> Const c
    | 1, [ f ] -> f
    | 1, fs -> Mul fs
    | c, fs -> Mul (Const c :: fs)
  in
  match ms with
  | [] -> Const 0
  | [ m ] -> term m
  | ms -> Add (List.map term ms)

let normalize e = rebuild (collect (monomials e))

let rec eval ~env ~width e =
  let mask = (1 lsl width) - 1 in
  match e with
  | Var i -> env i land mask
  | Const c -> c land mask
  | Add xs ->
      List.fold_left (fun acc x -> (acc + eval ~env ~width x) land mask) 0 xs
  | Mul xs ->
      List.fold_left (fun acc x -> acc * eval ~env ~width x land mask) 1 xs
  | Shl (x, k) -> eval ~env ~width x lsl k land mask

let num_vars e =
  let seen = Hashtbl.create 8 in
  let rec go = function
    | Var i -> if not (Hashtbl.mem seen i) then Hashtbl.add seen i ()
    | Const _ -> ()
    | Add xs | Mul xs -> List.iter go xs
    | Shl (x, _) -> go x
  in
  go e;
  Hashtbl.length seen

module N = Aig.Network
module L = Aig.Lit

let to_network ~width ~num_vars e =
  let g = N.create () in
  let pis = Array.init (num_vars * width) (fun _ -> N.add_pi g) in
  let var_bits i = Array.init width (fun b -> pis.((i * width) + b)) in
  let const_bits c =
    Array.init width (fun b ->
        if (c lsr b) land 1 = 1 then L.const_true else L.const_false)
  in
  (* width-truncated ripple add: carry out dropped *)
  let add_vec a b =
    let out = Array.make width L.const_false in
    let carry = ref L.const_false in
    for i = 0 to width - 1 do
      let s = N.add_xor g (N.add_xor g a.(i) b.(i)) !carry in
      let c =
        N.add_or g (N.add_and g a.(i) b.(i))
          (N.add_and g !carry (N.add_xor g a.(i) b.(i)))
      in
      out.(i) <- s;
      carry := c
    done;
    out
  in
  let shl_vec a k =
    Array.init width (fun i -> if i < k then L.const_false else a.(i - k))
  in
  (* width-truncated shift-and-add array multiplier *)
  let mul_vec a b =
    let acc = ref (Array.make width L.const_false) in
    for j = 0 to width - 1 do
      let row =
        Array.init width (fun i ->
            if i < j then L.const_false else N.add_and g a.(i - j) b.(j))
      in
      acc := add_vec !acc row
    done;
    !acc
  in
  let rec go = function
    | Var i -> var_bits i
    | Const c -> const_bits c
    | Add [] -> const_bits 0
    | Add (x :: xs) -> List.fold_left (fun v y -> add_vec v (go y)) (go x) xs
    | Mul [] -> const_bits 1
    | Mul (x :: xs) -> List.fold_left (fun v y -> mul_vec v (go y)) (go x) xs
    | Shl (x, k) -> shl_vec (go x) (min k width)
  in
  let bits = go e in
  Array.iter (fun b -> ignore (N.add_po g b)) bits;
  g
