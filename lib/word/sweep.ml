module N = Aig.Network
module L = Aig.Lit
module E = Simsweep.Exhaustive

type stats = {
  mutable chains : int;
  mutable cells : int;
  mutable mux_rows : int;
  mutable coverage_percent : float;
  mutable candidates : int;
  mutable words_proved : int;
  mutable bits_merged : int;
  mutable rounds : int;
  mutable fallback : bool;
  mutable fallback_ratio : float;
  mutable cancelled : bool;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable time_detect_s : float;
  mutable time_word_s : float;
  mutable time_fallback_s : float;
  mutable engine_stats : Simsweep.Stats.t option;
  mutable sat_stats : Sat.Sweep.stats option;
}

let new_stats () =
  {
    chains = 0;
    cells = 0;
    mux_rows = 0;
    coverage_percent = 0.0;
    candidates = 0;
    words_proved = 0;
    bits_merged = 0;
    rounds = 0;
    fallback = false;
    fallback_ratio = 0.0;
    cancelled = false;
    cache_hits = 0;
    cache_misses = 0;
    time_detect_s = 0.0;
    time_word_s = 0.0;
    time_fallback_s = 0.0;
    engine_stats = None;
    sat_stats = None;
  }

let stat_counters st =
  [
    ("chains", float_of_int st.chains);
    ("cells", float_of_int st.cells);
    ("mux_rows", float_of_int st.mux_rows);
    ("coverage_percent", st.coverage_percent);
    ("candidates", float_of_int st.candidates);
    ("words_proved", float_of_int st.words_proved);
    ("bits_merged", float_of_int st.bits_merged);
    ("rounds", float_of_int st.rounds);
    ("fallback", if st.fallback then 1.0 else 0.0);
    ("fallback_ratio", st.fallback_ratio);
    ("cache_hits", float_of_int st.cache_hits);
    ("cache_misses", float_of_int st.cache_misses);
    ("time_detect_s", st.time_detect_s);
    ("time_word_s", st.time_word_s);
    ("time_fallback_s", st.time_fallback_s);
  ]

let to_json st =
  let module T = Simsweep.Telemetry in
  let base =
    List.map
      (fun (k, v) ->
        match k with
        | "chains" | "cells" | "mux_rows" | "candidates" | "words_proved"
        | "bits_merged" | "rounds" | "cache_hits" | "cache_misses" ->
            (k, T.Int (int_of_float v))
        | "fallback" -> (k, T.Bool (v > 0.5))
        | _ -> (k, T.Float v))
      (stat_counters st)
  in
  let extra =
    [ ("cancelled", T.Bool st.cancelled) ]
    @ (match st.engine_stats with
      | Some s -> [ ("fallback_engine", T.of_engine_stats s) ]
      | None -> [])
    @
    match st.sat_stats with
    | Some s -> [ ("fallback_sat", T.of_sat s) ]
    | None -> []
  in
  T.Obj (base @ extra)

(* ------------------------------------------------------------------ *)
(* Candidate nomination                                               *)

(* Per-position operand column with the intra-chain carry link
   stripped: the cell's own ripple input is structure, not data. *)
let data_columns (ch : Detect.chain) =
  Array.mapi
    (fun p (c : Detect.cell) ->
      let ops = Array.to_list c.ops in
      let ops =
        if p = 0 then ops
        else
          let link = L.node ch.cells.(p - 1).carry in
          List.filter (fun op -> L.node op <> link) ops
      in
      List.sort Stdlib.compare ops)
    ch.cells

type pair_kind =
  | Aligned  (** induction over sum and carry, local windows *)
  | Global  (** rewrite-matched: sums only, PI-support windows *)

type cand = {
  ca : int;  (** chain index *)
  cb : int;
  oa : int;  (** first aligned position in chain [ca] *)
  ob : int;
  overlap : int;
  kind : pair_kind;
}

(* Best column alignment of two chains: try every offset pair touching
   a chain head; all overlapping positions must be compatible (equal
   columns, or equal once other cells' output literals are dropped —
   those only coincide after the referenced words merge, which the
   proof fixpoint takes care of).  Returns the alignment with the most
   exactly-equal positions. *)
let align ~drop_outputs cols_a cols_b =
  let la = Array.length cols_a and lb = Array.length cols_b in
  let best = ref None in
  let consider oa ob =
    let overlap = min (la - oa) (lb - ob) in
    if overlap >= 2 then begin
      let strong = ref 0 in
      let evidence = ref false in
      let ok = ref true in
      (try
         for p = 0 to overlap - 1 do
           let a = cols_a.(oa + p) and b = cols_b.(ob + p) in
           if a = b && a <> [] then begin
             incr strong;
             evidence := true
           end
           else begin
             let a' = drop_outputs a and b' = drop_outputs b in
             if a' <> b' then begin
               ok := false;
               raise Exit
             end;
             if a' <> [] then evidence := true
           end
         done
       with Exit -> ());
      if !ok && !evidence then
        let score = (!strong, overlap) in
        match !best with
        | Some (s, _, _, _) when s >= score -> ()
        | _ -> best := Some (score, oa, ob, overlap)
    end
  in
  for ob = 0 to lb - 2 do
    consider 0 ob
  done;
  for oa = 1 to la - 2 do
    consider oa 0
  done;
  !best

(* Rewrite-normal-form keys: each chain becomes a sum of interned
   operand-slot words (plus a carry-in), with slots that are another
   chain's sum vector substituted by that chain's expression — so
   commutative / associative regroupings of the same word sum get equal
   keys even when no internal node is shared. *)
let rewrite_keys (chains : Detect.chain array) cols =
  let intern_tbl : (L.t list, int) Hashtbl.t = Hashtbl.create 64 in
  let next_var = ref 0 in
  let intern vec =
    match Hashtbl.find_opt intern_tbl vec with
    | Some v -> Rewrite.Var v
    | None ->
        let v = !next_var in
        incr next_var;
        Hashtbl.add intern_tbl vec v;
        Rewrite.Var v
  in
  let sumvec_tbl : (L.t list, Rewrite.expr) Hashtbl.t = Hashtbl.create 16 in
  let keys = Array.make (Array.length chains) None in
  let order = Array.init (Array.length chains) (fun i -> i) in
  let last_sum i =
    let cells = chains.(i).Detect.cells in
    L.node cells.(Array.length cells - 1).sum
  in
  Array.sort (fun a b -> Stdlib.compare (last_sum a) (last_sum b)) order;
  Array.iter
    (fun i ->
      let c = cols.(i) in
      let len = Array.length c in
      let arity = List.length c.(if len > 1 then 1 else 0) in
      let head = List.length c.(0) in
      if arity >= 1 && arity <= 3 && (head = arity || head = arity + 1) then begin
        let ok = ref true in
        for p = 1 to len - 1 do
          if List.length c.(p) <> arity then ok := false
        done;
        if !ok then begin
          let slot s =
            let vec =
              Array.to_list c |> List.map (fun col -> List.nth col s)
            in
            match Hashtbl.find_opt sumvec_tbl vec with
            | Some e -> e
            | None -> intern vec
          in
          let slots = List.init arity slot in
          let cin =
            if head = arity + 1 then
              (* the head element not used by any slot *)
              let used = List.init arity (fun s -> List.nth c.(0) s) in
              match List.filter (fun op -> not (List.mem op used)) c.(0) with
              | [ op ] -> [ intern [ op ] ]
              | _ -> []
            else []
          in
          let e = Rewrite.normalize (Rewrite.Add (slots @ cin)) in
          keys.(i) <- Some e;
          let sumvec =
            Array.to_list chains.(i).Detect.cells
            |> List.map (fun (cell : Detect.cell) -> cell.sum)
          in
          if not (Hashtbl.mem sumvec_tbl sumvec) then
            Hashtbl.add sumvec_tbl sumvec e
        end
      end)
    order;
  keys

let nominate (chains : Detect.chain array) =
  let nchains = Array.length chains in
  let cols = Array.map data_columns chains in
  (* literals produced by any detected cell: only equal across halves
     after a merge, so alignment ignores them *)
  let outputs = Hashtbl.create 64 in
  Array.iter
    (fun (ch : Detect.chain) ->
      Array.iter
        (fun (c : Detect.cell) ->
          Hashtbl.replace outputs (L.node c.sum) ();
          Hashtbl.replace outputs (L.node c.carry) ())
        ch.cells)
    chains;
  let drop_outputs col =
    List.filter (fun op -> not (Hashtbl.mem outputs (L.node op))) col
  in
  let cands = ref [] in
  for i = 0 to nchains - 1 do
    for j = i + 1 to nchains - 1 do
      match align ~drop_outputs cols.(i) cols.(j) with
      | Some (score, oa, ob, overlap) ->
          cands := (score, { ca = i; cb = j; oa; ob; overlap; kind = Aligned }) :: !cands
      | None -> ()
    done
  done;
  let aligned =
    List.sort
      (fun ((s1, o1), c1) ((s2, o2), c2) ->
        Stdlib.compare (-s1, -o1, c1.ca, c1.cb) (-s2, -o2, c2.ca, c2.cb))
      (List.map (fun (s, c) -> (s, c)) !cands)
    |> List.map snd
  in
  let seen = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace seen (c.ca, c.cb) ()) aligned;
  (* Rewrite keys nominate pairs with no shared structure at all. *)
  let keys = rewrite_keys chains cols in
  let by_key = Hashtbl.create 16 in
  let extra = ref [] in
  Array.iteri
    (fun i k ->
      match k with
      | None -> ()
      | Some key -> (
          let klen = Array.length chains.(i).Detect.cells in
          match Hashtbl.find_opt by_key (key, klen) with
          | Some first ->
              if not (Hashtbl.mem seen (first, i)) then begin
                Hashtbl.replace seen (first, i) ();
                extra :=
                  { ca = first; cb = i; oa = 0; ob = 0; overlap = klen;
                    kind = Global }
                  :: !extra
              end
          | None -> Hashtbl.add by_key (key, klen) i))
    keys;
  let all = aligned @ List.rev !extra in
  (* bound the work: strongest nominations first *)
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  take 128 all

(* ------------------------------------------------------------------ *)
(* Proving                                                            *)

type wcell = {
  mutable w_sum : L.t;
  mutable w_carry : L.t;
  mutable w_cut : int array;  (** window leaf node ids, sorted *)
  mutable w_dead : bool;  (** a needed node was swept away *)
}

type live = {
  cand : cand;
  mutable next : int;  (** next overlap position to prove *)
  mutable stalled : bool;
}

exception Support_too_big

(* PI-support window of a literal, bailing out beyond [cap] leaves. *)
let support g ~cap l =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  let count = ref 0 in
  let rec go node =
    if node <> 0 && not (Hashtbl.mem seen node) then begin
      Hashtbl.add seen node ();
      if N.is_and g node then begin
        go (L.node (N.fanin0 g node));
        go (L.node (N.fanin1 g node))
      end
      else begin
        incr count;
        if !count > cap then raise Support_too_big;
        acc := node :: !acc
      end
    end
  in
  try
    go (L.node l);
    Some (List.sort_uniq Stdlib.compare !acc |> Array.of_list)
  with Support_too_big -> None

let now () = Unix.gettimeofday ()

let check ?(config = Simsweep.Config.scaled) ?sat_config ?(fallback = true)
    ?pcache ?cancel ~pool miter =
  let st = new_stats () in
  let g = ref (N.copy miter) in
  let initial_ands = max 1 (N.num_ands !g) in
  let cancelled () = Par.Cancel.poll_opt cancel in
  (* consult-before-prove: cached PO verdicts first *)
  let pending = ref [] in
  let cached_cex = ref None in
  (match pcache with
  | Some pc ->
      let r = Sim.Pcheck.consult pc !g in
      st.cache_hits <- r.Sim.Pcheck.hits;
      st.cache_misses <- r.Sim.Pcheck.misses;
      pending := r.Sim.Pcheck.pending;
      cached_cex := r.Sim.Pcheck.disproved
  | None -> ());
  let record outcome =
    match pcache with
    | None -> ()
    | Some pc ->
        let verdict =
          match outcome with
          | Simsweep.Engine.Proved -> `Proved
          | Simsweep.Engine.Disproved (cex, po) -> `Disproved (cex, po)
          | Simsweep.Engine.Undecided -> `Undecided
        in
        Sim.Pcheck.record pc ~pending:!pending verdict
  in
  match !cached_cex with
  | Some (cex, po) ->
      let outcome = Simsweep.Engine.Disproved (cex, po) in
      record outcome;
      (outcome, st)
  | None when Aig.Miter.solved !g ->
      record Simsweep.Engine.Proved;
      (Simsweep.Engine.Proved, st)
  | None when cancelled () ->
      st.cancelled <- true;
      (Simsweep.Engine.Undecided, st)
  | None ->
      (* ---- detection ---- *)
      let t0 = now () in
      let d = Detect.run !g in
      st.time_detect_s <- now () -. t0;
      st.chains <- List.length d.Detect.chains;
      st.cells <- List.length d.Detect.cells;
      st.mux_rows <- List.length d.Detect.rows;
      st.coverage_percent <- Detect.coverage_percent d;
      let chains = Array.of_list d.Detect.chains in
      let cands = if cancelled () then [] else nominate chains in
      st.candidates <- List.length cands;
      (* ---- word proving ---- *)
      let t1 = now () in
      (* No candidates means no exhaustive jobs: skip the arena. *)
      let arena =
        lazy (Simsweep.Arena.create ~words:config.Simsweep.Config.memory_words)
      in
      let wchains =
        Array.map
          (fun (ch : Detect.chain) ->
            Array.map
              (fun (c : Detect.cell) ->
                {
                  w_sum = c.sum;
                  w_carry = c.carry;
                  w_cut = Array.copy c.cut;
                  w_dead = false;
                })
              ch.cells)
          chains
      in
      let lives =
        List.map (fun cand -> { cand; next = 0; stalled = false }) cands
      in
      let completed = Hashtbl.create 16 in
      let remap (map : L.t array) =
        let lit l =
          let m = map.(L.node l) in
          if m < 0 then None else Some (L.xor_compl m (L.is_compl l))
        in
        Array.iter
          (Array.iter (fun w ->
               if not w.w_dead then
                 match (lit w.w_sum, lit w.w_carry) with
                 | Some s, Some c ->
                     w.w_sum <- s;
                     w.w_carry <- c;
                     let cut =
                       Array.to_list w.w_cut
                       |> List.filter_map (fun n ->
                              let m = map.(n) in
                              if m < 0 then None
                              else
                                let n' = L.node m in
                                if n' = 0 then None else Some n')
                       |> List.sort_uniq Stdlib.compare
                     in
                     w.w_cut <- Array.of_list cut
                 | _ -> w.w_dead <- true))
          wchains
      in
      let progress = ref true in
      let max_rounds =
        8 + (4 * Array.fold_left (fun a c -> max a (Array.length c)) 0 wchains)
      in
      while
        !progress && (not (cancelled ()))
        && List.exists (fun l -> l.next < l.cand.overlap) lives
        && st.rounds < max_rounds
      do
        progress := false;
        st.rounds <- st.rounds + 1;
        (* skip positions that already coincide — polarity included: a
           same-node pair with opposite complement bits is antivalent,
           not equal, so it stalls the candidate instead of advancing *)
        let lit_eq la lb =
          L.node la = L.node lb && L.is_compl la = L.is_compl lb
        in
        let lit_anti la lb =
          L.node la = L.node lb && L.is_compl la <> L.is_compl lb
        in
        List.iter
          (fun l ->
            let a = wchains.(l.cand.ca) and b = wchains.(l.cand.cb) in
            let continue_ = ref true in
            while !continue_ && l.next < l.cand.overlap do
              let wa = a.(l.cand.oa + l.next) and wb = b.(l.cand.ob + l.next) in
              if wa.w_dead || wb.w_dead then continue_ := false
              else begin
                let carry_matters = l.cand.kind = Aligned in
                if lit_anti wa.w_sum wb.w_sum
                   || (carry_matters && lit_anti wa.w_carry wb.w_carry)
                then begin
                  l.stalled <- true;
                  continue_ := false
                end
                else if lit_eq wa.w_sum wb.w_sum
                        && ((not carry_matters) || lit_eq wa.w_carry wb.w_carry)
                then begin
                  l.next <- l.next + 1;
                  progress := true
                end
                else continue_ := false
              end
            done)
          lives;
        (* one exhaustive batch proving every live pair's next bit *)
        let jobs = ref [] in
        let items = ref [] in
        let ntags = ref 0 in
        let merges : (int * L.t) list ref = ref [] in
        List.iter
          (fun l ->
            if l.next < l.cand.overlap then begin
              let a = wchains.(l.cand.ca) and b = wchains.(l.cand.cb) in
              let wa = a.(l.cand.oa + l.next) and wb = b.(l.cand.ob + l.next) in
              if wa.w_dead || wb.w_dead then l.next <- l.cand.overlap
              else begin
                let pairs = ref [] in
                let tags = ref [] in
                let antivalent = ref false in
                let add_pair la lb =
                  if L.node la = L.node lb then begin
                    (* same node, same polarity: already coinciding;
                       opposite polarity: antivalent, never provable *)
                    if L.is_compl la <> L.is_compl lb then antivalent := true
                  end
                  else begin
                    let tag = !ntags in
                    incr ntags;
                    tags := tag :: !tags;
                    pairs :=
                      {
                        E.a = L.node la;
                        b = L.node lb;
                        compl_ = L.is_compl la <> L.is_compl lb;
                        tag;
                      }
                      :: !pairs
                  end
                in
                add_pair wa.w_sum wb.w_sum;
                if l.cand.kind = Aligned then add_pair wa.w_carry wb.w_carry;
                if !antivalent then l.stalled <- true
                else if !pairs <> [] then begin
                  let window =
                    match l.cand.kind with
                    | Aligned ->
                        let u =
                          Array.to_list wa.w_cut @ Array.to_list wb.w_cut
                          |> List.sort_uniq Stdlib.compare
                          |> List.filter (fun n -> n <> 0)
                        in
                        Some (Array.of_list u)
                    | Global -> (
                        match
                          (support !g ~cap:14 wa.w_sum, support !g ~cap:14 wb.w_sum)
                        with
                        | Some sa, Some sb ->
                            let u =
                              Array.to_list sa @ Array.to_list sb
                              |> List.sort_uniq Stdlib.compare
                            in
                            if List.length u <= 16 then Some (Array.of_list u)
                            else None
                        | _ -> None)
                  in
                  match window with
                  | Some inputs when Array.length inputs > 0 ->
                      jobs := { E.inputs; pairs = !pairs } :: !jobs;
                      items := (l, !tags) :: !items
                  | _ -> l.stalled <- true
                end
              end
            end)
          lives;
        if !jobs <> [] then begin
          let verdicts =
            E.run !g ~pool ~memory_words:config.Simsweep.Config.memory_words
              ~arena:(Lazy.force arena) ?cancel ~jobs:!jobs ~num_tags:!ntags ()
          in
          List.iter
            (fun (l, tags) ->
              let all_proved =
                List.for_all (fun t -> verdicts.(t) = E.Proved) tags
              in
              if all_proved then begin
                let a = wchains.(l.cand.ca) and b = wchains.(l.cand.cb) in
                let wa = a.(l.cand.oa + l.next)
                and wb = b.(l.cand.ob + l.next) in
                let merge la lb =
                  let na = L.node la and nb = L.node lb in
                  if na <> nb then begin
                    let compl = L.is_compl la <> L.is_compl lb in
                    let lo, hi = if na < nb then (na, nb) else (nb, na) in
                    if N.is_and !g hi then
                      merges := (hi, L.make lo compl) :: !merges
                  end
                in
                merge wa.w_sum wb.w_sum;
                if l.cand.kind = Aligned then merge wa.w_carry wb.w_carry;
                l.next <- l.next + 1;
                st.bits_merged <- st.bits_merged + 1;
                progress := true;
                if l.next >= l.cand.overlap
                   && not (Hashtbl.mem completed (l.cand.ca, l.cand.cb))
                then begin
                  Hashtbl.replace completed (l.cand.ca, l.cand.cb) ();
                  st.words_proved <- st.words_proved + 1
                end
              end)
            !items
        end;
        if !merges <> [] then begin
          let repl = Array.make (N.num_nodes !g) None in
          List.iter
            (fun (hi, lo_lit) ->
            match repl.(hi) with
            | None -> repl.(hi) <- Some lo_lit
            | Some _ -> ())
            (List.rev !merges);
          let r = Aig.Reduce.apply !g ~repl in
          g := r.Aig.Reduce.network;
          remap r.Aig.Reduce.node_map
        end
      done;
      if cancelled () then begin
        st.cancelled <- true;
        st.time_word_s <- now () -. t1;
        (Simsweep.Engine.Undecided, st)
      end
      else begin
        st.time_word_s <- now () -. t1;
        if Aig.Miter.solved !g then begin
          record Simsweep.Engine.Proved;
          (Simsweep.Engine.Proved, st)
        end
        else if not fallback then (Simsweep.Engine.Undecided, st)
        else begin
          (* ---- bit-level fallback on the word-reduced miter ---- *)
          st.fallback <- true;
          st.fallback_ratio <- float_of_int (N.num_ands !g) /. float_of_int initial_ands;
          let t2 = now () in
          let c =
            Simsweep.Engine.check_with_fallback ~config ?sat_config
              ~transfer_classes:true ?cancel ~pool !g
          in
          st.time_fallback_s <- now () -. t2;
          st.engine_stats <- Some c.Simsweep.Engine.engine.Simsweep.Engine.stats;
          st.sat_stats <- c.Simsweep.Engine.sat_stats;
          let outcome = c.Simsweep.Engine.final in
          (match outcome with
          | Simsweep.Engine.Undecided -> ()
          | o -> record o);
          (match outcome with
          | Simsweep.Engine.Undecided when cancelled () -> st.cancelled <- true
          | _ -> ());
          (outcome, st)
        end
      end

(* ------------------------------------------------------------------ *)

let register ?(config = Simsweep.Config.scaled) () =
  Simsweep.Portfolio.register_extra
    {
      Simsweep.Portfolio.extra_name = "wordsweep";
      extra_run =
        (fun ~cancel ~pool m ->
          let outcome, st = check ~config ~cancel ~pool m in
          (outcome, stat_counters st));
    }
