(** Word-boundary detection (after the hybrid/word-level sweeping
    follow-ups — arXiv:2501.14740, arXiv:2507.02008).

    Arithmetic words are recovered structurally from the bit-level AIG:
    priority-cut enumeration ({!Cuts.Enumerate}) proposes 2- and 3-input
    cuts per node, each cut's local truth table is matched — after an
    NPN pre-filter ({!Bv.Npn.canonize}) — against the adder-cell
    classes (XOR3 / MAJ3 for full adders, XOR2 / AND2 for half adders)
    and the 2:1 mux class.  A sum node and a carry node sharing a cut
    form an adder {e cell}; cells are linked through their carry
    literals into ripple-carry {e chains} (LSB first), grouped by
    carry-DAG depth into carry-save {e columns} (Wallace trees), and
    muxes sharing a select literal form shifter {e rows}.

    Detection is purely a candidate generator: every claimed identity
    ("[sum] is the XOR of [ops]") is re-established by exhaustive
    simulation before the sweeping engine acts on it, so a structural
    misclassification costs completeness, never soundness. *)

type cell = {
  sum : Aig.Lit.t;  (** literal computing XOR of [ops] *)
  carry : Aig.Lit.t;
      (** literal computing MAJ of [ops] (full adder) or AND of [ops]
          (half adder) *)
  ops : Aig.Lit.t array;  (** 3 (FA) or 2 (HA) operand literals, sorted *)
  cut : Cuts.Cut.t;  (** the shared leaf cut (operand node ids) *)
}

(** A ripple-carry chain, least-significant cell first: cell [i+1]'s
    operands include cell [i]'s carry literal. *)
type chain = { cells : cell array }

type mux = {
  out : Aig.Lit.t;
  select : Aig.Lit.t;  (** always a positive literal *)
  t_in : Aig.Lit.t;  (** selected when [select] = 1 *)
  e_in : Aig.Lit.t;
}

(** Muxes sharing a select — one stage of a barrel shifter / shift row. *)
type row = { select : Aig.Lit.t; muxes : mux array }

type t = {
  cells : cell list;  (** every adder cell, chained or not *)
  chains : chain list;  (** length >= 2 only *)
  columns : cell list array;
      (** cells grouped by carry-DAG depth — Wallace-tree compressor
          columns; index = depth *)
  rows : row list;  (** length >= 2 only *)
  covered_ands : int;  (** AND nodes inside chain or row cones *)
  num_ands : int;
}

val coverage_percent : t -> float

(** [run g] detects word structure.  [max_cuts] is the priority-cut
    budget per node (default 8). *)
val run : ?max_cuts:int -> Aig.Network.t -> t
