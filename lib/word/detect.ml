module N = Aig.Network
module L = Aig.Lit

type cell = {
  sum : L.t;
  carry : L.t;
  ops : L.t array;
  cut : Cuts.Cut.t;
}

type chain = { cells : cell array }
type mux = { out : L.t; select : L.t; t_in : L.t; e_in : L.t }
type row = { select : L.t; muxes : mux array }

type t = {
  cells : cell list;
  chains : chain list;
  columns : cell list array;
  rows : row list;
  covered_ands : int;
  num_ands : int;
}

let coverage_percent t =
  if t.num_ands = 0 then 0.0
  else 100.0 *. float_of_int t.covered_ands /. float_of_int t.num_ands

(* ------------------------------------------------------------------ *)
(* Local truth tables: 8-bit tables over at most 3 cut leaves.        *)

let masks = [| 0xAA; 0xCC; 0xF0 |]
let tt_full = 0xFF

exception Bail

(* Truth table of [root] over [cut], or [None] when the cut does not
   bound a small cone (the enumerator guarantees cut-ness, so this is
   only a size guard). *)
let node_tt g ~cut root =
  let k = Array.length cut in
  let leaf node =
    let rec f i = if i >= k then -1 else if cut.(i) = node then i else f (i + 1) in
    f 0
  in
  let memo = Hashtbl.create 16 in
  let budget = ref 64 in
  let rec go node =
    if node = 0 then 0
    else
      let i = leaf node in
      if i >= 0 then masks.(i)
      else
        match Hashtbl.find_opt memo node with
        | Some t -> t
        | None ->
            if not (N.is_and g node) then raise Bail;
            decr budget;
            if !budget <= 0 then raise Bail;
            let t = lit (N.fanin0 g node) land lit (N.fanin1 g node) in
            Hashtbl.replace memo node t;
            t
  and lit l =
    let t = go (L.node l) in
    if L.is_compl l then lnot t land tt_full else t
  in
  try Some (go root land tt_full) with Bail -> None

(* Canonical class representatives for the NPN pre-filter.  The 8-bit
   tables are doubled into 16-bit ones (variable 3 irrelevant) to fit
   [Bv.Npn.canonize]. *)
let extend16 tt8 = tt8 lor (tt8 lsl 8)

let npn_xor3 = fst (Bv.Npn.canonize (extend16 0x96))
let npn_maj = fst (Bv.Npn.canonize (extend16 0xE8))

let npn_mux =
  (* v2 ? v1 : v0 *)
  fst (Bv.Npn.canonize (extend16 ((0xF0 land 0xCC) lor (lnot 0xF0 land 0xAA land tt_full))))

let npn_xor2 = fst (Bv.Npn.canonize (extend16 0x66))
let npn_and2 = fst (Bv.Npn.canonize (extend16 0x88))

(* Input-complement masks ordered by popcount, then value: matching
   prefers the fewest complemented operands, which pins the canonical
   polarity of the MAJ/AND degeneracy (MAJ(!a,!b,!c) = !MAJ(a,b,c)). *)
let ic_order3 = [| 0; 1; 2; 4; 3; 5; 6; 7 |]
let ic_order2 = [| 0; 1; 2; 3 |]

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
  go x 0

let var_tt ic i =
  if ic land (1 lsl i) <> 0 then lnot masks.(i) land tt_full else masks.(i)

let maj_tt ic =
  let a = var_tt ic 0 and b = var_tt ic 1 and c = var_tt ic 2 in
  a land b lor (a land c) lor (b land c)

let and_tt ~k ic =
  let t = ref tt_full in
  for i = 0 to k - 1 do
    t := !t land var_tt ic i
  done;
  !t

type cls =
  | Xor of bool  (** node (xor compl) computes XOR of positive leaves *)
  | Carry of bool * int  (** (output compl, input-compl mask): MAJ or AND of ops *)

let match_carry ~order ~mk tt =
  let found = ref None in
  (try
     Array.iter
       (fun ic ->
         let m = mk ic in
         if tt = m then begin
           found := Some (Carry (false, ic));
           raise Exit
         end
         else if tt = lnot m land tt_full then begin
           found := Some (Carry (true, ic));
           raise Exit
         end)
       order
   with Exit -> ());
  !found

(* Classify [tt] (8-bit, over the k leaves of a cut) as a sum or carry
   function.  Deterministic: fixed enumeration order, first match
   wins. *)
let classify ~k tt =
  let npn = fst (Bv.Npn.canonize (extend16 tt)) in
  if k = 3 then
    if npn = npn_xor3 then
      if tt = 0x96 then Some (Xor false)
      else if tt = 0x69 then Some (Xor true)
      else None
    else if npn = npn_maj then match_carry ~order:ic_order3 ~mk:maj_tt tt
    else None
  else if k = 2 then
    if npn = npn_xor2 then
      if tt = 0x66 then Some (Xor false)
      else if tt = 0x99 then Some (Xor true)
      else None
    else if npn = npn_and2 then
      match_carry ~order:ic_order2 ~mk:(fun ic -> and_tt ~k:2 ic) tt
    else None
  else None

(* ------------------------------------------------------------------ *)

(* 2:1 mux recovery over a 3-cut: 3 select choices x both (t, e)
   assignments x input and output polarities, first match wins; a
   complemented select is normalised away by swapping (t, e), so
   [select] is always positive.  Returns leaf indices and polarities
   [(s, ti, ei, tp, ep, oc)] — cut-independent, so the result is
   memoizable per truth table. *)
let match_mux tt =
  let found = ref None in
  (try
     for s = 0 to 2 do
       let o1, o2 = match s with 0 -> (1, 2) | 1 -> (0, 2) | _ -> (0, 1) in
       List.iter
         (fun (ti, ei) ->
           List.iter
             (fun (tp, ep, oc) ->
               let tv = if tp then lnot masks.(ti) land tt_full else masks.(ti) in
               let ev = if ep then lnot masks.(ei) land tt_full else masks.(ei) in
               let m = masks.(s) land tv lor (lnot masks.(s) land tt_full land ev) in
               let m = if oc then lnot m land tt_full else m in
               if tt = m then begin
                 found := Some (s, ti, ei, tp, ep, oc);
                 raise Exit
               end)
             [ (false, false, false); (false, false, true);
               (false, true, false); (false, true, true);
               (true, false, false); (true, false, true);
               (true, true, false); (true, true, true) ])
         [ (o1, o2); (o2, o1) ]
     done
   with Exit -> ());
  !found

(* There are only 256 local functions over a <=3 cut: classify each of
   them once here, so per-cut classification during detection is a table
   lookup.  (NPN canonization per cut was the dominant detection cost.) *)
let cls3_table = Array.init 256 (fun tt -> classify ~k:3 tt)
let cls2_table = Array.init 256 (fun tt -> classify ~k:2 tt)

let mux_table =
  Array.init 256 (fun tt ->
      if cls3_table.(tt) = None
         && fst (Bv.Npn.canonize (extend16 tt)) = npn_mux
      then match_mux tt
      else None)

let run ?(max_cuts = 8) g =
  let n = N.num_nodes g in
  let num_ands = N.num_ands g in
  (* Priority-cut enumeration, exactly as the engine's local phases do
     it (no equivalence classes here, so plain structural levels). *)
  let fanouts = N.fanout_counts g in
  let levels = N.levels g in
  let prio = Array.make n [] in
  for i = 0 to N.num_pis g - 1 do
    let p = N.pi g i in
    prio.(p) <- [ Cuts.Cut.trivial p ]
  done;
  let ecfg = { Cuts.Enumerate.k_l = 3; c = max_cuts } in
  let node_order = ref [] in
  N.iter_ands g (fun i -> node_order := i :: !node_order);
  let node_order = List.rev !node_order in
  List.iter
    (fun i ->
      prio.(i) <-
        Cuts.Enumerate.node_cuts g ecfg ~pass:Cuts.Criteria.Fanout_first
          ~fanouts ~levels ~prio ~sim_target:None i)
    node_order;
  (* Classify every (node, cut); index XOR hits by cut for pairing. *)
  let xor_by_cut : (Cuts.Cut.t, (int * bool) list ref) Hashtbl.t =
    Hashtbl.create 256
  in
  let carry_cands : (int * Cuts.Cut.t * bool * int) list ref = ref [] in
  (* (node, cut, out compl, input-compl mask), reverse topo order *)
  let mux_cands : (int * (L.t * L.t * L.t * bool)) list ref = ref [] in
  List.iter
    (fun i ->
      let cuts =
        let fanin_cut =
          let a = L.node (N.fanin0 g i) and b = L.node (N.fanin1 g i) in
          if a = 0 || b = 0 || a = b then None
          else Some (if a < b then [| a; b |] else [| b; a |])
        in
        let base = List.filter (fun c -> Array.length c >= 2) prio.(i) in
        match fanin_cut with
        | Some fc when not (List.exists (Cuts.Cut.equal fc) base) ->
            fc :: base
        | _ -> base
      in
      List.iter
        (fun cut ->
          let k = Array.length cut in
          if k = 2 || k = 3 then
            match node_tt g ~cut i with
            | None -> ()
            | Some tt -> (
                match (if k = 3 then cls3_table.(tt) else cls2_table.(tt)) with
                | Some (Xor oc) ->
                    let l =
                      match Hashtbl.find_opt xor_by_cut cut with
                      | Some l -> l
                      | None ->
                          let l = ref [] in
                          Hashtbl.add xor_by_cut cut l;
                          l
                    in
                    if not (List.mem (i, oc) !l) then l := (i, oc) :: !l
                | Some (Carry (oc, ic)) ->
                    carry_cands := (i, cut, oc, ic) :: !carry_cands
                | None -> (
                    if k = 3 then
                      match mux_table.(tt) with
                      | Some (s, ti, ei, tp, ep, oc) ->
                          mux_cands :=
                            ( i,
                              ( L.make cut.(s) false,
                                L.make cut.(ti) tp,
                                L.make cut.(ei) ep,
                                oc ) )
                            :: !mux_cands
                      | None -> ())))
        cuts)
    node_order;
  (* Pair carries with sums sharing the cut: one cell per carry node,
     processed in topological order; the smallest distinct XOR node
     wins.  A sum node may serve several cells (both miter halves often
     share the strashed sum while keeping distinct carries). *)
  let carry_used = Hashtbl.create 64 in
  let cells = ref [] in
  List.iter
    (fun (cnode, cut, oc, ic) ->
      if not (Hashtbl.mem carry_used cnode) then begin
        let sums =
          match Hashtbl.find_opt xor_by_cut cut with
          | Some l -> List.filter (fun (s, _) -> s <> cnode) !l
          | None -> []
        in
        match List.sort Stdlib.compare sums with
        | [] -> ()
        | (snode, s_oc) :: _ ->
            let k = Array.length cut in
            let ops =
              Array.init k (fun j -> L.make cut.(j) (ic land (1 lsl j) <> 0))
            in
            Array.sort Stdlib.compare ops;
            (* [snode ^ s_oc] computes XOR of the positive leaves; over
               the complemented operands the parity of [ic] folds into
               the output. *)
            let sum = L.make snode (s_oc <> (popcount ic land 1 = 1)) in
            let carry = L.make cnode oc in
            Hashtbl.add carry_used cnode ();
            cells := { sum; carry; ops; cut } :: !cells
      end)
    (List.rev !carry_cands);
  let cells = Array.of_list (List.rev !cells) in
  (* Link cells through carries (by node — polarity is re-checked by
     the prover) and walk maximal disjoint chains greedily. *)
  let ncells = Array.length cells in
  let by_op_node : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun idx c ->
      Array.iter
        (fun op ->
          let node = L.node op in
          match Hashtbl.find_opt by_op_node node with
          | Some l -> l := idx :: !l
          | None -> Hashtbl.add by_op_node node (ref [ idx ]))
        c.ops)
    cells;
  let carry_nodes = Hashtbl.create 64 in
  Array.iter (fun c -> Hashtbl.replace carry_nodes (L.node c.carry) ()) cells;
  let consumes_carry c =
    Array.exists (fun op -> Hashtbl.mem carry_nodes (L.node op)) c.ops
  in
  let used = Array.make ncells false in
  let cell_key idx = (L.node cells.(idx).sum, L.node cells.(idx).carry) in
  (* Prefer full-adder successors: a 3-operand cell consuming the carry
     is the genuine ripple continuation, while a 2-operand cell eating
     the same carry is usually an inner product term that dead-ends. *)
  let succ_key idx = (-Array.length cells.(idx).ops, cell_key idx) in
  let successors idx =
    match Hashtbl.find_opt by_op_node (L.node cells.(idx).carry) with
    | None -> []
    | Some l ->
        List.filter (fun j -> (not used.(j)) && j <> idx) !l
        |> List.sort (fun a b -> Stdlib.compare (succ_key a) (succ_key b))
  in
  let walk start =
    let acc = ref [ start ] in
    used.(start) <- true;
    let cur = ref start in
    let continue_ = ref true in
    while !continue_ do
      match successors !cur with
      | j :: _ ->
          used.(j) <- true;
          acc := j :: !acc;
          cur := j
      | [] -> continue_ := false
    done;
    Array.of_list (List.rev_map (fun i -> cells.(i)) !acc)
  in
  let order = Array.init ncells (fun i -> i) in
  Array.sort (fun a b -> Stdlib.compare (cell_key a) (cell_key b)) order;
  let chains = ref [] in
  Array.iter
    (fun i ->
      if (not used.(i)) && not (consumes_carry cells.(i)) then begin
        let c = walk i in
        if Array.length c >= 2 then chains := { cells = c } :: !chains
      end)
    order;
  Array.iter
    (fun i ->
      if not used.(i) then begin
        let c = walk i in
        if Array.length c >= 2 then chains := { cells = c } :: !chains
      end)
    order;
  let chains = List.rev !chains in
  (* Carry-save columns: cells grouped by carry-DAG depth. *)
  let carry_cell = Hashtbl.create 64 in
  Array.iteri (fun idx c -> Hashtbl.replace carry_cell (L.node c.carry) idx) cells;
  let weight = Array.make ncells (-1) in
  let rec depth idx =
    if weight.(idx) >= 0 then weight.(idx)
    else begin
      weight.(idx) <- 0;
      (* cycle guard; carry links are acyclic in a well-formed AIG *)
      let d =
        Array.fold_left
          (fun acc op ->
            match Hashtbl.find_opt carry_cell (L.node op) with
            | Some p when p <> idx -> max acc (1 + depth p)
            | _ -> acc)
          0 cells.(idx).ops
      in
      weight.(idx) <- d;
      d
    end
  in
  let maxw = ref 0 in
  Array.iteri (fun idx _ -> maxw := max !maxw (depth idx)) cells;
  let columns = Array.make (!maxw + 1) [] in
  Array.iteri
    (fun idx c -> columns.(weight.(idx)) <- c :: columns.(weight.(idx)))
    cells;
  Array.iteri (fun w l -> columns.(w) <- List.rev l) columns;
  (* Shifter rows: muxes grouped by select node, deduplicated per out
     node, rows of at least two muxes kept. *)
  let by_select : (int, mux list ref) Hashtbl.t = Hashtbl.create 16 in
  let mux_seen = Hashtbl.create 64 in
  List.iter
    (fun (node, (select, t_in, e_in, oc)) ->
      if not (Hashtbl.mem mux_seen node) then begin
        Hashtbl.add mux_seen node ();
        let m = { out = L.make node oc; select; t_in; e_in } in
        let key = L.node select in
        match Hashtbl.find_opt by_select key with
        | Some l -> l := m :: !l
        | None -> Hashtbl.add by_select key (ref [ m ])
      end)
    (List.rev !mux_cands);
  let rows =
    Hashtbl.fold (fun _ l acc -> !l :: acc) by_select []
    |> List.filter_map (fun ms ->
           if List.length ms >= 2 then begin
             let arr = Array.of_list ms in
             Array.sort (fun a b -> Stdlib.compare (L.node a.out) (L.node b.out)) arr;
             Some { select = arr.(0).select; muxes = arr }
           end
           else None)
    |> List.sort (fun a b ->
           Stdlib.compare (L.node a.select) (L.node b.select))
  in
  (* Coverage: AND nodes inside the cones of chained cells and shifter
     rows, counted down to (excluding) their cut leaves. *)
  let marked = Array.make n false in
  let mark_cone root stop =
    let rec go node =
      if node <> 0 && (not (List.mem node stop)) && N.is_and g node
         && not marked.(node)
      then begin
        marked.(node) <- true;
        go (L.node (N.fanin0 g node));
        go (L.node (N.fanin1 g node))
      end
    in
    go root
  in
  List.iter
    (fun (ch : chain) ->
      Array.iter
        (fun c ->
          let stop = Array.to_list c.cut in
          mark_cone (L.node c.sum) stop;
          mark_cone (L.node c.carry) stop)
        ch.cells)
    chains;
  List.iter
    (fun r ->
      Array.iter
        (fun (m : mux) ->
          let stop = [ L.node m.select; L.node m.t_in; L.node m.e_in ] in
          mark_cone (L.node m.out) stop)
        r.muxes)
    rows;
  let covered = ref 0 in
  Array.iter (fun v -> if v then incr covered) marked;
  {
    cells = Array.to_list cells;
    chains;
    columns;
    rows;
    covered_ands = !covered;
    num_ands;
  }
