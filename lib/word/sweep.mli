(** Word-level hybrid sweeping (`Engine.Wordsweep`).

    The engine recovers arithmetic words from the miter
    ({!Detect}), nominates candidate word equivalences by aligning
    operand columns and comparing {!Rewrite} normal forms, and proves
    each candidate bit by bit — least-significant first, one exhaustive
    simulation window per sum/carry pair through the
    {!Simsweep.Exhaustive} arena path, merging proved bits into the
    miter so the next bit's windows coincide.  Proof rounds iterate to
    a fixed point: a word pair whose operands are other words' outputs
    only aligns after those words have merged, so stalled pairs retry
    until a round makes no progress.

    Wherever detection or word proving falls short, the remaining miter
    falls back to the bit-level flow
    ({!Simsweep.Engine.check_with_fallback}), so the engine is complete
    exactly where the bit-level engine is; word merges only shrink the
    fallback's input.  All word merges are established by exhaustive
    simulation before being applied, so a structural misdetection can
    cost time, never soundness. *)

type stats = {
  mutable chains : int;
  mutable cells : int;
  mutable mux_rows : int;
  mutable coverage_percent : float;  (** detection coverage (AND nodes) *)
  mutable candidates : int;  (** nominated word pairs *)
  mutable words_proved : int;  (** pairs proved over their whole overlap *)
  mutable bits_merged : int;  (** per-bit merge steps applied *)
  mutable rounds : int;
  mutable fallback : bool;  (** bit-level fallback ran *)
  mutable fallback_ratio : float;
      (** AND nodes handed to the fallback / initial AND nodes *)
  mutable cancelled : bool;
  mutable cache_hits : int;  (** {!Sim.Pcheck} consult hits *)
  mutable cache_misses : int;
  mutable time_detect_s : float;
  mutable time_word_s : float;
  mutable time_fallback_s : float;
  mutable engine_stats : Simsweep.Stats.t option;  (** fallback engine *)
  mutable sat_stats : Sat.Sweep.stats option;  (** fallback SAT sweeper *)
}

val new_stats : unit -> stats

(** Flat numeric view of the counters (portfolio extra-racer stats). *)
val stat_counters : stats -> (string * float) list

val to_json : stats -> Simsweep.Telemetry.json

(** [check ?config ?sat_config ?fallback ?pcache ?cancel ~pool miter]
    decides whether every PO of [miter] is constant false.  [miter] is
    not mutated (the engine works on a copy).  [config] supplies the
    exhaustive-simulation memory budget and the fallback engine
    configuration (default {!Simsweep.Config.scaled});
    [fallback:false] skips the bit-level fallback and returns
    [Undecided] for whatever word proving alone cannot settle.
    [pcache] is consulted before proving and updated with the
    conclusion; [cancel] is polled at phase and round boundaries — a
    cancelled check returns [Undecided] with [stats.cancelled] set,
    never a false verdict. *)
val check :
  ?config:Simsweep.Config.t ->
  ?sat_config:Sat.Sweep.config ->
  ?fallback:bool ->
  ?pcache:Aig.Pcache.t ->
  ?cancel:Par.Cancel.t ->
  pool:Par.Pool.t ->
  Aig.Network.t ->
  Simsweep.Engine.outcome * stats

(** Register the engine as the racing portfolio's fourth member
    ([Portfolio.check ~mode:`Race] racer "wordsweep"); sequential-mode
    portfolios are unchanged.  Idempotent.  Linking this library does
    not register automatically — entry points opt in, so library users
    and tests control the racer set. *)
val register : ?config:Simsweep.Config.t -> unit -> unit
