(** Bit-vector rewriting for word-level candidate matching.

    Detected words are abstracted into a tiny bit-vector expression
    language and normalized into a polynomial normal form over
    [Z / 2^w]: sums and products are flattened and sorted
    (commutativity / associativity of [+] and [×]), left shifts become
    multiplications by a power-of-two constant (shift-add identity),
    constant factors distribute over sums, and like terms are collected
    with their coefficients folded.  Two detected words whose normal
    forms are equal compute the same function modulo [2^w], so the
    sweeping engine treats them as one candidate equivalence and only
    then spends simulation effort proving the bits.

    All identities used here hold modulo any word width, so
    normalization is width-agnostic; truncation happens at evaluation
    ({!eval}) and bit-blasting ({!to_network}) time. *)

type expr =
  | Var of int  (** an interned word (operand column vector) *)
  | Const of int
  | Add of expr list
  | Mul of expr list
  | Shl of expr * int  (** [Shl (e, k)] = [e * 2^k] *)

(** Polynomial normal form: a sorted sum of [coeff × sorted-factor-term]
    monomials with constants folded.  [normalize] is idempotent, and
    [eval ~width e = eval ~width (normalize e)] for every width and
    environment. *)
val normalize : expr -> expr

val compare : expr -> expr -> int
val equal : expr -> expr -> bool

(** [eval ~env ~width e] evaluates modulo [2^width]; [env] gives each
    [Var] its word value. *)
val eval : env:(int -> int) -> width:int -> expr -> int

(** Number of distinct [Var] ids (ids must be [0 .. n-1] for
    {!to_network}). *)
val num_vars : expr -> int

(** [to_network ~width ~num_vars e] bit-blasts [e] into an AIG with
    [num_vars * width] PIs (var [i]'s bit [b] is PI [i * width + b],
    LSB first) and [width] POs carrying the value of [e] modulo
    [2^width] — ripple adders, array multipliers and hard-wired shifts.
    Used by the property tests to check normalization against
    {!Fuzz.Brute} on the blasted cones. *)
val to_network : width:int -> num_vars:int -> expr -> Aig.Network.t
