(** The daemon's wire protocol.

    Frames are a 4-byte big-endian length prefix followed by that many
    bytes of JSON (the hand-rolled {!Simsweep.Telemetry} flavour).  A
    connection is a strict request/response alternation: each request
    frame yields exactly one response frame, in order. *)

type json = Simsweep.Telemetry.json

type request =
  | Ping  (** liveness probe; answered without queueing *)
  | Script of { script : string; timeout_s : float option }
      (** run a shell script ({!Shell.Command.exec_script}) in this
          connection's session *)
  | Cec of { aiger : string; engine : string; timeout_s : float option }
      (** check a miter shipped as an AIGER file with the named [cec]
          engine (sim, sat, bdd, portfolio, combined, partitioned) *)
  | Cache_stats  (** snapshot of the shared equivalence cache *)

type response = {
  ok : bool;
  output : string;  (** printable output, or the error message *)
  cache_hits : int;  (** equivalence-cache hits during this request *)
  cache_misses : int;
  elapsed_s : float;
}

val error_response : ?elapsed_s:float -> string -> response
val request_to_json : request -> json
val request_of_json : json -> (request, string) result
val response_to_json : response -> json
val response_of_json : json -> (response, string) result

(** Blocking frame I/O on buffered channels.  [read_frame] returns
    [Error "eof"] on clean end-of-stream and a descriptive error on a
    truncated, oversized or unparsable frame. *)
val write_frame : out_channel -> json -> unit

val read_frame : in_channel -> (json, string) result
