(** The daemon's wire protocol.

    Frames are a 4-byte big-endian header length, that many bytes of
    JSON header (the hand-rolled {!Simsweep.Telemetry} flavour), then an
    optional raw binary trailer whose size the header announces as
    ["payload_len"].  Bulk bytes — AIGER images, counter-example bit
    strings, learnt-clause blocks — ride the trailer: one copy per side,
    zero JSON escaping.  A connection is a strict request/response
    alternation: each request frame yields exactly one response frame,
    in order (except the one-way frames documented below). *)

type json = Simsweep.Telemetry.json
type io = Simsweep.Telemetry.io

(** {1 Frame size cap}

    A frame (header + trailer) larger than the cap is rejected on both
    sides before any allocation.  Process-global and configurable
    (server config, [--max-frame-mb]); defaults to 256 MB.
    {!set_max_frame} clamps to a 64 KiB floor so the protocol's own
    control frames always fit. *)

val default_max_frame : int
val max_frame : unit -> int
val set_max_frame : int -> unit

(** A decoded frame: JSON header plus raw trailer ([""] when absent). *)
type incoming = { hdr : json; payload : string }

type request =
  | Ping  (** liveness probe; answered without queueing *)
  | Script of { script : string; timeout_s : float option }
      (** run a shell script ({!Shell.Command.exec_script}) in this
          connection's session *)
  | Cec of { aiger : string; engine : string; timeout_s : float option }
      (** check a miter shipped as an AIGER binary trailer with the
          named [cec] engine (sim, sat, bdd, portfolio, combined,
          partitioned, shard.N) *)
  | Cache_stats  (** snapshot of the shared equivalence cache *)

type response = {
  ok : bool;
  output : string;  (** printable output, or the error message *)
  cache_hits : int;  (** equivalence-cache hits during this request *)
  cache_misses : int;
  elapsed_s : float;
}

val error_response : ?elapsed_s:float -> string -> response

(** Codecs produce [(header, payload)] pairs for {!write_frame} and
    consume the {!incoming} a {!read_frame} returned.  Responses are
    header-only. *)

val request_to_frame : request -> json * string
val request_of_frame : incoming -> (request, string) result
val response_to_json : response -> json
val response_of_json : json -> (response, string) result

(** {1 Shard frames}

    Coordinator ↔ worker messages for multi-process sharded sweeping
    ({!Shard.Check}), over the same framing.  AIGER payloads travel
    either inline in the binary trailer or as a shared-memory segment
    descriptor resolved against {!Shard.Shm}; counter-examples are
    ['0']/['1'] strings in the trailer; learnt clauses are little-endian
    int32 blocks in the trailer.  Literals and variables use the SAT
    solver's integer encoding, which is stable across processes because
    {!Sat.Cnf.load} maps network node [n] to variable [n] and both
    sides decode the same AIGER bytes. *)

(** How a bulk AIGER payload travels: [Inline] in the frame's binary
    trailer (remote-safe, the fuzzable reference implementation), or as
    a [Shm_ref] descriptor naming a byte range of a {!Shard.Shm}
    segment already resident on this machine. *)
type blob = Inline of string | Shm_ref of { seg : string; off : int; len : int }

type shard_task =
  | Shard_check of {
      run : int;  (** coordinator run id; isolates warm-pool reuse *)
      shard : int;
      aiger : blob;
      stall_conflicts : int;  (** SAT budget before declaring a stall *)
      split_vars : int;  (** how many split candidates to report *)
      direct_sat : bool;  (** skip the sweeping engine (tests) *)
      deadline_in : float option;
    }  (** check one shard end to end *)
  | Shard_cube of {
      run : int;
      shard : int;
      cube : int;
      aiger : blob option;
          (** cube formula (the stalled shard's reduced miter); omitted
              when this worker already holds it *)
      assume : int list;  (** solver literals fixing this cube *)
      freeze : int list;  (** vars that must survive preprocessing *)
      conflict_limit : int;
      deadline_in : float option;
    }  (** solve one cube of a stalled shard *)
  | Shard_clauses of {
      run : int;
      shard : int;
      clauses : int list list;  (** learnt clauses shared by other workers *)
    }
      (** one-way: import clauses into the cached cube solver (or stash
          them until it exists).  No reply — written unflushed and
          coalesced with the next {!Shard_cube} into one syscall batch. *)
  | Shard_ping  (** pool health probe; answered with {!Shard_pong} *)
  | Shard_quit

type shard_verdict =
  | Sv_proved
  | Sv_disproved of { cex : string; po : int }
  | Sv_undecided

type cube_result =
  | Cube_unsat
  | Cube_sat of { cex : string; po : int }
  | Cube_unknown

type shard_reply =
  | Shard_ready  (** sent once at (cold) worker startup *)
  | Shard_pong  (** answer to {!Shard_ping} *)
  | Shard_verdict of {
      shard : int;
      verdict : shard_verdict;
      wall_s : float;
      conflicts : int;
    }
  | Shard_stalled of {
      shard : int;
      reduced : string;  (** engine-reduced miter: the cube formula *)
      vars : int list;  (** high-activity split candidates, hottest first *)
      wall_s : float;
    }
  | Shard_cube_reply of {
      shard : int;
      cube : int;
      result : cube_result;
      learnt : int list list;
          (** short learnt clauses for the pool; always [[]] on
              {!Cube_sat} (the frame's one trailer carries the CEX) *)
      conflicts : int;
      wall_s : float;
    }
  | Shard_failed of { shard : int; cube : int option; msg : string }
      (** framed error: the task's payload could not be used (unmappable
          or truncated shm descriptor, corrupt AIGER bytes).  The worker
          stays alive; the coordinator re-dispatches inline. *)

val cex_to_bits : bool array -> string
val bits_to_cex : string -> bool array

(** Learnt-clause trailer codec: little-endian int32 words —
    clause count, then per clause its length followed by its literals. *)
val clauses_to_payload : int list list -> string

val clauses_of_payload : string -> (int list list, string) result
val shard_task_to_frame : shard_task -> json * string
val shard_task_of_frame : incoming -> (shard_task, string) result
val shard_reply_to_frame : shard_reply -> json * string
val shard_reply_of_frame : incoming -> (shard_reply, string) result

(** {1 Frame I/O}

    Blocking frame I/O on buffered channels.  [write_frame] injects
    ["payload_len"] into the header when [payload] is non-empty, writes
    header and trailer, and flushes unless [~flush:false] — pass
    [~flush:false] to coalesce several frames into one syscall batch,
    then flush on the last frame (or {!flush_frames}).  Raises
    [Invalid_argument] when the frame exceeds {!max_frame} or a payload
    is attached to a non-object header.  [io], when given, accumulates
    payload-inclusive byte/frame/flush counters.

    [read_frame] returns [Error "eof"] on clean end-of-stream and a
    descriptive error on a truncated, oversized or unparsable frame. *)

val write_frame :
  ?flush:bool -> ?io:io -> ?payload:string -> out_channel -> json -> unit

val flush_frames : ?io:io -> out_channel -> unit
val read_frame : ?io:io -> in_channel -> (incoming, string) result
