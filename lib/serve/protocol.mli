(** The daemon's wire protocol.

    Frames are a 4-byte big-endian length prefix followed by that many
    bytes of JSON (the hand-rolled {!Simsweep.Telemetry} flavour).  A
    connection is a strict request/response alternation: each request
    frame yields exactly one response frame, in order. *)

type json = Simsweep.Telemetry.json

type request =
  | Ping  (** liveness probe; answered without queueing *)
  | Script of { script : string; timeout_s : float option }
      (** run a shell script ({!Shell.Command.exec_script}) in this
          connection's session *)
  | Cec of { aiger : string; engine : string; timeout_s : float option }
      (** check a miter shipped as an AIGER file with the named [cec]
          engine (sim, sat, bdd, portfolio, combined, partitioned) *)
  | Cache_stats  (** snapshot of the shared equivalence cache *)

type response = {
  ok : bool;
  output : string;  (** printable output, or the error message *)
  cache_hits : int;  (** equivalence-cache hits during this request *)
  cache_misses : int;
  elapsed_s : float;
}

val error_response : ?elapsed_s:float -> string -> response
val request_to_json : request -> json
val request_of_json : json -> (request, string) result
val response_to_json : response -> json
val response_of_json : json -> (response, string) result

(** {1 Shard frames}

    Coordinator ↔ worker messages for multi-process sharded sweeping
    ({!Shard.Check}), over the same framing.  AIGER payloads are binary
    strings; counter-examples are ['0']/['1'] strings; literals and
    variables use the SAT solver's integer encoding, which is stable
    across processes because {!Sat.Cnf.load} maps network node [n] to
    variable [n] and both sides decode the same AIGER bytes. *)

type shard_task =
  | Shard_check of {
      shard : int;
      aiger : string;
      stall_conflicts : int;  (** SAT budget before declaring a stall *)
      split_vars : int;  (** how many split candidates to report *)
      direct_sat : bool;  (** skip the sweeping engine (tests) *)
      deadline_in : float option;
    }  (** check one shard end to end *)
  | Shard_cube of {
      shard : int;
      cube : int;
      aiger : string option;
          (** cube formula (the stalled shard's reduced miter); omitted
              when this worker already holds it *)
      assume : int list;  (** solver literals fixing this cube *)
      freeze : int list;  (** vars that must survive preprocessing *)
      conflict_limit : int;
      clauses : int list list;  (** learnt clauses shared by other workers *)
      deadline_in : float option;
    }  (** solve one cube of a stalled shard *)
  | Shard_quit

type shard_verdict =
  | Sv_proved
  | Sv_disproved of { cex : string; po : int }
  | Sv_undecided

type cube_result =
  | Cube_unsat
  | Cube_sat of { cex : string; po : int }
  | Cube_unknown

type shard_reply =
  | Shard_ready  (** sent once at worker startup *)
  | Shard_verdict of {
      shard : int;
      verdict : shard_verdict;
      wall_s : float;
      conflicts : int;
    }
  | Shard_stalled of {
      shard : int;
      reduced : string;  (** engine-reduced miter: the cube formula *)
      vars : int list;  (** high-activity split candidates, hottest first *)
      wall_s : float;
    }
  | Shard_cube_reply of {
      shard : int;
      cube : int;
      result : cube_result;
      learnt : int list list;  (** short learnt clauses for the pool *)
      conflicts : int;
      wall_s : float;
    }

val cex_to_bits : bool array -> string
val bits_to_cex : string -> bool array
val shard_task_to_json : shard_task -> json
val shard_task_of_json : json -> (shard_task, string) result
val shard_reply_to_json : shard_reply -> json
val shard_reply_of_json : json -> (shard_reply, string) result

(** Blocking frame I/O on buffered channels.  [read_frame] returns
    [Error "eof"] on clean end-of-stream and a descriptive error on a
    truncated, oversized or unparsable frame. *)
val write_frame : out_channel -> json -> unit

val read_frame : in_channel -> (json, string) result
