(** The daemon's cross-request equivalence cache.

    Stores proved PO verdicts and proved candidate pairs keyed by the
    renumbering-invariant cone keys of {!Aig.Shash}, shared by every
    session of a server.  Thread-safe: all access goes through one
    mutex.  Bounded two ways: past [max_entries] total entries, or past
    [max_bytes] of accumulated key/value cost — structural cone keys can
    reach megabytes each, so an entry count alone is no memory bound —
    new keys are dropped (existing keys may still be refreshed). *)

type t

(** Defaults: 1M entries, 256 MB. *)
val create : ?max_entries:int -> ?max_bytes:int -> unit -> t

(** [view t] is a thread-safe {!Aig.Pcache} hook into [t] plus a [take]
    function returning — and resetting — the number of (hits, misses)
    this view has seen since the last [take].  Each session holds its own
    view, so per-request cache effects can be reported while the
    underlying store stays shared. *)
val view : t -> Aig.Pcache.t * (unit -> int * int)

(** (total entries, lifetime hits, lifetime misses) across all views. *)
val stats : t -> int * int * int

(** Accumulated byte cost of the stored entries (the quantity capped by
    [max_bytes]). *)
val bytes_used : t -> int
