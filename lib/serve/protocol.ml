(* Wire protocol: 4-byte big-endian length prefix, then that many bytes
   of JSON (the hand-rolled [Simsweep.Telemetry] flavour — no external
   dependency).  One request frame yields exactly one response frame, in
   order, per connection. *)

type json = Simsweep.Telemetry.json

(* A frame larger than this is a protocol error, not an allocation. *)
let max_frame = 256 * 1024 * 1024

type request =
  | Ping
  | Script of { script : string; timeout_s : float option }
  | Cec of { aiger : string; engine : string; timeout_s : float option }
  | Cache_stats

type response = {
  ok : bool;
  output : string;  (* printable output, or the error message *)
  cache_hits : int;
  cache_misses : int;
  elapsed_s : float;
}

let error_response ?(elapsed_s = 0.) msg =
  { ok = false; output = msg; cache_hits = 0; cache_misses = 0; elapsed_s }

open Simsweep.Telemetry

let timeout_field = function
  | Some s -> [ ("timeout_s", Float s) ]
  | None -> []

let request_to_json = function
  | Ping -> Obj [ ("type", String "ping") ]
  | Script { script; timeout_s } ->
      Obj
        ([ ("type", String "script"); ("script", String script) ]
        @ timeout_field timeout_s)
  | Cec { aiger; engine; timeout_s } ->
      Obj
        ([
           ("type", String "cec");
           ("aiger", String aiger);
           ("engine", String engine);
         ]
        @ timeout_field timeout_s)
  | Cache_stats -> Obj [ ("type", String "cache-stats") ]

let str_field name j =
  match member name j with
  | Some (String s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S: expected a string" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let timeout_of j =
  match member "timeout_s" j with
  | Some (Float s) -> Some s
  | Some (Int s) -> Some (float_of_int s)
  | _ -> None

let request_of_json j =
  match str_field "type" j with
  | Error e -> Error e
  | Ok "ping" -> Ok Ping
  | Ok "script" -> (
      match str_field "script" j with
      | Ok script -> Ok (Script { script; timeout_s = timeout_of j })
      | Error e -> Error e)
  | Ok "cec" -> (
      match (str_field "aiger" j, str_field "engine" j) with
      | Ok aiger, Ok engine -> Ok (Cec { aiger; engine; timeout_s = timeout_of j })
      | Error e, _ | _, Error e -> Error e)
  | Ok "cache-stats" -> Ok Cache_stats
  | Ok other -> Error ("unknown request type " ^ other)

let response_to_json r =
  Obj
    [
      ("ok", Bool r.ok);
      ("output", String r.output);
      ("cache_hits", Int r.cache_hits);
      ("cache_misses", Int r.cache_misses);
      ("elapsed_s", Float r.elapsed_s);
    ]

let response_of_json j =
  match (member "ok" j, member "output" j) with
  | Some (Bool ok), Some (String output) ->
      let int_field name =
        match member name j with Some (Int n) -> n | _ -> 0
      in
      let float_field name =
        match member name j with
        | Some (Float f) -> f
        | Some (Int n) -> float_of_int n
        | _ -> 0.
      in
      Ok
        {
          ok;
          output;
          cache_hits = int_field "cache_hits";
          cache_misses = int_field "cache_misses";
          elapsed_s = float_field "elapsed_s";
        }
  | _ -> Error "malformed response (missing ok/output)"

(* {2 Framing} *)

let write_frame oc (j : json) =
  let body = to_string j in
  let n = String.length body in
  if n > max_frame then invalid_arg "Protocol.write_frame: frame too large";
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int n);
  output_bytes oc hdr;
  output_string oc body;
  flush oc

let really_read ic buf len =
  let off = ref 0 in
  (try
     while !off < len do
       let r = input ic buf !off (len - !off) in
       if r = 0 then raise End_of_file;
       off := !off + r
     done
   with End_of_file -> ());
  !off = len

let read_frame ic : (json, string) result =
  let hdr = Bytes.create 4 in
  if not (really_read ic hdr 4) then Error "eof"
  else
    let n = Int32.to_int (Bytes.get_int32_be hdr 0) in
    if n < 0 || n > max_frame then
      Error (Printf.sprintf "bad frame length %d" n)
    else
      let body = Bytes.create n in
      if not (really_read ic body n) then Error "eof inside frame"
      else
        match parse (Bytes.to_string body) with
        | Ok j -> Ok j
        | Error e -> Error ("bad frame json: " ^ e)
