(* Wire protocol: 4-byte big-endian header length, then that many bytes
   of JSON (the hand-rolled [Simsweep.Telemetry] flavour), then an
   optional raw binary trailer whose size the header carries as
   ["payload_len"].  Bulk bytes — AIGER images, counter-example bit
   strings, learnt-clause blocks — ride the trailer: written and read
   with exactly one copy and zero JSON escaping.  One request frame
   yields exactly one response frame, in order, per connection. *)

type json = Simsweep.Telemetry.json
type io = Simsweep.Telemetry.io

(* A frame larger than this is a protocol error, not an allocation.  The
   cap is configurable (server config, --max-frame-mb): the old fixed
   256 MB constant was a silent ceiling on shard payload size once
   --post-double started producing multi-MB miters. *)
let default_max_frame = 256 * 1024 * 1024
let min_max_frame = 64 * 1024
let max_frame_cap = Atomic.make default_max_frame
let max_frame () = Atomic.get max_frame_cap
let set_max_frame n = Atomic.set max_frame_cap (max min_max_frame n)

type incoming = { hdr : json; payload : string }

type request =
  | Ping
  | Script of { script : string; timeout_s : float option }
  | Cec of { aiger : string; engine : string; timeout_s : float option }
  | Cache_stats

type response = {
  ok : bool;
  output : string;  (* printable output, or the error message *)
  cache_hits : int;
  cache_misses : int;
  elapsed_s : float;
}

let error_response ?(elapsed_s = 0.) msg =
  { ok = false; output = msg; cache_hits = 0; cache_misses = 0; elapsed_s }

open Simsweep.Telemetry

let timeout_field = function
  | Some s -> [ ("timeout_s", Float s) ]
  | None -> []

let request_to_frame = function
  | Ping -> (Obj [ ("type", String "ping") ], "")
  | Script { script; timeout_s } ->
      ( Obj
          ([ ("type", String "script"); ("script", String script) ]
          @ timeout_field timeout_s),
        "" )
  | Cec { aiger; engine; timeout_s } ->
      (* The AIGER image travels as the binary trailer. *)
      ( Obj
          ([ ("type", String "cec"); ("engine", String engine) ]
          @ timeout_field timeout_s),
        aiger )
  | Cache_stats -> (Obj [ ("type", String "cache-stats") ], "")

let str_field name j =
  match member name j with
  | Some (String s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S: expected a string" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let timeout_of j =
  match member "timeout_s" j with
  | Some (Float s) -> Some s
  | Some (Int s) -> Some (float_of_int s)
  | _ -> None

let request_of_frame { hdr = j; payload } =
  match str_field "type" j with
  | Error e -> Error e
  | Ok "ping" -> Ok Ping
  | Ok "script" -> (
      match str_field "script" j with
      | Ok script -> Ok (Script { script; timeout_s = timeout_of j })
      | Error e -> Error e)
  | Ok "cec" -> (
      match str_field "engine" j with
      | Ok engine -> Ok (Cec { aiger = payload; engine; timeout_s = timeout_of j })
      | Error e -> Error e)
  | Ok "cache-stats" -> Ok Cache_stats
  | Ok other -> Error ("unknown request type " ^ other)

let response_to_json r =
  Obj
    [
      ("ok", Bool r.ok);
      ("output", String r.output);
      ("cache_hits", Int r.cache_hits);
      ("cache_misses", Int r.cache_misses);
      ("elapsed_s", Float r.elapsed_s);
    ]

let response_of_json j =
  match (bool_member "ok" j, string_member "output" j) with
  | Some ok, Some output ->
      let int_field name = Option.value ~default:0 (int_member name j) in
      Ok
        {
          ok;
          output;
          cache_hits = int_field "cache_hits";
          cache_misses = int_field "cache_misses";
          elapsed_s = Option.value ~default:0. (float_member "elapsed_s" j);
        }
  | _ -> Error "malformed response (missing ok/output)"

(* {2 Shard frames}

   Coordinator <-> worker messages for multi-process sharded sweeping
   (lib/shard).  Same framing and JSON flavour as the daemon protocol.
   AIGER payloads travel either as the binary trailer ([Inline]) or as a
   shared-memory segment descriptor ([Shm_ref]) that the worker resolves
   against [Shard.Shm]; counter-examples are '0'/'1' strings in the
   trailer; learnt-clause blocks are little-endian int32 runs in the
   trailer.  Literals and variables are the SAT solver's integer
   encoding — stable across processes because [Sat.Cnf.load] maps
   network node [n] to variable [n] and both sides decode the same AIGER
   bytes. *)

type blob = Inline of string | Shm_ref of { seg : string; off : int; len : int }

type shard_task =
  | Shard_check of {
      run : int;
      shard : int;
      aiger : blob;
      stall_conflicts : int;
      split_vars : int;
      direct_sat : bool;
      deadline_in : float option;
    }
  | Shard_cube of {
      run : int;
      shard : int;
      cube : int;
      aiger : blob option;  (* cube formula; omitted when already loaded *)
      assume : int list;  (* solver literals fixing this cube *)
      freeze : int list;  (* vars the worker must keep assumable *)
      conflict_limit : int;
      deadline_in : float option;
    }
  | Shard_clauses of {
      run : int;
      shard : int;
      clauses : int list list;  (* shared learnt clauses to import *)
    }
  | Shard_ping
  | Shard_quit

type shard_verdict =
  | Sv_proved
  | Sv_disproved of { cex : string; po : int }
  | Sv_undecided

type cube_result =
  | Cube_unsat
  | Cube_sat of { cex : string; po : int }
  | Cube_unknown

type shard_reply =
  | Shard_ready
  | Shard_pong
  | Shard_verdict of {
      shard : int;
      verdict : shard_verdict;
      wall_s : float;
      conflicts : int;
    }
  | Shard_stalled of {
      shard : int;
      reduced : string;  (* engine-reduced miter: the cube formula *)
      vars : int list;  (* high-activity split candidates, hottest first *)
      wall_s : float;
    }
  | Shard_cube_reply of {
      shard : int;
      cube : int;
      result : cube_result;
      learnt : int list list;  (* short learnt clauses for the pool *)
      conflicts : int;
      wall_s : float;
    }
  | Shard_failed of { shard : int; cube : int option; msg : string }

let cex_to_bits cex =
  String.init (Array.length cex) (fun i -> if cex.(i) then '1' else '0')

let bits_to_cex s = Array.init (String.length s) (fun i -> s.[i] = '1')

let ints_to_json l = List (List.map (fun i -> Int i) l)

let ints_of_json = function
  | List l ->
      List.fold_right
        (fun x acc ->
          match (x, acc) with Int i, Some r -> Some (i :: r) | _ -> None)
        l (Some [])
  | _ -> None

(* Learnt-clause block: [count, (len, lits...)*] as little-endian int32. *)
let clauses_to_payload cs =
  let words = List.fold_left (fun a c -> a + 1 + List.length c) 1 cs in
  let b = Bytes.create (4 * words) in
  let w = ref 0 in
  let put v =
    Bytes.set_int32_le b (4 * !w) (Int32.of_int v);
    incr w
  in
  put (List.length cs);
  List.iter
    (fun c ->
      put (List.length c);
      List.iter put c)
    cs;
  Bytes.unsafe_to_string b

let clauses_of_payload s =
  let words = String.length s / 4 in
  if String.length s <> 4 * words then Error "clause block: ragged length"
  else if words = 0 then Error "clause block: empty"
  else begin
    let get w = Int32.to_int (String.get_int32_le s (4 * w)) in
    let count = get 0 in
    let pos = ref 1 in
    let rec clauses n acc =
      if n = 0 then
        if !pos = words then Ok (List.rev acc)
        else Error "clause block: trailing garbage"
      else if !pos >= words then Error "clause block: truncated"
      else begin
        let len = get !pos in
        incr pos;
        if len < 0 || !pos + len > words then Error "clause block: truncated"
        else begin
          let c = List.init len (fun i -> get (!pos + i)) in
          pos := !pos + len;
          clauses (n - 1) (c :: acc)
        end
      end
    in
    if count < 0 then Error "clause block: negative count" else clauses count []
  end

let deadline_field = function
  | Some s -> [ ("deadline_in", Float s) ]
  | None -> []

let deadline_of j = float_member "deadline_in" j

(* A blob is either header fields (shm descriptor) or the trailer. *)
let blob_to_frame = function
  | Inline s -> ([], s)
  | Shm_ref { seg; off; len } ->
      ( [
          ( "aiger_shm",
            Obj [ ("seg", String seg); ("off", Int off); ("len", Int len) ] );
        ],
        "" )

let shm_ref_of_json j =
  match
    (string_member "seg" j, int_member "off" j, int_member "len" j)
  with
  | Some seg, Some off, Some len -> Ok (Shm_ref { seg; off; len })
  | _ -> Error "aiger_shm: malformed descriptor"

(* [None]: no AIGER in this frame at all (cube formula already loaded). *)
let blob_of_frame { hdr; payload } =
  match member "aiger_shm" hdr with
  | Some d -> (
      match shm_ref_of_json d with Ok b -> Ok (Some b) | Error e -> Error e)
  | None -> if payload = "" then Ok None else Ok (Some (Inline payload))

let shard_task_to_frame = function
  | Shard_check
      { run; shard; aiger; stall_conflicts; split_vars; direct_sat; deadline_in }
    ->
      let blob_fields, payload = blob_to_frame aiger in
      ( Obj
          ([
             ("type", String "shard-check");
             ("run", Int run);
             ("shard", Int shard);
             ("stall_conflicts", Int stall_conflicts);
             ("split_vars", Int split_vars);
             ("direct_sat", Bool direct_sat);
           ]
          @ blob_fields
          @ deadline_field deadline_in),
        payload )
  | Shard_cube
      { run; shard; cube; aiger; assume; freeze; conflict_limit; deadline_in }
    ->
      let blob_fields, payload =
        match aiger with None -> ([], "") | Some b -> blob_to_frame b
      in
      ( Obj
          ([
             ("type", String "shard-cube");
             ("run", Int run);
             ("shard", Int shard);
             ("cube", Int cube);
             ("assume", ints_to_json assume);
             ("freeze", ints_to_json freeze);
             ("conflict_limit", Int conflict_limit);
           ]
          @ blob_fields
          @ deadline_field deadline_in),
        payload )
  | Shard_clauses { run; shard; clauses } ->
      ( Obj
          [
            ("type", String "shard-clauses");
            ("run", Int run);
            ("shard", Int shard);
          ],
        clauses_to_payload clauses )
  | Shard_ping -> (Obj [ ("type", String "shard-ping") ], "")
  | Shard_quit -> (Obj [ ("type", String "shard-quit") ], "")

let shard_task_of_frame ({ hdr = j; payload } as inc) =
  match str_field "type" j with
  | Error e -> Error e
  | Ok "shard-check" -> (
      match (int_member "shard" j, blob_of_frame inc) with
      | Some shard, Ok (Some aiger) ->
          Ok
            (Shard_check
               {
                 run = Option.value ~default:0 (int_member "run" j);
                 shard;
                 aiger;
                 stall_conflicts =
                   Option.value ~default:max_int (int_member "stall_conflicts" j);
                 split_vars = Option.value ~default:0 (int_member "split_vars" j);
                 direct_sat =
                   Option.value ~default:false (bool_member "direct_sat" j);
                 deadline_in = deadline_of j;
               })
      | None, _ -> Error "shard-check: missing shard id"
      | _, Ok None -> Error "shard-check: missing aiger"
      | _, Error e -> Error e)
  | Ok "shard-cube" -> (
      match
        ( int_member "shard" j,
          int_member "cube" j,
          Option.bind (member "assume" j) ints_of_json,
          blob_of_frame inc )
      with
      | Some shard, Some cube, Some assume, Ok aiger ->
          Ok
            (Shard_cube
               {
                 run = Option.value ~default:0 (int_member "run" j);
                 shard;
                 cube;
                 aiger;
                 assume;
                 freeze =
                   Option.value ~default:[]
                     (Option.bind (member "freeze" j) ints_of_json);
                 conflict_limit =
                   Option.value ~default:max_int (int_member "conflict_limit" j);
                 deadline_in = deadline_of j;
               })
      | _, _, _, Error e -> Error e
      | _ -> Error "shard-cube: malformed fields")
  | Ok "shard-clauses" -> (
      match (int_member "shard" j, clauses_of_payload payload) with
      | Some shard, Ok clauses ->
          Ok
            (Shard_clauses
               {
                 run = Option.value ~default:0 (int_member "run" j);
                 shard;
                 clauses;
               })
      | None, _ -> Error "shard-clauses: missing shard id"
      | _, Error e -> Error e)
  | Ok "shard-ping" -> Ok Shard_ping
  | Ok "shard-quit" -> Ok Shard_quit
  | Ok other -> Error ("unknown shard task " ^ other)

(* Verdict/result tags in the header; the bulk (CEX bits, learnt-clause
   block) in the trailer.  A frame has one trailer, so [Cube_sat] carries
   the CEX there and ships no learnt clauses — the coordinator stops the
   run on a disproof anyway. *)
let shard_verdict_to_frame = function
  | Sv_proved -> ([ ("verdict", String "proved") ], "")
  | Sv_disproved { cex; po } ->
      ([ ("verdict", String "disproved"); ("po", Int po) ], cex)
  | Sv_undecided -> ([ ("verdict", String "undecided") ], "")

let shard_verdict_of_frame { hdr = j; payload } =
  match string_member "verdict" j with
  | Some "proved" -> Ok Sv_proved
  | Some "disproved" -> (
      match int_member "po" j with
      | Some po -> Ok (Sv_disproved { cex = payload; po })
      | None -> Error "disproved verdict: missing po")
  | Some "undecided" -> Ok Sv_undecided
  | _ -> Error "missing verdict"

let cube_result_to_frame = function
  | Cube_unsat -> ([ ("result", String "unsat") ], None)
  | Cube_sat { cex; po } -> ([ ("result", String "sat"); ("po", Int po) ], Some cex)
  | Cube_unknown -> ([ ("result", String "unknown") ], None)

let cube_result_of_frame { hdr = j; payload } =
  match string_member "result" j with
  | Some "unsat" -> Ok Cube_unsat
  | Some "sat" -> (
      match int_member "po" j with
      | Some po -> Ok (Cube_sat { cex = payload; po })
      | None -> Error "sat cube: missing po")
  | Some "unknown" -> Ok Cube_unknown
  | _ -> Error "missing cube result"

let shard_reply_to_frame = function
  | Shard_ready -> (Obj [ ("type", String "shard-ready") ], "")
  | Shard_pong -> (Obj [ ("type", String "shard-pong") ], "")
  | Shard_verdict { shard; verdict; wall_s; conflicts } ->
      let verdict_fields, payload = shard_verdict_to_frame verdict in
      ( Obj
          ([
             ("type", String "shard-verdict");
             ("shard", Int shard);
             ("wall_s", Float wall_s);
             ("conflicts", Int conflicts);
           ]
          @ verdict_fields),
        payload )
  | Shard_stalled { shard; reduced; vars; wall_s } ->
      ( Obj
          [
            ("type", String "shard-stalled");
            ("shard", Int shard);
            ("vars", ints_to_json vars);
            ("wall_s", Float wall_s);
          ],
        reduced )
  | Shard_cube_reply { shard; cube; result; learnt; conflicts; wall_s } ->
      let result_fields, cex = cube_result_to_frame result in
      let payload =
        match cex with Some cex -> cex | None -> clauses_to_payload learnt
      in
      ( Obj
          ([
             ("type", String "shard-cube-reply");
             ("shard", Int shard);
             ("cube", Int cube);
             ("conflicts", Int conflicts);
             ("wall_s", Float wall_s);
           ]
          @ result_fields),
        payload )
  | Shard_failed { shard; cube; msg } ->
      ( Obj
          ([
             ("type", String "shard-failed");
             ("shard", Int shard);
             ("msg", String msg);
           ]
          @ match cube with Some c -> [ ("cube", Int c) ] | None -> []),
        "" )

let shard_reply_of_frame ({ hdr = j; payload } as inc) =
  match str_field "type" j with
  | Error e -> Error e
  | Ok "shard-ready" -> Ok Shard_ready
  | Ok "shard-pong" -> Ok Shard_pong
  | Ok "shard-verdict" -> (
      match (int_member "shard" j, shard_verdict_of_frame inc) with
      | Some shard, Ok verdict ->
          Ok
            (Shard_verdict
               {
                 shard;
                 verdict;
                 wall_s = Option.value ~default:0. (float_member "wall_s" j);
                 conflicts = Option.value ~default:0 (int_member "conflicts" j);
               })
      | None, _ -> Error "shard-verdict: missing shard id"
      | _, Error e -> Error e)
  | Ok "shard-stalled" -> (
      match (int_member "shard" j, Option.bind (member "vars" j) ints_of_json) with
      | Some shard, Some vars ->
          Ok
            (Shard_stalled
               {
                 shard;
                 reduced = payload;
                 vars;
                 wall_s = Option.value ~default:0. (float_member "wall_s" j);
               })
      | _ -> Error "shard-stalled: malformed fields")
  | Ok "shard-cube-reply" -> (
      match
        (int_member "shard" j, int_member "cube" j, cube_result_of_frame inc)
      with
      | Some shard, Some cube, Ok result ->
          let learnt =
            match result with
            | Cube_sat _ -> Ok []
            | _ -> clauses_of_payload payload
          in
          (match learnt with
          | Error e -> Error ("shard-cube-reply: " ^ e)
          | Ok learnt ->
              Ok
                (Shard_cube_reply
                   {
                     shard;
                     cube;
                     result;
                     learnt;
                     conflicts = Option.value ~default:0 (int_member "conflicts" j);
                     wall_s = Option.value ~default:0. (float_member "wall_s" j);
                   }))
      | _, _, Error e -> Error e
      | _ -> Error "shard-cube-reply: malformed fields")
  | Ok "shard-failed" -> (
      match (int_member "shard" j, string_member "msg" j) with
      | Some shard, Some msg ->
          Ok (Shard_failed { shard; cube = int_member "cube" j; msg })
      | _ -> Error "shard-failed: malformed fields")
  | Ok other -> Error ("unknown shard reply " ^ other)

(* {2 Framing} *)

let count_tx (io : io option) bytes =
  match io with
  | Some io ->
      io.io_bytes_tx <- io.io_bytes_tx + bytes;
      io.io_frames_tx <- io.io_frames_tx + 1
  | None -> ()

let count_flush (io : io option) =
  match io with Some io -> io.io_flushes <- io.io_flushes + 1 | None -> ()

let write_frame ?(flush = true) ?io ?(payload = "") oc (j : json) =
  let plen = String.length payload in
  let j =
    if plen = 0 then j
    else
      match j with
      | Obj fields -> Obj (fields @ [ ("payload_len", Int plen) ])
      | _ -> invalid_arg "Protocol.write_frame: payload on a non-object header"
  in
  let body = to_string j in
  let n = String.length body in
  if n + plen > max_frame () then
    invalid_arg "Protocol.write_frame: frame too large";
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int n);
  output_bytes oc hdr;
  output_string oc body;
  if plen > 0 then output_string oc payload;
  count_tx io (4 + n + plen);
  if flush then begin
    Stdlib.flush oc;
    count_flush io
  end

let flush_frames ?io oc =
  Stdlib.flush oc;
  count_flush io

let really_read ic buf len =
  let off = ref 0 in
  (try
     while !off < len do
       let r = input ic buf !off (len - !off) in
       if r = 0 then raise End_of_file;
       off := !off + r
     done
     (* A peer that died (SIGKILLed shard worker, reset client socket)
        surfaces as [Sys_error] rather than a clean EOF — same outcome
        for the reader: the frame is not coming. *)
   with End_of_file | Sys_error _ -> ());
  !off = len

let read_frame ?io ic : (incoming, string) result =
  let count_rx bytes =
    match io with
    | Some io ->
        io.io_bytes_rx <- io.io_bytes_rx + bytes;
        io.io_frames_rx <- io.io_frames_rx + 1
    | None -> ()
  in
  let hdr = Bytes.create 4 in
  if not (really_read ic hdr 4) then Error "eof"
  else
    let n = Int32.to_int (Bytes.get_int32_be hdr 0) in
    if n < 0 || n > max_frame () then
      Error (Printf.sprintf "bad frame length %d" n)
    else
      let body = Bytes.create n in
      if not (really_read ic body n) then Error "eof inside frame"
      else
        match parse (Bytes.to_string body) with
        | Error e -> Error ("bad frame json: " ^ e)
        | Ok j -> (
            match Option.value ~default:0 (int_member "payload_len" j) with
            | 0 ->
                count_rx (4 + n);
                Ok { hdr = j; payload = "" }
            | plen when plen < 0 || n + plen > max_frame () ->
                Error (Printf.sprintf "bad payload length %d" plen)
            | plen ->
                let p = Bytes.create plen in
                if not (really_read ic p plen) then Error "eof inside payload"
                else begin
                  count_rx (4 + n + plen);
                  Ok { hdr = j; payload = Bytes.unsafe_to_string p }
                end)
