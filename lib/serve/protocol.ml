(* Wire protocol: 4-byte big-endian length prefix, then that many bytes
   of JSON (the hand-rolled [Simsweep.Telemetry] flavour — no external
   dependency).  One request frame yields exactly one response frame, in
   order, per connection. *)

type json = Simsweep.Telemetry.json

(* A frame larger than this is a protocol error, not an allocation. *)
let max_frame = 256 * 1024 * 1024

type request =
  | Ping
  | Script of { script : string; timeout_s : float option }
  | Cec of { aiger : string; engine : string; timeout_s : float option }
  | Cache_stats

type response = {
  ok : bool;
  output : string;  (* printable output, or the error message *)
  cache_hits : int;
  cache_misses : int;
  elapsed_s : float;
}

let error_response ?(elapsed_s = 0.) msg =
  { ok = false; output = msg; cache_hits = 0; cache_misses = 0; elapsed_s }

open Simsweep.Telemetry

let timeout_field = function
  | Some s -> [ ("timeout_s", Float s) ]
  | None -> []

let request_to_json = function
  | Ping -> Obj [ ("type", String "ping") ]
  | Script { script; timeout_s } ->
      Obj
        ([ ("type", String "script"); ("script", String script) ]
        @ timeout_field timeout_s)
  | Cec { aiger; engine; timeout_s } ->
      Obj
        ([
           ("type", String "cec");
           ("aiger", String aiger);
           ("engine", String engine);
         ]
        @ timeout_field timeout_s)
  | Cache_stats -> Obj [ ("type", String "cache-stats") ]

let str_field name j =
  match member name j with
  | Some (String s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S: expected a string" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let timeout_of j =
  match member "timeout_s" j with
  | Some (Float s) -> Some s
  | Some (Int s) -> Some (float_of_int s)
  | _ -> None

let request_of_json j =
  match str_field "type" j with
  | Error e -> Error e
  | Ok "ping" -> Ok Ping
  | Ok "script" -> (
      match str_field "script" j with
      | Ok script -> Ok (Script { script; timeout_s = timeout_of j })
      | Error e -> Error e)
  | Ok "cec" -> (
      match (str_field "aiger" j, str_field "engine" j) with
      | Ok aiger, Ok engine -> Ok (Cec { aiger; engine; timeout_s = timeout_of j })
      | Error e, _ | _, Error e -> Error e)
  | Ok "cache-stats" -> Ok Cache_stats
  | Ok other -> Error ("unknown request type " ^ other)

let response_to_json r =
  Obj
    [
      ("ok", Bool r.ok);
      ("output", String r.output);
      ("cache_hits", Int r.cache_hits);
      ("cache_misses", Int r.cache_misses);
      ("elapsed_s", Float r.elapsed_s);
    ]

let response_of_json j =
  match (bool_member "ok" j, string_member "output" j) with
  | Some ok, Some output ->
      let int_field name = Option.value ~default:0 (int_member name j) in
      Ok
        {
          ok;
          output;
          cache_hits = int_field "cache_hits";
          cache_misses = int_field "cache_misses";
          elapsed_s = Option.value ~default:0. (float_member "elapsed_s" j);
        }
  | _ -> Error "malformed response (missing ok/output)"

(* {2 Shard frames}

   Coordinator <-> worker messages for multi-process sharded sweeping
   (lib/shard).  Same framing and JSON flavour as the daemon protocol;
   AIGER payloads travel as binary strings exactly like [Cec.aiger].
   Counter-examples are '0'/'1' strings, literals and variables are the
   SAT solver's integer encoding — stable across processes because
   [Sat.Cnf.load] maps network node [n] to variable [n] and both sides
   decode the same AIGER bytes. *)

type shard_task =
  | Shard_check of {
      shard : int;
      aiger : string;
      stall_conflicts : int;
      split_vars : int;
      direct_sat : bool;
      deadline_in : float option;
    }
  | Shard_cube of {
      shard : int;
      cube : int;
      aiger : string option;  (* cube formula; omitted when already loaded *)
      assume : int list;  (* solver literals fixing this cube *)
      freeze : int list;  (* vars the worker must keep assumable *)
      conflict_limit : int;
      clauses : int list list;  (* shared learnt clauses to import *)
      deadline_in : float option;
    }
  | Shard_quit

type shard_verdict =
  | Sv_proved
  | Sv_disproved of { cex : string; po : int }
  | Sv_undecided

type cube_result =
  | Cube_unsat
  | Cube_sat of { cex : string; po : int }
  | Cube_unknown

type shard_reply =
  | Shard_ready
  | Shard_verdict of {
      shard : int;
      verdict : shard_verdict;
      wall_s : float;
      conflicts : int;
    }
  | Shard_stalled of {
      shard : int;
      reduced : string;  (* engine-reduced miter: the cube formula *)
      vars : int list;  (* high-activity split candidates, hottest first *)
      wall_s : float;
    }
  | Shard_cube_reply of {
      shard : int;
      cube : int;
      result : cube_result;
      learnt : int list list;  (* short learnt clauses for the pool *)
      conflicts : int;
      wall_s : float;
    }

let cex_to_bits cex =
  String.init (Array.length cex) (fun i -> if cex.(i) then '1' else '0')

let bits_to_cex s = Array.init (String.length s) (fun i -> s.[i] = '1')

let ints_to_json l = List (List.map (fun i -> Int i) l)

let ints_of_json = function
  | List l ->
      List.fold_right
        (fun x acc ->
          match (x, acc) with Int i, Some r -> Some (i :: r) | _ -> None)
        l (Some [])
  | _ -> None

let clauses_to_json cs = List (List.map ints_to_json cs)

let clauses_of_json = function
  | List l ->
      List.fold_right
        (fun x acc ->
          match (ints_of_json x, acc) with
          | Some c, Some r -> Some (c :: r)
          | _ -> None)
        l (Some [])
  | _ -> None

let deadline_field = function
  | Some s -> [ ("deadline_in", Float s) ]
  | None -> []

let deadline_of j = float_member "deadline_in" j

let shard_task_to_json = function
  | Shard_check { shard; aiger; stall_conflicts; split_vars; direct_sat; deadline_in }
    ->
      Obj
        ([
           ("type", String "shard-check");
           ("shard", Int shard);
           ("aiger", String aiger);
           ("stall_conflicts", Int stall_conflicts);
           ("split_vars", Int split_vars);
           ("direct_sat", Bool direct_sat);
         ]
        @ deadline_field deadline_in)
  | Shard_cube
      { shard; cube; aiger; assume; freeze; conflict_limit; clauses; deadline_in }
    ->
      Obj
        ([
           ("type", String "shard-cube");
           ("shard", Int shard);
           ("cube", Int cube);
           ("assume", ints_to_json assume);
           ("freeze", ints_to_json freeze);
           ("conflict_limit", Int conflict_limit);
           ("clauses", clauses_to_json clauses);
         ]
        @ (match aiger with Some a -> [ ("aiger", String a) ] | None -> [])
        @ deadline_field deadline_in)
  | Shard_quit -> Obj [ ("type", String "shard-quit") ]

let shard_task_of_json j =
  match str_field "type" j with
  | Error e -> Error e
  | Ok "shard-check" -> (
      match (int_member "shard" j, str_field "aiger" j) with
      | Some shard, Ok aiger ->
          Ok
            (Shard_check
               {
                 shard;
                 aiger;
                 stall_conflicts =
                   Option.value ~default:max_int (int_member "stall_conflicts" j);
                 split_vars = Option.value ~default:0 (int_member "split_vars" j);
                 direct_sat =
                   Option.value ~default:false (bool_member "direct_sat" j);
                 deadline_in = deadline_of j;
               })
      | None, _ -> Error "shard-check: missing shard id"
      | _, Error e -> Error e)
  | Ok "shard-cube" -> (
      match
        ( int_member "shard" j,
          int_member "cube" j,
          Option.bind (member "assume" j) ints_of_json,
          Option.bind (member "clauses" j) clauses_of_json )
      with
      | Some shard, Some cube, Some assume, Some clauses ->
          Ok
            (Shard_cube
               {
                 shard;
                 cube;
                 aiger = string_member "aiger" j;
                 assume;
                 freeze =
                   Option.value ~default:[]
                     (Option.bind (member "freeze" j) ints_of_json);
                 conflict_limit =
                   Option.value ~default:max_int (int_member "conflict_limit" j);
                 clauses;
                 deadline_in = deadline_of j;
               })
      | _ -> Error "shard-cube: malformed fields")
  | Ok "shard-quit" -> Ok Shard_quit
  | Ok other -> Error ("unknown shard task " ^ other)

let shard_verdict_to_json = function
  | Sv_proved -> [ ("verdict", String "proved") ]
  | Sv_disproved { cex; po } ->
      [ ("verdict", String "disproved"); ("cex", String cex); ("po", Int po) ]
  | Sv_undecided -> [ ("verdict", String "undecided") ]

let shard_verdict_of_json j =
  match string_member "verdict" j with
  | Some "proved" -> Ok Sv_proved
  | Some "disproved" -> (
      match (string_member "cex" j, int_member "po" j) with
      | Some cex, Some po -> Ok (Sv_disproved { cex; po })
      | _ -> Error "disproved verdict: missing cex/po")
  | Some "undecided" -> Ok Sv_undecided
  | _ -> Error "missing verdict"

let cube_result_to_json = function
  | Cube_unsat -> [ ("result", String "unsat") ]
  | Cube_sat { cex; po } ->
      [ ("result", String "sat"); ("cex", String cex); ("po", Int po) ]
  | Cube_unknown -> [ ("result", String "unknown") ]

let cube_result_of_json j =
  match string_member "result" j with
  | Some "unsat" -> Ok Cube_unsat
  | Some "sat" -> (
      match (string_member "cex" j, int_member "po" j) with
      | Some cex, Some po -> Ok (Cube_sat { cex; po })
      | _ -> Error "sat cube: missing cex/po")
  | Some "unknown" -> Ok Cube_unknown
  | _ -> Error "missing cube result"

let shard_reply_to_json = function
  | Shard_ready -> Obj [ ("type", String "shard-ready") ]
  | Shard_verdict { shard; verdict; wall_s; conflicts } ->
      Obj
        ([
           ("type", String "shard-verdict");
           ("shard", Int shard);
           ("wall_s", Float wall_s);
           ("conflicts", Int conflicts);
         ]
        @ shard_verdict_to_json verdict)
  | Shard_stalled { shard; reduced; vars; wall_s } ->
      Obj
        [
          ("type", String "shard-stalled");
          ("shard", Int shard);
          ("reduced", String reduced);
          ("vars", ints_to_json vars);
          ("wall_s", Float wall_s);
        ]
  | Shard_cube_reply { shard; cube; result; learnt; conflicts; wall_s } ->
      Obj
        ([
           ("type", String "shard-cube-reply");
           ("shard", Int shard);
           ("cube", Int cube);
           ("learnt", clauses_to_json learnt);
           ("conflicts", Int conflicts);
           ("wall_s", Float wall_s);
         ]
        @ cube_result_to_json result)

let shard_reply_of_json j =
  match str_field "type" j with
  | Error e -> Error e
  | Ok "shard-ready" -> Ok Shard_ready
  | Ok "shard-verdict" -> (
      match (int_member "shard" j, shard_verdict_of_json j) with
      | Some shard, Ok verdict ->
          Ok
            (Shard_verdict
               {
                 shard;
                 verdict;
                 wall_s = Option.value ~default:0. (float_member "wall_s" j);
                 conflicts = Option.value ~default:0 (int_member "conflicts" j);
               })
      | None, _ -> Error "shard-verdict: missing shard id"
      | _, Error e -> Error e)
  | Ok "shard-stalled" -> (
      match
        ( int_member "shard" j,
          str_field "reduced" j,
          Option.bind (member "vars" j) ints_of_json )
      with
      | Some shard, Ok reduced, Some vars ->
          Ok
            (Shard_stalled
               {
                 shard;
                 reduced;
                 vars;
                 wall_s = Option.value ~default:0. (float_member "wall_s" j);
               })
      | _ -> Error "shard-stalled: malformed fields")
  | Ok "shard-cube-reply" -> (
      match
        ( int_member "shard" j,
          int_member "cube" j,
          cube_result_of_json j,
          Option.bind (member "learnt" j) clauses_of_json )
      with
      | Some shard, Some cube, Ok result, Some learnt ->
          Ok
            (Shard_cube_reply
               {
                 shard;
                 cube;
                 result;
                 learnt;
                 conflicts = Option.value ~default:0 (int_member "conflicts" j);
                 wall_s = Option.value ~default:0. (float_member "wall_s" j);
               })
      | _ -> Error "shard-cube-reply: malformed fields")
  | Ok other -> Error ("unknown shard reply " ^ other)

(* {2 Framing} *)

let write_frame oc (j : json) =
  let body = to_string j in
  let n = String.length body in
  if n > max_frame then invalid_arg "Protocol.write_frame: frame too large";
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int n);
  output_bytes oc hdr;
  output_string oc body;
  flush oc

let really_read ic buf len =
  let off = ref 0 in
  (try
     while !off < len do
       let r = input ic buf !off (len - !off) in
       if r = 0 then raise End_of_file;
       off := !off + r
     done
     (* A peer that died (SIGKILLed shard worker, reset client socket)
        surfaces as [Sys_error] rather than a clean EOF — same outcome
        for the reader: the frame is not coming. *)
   with End_of_file | Sys_error _ -> ());
  !off = len

let read_frame ic : (json, string) result =
  let hdr = Bytes.create 4 in
  if not (really_read ic hdr 4) then Error "eof"
  else
    let n = Int32.to_int (Bytes.get_int32_be hdr 0) in
    if n < 0 || n > max_frame then
      Error (Printf.sprintf "bad frame length %d" n)
    else
      let body = Bytes.create n in
      if not (really_read ic body n) then Error "eof inside frame"
      else
        match parse (Bytes.to_string body) with
        | Ok j -> Ok j
        | Error e -> Error ("bad frame json: " ^ e)
