(* The sweep daemon: accept loop + per-connection handler threads.

   Connections are cheap OS threads (they spend their life blocked on
   socket reads); the heavy work — engine runs — is serialized onto one
   shared domain pool by the FIFO scheduler, so concurrent clients get
   fair turns and the machine is never oversubscribed.  Every session
   feeds and consults the one shared equivalence cache. *)

type addr = Unix_path of string | Tcp of string * int

type config = {
  addr : addr;
  cache_entries : int;
  cache_bytes : int;
  default_timeout_s : float option;
  max_frame_bytes : int;  (* protocol frame cap (header + payload) *)
  pool : Par.Pool.t option;  (* [None]: the process-wide default pool *)
}

let default_config =
  {
    addr = Unix_path "simsweep.sock";
    cache_entries = 1_000_000;
    cache_bytes = 256_000_000;
    default_timeout_s = None;
    max_frame_bytes = Protocol.default_max_frame;
    pool = None;
  }

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  sockaddr : Unix.sockaddr;
  cache : Ecache.t;
  sched : Scheduler.t;
  pool : Par.Pool.t;
  stopping : bool Atomic.t;
  (* Self-pipe waking the accept loop: closing a listening socket does
     not interrupt a thread blocked in [accept], so the loop selects on
     the listen fd plus this pipe and [stop] writes one byte. *)
  stop_rd : Unix.file_descr;
  stop_wr : Unix.file_descr;
  mutable accept_thread : Thread.t option;
  conns : (int, Thread.t) Hashtbl.t;  (* guarded by conns_mu *)
  conns_mu : Mutex.t;
}

let sockaddr t = t.sockaddr
let ecache t = t.cache

let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* A socket file may be left behind by a dead daemon (stale: bind would
   fail for no good reason) or owned by a live one (unlinking it would
   silently strand that daemon's clients).  Only a connection attempt
   tells the two apart. *)
let unix_socket_alive path =
  let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> close_noerr probe)
    (fun () ->
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _) -> false)

let resolve_addr = function
  | Unix_path path ->
      (match (Unix.lstat path).Unix.st_kind with
      | Unix.S_SOCK ->
          if unix_socket_alive path then
            failwith
              (Printf.sprintf
                 "%s: another daemon is already listening on this socket" path)
          else Unix.unlink path  (* stale leftover of a dead daemon *)
      | _ -> ()  (* not ours to delete; bind will report the conflict *)
      | exception Unix.Unix_error (ENOENT, _, _) -> ());
      (Unix.ADDR_UNIX path, Unix.PF_UNIX)
  | Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      (Unix.ADDR_INET (ip, port), Unix.PF_INET)

let handle_request t session req =
  let started = Unix.gettimeofday () in
  let finish (result, hits, misses) =
    let elapsed_s = Unix.gettimeofday () -. started in
    match result with
    | Ok output ->
        {
          Protocol.ok = true;
          output;
          cache_hits = hits;
          cache_misses = misses;
          elapsed_s;
        }
    | Error e ->
        { Protocol.ok = false; output = e; cache_hits = hits;
          cache_misses = misses; elapsed_s }
  in
  let cancel_for timeout_s =
    match
      (match timeout_s with Some _ -> timeout_s | None -> t.config.default_timeout_s)
    with
    | Some s -> Some (Par.Cancel.create ~deadline_in:s ())
    | None -> None
  in
  match req with
  | Protocol.Ping -> finish (Ok "pong", 0, 0)
  | Protocol.Cache_stats ->
      let entries, hits, misses = Ecache.stats t.cache in
      let j =
        Simsweep.Telemetry.(
          Obj
            [ ("entries", Int entries); ("hits", Int hits);
              ("misses", Int misses);
              ("bytes", Int (Ecache.bytes_used t.cache)) ])
      in
      finish (Ok (Simsweep.Telemetry.to_string j), 0, 0)
  | Protocol.Script { script; timeout_s } ->
      let cancel = cancel_for timeout_s in
      Scheduler.run t.sched (fun () ->
          let r, h, m = Session.run_script session ?cancel script in
          finish (r, h, m))
  | Protocol.Cec { aiger; engine; timeout_s } ->
      let cancel = cancel_for timeout_s in
      Scheduler.run t.sched (fun () ->
          let r, h, m = Session.run_cec session ?cancel ~aiger ~engine () in
          finish (r, h, m))

let handle_conn t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let session = Session.create ~pool:t.pool ~ecache:t.cache in
  let rec loop () =
    match Protocol.read_frame ic with
    | Error _ -> ()  (* client went away or spoke garbage: drop it *)
    | Ok inc ->
        let resp =
          match Protocol.request_of_frame inc with
          | Error e -> Protocol.error_response ("bad request: " ^ e)
          | Ok req -> (
              try handle_request t session req
              with e ->
                Protocol.error_response
                  ("internal error: " ^ Printexc.to_string e))
        in
        (* A write failure means the client hung up mid-request.  With
           SIGPIPE ignored (see [start]) the write surfaces as
           EPIPE/ECONNRESET — through the buffered channel as [Sys_error],
           or directly as [Unix_error]. *)
        (match Protocol.write_frame oc (Protocol.response_to_json resp) with
        | () -> loop ()
        | exception (Sys_error _ | Unix.Unix_error _) -> ())
  in
  Fun.protect ~finally:(fun () -> close_noerr fd) loop

let accept_loop t =
  let next_id = ref 0 in
  let running = ref true in
  while !running do
    match Unix.select [ t.listen_fd; t.stop_rd ] [] [] (-1.) with
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | readable, _, _ ->
        if Atomic.get t.stopping || List.mem t.stop_rd readable then
          running := false
        else if List.mem t.listen_fd readable then begin
          match Unix.accept t.listen_fd with
          | exception Unix.Unix_error (_, _, _) ->
              if Atomic.get t.stopping then running := false
          | fd, _ ->
              let id = !next_id in
              incr next_id;
              let th =
                Thread.create
                  (fun () ->
                    Fun.protect
                      ~finally:(fun () ->
                        Mutex.lock t.conns_mu;
                        Hashtbl.remove t.conns id;
                        Mutex.unlock t.conns_mu)
                      (fun () -> handle_conn t fd))
                  ()
              in
              Mutex.lock t.conns_mu;
              Hashtbl.replace t.conns id th;
              Mutex.unlock t.conns_mu
        end
  done

let start ?(config = default_config) () =
  (* A client that disconnects before reading its response would otherwise
     deliver SIGPIPE on the response write, whose default disposition kills
     the whole process — one impatient client must not take down the warm
     cache for everyone.  Ignored, the write fails with EPIPE and the
     connection handler drops that client alone. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> () (* platform without SIGPIPE *));
  Protocol.set_max_frame config.max_frame_bytes;
  let sockaddr, domain = resolve_addr config.addr in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match config.addr with
  | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
  | Unix_path _ -> ());
  Unix.bind fd sockaddr;
  Unix.listen fd 64;
  let stop_rd, stop_wr = Unix.pipe () in
  let t =
    {
      config;
      listen_fd = fd;
      sockaddr = Unix.getsockname fd;
      cache =
        Ecache.create ~max_entries:config.cache_entries
          ~max_bytes:config.cache_bytes ();
      sched = Scheduler.create ();
      pool =
        (match config.pool with
        | Some p -> p
        | None -> Par.Pool.default ());
      stopping = Atomic.make false;
      stop_rd;
      stop_wr;
      accept_thread = None;
      conns = Hashtbl.create 16;
      conns_mu = Mutex.create ();
    }
  in
  t.accept_thread <- Some (Thread.create accept_loop t);
  t

let wait t = match t.accept_thread with Some th -> Thread.join th | None -> ()

let stop t =
  Atomic.set t.stopping true;
  (try ignore (Unix.write t.stop_wr (Bytes.make 1 '!') 0 1)
   with Unix.Unix_error _ -> ());
  wait t;
  close_noerr t.listen_fd;
  close_noerr t.stop_rd;
  close_noerr t.stop_wr;
  (* Let in-flight connections drain; new ones can no longer arrive. *)
  let snapshot () =
    Mutex.lock t.conns_mu;
    let l = Hashtbl.fold (fun _ th acc -> th :: acc) t.conns [] in
    Mutex.unlock t.conns_mu;
    l
  in
  List.iter Thread.join (snapshot ());
  match t.config.addr with
  | Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ()
