(** Fair FIFO scheduler serializing requests onto the shared pool.

    [run t f] blocks until every earlier [run] call has finished, then
    runs [f] exclusively.  Tickets are served in strict arrival order —
    unlike a bare mutex, a flood of requests from one connection cannot
    starve another. *)

type t

val create : unit -> t
val run : t -> (unit -> 'a) -> 'a

(** Requests currently queued or running. *)
val pending : t -> int
