(** Client side of the daemon protocol. *)

type t

(** ["host:port"] (or [":port"], meaning 127.0.0.1) is TCP; anything
    else is a Unix-domain socket path. *)
val parse_addr : string -> Server.addr

val connect : Server.addr -> (t, string) result
val close : t -> unit

(** One request/response round trip. *)
val request : t -> Protocol.request -> (Protocol.response, string) result
