(* Client side of the daemon protocol, shared by the CLI binaries. *)

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

(* "host:port" is TCP, anything else a Unix socket path. *)
let parse_addr s : Server.addr =
  match String.rindex_opt s ':' with
  | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p >= 0 -> Server.Tcp ((if host = "" then "127.0.0.1" else host), p)
      | _ -> Server.Unix_path s)
  | None -> Server.Unix_path s

let connect addr =
  let sockaddr, domain =
    match addr with
    | Server.Unix_path path -> (Unix.ADDR_UNIX path, Unix.PF_UNIX)
    | Server.Tcp (host, port) ->
        let ip =
          try Unix.inet_addr_of_string host
          with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
        in
        (Unix.ADDR_INET (ip, port), Unix.PF_INET)
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  match Unix.connect fd sockaddr with
  | () ->
      Ok
        {
          fd;
          ic = Unix.in_channel_of_descr fd;
          oc = Unix.out_channel_of_descr fd;
        }
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Unix.error_message e)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let request t req : (Protocol.response, string) result =
  let hdr, payload = Protocol.request_to_frame req in
  match Protocol.write_frame ~payload t.oc hdr with
  | exception Sys_error e -> Error ("send: " ^ e)
  | () -> (
      match Protocol.read_frame t.ic with
      | Error e -> Error ("receive: " ^ e)
      | Ok inc -> Protocol.response_of_json inc.Protocol.hdr)
