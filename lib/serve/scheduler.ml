(* Fair FIFO request scheduler.  Connection handlers run on their own
   threads, but heavy work (engine runs) shares one domain pool — so the
   pool is handed to one request at a time, in strict arrival order.  A
   plain mutex would do mutual exclusion but OCaml mutexes make no
   fairness promise; the ticket queue does: tickets are served in the
   order [run] was entered. *)

type t = {
  mu : Mutex.t;
  cv : Condition.t;
  mutable next : int;  (* next ticket to hand out *)
  mutable serving : int;  (* ticket currently allowed to run *)
}

let create () =
  { mu = Mutex.create (); cv = Condition.create (); next = 0; serving = 0 }

let run t f =
  Mutex.lock t.mu;
  let my = t.next in
  t.next <- t.next + 1;
  while t.serving <> my do
    Condition.wait t.cv t.mu
  done;
  Mutex.unlock t.mu;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock t.mu;
      t.serving <- t.serving + 1;
      Condition.broadcast t.cv;
      Mutex.unlock t.mu)
    f

let pending t =
  Mutex.lock t.mu;
  let n = t.next - t.serving in
  Mutex.unlock t.mu;
  n
