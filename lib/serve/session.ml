(* One connected client's state: a private shell interpreter (current
   network + store) over the server's shared pool, plus a private
   counting view of the shared equivalence cache so each response can
   report the cache effects of its own request. *)

type t = {
  shell : Shell.Command.state;
  take : unit -> int * int;  (* (hits, misses) since last take *)
}

let create ~pool ~ecache =
  let pcache, take = Ecache.view ecache in
  { shell = Shell.Command.create ~pool ~pcache (); take }

let run_script t ?cancel script =
  ignore (t.take ());
  let r = Shell.Command.exec_script ?cancel t.shell script in
  let hits, misses = t.take () in
  (r, hits, misses)

let run_cec t ?cancel ~aiger ~engine () =
  ignore (t.take ());
  let r =
    match Aig.Aiger_io.of_string aiger with
    | exception Aig.Aiger_io.Parse_error e -> Error ("parse error: " ^ e)
    | g -> Shell.Command.run_cec ?cancel t.shell g engine
  in
  let hits, misses = t.take () in
  (r, hits, misses)
