(** Per-connection session: a private {!Shell.Command.state} (current
    network + named store) over the server's shared pool, with a private
    counting view of the shared equivalence cache.

    Sessions are isolated — nothing a session stores is visible to
    another — but all sessions read and feed the same equivalence cache.
    A session is single-threaded; the server serializes its requests. *)

type t

val create : pool:Par.Pool.t -> ecache:Ecache.t -> t

(** Run a shell script; returns the script result plus the (hits,
    misses) this request charged to the equivalence cache. *)
val run_script :
  t -> ?cancel:Par.Cancel.t -> string -> (string, string) result * int * int

(** Check a miter shipped as AIGER text with the named [cec] engine. *)
val run_cec :
  t ->
  ?cancel:Par.Cancel.t ->
  aiger:string ->
  engine:string ->
  unit ->
  (string, string) result * int * int
