(** CEC as a service: a persistent sweep daemon.

    The server listens on a Unix-domain or TCP socket and speaks the
    length-prefixed JSON {!Protocol}.  Each connection gets an isolated
    {!Session} (its own current network and store) running on its own
    thread; heavy work is serialized onto one shared domain pool in fair
    FIFO order ({!Scheduler}); every request may carry a wall-clock
    timeout enforced by a {!Par.Cancel} deadline token; and all sessions
    share one cross-request equivalence cache ({!Ecache}), so a miter —
    or any of its internal node pairs — proved once is never proved
    again, whichever client asks next. *)

type addr = Unix_path of string | Tcp of string * int

type config = {
  addr : addr;
  cache_entries : int;  (** equivalence-cache entry cap *)
  cache_bytes : int;
      (** equivalence-cache byte cap (cone keys can be megabytes each, so
          the entry cap alone bounds no memory) *)
  default_timeout_s : float option;
      (** applied to requests that carry no timeout of their own *)
  max_frame_bytes : int;
      (** protocol frame cap, header + payload
          ({!Protocol.set_max_frame}, applied at {!start}) *)
  pool : Par.Pool.t option;  (** [None]: the process-wide default pool *)
}

(** Unix socket [simsweep.sock], 1M cache entries / 256 MB, no timeout,
    256 MB frame cap. *)
val default_config : config

type t

(** Bind, listen and start the accept loop (on its own thread); returns
    immediately.  Ignores SIGPIPE process-wide, so a client that hangs up
    before reading its response costs only that connection.  A stale Unix
    socket file (no daemon answers a probe connect) is removed before
    bind; raises [Failure] when a live daemon already listens on the
    requested path. *)
val start : ?config:config -> unit -> t

(** The bound address — useful with [Tcp (host, 0)] (ephemeral port). *)
val sockaddr : t -> Unix.sockaddr

val ecache : t -> Ecache.t

(** Block until the accept loop exits (i.e. until {!stop}). *)
val wait : t -> unit

(** Stop accepting, drain in-flight connections, remove a Unix socket
    file.  Blocks until every connection handler has returned. *)
val stop : t -> unit
