(* Cross-request equivalence cache: proved PO verdicts (constant-false or
   a distinguishing counter-example) and proved candidate pairs, keyed by
   the structural/NPN cone keys of [Aig.Shash].  One cache is shared by
   every session of a daemon; all access is serialized by one mutex (the
   engines consult it once per PO pre-pass and once per candidate pair, so
   the lock is never hot). *)

type t = {
  mu : Mutex.t;
  pos : (string, Aig.Pcache.po_verdict) Hashtbl.t;
  pairs : (string, unit) Hashtbl.t;
  max_entries : int;
  max_bytes : int;
  mutable bytes : int;  (* accumulated entry cost, see [po_cost] *)
  mutable hits : int;  (* lifetime, across all sessions *)
  mutable misses : int;
}

let create ?(max_entries = 1_000_000) ?(max_bytes = 256_000_000) () =
  {
    mu = Mutex.create ();
    pos = Hashtbl.create 1024;
    pairs = Hashtbl.create 4096;
    max_entries = max 0 max_entries;
    max_bytes = max 0 max_bytes;
    bytes = 0;
    hits = 0;
    misses = 0;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* Approximate heap cost of one entry: the key string dominates (a
   structural cone key covers up to 200k nodes, i.e. megabytes), plus a
   flat allowance for the hashtable slot and, for a PO verdict, its
   sparse counter-example. *)
let entry_overhead = 64

let po_cost k v =
  String.length k + entry_overhead
  + (match v with
    | Aig.Pcache.Const_false -> 0
    | Aig.Pcache.Cex cex -> 32 * List.length cex)

let pair_cost k = String.length k + entry_overhead

(* At capacity — by entry count or by accumulated bytes (the entry cap
   alone is no memory bound: a million 1 MB cone keys is a terabyte) —
   the cache stops admitting new keys (existing keys may still be
   refreshed): dead simple, bounded, and never invalidates an entry a
   running request just read. *)
let full t cost =
  Hashtbl.length t.pos + Hashtbl.length t.pairs >= t.max_entries
  || t.bytes + cost > t.max_bytes

let view t =
  let hits = ref 0 and misses = ref 0 in
  let hit () =
    incr hits;
    t.hits <- t.hits + 1
  and miss () =
    incr misses;
    t.misses <- t.misses + 1
  in
  let hook =
    {
      Aig.Pcache.lookup_po =
        (fun k ->
          locked t (fun () ->
              match Hashtbl.find_opt t.pos k with
              | Some v ->
                  hit ();
                  Some v
              | None ->
                  miss ();
                  None));
      record_po =
        (fun k v ->
          locked t (fun () ->
              match Hashtbl.find_opt t.pos k with
              | Some old ->
                  t.bytes <- t.bytes - po_cost k old + po_cost k v;
                  Hashtbl.replace t.pos k v
              | None ->
                  let c = po_cost k v in
                  if not (full t c) then begin
                    t.bytes <- t.bytes + c;
                    Hashtbl.replace t.pos k v
                  end));
      lookup_pair =
        (fun k ->
          locked t (fun () ->
              if Hashtbl.mem t.pairs k then begin
                hit ();
                true
              end
              else begin
                miss ();
                false
              end));
      record_pair =
        (fun k ->
          locked t (fun () ->
              if not (Hashtbl.mem t.pairs k) then begin
                let c = pair_cost k in
                if not (full t c) then begin
                  t.bytes <- t.bytes + c;
                  Hashtbl.replace t.pairs k ()
                end
              end));
    }
  in
  let take () =
    locked t (fun () ->
        let r = (!hits, !misses) in
        hits := 0;
        misses := 0;
        r)
  in
  (hook, take)

let stats t =
  locked t (fun () ->
      (Hashtbl.length t.pos + Hashtbl.length t.pairs, t.hits, t.misses))

let bytes_used t = locked t (fun () -> t.bytes)
