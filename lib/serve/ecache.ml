(* Cross-request equivalence cache: proved PO verdicts (constant-false or
   a distinguishing counter-example) and proved candidate pairs, keyed by
   the structural/NPN cone keys of [Aig.Shash].  One cache is shared by
   every session of a daemon; all access is serialized by one mutex (the
   engines consult it once per PO pre-pass and once per candidate pair, so
   the lock is never hot). *)

type t = {
  mu : Mutex.t;
  pos : (string, Aig.Pcache.po_verdict) Hashtbl.t;
  pairs : (string, unit) Hashtbl.t;
  max_entries : int;
  mutable hits : int;  (* lifetime, across all sessions *)
  mutable misses : int;
}

let create ?(max_entries = 1_000_000) () =
  {
    mu = Mutex.create ();
    pos = Hashtbl.create 1024;
    pairs = Hashtbl.create 4096;
    max_entries = max 0 max_entries;
    hits = 0;
    misses = 0;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* At capacity the cache stops admitting new keys (existing keys may
   still be refreshed): dead simple, bounded, and never invalidates an
   entry a running request just read. *)
let full t = Hashtbl.length t.pos + Hashtbl.length t.pairs >= t.max_entries

let view t =
  let hits = ref 0 and misses = ref 0 in
  let hit () =
    incr hits;
    t.hits <- t.hits + 1
  and miss () =
    incr misses;
    t.misses <- t.misses + 1
  in
  let hook =
    {
      Aig.Pcache.lookup_po =
        (fun k ->
          locked t (fun () ->
              match Hashtbl.find_opt t.pos k with
              | Some v ->
                  hit ();
                  Some v
              | None ->
                  miss ();
                  None));
      record_po =
        (fun k v ->
          locked t (fun () ->
              if Hashtbl.mem t.pos k || not (full t) then
                Hashtbl.replace t.pos k v));
      lookup_pair =
        (fun k ->
          locked t (fun () ->
              if Hashtbl.mem t.pairs k then begin
                hit ();
                true
              end
              else begin
                miss ();
                false
              end));
      record_pair =
        (fun k ->
          locked t (fun () ->
              if Hashtbl.mem t.pairs k || not (full t) then
                Hashtbl.replace t.pairs k ()));
    }
  in
  let take () =
    locked t (fun () ->
        let r = (!hits, !misses) in
        hits := 0;
        misses := 0;
        r)
  in
  (hook, take)

let stats t =
  locked t (fun () ->
      (Hashtbl.length t.pos + Hashtbl.length t.pairs, t.hits, t.misses))
