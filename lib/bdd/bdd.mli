(** Reduced ordered binary decision diagrams (Bryant).

    A classical BDD package with a unique table and a computed-table cache.
    It serves as one engine of the portfolio checker (the paper attributes
    the commercial tool's behaviour to a combination of engines; BDDs shine
    on symmetric control logic such as the [voter] case and blow up on
    multipliers, which reproduces the crossovers of Table II).

    Managers enforce a node budget: exceeding it raises {!Node_limit},
    letting the portfolio abort this engine and fall back to another.
    They also enforce a {e step} budget and accept a cancellation token —
    a pathological variable order can keep re-traversing memoised
    structure without allocating fresh nodes, which the node limit alone
    never catches; both conditions raise {!Timeout}. *)

exception Node_limit

(** Step budget exhausted, or the manager's cancellation token fired. *)
exception Timeout

type man

(** A BDD handle, valid within its manager. *)
type node

(** [create ~num_vars ~node_limit ?step_limit ?cancel ()] makes a manager
    with the identity variable order over [num_vars] variables.  Every
    internal node construction (unique-table hits included) counts one
    step against [step_limit]; [cancel] is polled every 256 steps. *)
val create :
  ?node_limit:int -> ?step_limit:int -> ?cancel:Par.Cancel.t -> num_vars:int ->
  unit -> man

val bdd_false : man -> node
val bdd_true : man -> node

(** The function of input variable [i]. *)
val var : man -> int -> node

val bdd_not : man -> node -> node
val bdd_and : man -> node -> node -> node
val bdd_or : man -> node -> node -> node
val bdd_xor : man -> node -> node -> node
val ite : man -> node -> node -> node -> node

val is_false : man -> node -> bool
val is_true : man -> node -> bool
val equal : node -> node -> bool

(** Live node count (unique-table size). *)
val size : man -> int

(** Steps consumed so far (node constructions, cache hits included). *)
val steps : man -> int

(** [any_sat m n] is a satisfying assignment over all manager variables
    (unconstrained variables default to [false]), or [None] for the
    constant-false BDD. *)
val any_sat : man -> node -> bool array option

(** Number of satisfying assignments over the manager's variables, as a
    float (may be huge). *)
val count_sat : man -> node -> float

(** Evaluate under a full assignment. *)
val eval : man -> node -> bool array -> bool

(** [of_output m g po] builds the BDD of output [po] of an AIG, mapping PI
    index [i] to manager variable [i].  Raises {!Node_limit} when the
    manager budget is exceeded. *)
val of_output : man -> Aig.Network.t -> int -> node

(** Equivalence check of a miter: [check g ~node_limit] is [`Equivalent],
    [`Inequivalent (cex, po)], [`Node_limit] when the node budget blows
    up, or [`Timeout] when the step budget is exhausted or [cancel]
    fires.  [step_limit] defaults to [64 * node_limit], so even the
    default configuration cannot stall indefinitely on a pathological
    variable order. *)
val check :
  ?node_limit:int ->
  ?step_limit:int ->
  ?cancel:Par.Cancel.t ->
  Aig.Network.t ->
  [ `Equivalent | `Inequivalent of Sim.Cex.t * int | `Node_limit | `Timeout ]
