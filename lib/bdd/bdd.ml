exception Node_limit
exception Timeout

type node = int

type man = {
  num_vars : int;
  node_limit : int;
  step_limit : int;
  cancel : Par.Cancel.t option;
  mutable steps : int;  (* every [mk] call, cache hits included *)
  mutable var_ : int array;  (* per node: variable index; terminals: num_vars *)
  mutable lo : int array;
  mutable hi : int array;
  mutable n : int;
  unique : (int, int) Hashtbl.t;  (* packed (var,lo,hi) -> node *)
  cache_and : (int, int) Hashtbl.t;
  cache_xor : (int, int) Hashtbl.t;
  cache_not : (int, int) Hashtbl.t;
}

let pack3 a b c = ((a * 0x1f_ffff) + b) * 0x1f_ffff + c
(* Injective for node ids below 2^24 (the node limit is capped below). *)
let pack2 a b = (a lsl 24) lor b

let create ?(node_limit = 2_000_000) ?(step_limit = max_int) ?cancel ~num_vars () =
  if node_limit > 1 lsl 24 then invalid_arg "Bdd.create: node_limit above 2^24";
  let cap = 1024 in
  let m =
    {
      num_vars;
      node_limit;
      step_limit;
      cancel;
      steps = 0;
      var_ = Array.make cap num_vars;
      lo = Array.make cap 0;
      hi = Array.make cap 0;
      n = 2;
      unique = Hashtbl.create 4096;
      cache_and = Hashtbl.create 4096;
      cache_xor = Hashtbl.create 4096;
      cache_not = Hashtbl.create 1024;
    }
  in
  (* Node 0 = false, node 1 = true.  Terminal [var_] sentinels sort last. *)
  m.lo.(0) <- 0;
  m.hi.(0) <- 0;
  m.lo.(1) <- 1;
  m.hi.(1) <- 1;
  m

let bdd_false _ = 0
let bdd_true _ = 1
let is_false _ n = n = 0
let is_true _ n = n = 1
let equal (a : node) b = a = b
let size m = m.n
let steps m = m.steps

(* The step budget counts every [mk] call — cache hits included — because
   a pathological variable order can spend unbounded time re-traversing
   memoised structure without allocating a single fresh node, which the
   node limit alone never catches. *)
let mk m v lo hi =
  m.steps <- m.steps + 1;
  if m.steps >= m.step_limit then raise Timeout;
  (match m.cancel with
  | Some c when m.steps land 255 = 0 && Par.Cancel.poll c -> raise Timeout
  | _ -> ());
  if lo = hi then lo
  else begin
    let key = pack3 v lo hi in
    (* Collisions are resolved by verifying fields. *)
    let rec find = function
      | [] -> None
      | id :: rest ->
          if m.var_.(id) = v && m.lo.(id) = lo && m.hi.(id) = hi then Some id
          else find rest
    in
    match find (Hashtbl.find_all m.unique key) with
    | Some id -> id
    | None ->
        if m.n >= m.node_limit then raise Node_limit;
        if m.n = Array.length m.var_ then begin
          let cap = 2 * m.n in
          let grow a def =
            let b = Array.make cap def in
            Array.blit a 0 b 0 m.n;
            b
          in
          m.var_ <- grow m.var_ m.num_vars;
          m.lo <- grow m.lo 0;
          m.hi <- grow m.hi 0
        end;
        let id = m.n in
        m.n <- id + 1;
        m.var_.(id) <- v;
        m.lo.(id) <- lo;
        m.hi.(id) <- hi;
        Hashtbl.add m.unique key id;
        id
  end

let var m i =
  if i < 0 || i >= m.num_vars then invalid_arg "Bdd.var: index out of range";
  mk m i 0 1

let rec bdd_not m f =
  if f = 0 then 1
  else if f = 1 then 0
  else
    match Hashtbl.find_opt m.cache_not f with
    | Some r -> r
    | None ->
        let r = mk m m.var_.(f) (bdd_not m m.lo.(f)) (bdd_not m m.hi.(f)) in
        Hashtbl.replace m.cache_not f r;
        r

let rec bdd_and m f g =
  if f = g then f
  else if f = 0 || g = 0 then 0
  else if f = 1 then g
  else if g = 1 then f
  else begin
    let f, g = if f <= g then (f, g) else (g, f) in
    let key = pack2 f g in
    match Hashtbl.find_opt m.cache_and key with
    | Some r -> r
    | None ->
        let vf = m.var_.(f) and vg = m.var_.(g) in
        let v = min vf vg in
        let f0 = if vf = v then m.lo.(f) else f
        and f1 = if vf = v then m.hi.(f) else f in
        let g0 = if vg = v then m.lo.(g) else g
        and g1 = if vg = v then m.hi.(g) else g in
        let r = mk m v (bdd_and m f0 g0) (bdd_and m f1 g1) in
        Hashtbl.replace m.cache_and key r;
        r
  end

let rec bdd_xor m f g =
  if f = g then 0
  else if f = 0 then g
  else if g = 0 then f
  else if f = 1 then bdd_not m g
  else if g = 1 then bdd_not m f
  else begin
    let f, g = if f <= g then (f, g) else (g, f) in
    let key = pack2 f g in
    match Hashtbl.find_opt m.cache_xor key with
    | Some r -> r
    | None ->
        let vf = m.var_.(f) and vg = m.var_.(g) in
        let v = min vf vg in
        let f0 = if vf = v then m.lo.(f) else f
        and f1 = if vf = v then m.hi.(f) else f in
        let g0 = if vg = v then m.lo.(g) else g
        and g1 = if vg = v then m.hi.(g) else g in
        let r = mk m v (bdd_xor m f0 g0) (bdd_xor m f1 g1) in
        Hashtbl.replace m.cache_xor key r;
        r
  end

let bdd_or m f g = bdd_not m (bdd_and m (bdd_not m f) (bdd_not m g))
let ite m f g h = bdd_or m (bdd_and m f g) (bdd_and m (bdd_not m f) h)

let any_sat m f =
  if f = 0 then None
  else begin
    let a = Array.make m.num_vars false in
    let rec walk f =
      if f = 1 then ()
      else if m.lo.(f) <> 0 then walk m.lo.(f)
      else begin
        a.(m.var_.(f)) <- true;
        walk m.hi.(f)
      end
    in
    walk f;
    Some a
  end

let count_sat m f =
  let memo = Hashtbl.create 256 in
  (* Fraction of assignments satisfying f below variable v. *)
  let rec frac f =
    if f = 0 then 0.
    else if f = 1 then 1.
    else
      match Hashtbl.find_opt memo f with
      | Some r -> r
      | None ->
          let r = 0.5 *. (frac m.lo.(f) +. frac m.hi.(f)) in
          Hashtbl.replace memo f r;
          r
  in
  frac f *. (2. ** float_of_int m.num_vars)

let eval m f a =
  let rec go f = if f <= 1 then f = 1 else if a.(m.var_.(f)) then go m.hi.(f) else go m.lo.(f) in
  go f

let of_output m g po =
  let map = Array.make (Aig.Network.num_nodes g) (-1) in
  map.(0) <- 0;
  (* Build only the cone of the requested output. *)
  let cone = Aig.Cone.tfi g ~roots:[| Aig.Lit.node (Aig.Network.po g po) |] in
  Aig.Network.iter_nodes g (fun n ->
      if cone.(n) then
        if Aig.Network.is_pi g n then map.(n) <- var m (Aig.Network.pi_index g n)
        else if Aig.Network.is_and g n then begin
          let f0 = Aig.Network.fanin0 g n and f1 = Aig.Network.fanin1 g n in
          let b0 = map.(Aig.Lit.node f0) in
          let b0 = if Aig.Lit.is_compl f0 then bdd_not m b0 else b0 in
          let b1 = map.(Aig.Lit.node f1) in
          let b1 = if Aig.Lit.is_compl f1 then bdd_not m b1 else b1 in
          map.(n) <- bdd_and m b0 b1
        end);
  let l = Aig.Network.po g po in
  let b = map.(Aig.Lit.node l) in
  if Aig.Lit.is_compl l then bdd_not m b else b

let check ?(node_limit = 2_000_000) ?step_limit ?cancel g =
  (* The default step budget scales with the node budget: a manager that
     stays within its node limit but keeps re-traversing it gets cut off
     after a generous multiple of the allocation bound. *)
  let step_limit =
    match step_limit with Some s -> s | None -> 64 * node_limit
  in
  if Par.Cancel.poll_opt cancel then `Timeout
  else
  let m = create ~node_limit ~step_limit ?cancel ~num_vars:(Aig.Network.num_pis g) () in
  try
    let rec go = function
      | [] -> `Equivalent
      | po :: rest -> (
          let b = of_output m g po in
          match any_sat m b with
          | None -> go rest
          | Some cex -> `Inequivalent (cex, po))
    in
    go (Aig.Miter.unsolved_outputs g)
  with
  | Node_limit -> `Node_limit
  | Timeout -> `Timeout
