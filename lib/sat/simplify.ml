(* CNF preprocessing: bounded variable elimination, subsumption and
   self-subsuming resolution, equivalent-literal substitution over the
   binary implication graph, and XOR extraction with GF(2) elimination.

   The pipeline works on a standalone clause database (occurrence lists
   per variable, lazy deletion, level-0 unit propagation) and returns the
   simplified clauses together with a {e reconstruction stack} that maps
   any model of the simplified formula back to a model of the original
   one — the contract `Sat.Sweep` depends on, since every counter-example
   it reports is replayed on the miter by the fuzz oracle and the
   `Sim.Pcheck` cache.

   Reconstruction follows MiniSat's SimpSolver: eliminating variable v
   stores the smaller phase's clauses (v's literal rotated to the front)
   followed by a unit record of the opposite literal.  [extend_model]
   processes records most-recent-first: the unit sets v's default value,
   then each stored clause whose other literals are all false overrides
   it.  Equivalent-literal substitution stores a direct v := literal
   binding.

   Every loop polls [Par.Cancel] (at pass boundaries and every ~64 inner
   iterations); a cancelled run returns the partially simplified — still
   equisatisfiable — database, so daemon deadlines and portfolio racing
   hold even when a request dies inside preprocessing. *)

let neg l = l lxor 1

type config = {
  bve : bool;  (* bounded variable elimination *)
  bve_grow : int;  (* resolvent count may exceed removed count by this *)
  bve_max_occ : int;  (* skip vars with more total occurrences *)
  bve_resolvent_max : int;  (* abort elimination on longer resolvents *)
  subsume : bool;  (* subsumption + self-subsuming resolution *)
  elit : bool;  (* equivalent-literal substitution (binary SCCs) *)
  xor_ : bool;  (* XOR extraction + Gaussian elimination *)
  xor_max_arity : int;
  probe : bool;  (* failed-literal probing (run by the solver) *)
  probe_limit : int;  (* max probes per simplify call *)
  rounds : int;  (* pipeline rounds (stops early at fixpoint) *)
}

let default_config =
  {
    bve = true;
    bve_grow = 0;
    bve_max_occ = 20;
    bve_resolvent_max = 20;
    subsume = true;
    elit = true;
    xor_ = true;
    xor_max_arity = 6;
    probe = true;
    probe_limit = 2000;
    rounds = 3;
  }

type stats = {
  mutable s_rounds : int;
  mutable s_units : int;  (* level-0 assignments fixed (incl. input units) *)
  mutable s_eliminated : int;  (* vars removed by BVE *)
  mutable s_subsumed : int;  (* clauses deleted by subsumption *)
  mutable s_strengthened : int;  (* literals removed by self-subsumption *)
  mutable s_elit : int;  (* vars substituted by an equivalent literal *)
  mutable s_xor_rows : int;  (* XOR constraints mined from clauses *)
  mutable s_xor_units : int;  (* units derived by Gaussian elimination *)
  mutable s_xor_equivs : int;  (* equivalences derived by Gaussian elim. *)
  mutable s_probes : int;  (* failed-literal probes attempted *)
  mutable s_failed_lits : int;  (* probes that failed (forced a unit) *)
  mutable s_cancelled : bool;
}

let mk_stats () =
  {
    s_rounds = 0;
    s_units = 0;
    s_eliminated = 0;
    s_subsumed = 0;
    s_strengthened = 0;
    s_elit = 0;
    s_xor_rows = 0;
    s_xor_units = 0;
    s_xor_equivs = 0;
    s_probes = 0;
    s_failed_lits = 0;
    s_cancelled = false;
  }

let add_stats dst src =
  dst.s_rounds <- dst.s_rounds + src.s_rounds;
  dst.s_units <- dst.s_units + src.s_units;
  dst.s_eliminated <- dst.s_eliminated + src.s_eliminated;
  dst.s_subsumed <- dst.s_subsumed + src.s_subsumed;
  dst.s_strengthened <- dst.s_strengthened + src.s_strengthened;
  dst.s_elit <- dst.s_elit + src.s_elit;
  dst.s_xor_rows <- dst.s_xor_rows + src.s_xor_rows;
  dst.s_xor_units <- dst.s_xor_units + src.s_xor_units;
  dst.s_xor_equivs <- dst.s_xor_equivs + src.s_xor_equivs;
  dst.s_probes <- dst.s_probes + src.s_probes;
  dst.s_failed_lits <- dst.s_failed_lits + src.s_failed_lits;
  dst.s_cancelled <- dst.s_cancelled || src.s_cancelled

type recon = R_clause of int array | R_subst of { v : int; lit : int }

type result = {
  clauses : int array list;
  units : int list;
  recon : recon list;  (* most recent record first *)
  unsat : bool;
  eliminated : bool array;
}

(* --- model reconstruction ---------------------------------------------- *)

let lit_true model l = model.(l lsr 1) <> (l land 1 = 1)

let extend_model recon model =
  List.iter
    (fun r ->
      match r with
      | R_subst { v; lit } -> model.(v) <- lit_true model lit
      | R_clause lits ->
        let n = Array.length lits in
        let forced = ref true in
        for i = 1 to n - 1 do
          if lit_true model lits.(i) then forced := false
        done;
        if !forced then begin
          let l0 = lits.(0) in
          model.(l0 lsr 1) <- l0 land 1 = 0
        end)
    recon

(* --- clause database --------------------------------------------------- *)

type ivec = { mutable a : int array; mutable n : int }

let iv_make () = { a = Array.make 4 0; n = 0 }

let iv_push v x =
  if v.n = Array.length v.a then begin
    let a = Array.make (2 * v.n) 0 in
    Array.blit v.a 0 a 0 v.n;
    v.a <- a
  end;
  v.a.(v.n) <- x;
  v.n <- v.n + 1

type db = {
  cfg : config;
  nvars : int;
  frozen : bool array;  (* never eliminated or substituted *)
  value : int array;  (* per var: 0 unknown, 1 true, -1 false *)
  eliminated : bool array;
  mutable cls : int array array;  (* sorted literal arrays *)
  mutable csig : int array;  (* var bloom per clause *)
  mutable dead : bool array;
  mutable in_tq : bool array;  (* clause queued for subsumption *)
  mutable ncls : int;
  occ : ivec array;  (* per var: clause indices (stale entries allowed) *)
  uq : int Queue.t;  (* pending unit literals *)
  tq : int Queue.t;  (* subsumption work queue *)
  mutable recon : recon list;
  mutable unsat : bool;
  mutable halted : bool;  (* cancellation observed *)
  st : stats;
}

let lit_val db l =
  let v = db.value.(l lsr 1) in
  if v = 0 then 0 else if l land 1 = 1 then -v else v

let clause_sig lits =
  Array.fold_left (fun acc l -> acc lor (1 lsl ((l lsr 1) land 31))) 0 lits

let kill db ci = db.dead.(ci) <- true

let touch db ci =
  if not db.in_tq.(ci) then begin
    db.in_tq.(ci) <- true;
    Queue.push ci db.tq
  end

let grow_cls db =
  let cap = Array.length db.cls in
  if db.ncls = cap then begin
    let ncap = max 16 (2 * cap) in
    let cls = Array.make ncap [||] in
    Array.blit db.cls 0 cls 0 cap;
    db.cls <- cls;
    let csig = Array.make ncap 0 in
    Array.blit db.csig 0 csig 0 cap;
    db.csig <- csig;
    let dead = Array.make ncap false in
    Array.blit db.dead 0 dead 0 cap;
    db.dead <- dead;
    let in_tq = Array.make ncap false in
    Array.blit db.in_tq 0 in_tq 0 cap;
    db.in_tq <- in_tq
  end

let rec sorted_taut = function
  | a :: (b :: _ as rest) -> if a lxor 1 = b then true else sorted_taut rest
  | _ -> false

(* Insert a clause given as a raw literal list: sorts, dedupes, drops
   tautologies and satisfied clauses, strips false literals, queues units,
   stores the rest with occurrence/touched bookkeeping. *)
let add_lits db lits =
  (* Deliberately not gated on [halted]: a cancelled run may still be
     mid-rewrite (kill + re-add), and dropping the re-add would lose a
     constraint.  Cancellation only stops starting new work. *)
  if not db.unsat then begin
    let lits = List.sort_uniq compare lits in
    if not (sorted_taut lits) then
      if not (List.exists (fun l -> lit_val db l > 0) lits) then begin
        match List.filter (fun l -> lit_val db l = 0) lits with
        | [] -> db.unsat <- true
        | [ l ] -> Queue.push l db.uq
        | lits ->
          grow_cls db;
          let arr = Array.of_list lits in
          let ci = db.ncls in
          db.ncls <- ci + 1;
          db.cls.(ci) <- arr;
          db.csig.(ci) <- clause_sig arr;
          db.dead.(ci) <- false;
          db.in_tq.(ci) <- false;
          Array.iter (fun l -> iv_push db.occ.(l lsr 1) ci) arr;
          touch db ci
      end
  end

let array_mem x a =
  let n = Array.length a in
  let rec go i = i < n && (a.(i) = x || go (i + 1)) in
  go 0

(* Remove literal [l] from live clause [ci] (it must be present). *)
let remove_lit db ci l =
  let lits = db.cls.(ci) in
  let n = Array.length lits in
  if n = 2 then begin
    let keep = if lits.(0) = l then lits.(1) else lits.(0) in
    kill db ci;
    Queue.push keep db.uq
  end
  else begin
    let out = Array.make (n - 1) 0 in
    let j = ref 0 in
    for i = 0 to n - 1 do
      if lits.(i) <> l then begin
        out.(!j) <- lits.(i);
        incr j
      end
    done;
    db.cls.(ci) <- out;
    db.csig.(ci) <- clause_sig out;
    touch db ci
  end

(* Level-0 unit propagation over the occurrence lists.  Runs to fixpoint
   even under cancellation — queued units come from killed clauses, so
   dropping them would be unsound, and the queue drains in bounded time. *)
let propagate db =
  while (not db.unsat) && not (Queue.is_empty db.uq) do
    let l = Queue.pop db.uq in
    let v = l lsr 1 in
    let want = if l land 1 = 1 then -1 else 1 in
    let cur = db.value.(v) in
    if cur <> 0 then begin
      if cur <> want then db.unsat <- true
    end
    else begin
      db.value.(v) <- want;
      db.st.s_units <- db.st.s_units + 1;
      let o = db.occ.(v) in
      let n = o.n in
      let i = ref 0 in
      while (not db.unsat) && !i < n do
        let ci = o.a.(!i) in
        incr i;
        if not db.dead.(ci) then begin
          let lits = db.cls.(ci) in
          if array_mem l lits then kill db ci
          else if array_mem (neg l) lits then remove_lit db ci (neg l)
        end
      done
    end
  done

(* --- subsumption + self-subsuming resolution --------------------------- *)

type sub = No | Sub | Str of int

(* [subsumes c d] on sorted clauses: [Sub] when c ⊆ d; [Str l] when l ∈ c,
   ¬l ∈ d and c∖{l} ⊆ d∖{¬l} (the resolvent on l subsumes d, so ¬l can be
   removed from d). *)
let subsumes c d =
  let nc = Array.length c and nd = Array.length d in
  let rec go i j flip =
    if i >= nc then match flip with None -> Sub | Some l -> Str l
    else if j >= nd then No
    else
      let lc = c.(i) and ld = d.(j) in
      if lc = ld then go (i + 1) (j + 1) flip
      else if lc lxor 1 = ld then
        if flip = None then go (i + 1) (j + 1) (Some lc) else No
      else if ld < lc then go i (j + 1) flip
      else No
  in
  go 0 0 None

let poll_cancel db cancel =
  if (not db.halted) && Par.Cancel.poll_opt cancel then begin
    db.halted <- true;
    db.st.s_cancelled <- true
  end

(* Drain the touched queue: each queued clause is checked against the
   occurrence list of its least-occurring variable for clauses it subsumes
   or strengthens.  Strengthened clauses re-enter the queue, so the pass
   reaches a fixpoint. *)
let subsume_pass db cancel =
  let iter = ref 0 in
  while (not (db.unsat || db.halted)) && not (Queue.is_empty db.tq) do
    propagate db;
    if not (db.unsat || Queue.is_empty db.tq) then begin
      incr iter;
      if !iter land 63 = 0 then poll_cancel db cancel;
      let ci = Queue.pop db.tq in
      db.in_tq.(ci) <- false;
      if not db.dead.(ci) then begin
        let c = db.cls.(ci) in
        let cs = db.csig.(ci) in
        let nc = Array.length c in
        (* Scan the occurrence list of the least-occurring variable. *)
        let best = ref (c.(0) lsr 1) in
        Array.iter
          (fun l ->
            let v = l lsr 1 in
            if db.occ.(v).n < db.occ.(!best).n then best := v)
          c;
        let o = db.occ.(!best) in
        let n = o.n in
        let k = ref 0 in
        while (not db.dead.(ci)) && !k < n do
          let cj = o.a.(!k) in
          incr k;
          if
            cj <> ci
            && not db.dead.(cj)
            && nc <= Array.length db.cls.(cj)
            && cs land lnot db.csig.(cj) = 0
          then
            match subsumes c db.cls.(cj) with
            | No -> ()
            | Sub ->
              kill db cj;
              db.st.s_subsumed <- db.st.s_subsumed + 1
            | Str l ->
              db.st.s_strengthened <- db.st.s_strengthened + 1;
              remove_lit db cj (neg l)
        done
      end
    end
  done

(* --- equivalent-literal substitution ----------------------------------- *)

(* Replace every literal of [u] by the corresponding literal of [rl]
   (u's positive literal ≡ rl).  Rewritten clauses go through [add_lits],
   which handles collapses to units and tautologies. *)
let subst_var db u rl =
  db.recon <- R_subst { v = u; lit = rl } :: db.recon;
  db.eliminated.(u) <- true;
  db.st.s_elit <- db.st.s_elit + 1;
  let o = db.occ.(u) in
  let n = o.n in
  for i = 0 to n - 1 do
    let ci = o.a.(i) in
    if not db.dead.(ci) then begin
      let lits = db.cls.(ci) in
      if Array.exists (fun l -> l lsr 1 = u) lits then begin
        kill db ci;
        add_lits db
          (Array.fold_left
             (fun acc l -> (if l lsr 1 = u then rl lxor (l land 1) else l) :: acc)
             [] lits)
      end
    end
  done

let elit_pass db cancel =
  let bimp = Bimp.create ~nvars:db.nvars () in
  let nbin = ref 0 in
  for ci = 0 to db.ncls - 1 do
    if (not db.dead.(ci)) && Array.length db.cls.(ci) = 2 then begin
      Bimp.add_clause bimp db.cls.(ci).(0) db.cls.(ci).(1);
      incr nbin
    end
  done;
  if !nbin > 0 && not (db.unsat || db.halted) then begin
    let comp, ncomp = Bimp.sccs bimp in
    let members = Array.make ncomp [] in
    for l = (2 * db.nvars) - 1 downto 0 do
      if l < Array.length comp && comp.(l) >= 0 then begin
        let v = l lsr 1 in
        if db.value.(v) = 0 && not db.eliminated.(v) then
          members.(comp.(l)) <- l :: members.(comp.(l))
      end
    done;
    let g = ref 0 in
    while (not (db.unsat || db.halted)) && !g < ncomp do
      if !g land 63 = 0 then poll_cancel db cancel;
      (match (if db.halted then [] else members.(!g)) with
      | [] | [ _ ] -> ()
      | group ->
        (* Sorted ascending: a variable's two literals are adjacent. *)
        if sorted_taut group then db.unsat <- true
        else begin
          let frozen_members = List.filter (fun l -> db.frozen.(l lsr 1)) group in
          let repr =
            match frozen_members with f :: _ -> f | [] -> List.hd group
          in
          if not db.eliminated.(repr lsr 1) then
            List.iter
              (fun m ->
                let u = m lsr 1 in
                if
                  m <> repr
                  && u <> repr lsr 1
                  && (not db.frozen.(u))
                  && (not db.eliminated.(u))
                  && db.value.(u) = 0
                then subst_var db u (repr lxor (m land 1)))
              group
        end);
      incr g
    done;
    propagate db
  end

(* --- XOR mining -------------------------------------------------------- *)

let xor_pass db =
  if not (db.unsat || db.halted) then begin
    let cs = ref [] in
    for ci = db.ncls - 1 downto 0 do
      if not db.dead.(ci) then begin
        let len = Array.length db.cls.(ci) in
        if len >= 3 && len <= db.cfg.xor_max_arity then cs := db.cls.(ci) :: !cs
      end
    done;
    let rows = Xor.extract ~max_arity:db.cfg.xor_max_arity !cs in
    db.st.s_xor_rows <- db.st.s_xor_rows + List.length rows;
    if rows <> [] then begin
      List.iter
        (fun fact ->
          match fact with
          | Xor.Unsat -> db.unsat <- true
          | Xor.Unit (v, b) ->
            db.st.s_xor_units <- db.st.s_xor_units + 1;
            Queue.push ((v lsl 1) lor if b then 0 else 1) db.uq
          | Xor.Equiv (x, y, s) ->
            db.st.s_xor_equivs <- db.st.s_xor_equivs + 1;
            let ly = (y lsl 1) lor if s then 1 else 0 in
            add_lits db [ (x lsl 1) lor 1; ly ];
            add_lits db [ x lsl 1; neg ly ])
        (Xor.eliminate rows);
      propagate db
    end
  end

(* --- bounded variable elimination -------------------------------------- *)

exception Too_big

let resolve db p n v =
  let pl = v lsl 1 and nl = (v lsl 1) lor 1 in
  let acc = ref [] in
  Array.iter (fun l -> if l <> pl then acc := l :: !acc) db.cls.(p);
  Array.iter (fun l -> if l <> nl then acc := l :: !acc) db.cls.(n);
  let merged = List.sort_uniq compare !acc in
  if sorted_taut merged then None else Some merged

let try_eliminate db v =
  if
    (not db.frozen.(v))
    && (not db.eliminated.(v))
    && db.value.(v) = 0
    && not (db.unsat || db.halted)
  then begin
    let pl = v lsl 1 in
    let pos = ref [] and nps = ref [] in
    let np = ref 0 and nn = ref 0 in
    let o = db.occ.(v) in
    for i = 0 to o.n - 1 do
      let ci = o.a.(i) in
      if not db.dead.(ci) then
        if array_mem pl db.cls.(ci) then begin
          if not (List.mem ci !pos) then begin
            pos := ci :: !pos;
            incr np
          end
        end
        else if array_mem (neg pl) db.cls.(ci) then
          if not (List.mem ci !nps) then begin
            nps := ci :: !nps;
            incr nn
          end
    done;
    if !np + !nn <= db.cfg.bve_max_occ then begin
      match
        let resolvents = ref [] in
        let count = ref 0 in
        (try
           List.iter
             (fun p ->
               List.iter
                 (fun n ->
                   match resolve db p n v with
                   | None -> ()
                   | Some r ->
                     if List.length r > db.cfg.bve_resolvent_max then
                       raise_notrace Too_big;
                     incr count;
                     if !count > !np + !nn + db.cfg.bve_grow then
                       raise_notrace Too_big;
                     resolvents := r :: !resolvents)
                 !nps)
             !pos;
           Some !resolvents
         with Too_big -> None)
      with
      | None -> ()
      | Some resolvents ->
        (* Commit: store the smaller phase for model reconstruction (the
           eliminated literal rotated to the front, then the opposite
           unit — the unit ends up at the head of the stack so extension
           sets the default value first and clauses override it). *)
        let store_pos = !np <= !nn in
        let phase_lit = if store_pos then pl else neg pl in
        List.iter
          (fun ci ->
            let lits = db.cls.(ci) in
            let arr = Array.copy lits in
            let k = ref 0 in
            Array.iteri (fun i l -> if l = phase_lit then k := i) lits;
            arr.(!k) <- arr.(0);
            arr.(0) <- phase_lit;
            db.recon <- R_clause arr :: db.recon)
          (if store_pos then !pos else !nps);
        db.recon <- R_clause [| neg phase_lit |] :: db.recon;
        List.iter (kill db) !pos;
        List.iter (kill db) !nps;
        db.eliminated.(v) <- true;
        db.st.s_eliminated <- db.st.s_eliminated + 1;
        List.iter (add_lits db) resolvents;
        propagate db
    end
  end

let bve_pass db cancel =
  let v = ref 0 in
  while (not (db.unsat || db.halted)) && !v < db.nvars do
    if !v land 63 = 0 then poll_cancel db cancel;
    try_eliminate db !v;
    incr v
  done

(* --- driver ------------------------------------------------------------ *)

let run ?(config = default_config) ?cancel ~stats ~nvars ~frozen ~units clauses =
  let db =
    {
      cfg = config;
      nvars;
      frozen;
      value = Array.make (max 1 nvars) 0;
      eliminated = Array.make (max 1 nvars) false;
      cls = Array.make 16 [||];
      csig = Array.make 16 0;
      dead = Array.make 16 false;
      in_tq = Array.make 16 false;
      ncls = 0;
      occ = Array.init (max 1 nvars) (fun _ -> iv_make ());
      uq = Queue.create ();
      tq = Queue.create ();
      recon = [];
      unsat = false;
      halted = false;
      st = stats;
    }
  in
  List.iter (fun l -> Queue.push l db.uq) units;
  List.iter (fun c -> add_lits db (Array.to_list c)) clauses;
  propagate db;
  poll_cancel db cancel;
  let progress () =
    stats.s_units + stats.s_eliminated + stats.s_subsumed + stats.s_strengthened
    + stats.s_elit + stats.s_xor_units + stats.s_xor_equivs
  in
  let round = ref 0 in
  let last = ref (-1) in
  while (not (db.unsat || db.halted)) && !round < config.rounds && progress () <> !last
  do
    last := progress ();
    incr round;
    stats.s_rounds <- stats.s_rounds + 1;
    if config.elit then elit_pass db cancel;
    poll_cancel db cancel;
    if config.subsume then subsume_pass db cancel;
    poll_cancel db cancel;
    if config.xor_ then xor_pass db;
    poll_cancel db cancel;
    if config.bve then bve_pass db cancel;
    poll_cancel db cancel;
    propagate db
  done;
  (* Drain any pending units even on early exit so the result is closed. *)
  propagate db;
  let clauses = ref [] in
  for ci = db.ncls - 1 downto 0 do
    if not db.dead.(ci) then clauses := db.cls.(ci) :: !clauses
  done;
  let units = ref [] in
  for v = nvars - 1 downto 0 do
    if db.value.(v) <> 0 then
      units := ((v lsl 1) lor if db.value.(v) > 0 then 0 else 1) :: !units
  done;
  {
    clauses = !clauses;
    units = !units;
    recon = db.recon;
    unsat = db.unsat;
    eliminated = db.eliminated;
  }
