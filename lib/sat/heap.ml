(* Indexed binary max-heap over small non-negative integers.

   The heap does not own the priorities: every mutating operation takes a
   [less] comparison so the caller can keep priorities in its own (possibly
   reallocated) arrays.  [less u v] must mean "u has strictly higher
   priority than v"; the element with the highest priority sits at the
   top.  After an element's priority changes, [update] restores the heap
   property from that element alone in O(log n). *)

type t = {
  mutable heap : int array;  (* elements, heap-ordered *)
  mutable n : int;
  mutable pos : int array;  (* per element: index in [heap], or -1 *)
}

let create ?(capacity = 16) () =
  { heap = Array.make (max 1 capacity) 0; n = 0; pos = Array.make (max 1 capacity) (-1) }

let size t = t.n
let is_empty t = t.n = 0

(* Make room for element ids up to [e] inclusive. *)
let reserve t e =
  let old = Array.length t.pos in
  if e >= old then begin
    let cap = max (e + 1) (2 * old) in
    let pos = Array.make cap (-1) in
    Array.blit t.pos 0 pos 0 old;
    t.pos <- pos
  end;
  if t.n >= Array.length t.heap then begin
    let heap = Array.make (max (t.n + 1) (2 * Array.length t.heap)) 0 in
    Array.blit t.heap 0 heap 0 t.n;
    t.heap <- heap
  end

let mem t e = e < Array.length t.pos && t.pos.(e) >= 0

let swap t i j =
  let u = t.heap.(i) and v = t.heap.(j) in
  t.heap.(i) <- v;
  t.heap.(j) <- u;
  t.pos.(v) <- i;
  t.pos.(u) <- j

let rec sift_up ~less t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if less t.heap.(i) t.heap.(p) then begin
      swap t i p;
      sift_up ~less t p
    end
  end

let rec sift_down ~less t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < t.n && less t.heap.(l) t.heap.(!best) then best := l;
  if r < t.n && less t.heap.(r) t.heap.(!best) then best := r;
  if !best <> i then begin
    swap t i !best;
    sift_down ~less t !best
  end

let insert ~less t e =
  reserve t e;
  if t.pos.(e) < 0 then begin
    t.heap.(t.n) <- e;
    t.pos.(e) <- t.n;
    t.n <- t.n + 1;
    sift_up ~less t t.pos.(e)
  end

let top t = if t.n = 0 then None else Some t.heap.(0)

let pop ~less t =
  let e = t.heap.(0) in
  t.n <- t.n - 1;
  t.pos.(e) <- -1;
  if t.n > 0 then begin
    t.heap.(0) <- t.heap.(t.n);
    t.pos.(t.heap.(0)) <- 0;
    sift_down ~less t 0
  end;
  e

(* Restore the heap property around [e] after its priority changed in
   either direction.  No-op when [e] is not in the heap. *)
let update ~less t e =
  if mem t e then begin
    sift_up ~less t t.pos.(e);
    sift_down ~less t t.pos.(e)
  end

let remove ~less t e =
  if mem t e then begin
    let i = t.pos.(e) in
    t.n <- t.n - 1;
    t.pos.(e) <- -1;
    if i < t.n then begin
      t.heap.(i) <- t.heap.(t.n);
      t.pos.(t.heap.(i)) <- i;
      sift_up ~less t i;
      sift_down ~less t i
    end
  end

let clear t =
  for i = 0 to t.n - 1 do
    t.pos.(t.heap.(i)) <- -1
  done;
  t.n <- 0
