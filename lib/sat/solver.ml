type lit = int

let mklit v sign = (v lsl 1) lor Bool.to_int sign
let neg l = l lxor 1
let var_of_lit l = l lsr 1

type result = Sat | Unsat | Unknown

(* Variable values: 0 = unassigned, 1 = true, -1 = false. *)

type clause = {
  lits : int array;
  learnt : bool;
  mutable act : float;
  mutable lbd : int;  (* literal block distance at learn time *)
}

type ivec = { mutable a : int array; mutable n : int }

let ivec_make () = { a = Array.make 4 0; n = 0 }

let ivec_push v x =
  if v.n = Array.length v.a then begin
    let a = Array.make (2 * v.n) 0 in
    Array.blit v.a 0 a 0 v.n;
    v.a <- a
  end;
  v.a.(v.n) <- x;
  v.n <- v.n + 1

type t = {
  mutable nvars : int;
  mutable clauses : clause array;  (* clause database *)
  mutable nclauses : int;
  mutable watches : ivec array;  (* per literal: clause indices watching it *)
  mutable values : int array;  (* per var *)
  mutable levels : int array;  (* per var *)
  mutable reasons : int array;  (* per var: clause index or -1 *)
  mutable activity : float array;  (* per var *)
  mutable polarity : bool array;  (* per var: saved phase *)
  order : Heap.t;  (* branching order: max-heap on activity *)
  mutable elim : bool array;  (* per var: eliminated by preprocessing *)
  mutable trail : int array;  (* assigned literals in order *)
  mutable trail_n : int;
  mutable trail_lim : int array;  (* decision-level boundaries *)
  mutable trail_lim_n : int;
  mutable qhead : int;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable ok : bool;  (* false once level-0 conflict found *)
  mutable model : bool array;  (* after reconstruction of eliminated vars *)
  mutable raw_model : bool array;  (* before reconstruction *)
  mutable recon : Simplify.recon list;  (* model-reconstruction stack *)
  mutable conflicts : int;
  mutable propagations : int;
  mutable seen : bool array;  (* scratch for analyze *)
  mutable lbd_stamp : int array;  (* scratch for LBD: per level *)
  mutable lbd_time : int;
  mutable max_learnts : float;
  mutable nlearnts : int;
  mutable restarts : int;
  mutable reduce_dbs : int;
  mutable learnts_removed : int;
  simp_stats : Simplify.stats;
}

let create () =
  {
    nvars = 0;
    clauses = Array.make 16 { lits = [||]; learnt = false; act = 0.; lbd = 0 };
    nclauses = 0;
    watches = Array.init 16 (fun _ -> ivec_make ());
    values = [||];
    levels = [||];
    reasons = [||];
    activity = [||];
    polarity = [||];
    order = Heap.create ();
    elim = [||];
    trail = [||];
    trail_n = 0;
    trail_lim = [||];
    trail_lim_n = 0;
    qhead = 0;
    var_inc = 1.0;
    cla_inc = 1.0;
    ok = true;
    model = [||];
    raw_model = [||];
    recon = [];
    conflicts = 0;
    propagations = 0;
    seen = [||];
    lbd_stamp = [||];
    lbd_time = 0;
    max_learnts = 4000.;
    nlearnts = 0;
    restarts = 0;
    reduce_dbs = 0;
    learnts_removed = 0;
    simp_stats = Simplify.mk_stats ();
  }

let num_vars t = t.nvars
let num_conflicts t = t.conflicts
let num_propagations t = t.propagations

let grow_arrays t n =
  let old = Array.length t.values in
  if n > old then begin
    let cap = max n (max 16 (2 * old)) in
    let copy_int src = let a = Array.make cap 0 in Array.blit src 0 a 0 old; a in
    let copy_m1 src = let a = Array.make cap (-1) in Array.blit src 0 a 0 old; a in
    let copy_f src = let a = Array.make cap 0. in Array.blit src 0 a 0 old; a in
    let copy_b src = let a = Array.make cap false in Array.blit src 0 a 0 old; a in
    t.values <- copy_int t.values;
    t.levels <- copy_int t.levels;
    t.reasons <- copy_m1 t.reasons;
    t.activity <- copy_f t.activity;
    t.polarity <- copy_b t.polarity;
    t.elim <- copy_b t.elim;
    t.seen <- copy_b t.seen;
    t.model <- copy_b t.model;
    t.raw_model <- copy_b t.raw_model;
    t.lbd_stamp <- copy_int t.lbd_stamp;
    let trail = Array.make cap 0 in
    Array.blit t.trail 0 trail 0 t.trail_n;
    t.trail <- trail;
    let lim = Array.make cap 0 in
    Array.blit t.trail_lim 0 lim 0 t.trail_lim_n;
    t.trail_lim <- lim;
    let w = Array.make (2 * cap) (ivec_make ()) in
    Array.blit t.watches 0 w 0 (2 * old);
    for i = 2 * old to (2 * cap) - 1 do
      w.(i) <- ivec_make ()
    done;
    t.watches <- w
  end

(* --- variable-order heap (max-heap on activity) --- *)

(* The comparison closes over [t], not over the activity array itself, so
   it stays valid across [grow_arrays] reallocations. *)
let heap_less t u v = t.activity.(u) > t.activity.(v)
let heap_insert t v = Heap.insert ~less:(heap_less t) t.order v
let heap_pop t = Heap.pop ~less:(heap_less t) t.order
let heap_bump t v = Heap.update ~less:(heap_less t) t.order v

let new_var t =
  let v = t.nvars in
  t.nvars <- v + 1;
  grow_arrays t t.nvars;
  t.values.(v) <- 0;
  t.reasons.(v) <- -1;
  t.polarity.(v) <- false;
  t.elim.(v) <- false;
  heap_insert t v;
  v

(* --- values --- *)

let lit_value t l =
  let v = t.values.(l lsr 1) in
  if v = 0 then 0 else if l land 1 = 1 then -v else v

let decision_level t = t.trail_lim_n

let enqueue t l reason =
  let v = l lsr 1 in
  t.values.(v) <- (if l land 1 = 1 then -1 else 1);
  t.levels.(v) <- decision_level t;
  t.reasons.(v) <- reason;
  t.trail.(t.trail_n) <- l;
  t.trail_n <- t.trail_n + 1

(* --- clause management --- *)

let push_clause t c =
  if t.nclauses = Array.length t.clauses then begin
    let a = Array.make (2 * t.nclauses) c in
    Array.blit t.clauses 0 a 0 t.nclauses;
    t.clauses <- a
  end;
  t.clauses.(t.nclauses) <- c;
  t.nclauses <- t.nclauses + 1;
  t.nclauses - 1

let watch_clause t ci =
  let c = t.clauses.(ci).lits in
  ivec_push t.watches.(c.(0)) ci;
  ivec_push t.watches.(c.(1)) ci

(* Clauses may only be added at decision level 0 (between [solve] calls). *)
let add_clause t lits =
  if not t.ok then false
  else begin
    assert (decision_level t = 0);
    let lits = List.sort_uniq compare lits in
    if List.exists (fun l -> List.mem (neg l) lits) lits then true (* tautology *)
    else if List.exists (fun l -> lit_value t l > 0) lits then true (* satisfied *)
    else begin
      match List.filter (fun l -> lit_value t l = 0) lits with
      | [] ->
          t.ok <- false;
          false
      | [ l ] ->
          enqueue t l (-1);
          true
      | lits ->
          let c = { lits = Array.of_list lits; learnt = false; act = 0.; lbd = 0 } in
          let ci = push_clause t c in
          watch_clause t ci;
          true
    end
  end

(* --- propagation --- *)

let propagate t =
  let conflict = ref (-1) in
  while !conflict < 0 && t.qhead < t.trail_n do
    let p = t.trail.(t.qhead) in
    t.qhead <- t.qhead + 1;
    t.propagations <- t.propagations + 1;
    let np = p lxor 1 in
    let ws = t.watches.(np) in
    let i = ref 0 and j = ref 0 in
    while !i < ws.n do
      let ci = ws.a.(!i) in
      incr i;
      let lits = t.clauses.(ci).lits in
      (* Ensure the false literal np is at position 1. *)
      if lits.(0) = np then begin
        lits.(0) <- lits.(1);
        lits.(1) <- np
      end;
      if lit_value t lits.(0) > 0 then begin
        (* Clause already satisfied: keep the watch. *)
        ws.a.(!j) <- ci;
        incr j
      end
      else begin
        (* Look for a new literal to watch. *)
        let len = Array.length lits in
        let k = ref 2 in
        while !k < len && lit_value t lits.(!k) < 0 do
          incr k
        done;
        if !k < len then begin
          let l = lits.(!k) in
          lits.(!k) <- lits.(1);
          lits.(1) <- l;
          ivec_push t.watches.(l) ci
        end
        else begin
          (* Unit or conflicting. *)
          ws.a.(!j) <- ci;
          incr j;
          if lit_value t lits.(0) < 0 then begin
            conflict := ci;
            (* Copy the remaining watches back. *)
            while !i < ws.n do
              ws.a.(!j) <- ws.a.(!i);
              incr j;
              incr i
            done;
            t.qhead <- t.trail_n
          end
          else enqueue t lits.(0) ci
        end
      end
    done;
    ws.n <- !j
  done;
  !conflict

(* --- activity --- *)

let var_decay = 0.95
let clause_decay = 0.999

let var_bump t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then begin
    for i = 0 to t.nvars - 1 do
      t.activity.(i) <- t.activity.(i) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end;
  heap_bump t v

let var_decay_activity t = t.var_inc <- t.var_inc /. var_decay

let clause_bump t c =
  c.act <- c.act +. t.cla_inc;
  if c.act > 1e20 then begin
    for i = 0 to t.nclauses - 1 do
      let c = t.clauses.(i) in
      if c.learnt then c.act <- c.act *. 1e-20
    done;
    t.cla_inc <- t.cla_inc *. 1e-20
  end

let clause_decay_activity t = t.cla_inc <- t.cla_inc /. clause_decay

(* --- backtracking --- *)

let cancel_until t level =
  if decision_level t > level then begin
    let bound = t.trail_lim.(level) in
    for i = t.trail_n - 1 downto bound do
      let l = t.trail.(i) in
      let v = l lsr 1 in
      t.values.(v) <- 0;
      t.polarity.(v) <- l land 1 = 0;
      t.reasons.(v) <- -1;
      heap_insert t v
    done;
    t.trail_n <- bound;
    t.qhead <- bound;
    t.trail_lim_n <- level
  end

(* --- conflict analysis (first UIP) --- *)

let analyze t confl =
  let learnt = ref [] in
  let path = ref 0 in
  let p = ref (-1) in
  let idx = ref (t.trail_n - 1) in
  let confl = ref confl in
  let continue_ = ref true in
  while !continue_ do
    let c = t.clauses.(!confl) in
    if c.learnt then clause_bump t c;
    let lits = c.lits in
    let start = if !p = -1 then 0 else 1 in
    for k = start to Array.length lits - 1 do
      let q = lits.(k) in
      let v = q lsr 1 in
      if (not t.seen.(v)) && t.levels.(v) > 0 then begin
        t.seen.(v) <- true;
        var_bump t v;
        if t.levels.(v) >= decision_level t then incr path
        else learnt := q :: !learnt
      end
    done;
    (* Find the next seen literal on the trail. *)
    while not t.seen.(t.trail.(!idx) lsr 1) do
      decr idx
    done;
    p := t.trail.(!idx);
    decr idx;
    t.seen.(!p lsr 1) <- false;
    decr path;
    if !path > 0 then begin
      confl := t.reasons.(!p lsr 1);
      assert (!confl >= 0)
    end
    else continue_ := false
  done;
  let learnt_lits = neg !p :: !learnt in
  (* Simple minimization: drop literals implied by others at level 0 is
     already handled; full self-subsumption left out for clarity. *)
  (* Compute backtrack level: second highest level in the clause. *)
  let bt =
    List.fold_left
      (fun acc l -> if l <> neg !p then max acc t.levels.(l lsr 1) else acc)
      0 !learnt
  in
  (* Clear seen flags. *)
  List.iter (fun l -> t.seen.(l lsr 1) <- false) !learnt;
  (learnt_lits, bt)

(* Literal block distance: number of distinct non-zero decision levels in
   the clause.  Low-LBD ("glue") clauses connect few decision levels and
   are the best predictors of future usefulness, so [reduce_db] keeps
   them. *)
let compute_lbd t lits =
  t.lbd_time <- t.lbd_time + 1;
  let n = ref 0 in
  List.iter
    (fun l ->
      let lv = t.levels.(l lsr 1) in
      if lv > 0 && t.lbd_stamp.(lv) <> t.lbd_time then begin
        t.lbd_stamp.(lv) <- t.lbd_time;
        incr n
      end)
    lits;
  !n

let record_learnt t lits =
  match lits with
  | [ l ] ->
      cancel_until t 0;
      if lit_value t l = 0 then enqueue t l (-1)
      else if lit_value t l < 0 then t.ok <- false
  | asserting :: _ ->
      let lbd = compute_lbd t lits in
      let arr = Array.of_list lits in
      (* Position 1 must hold a literal of the backtrack level for correct
         watching: pick the highest-level literal among the rest. *)
      let best = ref 1 in
      for k = 2 to Array.length arr - 1 do
        if t.levels.(arr.(k) lsr 1) > t.levels.(arr.(!best) lsr 1) then best := k
      done;
      if Array.length arr > 1 then begin
        let tmp = arr.(1) in
        arr.(1) <- arr.(!best);
        arr.(!best) <- tmp
      end;
      let c = { lits = arr; learnt = true; act = 0.; lbd } in
      clause_bump t c;
      let ci = push_clause t c in
      watch_clause t ci;
      t.nlearnts <- t.nlearnts + 1;
      enqueue t asserting ci
  | [] -> t.ok <- false

(* --- learnt-clause database reduction --- *)

let reduce_db t =
  (* Remove the worse half of the learnt clauses, ranked by LBD with
     activity as tie-break.  Glue clauses (LBD <= 2), binary clauses and
     current reasons are always kept.  Rebuild the database and all
     watch lists. *)
  let learnts = ref [] in
  for ci = 0 to t.nclauses - 1 do
    if t.clauses.(ci).learnt then learnts := ci :: !learnts
  done;
  let learnts = Array.of_list !learnts in
  Array.sort
    (fun a b ->
      let ca = t.clauses.(a) and cb = t.clauses.(b) in
      if ca.lbd <> cb.lbd then compare cb.lbd ca.lbd  (* worst LBD first *)
      else compare ca.act cb.act)
    learnts;
  let is_reason = Array.make t.nclauses false in
  for i = 0 to t.trail_n - 1 do
    let r = t.reasons.(t.trail.(i) lsr 1) in
    if r >= 0 then is_reason.(r) <- true
  done;
  let drop = Array.make t.nclauses false in
  let ndrop = Array.length learnts / 2 in
  let dropped = ref 0 in
  Array.iter
    (fun ci ->
      let c = t.clauses.(ci) in
      if
        !dropped < ndrop
        && (not is_reason.(ci))
        && Array.length c.lits > 2
        && c.lbd > 2
      then begin
        drop.(ci) <- true;
        incr dropped
      end)
    learnts;
  t.reduce_dbs <- t.reduce_dbs + 1;
  t.learnts_removed <- t.learnts_removed + !dropped;
  t.nlearnts <- t.nlearnts - !dropped;
  (* Compact. *)
  let remap = Array.make t.nclauses (-1) in
  let n = ref 0 in
  for ci = 0 to t.nclauses - 1 do
    if not drop.(ci) then begin
      remap.(ci) <- !n;
      t.clauses.(!n) <- t.clauses.(ci);
      incr n
    end
  done;
  t.nclauses <- !n;
  for v = 0 to t.nvars - 1 do
    let r = t.reasons.(v) in
    if r >= 0 then t.reasons.(v) <- remap.(r)
  done;
  for l = 0 to (2 * t.nvars) - 1 do
    t.watches.(l).n <- 0
  done;
  for ci = 0 to t.nclauses - 1 do
    watch_clause t ci
  done

(* --- search --- *)

(* MiniSat's Luby restart sequence. *)
let luby y x =
  let size = ref 1 and seq = ref 0 in
  while !size < x + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref x in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  y ** float_of_int !seq

let pick_branch t =
  let rec go () =
    if Heap.is_empty t.order then -1
    else
      let v = heap_pop t in
      if t.values.(v) = 0 && not t.elim.(v) then v else go ()
  in
  go ()

let new_decision_level t =
  t.trail_lim.(t.trail_lim_n) <- t.trail_n;
  t.trail_lim_n <- t.trail_lim_n + 1

(* Cancellation is polled every [cancel_poll_mask + 1] conflicts and
   decisions: every search iteration either conflicts or decides, so a
   cancelled solve unwinds within a bounded number of iterations without
   putting an atomic load on every loop turn. *)
let cancel_poll_mask = 63

let solve ?(assumptions = []) ?(conflict_limit = max_int) ?cancel t =
  if not t.ok then Unsat
  else begin
    let assumptions = Array.of_list assumptions in
    let local_conflicts = ref 0 in
    let decisions = ref 0 in
    let cancelled () =
      match cancel with None -> false | Some c -> Par.Cancel.poll c
    in
    let restart_num = ref 0 in
    let restart_limit = ref (int_of_float (100. *. luby 2. 0)) in
    let result = ref None in
    cancel_until t 0;
    if cancelled () then result := Some Unknown;
    while !result = None do
      let confl = propagate t in
      if confl >= 0 then begin
        t.conflicts <- t.conflicts + 1;
        incr local_conflicts;
        if decision_level t = 0 then begin
          t.ok <- false;
          result := Some Unsat
        end
        else if
          !local_conflicts >= conflict_limit
          || (!local_conflicts land cancel_poll_mask = 0 && cancelled ())
        then begin
          cancel_until t 0;
          result := Some Unknown
        end
        else begin
          let learnt, bt = analyze t confl in
          cancel_until t bt;
          record_learnt t learnt;
          if not t.ok then result := Some Unsat;
          var_decay_activity t;
          clause_decay_activity t;
          if float_of_int t.nlearnts > t.max_learnts then begin
            reduce_db t;
            t.max_learnts <- t.max_learnts *. 1.3
          end;
          if !local_conflicts >= !restart_limit then begin
            incr restart_num;
            t.restarts <- t.restarts + 1;
            restart_limit :=
              !local_conflicts
              + int_of_float (100. *. luby 2. !restart_num);
            cancel_until t 0
          end
        end
      end
      else begin
        (* No conflict: place assumptions, then decide. *)
        let dl = decision_level t in
        if dl < Array.length assumptions then begin
          let p = assumptions.(dl) in
          match lit_value t p with
          | 1 ->
              (* Already true: introduce an empty decision level. *)
              new_decision_level t
          | -1 -> result := Some Unsat
          | _ ->
              new_decision_level t;
              enqueue t p (-1)
        end
        else if !decisions land cancel_poll_mask = cancel_poll_mask && cancelled ()
        then begin
          cancel_until t 0;
          result := Some Unknown
        end
        else begin
          incr decisions;
          let v = pick_branch t in
          if v < 0 then begin
            for i = 0 to t.nvars - 1 do
              t.model.(i) <- t.values.(i) > 0
            done;
            Array.blit t.model 0 t.raw_model 0 t.nvars;
            (* Map the model of the simplified formula back onto the
               eliminated variables so callers (CEX replay!) see a model
               of the original clauses. *)
            if t.recon <> [] then Simplify.extend_model t.recon t.model;
            result := Some Sat
          end
          else begin
            new_decision_level t;
            enqueue t (mklit v (not t.polarity.(v))) (-1)
          end
        end
      end
    done;
    cancel_until t 0;
    match !result with Some r -> r | None -> assert false
  end

let model_value t v = t.model.(v)
let model_value_raw t v = t.raw_model.(v)
let is_eliminated t v = t.elim.(v)
let num_restarts t = t.restarts
let num_reduce_dbs t = t.reduce_dbs
let num_learnts_removed t = t.learnts_removed
let simp_stats t = t.simp_stats

(* --- preprocessing ----------------------------------------------------- *)

(* Failed-literal probing: assume a candidate literal at a fresh decision
   level and propagate; a conflict proves its negation at level 0.
   Candidates are the roots of the binary implication graph (their
   propagation covers the most consequences). *)
let probe t (config : Simplify.config) cancel =
  let bimp = Bimp.create ~nvars:t.nvars () in
  for ci = 0 to t.nclauses - 1 do
    let c = t.clauses.(ci) in
    if Array.length c.lits = 2 then Bimp.add_clause bimp c.lits.(0) c.lits.(1)
  done;
  let budget = ref config.probe_limit in
  let stop = ref false in
  let k = ref 0 in
  List.iter
    (fun l ->
      if (not !stop) && !budget > 0 && t.ok then begin
        incr k;
        if !k land 15 = 0 && Par.Cancel.poll_opt cancel then begin
          stop := true;
          t.simp_stats.s_cancelled <- true
        end
        else if lit_value t l = 0 then begin
          decr budget;
          t.simp_stats.s_probes <- t.simp_stats.s_probes + 1;
          new_decision_level t;
          enqueue t l (-1);
          let confl = propagate t in
          cancel_until t 0;
          if confl >= 0 then begin
            t.simp_stats.s_failed_lits <- t.simp_stats.s_failed_lits + 1;
            enqueue t (neg l) (-1);
            if propagate t >= 0 then begin
              t.ok <- false;
              stop := true
            end
          end
        end
      end)
    (Bimp.probe_candidates bimp)

let simplify ?(config = Simplify.default_config) ?cancel ?(frozen = []) t =
  assert (decision_level t = 0);
  if t.ok && propagate t >= 0 then t.ok <- false;
  if t.ok then begin
    let frozen_arr = Array.make (max 1 t.nvars) false in
    List.iter (fun v -> if v >= 0 && v < t.nvars then frozen_arr.(v) <- true) frozen;
    (* Variables eliminated by an earlier call occur in no clause; keep
       the passes away from them so no second reconstruction record is
       pushed. *)
    for v = 0 to t.nvars - 1 do
      if t.elim.(v) then frozen_arr.(v) <- true
    done;
    let units = ref [] in
    for i = t.trail_n - 1 downto 0 do
      units := t.trail.(i) :: !units
    done;
    let cls = ref [] in
    for ci = t.nclauses - 1 downto 0 do
      let c = t.clauses.(ci) in
      (* Learnt clauses are consequences: dropping them is sound, and it
         frees the passes from tracking them through eliminations. *)
      if (not c.learnt) && not (Array.exists (fun l -> lit_value t l > 0) c.lits)
      then
        cls :=
          Array.of_list
            (List.filter (fun l -> lit_value t l = 0) (Array.to_list c.lits))
          :: !cls
    done;
    let res =
      Simplify.run ~config ?cancel ~stats:t.simp_stats ~nvars:t.nvars
        ~frozen:frozen_arr ~units:!units !cls
    in
    if res.unsat then t.ok <- false
    else begin
      (* Rebuild the solver around the simplified database. *)
      t.nclauses <- 0;
      t.nlearnts <- 0;
      for l = 0 to (2 * t.nvars) - 1 do
        t.watches.(l).n <- 0
      done;
      t.trail_n <- 0;
      t.trail_lim_n <- 0;
      t.qhead <- 0;
      for v = 0 to t.nvars - 1 do
        t.values.(v) <- 0;
        t.reasons.(v) <- -1;
        if res.eliminated.(v) then t.elim.(v) <- true
      done;
      List.iter (fun l -> if lit_value t l = 0 then enqueue t l (-1)) res.units;
      List.iter
        (fun lits ->
          let ci = push_clause t { lits; learnt = false; act = 0.; lbd = 0 } in
          watch_clause t ci)
        res.clauses;
      t.recon <- res.recon @ t.recon;
      Heap.clear t.order;
      for v = 0 to t.nvars - 1 do
        if (not t.elim.(v)) && t.values.(v) = 0 then heap_insert t v
      done;
      if propagate t >= 0 then t.ok <- false;
      if t.ok && config.probe && not (Par.Cancel.poll_opt cancel) then
        probe t config cancel
    end
  end

(* --- cube-and-conquer hooks -------------------------------------------- *)

let top_activity_vars ?(limit = 16) t =
  (* Unassigned, non-eliminated variables ranked by EVSIDS activity; ties
     break on the variable id so the ranking is deterministic for a given
     search history.  Variable 0 (the constant node of a CNF-loaded AIG)
     never branches, so it is skipped along with level-0 fixed variables. *)
  let cand = ref [] in
  for v = t.nvars - 1 downto 1 do
    if (not t.elim.(v)) && t.values.(v) = 0 && t.activity.(v) > 0. then
      cand := v :: !cand
  done;
  let a = Array.of_list !cand in
  Array.sort
    (fun u v ->
      let c = compare t.activity.(v) t.activity.(u) in
      if c <> 0 then c else compare u v)
    a;
  Array.to_list (Array.sub a 0 (min limit (Array.length a)))

let learnt_clauses ?(max_len = 8) ?(limit = max_int) t =
  (* Short learnt clauses, most recently derived first.  Clauses derived
     under assumptions are still implied by the clause database alone
     (assumptions enter as decisions, never as clauses), so exporting them
     to another solver over the same formula is sound. *)
  let out = ref [] in
  let n = ref 0 in
  let ci = ref (t.nclauses - 1) in
  while !ci >= 0 && !n < limit do
    let c = t.clauses.(!ci) in
    if
      c.learnt
      && Array.length c.lits > 0
      && Array.length c.lits <= max_len
      && not (Array.exists (fun l -> t.elim.(l lsr 1)) c.lits)
    then begin
      out := Array.to_list c.lits :: !out;
      incr n
    end;
    decr ci
  done;
  List.rev !out

let import_clause t lits =
  (* Accept a clause learnt by another solver over the same formula.
     Rejected (returns [false]) when a literal is malformed or its
     variable was eliminated by preprocessing here — adding a clause over
     an eliminated variable is invalid.  A clause that conflicts at level
     0 simply flips the solver to Unsat, which is the correct verdict for
     an implied clause. *)
  if lits = [] then false
  else if
    List.exists
      (fun l ->
        let v = l lsr 1 in
        l < 0 || v >= t.nvars || t.elim.(v))
      lits
  then false
  else begin
    ignore (add_clause t lits : bool);
    true
  end
