(* Binary implication graph.

   Literals use the solver encoding: lit = 2*var lor sign, [neg l = l lxor 1].
   A binary clause (a \/ b) contributes the two implication edges
   ¬a -> b and ¬b -> a.  The graph supports two consumers:

   - equivalent-literal detection: literals in the same strongly connected
     component are equal in every model, so one representative can replace
     the whole class (2-SAT style).  If l and ¬l share a component the
     formula is unsatisfiable.
   - failed-literal probing: roots with outgoing edges are the candidates
     whose propagation covers the most of the graph. *)

type t = {
  mutable succ : int list array;  (* indexed by literal *)
  mutable nlits : int;
}

let create ?(nvars = 0) () = { succ = Array.make (max 2 (2 * nvars)) []; nlits = 2 * nvars }

let ensure t nlits =
  if nlits > Array.length t.succ then begin
    let succ = Array.make (max nlits (2 * Array.length t.succ)) [] in
    Array.blit t.succ 0 succ 0 t.nlits;
    t.succ <- succ
  end;
  if nlits > t.nlits then t.nlits <- nlits

(* Register the binary clause (a \/ b). *)
let add_clause t a b =
  ensure t (1 + max a b + 1);
  let na = a lxor 1 and nb = b lxor 1 in
  t.succ.(na) <- b :: t.succ.(na);
  t.succ.(nb) <- a :: t.succ.(nb)

let successors t l = if l < t.nlits then t.succ.(l) else []
let out_degree t l = List.length (successors t l)

(* Iterative Tarjan.  Returns [comp] mapping each literal to a component
   id; literals with equal ids are equivalent.  The graph is skew-symmetric
   (edge u->v iff ¬v->¬u) so components pair up: the component of ¬l is
   determined by the component of l, which consumers exploit when picking
   representatives. *)
let sccs t =
  let n = t.nlits in
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = Stack.create () in
  let comp = Array.make n (-1) in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  (* Explicit DFS stack of (literal, remaining successors). *)
  let work = Stack.create () in
  let visit root =
    Stack.push (root, ref t.succ.(root)) work;
    index.(root) <- !next_index;
    low.(root) <- !next_index;
    incr next_index;
    Stack.push root stack;
    on_stack.(root) <- true;
    while not (Stack.is_empty work) do
      let v, rest = Stack.top work in
      match !rest with
      | w :: tl ->
        rest := tl;
        if index.(w) < 0 then begin
          index.(w) <- !next_index;
          low.(w) <- !next_index;
          incr next_index;
          Stack.push w stack;
          on_stack.(w) <- true;
          Stack.push (w, ref t.succ.(w)) work
        end
        else if on_stack.(w) then low.(v) <- min low.(v) index.(w)
      | [] ->
        ignore (Stack.pop work);
        if low.(v) = index.(v) then begin
          let continue = ref true in
          while !continue do
            let w = Stack.pop stack in
            on_stack.(w) <- false;
            comp.(w) <- !next_comp;
            if w = v then continue := false
          done;
          incr next_comp
        end;
        if not (Stack.is_empty work) then begin
          let p, _ = Stack.top work in
          low.(p) <- min low.(p) low.(v)
        end
    done
  in
  for l = 0 to n - 1 do
    if index.(l) < 0 then visit l
  done;
  (comp, !next_comp)

(* Probing candidates: literals that imply something but are implied by
   nothing (roots of the implication dag).  Propagating such a literal
   reaches the largest closed set of consequences. *)
let probe_candidates t =
  let n = t.nlits in
  let has_pred = Array.make n false in
  for l = 0 to n - 1 do
    List.iter (fun w -> if w < n then has_pred.(w) <- true) t.succ.(l)
  done;
  let out = ref [] in
  for l = n - 1 downto 0 do
    if t.succ.(l) <> [] && not has_pred.(l) then out := l :: !out
  done;
  !out
