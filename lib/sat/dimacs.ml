(* DIMACS separates tokens with any whitespace run — spaces, tabs, and the
   CR left on every line of a CRLF file. *)
let tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char '\r')
  |> List.filter (fun w -> w <> "")

let parse text =
  let lines = String.split_on_char '\n' text in
  let nvars = ref (-1) in
  let nclauses = ref (-1) in
  let clauses = ref [] in
  let current = ref [] in
  let error = ref None in
  let fail m = if !error = None then error := Some m in
  List.iter
    (fun line ->
      let line = String.trim line in
      if !error <> None || line = "" || line.[0] = 'c' then ()
      else if line.[0] = 'p' then begin
        match tokens line with
        | [ "p"; "cnf"; v; c ] -> (
            match (int_of_string_opt v, int_of_string_opt c) with
            | Some v, Some c when v >= 0 && c >= 0 ->
                nvars := v;
                nclauses := c
            | _ -> fail "bad p line")
        | _ -> fail "bad p line"
      end
      else if !nvars < 0 then fail "clause before p line"
      else
        tokens line
        |> List.iter (fun w ->
               match int_of_string_opt w with
               | None -> fail ("bad literal " ^ w)
               | Some 0 ->
                   clauses := List.rev !current :: !clauses;
                   current := []
               | Some l ->
                   if abs l > !nvars then fail ("literal out of range " ^ w)
                   else current := l :: !current))
    lines;
  match !error with
  | Some e -> Error e
  | None ->
      if !nvars < 0 then Error "missing p line"
      else begin
        if !current <> [] then clauses := List.rev !current :: !clauses;
        Ok (!nvars, List.rev !clauses)
      end

let to_string ~nvars clauses =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" nvars (List.length clauses));
  List.iter
    (fun clause ->
      List.iter (fun l -> Buffer.add_string buf (string_of_int l ^ " ")) clause;
      Buffer.add_string buf "0\n")
    clauses;
  Buffer.contents buf

let load solver text =
  match parse text with
  | Error e -> Error e
  | Ok (nvars, clauses) ->
      for _ = 1 to nvars do
        ignore (Solver.new_var solver)
      done;
      let ok =
        List.for_all
          (fun clause ->
            Solver.add_clause solver
              (List.map (fun l -> Solver.mklit (abs l - 1) (l < 0)) clause))
          clauses
      in
      Ok ok

let of_miter g =
  let clauses = ref [] in
  let add c = clauses := c :: !clauses in
  (* Node i maps to DIMACS variable i+1. *)
  let dlit (l : Aig.Lit.t) =
    let v = Aig.Lit.node l + 1 in
    if Aig.Lit.is_compl l then -v else v
  in
  add [ -1 ] (* the constant node is false *);
  Aig.Network.iter_ands g (fun n ->
      let f0 = Aig.Network.fanin0 g n and f1 = Aig.Network.fanin1 g n in
      let vn = n + 1 in
      add [ -vn; dlit f0 ];
      add [ -vn; dlit f1 ];
      add [ vn; -dlit f0; -dlit f1 ]);
  (* Some output must be set: UNSAT iff the miter is proved. *)
  add (Array.to_list (Array.map dlit (Aig.Network.pos g)));
  to_string ~nvars:(Aig.Network.num_nodes g) (List.rev !clauses)
