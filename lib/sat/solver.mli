(** CDCL SAT solver (MiniSat-style).

    Two-watched-literal propagation, EVSIDS variable activity, phase
    saving, Luby restarts, first-UIP clause learning.  Supports incremental
    solving under assumptions and per-call conflict limits — the two
    features SAT sweeping relies on (the paper's baseline runs ABC [&cec]
    with a conflict budget per call). *)

type t

(** Literals are [2*var] (positive) or [2*var+1] (negated). *)
type lit = int

val mklit : int -> bool -> lit

(** [neg l] is the complement literal. *)
val neg : lit -> lit

val var_of_lit : lit -> int

type result = Sat | Unsat | Unknown

val create : unit -> t

(** Allocate a fresh variable; returns its index. *)
val new_var : t -> int

val num_vars : t -> int

(** Add a clause (level-0 simplification applied).  Returns [false] when
    the clause makes the instance trivially unsatisfiable. *)
val add_clause : t -> lit list -> bool

(** [solve t ~assumptions ~conflict_limit ?cancel] runs CDCL search.
    [Unknown] is returned when the conflict budget is exhausted, or when
    [cancel] fires — the token is polled every few dozen conflicts and
    decisions, so a cancelled search unwinds within a bounded number of
    iterations.  The solver stays usable for further [solve] calls after
    either kind of [Unknown]. *)
val solve :
  ?assumptions:lit list -> ?conflict_limit:int -> ?cancel:Par.Cancel.t -> t -> result

(** Value of a variable in the last model (valid only after [Sat]). *)
val model_value : t -> int -> bool

(** Total conflicts since creation (statistics). *)
val num_conflicts : t -> int

(** Total propagations since creation (statistics). *)
val num_propagations : t -> int
