(** CDCL SAT solver (MiniSat-style).

    Two-watched-literal propagation, EVSIDS variable activity on an
    indexed binary heap, phase saving, Luby restarts, first-UIP clause
    learning, LBD-scored learnt-clause database reduction.  Supports
    incremental solving under assumptions and per-call conflict limits —
    the two features SAT sweeping relies on (the paper's baseline runs
    ABC [&cec] with a conflict budget per call) — plus an optional
    {!simplify} preprocessing call (BVE, subsumption, equivalent
    literals, XOR/Gauss, failed-literal probing; see {!Simplify}). *)

type t

(** Literals are [2*var] (positive) or [2*var+1] (negated). *)
type lit = int

val mklit : int -> bool -> lit

(** [neg l] is the complement literal. *)
val neg : lit -> lit

val var_of_lit : lit -> int

type result = Sat | Unsat | Unknown

val create : unit -> t

(** Allocate a fresh variable; returns its index. *)
val new_var : t -> int

val num_vars : t -> int

(** Add a clause (level-0 simplification applied).  Returns [false] when
    the clause makes the instance trivially unsatisfiable. *)
val add_clause : t -> lit list -> bool

(** [solve t ~assumptions ~conflict_limit ?cancel] runs CDCL search.
    [Unknown] is returned when the conflict budget is exhausted, or when
    [cancel] fires — the token is polled every few dozen conflicts and
    decisions, so a cancelled search unwinds within a bounded number of
    iterations.  The solver stays usable for further [solve] calls after
    either kind of [Unknown]. *)
val solve :
  ?assumptions:lit list -> ?conflict_limit:int -> ?cancel:Par.Cancel.t -> t -> result

(** Value of a variable in the last model (valid only after [Sat]).
    Covers {e every} variable: values of variables eliminated by
    {!simplify} are reconstructed from the stored elimination records, so
    the model always satisfies the original clauses. *)
val model_value : t -> int -> bool

(** Like {!model_value} but {e without} reconstruction of eliminated
    variables (their entries are whatever the search left behind).  Only
    for tests that need to observe the difference — e.g. the fuzzer's
    deliberately-broken reconstruction stub. *)
val model_value_raw : t -> int -> bool

(** [simplify ?config ?cancel ?frozen t] preprocesses the clause database
    at decision level 0: bounded variable elimination, subsumption +
    self-subsuming resolution, equivalent-literal substitution, XOR
    extraction with Gaussian elimination, then failed-literal probing.
    Variables listed in [frozen] are never eliminated nor substituted —
    callers MUST freeze every variable they will later pass in
    [assumptions] (eliminated variables no longer constrain the search,
    so assuming them would be meaningless).  Adding a clause over an
    eliminated variable afterwards is likewise invalid; check
    {!is_eliminated} when in doubt.  Learnt clauses are dropped.  Polls
    [cancel] throughout; a cancelled call leaves a partially simplified
    but equisatisfiable solver. *)
val simplify :
  ?config:Simplify.config -> ?cancel:Par.Cancel.t -> ?frozen:int list -> t -> unit

(** Was this variable eliminated by {!simplify}? *)
val is_eliminated : t -> int -> bool

(** Cumulative preprocessing statistics for this solver. *)
val simp_stats : t -> Simplify.stats

(** Total conflicts since creation (statistics). *)
val num_conflicts : t -> int

(** Total propagations since creation (statistics). *)
val num_propagations : t -> int

val num_restarts : t -> int
val num_reduce_dbs : t -> int

(** Learnt clauses dropped by database reductions. *)
val num_learnts_removed : t -> int

(** {1 Cube-and-conquer hooks}

    Used by the sharded sweeping coordinator: a stalled solver reports its
    hottest variables, the coordinator splits the search space into cubes
    on them, and workers solving the same formula exchange short learnt
    clauses. *)

(** [top_activity_vars ?limit t] is at most [limit] unassigned,
    non-eliminated variables in decreasing EVSIDS activity (ties broken by
    variable id, so the ranking is deterministic for a given search
    history).  Only meaningful after a [solve] call has bumped
    activities. *)
val top_activity_vars : ?limit:int -> t -> int list

(** [learnt_clauses ?max_len ?limit t] is up to [limit] learnt clauses of
    at most [max_len] literals, most recent first, skipping clauses over
    eliminated variables.  Clauses learnt under assumptions are implied by
    the clause database alone, so they may be replayed into any solver
    holding the same formula. *)
val learnt_clauses : ?max_len:int -> ?limit:int -> t -> lit list list

(** [import_clause t lits] adds a clause learnt elsewhere over the same
    formula.  Returns [false] when the clause is rejected — empty, a
    malformed literal, or a variable eliminated by {!simplify} here.  An
    imported clause that conflicts at level 0 makes further [solve]s
    return [Unsat], which is sound for an implied clause. *)
val import_clause : t -> lit list -> bool
