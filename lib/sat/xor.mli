(** XOR constraint mining for arithmetic CNF.

    [extract] recovers complete k-ary XOR constraints from their 2^(k-1)
    CNF clauses (grouped by sorted variable set; uniform negation parity;
    all sign patterns present).  [eliminate] runs sparse GF(2) Gaussian
    elimination over the recovered rows and reports only derived {e facts}
    — units, binary equivalences, or unsatisfiability — leaving the
    originating clauses untouched, so partial extraction is always
    sound. *)

type xor_row = {
  vars : int list;  (** strictly increasing variable ids *)
  rhs : bool;  (** vars sum to [rhs] over GF(2) *)
}

type fact =
  | Unit of int * bool  (** variable forced to value *)
  | Equiv of int * int * bool  (** [Equiv (x, y, s)]: x = y xor s *)
  | Unsat  (** the XOR system is contradictory *)

(** Scan clauses (duplicate-free literal arrays in solver encoding) for
    complete XOR constraints of arity [min_arity..max_arity] (defaults
    3..6 — arity 2 is the equivalent-literal pass's job). *)
val extract : ?min_arity:int -> ?max_arity:int -> int array list -> xor_row list

(** Gaussian elimination with smallest-variable pivots.  Rows growing past
    [max_row] (default 24) during merging are dropped, which only loses
    derivations.  If [Unsat] is present it is the only element. *)
val eliminate : ?max_row:int -> xor_row list -> fact list
