type config = {
  conflict_limit : int;
  final_conflict_limit : int;
  sim_words : int;
  seed : int64;
  max_rounds : int;
  cex_batch : int;
  pair_batch : int;
  use_distance_one : bool;
  use_reverse_sim : bool;
  simplify : bool;
}

let default_config =
  {
    conflict_limit = 1000;
    final_conflict_limit = max_int;
    sim_words = 4;
    seed = 0x5eedL;
    max_rounds = 30;
    cex_batch = 48;
    pair_batch = max_int;
    use_distance_one = false;
    use_reverse_sim = false;
    simplify = true;
  }

type outcome = Equivalent | Inequivalent of Sim.Cex.t * int | Undecided

type stats = {
  mutable sat_calls : int;
  mutable sat_unsat : int;
  mutable sat_sat : int;
  mutable sat_unknown : int;
  mutable merged : int;
  mutable rounds : int;
  mutable cex_count : int;
  mutable rsim_splits : int;
  mutable candidates : int;
  mutable conflicts : int;
  mutable batches : int;
  mutable cnf_loads : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable restarts : int;
  mutable reduce_dbs : int;
  mutable learnts_removed : int;
  simp : Simplify.stats;
}

let new_stats () =
  {
    sat_calls = 0;
    sat_unsat = 0;
    sat_sat = 0;
    sat_unknown = 0;
    merged = 0;
    rounds = 0;
    cex_count = 0;
    rsim_splits = 0;
    candidates = 0;
    conflicts = 0;
    batches = 0;
    cnf_loads = 0;
    cache_hits = 0;
    cache_misses = 0;
    restarts = 0;
    reduce_dbs = 0;
    learnts_removed = 0;
    simp = Simplify.mk_stats ();
  }

let merge_stats ~into:a b =
  a.sat_calls <- a.sat_calls + b.sat_calls;
  a.sat_unsat <- a.sat_unsat + b.sat_unsat;
  a.sat_sat <- a.sat_sat + b.sat_sat;
  a.sat_unknown <- a.sat_unknown + b.sat_unknown;
  a.rsim_splits <- a.rsim_splits + b.rsim_splits;
  a.candidates <- a.candidates + b.candidates;
  a.conflicts <- a.conflicts + b.conflicts;
  a.cnf_loads <- a.cnf_loads + b.cnf_loads;
  a.cache_hits <- a.cache_hits + b.cache_hits;
  a.cache_misses <- a.cache_misses + b.cache_misses;
  a.restarts <- a.restarts + b.restarts;
  a.reduce_dbs <- a.reduce_dbs + b.reduce_dbs;
  a.learnts_removed <- a.learnts_removed + b.learnts_removed;
  Simplify.add_stats a.simp b.simp

(* Fold one solver's search/preprocessing counters into sweep stats. *)
let absorb_solver stats solver =
  stats.conflicts <- stats.conflicts + Solver.num_conflicts solver;
  stats.restarts <- stats.restarts + Solver.num_restarts solver;
  stats.reduce_dbs <- stats.reduce_dbs + Solver.num_reduce_dbs solver;
  stats.learnts_removed <-
    stats.learnts_removed + Solver.num_learnts_removed solver;
  Simplify.add_stats stats.simp (Solver.simp_stats solver)

(* Preprocess [solver] for PO checking on [g]: the unsolved PO node
   variables are frozen (they are assumed one by one afterwards), every
   other variable — PIs included — may be eliminated; counter-example
   values for eliminated PIs come back through model reconstruction. *)
let simplify_for_pos ?cancel solver g pos =
  let frozen =
    List.filter_map
      (fun po ->
        let l = Aig.Network.po g po in
        if Aig.Network.is_const (Aig.Lit.node l) then None
        else Some (Solver.var_of_lit (Cnf.lit l)))
      pos
  in
  Solver.simplify ?cancel ~frozen solver

(* Prove [target = repr_lit] on [g] through two SAT calls; [solver] holds
   the CNF of [g].  Returns [`Proved], [`Cex assignment] or [`Unknown]. *)
let prove_pair solver stats ~conflict_limit ?cancel g repr_lit target =
  let a = Cnf.lit repr_lit and b = Cnf.lit target in
  let query assumptions =
    stats.sat_calls <- stats.sat_calls + 1;
    match Solver.solve ~assumptions ~conflict_limit ?cancel solver with
    | Solver.Unsat ->
        stats.sat_unsat <- stats.sat_unsat + 1;
        `Unsat
    | Solver.Sat ->
        stats.sat_sat <- stats.sat_sat + 1;
        `Sat (Cnf.model_cex solver g)
    | Solver.Unknown ->
        stats.sat_unknown <- stats.sat_unknown + 1;
        `Unknown
  in
  (* repr_lit may be constant false (merging into the constant class). *)
  let first =
    if repr_lit = Aig.Lit.const_false then `Unsat
    else if repr_lit = Aig.Lit.const_true then query [ Solver.neg b ]
    else query [ a; Solver.neg b ]
  in
  match first with
  | `Sat cex -> `Cex cex
  | `Unknown -> `Unknown
  | `Unsat -> (
      let second =
        if repr_lit = Aig.Lit.const_false then query [ b ]
        else if repr_lit = Aig.Lit.const_true then `Unsat
        else query [ Solver.neg a; b ]
      in
      match second with
      | `Sat cex -> `Cex cex
      | `Unknown -> `Unknown
      | `Unsat -> `Proved)

(* Speculative per-pair verdict of one proof batch, before the
   deterministic commit. *)
type pverdict = P_skipped | P_proved | P_cex of Sim.Cex.t | P_unknown

(* The shared sweeping core: round-based class refinement and SAT merging,
   returning the reduced network.  [check] adds the final PO decision on
   top; [fraig] returns the network as an optimisation result.

   Candidate-pair proving is parallel and deterministic: the round's pairs
   are split into fixed batches of [config.pair_batch]; each batch is
   proved speculatively by whichever pool worker claims it, on a private
   solver with its own CNF load (so a batch's verdicts depend only on the
   network and the batch slice, never on scheduling); then the verdicts
   are committed in pair-index order under the global [cex_batch] cap.
   The result — verdicts, merge counts, reduced networks, stats — is
   bit-identical for any pool size.  The price is speculation: a batch
   may prove pairs the commit discards because an earlier batch already
   filled the counter-example budget. *)
let sweep_core ?(config = default_config) ?classes ?pcache ?cancel ~pool ~stats
    g0 =
  let rng = Sim.Rng.create ~seed:config.seed in
  let g = ref g0 in
  let carried_classes = ref classes in
  let pending_cexs = ref [] in
  let finished = ref false in
  let round = ref 0 in
  while
    (not !finished) && !round < config.max_rounds
    && not (Par.Cancel.poll_opt cancel)
  do
    incr round;
    stats.rounds <- stats.rounds + 1;
    let sigs =
      Sim.Psim.run !g ~nwords:config.sim_words ~rng ~pool ~embed:!pending_cexs
    in
    pending_cexs := [];
    let classes =
      match !carried_classes with
      | Some c ->
          carried_classes := None;
          Sim.Eclass.refine c sigs
      | None -> Sim.Eclass.of_sigs !g sigs ()
    in
    let pairs =
      Sim.Eclass.pairs classes
      |> List.sort (fun a b -> compare a.Sim.Eclass.other b.Sim.Eclass.other)
      |> Array.of_list
    in
    let n = Array.length pairs in
    let dbg = Sys.getenv_opt "SIMSWEEP_SWEEP_DEBUG" <> None in
    let t_round = Sys.time () in
    if dbg then
      Printf.eprintf "[sweep] round %d: nodes=%d pairs=%d\n%!" !round
        (Aig.Network.num_nodes !g) n;
    if n = 0 then finished := true
    else begin
      let cur = !g in
      (* Clamp to [n] so [pair_batch = max_int] (the default) cannot
         overflow the batch count. *)
      let bsz = max 1 (min config.pair_batch n) in
      let nbatches = (n + bsz - 1) / bsz in
      let verdicts = Array.make n P_skipped in
      let bstats = Array.init nbatches (fun _ -> new_stats ()) in
      (* Cross-request pair cache: one O(n) hash pass per round keys every
         candidate; a hit skips the SAT proof entirely.  Freshly proved
         keys are collected per batch and flushed at the end of the round,
         so a lookup never observes a record from the same round —
         cache-hit counts stay independent of pool scheduling. *)
      let hashes =
        match pcache with
        | Some _ -> Some (Aig.Shash.node_hashes cur)
        | None -> None
      in
      let proved_keys = Array.make nbatches [] in
      let eval_batch b =
          let st = bstats.(b) in
          let solver = Solver.create () in
          st.cnf_loads <- st.cnf_loads + 1;
          let loaded = Cnf.load solver cur in
          assert loaded;
          let lo = b * bsz and hi = min n ((b + 1) * bsz) in
          (* Preprocess the batch solver with every node variable this
             batch may assume frozen.  The frozen set depends only on the
             batch slice, so verdicts stay scheduling-independent. *)
          if config.simplify then begin
            let frozen = ref [] in
            for i = lo to hi - 1 do
              let { Sim.Eclass.repr; other; _ } = pairs.(i) in
              if not (Aig.Network.is_const repr) then frozen := repr :: !frozen;
              frozen := other :: !frozen
            done;
            Solver.simplify ?cancel ~frozen:!frozen solver
          end;
          (* The batch-local counter-example cap mirrors the global commit
             cap: once this batch alone could fill the refinement budget
             there is no point proving its remaining pairs. *)
          let fresh = ref 0 in
          let i = ref lo in
          (* [poll_opt], not [is_set_opt]: a pair decided by the cache or
             by reverse simulation makes no SAT call, so a batch of such
             pairs would otherwise never consult the clock and an expired
             deadline would only latch at the next round boundary. *)
          while
            !i < hi && !fresh < config.cex_batch
            && not (Par.Cancel.poll_opt cancel)
          do
            let { Sim.Eclass.repr; other; compl_ } = pairs.(!i) in
            st.candidates <- st.candidates + 1;
            let repr_lit = Aig.Lit.make repr compl_ in
            let target = Aig.Lit.make other false in
            let ckey =
              match (pcache, hashes) with
              | Some pc, Some hs ->
                  let k = Aig.Shash.pair_key hs repr_lit target in
                  if pc.Aig.Pcache.lookup_pair k then begin
                    st.cache_hits <- st.cache_hits + 1;
                    `Hit
                  end
                  else begin
                    st.cache_misses <- st.cache_misses + 1;
                    `Miss k
                  end
              | _ -> `Off
            in
            (match ckey with
            | `Hit -> verdicts.(!i) <- P_proved
            | `Miss _ | `Off -> (
                (* Reverse simulation first: a justified distinguishing
                   pattern disproves the pair without any SAT effort. *)
                let rsim_cex =
                  if not config.use_reverse_sim then None
                  else
                    match Sim.Rsim.justify_pair cur target repr_lit with
                    | Some c -> Some c
                    | None -> Sim.Rsim.justify_pair cur repr_lit target
                in
                match
                  match rsim_cex with
                  | Some cex ->
                      st.rsim_splits <- st.rsim_splits + 1;
                      `Cex cex
                  | None ->
                      prove_pair solver st
                        ~conflict_limit:config.conflict_limit ?cancel cur
                        repr_lit target
                with
                | `Proved ->
                    verdicts.(!i) <- P_proved;
                    (match ckey with
                    | `Miss k -> proved_keys.(b) <- k :: proved_keys.(b)
                    | _ -> ())
                | `Cex cex ->
                    verdicts.(!i) <- P_cex cex;
                    incr fresh
                | `Unknown -> verdicts.(!i) <- P_unknown));
            incr i
          done;
          absorb_solver st solver
      in
      (* Deterministic commit in pair-index order: merges and fresh
         counter-examples are accepted exactly as the sequential schedule
         would, with the global [cex_batch] cap applied at commit time.
         Whenever a [P_skipped] pair is reached here, the cap is already
         filled — batches stop early only after [cex_batch] local CEXs —
         so no provable pair is ever lost to batching.

         Once the cap is filled, nothing later in the round can commit, so
         batches are evaluated lazily in pool-sized waves and the round
         stops scheduling as soon as the committed prefix fills the cap.
         Results stay bit-identical for any pool size: each batch's
         verdicts depend only on its slice, the commit is an in-order
         prefix scan, and batches past the stopping point — evaluated or
         not — never contribute verdicts, stats or cache records.
         (Without this, CEX-rich rounds pay the proof-and-discard cost of
         every batch: nbatches × the sequential schedule's work.) *)
      let repl = Array.make (Aig.Network.num_nodes cur) None in
      let fresh_cexs = ref 0 in
      let merged_round = ref 0 in
      let commit_batch b =
        for i = b * bsz to min n ((b + 1) * bsz) - 1 do
          if !fresh_cexs < config.cex_batch then
            match verdicts.(i) with
            | P_skipped | P_unknown -> ()
            | P_proved ->
                let { Sim.Eclass.repr; other; compl_ } = pairs.(i) in
                if repl.(other) = None then begin
                  repl.(other) <- Some (Aig.Lit.make repr compl_);
                  incr merged_round;
                  stats.merged <- stats.merged + 1
                end
            | P_cex cex ->
                stats.cex_count <- stats.cex_count + 1;
                incr fresh_cexs;
                pending_cexs := cex :: !pending_cexs;
                if config.use_distance_one then
                  pending_cexs :=
                    Sim.Cex.distance_one ~limit:8 cex @ !pending_cexs
        done
      in
      let wave = max 1 (Par.Pool.num_workers pool) in
      let next = ref 0 in
      (* [poll_opt] so a deadline expiring mid-round stops the wave
         schedule at the next batch boundary instead of running every
         remaining batch of the round. *)
      while
        !next < nbatches
        && !fresh_cexs < config.cex_batch
        && not (Par.Cancel.poll_opt cancel)
      do
        let hi = min nbatches (!next + wave) in
        Par.Pool.parallel_for pool ~chunk:1 ~start:!next ~stop:hi eval_batch;
        let b = ref !next in
        while !b < hi && !fresh_cexs < config.cex_batch do
          commit_batch !b;
          merge_stats ~into:stats bstats.(!b);
          stats.batches <- stats.batches + 1;
          incr b
        done;
        next := !b
      done;
      (match pcache with
      | Some pc ->
          for b = 0 to !next - 1 do
            List.iter (fun k -> pc.Aig.Pcache.record_pair k) proved_keys.(b)
          done
      | None -> ());
      if dbg then
        Printf.eprintf
          "[sweep] round %d: committed %d/%d batches, merged=%d cexs=%d \
           conflicts=%d (%.2fs)\n%!"
          !round !next nbatches !merged_round !fresh_cexs stats.conflicts
          (Sys.time () -. t_round);
      if !merged_round > 0 then begin
        let r = Aig.Reduce.apply cur ~repl in
        g := r.Aig.Reduce.network
      end;
      (* Fixed point: nothing merged and no new counter-example. *)
      if !merged_round = 0 && !fresh_cexs = 0 then finished := true
    end
  done;
  !g

let check ?(config = default_config) ?classes ?pcache ?cancel ~pool g0 =
  let stats = new_stats () in
  (* Cross-request cache pre-pass.  [consult] discharges cached POs in
     place, so it runs on a copy — callers hand us their own miter. *)
  let g0, cache_disproved, cache_pending =
    match pcache with
    | None -> (g0, None, [])
    | Some pc ->
        let g0 = Aig.Network.copy g0 in
        let r = Sim.Pcheck.consult pc g0 in
        stats.cache_hits <- stats.cache_hits + r.Sim.Pcheck.hits;
        stats.cache_misses <- stats.cache_misses + r.Sim.Pcheck.misses;
        (g0, r.Sim.Pcheck.disproved, r.Sim.Pcheck.pending)
  in
  let finish outcome =
    (match pcache with
    | Some pc ->
        Sim.Pcheck.record pc ~pending:cache_pending
          (match outcome with
          | Equivalent -> `Proved
          | Inequivalent (cex, po) -> `Disproved (cex, po)
          | Undecided -> `Undecided)
    | None -> ());
    (outcome, stats)
  in
  match cache_disproved with
  | Some (cex, po) -> finish (Inequivalent (cex, po))
  | None ->
  let g = sweep_core ~config ?classes ?pcache ?cancel ~pool ~stats g0 in
  (* Final PO checking on the reduced miter. *)
  let outcome =
    if Aig.Miter.solved g then Equivalent
    else if Par.Cancel.poll_opt cancel then Undecided
    else begin
      let solver = Solver.create () in
      stats.cnf_loads <- stats.cnf_loads + 1;
      let loaded = Cnf.load solver g in
      if not loaded then Equivalent
      else begin
        let unsolved = Aig.Miter.unsolved_outputs g in
        if config.simplify then simplify_for_pos ?cancel solver g unsolved;
        let rec check_pos = function
          | [] -> Equivalent
          | po :: rest -> (
              let l = Aig.Network.po g po in
              if l = Aig.Lit.const_false then check_pos rest
              else begin
                stats.sat_calls <- stats.sat_calls + 1;
                match
                  Solver.solve
                    ~assumptions:[ Cnf.lit l ]
                    ~conflict_limit:config.final_conflict_limit ?cancel solver
                with
                | Solver.Unsat ->
                    stats.sat_unsat <- stats.sat_unsat + 1;
                    check_pos rest
                | Solver.Sat ->
                    stats.sat_sat <- stats.sat_sat + 1;
                    Inequivalent (Cnf.model_cex solver g, po)
                | Solver.Unknown ->
                    stats.sat_unknown <- stats.sat_unknown + 1;
                    Undecided
              end)
        in
        let r = check_pos unsolved in
        absorb_solver stats solver;
        r
      end
    end
  in
  finish outcome

let fraig ?(config = default_config) ?cancel ~pool g =
  let stats = new_stats () in
  (* Work on a copy: sweeping mutates nothing, but Reduce renumbers. *)
  let reduced = sweep_core ~config ?cancel ~pool ~stats (Aig.Network.copy g) in
  (reduced, stats)

let check_direct ?(simplify = true) ?(conflict_limit = max_int) ?cancel g =
  if Aig.Miter.solved g then Equivalent
  else begin
    let solver = Solver.create () in
    if not (Cnf.load solver g) then Equivalent
    else begin
      let unsolved = Aig.Miter.unsolved_outputs g in
      if simplify then simplify_for_pos ?cancel solver g unsolved;
      let rec go = function
        | [] -> Equivalent
        | po :: rest -> (
            let l = Aig.Network.po g po in
            match
              Solver.solve ~assumptions:[ Cnf.lit l ] ~conflict_limit ?cancel solver
            with
            | Solver.Unsat -> go rest
            | Solver.Sat -> Inequivalent (Cnf.model_cex solver g, po)
            | Solver.Unknown -> Undecided)
      in
      go unsolved
    end
  end
