(** Indexed binary max-heap over small non-negative integers.

    The branching-order heap of the CDCL solver: elements are variable
    ids, priorities live in the caller's activity array.  Every mutating
    operation takes the [less] comparison explicitly ([less u v] = "u has
    strictly higher priority"), so the caller's priority store may be
    swapped or regrown without notifying the heap — only the next
    operation needs the fresh comparison.  [update] implements
    increase/decrease-key in O(log n) after an external priority
    change. *)

type t

val create : ?capacity:int -> unit -> t
val size : t -> int
val is_empty : t -> bool

(** [mem t e] — is [e] currently in the heap? *)
val mem : t -> int -> bool

(** Insert [e]; no-op when already present.  Grows internal storage as
    needed. *)
val insert : less:(int -> int -> bool) -> t -> int -> unit

(** Highest-priority element, or [None] when empty. *)
val top : t -> int option

(** Remove and return the highest-priority element.  The heap must not be
    empty. *)
val pop : less:(int -> int -> bool) -> t -> int

(** Restore the heap property around [e] after its priority changed in
    either direction (increase- or decrease-key).  No-op when [e] is not
    in the heap. *)
val update : less:(int -> int -> bool) -> t -> int -> unit

(** Remove [e] from any position; no-op when absent. *)
val remove : less:(int -> int -> bool) -> t -> int -> unit

(** Empty the heap (keeps storage). *)
val clear : t -> unit
