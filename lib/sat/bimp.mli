(** Binary implication graph over solver literals (lit = 2*var lor sign).

    Feeds two preprocessing passes: equivalent-literal substitution (SCCs
    of the graph are equality classes of literals) and failed-literal
    probing (roots of the implication dag are the highest-coverage probe
    candidates). *)

type t

val create : ?nvars:int -> unit -> t

(** Register the binary clause (a \/ b), adding edges ¬a → b and
    ¬b → a.  Grows the graph as needed. *)
val add_clause : t -> int -> int -> unit

val successors : t -> int -> int list
val out_degree : t -> int -> int

(** [sccs t] = [(comp, ncomps)]: Tarjan strongly connected components.
    [comp.(l)] is the component id of literal [l]; equal ids mean the
    literals are equivalent in every model.  A variable whose two
    literals share a component witnesses unsatisfiability.  Component
    ids are in reverse topological order (Tarjan numbering). *)
val sccs : t -> int array * int

(** Literals with outgoing edges but no incoming ones — the preferred
    failed-literal probes, in increasing literal order. *)
val probe_candidates : t -> int list
