(** SAT sweeping combinational equivalence checker — the baseline engine
    standing in for ABC [&cec] (SAT-based, with pool-parallel
    candidate-pair proving).

    The classic flow: random simulation seeds equivalence classes;
    candidate pairs are proved by incremental SAT under assumptions with a
    per-call conflict budget; counter-examples refine the classes; proved
    pairs are merged and the miter reduced; rounds repeat until a fixed
    point, and finally the remaining POs are checked by SAT.

    Pair proving is parallel {e and} deterministic: a round's pairs are
    split into fixed batches of [pair_batch]; each batch is proved
    speculatively on a private solver (its own CNF load), so its verdicts
    depend only on the network and the batch slice, never on scheduling;
    the verdicts are then committed in pair-index order under the global
    [cex_batch] cap.  Batches are evaluated lazily in pool-sized waves:
    once the committed prefix fills the cap, the round stops scheduling
    and any speculatively evaluated batch past the stopping point is
    discarded wholesale — so verdicts, merge counts, reduced networks and
    stats are bit-identical for any pool size. *)

type config = {
  conflict_limit : int;  (** budget per pair-proving SAT call (ABC's [-C]) *)
  final_conflict_limit : int;  (** budget per final PO check *)
  sim_words : int;  (** 64-bit words per partial-simulation signature *)
  seed : int64;
  max_rounds : int;
  cex_batch : int;  (** resimulate after this many fresh counter-examples *)
  pair_batch : int;
      (** candidate pairs per parallel proof batch; each batch gets a
          private solver and CNF load, so batching buys parallelism at the
          price of redundant loading, preprocessing and lost learnt-clause
          reuse across the round.  That price is steep — a fresh solver
          re-pays the warm-up conflicts of every cone its slice touches —
          so the default is [max_int]: one batch, one solver per round,
          exactly the sequential schedule.  Lower it only when rounds are
          enormous and cores are plentiful. *)
  use_distance_one : bool;  (** expand CEXs at Hamming distance 1 (§V) *)
  use_reverse_sim : bool;
      (** try backward justification ({!Sim.Rsim.justify_pair}) to disprove
          a candidate pair before spending SAT effort on it (§V, after
          Zhang et al.) *)
  simplify : bool;
      (** preprocess the final-PO solver ({!Solver.simplify}: BVE,
          subsumption, equivalent literals, XOR/Gauss, probing) with the
          unsolved PO variables frozen.  Counter-examples remain valid:
          eliminated PI values are reconstructed into the model. *)
}

val default_config : config

type outcome =
  | Equivalent
  | Inequivalent of Sim.Cex.t * int  (** a CEX and the PO it distinguishes *)
  | Undecided

type stats = {
  mutable sat_calls : int;
  mutable sat_unsat : int;
  mutable sat_sat : int;
  mutable sat_unknown : int;
  mutable merged : int;
  mutable rounds : int;
  mutable cex_count : int;
  mutable rsim_splits : int;  (** pairs disproved by reverse simulation *)
  mutable candidates : int;  (** candidate pairs attempted (speculation included) *)
  mutable conflicts : int;  (** CDCL conflicts, summed over all solvers *)
  mutable batches : int;  (** proof batches evaluated and committed *)
  mutable cnf_loads : int;  (** solver CNF loads (one per committed batch) *)
  mutable cache_hits : int;
      (** PO verdicts and candidate pairs discharged from the
          cross-request equivalence cache *)
  mutable cache_misses : int;  (** cache lookups that found nothing *)
  mutable restarts : int;  (** CDCL restarts, summed over all solvers *)
  mutable reduce_dbs : int;  (** learnt-database reductions *)
  mutable learnts_removed : int;  (** learnt clauses dropped by reductions *)
  simp : Simplify.stats;  (** preprocessing counters, summed over solvers *)
}

(** [check ?config ?classes ?pcache ?cancel ~pool miter] decides whether
    every PO of [miter] is constant false.  [classes] optionally seeds the
    equivalence classes (EC transfer from the simulation engine, paper
    §V); node ids in [classes] must refer to [miter].  [pcache] plugs in a
    cross-request equivalence cache ({!Aig.Pcache}): cached PO verdicts
    are consulted before sweeping (on a private copy — [miter] is not
    mutated), candidate pairs are keyed by {!Aig.Shash.pair_key} and
    proved pairs skip their SAT calls on a hit; fresh proofs are recorded
    back.  Pair records flush only at round barriers, so results stay
    bit-identical for any pool size.  [cancel] is polled at round
    boundaries, between batch pairs and inside the SAT search; a cancelled
    check returns [Undecided]. *)
val check :
  ?config:config ->
  ?classes:Sim.Eclass.t ->
  ?pcache:Aig.Pcache.t ->
  ?cancel:Par.Cancel.t ->
  pool:Par.Pool.t ->
  Aig.Network.t ->
  outcome * stats

(** Direct SAT check of every PO without sweeping (used by tests and as a
    portfolio member on small miters).  [simplify] (default true)
    preprocesses the solver before the PO loop, with the PO variables
    frozen; [~simplify:false] gives the plain solver — the fuzz oracle
    cross-checks the two on every case. *)
val check_direct :
  ?simplify:bool ->
  ?conflict_limit:int ->
  ?cancel:Par.Cancel.t ->
  Aig.Network.t ->
  outcome

(** Functional reduction (FRAIGing, Mishchenko et al. — the paper's [7]):
    run the sweeping rounds on a {e single} network and return it with all
    proved-equivalent nodes merged — an optimisation pass rather than a
    check.  The result is functionally equivalent to the input and never
    larger. *)
val fraig :
  ?config:config ->
  ?cancel:Par.Cancel.t ->
  pool:Par.Pool.t ->
  Aig.Network.t ->
  Aig.Network.t * stats
