(* XOR constraint extraction and sparse GF(2) Gaussian elimination.

   A k-ary XOR constraint x1 + x2 + ... + xk = b (sum over GF(2)) is
   encoded in CNF as the 2^(k-1) clauses over {x1..xk} whose number of
   negations has parity 1-b.  Extraction inverts that: group clauses by
   their sorted variable set, check that all groups members share the
   negation parity, and declare the XOR complete once 2^(k-1) distinct
   sign patterns are present.

   Gaussian elimination then combines the recovered rows.  We never delete
   the originating clauses — the linear system is only mined for *facts*
   the CNF solver would need search to find: units (x = b), binary
   equivalences (x = y or x = ¬y), or outright UNSAT (empty row with
   rhs 1).  Facts are returned to the caller; soundness does not depend
   on completeness, so rows that grow beyond [max_row] during merging may
   be dropped. *)

type xor_row = {
  vars : int list;  (* strictly increasing variable ids *)
  rhs : bool;
}

type fact =
  | Unit of int * bool  (* variable, value *)
  | Equiv of int * int * bool  (* x = y xor sign; sign=true means x = ¬y *)
  | Unsat

(* --- extraction ------------------------------------------------------- *)

(* Key a clause by its sorted variable set. *)
let clause_key lits =
  let vars = Array.map (fun l -> l lsr 1) lits in
  Array.sort compare vars;
  vars

let sign_mask lits =
  (* Bit i set iff the literal of the i-th smallest variable is negated. *)
  let k = Array.length lits in
  let order = Array.copy lits in
  Array.sort (fun a b -> compare (a lsr 1) (b lsr 1)) order;
  let m = ref 0 in
  for i = 0 to k - 1 do
    if order.(i) land 1 <> 0 then m := !m lor (1 lsl i)
  done;
  !m

let popcount m =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go m 0

(* [extract ?min_arity ?max_arity clauses] scans the clause list (arrays of
   literals, duplicate-free, sorted or not) and returns the complete XOR
   rows found.  Arity 2 XORs are just binary equivalences, which the
   equivalent-literal pass already handles, so the default minimum is 3. *)
let extract ?(min_arity = 3) ?(max_arity = 6) clauses =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun lits ->
      let k = Array.length lits in
      if k >= min_arity && k <= max_arity then begin
        let key = clause_key lits in
        (* Duplicate variables would collapse the clause arity; skip. *)
        let distinct = ref true in
        for i = 1 to k - 1 do
          if key.(i) = key.(i - 1) then distinct := false
        done;
        if !distinct then begin
          let mask = sign_mask lits in
          let parity = popcount mask land 1 in
          let entry =
            match Hashtbl.find_opt tbl key with
            | Some e -> e
            | None ->
              let e = (ref parity, Hashtbl.create 8, ref true) in
              Hashtbl.add tbl key e;
              e
          in
          let par, masks, ok = entry in
          if parity <> !par then ok := false else Hashtbl.replace masks mask ()
        end
      end)
    clauses;
  let rows = ref [] in
  Hashtbl.iter
    (fun key (par, masks, ok) ->
      let k = Array.length key in
      if !ok && Hashtbl.length masks = 1 lsl (k - 1) then begin
        (* All clauses have #negations parity p; the constraint is
           x1 + ... + xk = 1 - p. *)
        let rhs = !par = 0 in
        rows := { vars = Array.to_list key; rhs } :: !rows
      end)
    tbl;
  !rows

(* --- GF(2) elimination ------------------------------------------------ *)

let xor_merge a b =
  (* Symmetric difference of two strictly increasing lists. *)
  let rec go a b acc =
    match (a, b) with
    | [], rest | rest, [] -> List.rev_append acc rest
    | x :: xs, y :: ys ->
      if x = y then go xs ys acc
      else if x < y then go xs b (x :: acc)
      else go a ys (y :: acc)
  in
  go a b []

(* Eliminate with pivot = smallest variable of each row.  Returns the facts
   implied by the system.  [max_row] caps merged-row growth: oversized
   rows are dropped (sound — we only lose derivations). *)
let eliminate ?(max_row = 24) rows =
  let pivots : (int, xor_row) Hashtbl.t = Hashtbl.create 64 in
  let facts = ref [] in
  let unsat = ref false in
  let rec insert row =
    if not !unsat then
      match row.vars with
      | [] -> if row.rhs then begin
          unsat := true;
          facts := [ Unsat ]
        end
      | [ v ] -> begin
          facts := Unit (v, row.rhs) :: !facts;
          (* Substitute into elimination as the row v = rhs. *)
          match Hashtbl.find_opt pivots v with
          | Some r ->
            Hashtbl.remove pivots v;
            insert { vars = xor_merge row.vars r.vars; rhs = row.rhs <> r.rhs }
          | None -> Hashtbl.add pivots v row
        end
      | [ x; y ] -> begin
          facts := Equiv (x, y, row.rhs) :: !facts;
          match Hashtbl.find_opt pivots x with
          | Some r ->
            insert { vars = xor_merge row.vars r.vars; rhs = row.rhs <> r.rhs }
          | None -> Hashtbl.add pivots x row
        end
      | p :: _ -> (
        match Hashtbl.find_opt pivots p with
        | Some r ->
          let merged = { vars = xor_merge row.vars r.vars; rhs = row.rhs <> r.rhs } in
          if List.length merged.vars <= max_row then insert merged
        | None -> Hashtbl.add pivots p row)
  in
  List.iter
    (fun row ->
      (* Normalise: strictly increasing vars assumed; drop empty true rows. *)
      insert row)
    rows;
  if !unsat then [ Unsat ] else !facts
