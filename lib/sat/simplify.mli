(** SatELite-style CNF preprocessing with model reconstruction.

    The pipeline runs (per round, to a fixpoint or the round limit):
    equivalent-literal substitution over the binary implication graph,
    subsumption + self-subsuming resolution, XOR extraction with GF(2)
    Gaussian elimination, and bounded variable elimination — all over a
    standalone occurrence-list clause database with level-0 unit
    propagation.

    {b Model reconstruction contract}: [run] returns a reconstruction
    stack; given any model of the simplified clauses (over the
    non-eliminated variables), {!extend_model} fills in the eliminated
    variables so the result satisfies every original clause.  This is
    what keeps `Sat.Sweep` counter-examples replayable after
    simplification.

    {b Cancellation contract}: every pass polls [cancel] at its loop
    boundaries; a cancelled run returns early with a partially
    simplified — still equisatisfiable — database and sets
    [s_cancelled]. *)

type config = {
  bve : bool;  (** bounded variable elimination *)
  bve_grow : int;  (** resolvents may exceed removed clauses by this *)
  bve_max_occ : int;  (** skip variables with more total occurrences *)
  bve_resolvent_max : int;  (** abort elimination on longer resolvents *)
  subsume : bool;  (** subsumption + self-subsuming resolution *)
  elit : bool;  (** equivalent-literal substitution *)
  xor_ : bool;  (** XOR extraction + Gaussian elimination *)
  xor_max_arity : int;  (** largest XOR arity mined from clauses *)
  probe : bool;  (** failed-literal probing (performed by the solver) *)
  probe_limit : int;  (** max probes per simplify call *)
  rounds : int;  (** pipeline rounds; stops early at a fixpoint *)
}

val default_config : config

type stats = {
  mutable s_rounds : int;
  mutable s_units : int;
  mutable s_eliminated : int;
  mutable s_subsumed : int;
  mutable s_strengthened : int;
  mutable s_elit : int;
  mutable s_xor_rows : int;
  mutable s_xor_units : int;
  mutable s_xor_equivs : int;
  mutable s_probes : int;
  mutable s_failed_lits : int;
  mutable s_cancelled : bool;
}

val mk_stats : unit -> stats

(** [add_stats dst src] accumulates [src] into [dst]. *)
val add_stats : stats -> stats -> unit

(** One model-reconstruction record.  [R_subst] binds an eliminated
    variable to a literal's value; [R_clause] (eliminated literal first)
    forces its first literal true when all others are false. *)
type recon = R_clause of int array | R_subst of { v : int; lit : int }

type result = {
  clauses : int array list;  (** live simplified clauses, each ≥ 2 lits *)
  units : int list;  (** all level-0 assignments, as true literals *)
  recon : recon list;  (** reconstruction stack, most recent first *)
  unsat : bool;  (** formula refuted during preprocessing *)
  eliminated : bool array;  (** per var: removed by BVE or substitution *)
}

(** [run ~stats ~nvars ~frozen ~units clauses] simplifies the CNF
    [units @ clauses] over variables [0..nvars-1].  Literals use the
    solver encoding (lit = 2·var lor sign).  Variables with
    [frozen.(v)] true are never eliminated nor substituted (they may
    appear in later assumptions), though they can still be assigned by
    unit propagation.  Statistics accumulate into [stats]. *)
val run :
  ?config:config ->
  ?cancel:Par.Cancel.t ->
  stats:stats ->
  nvars:int ->
  frozen:bool array ->
  units:int list ->
  int array list ->
  result

(** [extend_model recon model] assigns every eliminated variable in
    [model] (indexed by variable, non-eliminated entries already set)
    so that the extended model satisfies the original formula. *)
val extend_model : recon list -> bool array -> unit
