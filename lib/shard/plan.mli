(** Shard planning: cut one miter into worker-sized sub-miters.

    Support groups come from {!Simsweep.Partition.groups}.  Groups larger
    than the shard budget are split at PO boundaries
    ({!Simsweep.Partition.split_group}); groups smaller than it are packed
    together so a doubled benchmark's thousands of tiny groups become a
    few dozen extraction passes instead of one full-network scan each.
    The plan depends only on the miter and [max_ands], never on worker
    count or scheduling. *)

type shard = {
  id : int;
  pos : int list;  (** PO indices in the full miter, ascending *)
  sub : Aig.Network.t;  (** extracted sub-miter *)
  pi_origin : int array;  (** sub PI index -> full-miter PI index *)
  ands : int;  (** AND nodes of [sub] *)
}

type t = {
  shards : shard list;  (** in id order; empty when [early] is set *)
  groups : int;  (** support groups in the miter *)
  split_groups : int;  (** groups larger than the budget, split by PO *)
  early : Simsweep.Engine.outcome option;
      (** verdict reached during planning: a constant-true PO disproves
          the miter without spawning anything *)
}

(** [build ~max_ands g] plans the shards.  An all-constant-false miter
    yields an empty shard list and no early verdict (i.e. proved). *)
val build : max_ands:int -> Aig.Network.t -> t
