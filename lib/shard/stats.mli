(** Telemetry for one sharded check: planning shape, per-worker task and
    steal counts, cube-and-conquer effort, clause sharing, and the worker
    process lifecycle.  A worker's steal count is how many tasks it pulled
    beyond an even split of the total — the pull-model's measure of load
    imbalance absorbed. *)

type entry = {
  e_shard : int;
  e_pos : int;  (** POs in the shard *)
  e_ands : int;
  e_worker : int;  (** worker that delivered the verdict *)
  e_wall_s : float;  (** worker-side wall clock for the verdict *)
  e_via : string;  (** ["sweep"] or ["cubes"] *)
  e_verdict : string;
}

type t = {
  workers : int;
  mutable groups : int;
  mutable split_groups : int;
  mutable shards : int;
  mutable wall_s : float;
  tasks : int array;  (** tasks completed, per worker slot *)
  mutable cubes_solved : int;
  mutable cubes_sat : int;
  mutable cubes_unknown : int;
  mutable resplits : int;  (** unknown cubes split into deeper cubes *)
  mutable clauses_shared : int;  (** distinct clauses entering the pools *)
  mutable clause_imports : int;  (** clause copies shipped to workers *)
  mutable conflicts : int;  (** SAT conflicts across all workers *)
  mutable workers_spawned : int;
  mutable workers_crashed : int;
  mutable respawns : int;
  (* {2 Data plane} *)
  mutable transport : string;  (** ["shm"] or ["inline"] *)
  mutable bytes_tx : int;  (** frame bytes written, payload-inclusive *)
  mutable bytes_rx : int;
  mutable frames_tx : int;
  mutable frames_rx : int;
  mutable batched_flushes : int;
      (** clause+cube frame pairs coalesced into one flush *)
  mutable shm_hits : int;  (** dispatches reusing a resident segment *)
  mutable shm_fallbacks : int;  (** shm dispatches re-sent inline *)
  mutable segments_created : int;
  mutable segments_unlinked : int;
  mutable warm_starts : int;  (** workers leased warm from the pool *)
  mutable cold_starts : int;  (** workers spawned cold for this run *)
  mutable pool_discards : int;  (** idle workers that failed ping validation *)
  mutable entries : entry list;  (** most recent first *)
  mutable worker_pids : int list;
}

val create : workers:int -> t

(** Steals per worker slot: tasks beyond [ceil (total / workers)]. *)
val steals : t -> int array

val to_json : t -> Simsweep.Telemetry.json
