(* Shared-memory payload arenas.

   The coordinator writes each shard's AIGER image once into a
   file-backed segment (preferably under /dev/shm so "file-backed" means
   page cache, never disk); dispatch frames then carry
   {segment, offset, length} descriptors instead of megabytes of bytes.
   Cube re-dispatches reference the already-resident shard for free.

   Lifecycle: the creator holds one reference; every dispatch that names
   the segment takes another; replies (or crash-requeues) drop theirs.
   The file is unlinked when the count reaches zero — workers that still
   hold a mapping keep reading safely, the kernel frees the pages when
   the last mapping dies.  A process-exit hook force-unlinks anything
   left, so a coordinator killed mid-run leaks nothing. *)

let prefix = "simsweep-shm-"

let dir =
  lazy
    (let writable d =
       try Sys.is_directory d && Unix.access d [ Unix.W_OK ] = () with _ -> false
     in
     match Sys.getenv_opt "SIMSWEEP_SHM_DIR" with
     | Some d when writable d -> d
     | Some d -> invalid_arg ("SIMSWEEP_SHM_DIR is not a writable dir: " ^ d)
     | None -> (
         if writable "/dev/shm" then "/dev/shm"
         else
           match Sys.getenv_opt "TMPDIR" with
           | Some d when writable d -> d
           | _ -> "/tmp"))

let segment_dir () = Lazy.force dir

type seg = { seg_name : string; seg_len : int }

let name t = t.seg_name
let length t = t.seg_len

(* Registry of segments this process created, with refcounts.  Guarded:
   Check runs in the caller's thread but the serve daemon handles
   connections concurrently. *)
let lock = Mutex.create ()
let live : (string, int) Hashtbl.t = Hashtbl.create 16
let counter = ref 0

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let path_of name = Filename.concat (segment_dir ()) name

(* Validate a wire descriptor name before touching the filesystem: it
   must be one of our segment basenames, never a path. *)
let valid_name n =
  let plen = String.length prefix in
  String.length n > plen
  && String.sub n 0 plen = prefix
  && not (String.exists (fun c -> c = '/' || c = '\\') n)
  && not
       (let rec dotdot i =
          i + 1 < String.length n && ((n.[i] = '.' && n.[i + 1] = '.') || dotdot (i + 1))
        in
        dotdot 0)

let blit_to_map map (s : string) =
  for i = 0 to String.length s - 1 do
    Bigarray.Array1.unsafe_set map i (String.unsafe_get s i)
  done

let blit_of_map map off len =
  String.init len (fun i -> Bigarray.Array1.unsafe_get map (off + i))

let map_fd fd ~shared ~len =
  Bigarray.array1_of_genarray
    (Unix.map_file fd Bigarray.char Bigarray.c_layout shared [| len |])

let create (data : string) =
  let len = String.length data in
  if len = 0 then invalid_arg "Shm.create: empty segment";
  let id = with_lock (fun () -> incr counter; !counter) in
  let seg_name = Printf.sprintf "%s%d-%d" prefix (Unix.getpid ()) id in
  let path = path_of seg_name in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_EXCL ] 0o600 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Unix.ftruncate fd len;
      blit_to_map (map_fd fd ~shared:true ~len) data);
  with_lock (fun () -> Hashtbl.replace live seg_name 1);
  { seg_name; seg_len = len }

let read ~name ~off ~len =
  if not (valid_name name) then Error ("shm: invalid segment name " ^ name)
  else if off < 0 || len <= 0 then Error "shm: negative or empty range"
  else
    match Unix.openfile (path_of name) [ Unix.O_RDONLY ] 0 with
    | exception Unix.Unix_error (e, _, _) ->
        Error ("shm: cannot open segment: " ^ Unix.error_message e)
    | fd ->
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () ->
            let size = (Unix.fstat fd).Unix.st_size in
            if off + len > size then
              Error
                (Printf.sprintf "shm: range %d+%d exceeds segment size %d" off
                   len size)
            else
              match map_fd fd ~shared:false ~len:size with
              | exception Unix.Unix_error (e, _, _) ->
                  Error ("shm: cannot map segment: " ^ Unix.error_message e)
              | map -> Ok (blit_of_map map off len))

let unlink_quietly name = try Sys.remove (path_of name) with Sys_error _ -> ()

let incr_ref t =
  with_lock (fun () ->
      match Hashtbl.find_opt live t.seg_name with
      | Some n -> Hashtbl.replace live t.seg_name (n + 1)
      | None -> ())

let decr_ref t =
  let unlink =
    with_lock (fun () ->
        match Hashtbl.find_opt live t.seg_name with
        | Some n when n <= 1 ->
            Hashtbl.remove live t.seg_name;
            true
        | Some n ->
            Hashtbl.replace live t.seg_name (n - 1);
            false
        | None -> false)
  in
  if unlink then unlink_quietly t.seg_name;
  unlink

let force_unlink t =
  let was_live =
    with_lock (fun () ->
        let found = Hashtbl.mem live t.seg_name in
        Hashtbl.remove live t.seg_name;
        found)
  in
  if was_live then unlink_quietly t.seg_name;
  was_live

let refs t =
  with_lock (fun () ->
      Option.value ~default:0 (Hashtbl.find_opt live t.seg_name))

let live_segments () =
  with_lock (fun () -> Hashtbl.fold (fun k _ acc -> k :: acc) live [])

(* Safety net: a coordinator dying with segments still registered must
   not leak /dev/shm files across runs. *)
let () =
  at_exit (fun () ->
      List.iter unlink_quietly (live_segments ());
      with_lock (fun () -> Hashtbl.reset live))
