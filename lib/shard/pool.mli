(** Persistent fork-server worker pool.

    Keeps shard workers alive between {!Check.check} runs so repeated
    requests — in particular repeated [cec --server] shard requests
    against one daemon — hit warm workers (retained allocator and
    solver-cache state) instead of paying exec + cold-start per run.

    The pool holds only {e idle} workers.  {!acquire} leases workers
    out, revalidating every warm candidate with a {!Serve.Protocol}
    ping/pong exchange (dead, wedged or desynced workers are killed and
    replaced with cold spawns); {!release} returns a healthy idle worker
    — never one that is mid-task; leased workers that die are simply
    never returned.  Idle workers are retired after sitting unused past
    the idle budget.  Thread-safe. *)

type t

(** One spawned worker process, attached over a [socketpair].  The
    channels are owned by whoever holds the lease; do not close them
    before {!release} (the pool keeps them open) — {!kill} closes. *)
type worker = {
  pw_pid : int;
  pw_fd : Unix.file_descr;
  pw_ic : in_channel;
  pw_oc : out_channel;
  pw_exe : string;
  pw_domains : int;
  mutable pw_idle_since : float;
}

val pid : worker -> int
val fd : worker -> Unix.file_descr
val ic : worker -> in_channel
val oc : worker -> out_channel

(** Spawn a cold worker: re-exec [exe] with the worker-mode environment
    ({!Worker.mode_env}, {!Worker.domains_env}) over a socketpair.  The
    worker announces itself with [Shard_ready] once up. *)
val spawn : exe:string -> domains:int -> worker

(** SIGKILL + close + reap.  For leased workers that misbehave. *)
val kill : worker -> unit

val create : unit -> t

(** Lease [n] workers for [exe]/[domains].  Matching idle workers are
    ping-validated and returned first, tagged [true] (warm); the
    remainder are cold spawns tagged [false].  Also returns how many
    idle candidates failed validation and were discarded. *)
val acquire :
  t -> exe:string -> domains:int -> n:int -> (worker * bool) list * int

(** Return a healthy, idle worker to the pool (killed instead if the
    pool is shut down). *)
val release : t -> worker -> unit

(** Retire idle workers unused for more than [max_idle_s] (default
    300 s); returns how many were killed.  Also runs implicitly on
    {!acquire}/{!release}. *)
val reap_idle : ?max_idle_s:float -> t -> int

val idle_count : t -> int

(** Kill every idle worker and refuse future releases. *)
val shutdown : t -> unit

(** The process-wide pool (lazily created; emptied by an [at_exit]
    hook). *)
val default : unit -> t
