(** Multi-process sharded sweeping with a cube-and-conquer SAT tail.

    The coordinator plans shards ({!Plan}), spawns [workers] processes
    (re-exec of the host binary, {!Worker}), and schedules shards with
    work-stealing: workers pull the next task whenever idle, so a slow
    shard never serialises the rest.  Verdicts stream back over
    {!Serve.Protocol} shard frames; counter-examples are lifted to the
    full input space before being reported, and a single disproof stops
    the whole run (remaining workers are killed and reaped).

    When a shard's SAT tail stalls, the worker ships back the
    engine-reduced miter and its hottest variables; the coordinator cuts
    the shard into cubes on those variables, fans the cubes across idle
    workers, re-splits any cube that comes back unknown, and relays short
    learnt clauses between the workers attacking the same shard.

    A crashed worker is reaped, its task re-queued, and a replacement
    spawned (up to [max_respawns]) — shards are never lost.  [deadline_s]
    bounds the whole check: it is forwarded to workers with every task
    and enforced coordinator-side; on expiry (or an external [cancel])
    every worker is killed and reaped and the check returns [Undecided].

    {b Data plane.}  With the default [`Shm] transport, each shard's
    AIGER is written once into a {!Shm} segment and dispatch frames
    carry descriptors; cube re-dispatches reference the already-resident
    reduced miter.  Segments are refcounted (owner + one per outstanding
    dispatch) and force-unlinked when the check ends, on every exit
    path.  A worker that cannot resolve a descriptor answers
    [Shard_failed] and the shard falls back to inline bytes — verdicts
    are identical across transports.  With [?pool], workers are leased
    from a {!Pool} (warm when available) and healthy idle workers are
    returned at the end instead of being killed. *)

type transport = [ `Shm | `Inline ]

type config = {
  workers : int;  (** worker processes to spawn *)
  worker_domains : int;  (** simulation domains per worker *)
  max_shard_ands : int;  (** target AND nodes per shard *)
  stall_conflicts : int;  (** SAT budget before a shard counts as stalled *)
  split_vars : int;  (** cube-split candidates requested per stall *)
  cube_conflict_limit : int;  (** budget per cube solve *)
  max_pool_clauses : int;  (** shared-clause pool cap per shard *)
  max_respawns : int;  (** replacement workers after crashes *)
  direct_sat : bool;  (** skip the sweeping engine in workers (tests) *)
  deadline_s : float option;  (** wall-clock budget for the whole check *)
  worker_exe : string option;
      (** worker executable; defaults to [SIMSWEEP_SHARD_WORKER] or
          [Sys.executable_name] *)
  transport : transport;
      (** how AIGER payloads reach local workers (default [`Shm]) *)
  test_kill_worker : int option;
      (** fault injection: SIGKILL this worker slot right after its first
          task assignment *)
}

val default_config : config

(** [check ?config ?cancel ?pool g] checks the miter [g] end to end.
    Verdict classes (proved / disproved / undecided) are deterministic
    for any worker count, transport, and pool temperature; [Undecided]
    is only returned on cancellation, deadline expiry, exhausted
    respawns, or a genuinely stalled cube tree. *)
val check :
  ?config:config ->
  ?cancel:Par.Cancel.t ->
  ?pool:Pool.t ->
  Aig.Network.t ->
  Simsweep.Engine.outcome * Stats.t
