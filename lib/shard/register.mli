(** Opt-in integrations with the rest of the toolkit. *)

(** Register the shard coordinator as a shell [cec] engine: [cec shard]
    (two workers) or [cec shard.N] (N workers).  Call from an entry point
    that also calls {!Worker.maybe_become_worker}, or the spawned workers
    will come up as ordinary shells. *)
val shell : unit -> unit
