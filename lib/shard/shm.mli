(** Shared-memory payload arenas for the shard data plane.

    The coordinator writes each shard's AIGER image once into a
    file-backed segment (under [/dev/shm] when available, else
    [$TMPDIR]/[/tmp]; override with [SIMSWEEP_SHM_DIR]); dispatch frames
    then carry [{seg; off; len}] descriptors ({!Serve.Protocol.blob})
    instead of the bytes, and cube re-dispatches reference the
    already-resident shard for free.

    {b Lifecycle.}  {!create} registers the segment with one reference
    (the creator's).  Every dispatch frame naming the segment takes
    {!incr_ref}; the matching reply (or crash-requeue) drops
    {!decr_ref}.  At zero the file is unlinked — readers holding a
    mapping are unaffected; the kernel frees pages when the last mapping
    goes.  {!force_unlink} is the kill-path cleanup; an [at_exit] hook
    unlinks anything still registered.  Workers only {!read}; they never
    create or unlink. *)

type seg

val name : seg -> string
val length : seg -> int

(** Directory segments live in (resolved once per process). *)
val segment_dir : unit -> string

(** Basename prefix of every segment file ("simsweep-shm-"), exposed so
    tests and CI can scan for leaks. *)
val prefix : string

(** Write [data] into a fresh exclusive 0600 segment via [Unix.map_file]
    and register it with refcount 1.  Raises [Invalid_argument] on empty
    data and [Unix.Unix_error] on filesystem failure. *)
val create : string -> seg

(** Map a segment named by a wire descriptor and copy out [len] bytes at
    [off].  Returns [Error] — never raises — on a name that is not one
    of our segment basenames (path traversal), a missing or unmappable
    file, or a range beyond the segment's size. *)
val read : name:string -> off:int -> len:int -> (string, string) result

val incr_ref : seg -> unit

(** Drop one reference; unlinks at zero.  Returns [true] iff this call
    unlinked the file. *)
val decr_ref : seg -> bool

(** Unregister and unlink regardless of count (kill/deadline paths).
    Idempotent; [true] iff this call unlinked. *)
val force_unlink : seg -> bool

(** Current reference count ([0] once unlinked) — for tests. *)
val refs : seg -> int

(** Names of segments this process created and has not yet unlinked. *)
val live_segments : unit -> string list
