module Pr = Serve.Protocol
module E = Simsweep.Engine

type transport = [ `Shm | `Inline ]

type config = {
  workers : int;
  worker_domains : int;
  max_shard_ands : int;
  stall_conflicts : int;
  split_vars : int;
  cube_conflict_limit : int;
  max_pool_clauses : int;
  max_respawns : int;
  direct_sat : bool;
  deadline_s : float option;
  worker_exe : string option;
  transport : transport;
  test_kill_worker : int option;
}

let default_config =
  {
    workers = 2;
    worker_domains = 1;
    max_shard_ands = 20_000;
    stall_conflicts = 20_000;
    split_vars = 12;
    cube_conflict_limit = max_int;
    max_pool_clauses = 4096;
    max_respawns = 4;
    direct_sat = false;
    deadline_s = None;
    worker_exe = None;
    transport = `Shm;
    test_kill_worker = None;
  }

(* Shard size target: cap at [max_shard_ands] but aim for at least one
   shard per worker, with a floor so tiny miters aren't shredded. *)
let plan_max_ands config g =
  let total = Aig.Network.num_ands g in
  let floor = min 256 config.max_shard_ands in
  max floor (min config.max_shard_ands (total / max 1 config.workers))

(* Run ids distinguish this check from everything a warm worker served
   before it: shard numbering restarts at 0 per run, so frames carry the
   pair.  Atomic because daemon connections can start checks from
   several threads. *)
let run_counter = Atomic.make 0
let next_run_id () = Atomic.fetch_and_add run_counter 1

(* --- coordinator state ------------------------------------------------ *)

type srun = {
  sr : Plan.shard;
  mutable sr_aiger : string option;  (* cached wire form of [sr.sub] *)
  mutable sr_seg : Shm.seg option;  (* shm-resident form of [sr_aiger] *)
  mutable cube_seg : Shm.seg option;  (* shm-resident form of [cube_aiger] *)
  mutable sr_force_inline : bool;  (* a worker failed on this shard's shm *)
  mutable sr_done : string option;  (* verdict tag once settled *)
  mutable sr_t0 : float;  (* first assignment time *)
  (* cube-and-conquer state, populated on stall *)
  mutable cube_aiger : string;
  mutable freeze : int list;  (* split variables, hottest first *)
  mutable pending : int;  (* outstanding cubes *)
  mutable any_unknown : bool;  (* an exhausted cube path stayed unknown *)
  mutable next_cube : int;
  pool_tbl : (Sat.Solver.lit list, unit) Hashtbl.t;
  mutable pool_rev : Sat.Solver.lit list list;  (* newest first *)
  mutable pool_count : int;
}

type task =
  | Check of srun
  | Cube of { c_sr : srun; c_id : int; c_assume : Sat.Solver.lit list; c_depth : int }

type worker = {
  w_id : int;  (* stable slot, reused by respawns *)
  mutable w_conn : Pool.worker;
  mutable w_alive : bool;
  mutable w_ready : bool;
  mutable w_task : task option;
  mutable w_seg : Shm.seg option;  (* segment the outstanding task references *)
  mutable w_cube_shard : int;  (* shard whose cube formula it holds, -1 *)
  mutable w_clauses_sent : int;  (* pool clauses already shipped for it *)
}

exception Done of E.outcome

let worker_exe config =
  match config.worker_exe with
  | Some exe -> exe
  | None -> (
      match Sys.getenv_opt "SIMSWEEP_SHARD_WORKER" with
      | Some exe when exe <> "" -> exe
      | _ -> Sys.executable_name)

let kill_and_reap w =
  if w.w_alive then begin
    w.w_alive <- false;
    w.w_ready <- false;
    Pool.kill w.w_conn
  end

(* --- the check -------------------------------------------------------- *)

let check ?(config = default_config) ?cancel ?pool g =
  let t_start = Unix.gettimeofday () in
  let stats = Stats.create ~workers:(max 1 config.workers) in
  stats.transport <- (match config.transport with `Shm -> "shm" | `Inline -> "inline");
  let io = Simsweep.Telemetry.io_create () in
  let finish outcome =
    stats.wall_s <- Unix.gettimeofday () -. t_start;
    stats.bytes_tx <- io.Simsweep.Telemetry.io_bytes_tx;
    stats.bytes_rx <- io.Simsweep.Telemetry.io_bytes_rx;
    stats.frames_tx <- io.Simsweep.Telemetry.io_frames_tx;
    stats.frames_rx <- io.Simsweep.Telemetry.io_frames_rx;
    (outcome, stats)
  in
  let plan = Plan.build ~max_ands:(plan_max_ands config g) g in
  stats.groups <- plan.Plan.groups;
  stats.split_groups <- plan.Plan.split_groups;
  stats.shards <- List.length plan.Plan.shards;
  match plan.Plan.early with
  | Some verdict -> finish verdict
  | None when plan.Plan.shards = [] -> finish E.Proved
  | None ->
      (* The coordinator writes into worker sockets that can die under it. *)
      Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
      let run = next_run_id () in
      let num_pis = Aig.Network.num_pis g in
      let deadline =
        Option.map (fun d -> t_start +. d) config.deadline_s
      in
      let remaining () =
        Option.map (fun d -> d -. Unix.gettimeofday ()) deadline
      in
      let expired () =
        match remaining () with Some r -> r <= 0. | None -> false
      in
      let sruns =
        List.map
          (fun sh ->
            {
              sr = sh;
              sr_aiger = None;
              sr_seg = None;
              cube_seg = None;
              sr_force_inline = false;
              sr_done = None;
              sr_t0 = 0.;
              cube_aiger = "";
              freeze = [];
              pending = 0;
              any_unknown = false;
              next_cube = 0;
              pool_tbl = Hashtbl.create 64;
              pool_rev = [];
              pool_count = 0;
            })
          plan.Plan.shards
        |> Array.of_list
      in
      let checkq = Queue.create () in
      Array.iter (fun sr -> Queue.add (Check sr) checkq) sruns;
      let cubeq = ref [] in
      let pop_task () =
        match !cubeq with
        | t :: rest ->
            cubeq := rest;
            Some t
        | [] -> Queue.take_opt checkq
      in
      let requeue_front t = cubeq := t :: !cubeq in
      (* Every segment this run creates, for the kill-path sweep. *)
      let created_segs = ref [] in
      let create_seg data =
        let seg = Shm.create data in
        created_segs := seg :: !created_segs;
        stats.segments_created <- stats.segments_created + 1;
        seg
      in
      let drop_ref seg =
        if Shm.decr_ref seg then
          stats.segments_unlinked <- stats.segments_unlinked + 1
      in
      let release_seg w =
        match w.w_seg with
        | Some seg ->
            w.w_seg <- None;
            drop_ref seg
        | None -> ()
      in
      let exe = worker_exe config in
      let domains = max 1 config.worker_domains in
      let cold_spawn () =
        let pw = Pool.spawn ~exe ~domains in
        stats.workers_spawned <- stats.workers_spawned + 1;
        stats.cold_starts <- stats.cold_starts + 1;
        stats.worker_pids <- pw.Pool.pw_pid :: stats.worker_pids;
        pw
      in
      let workers =
        let leased, discards =
          match pool with
          | Some p -> Pool.acquire p ~exe ~domains ~n:(max 1 config.workers)
          | None ->
              (List.init (max 1 config.workers) (fun _ -> (Pool.spawn ~exe ~domains, false)), 0)
        in
        stats.pool_discards <- discards;
        Array.of_list
          (List.mapi
             (fun w_id (pw, warm) ->
               if warm then stats.warm_starts <- stats.warm_starts + 1
               else begin
                 stats.workers_spawned <- stats.workers_spawned + 1;
                 stats.cold_starts <- stats.cold_starts + 1
               end;
               stats.worker_pids <- pw.Pool.pw_pid :: stats.worker_pids;
               {
                 w_id;
                 w_conn = pw;
                 w_alive = true;
                 w_ready = warm;  (* cold workers announce Shard_ready *)
                 w_task = None;
                 w_seg = None;
                 w_cube_shard = -1;
                 w_clauses_sent = 0;
               })
             leased)
      in
      let respawns_left = ref config.max_respawns in
      let test_kill_fired = ref false in
      let respawn w =
        if !respawns_left > 0 then begin
          decr respawns_left;
          stats.respawns <- stats.respawns + 1;
          w.w_conn <- cold_spawn ();
          w.w_alive <- true;
          w.w_ready <- false;
          w.w_task <- None;
          w.w_seg <- None;
          w.w_cube_shard <- -1;
          w.w_clauses_sent <- 0
        end
      in
      let settle sr ~worker ~via ~wall_s verdict_tag =
        sr.sr_done <- Some verdict_tag;
        (* This shard's payloads are dead weight now: drop the owner
           references (outstanding dispatches still hold theirs). *)
        (match sr.sr_seg with Some seg -> sr.sr_seg <- None; drop_ref seg | None -> ());
        (match sr.cube_seg with Some seg -> sr.cube_seg <- None; drop_ref seg | None -> ());
        stats.entries <-
          {
            Stats.e_shard = sr.sr.Plan.id;
            e_pos = List.length sr.sr.Plan.pos;
            e_ands = sr.sr.Plan.ands;
            e_worker = worker;
            e_wall_s = wall_s;
            e_via = via;
            e_verdict = verdict_tag;
          }
          :: stats.entries
      in
      let disprove sr sub_cex po =
        (* Validate before trusting a child process with the verdict. *)
        if
          po < List.length sr.sr.Plan.pos
          && Array.length sub_cex = Aig.Network.num_pis sr.sr.Plan.sub
          && Sim.Cex.check sr.sr.Plan.sub sub_cex po
        then
          let cex =
            Simsweep.Partition.lift_cex ~pi_origin:sr.sr.Plan.pi_origin
              ~num_pis sub_cex
          in
          raise (Done (E.Disproved (cex, List.nth sr.sr.Plan.pos po)))
        else begin
          Printf.eprintf
            "shard: worker returned an invalid counter-example for shard %d\n%!"
            sr.sr.Plan.id;
          sr.sr_done <- Some "undecided"
        end
      in
      let on_crash w =
        if w.w_alive then begin
          w.w_alive <- false;
          w.w_ready <- false;
          Pool.kill w.w_conn;
          release_seg w;
          stats.workers_crashed <- stats.workers_crashed + 1;
          (match w.w_task with
          | Some t ->
              w.w_task <- None;
              requeue_front t
          | None -> ());
          respawn w
        end
      in
      (* Wrap a shard-sized payload for dispatch: a shm descriptor when
         the transport allows it (creating or reusing the resident
         segment), inline bytes otherwise. *)
      let blob_of ~sr ~data ~get_seg ~set_seg =
        match config.transport with
        | `Inline -> Pr.Inline data
        | `Shm when sr.sr_force_inline -> Pr.Inline data
        | `Shm ->
            let seg =
              match get_seg () with
              | Some seg ->
                  stats.shm_hits <- stats.shm_hits + 1;
                  seg
              | None ->
                  let seg = create_seg data in
                  set_seg (Some seg);
                  seg
            in
            Pr.Shm_ref { seg = Shm.name seg; off = 0; len = Shm.length seg }
      in
      let ref_seg w = function
        | Pr.Shm_ref { seg = name; _ } ->
            (* Find the live segment behind the descriptor we just built. *)
            let seg =
              List.find_opt (fun s -> Shm.name s = name) !created_segs
            in
            (match seg with
            | Some seg ->
                Shm.incr_ref seg;
                w.w_seg <- Some seg
            | None -> ())
        | Pr.Inline _ -> ()
      in
      let send_task w t =
        let deadline_in = remaining () in
        let clause_batch = ref None in
        let frame =
          match t with
          | Check sr ->
              if sr.sr_t0 = 0. then sr.sr_t0 <- Unix.gettimeofday ();
              let data =
                match sr.sr_aiger with
                | Some a -> a
                | None ->
                    let a = Aig.Aiger_io.to_binary_string sr.sr.Plan.sub in
                    sr.sr_aiger <- Some a;
                    a
              in
              let aiger =
                blob_of ~sr ~data
                  ~get_seg:(fun () -> sr.sr_seg)
                  ~set_seg:(fun s -> sr.sr_seg <- s)
              in
              ref_seg w aiger;
              Pr.Shard_check
                {
                  run;
                  shard = sr.sr.Plan.id;
                  aiger;
                  stall_conflicts = config.stall_conflicts;
                  split_vars = config.split_vars;
                  direct_sat = config.direct_sat;
                  deadline_in;
                }
          | Cube { c_sr = sr; c_id; c_assume; _ } ->
              let aiger =
                if w.w_cube_shard = sr.sr.Plan.id then None
                else begin
                  w.w_cube_shard <- sr.sr.Plan.id;
                  w.w_clauses_sent <- 0;
                  let b =
                    blob_of ~sr ~data:sr.cube_aiger
                      ~get_seg:(fun () -> sr.cube_seg)
                      ~set_seg:(fun s -> sr.cube_seg <- s)
                  in
                  ref_seg w b;
                  Some b
                end
              in
              let fresh = sr.pool_count - w.w_clauses_sent in
              let clauses =
                if fresh <= 0 then []
                else
                  List.filteri (fun i _ -> i < fresh) sr.pool_rev |> List.rev
              in
              w.w_clauses_sent <- sr.pool_count;
              if clauses <> [] then begin
                stats.clause_imports <- stats.clause_imports + List.length clauses;
                clause_batch :=
                  Some (Pr.Shard_clauses { run; shard = sr.sr.Plan.id; clauses })
              end;
              Pr.Shard_cube
                {
                  run;
                  shard = sr.sr.Plan.id;
                  cube = c_id;
                  aiger;
                  assume = c_assume;
                  freeze = sr.freeze;
                  conflict_limit = config.cube_conflict_limit;
                  deadline_in;
                }
        in
        let oc = w.w_conn.Pool.pw_oc in
        let write () =
          (* The clause batch rides unflushed ahead of its cube: two
             frames, one syscall batch, one doorbell. *)
          (match !clause_batch with
          | Some cf ->
              let hdr, payload = Pr.shard_task_to_frame cf in
              Pr.write_frame ~flush:false ~io ~payload oc hdr;
              stats.batched_flushes <- stats.batched_flushes + 1
          | None -> ());
          let hdr, payload = Pr.shard_task_to_frame frame in
          Pr.write_frame ~io ~payload oc hdr
        in
        (* Fault injection: kill this slot at its first assignment,
           before the task hits the wire.  Once [Unix.kill] returns the
           SIGKILLed worker can never run user code again, so it cannot
           consume the task or slip a reply into the pipe — the
           coordinator is guaranteed to see the crash (EOF, or EPIPE on
           this very write), not a completed shard. *)
        (match config.test_kill_worker with
        | Some id when id = w.w_id && not !test_kill_fired ->
            test_kill_fired := true;
            (try Unix.kill w.w_conn.Pool.pw_pid Sys.sigkill
             with Unix.Unix_error _ -> ())
        | _ -> ());
        match write () with
        | () -> w.w_task <- Some t
        | exception _ ->
            requeue_front t;
            on_crash w
      in
      let add_pool_clauses sr learnt =
        List.iter
          (fun c ->
            let c = List.sort_uniq compare c in
            if
              c <> []
              && sr.pool_count < config.max_pool_clauses
              && not (Hashtbl.mem sr.pool_tbl c)
            then begin
              Hashtbl.replace sr.pool_tbl c ();
              sr.pool_rev <- c :: sr.pool_rev;
              sr.pool_count <- sr.pool_count + 1;
              stats.clauses_shared <- stats.clauses_shared + 1
            end)
          learnt
      in
      let cube_done sr w ~via =
        sr.pending <- sr.pending - 1;
        if sr.pending <= 0 && sr.sr_done = None then
          settle sr ~worker:w.w_id ~via
            ~wall_s:(Unix.gettimeofday () -. sr.sr_t0)
            (if sr.any_unknown then "undecided" else "proved")
      in
      let alive_count () =
        Array.fold_left (fun n w -> if w.w_alive then n + 1 else n) 0 workers
      in
      let on_stalled sr vars reduced =
        sr.cube_aiger <- reduced;
        sr.freeze <- vars;
        (* The shard-level AIGER is spent — cubes reference the reduced
           miter, which gets its own segment on first cube dispatch. *)
        (match sr.sr_seg with Some seg -> sr.sr_seg <- None; drop_ref seg | None -> ());
        let rec bits n = if n <= 1 then 0 else 1 + bits ((n + 1) / 2) in
        let k =
          min (List.length vars) (min 6 (max 1 (bits (2 * alive_count ()))))
        in
        let head = List.filteri (fun i _ -> i < k) vars in
        sr.pending <- 1 lsl k;
        for m = (1 lsl k) - 1 downto 0 do
          let assume =
            List.mapi
              (fun j v -> Sat.Solver.mklit v ((m lsr j) land 1 = 1))
              head
          in
          let c_id = sr.next_cube in
          sr.next_cube <- sr.next_cube + 1;
          requeue_front (Cube { c_sr = sr; c_id; c_assume = assume; c_depth = k })
        done
      in
      let resplit sr (t : task) =
        match t with
        | Cube { c_assume; c_depth; _ } when c_depth < List.length sr.freeze ->
            let v = List.nth sr.freeze c_depth in
            stats.resplits <- stats.resplits + 1;
            sr.pending <- sr.pending + 1;
            List.iter
              (fun sign ->
                let c_id = sr.next_cube in
                sr.next_cube <- sr.next_cube + 1;
                requeue_front
                  (Cube
                     {
                       c_sr = sr;
                       c_id;
                       c_assume = c_assume @ [ Sat.Solver.mklit v sign ];
                       c_depth = c_depth + 1;
                     }))
              [ false; true ];
            true
        | _ -> false
      in
      let handle_reply w t reply =
        match (t, reply) with
        | _, (Pr.Shard_ready | Pr.Shard_pong) ->
            (* unsolicited hello from a (re)spawn, or a pong straggling
               from pool validation; not a task completion *)
            w.w_ready <- true;
            w.w_task <- t
        | Some t, Pr.Shard_failed { msg; _ } ->
            (* The worker could not use the payload (stale or corrupt
               shm descriptor).  Fall back to inline bytes for this
               shard and re-dispatch; the worker itself is fine. *)
            Printf.eprintf "shard: worker %d rejected a payload (%s)\n%!"
              w.w_id msg;
            stats.shm_fallbacks <- stats.shm_fallbacks + 1;
            (match t with
            | Check sr -> sr.sr_force_inline <- true
            | Cube { c_sr; _ } -> c_sr.sr_force_inline <- true);
            w.w_cube_shard <- -1;
            requeue_front t
        | Some (Check sr), Pr.Shard_verdict { shard; verdict; wall_s; conflicts }
          when shard = sr.sr.Plan.id -> (
            stats.conflicts <- stats.conflicts + conflicts;
            stats.tasks.(w.w_id) <- stats.tasks.(w.w_id) + 1;
            match verdict with
            | Pr.Sv_proved -> settle sr ~worker:w.w_id ~via:"sweep" ~wall_s "proved"
            | Pr.Sv_undecided ->
                settle sr ~worker:w.w_id ~via:"sweep" ~wall_s "undecided"
            | Pr.Sv_disproved { cex; po } ->
                settle sr ~worker:w.w_id ~via:"sweep" ~wall_s "disproved";
                disprove sr (Pr.bits_to_cex cex) po)
        | Some (Check sr), Pr.Shard_stalled { shard; reduced; vars; wall_s = _ }
          when shard = sr.sr.Plan.id ->
            stats.tasks.(w.w_id) <- stats.tasks.(w.w_id) + 1;
            on_stalled sr vars reduced
        | ( Some (Cube { c_sr = sr; c_id; _ } as t),
            Pr.Shard_cube_reply { shard; cube; result; learnt; conflicts; wall_s = _ }
          )
          when shard = sr.sr.Plan.id && cube = c_id -> (
            stats.conflicts <- stats.conflicts + conflicts;
            stats.tasks.(w.w_id) <- stats.tasks.(w.w_id) + 1;
            add_pool_clauses sr learnt;
            match result with
            | Pr.Cube_unsat ->
                stats.cubes_solved <- stats.cubes_solved + 1;
                cube_done sr w ~via:"cubes"
            | Pr.Cube_sat { cex; po } ->
                stats.cubes_solved <- stats.cubes_solved + 1;
                stats.cubes_sat <- stats.cubes_sat + 1;
                settle sr ~worker:w.w_id ~via:"cubes"
                  ~wall_s:(Unix.gettimeofday () -. sr.sr_t0)
                  "disproved";
                disprove sr (Pr.bits_to_cex cex) po
            | Pr.Cube_unknown ->
                stats.cubes_unknown <- stats.cubes_unknown + 1;
                if not (resplit sr t) then begin
                  sr.any_unknown <- true;
                  cube_done sr w ~via:"cubes"
                end)
        | _ ->
            Printf.eprintf "shard: protocol confusion from worker %d, killing it\n%!"
              w.w_id;
            (match t with Some t -> requeue_front t | None -> ());
            w.w_task <- None;
            w.w_alive <- false;
            w.w_ready <- false;
            Pool.kill w.w_conn;
            stats.workers_crashed <- stats.workers_crashed + 1;
            respawn w
      in
      let handle_readable w =
        match Pr.read_frame ~io w.w_conn.Pool.pw_ic with
        | Error _ -> on_crash w
        | Ok inc -> (
            match Pr.shard_reply_of_frame inc with
            | Error e ->
                Printf.eprintf "shard: bad reply from worker %d: %s\n%!" w.w_id e;
                on_crash w
            | Ok reply ->
                let t = w.w_task in
                w.w_task <- None;
                (match reply with
                | Pr.Shard_ready | Pr.Shard_pong -> ()
                | _ -> release_seg w);
                handle_reply w t reply)
      in
      let outcome_of_sruns () =
        if Array.for_all (fun sr -> sr.sr_done = Some "proved") sruns then
          E.Proved
        else E.Undecided
      in
      let finally () =
        (* Idle, healthy workers go back to the pool warm; anything
           mid-task or dead is killed.  Then sweep every segment this
           run created — the kill path must leak nothing. *)
        Array.iter
          (fun w ->
            match pool with
            | Some p when w.w_alive && w.w_ready && w.w_task = None ->
                Pool.release p w.w_conn
            | _ -> kill_and_reap w)
          workers;
        List.iter
          (fun seg ->
            if Shm.force_unlink seg then
              stats.segments_unlinked <- stats.segments_unlinked + 1)
          !created_segs
      in
      let result =
        Fun.protect ~finally (fun () ->
            try
              while true do
                if Par.Cancel.poll_opt cancel || expired () then
                  raise (Done E.Undecided);
                (* settled? *)
                if
                  !cubeq = []
                  && Queue.is_empty checkq
                  && Array.for_all (fun w -> w.w_task = None) workers
                  && Array.for_all (fun sr -> sr.sr_done <> None) sruns
                then raise (Done (outcome_of_sruns ()));
                (* While an injected kill is pending, only its target slot
                   may take work: otherwise a fast sibling can finish every
                   shard before the (cold, still exec-ing) target ever
                   announces ready, and the fault never fires.  Inert in
                   production — [test_kill_worker] is [None]. *)
                let kill_hold w =
                  match config.test_kill_worker with
                  | Some id when not !test_kill_fired ->
                      id <> w.w_id
                      && Array.exists
                           (fun v -> v.w_id = id && v.w_alive)
                           workers
                  | _ -> false
                in
                (* hand work to idle, ready workers *)
                Array.iter
                  (fun w ->
                    if
                      w.w_alive && w.w_ready && w.w_task = None
                      && not (kill_hold w)
                    then
                      match pop_task () with
                      | Some t -> send_task w t
                      | None -> ())
                  workers;
                let fds =
                  Array.to_list workers
                  |> List.filter_map (fun w ->
                         if w.w_alive then Some w.w_conn.Pool.pw_fd else None)
                in
                if fds = [] then
                  (* every worker dead and no respawn budget left *)
                  raise (Done (outcome_of_sruns ()));
                let readable =
                  match Unix.select fds [] [] 0.05 with
                  | r, _, _ -> r
                  | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
                in
                List.iter
                  (fun fd ->
                    Array.iter
                      (fun w ->
                        if w.w_alive && w.w_conn.Pool.pw_fd = fd then
                          handle_readable w)
                      workers)
                  readable
              done;
              assert false
            with Done outcome -> outcome)
      in
      finish result
