type entry = {
  e_shard : int;
  e_pos : int;
  e_ands : int;
  e_worker : int;
  e_wall_s : float;
  e_via : string;
  e_verdict : string;
}

type t = {
  workers : int;
  mutable groups : int;
  mutable split_groups : int;
  mutable shards : int;
  mutable wall_s : float;
  tasks : int array;
  mutable cubes_solved : int;
  mutable cubes_sat : int;
  mutable cubes_unknown : int;
  mutable resplits : int;
  mutable clauses_shared : int;
  mutable clause_imports : int;
  mutable conflicts : int;
  mutable workers_spawned : int;
  mutable workers_crashed : int;
  mutable respawns : int;
  mutable entries : entry list;
  mutable worker_pids : int list;
}

let create ~workers =
  {
    workers;
    groups = 0;
    split_groups = 0;
    shards = 0;
    wall_s = 0.;
    tasks = Array.make (max 1 workers) 0;
    cubes_solved = 0;
    cubes_sat = 0;
    cubes_unknown = 0;
    resplits = 0;
    clauses_shared = 0;
    clause_imports = 0;
    conflicts = 0;
    workers_spawned = 0;
    workers_crashed = 0;
    respawns = 0;
    entries = [];
    worker_pids = [];
  }

let steals t =
  let total = Array.fold_left ( + ) 0 t.tasks in
  let fair = (total + t.workers - 1) / max 1 t.workers in
  Array.map (fun n -> max 0 (n - fair)) t.tasks

let max_json_entries = 256

let to_json t =
  let module J = Simsweep.Telemetry in
  let ints a = J.List (Array.to_list a |> List.map (fun n -> J.Int n)) in
  let steals = steals t in
  let entries =
    List.filteri (fun i _ -> i < max_json_entries) t.entries
    |> List.rev_map (fun e ->
           J.Obj
             [
               ("shard", J.Int e.e_shard);
               ("pos", J.Int e.e_pos);
               ("ands", J.Int e.e_ands);
               ("worker", J.Int e.e_worker);
               ("wall_s", J.Float e.e_wall_s);
               ("via", J.String e.e_via);
               ("verdict", J.String e.e_verdict);
             ])
  in
  J.Obj
    [
      ("workers", J.Int t.workers);
      ("groups", J.Int t.groups);
      ("split_groups", J.Int t.split_groups);
      ("shards", J.Int t.shards);
      ("wall_s", J.Float t.wall_s);
      ("tasks_per_worker", ints t.tasks);
      ("steals_per_worker", ints steals);
      ("steals", J.Int (Array.fold_left ( + ) 0 steals));
      ("cubes_solved", J.Int t.cubes_solved);
      ("cubes_sat", J.Int t.cubes_sat);
      ("cubes_unknown", J.Int t.cubes_unknown);
      ("resplits", J.Int t.resplits);
      ("clauses_shared", J.Int t.clauses_shared);
      ("clause_imports", J.Int t.clause_imports);
      ("conflicts", J.Int t.conflicts);
      ("workers_spawned", J.Int t.workers_spawned);
      ("workers_crashed", J.Int t.workers_crashed);
      ("respawns", J.Int t.respawns);
      ("shard_entries", J.List entries);
    ]
