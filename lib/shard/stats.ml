type entry = {
  e_shard : int;
  e_pos : int;
  e_ands : int;
  e_worker : int;
  e_wall_s : float;
  e_via : string;
  e_verdict : string;
}

type t = {
  workers : int;
  mutable groups : int;
  mutable split_groups : int;
  mutable shards : int;
  mutable wall_s : float;
  tasks : int array;
  mutable cubes_solved : int;
  mutable cubes_sat : int;
  mutable cubes_unknown : int;
  mutable resplits : int;
  mutable clauses_shared : int;
  mutable clause_imports : int;
  mutable conflicts : int;
  mutable workers_spawned : int;
  mutable workers_crashed : int;
  mutable respawns : int;
  (* data plane *)
  mutable transport : string;
  mutable bytes_tx : int;
  mutable bytes_rx : int;
  mutable frames_tx : int;
  mutable frames_rx : int;
  mutable batched_flushes : int;
  mutable shm_hits : int;
  mutable shm_fallbacks : int;
  mutable segments_created : int;
  mutable segments_unlinked : int;
  mutable warm_starts : int;
  mutable cold_starts : int;
  mutable pool_discards : int;
  mutable entries : entry list;
  mutable worker_pids : int list;
}

let create ~workers =
  {
    workers;
    groups = 0;
    split_groups = 0;
    shards = 0;
    wall_s = 0.;
    tasks = Array.make (max 1 workers) 0;
    cubes_solved = 0;
    cubes_sat = 0;
    cubes_unknown = 0;
    resplits = 0;
    clauses_shared = 0;
    clause_imports = 0;
    conflicts = 0;
    workers_spawned = 0;
    workers_crashed = 0;
    respawns = 0;
    transport = "inline";
    bytes_tx = 0;
    bytes_rx = 0;
    frames_tx = 0;
    frames_rx = 0;
    batched_flushes = 0;
    shm_hits = 0;
    shm_fallbacks = 0;
    segments_created = 0;
    segments_unlinked = 0;
    warm_starts = 0;
    cold_starts = 0;
    pool_discards = 0;
    entries = [];
    worker_pids = [];
  }

let steals t =
  let total = Array.fold_left ( + ) 0 t.tasks in
  let fair = (total + t.workers - 1) / max 1 t.workers in
  Array.map (fun n -> max 0 (n - fair)) t.tasks

let max_json_entries = 256

let to_json t =
  let module J = Simsweep.Telemetry in
  let ints a = J.List (Array.to_list a |> List.map (fun n -> J.Int n)) in
  let steals = steals t in
  let entries =
    List.filteri (fun i _ -> i < max_json_entries) t.entries
    |> List.rev_map (fun e ->
           J.Obj
             [
               ("shard", J.Int e.e_shard);
               ("pos", J.Int e.e_pos);
               ("ands", J.Int e.e_ands);
               ("worker", J.Int e.e_worker);
               ("wall_s", J.Float e.e_wall_s);
               ("via", J.String e.e_via);
               ("verdict", J.String e.e_verdict);
             ])
  in
  J.Obj
    [
      ("workers", J.Int t.workers);
      ("groups", J.Int t.groups);
      ("split_groups", J.Int t.split_groups);
      ("shards", J.Int t.shards);
      ("wall_s", J.Float t.wall_s);
      ("tasks_per_worker", ints t.tasks);
      ("steals_per_worker", ints steals);
      ("steals", J.Int (Array.fold_left ( + ) 0 steals));
      ("cubes_solved", J.Int t.cubes_solved);
      ("cubes_sat", J.Int t.cubes_sat);
      ("cubes_unknown", J.Int t.cubes_unknown);
      ("resplits", J.Int t.resplits);
      ("clauses_shared", J.Int t.clauses_shared);
      ("clause_imports", J.Int t.clause_imports);
      ("conflicts", J.Int t.conflicts);
      ("workers_spawned", J.Int t.workers_spawned);
      ("workers_crashed", J.Int t.workers_crashed);
      ("respawns", J.Int t.respawns);
      ("transport", J.String t.transport);
      ("bytes_tx", J.Int t.bytes_tx);
      ("bytes_rx", J.Int t.bytes_rx);
      ("frames_tx", J.Int t.frames_tx);
      ("frames_rx", J.Int t.frames_rx);
      ("batched_flushes", J.Int t.batched_flushes);
      ("shm_hits", J.Int t.shm_hits);
      ("shm_fallbacks", J.Int t.shm_fallbacks);
      ("segments_created", J.Int t.segments_created);
      ("segments_unlinked", J.Int t.segments_unlinked);
      ("warm_starts", J.Int t.warm_starts);
      ("cold_starts", J.Int t.cold_starts);
      ("pool_discards", J.Int t.pool_discards);
      ("shard_entries", J.List entries);
    ]
