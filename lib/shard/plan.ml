module P = Simsweep.Partition

type shard = {
  id : int;
  pos : int list;
  sub : Aig.Network.t;
  pi_origin : int array;
  ands : int;
}

type t = {
  shards : shard list;
  groups : int;
  split_groups : int;
  early : Simsweep.Engine.outcome option;
}

(* Pack small groups into shards of roughly [max_ands] AND nodes and split
   groups larger than that at PO boundaries.  Constant groups are decided
   here: a constant-true PO settles the whole miter, constant-false POs
   simply drop out of the plan. *)
let build ~max_ands g =
  let max_ands = max 1 max_ands in
  let gs = P.groups g in
  let n_groups = List.length gs in
  let early = ref None in
  let split_groups = ref 0 in
  let chunks = ref [] (* reversed list of PO lists *) in
  let cur = ref [] (* reversed list of packed groups *) in
  let cur_ands = ref 0 in
  let flush () =
    if !cur <> [] then begin
      chunks := List.concat (List.rev !cur) :: !chunks;
      cur := [];
      cur_ands := 0
    end
  in
  List.iter
    (fun group ->
      if !early = None then
        match P.const_verdict g group with
        | Some Simsweep.Engine.Proved -> ()
        | Some verdict -> early := Some verdict
        | None ->
            let ands = P.cone_ands g group in
            if ands > max_ands then begin
              incr split_groups;
              flush ();
              List.iter
                (fun chunk -> chunks := chunk :: !chunks)
                (P.split_group g ~max_ands group)
            end
            else begin
              cur := group :: !cur;
              cur_ands := !cur_ands + ands;
              if !cur_ands >= max_ands then flush ()
            end)
    gs;
  flush ();
  match !early with
  | Some _ as early ->
      { shards = []; groups = n_groups; split_groups = !split_groups; early }
  | None ->
      let shards =
        List.rev !chunks
        |> List.mapi (fun id pos ->
               let pos = List.sort compare pos in
               let sub, pi_origin = P.extract g pos in
               { id; pos; sub; pi_origin; ands = Aig.Network.num_ands sub })
      in
      { shards; groups = n_groups; split_groups = !split_groups; early = None }
