(** Shard worker process.

    Workers are not a separate binary: the coordinator re-executes the
    host executable with {!mode_env} set ([Unix.fork] is unusable in a
    multi-domain OCaml 5 process), so every binary that can coordinate
    must call {!maybe_become_worker} first thing in [main].  The protocol
    rides on the worker's stdin/stdout; stdout is immediately dup'ed away
    and redirected to stderr so stray prints cannot corrupt frames.

    A worker handles one task at a time: [Shard_check] runs the sweeping
    engine with a bounded SAT tail and either answers with a verdict or,
    when the tail stalls, ships back the engine-reduced miter plus its
    hottest SAT variables as cube-split candidates; [Shard_cube] solves
    one cube of a stalled shard under assumptions, importing clauses
    learnt elsewhere ([Shard_clauses] batches) and exporting its own
    short learnt clauses.  The cube formula is cached across consecutive
    cubes of the same (run, shard).

    AIGER payloads arrive either inline or as {!Shm} descriptors; a
    descriptor that cannot be resolved (or bytes that do not parse)
    produces a framed [Shard_failed] reply, never a crash — warm-pool
    workers must survive bad input.  [Shard_ping] is answered with
    [Shard_pong] so {!Pool} can health-check idle workers. *)

(** Environment variable that turns a host binary into a worker ("1"). *)
val mode_env : string

(** Environment variable carrying the worker's domain-pool size. *)
val domains_env : string

(** When {!mode_env} is set, run the worker protocol loop on
    stdin/stdout and [exit] — never returns in that case.  A no-op
    otherwise. *)
val maybe_become_worker : unit -> unit

(** The protocol loop itself: read {!Serve.Protocol.shard_task} frames,
    answer each with one {!Serve.Protocol.shard_reply} frame (except
    one-way [Shard_clauses]), return on [Shard_quit] or end-of-stream.
    [num_domains] sizes the worker's simulation pool (default 1). *)
val serve : ?num_domains:int -> in_channel -> out_channel -> unit
