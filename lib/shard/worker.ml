module Pr = Serve.Protocol

let mode_env = "SIMSWEEP_SHARD_WORKER_MODE"
let domains_env = "SIMSWEEP_SHARD_DOMAINS"

(* Per-reply export budget for learnt clauses. *)
let max_learnt_per_reply = 32
let max_learnt_len = 8

(* Cube formula cached between consecutive cubes of one shard: the solver
   keeps its own learnt clauses warm across cubes, on top of the
   coordinator's cross-worker pool.  Keyed by (run, shard) — a warm
   worker serves many coordinator runs, and shard ids restart at 0 for
   each, so the shard id alone would alias stale state. *)
type cube_state = {
  cs_run : int;
  cs_shard : int;
  cs_net : Aig.Network.t;
  cs_solver : Sat.Solver.t;
  cs_pos : int list;  (* unsolved PO indices of the cube formula *)
  cs_ok : bool;  (* false: formula already unsatisfiable at load *)
  cs_sent : (int list, unit) Hashtbl.t;  (* clauses already exported *)
}

type state = {
  pool : Par.Pool.t Lazy.t;
  mutable cube : cube_state option;
  (* Clauses from a one-way [Shard_clauses] frame that arrived before the
     cube state they target existed: (run, shard, clauses). *)
  mutable pending_clauses : (int * int * int list list) option;
}

(* Resolve a dispatch payload to AIGER bytes.  Inline is the bytes;
   a shm descriptor is mapped and copied out by [Shm.read], which
   validates the name and range and reports failures as [Error]. *)
let resolve_blob = function
  | Pr.Inline s -> Ok s
  | Pr.Shm_ref { seg; off; len } -> Shm.read ~name:seg ~off ~len

let cancel_of deadline_in =
  Option.map (fun d -> Par.Cancel.create ~deadline_in:d ()) deadline_in

(* "Some unsolved PO fires": the clause that makes the formula satisfiable
   iff the (sub-)miter is inequivalent. *)
let po_disjunction solver g pos =
  Sat.Solver.add_clause solver
    (List.map (fun po -> Sat.Cnf.lit (Aig.Network.po g po)) pos)

(* A satisfying model in hand: pull the PI assignment and find a PO it
   fires.  The model satisfies every Tseitin clause, so replaying the PIs
   through the network reproduces the node values and the find succeeds. *)
let model_verdict solver g pos =
  let cex = Sat.Cnf.model_cex solver g in
  match List.find_opt (fun po -> Sim.Cex.check g cex po) pos with
  | Some po -> Some (cex, po)
  | None -> None

let export_learnt cs =
  let fresh =
    Sat.Solver.learnt_clauses ~max_len:max_learnt_len cs.cs_solver
    |> List.filter (fun c -> not (Hashtbl.mem cs.cs_sent c))
  in
  let kept = List.filteri (fun i _ -> i < max_learnt_per_reply) fresh in
  List.iter (fun c -> Hashtbl.replace cs.cs_sent c ()) kept;
  kept

(* --- Shard_check ------------------------------------------------------ *)

let run_check st ~shard ~aiger ~stall_conflicts ~split_vars ~direct_sat
    ~deadline_in =
  let t0 = Unix.gettimeofday () in
  let g = Aig.Aiger_io.of_string aiger in
  let cancel = cancel_of deadline_in in
  let verdict v conflicts =
    Pr.Shard_verdict
      { shard; verdict = v; wall_s = Unix.gettimeofday () -. t0; conflicts }
  in
  (* Phase 1: the sweeping engine with a bounded SAT tail.  [direct_sat]
     (a test hook) skips straight to the probe on the raw network. *)
  let reduced, engine_outcome, engine_conflicts =
    if direct_sat then (g, Simsweep.Engine.Undecided, 0)
    else
      let sat_config =
        { Sat.Sweep.default_config with final_conflict_limit = stall_conflicts }
      in
      let c =
        Simsweep.Engine.check_with_fallback ~config:Simsweep.Config.scaled
          ~sat_config ?cancel ~pool:(Lazy.force st.pool) g
      in
      let conflicts =
        match c.Simsweep.Engine.sat_stats with
        | Some s -> s.Sat.Sweep.conflicts
        | None -> 0
      in
      (c.Simsweep.Engine.engine.Simsweep.Engine.reduced, c.Simsweep.Engine.final, conflicts)
  in
  match engine_outcome with
  | Simsweep.Engine.Proved -> verdict Pr.Sv_proved engine_conflicts
  | Simsweep.Engine.Disproved (cex, po) ->
      verdict (Pr.Sv_disproved { cex = Pr.cex_to_bits cex; po }) engine_conflicts
  | Simsweep.Engine.Undecided when Par.Cancel.poll_opt cancel ->
      verdict Pr.Sv_undecided engine_conflicts
  | Simsweep.Engine.Undecided -> (
      (* Phase 2: stall probe on the reduced miter.  A fresh, unsimplified
         solver — its variable numbering is exactly [Cnf.load]'s node
         numbering, so activity variables reported here mean the same
         thing to every cube worker decoding the same AIGER. *)
      match Aig.Miter.unsolved_outputs reduced with
      | [] -> verdict Pr.Sv_proved engine_conflicts
      | unsolved ->
          let solver = Sat.Solver.create () in
          if
            (not (Sat.Cnf.load solver reduced))
            || not (po_disjunction solver reduced unsolved)
          then verdict Pr.Sv_proved engine_conflicts
          else
            let conflicts () = engine_conflicts + Sat.Solver.num_conflicts solver in
            (match
               Sat.Solver.solve ~conflict_limit:stall_conflicts ?cancel solver
             with
            | Sat.Solver.Unsat -> verdict Pr.Sv_proved (conflicts ())
            | Sat.Solver.Sat -> (
                match model_verdict solver reduced unsolved with
                | Some (cex, po) ->
                    verdict
                      (Pr.Sv_disproved { cex = Pr.cex_to_bits cex; po })
                      (conflicts ())
                | None -> verdict Pr.Sv_undecided (conflicts ()))
            | Sat.Solver.Unknown when Par.Cancel.poll_opt cancel ->
                verdict Pr.Sv_undecided (conflicts ())
            | Sat.Solver.Unknown -> (
                match Sat.Solver.top_activity_vars ~limit:split_vars solver with
                | [] -> verdict Pr.Sv_undecided (conflicts ())
                | vars ->
                    Pr.Shard_stalled
                      {
                        shard;
                        reduced = Aig.Aiger_io.to_binary_string reduced;
                        vars;
                        wall_s = Unix.gettimeofday () -. t0;
                      })))

(* --- Shard_cube ------------------------------------------------------- *)

let load_cube_formula ~run ~shard ~aiger ~freeze =
  let net = Aig.Aiger_io.of_string aiger in
  let solver = Sat.Solver.create () in
  let pos = Aig.Miter.unsolved_outputs net in
  let ok =
    pos <> [] && Sat.Cnf.load solver net && po_disjunction solver net pos
  in
  if ok then begin
    (* Preprocess once per shard; every assumption variable (current and
       future cubes share one [freeze] list) and the PO variables must
       survive elimination. *)
    let po_vars =
      List.map
        (fun po -> Sat.Solver.var_of_lit (Sat.Cnf.lit (Aig.Network.po net po)))
        pos
    in
    Sat.Solver.simplify ~frozen:(freeze @ po_vars) solver
  end;
  {
    cs_run = run;
    cs_shard = shard;
    cs_net = net;
    cs_solver = solver;
    cs_pos = pos;
    cs_ok = ok;
    cs_sent = Hashtbl.create 64;
  }

let run_cube st ~run ~shard ~cube ~aiger ~assume ~freeze ~conflict_limit
    ~deadline_in =
  let t0 = Unix.gettimeofday () in
  let reply result learnt conflicts =
    Pr.Shard_cube_reply
      {
        shard;
        cube;
        result;
        learnt;
        conflicts;
        wall_s = Unix.gettimeofday () -. t0;
      }
  in
  let cs =
    match st.cube with
    | Some cs when cs.cs_run = run && cs.cs_shard = shard -> Some cs
    | _ -> (
        match aiger with
        | Some aiger ->
            let cs = load_cube_formula ~run ~shard ~aiger ~freeze in
            st.cube <- Some cs;
            Some cs
        | None -> None)
  in
  (* Apply any clause batch that arrived (one-way) ahead of this cube. *)
  (match (cs, st.pending_clauses) with
  | Some cs, Some (r, s, clauses) when r = run && s = shard ->
      st.pending_clauses <- None;
      List.iter
        (fun c -> ignore (Sat.Solver.import_clause cs.cs_solver c))
        clauses
  | _ -> ());
  match cs with
  | None ->
      (* The coordinator thought we held the formula but we don't (e.g. a
         respawned worker): answer Unknown, the cube will be re-split or
         re-sent rather than lost. *)
      reply Pr.Cube_unknown [] 0
  | Some cs when not cs.cs_ok ->
      (* Formula unsatisfiable before any assumption: every cube is unsat. *)
      reply Pr.Cube_unsat [] 0
  | Some cs -> (
      let cancel = cancel_of deadline_in in
      let c0 = Sat.Solver.num_conflicts cs.cs_solver in
      let spent () = Sat.Solver.num_conflicts cs.cs_solver - c0 in
      match
        Sat.Solver.solve ~assumptions:assume ~conflict_limit ?cancel
          cs.cs_solver
      with
      | Sat.Solver.Unsat -> reply Pr.Cube_unsat (export_learnt cs) (spent ())
      | Sat.Solver.Sat -> (
          match model_verdict cs.cs_solver cs.cs_net cs.cs_pos with
          | Some (cex, po) ->
              reply
                (Pr.Cube_sat { cex = Pr.cex_to_bits cex; po })
                [] (spent ())
          | None -> reply Pr.Cube_unknown (export_learnt cs) (spent ()))
      | Sat.Solver.Unknown ->
          reply Pr.Cube_unknown (export_learnt cs) (spent ()))

(* --- protocol loop ---------------------------------------------------- *)

type action = Quit | No_reply | Reply of Pr.shard_reply

(* A payload that cannot be used — unmappable or truncated shm
   descriptor, corrupt AIGER bytes — is a framed [Shard_failed], never a
   crash: the worker stays up and the coordinator falls back to inline
   dispatch. *)
let failed ~shard ~cube msg = Reply (Pr.Shard_failed { shard; cube; msg })

let handle st = function
  | Pr.Shard_quit -> Quit
  | Pr.Shard_ping -> Reply Pr.Shard_pong
  | Pr.Shard_clauses { run; shard; clauses } ->
      (match st.cube with
      | Some cs when cs.cs_run = run && cs.cs_shard = shard ->
          List.iter
            (fun c -> ignore (Sat.Solver.import_clause cs.cs_solver c))
            clauses
      | _ -> st.pending_clauses <- Some (run, shard, clauses));
      No_reply
  | Pr.Shard_check
      { run = _; shard; aiger; stall_conflicts; split_vars; direct_sat; deadline_in }
    -> (
      match resolve_blob aiger with
      | Error msg -> failed ~shard ~cube:None msg
      | Ok aiger -> (
          try
            Reply
              (run_check st ~shard ~aiger ~stall_conflicts ~split_vars
                 ~direct_sat ~deadline_in)
          with Aig.Aiger_io.Parse_error msg ->
            failed ~shard ~cube:None ("bad aiger: " ^ msg)))
  | Pr.Shard_cube
      { run; shard; cube; aiger; assume; freeze; conflict_limit; deadline_in }
    -> (
      let resolved =
        match aiger with
        | None -> Ok None
        | Some b -> Result.map Option.some (resolve_blob b)
      in
      match resolved with
      | Error msg -> failed ~shard ~cube:(Some cube) msg
      | Ok aiger -> (
          try
            Reply
              (run_cube st ~run ~shard ~cube ~aiger ~assume ~freeze
                 ~conflict_limit ~deadline_in)
          with Aig.Aiger_io.Parse_error msg ->
            failed ~shard ~cube:(Some cube) ("bad aiger: " ^ msg)))

let serve ?(num_domains = 1) ic oc =
  let st =
    {
      pool = lazy (Par.Pool.create ~num_domains ());
      cube = None;
      pending_clauses = None;
    }
  in
  Pr.write_frame oc (fst (Pr.shard_reply_to_frame Pr.Shard_ready));
  let write_reply reply =
    let hdr, payload = Pr.shard_reply_to_frame reply in
    Pr.write_frame ~payload oc hdr
  in
  let rec loop () =
    match Pr.read_frame ic with
    | Error e when String.starts_with ~prefix:"eof" e ->
        () (* coordinator gone *)
    | Error e ->
        (* Framing is length-prefixed, so a bad header is survivable. *)
        Printf.eprintf "shard worker: bad frame: %s\n%!" e;
        loop ()
    | Ok inc -> (
        match Pr.shard_task_of_frame inc with
        | Error e ->
            Printf.eprintf "shard worker: bad task: %s\n%!" e;
            loop ()
        | Ok task -> (
            match handle st task with
            | Quit -> ()
            | No_reply -> loop ()
            | Reply reply ->
                write_reply reply;
                loop ()))
  in
  loop ();
  if Lazy.is_val st.pool then Par.Pool.shutdown (Lazy.force st.pool)

let worker_main () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* Keep the protocol fd for ourselves and point stdout at stderr so any
     stray print (engine debug, libraries) cannot corrupt the frames. *)
  let proto_out = Unix.dup Unix.stdout in
  Unix.dup2 Unix.stderr Unix.stdout;
  let ic = Unix.in_channel_of_descr Unix.stdin in
  let oc = Unix.out_channel_of_descr proto_out in
  set_binary_mode_in ic true;
  set_binary_mode_out oc true;
  let num_domains =
    match Sys.getenv_opt domains_env with
    | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 1)
    | None -> 1
  in
  (try serve ~num_domains ic oc
   with e ->
     Printf.eprintf "shard worker: %s\n%!" (Printexc.to_string e);
     exit 1);
  exit 0

let maybe_become_worker () =
  match Sys.getenv_opt mode_env with
  | Some "1" -> worker_main ()
  | _ -> ()
