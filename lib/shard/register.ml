let outcome_string = function
  | Simsweep.Engine.Proved -> "EQUIVALENT"
  | Simsweep.Engine.Disproved (cex, po) ->
      let bits =
        String.init (Array.length cex) (fun i -> if cex.(i) then '1' else '0')
      in
      Printf.sprintf "NOT EQUIVALENT (output %d, inputs %s)" po bits
  | Simsweep.Engine.Undecided -> "UNDECIDED"

let shell () =
  Shell.Command.register_engine "shard" (fun ?cancel ~arg g ->
      match
        match arg with
        | None -> Ok Check.default_config.Check.workers
        | Some a -> (
            match int_of_string_opt a with
            | Some n when n >= 1 -> Ok n
            | _ -> Error (Printf.sprintf "bad worker count %S" a))
      with
      | Error e -> Error e
      | Ok workers ->
          let config = { Check.default_config with Check.workers } in
          let outcome, st =
            Check.check ~config ?cancel ~pool:(Pool.default ()) g
          in
          Ok
            (Printf.sprintf
               "%s (%d shards, %d workers [%d warm, %d cold], %d steals, %d \
                cubes)"
               (outcome_string outcome) st.Stats.shards st.Stats.workers
               st.Stats.warm_starts st.Stats.cold_starts
               (Array.fold_left ( + ) 0 (Stats.steals st))
               st.Stats.cubes_solved))
