(* Persistent fork-server worker pool.

   PR 9 re-exec'd a cold worker set for every [Check.check]; under the
   serve daemon that meant every shard request paid full exec +
   allocator warm-up.  The pool keeps idle workers alive between runs:
   [acquire] revalidates each candidate with a ping frame (a worker that
   died, wedged, or desynced is killed and replaced by a cold spawn),
   [release] returns healthy idle workers, [reap_idle] retires workers
   that sat unused past the idle budget.  Only *idle* workers live here
   — a leased worker that crashes mid-run is the coordinator's problem
   and simply never comes back. *)

module Pr = Serve.Protocol

type worker = {
  pw_pid : int;
  pw_fd : Unix.file_descr;
  pw_ic : in_channel;
  pw_oc : out_channel;
  pw_exe : string;
  pw_domains : int;
  mutable pw_idle_since : float;
}

type t = {
  lock : Mutex.t;
  mutable idle : worker list;  (* most recently released first *)
  mutable closed : bool;
}

let create () = { lock = Mutex.create (); idle = []; closed = false }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let pid w = w.pw_pid
let fd w = w.pw_fd
let ic w = w.pw_ic
let oc w = w.pw_oc

let env ~domains =
  let keep s =
    not
      (String.starts_with ~prefix:(Worker.mode_env ^ "=") s
      || String.starts_with ~prefix:(Worker.domains_env ^ "=") s)
  in
  let base = Array.to_list (Unix.environment ()) |> List.filter keep in
  Array.of_list
    (base
    @ [
        Worker.mode_env ^ "=1";
        Printf.sprintf "%s=%d" Worker.domains_env (max 1 domains);
      ])

let spawn ~exe ~domains =
  let parent, child = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_close_on_exec parent;
  let pw_pid =
    Unix.create_process_env exe [| exe |] (env ~domains) child child Unix.stderr
  in
  Unix.close child;
  {
    pw_pid;
    pw_fd = parent;
    pw_ic = Unix.in_channel_of_descr parent;
    pw_oc = Unix.out_channel_of_descr parent;
    pw_exe = exe;
    pw_domains = domains;
    pw_idle_since = Unix.gettimeofday ();
  }

let kill w =
  (try Unix.kill w.pw_pid Sys.sigkill with Unix.Unix_error _ -> ());
  (try close_in_noerr w.pw_ic with _ -> ());
  (try ignore (Unix.waitpid [] w.pw_pid) with _ -> ())

(* A candidate from the idle list may have died or wedged since release.
   Probe it: one ping frame, then read (with a receive timeout on the
   socket) until the pong comes back.  Stray frames from a previous life
   — a late cube reply racing a crash — are drained and discarded, but
   only boundedly many, so a worker spewing garbage is a discard too. *)
let ping_timeout_s = 2.0
let max_stray_frames = 64

let validate w =
  match
    Pr.write_frame w.pw_oc (fst (Pr.shard_task_to_frame Pr.Shard_ping))
  with
  | exception _ -> false
  | () -> (
      Unix.setsockopt_float w.pw_fd Unix.SO_RCVTIMEO ping_timeout_s;
      let rec await n =
        if n <= 0 then false
        else
          match Pr.read_frame w.pw_ic with
          | Error _ -> false
          | exception _ -> false
          | Ok inc -> (
              match Pr.shard_reply_of_frame inc with
              | Ok Pr.Shard_pong -> true
              | Ok _ -> await (n - 1)
              | Error _ -> false)
      in
      let ok = await max_stray_frames in
      (try Unix.setsockopt_float w.pw_fd Unix.SO_RCVTIMEO 0. with _ -> ());
      ok)

let default_max_idle_s = 300.

let reap_idle ?(max_idle_s = default_max_idle_s) t =
  let now = Unix.gettimeofday () in
  let expired =
    with_lock t (fun () ->
        let keep, drop =
          List.partition (fun w -> now -. w.pw_idle_since <= max_idle_s) t.idle
        in
        t.idle <- keep;
        drop)
  in
  List.iter kill expired;
  List.length expired

(* Take up to [n] warm workers matching [exe]/[domains]; spawn cold for
   the rest.  Returns each worker tagged warm/cold, plus how many idle
   candidates failed validation and were discarded.  Cold workers will
   send [Shard_ready] once up; warm ones are ready immediately. *)
let acquire t ~exe ~domains ~n =
  ignore (reap_idle t);
  let candidates =
    with_lock t (fun () ->
        let matching, rest =
          List.partition
            (fun w -> w.pw_exe = exe && w.pw_domains = domains)
            t.idle
        in
        let take = List.filteri (fun i _ -> i < n) matching in
        let back = List.filteri (fun i _ -> i >= n) matching in
        t.idle <- back @ rest;
        take)
  in
  let discarded = ref 0 in
  let warm =
    List.filter
      (fun w ->
        if validate w then true
        else begin
          kill w;
          incr discarded;
          false
        end)
      candidates
  in
  let workers =
    List.map (fun w -> (w, true)) warm
    @ List.init (n - List.length warm) (fun _ -> (spawn ~exe ~domains, false))
  in
  (workers, !discarded)

let release t w =
  let accepted =
    with_lock t (fun () ->
        if t.closed then false
        else begin
          w.pw_idle_since <- Unix.gettimeofday ();
          t.idle <- w :: t.idle;
          true
        end)
  in
  if not accepted then kill w else ignore (reap_idle t)

let shutdown t =
  let ws =
    with_lock t (fun () ->
        t.closed <- true;
        let ws = t.idle in
        t.idle <- [];
        ws)
  in
  List.iter kill ws

let idle_count t = with_lock t (fun () -> List.length t.idle)

(* Process-wide pool, shared by the serve daemon, the shell engine and
   repeated in-process checks.  Emptied at exit so no worker outlives
   the host. *)
let default_pool =
  lazy
    (let t = create () in
     at_exit (fun () -> shutdown t);
     t)

let default () = Lazy.force default_pool
