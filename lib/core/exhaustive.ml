type pair = { a : int; b : int; compl_ : bool; tag : int }
type job = { inputs : int array; pairs : pair list }
type mismatch = { pattern : int; inputs : int array }
type verdict = Proved | Mismatch of mismatch | Invalid

type stats = {
  mutable windows : int;
  mutable nodes_simulated : int;
  mutable words_computed : int;
  mutable rounds : int;
  mutable small_windows : int;
  mutable arena_hwm_words : int;
  mutable arena_grows : int;
}

let new_stats () =
  {
    windows = 0;
    nodes_simulated = 0;
    words_computed = 0;
    rounds = 0;
    small_windows = 0;
    arena_hwm_words = 0;
    arena_grows = 0;
  }

(* A prepared window: rows [0, ni) are the inputs, rows [ni, ni+nn) the AND
   nodes ordered by local topological level. *)
type ppair = { a_row : int; b_row : int; pcompl : bool; ptag : int; mutable decided : bool }

type prep = {
  inputs : int array;
  ni : int;
  nn : int;
  f0_row : int array;
  f0_mask : int64 array;  (* complement masks *)
  f1_row : int array;
  f1_mask : int64 array;
  level_start : int array;  (* slot boundaries per local level *)
  tt_words : int;
  tail_mask : int64;
  ppairs : ppair array;
  mutable base : int;  (* word offset of this window's rows in the arena *)
  mutable w_words : int;  (* stats: words actually computed in this window *)
  mutable w_rounds : int;
}

let prepare g (job : job) =
  let roots =
    List.fold_left
      (fun acc p -> if p.b >= 0 then p.a :: p.b :: acc else p.a :: acc)
      [] job.pairs
    |> List.sort_uniq Int.compare
  in
  (* Roots inside the input boundary are legal: their truth table is the
     projection of that input. *)
  let input_pos = Hashtbl.create 16 in
  Array.iteri (fun i n -> Hashtbl.replace input_pos n i) job.inputs;
  let cone_roots =
    List.filter (fun n -> not (Hashtbl.mem input_pos n)) roots |> Array.of_list
  in
  match Aig.Cone.extract g ~roots:cone_roots ~inputs:job.inputs with
  | None -> None (* pairs keep the default [Invalid] verdict *)
  | Some { Aig.Cone.inputs; nodes } ->
      let ni = Array.length inputs and nn = Array.length nodes in
      (* Local levels (inputs are level 0). *)
      let level = Hashtbl.create (2 * nn) in
      Array.iter (fun n -> Hashtbl.replace level n 0) inputs;
      let node_level n =
        let l0 = Hashtbl.find level (Aig.Lit.node (Aig.Network.fanin0 g n)) in
        let l1 = Hashtbl.find level (Aig.Lit.node (Aig.Network.fanin1 g n)) in
        1 + max l0 l1
      in
      Array.iter (fun n -> Hashtbl.replace level n (node_level n)) nodes;
      (* Sort slots by level via a plain int array so the comparator costs
         two array loads, not two hash lookups.  Stable sort keeps id order
         inside a level. *)
      let node_lvl = Array.map (fun n -> Hashtbl.find level n) nodes in
      let order = Array.init nn Fun.id in
      Array.stable_sort (fun a b -> Int.compare node_lvl.(a) node_lvl.(b)) order;
      let slots = Array.map (fun i -> nodes.(i)) order in
      let slot_lvl = Array.map (fun i -> node_lvl.(i)) order in
      let row_of = Hashtbl.create (2 * (ni + nn)) in
      Array.iteri (fun i n -> Hashtbl.replace row_of n i) inputs;
      Array.iteri (fun s n -> Hashtbl.replace row_of n (ni + s)) slots;
      let f0_row = Array.make nn 0
      and f0_mask = Array.make nn 0L
      and f1_row = Array.make nn 0
      and f1_mask = Array.make nn 0L in
      Array.iteri
        (fun s n ->
          let f0 = Aig.Network.fanin0 g n and f1 = Aig.Network.fanin1 g n in
          f0_row.(s) <- Hashtbl.find row_of (Aig.Lit.node f0);
          f0_mask.(s) <- (if Aig.Lit.is_compl f0 then -1L else 0L);
          f1_row.(s) <- Hashtbl.find row_of (Aig.Lit.node f1);
          f1_mask.(s) <- (if Aig.Lit.is_compl f1 then -1L else 0L))
        slots;
      let max_level = if nn = 0 then 0 else slot_lvl.(nn - 1) in
      (* level_start.(l) is the first slot whose local level is >= l. *)
      let level_start = Array.make (max_level + 2) 0 in
      for l = 1 to max_level + 1 do
        let rec first i =
          if i = nn then nn else if slot_lvl.(i) >= l then i else first (i + 1)
        in
        level_start.(l) <- first level_start.(l - 1)
      done;
      let tt_words = if ni <= 6 then 1 else 1 lsl (ni - 6) in
      let tail_mask =
        if ni >= 6 then -1L else Int64.sub (Int64.shift_left 1L (1 lsl ni)) 1L
      in
      let ppairs =
        List.map
          (fun p ->
            {
              a_row = Hashtbl.find row_of p.a;
              b_row = (if p.b < 0 then -1 else Hashtbl.find row_of p.b);
              pcompl = p.compl_;
              ptag = p.tag;
              decided = false;
            })
          job.pairs
        |> Array.of_list
      in
      Some
        {
          inputs;
          ni;
          nn;
          f0_row;
          f0_mask;
          f1_row;
          f1_mask;
          level_start;
          tt_words;
          tail_mask;
          ppairs;
          base = 0;
          w_words = 0;
          w_rounds = 0;
        }

let ctz64 = Bv.Bits.ctz64

(* Simulate one window completely (all rounds); verdicts written by tag.
   The window's rows live at word offset [prep.base] of [arena].
   [par_inner] enables level-wise parallel node evaluation and parallel
   pair comparison for big windows. *)
let simulate_window ?cancel pool arena prep ~entry_words ~verdicts ~par_inner =
  let e = entry_words in
  let data = Arena.data arena in
  let base_off = prep.base in
  (* Byte offset of a row's segment.  The hot loops below index [data]
     through per-row offsets hoisted out of the word loop rather than
     through get/set helpers: a helper that is one arithmetic node too big
     to inline boxes its int64 argument or result on EVERY simulated word
     — an allocation storm that also stalls every other domain in minor-GC
     rendezvous. *)
  let row_off row = (base_off + (row * e)) * 8 in
  let rounds = (prep.tt_words + e - 1) / e in
  (* Pairs decided by the fused comparison decrement [active] from worker
     domains; the round loop exits as soon as none remain. *)
  let active = Atomic.make (Array.length prep.ppairs) in
  let r = ref 0 in
  while
    !r < rounds && Atomic.get active > 0
    (* A real poll at the round boundary latches an expired deadline; the
       per-window guards below stay on the cheap flag-only check. *)
    && not (Par.Cancel.poll_opt cancel)
  do
    let base = !r * e in
    let nw = min e (prep.tt_words - base) in
    prep.w_rounds <- prep.w_rounds + 1;
    (* The last round of a window (or a window shorter than the chunk's
       entry size) computes only [nw <= e] words per row. *)
    prep.w_words <- prep.w_words + ((prep.ni + prep.nn) * nw);
    (* Projection-table segments for the inputs. *)
    for j = 0 to prep.ni - 1 do
      let oj = row_off j in
      for lw = 0 to nw - 1 do
        Bytes.set_int64_ne data (oj + (lw * 8)) (Bv.Tt.proj_word ~var:j (base + lw))
      done
    done;
    (* Level-wise evaluation. *)
    let eval_slot s =
      let o0 = row_off prep.f0_row.(s)
      and m0 = prep.f0_mask.(s)
      and o1 = row_off prep.f1_row.(s)
      and m1 = prep.f1_mask.(s) in
      let dst = row_off (prep.ni + s) in
      for lw = 0 to nw - 1 do
        let k = lw * 8 in
        Bytes.set_int64_ne data (dst + k)
          (Int64.logand
             (Int64.logxor (Bytes.get_int64_ne data (o0 + k)) m0)
             (Int64.logxor (Bytes.get_int64_ne data (o1 + k)) m1))
      done
    in
    (* The first parallel dimension of Fig. 3 — words of one truth table —
       matters when a level holds few nodes but the tables are long; split
       each slot's word range into chunks and schedule (slot, chunk) pairs. *)
    let eval_slot_range s lo hi =
      let o0 = row_off prep.f0_row.(s)
      and m0 = prep.f0_mask.(s)
      and o1 = row_off prep.f1_row.(s)
      and m1 = prep.f1_mask.(s) in
      let dst = row_off (prep.ni + s) in
      for lw = lo to hi - 1 do
        let k = lw * 8 in
        Bytes.set_int64_ne data (dst + k)
          (Int64.logand
             (Int64.logxor (Bytes.get_int64_ne data (o0 + k)) m0)
             (Int64.logxor (Bytes.get_int64_ne data (o1 + k)) m1))
      done
    in
    if par_inner then begin
      let word_chunk = 4096 in
      let nchunks = (nw + word_chunk - 1) / word_chunk in
      for l = 1 to Array.length prep.level_start - 2 do
        let lo = prep.level_start.(l) and hi = prep.level_start.(l + 1) in
        if nchunks <= 1 || hi - lo >= 2 * Par.Pool.num_workers pool then
          Par.Pool.parallel_for pool ~start:lo ~stop:hi eval_slot
        else
          (* Few nodes, long tables: parallelise over (slot, word chunk). *)
          Par.Pool.parallel_for pool ~start:0 ~stop:((hi - lo) * nchunks)
            (fun task ->
              let s = lo + (task / nchunks) in
              let c = task mod nchunks in
              eval_slot_range s (c * word_chunk) (min nw ((c + 1) * word_chunk)))
      done
    end
    else
      for s = 0 to prep.nn - 1 do
        eval_slot s
      done;
    (* Compare the pairs on this round's segment, fused into the parallel
       schedule: each pair's word range is scanned by whichever worker
       claims it, rather than sequentially on the calling domain after the
       barrier.  One pair is owned by exactly one loop index, so [decided]
       needs no synchronisation; only the shared [active] count is atomic.
       The scan order over words is fixed, so the reported mismatch
       pattern is identical to the sequential sweep's. *)
    let compare_pair k =
      let p = prep.ppairs.(k) in
      if not p.decided then begin
        let cmask = if p.pcompl then -1L else 0L in
        let oa = row_off p.a_row in
        let ob = if p.b_row < 0 then -1 else row_off p.b_row in
        let lw = ref 0 in
        while !lw < nw && not p.decided do
          let x = Bytes.get_int64_ne data (oa + (!lw * 8)) in
          let y = if ob < 0 then 0L else Bytes.get_int64_ne data (ob + (!lw * 8)) in
          let diff = Int64.logxor (Int64.logxor x y) cmask in
          let diff =
            if base + !lw = prep.tt_words - 1 then Int64.logand diff prep.tail_mask
            else diff
          in
          if not (Int64.equal diff 0L) then begin
            p.decided <- true;
            Atomic.decr active;
            verdicts.(p.ptag) <-
              Mismatch
                { pattern = ((base + !lw) * 64) + ctz64 diff; inputs = prep.inputs }
          end;
          incr lw
        done
      end
    in
    let np = Array.length prep.ppairs in
    if par_inner then Par.Pool.parallel_for pool ~start:0 ~stop:np compare_pair
    else
      for k = 0 to np - 1 do
        compare_pair k
      done;
    incr r
  done;
  (* Pairs that survived every round are proved — unless the window was
     cancelled mid-simulation, in which case the unfinished pairs must keep
     their inconclusive [Invalid] verdict rather than a false [Proved]. *)
  if not (Par.Cancel.is_set_opt cancel) then
    Array.iter
      (fun p -> if not p.decided then verdicts.(p.ptag) <- Proved)
      prep.ppairs

(* Fast path for the small windows of local function checking: truth
   tables of at most 16 words are evaluated by a single memoised cone
   traversal, skipping the window preparation entirely.  Returns the
   number of AND nodes evaluated. *)
exception Boundary_escape

let small_window g (job : job) verdicts =
  let ni = Array.length job.inputs in
  let nw = if ni <= 6 then 1 else 1 lsl (ni - 6) in
  let tail_mask =
    if ni >= 6 then -1L else Int64.sub (Int64.shift_left 1L (1 lsl ni)) 1L
  in
  let tts : (int, int64 array) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun j n ->
      Hashtbl.replace tts n (Array.init nw (fun w -> Bv.Tt.proj_word ~var:j w)))
    job.inputs;
  let nodes = ref 0 in
  let rec eval n =
    match Hashtbl.find_opt tts n with
    | Some a -> a
    | None ->
        if not (Aig.Network.is_and g n) then raise Boundary_escape;
        let f0 = Aig.Network.fanin0 g n and f1 = Aig.Network.fanin1 g n in
        let a0 = eval (Aig.Lit.node f0) and a1 = eval (Aig.Lit.node f1) in
        let m0 = if Aig.Lit.is_compl f0 then -1L else 0L in
        let m1 = if Aig.Lit.is_compl f1 then -1L else 0L in
        let a =
          Array.init nw (fun w ->
              Int64.logand (Int64.logxor a0.(w) m0) (Int64.logxor a1.(w) m1))
        in
        incr nodes;
        Hashtbl.replace tts n a;
        a
  in
  (try
     List.iter
       (fun p ->
         let ta = eval p.a in
         let tb = if p.b < 0 then None else Some (eval p.b) in
         let cmask = if p.compl_ then -1L else 0L in
         let verdict = ref Proved in
         (try
            for w = 0 to nw - 1 do
              let x = ta.(w) in
              let y = match tb with None -> 0L | Some b -> b.(w) in
              let diff = Int64.logxor (Int64.logxor x y) cmask in
              let diff = if w = nw - 1 then Int64.logand diff tail_mask else diff in
              if not (Int64.equal diff 0L) then begin
                verdict := Mismatch { pattern = (w * 64) + ctz64 diff; inputs = job.inputs };
                raise Exit
              end
            done
          with Exit -> ());
         verdicts.(p.tag) <- !verdict)
       job.pairs
   with Boundary_escape -> () (* pairs keep the default [Invalid] verdict *));
  !nodes

let run g ~pool ~memory_words ?arena ?(stats = new_stats ()) ?cancel ~jobs
    ~num_tags () =
  (* Latch an already-expired deadline before dispatching any window. *)
  ignore (Par.Cancel.poll_opt cancel);
  let verdicts = Array.make num_tags Invalid in
  (* Small windows (local function checking) go through the direct
     evaluator; large ones use the round-based simulation table. *)
  let small, jobs =
    List.partition (fun (j : job) -> Array.length j.inputs <= 10) jobs
  in
  if small <> [] then begin
    let small = Array.of_list small in
    let counts = Array.make (Array.length small) 0 in
    Par.Pool.parallel_for pool ~chunk:8 ~start:0 ~stop:(Array.length small)
      (fun k ->
        (* A cancelled small window keeps its [Invalid] verdicts. *)
        if not (Par.Cancel.is_set_opt cancel) then
          counts.(k) <- small_window g small.(k) verdicts);
    Array.iteri
      (fun k (job : job) ->
        stats.windows <- stats.windows + 1;
        stats.small_windows <- stats.small_windows + 1;
        stats.rounds <- stats.rounds + 1;
        stats.nodes_simulated <- stats.nodes_simulated + counts.(k);
        let nw =
          let ni = Array.length job.inputs in
          if ni <= 6 then 1 else 1 lsl (ni - 6)
        in
        stats.words_computed <-
          stats.words_computed + ((counts.(k) + Array.length job.inputs) * nw))
      small
  end;
  let preps = List.filter_map (fun job -> prepare g job) jobs in
  (* The simulation table: the whole [memory_words] budget is one arena
     slab, created per run (or handed in by the caller for reuse across
     batches) and recycled across chunks and rounds — the seed allocated
     every window's buffer from the GC heap on every chunk. *)
  let arena =
    match arena with
    | Some a -> a
    | None -> if preps = [] then Arena.create ~words:0 else Arena.create ~words:memory_words
  in
  let grows0 = Arena.grows arena in
  (* Greedy chunking under the memory budget (a single oversized window
     still runs alone with E = 1). *)
  let rows p = p.ni + p.nn in
  let rec chunk acc cur cur_rows = function
    | [] -> if cur = [] then List.rev acc else List.rev (List.rev cur :: acc)
    | p :: rest ->
        let r = rows p in
        if cur <> [] && cur_rows + r > memory_words then
          chunk (List.rev cur :: acc) [ p ] r rest
        else chunk acc (p :: cur) (cur_rows + r) rest
  in
  let chunks = chunk [] [] 0 preps in
  List.iter
    (fun chunk ->
      if not (Par.Cancel.is_set_opt cancel) then begin
      let chunk = Array.of_list chunk in
      let total_rows = Array.fold_left (fun acc p -> acc + rows p) 0 chunk in
      let max_tt = Array.fold_left (fun acc p -> max acc p.tt_words) 1 chunk in
      (* Entry size E: the largest power of two fitting the budget, capped
         at the longest truth table in the chunk. *)
      let e = ref 1 in
      while
        2 * !e * total_rows <= memory_words && !e < max_tt
      do
        e := 2 * !e
      done;
      let entry_words = !e in
      Arena.reset arena;
      (* An oversized single window (rows > memory_words, E = 1) needs more
         than the configured slab, exactly like the seed's unbounded
         per-window allocation did. *)
      Arena.ensure arena (total_rows * entry_words);
      Array.iter (fun p -> p.base <- Arena.alloc arena (rows p * entry_words)) chunk;
      let big p = rows p > 8192 in
      let small_idx = ref [] and big_idx = ref [] in
      Array.iteri (fun i p -> if big p then big_idx := i :: !big_idx else small_idx := i :: !small_idx) chunk;
      let small = Array.of_list !small_idx in
      (* One region per chunk: the workers stay hot across the window loop
         and every per-level barrier inside the big windows. *)
      Par.Pool.parallel_region pool (fun () ->
          Par.Pool.parallel_for pool ~chunk:1 ~start:0 ~stop:(Array.length small)
            (fun k ->
              simulate_window ?cancel pool arena chunk.(small.(k)) ~entry_words
                ~verdicts ~par_inner:false);
          List.iter
            (fun i ->
              simulate_window ?cancel pool arena chunk.(i) ~entry_words
                ~verdicts ~par_inner:true)
            !big_idx);
      Array.iter
        (fun p ->
          stats.windows <- stats.windows + 1;
          stats.nodes_simulated <- stats.nodes_simulated + p.nn;
          stats.words_computed <- stats.words_computed + p.w_words;
          stats.rounds <- stats.rounds + p.w_rounds)
        chunk
      end)
    chunks;
  stats.arena_hwm_words <- max stats.arena_hwm_words (Arena.hwm_words arena);
  stats.arena_grows <- stats.arena_grows + (Arena.grows arena - grows0);
  verdicts
