(* Union-find over nodes; only PI and AND slots are ever used. *)
let find parent x =
  let rec go x = if parent.(x) = x then x else go parent.(x) in
  let root = go x in
  (* Path compression. *)
  let rec compress x =
    if parent.(x) <> root then begin
      let next = parent.(x) in
      parent.(x) <- root;
      compress next
    end
  in
  compress x;
  root

let union parent a b =
  let ra = find parent a and rb = find parent b in
  if ra <> rb then parent.(max ra rb) <- min ra rb

let groups g =
  let n = Aig.Network.num_nodes g in
  let parent = Array.init n Fun.id in
  Aig.Network.iter_ands g (fun id ->
      let f0 = Aig.Lit.node (Aig.Network.fanin0 g id) in
      let f1 = Aig.Lit.node (Aig.Network.fanin1 g id) in
      (* The constant node never joins a group. *)
      if f0 <> 0 then union parent id f0;
      if f1 <> 0 then union parent id f1);
  let by_root = Hashtbl.create 16 in
  let const_group = ref [] in
  for i = Aig.Network.num_pos g - 1 downto 0 do
    let l = Aig.Network.po g i in
    let d = Aig.Lit.node l in
    if d = 0 then const_group := i :: !const_group
    else begin
      let r = find parent d in
      Hashtbl.replace by_root r (i :: (try Hashtbl.find by_root r with Not_found -> []))
    end
  done;
  let gs = Hashtbl.fold (fun _ pos acc -> pos :: acc) by_root [] in
  let gs = List.sort compare gs in
  if !const_group = [] then gs else !const_group :: gs

let extract g pos =
  let roots =
    List.filter_map
      (fun i ->
        let l = Aig.Network.po g i in
        if Aig.Lit.node l = 0 then None else Some (Aig.Lit.node l))
      pos
    |> Array.of_list
  in
  let cone = Aig.Cone.tfi g ~roots in
  let ng = Aig.Network.create () in
  let map = Array.make (Aig.Network.num_nodes g) (-1) in
  map.(0) <- Aig.Lit.const_false;
  let pi_origin = ref [] in
  Aig.Network.iter_nodes g (fun id ->
      if cone.(id) then
        if Aig.Network.is_pi g id then begin
          map.(id) <- Aig.Network.add_pi ng;
          pi_origin := Aig.Network.pi_index g id :: !pi_origin
        end
        else if Aig.Network.is_and g id then begin
          let tr l = Aig.Lit.xor_compl map.(Aig.Lit.node l) (Aig.Lit.is_compl l) in
          map.(id) <-
            Aig.Network.add_and ng
              (tr (Aig.Network.fanin0 g id))
              (tr (Aig.Network.fanin1 g id))
        end);
  List.iter
    (fun i ->
      let l = Aig.Network.po g i in
      let m = if Aig.Lit.node l = 0 then Aig.Lit.const_false else map.(Aig.Lit.node l) in
      Aig.Network.add_po ng (Aig.Lit.xor_compl m (Aig.Lit.is_compl l)))
    pos;
  (ng, Array.of_list (List.rev !pi_origin))

let lift_cex ~pi_origin ~num_pis sub_cex =
  let cex = Array.make num_pis false in
  Array.iteri (fun j orig -> cex.(orig) <- sub_cex.(j)) pi_origin;
  cex

let const_verdict g pos =
  if List.for_all (fun i -> Aig.Lit.node (Aig.Network.po g i) = 0) pos then
    if List.for_all (fun i -> Aig.Network.po g i = Aig.Lit.const_false) pos then
      Some Engine.Proved
    else
      (* A constant-true PO: disproved by any assignment. *)
      let bad =
        List.find (fun i -> Aig.Network.po g i <> Aig.Lit.const_false) pos
      in
      Some (Engine.Disproved (Array.make (Aig.Network.num_pis g) false, bad))
  else None

let cone_ands g pos =
  let roots =
    List.filter_map
      (fun i ->
        let l = Aig.Network.po g i in
        if Aig.Lit.node l = 0 then None else Some (Aig.Lit.node l))
      pos
    |> Array.of_list
  in
  if Array.length roots = 0 then 0
  else begin
    let cone = Aig.Cone.tfi g ~roots in
    let n = ref 0 in
    Aig.Network.iter_ands g (fun id -> if cone.(id) then incr n);
    !n
  end

let split_group g ~max_ands pos =
  match pos with
  | [] | [ _ ] -> [ pos ]
  | _ when max_ands <= 0 -> [ pos ]
  | _ ->
      (* Greedy PO chunking: walk the POs in order, growing the current
         chunk's cone with an explicit-stack DFS, and close the chunk once
         it holds [max_ands] AND nodes.  Stamps are per chunk, so logic
         shared between chunks is counted (and later extracted) once per
         chunk — each chunk gets its own copy of the shared cone.  A
         single PO whose cone alone exceeds the budget becomes its own
         oversized chunk. *)
      let stamp = Array.make (Aig.Network.num_nodes g) (-1) in
      let chunk_id = ref 0 in
      let count = ref 0 in
      let stack = ref [] in
      let push id =
        if id <> 0 && stamp.(id) <> !chunk_id then begin
          stamp.(id) <- !chunk_id;
          stack := id :: !stack
        end
      in
      let visit root =
        push root;
        let continue = ref true in
        while !continue do
          match !stack with
          | [] -> continue := false
          | id :: rest ->
              stack := rest;
              if Aig.Network.is_and g id then begin
                incr count;
                push (Aig.Lit.node (Aig.Network.fanin0 g id));
                push (Aig.Lit.node (Aig.Network.fanin1 g id))
              end
        done
      in
      let chunks = ref [] in
      let cur = ref [] in
      let flush () =
        if !cur <> [] then begin
          chunks := List.rev !cur :: !chunks;
          cur := [];
          incr chunk_id;
          count := 0
        end
      in
      List.iter
        (fun i ->
          visit (Aig.Lit.node (Aig.Network.po g i));
          cur := i :: !cur;
          if !count >= max_ands then flush ())
        pos;
      flush ();
      List.rev !chunks

let check ?config ?sat_config ?cancel ~pool g =
  let gs = groups g in
  let num_groups = List.length gs in
  let rec solve = function
    | [] -> (Engine.Proved, num_groups)
    | group :: rest -> (
        if Par.Cancel.poll_opt cancel then (Engine.Undecided, num_groups)
        else
          match const_verdict g group with
          | Some Engine.Proved -> solve rest
          | Some v -> (v, num_groups)
          | _ -> (
              let sub, pi_origin = extract g group in
              let combined =
                Engine.check_with_fallback ?config ?sat_config ?cancel ~pool sub
              in
              match combined.Engine.final with
              | Engine.Proved -> solve rest
              | Engine.Disproved (sub_cex, sub_po) ->
                  let cex =
                    lift_cex ~pi_origin ~num_pis:(Aig.Network.num_pis g) sub_cex
                  in
                  (Engine.Disproved (cex, List.nth group sub_po), num_groups)
              | Engine.Undecided -> (Engine.Undecided, num_groups)))
  in
  solve gs
