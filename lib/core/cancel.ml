(* Re-export of the shared token.  The implementation lives in [Par]
   because the SAT solver and the BDD package (which do not depend on this
   library) poll the same token type; [Simsweep.Cancel] is the name the
   engine layers and the portfolio use. *)

include Par.Cancel
