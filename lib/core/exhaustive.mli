(** Parallel exhaustive simulator (paper Algorithm 1).

    A batch of jobs is checked at once; each job is a simulation window
    (identified by its input node set) carrying candidate pairs whose truth
    tables over those inputs are compared.  The simulation table gives every
    window row an entry of [E = 2^e] 64-bit words, with [E] chosen on the
    fly as the largest power of two such that the whole table fits in the
    [memory_words] budget; longer truth tables are simulated over multiple
    rounds, re-deriving projection-table segments per round.

    Three dimensions of parallelism (paper Fig. 3) map onto the domain
    pool: multiple windows are simulated concurrently; inside a large
    window the nodes of one topological level are split across workers; and
    each worker sweeps the words of its rows. *)

type pair = {
  a : int;  (** candidate node id *)
  b : int;  (** other node id, or [-1] for the constant-false target *)
  compl_ : bool;  (** compare against the complement *)
  tag : int;  (** caller's slot in the verdict array *)
}

type job = { inputs : int array; pairs : pair list }

type mismatch = {
  pattern : int;  (** first differing pattern index *)
  inputs : int array;  (** the window inputs the pattern refers to (after
                           any window merging) *)
}

type verdict =
  | Proved  (** truth tables identical over all inputs *)
  | Mismatch of mismatch
  | Invalid  (** the inputs do not bound the cone of some pair node *)

type stats = {
  mutable windows : int;
  mutable nodes_simulated : int;  (** window nodes, summed over windows *)
  mutable words_computed : int;
      (** truth-table words actually evaluated — per simulation round only
          the words of that round's (possibly partial) entry segment count *)
  mutable rounds : int;
  mutable small_windows : int;
      (** windows answered by the memoised small-window fast path *)
  mutable arena_hwm_words : int;
      (** simulation-table arena high-water mark, in 64-bit words *)
  mutable arena_grows : int;
      (** arena reallocations forced by oversized single windows *)
}

val new_stats : unit -> stats

(** [run g ~pool ~memory_words ~jobs ~num_tags] returns a verdict per tag.
    Tags absent from all jobs stay [Invalid].

    The simulation table is carved out of an {!Arena} slab sized by
    [memory_words] — allocated once per call and recycled across chunks
    and rounds.  Pass [?arena] to reuse one slab across calls (the engine
    shares one arena over all batches of a run); the arena is reset per
    chunk, so it must not be used concurrently.

    [cancel] is polled at window round boundaries and between chunks; a
    cancelled run leaves undecided tags at [Invalid] (inconclusive), never
    a false [Proved]. *)
val run :
  Aig.Network.t ->
  pool:Par.Pool.t ->
  memory_words:int ->
  ?arena:Arena.t ->
  ?stats:stats ->
  ?cancel:Par.Cancel.t ->
  jobs:job list ->
  num_tags:int ->
  unit ->
  verdict array
