(** Output partitioning.

    Industrial checkers split a miter into independent sub-problems by
    grouping outputs whose support cones overlap, then solve each group
    separately — doubled benchmarks (the paper's enlargement method) and
    multi-unit designs decompose completely.  Groups are found with a
    union-find over PIs driven once through the AND nodes, so the
    partition costs a single topological pass. *)

(** [groups g] partitions the PO indices by overlapping structural
    support.  Constant outputs form their own group (returned first when
    present). *)
val groups : Aig.Network.t -> int list list

(** [extract g pos] builds the sub-network containing only the listed POs,
    its cone, and the PIs in that cone; returns the network and, for each
    of its PIs, the original PI index. *)
val extract : Aig.Network.t -> int list -> Aig.Network.t * int array

(** [lift_cex ~pi_origin ~num_pis cex] maps a counter-example over an
    extracted sub-network's PIs back to the full input space ([pi_origin]
    as returned by {!extract}); unconstrained inputs are false. *)
val lift_cex : pi_origin:int array -> num_pis:int -> Sim.Cex.t -> Sim.Cex.t

(** [const_verdict g pos] decides a group whose POs are all constant:
    [Some Proved] when every PO is constant false, [Some (Disproved _)]
    (with the all-false assignment) when one is constant true, [None] when
    any PO is non-constant. *)
val const_verdict : Aig.Network.t -> int list -> Engine.outcome option

(** [cone_ands g pos] is the number of AND nodes in the combined cone of
    the listed POs — the size [extract] would produce. *)
val cone_ands : Aig.Network.t -> int list -> int

(** [split_group g ~max_ands pos] chunks one (large) support group into
    consecutive PO runs of roughly [max_ands] AND nodes each, for
    window-level sharding.  Logic shared between chunks is replicated into
    each; a single PO whose cone alone exceeds the budget gets its own
    oversized chunk.  The chunking is deterministic. *)
val split_group : Aig.Network.t -> max_ands:int -> int list -> int list list

(** [check ?config ?cancel ~pool miter] runs the engine (with SAT
    fallback) on every support group independently and combines the
    verdicts; a group's counter-example is lifted back to the full input
    space.  Returns the outcome and the number of groups.  [cancel] is
    threaded into every group's engines and polled between groups; a
    cancelled check returns [Undecided]. *)
val check :
  ?config:Config.t ->
  ?sat_config:Sat.Sweep.config ->
  ?cancel:Cancel.t ->
  pool:Par.Pool.t ->
  Aig.Network.t ->
  Engine.outcome * int
