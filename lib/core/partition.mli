(** Output partitioning.

    Industrial checkers split a miter into independent sub-problems by
    grouping outputs whose support cones overlap, then solve each group
    separately — doubled benchmarks (the paper's enlargement method) and
    multi-unit designs decompose completely.  Groups are found with a
    union-find over PIs driven once through the AND nodes, so the
    partition costs a single topological pass. *)

(** [groups g] partitions the PO indices by overlapping structural
    support.  Constant outputs form their own group (returned first when
    present). *)
val groups : Aig.Network.t -> int list list

(** [extract g pos] builds the sub-network containing only the listed POs,
    its cone, and the PIs in that cone; returns the network and, for each
    of its PIs, the original PI index. *)
val extract : Aig.Network.t -> int list -> Aig.Network.t * int array

(** [check ?config ?cancel ~pool miter] runs the engine (with SAT
    fallback) on every support group independently and combines the
    verdicts; a group's counter-example is lifted back to the full input
    space.  Returns the outcome and the number of groups.  [cancel] is
    threaded into every group's engines and polled between groups; a
    cancelled check returns [Undecided]. *)
val check :
  ?config:Config.t ->
  ?sat_config:Sat.Sweep.config ->
  ?cancel:Cancel.t ->
  pool:Par.Pool.t ->
  Aig.Network.t ->
  Engine.outcome * int
