type phase = Po_check | Global_check | Local_check

type t = {
  mutable time_p : float;
  mutable time_g : float;
  mutable time_l : float;
  mutable pos_proved : int;
  mutable pairs_proved_global : int;
  mutable pairs_proved_local : int;
  mutable cex_found : int;
  mutable local_phases : int;
  mutable g_iterations : int;
  mutable g_candidates : int;
  mutable g_refinements : int;
  mutable deadline_hits : int;
  mutable deadline_exceeded : bool;
  mutable cancelled : bool;
  mutable cache_hits : int;
  mutable cache_misses : int;
  exhaustive : Exhaustive.stats;
  psim : Sim.Psim.stats;
}

let create () =
  {
    time_p = 0.;
    time_g = 0.;
    time_l = 0.;
    pos_proved = 0;
    pairs_proved_global = 0;
    pairs_proved_local = 0;
    cex_found = 0;
    local_phases = 0;
    g_iterations = 0;
    g_candidates = 0;
    g_refinements = 0;
    deadline_hits = 0;
    deadline_exceeded = false;
    cancelled = false;
    cache_hits = 0;
    cache_misses = 0;
    exhaustive = Exhaustive.new_stats ();
    psim = Sim.Psim.new_stats ();
  }

let timed t phase f =
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      let dt = Unix.gettimeofday () -. t0 in
      match phase with
      | Po_check -> t.time_p <- t.time_p +. dt
      | Global_check -> t.time_g <- t.time_g +. dt
      | Local_check -> t.time_l <- t.time_l +. dt)
    f

let total_time t = t.time_p +. t.time_g +. t.time_l

let breakdown t =
  let total = total_time t in
  if total <= 0. then (0., 0., 0.)
  else (t.time_p /. total, t.time_g /. total, t.time_l /. total)

let pp fmt t =
  Format.fprintf fmt
    "P=%.3fs G=%.3fs L=%.3fs | POs=%d global=%d local=%d cex=%d phases=%d \
     g-iters=%d cand=%d%s"
    t.time_p t.time_g t.time_l t.pos_proved t.pairs_proved_global
    t.pairs_proved_local t.cex_found t.local_phases t.g_iterations
    t.g_candidates
    (if t.cancelled then " CANCELLED"
     else if t.deadline_exceeded then " DEADLINE"
     else "")
