(** Structured telemetry.

    The paper's evaluation (Tables I–II, Figs. 6–7) is quantitative:
    per-phase time breakdown, windows simulated, truth-table words computed,
    reduction percentage, fallback SAT effort.  This module turns the
    engines' mutable stat records ({!Stats.t}, {!Exhaustive.stats},
    {!Sim.Psim.stats}, {!Par.Pool.stats}, {!Sat.Sweep.stats}) into a single
    machine-readable JSON snapshot, so every run — CLI, bench harness,
    tests — can be compared against previous ones.

    The JSON layer is hand-rolled (no external dependency) and symmetric:
    {!to_string} output is accepted by {!parse}. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

(** Serialise; [indent] pretty-prints with two-space indentation.
    Non-finite floats serialise as [null]. *)
val to_string : ?indent:bool -> json -> string

(** Parse a JSON document.  Accepts everything {!to_string} emits (objects,
    arrays, strings with escapes, ints, floats, booleans, null). *)
val parse : string -> (json, string) result

(** Field lookup on an [Obj]; [None] on missing field or non-object. *)
val member : string -> json -> json option

(** {1 Typed field accessors}

    [member] plus a shape check, shared by the hand-rolled wire codecs
    (serve protocol, shard frames, bench readers).  The numeric accessors
    accept both numeric shapes — an integral float serialises as [Int]
    and must still read back. *)

val int_member : string -> json -> int option
val float_member : string -> json -> float option
val string_member : string -> json -> string option
val bool_member : string -> json -> bool option
val list_member : string -> json -> json list option

(** {1 Wire I/O counters}

    Mutable per-connection counters threaded through the frame layer
    ({!Serve.Protocol}): payload-inclusive bytes and frames in each
    direction, plus actual [flush] syscalls — fewer flushes than frames
    means writes were coalesced into batches. *)

type io = {
  mutable io_bytes_tx : int;
  mutable io_bytes_rx : int;
  mutable io_frames_tx : int;
  mutable io_frames_rx : int;
  mutable io_flushes : int;
}

val io_create : unit -> io
val of_io : io -> json

(** Pretty-printed snapshot written to [file], with a trailing newline. *)
val write_file : string -> json -> unit

(** {1 Stat snapshots} *)

val of_exhaustive : Exhaustive.stats -> json
val of_psim : Sim.Psim.stats -> json
val of_pool : Par.Pool.stats -> json
val of_sat : Sat.Sweep.stats -> json

(** Preprocessing counters ({!Sat.Simplify.stats}); nested under
    ["simplify"] inside {!of_sat} output. *)
val of_simplify : Sat.Simplify.stats -> json
val of_engine_stats : Stats.t -> json

(** Lower-case outcome tag: ["equivalent"], ["not_equivalent"],
    ["undecided"]. *)
val outcome_string : Engine.outcome -> string

(** Snapshot of a full engine run: outcome, sizes, reduction, stats. *)
val of_run : Engine.run_result -> json

(** Snapshot of the combined engine+SAT flow. *)
val of_combined : Engine.combined -> json

(** Snapshot of a portfolio run: outcome, winner, mode, per-engine
    wall-clock, BDD step-budget hit, race cancel latency, member stats. *)
val of_portfolio : Portfolio.result -> json
