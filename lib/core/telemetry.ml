(* Structured telemetry: a minimal JSON layer (hand-rolled, no external
   dependency, like the rest of the code base) plus builders that flatten
   the engines' mutable stat records into JSON snapshots. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

(* --- printing ------------------------------------------------------------ *)

let escape_to buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_to_string f =
  (* JSON has no representation for non-finite numbers. *)
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else
    let s = Printf.sprintf "%.17g" f in
    (* Shortest representation that round-trips. *)
    let short = Printf.sprintf "%.12g" f in
    let s = if float_of_string short = f then short else s in
    (* Keep floats recognisable as floats. *)
    if
      String.contains s '.' || String.contains s 'e' || String.contains s 'n'
      || String.contains s 'i'
    then s
    else s ^ ".0"

let rec print_to buf ~indent ~level v =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | String s ->
      Buffer.add_char buf '"';
      escape_to buf s;
      Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (level + 1);
          print_to buf ~indent ~level:(level + 1) item)
        items;
      nl ();
      pad level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, item) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (level + 1);
          Buffer.add_char buf '"';
          escape_to buf k;
          Buffer.add_string buf (if indent then "\": " else "\":");
          print_to buf ~indent ~level:(level + 1) item)
        fields;
      nl ();
      pad level;
      Buffer.add_char buf '}'

let to_string ?(indent = false) v =
  let buf = Buffer.create 1024 in
  print_to buf ~indent ~level:0 v;
  Buffer.contents buf

let write_file file v =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string ~indent:true v);
      output_char oc '\n')

(* --- parsing ------------------------------------------------------------- *)

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let parse_hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some c -> c
    | None -> fail "bad \\u escape"
  in
  let utf8_add buf c =
    (* Encode a Unicode scalar value as UTF-8. *)
    if c < 0x80 then Buffer.add_char buf (Char.chr c)
    else if c < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (c lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xe0 lor (c lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3f)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'u' ->
                   advance ();
                   utf8_add buf (parse_hex4 ())
               | _ -> fail "unknown escape");
            go ()
        | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if
      String.contains tok '.' || String.contains tok 'e'
      || String.contains tok 'E'
    then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
    else Ok v
  with Parse_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* Typed field accessors, shared by every hand-rolled wire codec (the
   serve protocol, the shard coordinator frames, the bench readers).
   Numeric accessors accept both numeric shapes: a float that happens to
   be integral serialises as an [Int] and must still read back. *)

let int_member key j =
  match member key j with
  | Some (Int n) -> Some n
  | Some (Float f) when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let float_member key j =
  match member key j with
  | Some (Float f) -> Some f
  | Some (Int n) -> Some (float_of_int n)
  | _ -> None

let string_member key j =
  match member key j with Some (String s) -> Some s | _ -> None

let bool_member key j =
  match member key j with Some (Bool b) -> Some b | _ -> None

let list_member key j =
  match member key j with Some (List l) -> Some l | _ -> None

(* --- wire I/O counters ---------------------------------------------------- *)

type io = {
  mutable io_bytes_tx : int;
  mutable io_bytes_rx : int;
  mutable io_frames_tx : int;
  mutable io_frames_rx : int;
  mutable io_flushes : int;
}

let io_create () =
  {
    io_bytes_tx = 0;
    io_bytes_rx = 0;
    io_frames_tx = 0;
    io_frames_rx = 0;
    io_flushes = 0;
  }

let of_io io =
  Obj
    [
      ("bytes_tx", Int io.io_bytes_tx);
      ("bytes_rx", Int io.io_bytes_rx);
      ("frames_tx", Int io.io_frames_tx);
      ("frames_rx", Int io.io_frames_rx);
      ("flushes", Int io.io_flushes);
    ]

(* --- stat snapshots ------------------------------------------------------ *)

let of_exhaustive (s : Exhaustive.stats) =
  Obj
    [
      ("windows", Int s.windows);
      ("small_windows", Int s.small_windows);
      ("nodes_simulated", Int s.nodes_simulated);
      ("words_computed", Int s.words_computed);
      ("rounds", Int s.rounds);
      ("arena_hwm_words", Int s.arena_hwm_words);
      ("arena_grows", Int s.arena_grows);
    ]

let of_psim (s : Sim.Psim.stats) =
  Obj
    [
      ("runs", Int s.runs);
      ("level_batches", Int s.level_batches);
      ("node_words", Int s.node_words);
      ("patterns_embedded", Int s.patterns_embedded);
    ]

let of_pool (s : Par.Pool.stats) =
  let int_list a = List (Array.to_list (Array.map (fun c -> Int c) a)) in
  Obj
    [
      ("jobs", Int s.jobs);
      ("seq_jobs", Int s.seq_jobs);
      ("items", Int s.items);
      ("barrier_wait_s", Float s.barrier_wait);
      ("chunks_per_worker", int_list s.chunks_per_worker);
      ("steals", int_list s.steals);
      ("regions", Int s.regions);
      ("region_jobs", Int s.region_jobs);
    ]

let of_simplify (s : Sat.Simplify.stats) =
  Obj
    [
      ("rounds", Int s.s_rounds);
      ("units", Int s.s_units);
      ("eliminated", Int s.s_eliminated);
      ("subsumed", Int s.s_subsumed);
      ("strengthened", Int s.s_strengthened);
      ("equiv_lits", Int s.s_elit);
      ("xor_rows", Int s.s_xor_rows);
      ("xor_units", Int s.s_xor_units);
      ("xor_equivs", Int s.s_xor_equivs);
      ("probes", Int s.s_probes);
      ("failed_lits", Int s.s_failed_lits);
      ("cancelled", Bool s.s_cancelled);
    ]

let of_sat (s : Sat.Sweep.stats) =
  Obj
    [
      ("sat_calls", Int s.sat_calls);
      ("sat_unsat", Int s.sat_unsat);
      ("sat_sat", Int s.sat_sat);
      ("sat_unknown", Int s.sat_unknown);
      ("conflicts", Int s.conflicts);
      ("candidates", Int s.candidates);
      ("merged", Int s.merged);
      ("rounds", Int s.rounds);
      ("cex_count", Int s.cex_count);
      ("rsim_splits", Int s.rsim_splits);
      ("batches", Int s.batches);
      ("cnf_loads", Int s.cnf_loads);
      ("cache_hits", Int s.cache_hits);
      ("cache_misses", Int s.cache_misses);
      ("restarts", Int s.restarts);
      ("reduce_dbs", Int s.reduce_dbs);
      ("learnts_removed", Int s.learnts_removed);
      ("simplify", of_simplify s.simp);
    ]

let of_engine_stats (s : Stats.t) =
  Obj
    [
      ("time_p_s", Float s.time_p);
      ("time_g_s", Float s.time_g);
      ("time_l_s", Float s.time_l);
      ("pos_proved", Int s.pos_proved);
      ("pairs_proved_global", Int s.pairs_proved_global);
      ("pairs_proved_local", Int s.pairs_proved_local);
      ("cex_found", Int s.cex_found);
      ("local_phases", Int s.local_phases);
      ("g_iterations", Int s.g_iterations);
      ("g_candidates", Int s.g_candidates);
      ("g_refinements", Int s.g_refinements);
      ("deadline_hits", Int s.deadline_hits);
      ("deadline_exceeded", Bool s.deadline_exceeded);
      ("cancelled", Bool s.cancelled);
      ("cache_hits", Int s.cache_hits);
      ("cache_misses", Int s.cache_misses);
      ("exhaustive", of_exhaustive s.exhaustive);
      ("psim", of_psim s.psim);
    ]

let outcome_string = function
  | Engine.Proved -> "equivalent"
  | Engine.Disproved _ -> "not_equivalent"
  | Engine.Undecided -> "undecided"

let of_run (r : Engine.run_result) =
  Obj
    [
      ("outcome", String (outcome_string r.outcome));
      ("initial_size", Int r.initial_size);
      ("reduced_size", Int r.reduced_size);
      ("reduction_percent", Float (Engine.reduction_percent r));
      ("stats", of_engine_stats r.stats);
    ]

let of_combined (c : Engine.combined) =
  Obj
    [
      ("outcome", String (outcome_string c.final));
      ("engine", of_run c.engine);
      ( "sat_fallback",
        match c.sat_stats with None -> Null | Some s -> of_sat s );
    ]

let of_portfolio (r : Portfolio.result) =
  Obj
    [
      ("outcome", String (outcome_string r.Portfolio.outcome));
      ( "winner",
        match r.Portfolio.winner with
        | Some w -> String (Portfolio.engine_name w)
        | None -> Null );
      ("mode", String (Portfolio.mode_name r.Portfolio.mode_used));
      ("time_s", Float r.Portfolio.time);
      ( "racers",
        List (List.map (fun n -> String n) r.Portfolio.racers) );
      ( "per_engine_time_s",
        Obj
          (List.map
             (fun (e, t) -> (Portfolio.engine_name e, Float t))
             r.Portfolio.per_engine_time) );
      ("bdd_timeout", Bool r.Portfolio.bdd_timeout);
      ( "cancel_latency_s",
        match r.Portfolio.cancel_latency with
        | Some l -> Float l
        | None -> Null );
      ( "engine_stats",
        match r.Portfolio.engine_stats with
        | Some s -> of_engine_stats s
        | None -> Null );
      ( "sat_stats",
        match r.Portfolio.sat_stats with Some s -> of_sat s | None -> Null );
      ( "extra_stats",
        Obj
          (List.map
             (fun (name, counters) ->
               (name, Obj (List.map (fun (k, v) -> (k, Float v)) counters)))
             r.Portfolio.extra_stats) );
    ]
