(** Engine statistics: per-phase wall-clock timers (Fig. 6) and work
    counters. *)

type phase = Po_check | Global_check | Local_check

type t = {
  mutable time_p : float;
  mutable time_g : float;
  mutable time_l : float;
  mutable pos_proved : int;
  mutable pairs_proved_global : int;
  mutable pairs_proved_local : int;
  mutable cex_found : int;
  mutable local_phases : int;
  mutable g_iterations : int;  (** G-phase refinement iterations run *)
  mutable g_candidates : int;  (** candidate pairs checked in the G phase *)
  mutable g_refinements : int;
      (** G-phase iterations that refined the classes with fresh CEXs *)
  mutable deadline_hits : int;
      (** times a deadline check observed the time limit exceeded *)
  mutable deadline_exceeded : bool;
      (** the configured [time_limit] was exceeded during the run *)
  mutable cancelled : bool;
      (** the run's cancellation token fired (portfolio race lost) *)
  mutable cache_hits : int;
      (** PO verdicts discharged from the cross-request equivalence cache *)
  mutable cache_misses : int;
      (** PO cache lookups that found nothing (cache enabled only) *)
  exhaustive : Exhaustive.stats;
  psim : Sim.Psim.stats;  (** partial (random) simulation effort *)
}

val create : unit -> t

(** [timed stats phase f] runs [f] and adds its duration to the phase
    timer. *)
val timed : t -> phase -> (unit -> 'a) -> 'a

val total_time : t -> float

(** Runtime fractions (p, g, l) of the total, for the Fig. 6 breakdown. *)
val breakdown : t -> float * float * float

val pp : Format.formatter -> t -> unit
