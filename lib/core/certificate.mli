(** Checkable proof certificates for the CEC engine.

    The engine's answer is only as trustworthy as 8,000 lines of simulator;
    a certificate lets an {e independent} checker validate the result: it
    records every reduction step (PO proofs and node merges, via
    {!Engine.run}'s [trace]) and {!validate} replays them on the original
    miter, re-proving each individual claim with the SAT solver — a much
    smaller trusted core.  Each step's claims are local and cheap compared
    to the original problem, which is the same reason the engine is fast:
    the certificate externalises that decomposition. *)

type t = {
  steps : Engine.trace_step list;
  claims_proved : bool;  (** the engine claims the miter fully proved *)
}

(** [generate ?config ?cancel ~pool miter] runs the engine while recording
    the trace.  The input network is not modified.  A cancelled run yields
    an [Undecided] result with [claims_proved = false]. *)
val generate :
  ?config:Config.t ->
  ?cancel:Cancel.t ->
  pool:Par.Pool.t ->
  Aig.Network.t ->
  Engine.run_result * t

(** [validate ?conflict_limit miter cert] replays the certificate on the
    original miter: every merge [n -> l] is re-proved equivalent by SAT on
    the current intermediate miter and every P-step output re-proved
    constant false, then the step's reduction is applied.  Returns the
    final replayed miter, which is fully solved when [claims_proved] held
    honestly.  On any failed claim, [Error] describes the offending step. *)
val validate :
  ?conflict_limit:int -> Aig.Network.t -> t -> (Aig.Network.t, string) result

(** Text serialisation (one step per line) for storing certificates next
    to netlists. *)
val to_string : t -> string

val of_string : string -> (t, string) result
