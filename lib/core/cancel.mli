(** Cooperative cancellation for the engine loops.

    An alias of {!Par.Cancel} — one token type shared by every engine so
    the racing portfolio can cancel a BDD build, a CDCL search, an
    exhaustive-simulation round and a sweeping round through the same
    flag.  See {!Par.Cancel} for the API contract. *)

include module type of Par.Cancel
