(** Portfolio checker — the stand-in for the commercial tool.

    The paper describes commercial checkers as "a combination of engines",
    with multi-threading plausibly "running different engines
    simultaneously and early-stopping when an engine finishes".  This
    portfolio runs a BDD engine (with node and step budgets), the
    simulation engine, and the SAT sweeper — either one after the other
    ([`Sequential]) or concurrently with cooperative cancellation
    ([`Race]).  BDDs excel on symmetric control logic (the [voter]
    benchmark family) and blow up on multipliers, which reproduces
    Table II's Conformal-vs-ours crossovers.

    In [`Race] mode the simulation engine keeps the calling domain (and
    its worker pool) while the BDD engine and the SAT sweeper each get one
    dedicated domain; the first {e conclusive} verdict fires a shared
    {!Cancel.t} token that the losers poll cooperatively.  An inconclusive
    finisher (BDD budget blow-up, undecided engine) never cancels anyone.
    The race degrades to the sequential portfolio when the pool's workers
    plus {!race_domains} exceed [Domain.recommended_domain_count] — the
    portfolio never oversubscribes cores. *)

type engine =
  | Bdd_engine
  | Sim_engine
  | Sat_engine
  | Extra_engine of string
      (** a racer registered with {!register_extra}, by name *)

type mode = [ `Sequential | `Race ]

type result = {
  outcome : Engine.outcome;
  winner : engine option;
      (** the engine that produced the final verdict; [None] when the
          portfolio is undecided *)
  time : float;
  mode_used : mode;
      (** the mode actually run — [`Sequential] when a requested race
          degraded for lack of cores *)
  per_engine_time : (engine * float) list;
      (** wall-clock per engine that ran to completion; a cancelled racer
          does not report a time *)
  bdd_timeout : bool;
      (** the BDD engine hit its step budget (not its node budget) *)
  cancel_latency : float option;
      (** race only: seconds from the winning verdict until every loser
          unwound and joined *)
  engine_stats : Stats.t option;
      (** simulation-engine telemetry, when that engine ran *)
  sat_stats : Sat.Sweep.stats option;
      (** SAT-sweeper telemetry, when the sweeper ran *)
  racers : string list;
      (** engines that participated: every race member in race mode, the
          engines the cascade reached in sequential mode *)
  extra_stats : (string * (string * float) list) list;
      (** per extra racer that ran to completion: its flat counters *)
}

(** {2 Registered extra racers}

    Libraries can contribute additional race members (e.g. the
    word-level sweeping engine) without this module depending on them.
    Extras race only in [`Race] mode, each on its own dedicated domain
    with a private 1-domain pool; the sequential cascade is unchanged. *)

type extra = {
  extra_name : string;  (** reported as [Extra_engine extra_name] *)
  extra_run :
    cancel:Cancel.t ->
    pool:Par.Pool.t ->
    Aig.Network.t ->
    Engine.outcome * (string * float) list;
      (** verdict plus flat telemetry counters; must poll [cancel]
          cooperatively and must not mutate the miter *)
}

(** Register (or replace, by name) an extra racer.  Call at program
    start-up, before any concurrent {!check}. *)
val register_extra : extra -> unit

val registered_extras : unit -> string list

(** Forget every registered extra (tests). *)
val clear_extras : unit -> unit

(** Dedicated domains a race spawns beyond the calling one for the core
    racers (BDD and SAT); registered extras add one domain each on top. *)
val race_domains : int

(** Pool size that leaves room for the racer domains:
    [max 1 (recommended_domain_count - race_domains - #extras)].  Size
    the worker pool with this when racing is intended. *)
val recommended_pool_domains : unit -> int

(** {2 Generic racing combinator}

    Exposed for tests and the fuzzer's self-test (which races a
    deliberately hanging engine against a fast one). *)

type 'a racer = {
  racer_name : string;
  racer_run : cancel:Cancel.t -> 'a;
      (** must poll [cancel] cooperatively; may raise {!Cancel.Cancelled} *)
  racer_conclusive : 'a -> bool;
}

type 'a race_outcome = {
  race_winner : (int * 'a) option;
      (** index and result of the first conclusive finisher *)
  race_results : (float * 'a) option array;
      (** per racer: wall-clock and result; [None] for a cancelled racer *)
  race_cancel_latency : float option;
      (** winning verdict to all racers joined *)
  race_time : float;
}

(** [race ?cancel racers] runs racer 0 on the calling domain and every
    other racer on a dedicated spawned domain, all sharing one fresh
    cancellation token.  The first racer whose result is
    [racer_conclusive] fires the token; the call returns once every racer
    finished or unwound.  A racer raising any other exception also fires
    the token, and the exception is re-raised.  [cancel] is an outer
    (e.g. per-request deadline) token: its firing propagates to every
    racer via a {!Cancel.child}, but a race verdict never sets it. *)
val race : ?cancel:Cancel.t -> 'a racer list -> 'a race_outcome

(** [check ?config ?sat_config ?bdd_node_limit ?bdd_step_limit ?mode
    ?cancel ~pool miter].  [bdd_step_limit] defaults to
    [64 * bdd_node_limit] (see {!Bdd.check}); [mode] defaults to
    [`Sequential].  [cancel] bounds every member engine (threaded directly
    in sequential mode, as the racers' parent token in race mode); a
    cancelled portfolio reports [Undecided] with no winner. *)
val check :
  ?config:Config.t ->
  ?sat_config:Sat.Sweep.config ->
  ?bdd_node_limit:int ->
  ?bdd_step_limit:int ->
  ?mode:mode ->
  ?cancel:Cancel.t ->
  pool:Par.Pool.t ->
  Aig.Network.t ->
  result

val engine_name : engine -> string
val mode_name : mode -> string
