type t = { steps : Engine.trace_step list; claims_proved : bool }

let generate ?config ?cancel ~pool miter =
  let steps = ref [] in
  let result =
    Engine.run ?config ?cancel ~trace:(fun s -> steps := s :: !steps) ~pool
      miter
  in
  ( result,
    {
      steps = List.rev !steps;
      claims_proved = result.Engine.outcome = Engine.Proved;
    } )

(* Prove [a_lit == b_lit] on [g] with the SAT solver already loaded with
   [g]'s CNF. *)
let sat_equal solver ~conflict_limit a_lit b_lit =
  let a = Sat.Cnf.lit a_lit and b = Sat.Cnf.lit b_lit in
  let query assumptions =
    match Sat.Solver.solve ~assumptions ~conflict_limit solver with
    | Sat.Solver.Unsat -> `Unsat
    | Sat.Solver.Sat -> `Sat
    | Sat.Solver.Unknown -> `Unknown
  in
  match query [ a; Sat.Solver.neg b ] with
  | `Sat -> `Refuted
  | `Unknown -> `Unknown
  | `Unsat -> (
      match query [ Sat.Solver.neg a; b ] with
      | `Sat -> `Refuted
      | `Unknown -> `Unknown
      | `Unsat -> `Proved)

let validate ?(conflict_limit = max_int) miter cert =
  let g = ref (Aig.Network.copy miter) in
  let step_no = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let rec replay = function
    | [] ->
        if cert.claims_proved && not (Aig.Miter.solved (Aig.Reduce.sweep !g).Aig.Reduce.network)
        then fail "certificate claims a proof but the replayed miter is unsolved"
        else Ok !g
    | (step : Engine.trace_step) :: rest -> (
        incr step_no;
        let solver = Sat.Solver.create () in
        if not (Sat.Cnf.load solver !g) then
          fail "step %d: intermediate miter has contradictory CNF" !step_no
        else
          (* Validate the step's claims on the current miter. *)
          let bad_po =
            List.find_opt
              (fun i ->
                let l = Aig.Network.po !g i in
                l <> Aig.Lit.const_false
                && sat_equal solver ~conflict_limit l Aig.Lit.const_false
                   <> `Proved)
              step.Engine.trace_pos
          in
          match bad_po with
          | Some i -> fail "step %d: PO %d is not constant false" !step_no i
          | None -> (
              let bad_merge =
                List.find_opt
                  (fun (n, l) ->
                    sat_equal solver ~conflict_limit (Aig.Lit.make n false) l
                    <> `Proved)
                  step.Engine.trace_merges
              in
              match bad_merge with
              | Some (n, l) ->
                  fail "step %d: node %d is not equivalent to literal %d"
                    !step_no n l
              | None ->
                  (* Apply the step's reduction exactly as the engine did. *)
                  (match step.Engine.trace_phase with
                  | `P ->
                      List.iter
                        (fun i -> Aig.Network.set_po !g i Aig.Lit.const_false)
                        step.Engine.trace_pos;
                      g := (Aig.Reduce.sweep !g).Aig.Reduce.network
                  | `G | `L _ ->
                      let repl =
                        Array.make (Aig.Network.num_nodes !g) None
                      in
                      List.iter
                        (fun (n, l) -> repl.(n) <- Some l)
                        step.Engine.trace_merges;
                      g := (Aig.Reduce.apply !g ~repl).Aig.Reduce.network);
                  replay rest))
  in
  replay cert.steps

let phase_tag = function `P -> "P" | `G -> "G" | `L k -> "L" ^ string_of_int k

let to_string cert =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "certificate %s\n" (if cert.claims_proved then "proved" else "partial"));
  List.iter
    (fun (s : Engine.trace_step) ->
      Buffer.add_string buf (phase_tag s.Engine.trace_phase);
      List.iter (fun i -> Buffer.add_string buf (Printf.sprintf " o%d" i)) s.Engine.trace_pos;
      List.iter
        (fun (n, l) -> Buffer.add_string buf (Printf.sprintf " %d:%d" n l))
        s.Engine.trace_merges;
      Buffer.add_char buf '\n')
    cert.steps;
  Buffer.contents buf

let of_string text =
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> Error "empty certificate"
  | header :: rest -> (
      match String.split_on_char ' ' (String.trim header) with
      | [ "certificate"; claim ] when claim = "proved" || claim = "partial" -> (
          let parse_phase tag =
            if tag = "P" then Ok `P
            else if tag = "G" then Ok `G
            else if String.length tag > 1 && tag.[0] = 'L' then
              match int_of_string_opt (String.sub tag 1 (String.length tag - 1)) with
              | Some k -> Ok (`L k)
              | None -> Error ("bad phase tag " ^ tag)
            else Error ("bad phase tag " ^ tag)
          in
          let parse_line line =
            match String.split_on_char ' ' (String.trim line) with
            | [] -> Error "empty step"
            | tag :: items -> (
                match parse_phase tag with
                | Error e -> Error e
                | Ok trace_phase ->
                    let rec go pos merges = function
                      | [] ->
                          Ok
                            {
                              Engine.trace_phase;
                              trace_pos = List.rev pos;
                              trace_merges = List.rev merges;
                            }
                      | item :: rest ->
                          if String.length item > 1 && item.[0] = 'o' then
                            match
                              int_of_string_opt
                                (String.sub item 1 (String.length item - 1))
                            with
                            | Some i -> go (i :: pos) merges rest
                            | None -> Error ("bad output item " ^ item)
                          else begin
                            match String.split_on_char ':' item with
                            | [ n; l ] -> (
                                match (int_of_string_opt n, int_of_string_opt l) with
                                | Some n, Some l -> go pos ((n, l) :: merges) rest
                                | _ -> Error ("bad merge item " ^ item))
                            | _ -> Error ("bad item " ^ item)
                          end
                    in
                    go [] [] items)
          in
          let rec all acc = function
            | [] -> Ok (List.rev acc)
            | line :: rest -> (
                match parse_line line with
                | Ok s -> all (s :: acc) rest
                | Error e -> Error e)
          in
          match all [] rest with
          | Ok steps -> Ok { steps; claims_proved = claim = "proved" }
          | Error e -> Error e)
      | _ -> Error "bad certificate header")
