type engine =
  | Bdd_engine
  | Sim_engine
  | Sat_engine
  | Extra_engine of string  (** a registered extra racer, by name *)

type mode = [ `Sequential | `Race ]

type result = {
  outcome : Engine.outcome;
  winner : engine option;
  time : float;
  mode_used : mode;
  per_engine_time : (engine * float) list;
  bdd_timeout : bool;
  cancel_latency : float option;
  engine_stats : Stats.t option;
  sat_stats : Sat.Sweep.stats option;
  racers : string list;
  extra_stats : (string * (string * float) list) list;
}

let engine_name = function
  | Bdd_engine -> "bdd"
  | Sim_engine -> "sim"
  | Sat_engine -> "sat"
  | Extra_engine name -> name

let mode_name = function `Sequential -> "sequential" | `Race -> "race"

(* --- registered extra engines -------------------------------------------- *)

type extra = {
  extra_name : string;
  extra_run :
    cancel:Cancel.t -> pool:Par.Pool.t -> Aig.Network.t ->
    Engine.outcome * (string * float) list;
}

(* Registration happens at program start-up (entry points call their
   engines' [register] before any check), so a plain ref is fine; the
   race itself only reads the list. *)
let extras : extra list ref = ref []

let register_extra x =
  extras :=
    List.filter (fun e -> e.extra_name <> x.extra_name) !extras @ [ x ]

let registered_extras () = List.map (fun e -> e.extra_name) !extras
let clear_extras () = extras := []

(* The race spawns one dedicated domain per racer beyond the first; the
   core portfolio runs exactly two extra racers (BDD and SAT sweep) next
   to the pool-parallel simulation engine.  Registered extras each add
   one more domain on top of this constant. *)
let race_domains = 2

let recommended_pool_domains () =
  max 1
    (Domain.recommended_domain_count () - race_domains - List.length !extras)

(* --- generic racing combinator ------------------------------------------- *)

type 'a racer = {
  racer_name : string;
  racer_run : cancel:Cancel.t -> 'a;
  racer_conclusive : 'a -> bool;
}

type 'a race_outcome = {
  race_winner : (int * 'a) option;
  race_results : (float * 'a) option array;
  race_cancel_latency : float option;
  race_time : float;
}

let race ?cancel:outer racers =
  let racers = Array.of_list racers in
  let n = Array.length racers in
  if n = 0 then invalid_arg "Portfolio.race: no racers";
  (* The racers share a token private to this race (the winner fires it);
     an outer per-request token propagates into it on poll, but a race
     verdict never sets the caller's token. *)
  let cancel =
    match outer with Some c -> Cancel.child c | None -> Cancel.create ()
  in
  let t0 = Unix.gettimeofday () in
  (* First conclusive finisher wins the CAS, records the verdict time and
     fires the shared token; inconclusive finishers never cancel anyone. *)
  let winner = Atomic.make (-1) in
  let t_win = Atomic.make t0 in
  let run_racer i =
    match racers.(i).racer_run ~cancel with
    | v ->
        let t = Unix.gettimeofday () -. t0 in
        if racers.(i).racer_conclusive v
           && Atomic.compare_and_set winner (-1) i
        then begin
          Atomic.set t_win (Unix.gettimeofday ());
          Cancel.set cancel
        end;
        Some (t, v)
    | exception Cancel.Cancelled -> None
    | exception e ->
        (* A crashed racer must not leave the others running forever. *)
        Cancel.set cancel;
        raise e
  in
  (* Racer 0 runs on the calling domain (it may use a worker pool rooted
     there); the rest get a dedicated domain each. *)
  let domains =
    Array.init (n - 1) (fun k -> Domain.spawn (fun () -> run_racer (k + 1)))
  in
  let results = Array.make n None in
  results.(0) <- run_racer 0;
  Array.iteri (fun k d -> results.(k + 1) <- Domain.join d) domains;
  let t_end = Unix.gettimeofday () in
  let widx = Atomic.get winner in
  {
    race_winner =
      (if widx < 0 then None
       else
         match results.(widx) with
         | Some (_, v) -> Some (widx, v)
         | None -> None);
    race_results = results;
    race_cancel_latency =
      (* Winner verdict to all losers unwound and joined. *)
      (if widx < 0 then None else Some (t_end -. Atomic.get t_win));
    race_time = t_end -. t0;
  }

(* --- the three portfolio members ------------------------------------------ *)

let conclusive = function
  | Engine.Proved | Engine.Disproved _ -> true
  | Engine.Undecided -> false

(* What one portfolio member reports: its verdict plus whatever telemetry
   it produced along the way. *)
type payload = {
  p_outcome : Engine.outcome;
  p_engine : engine;
  p_stats : Stats.t option;
  p_sat : Sat.Sweep.stats option;
  p_bdd_timeout : bool;
  p_counters : (string * float) list;  (* extra racers only *)
}

let bdd_payload = function
  | `Equivalent ->
      { p_outcome = Engine.Proved; p_engine = Bdd_engine; p_stats = None;
        p_sat = None; p_bdd_timeout = false; p_counters = [] }
  | `Inequivalent (cex, po) ->
      { p_outcome = Engine.Disproved (cex, po); p_engine = Bdd_engine;
        p_stats = None; p_sat = None; p_bdd_timeout = false; p_counters = [] }
  | `Node_limit ->
      { p_outcome = Engine.Undecided; p_engine = Bdd_engine; p_stats = None;
        p_sat = None; p_bdd_timeout = false; p_counters = [] }
  | `Timeout ->
      { p_outcome = Engine.Undecided; p_engine = Bdd_engine; p_stats = None;
        p_sat = None; p_bdd_timeout = true; p_counters = [] }

let sat_payload (outcome, stats) =
  let o =
    match outcome with
    | Sat.Sweep.Equivalent -> Engine.Proved
    | Sat.Sweep.Inequivalent (cex, po) -> Engine.Disproved (cex, po)
    | Sat.Sweep.Undecided -> Engine.Undecided
  in
  { p_outcome = o; p_engine = Sat_engine; p_stats = None; p_sat = Some stats;
    p_bdd_timeout = false; p_counters = [] }

let sim_payload (r : Engine.run_result) =
  { p_outcome = r.Engine.outcome; p_engine = Sim_engine;
    p_stats = Some r.Engine.stats; p_sat = None; p_bdd_timeout = false;
    p_counters = [] }

let extra_payload x (outcome, counters) =
  { p_outcome = outcome; p_engine = Extra_engine x.extra_name; p_stats = None;
    p_sat = None; p_bdd_timeout = false; p_counters = counters }

(* --- sequential portfolio -------------------------------------------------- *)

let check_sequential ?cancel ~config ~sat_config ~bdd_node_limit
    ~bdd_step_limit ~pool miter =
  let t0 = Unix.gettimeofday () in
  let per = ref [] in
  let timed e f =
    let s = Unix.gettimeofday () in
    let r = f () in
    per := (e, Unix.gettimeofday () -. s) :: !per;
    r
  in
  let finish ?engine_stats ?sat_stats ?(bdd_timeout = false) outcome winner =
    let per = List.rev !per in
    {
      outcome;
      winner;
      time = Unix.gettimeofday () -. t0;
      mode_used = `Sequential;
      per_engine_time = per;
      bdd_timeout;
      cancel_latency = None;
      engine_stats;
      sat_stats;
      racers = List.map (fun (e, _) -> engine_name e) per;
      extra_stats = [];
    }
  in
  (* Engine 1: BDD with node and step budgets — cheap on control logic,
     aborts fast on arithmetic. *)
  match
    timed Bdd_engine (fun () ->
        Bdd.check ~node_limit:bdd_node_limit ?step_limit:bdd_step_limit ?cancel
          miter)
  with
  | `Equivalent -> finish Engine.Proved (Some Bdd_engine)
  | `Inequivalent (cex, po) ->
      finish (Engine.Disproved (cex, po)) (Some Bdd_engine)
  | (`Node_limit | `Timeout) as aborted -> (
      let bdd_timeout = aborted = `Timeout in
      (* Engine 2: the simulation engine. *)
      let er =
        timed Sim_engine (fun () -> Engine.run ~config ?cancel ~pool miter)
      in
      let engine_stats = er.Engine.stats in
      if conclusive er.Engine.outcome then
        finish ~engine_stats ~bdd_timeout er.Engine.outcome (Some Sim_engine)
      else begin
        (* Engine 3: SAT sweeping on the reduced miter. *)
        let sat_outcome, sat_stats =
          timed Sat_engine (fun () ->
              Sat.Sweep.check ~config:sat_config ?cancel ~pool
                er.Engine.reduced)
        in
        let p = sat_payload (sat_outcome, sat_stats) in
        (* The winner is the engine that produced the final verdict — an
           undecided portfolio has no winner. *)
        finish ~engine_stats ~sat_stats ~bdd_timeout p.p_outcome
          (if conclusive p.p_outcome then Some Sat_engine else None)
      end)

(* --- racing portfolio ------------------------------------------------------ *)

(* The race runs when the racer domains (two core racers plus any
   registered extras) fit next to the pool's workers inside the machine's
   recommended domain count; otherwise it degrades to the sequential
   portfolio rather than oversubscribe cores. *)
let race_fits ~pool =
  Par.Pool.num_workers pool + race_domains + List.length !extras
  <= Domain.recommended_domain_count ()

(* Run a racer's body on a private 1-domain pool: parallel loops execute
   inline on the racer's own domain, instead of contending for the main
   pool's job slot with the simulation engine. *)
let with_inline_pool f ~cancel =
  let inline_pool = Par.Pool.create ~num_domains:1 () in
  Fun.protect
    ~finally:(fun () -> Par.Pool.shutdown inline_pool)
    (fun () -> f ~cancel ~pool:inline_pool)

let check_race ?cancel ~config ~sat_config ~bdd_node_limit ~bdd_step_limit
    ~pool miter =
  let t0 = Unix.gettimeofday () in
  let payload_conclusive p = conclusive p.p_outcome in
  let members =
    [
      (* Racer 0 keeps the calling domain: it owns the worker pool. *)
      ( Sim_engine,
        fun ~cancel -> sim_payload (Engine.run ~config ~cancel ~pool miter) );
      ( Bdd_engine,
        fun ~cancel ->
          bdd_payload
            (Bdd.check ~node_limit:bdd_node_limit ?step_limit:bdd_step_limit
               ~cancel miter) );
      ( Sat_engine,
        with_inline_pool (fun ~cancel ~pool ->
            sat_payload (Sat.Sweep.check ~config:sat_config ~cancel ~pool miter))
      );
    ]
    @ List.map
        (fun x ->
          ( Extra_engine x.extra_name,
            with_inline_pool (fun ~cancel ~pool ->
                extra_payload x (x.extra_run ~cancel ~pool miter)) ))
        !extras
  in
  let racers =
    List.map
      (fun (e, run) ->
        {
          racer_name = engine_name e;
          racer_run = run;
          racer_conclusive = payload_conclusive;
        })
      members
  in
  let ro = race ?cancel racers in
  let find_payload e =
    Array.fold_left
      (fun acc r ->
        match r with
        | Some (_, p) when p.p_engine = e -> Some p
        | _ -> acc)
      None ro.race_results
  in
  let per_engine_time =
    members
    |> List.mapi (fun i (e, _) ->
           match ro.race_results.(i) with
           | Some (t, _) -> Some (e, t)
           | None -> None)
    |> List.filter_map Fun.id
  in
  let outcome, winner =
    match ro.race_winner with
    | Some (_, p) -> (p.p_outcome, Some p.p_engine)
    | None -> (Engine.Undecided, None)
  in
  {
    outcome;
    winner;
    time = Unix.gettimeofday () -. t0;
    mode_used = `Race;
    per_engine_time;
    bdd_timeout =
      (match find_payload Bdd_engine with
      | Some p -> p.p_bdd_timeout
      | None -> false);
    cancel_latency = ro.race_cancel_latency;
    engine_stats =
      (match find_payload Sim_engine with Some p -> p.p_stats | None -> None);
    sat_stats =
      (match find_payload Sat_engine with Some p -> p.p_sat | None -> None);
    racers = List.map (fun (e, _) -> engine_name e) members;
    extra_stats =
      List.filter_map
        (fun x ->
          match find_payload (Extra_engine x.extra_name) with
          | Some p -> Some (x.extra_name, p.p_counters)
          | None -> None)
        !extras;
  }

let check ?(config = Config.default) ?(sat_config = Sat.Sweep.default_config)
    ?(bdd_node_limit = 1 lsl 20) ?bdd_step_limit ?(mode = `Sequential) ?cancel
    ~pool miter =
  match mode with
  | `Race when race_fits ~pool ->
      check_race ?cancel ~config ~sat_config ~bdd_node_limit ~bdd_step_limit
        ~pool miter
  | `Race | `Sequential ->
      check_sequential ?cancel ~config ~sat_config ~bdd_node_limit
        ~bdd_step_limit ~pool miter
