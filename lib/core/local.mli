(** Local function checking (paper §III-C, Algorithm 2).

    One pass interleaves priority-cut enumeration with exhaustive
    simulation of local functions: nodes are processed by enumeration
    level (Eq. 2 — a non-representative waits for its representative's
    cuts); as soon as the common cuts of the candidate pairs of a level
    are generated they are inserted in a bounded buffer, and the buffer is
    checked by Algorithm 1 whenever it fills up.  A pair is proved when
    its local functions w.r.t. {e any} common cut are identical; a
    mismatch is inconclusive (it may be a satisfiability don't-care). *)

type result = {
  proved : (int * Aig.Lit.t) list;  (** node, replacement literal *)
  pairs_tried : int;
  cuts_checked : int;
}

(** [run_pass cfg ~pass ~pool ~arena ~stats ?cancel g classes] runs one
    cut generation and checking pass over all candidate pairs of
    [classes].  [arena] backs the simulation tables of every buffer flush.
    [cancel] is polled between enumeration levels and threaded into every
    flush; a cancelled pass returns the pairs proved so far. *)
val run_pass :
  Config.t ->
  pass:Cuts.Criteria.pass ->
  pool:Par.Pool.t ->
  arena:Arena.t ->
  stats:Exhaustive.stats ->
  ?cancel:Par.Cancel.t ->
  Aig.Network.t ->
  Sim.Eclass.t ->
  result
