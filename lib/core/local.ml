type result = { proved : (int * Aig.Lit.t) list; pairs_tried : int; cuts_checked : int }

let run_pass (cfg : Config.t) ~pass ~pool ~arena ~stats ?cancel g classes =
  let n = Aig.Network.num_nodes g in
  (* Class structure as arrays for O(1) lookup. *)
  let repr_arr = Array.init n (fun i -> i) in
  let compl_arr = Array.make n false in
  List.iter
    (fun c ->
      let r, _ = c.(0) in
      Array.iter
        (fun (m, ph) ->
          if m <> r then begin
            repr_arr.(m) <- r;
            compl_arr.(m) <- ph
          end)
        c)
    (Sim.Eclass.classes classes);
  let fanouts = Aig.Network.fanout_counts g in
  let levels = Aig.Network.levels g in
  let repr_of i = if Aig.Network.is_and g i then repr_arr.(i) else i in
  let el = Cuts.Enumerate.enum_levels g ~repr_of in
  let max_el = ref 0 in
  Aig.Network.iter_ands g (fun i -> if el.(i) > !max_el then max_el := el.(i));
  let buckets = Array.make (!max_el + 1) [] in
  Aig.Network.iter_ands g (fun i -> buckets.(el.(i)) <- i :: buckets.(el.(i)));
  Array.iteri (fun l b -> buckets.(l) <- List.rev b) buckets;
  let prio = Array.make n [] in
  for i = 0 to Aig.Network.num_pis g - 1 do
    let p = Aig.Network.pi g i in
    prio.(p) <- [ Cuts.Cut.trivial p ]
  done;
  let ecfg = { Cuts.Enumerate.k_l = cfg.k_l; c = cfg.c } in
  (* The common-cut buffer of Algorithm 2 and its flushing. *)
  let proved = ref [] in
  let proved_mark = Array.make n false in
  let buffer = ref [] in
  let buffered = ref 0 in
  let pairs_tried = ref 0 in
  let cuts_checked = ref 0 in
  let flush () =
    if !buffer <> [] then begin
      let items = Array.of_list (List.rev !buffer) in
      buffer := [];
      buffered := 0;
      let jobs =
        Array.to_list items
        |> List.mapi (fun tag (cut, m, b, compl_) ->
               { Exhaustive.inputs = cut; pairs = [ { Exhaustive.a = m; b; compl_; tag } ] })
      in
      cuts_checked := !cuts_checked + Array.length items;
      let verdicts =
        Exhaustive.run g ~pool ~memory_words:cfg.memory_words ~arena ~stats
          ?cancel ~jobs ~num_tags:(Array.length items) ()
      in
      Array.iteri
        (fun tag verdict ->
          match verdict with
          | Exhaustive.Proved ->
              let _, m, b, compl_ = items.(tag) in
              if not proved_mark.(m) then begin
                proved_mark.(m) <- true;
                let target =
                  if b < 0 then Aig.Lit.xor_compl Aig.Lit.const_false compl_
                  else Aig.Lit.make b compl_
                in
                proved := (m, target) :: !proved
              end
          | Exhaustive.Mismatch _ | Exhaustive.Invalid ->
              (* Inconclusive: the differing patterns may be SDCs. *)
              ())
        verdicts
    end
  in
  let push cut m b compl_ =
    if !buffered >= cfg.cut_buffer_capacity then flush ();
    buffer := (cut, m, b, compl_) :: !buffer;
    incr buffered
  in
  let l = ref 1 in
  (* Poll (not just read the flag) at level boundaries so an armed
     deadline latches; inner batch guards use the flag-only check. *)
  while !l <= !max_el && not (Par.Cancel.poll_opt cancel) do
    let nodes = Array.of_list buckets.(!l) in
    (* Parallel cut enumeration and selection for the level's nodes. *)
    Par.Pool.parallel_for pool ~start:0 ~stop:(Array.length nodes) (fun k ->
        let m = nodes.(k) in
        let sim_target =
          if cfg.similarity_selection && repr_arr.(m) <> m && repr_arr.(m) <> 0
          then Some prio.(repr_arr.(m))
          else None
        in
        prio.(m) <-
          Cuts.Enumerate.node_cuts g ecfg ~pass ~fanouts ~levels ~prio
            ~sim_target m);
    (* Generate and buffer the common cuts of this level's pairs. *)
    Array.iter
      (fun m ->
        let r = repr_arr.(m) in
        if r <> m then begin
          incr pairs_tried;
          if r = 0 then
            (* Constant candidates: any cut of [m] is usable; the local
               function must be constant. *)
            List.iter (fun cut -> push cut m (-1) compl_arr.(m)) prio.(m)
          else begin
            let common = Cuts.Enumerate.common_cuts ~k_l:cfg.k_l prio.(r) prio.(m) in
            List.iter (fun cut -> push cut m r compl_arr.(m)) common
          end
        end)
      nodes;
    incr l
  done;
  if not (Par.Cancel.is_set_opt cancel) then flush ();
  { proved = !proved; pairs_tried = !pairs_tried; cuts_checked = !cuts_checked }
