let src = Logs.Src.create "simsweep.engine" ~doc:"simulation-based CEC engine"

module Log = (val Logs.src_log src : Logs.LOG)

type outcome = Proved | Disproved of Sim.Cex.t * int | Undecided

type run_result = {
  outcome : outcome;
  reduced : Aig.Network.t;
  classes : Sim.Eclass.t option;
  stats : Stats.t;
  initial_size : int;
  reduced_size : int;
}

type trace_step = {
  trace_phase : [ `P | `G | `L of int ];
  trace_pos : int list;
  trace_merges : (int * Aig.Lit.t) list;
}

let reduction_percent r =
  if r.initial_size = 0 then 100.
  else
    100.
    *. (1. -. (float_of_int r.reduced_size /. float_of_int r.initial_size))

(* --- P phase: PO checking ------------------------------------------------ *)

(* Returns [Ok g'] (reduced miter) or [Error cex_po]. *)
let po_phase (cfg : Config.t) ~pool ~arena ~(stats : Stats.t) ?cancel ~trace g =
  (* A PO already reduced to constant true is disproved by any assignment. *)
  let const_true_po = ref None in
  for i = Aig.Network.num_pos g - 1 downto 0 do
    if Aig.Network.po g i = Aig.Lit.const_true then const_true_po := Some i
  done;
  match !const_true_po with
  | Some i -> Error (Array.make (Aig.Network.num_pis g) false, i)
  | None ->
  let supports = Aig.Support.capped g ~cap:cfg.k_cap_p in
  let po_support i =
    let l = Aig.Network.po g i in
    supports.(Aig.Lit.node l)
  in
  let num_pos = Aig.Network.num_pos g in
  let all_simulatable =
    let ok = ref true in
    for i = 0 to num_pos - 1 do
      if po_support i = None then ok := false
    done;
    !ok
  in
  let k_s = if all_simulatable then cfg.k_cap_p else cfg.k_p in
  let selected =
    List.init num_pos Fun.id
    |> List.filter_map (fun i ->
           if Aig.Network.po g i = Aig.Lit.const_false then None
           else
             match po_support i with
             | Some s when all_simulatable || Array.length s <= cfg.k_p ->
                 Some (i, s)
             | _ -> None)
  in
  if selected = [] then Ok g
  else begin
    Log.debug (fun m ->
        m "P phase: %d of %d POs simulatable (one-shot: %b)"
          (List.length selected) num_pos all_simulatable);
    let jobs =
      List.map
        (fun (i, s) ->
          let l = Aig.Network.po g i in
          {
            Exhaustive.inputs = s;
            pairs =
              [
                {
                  Exhaustive.a = Aig.Lit.node l;
                  b = -1;
                  compl_ = Aig.Lit.is_compl l;
                  tag = i;
                };
              ];
          })
        selected
    in
    let jobs = if cfg.window_merging then Wmerge.merge ~k_s jobs else jobs in
    let verdicts =
      Exhaustive.run g ~pool ~memory_words:cfg.memory_words ~arena
        ~stats:stats.Stats.exhaustive ?cancel ~jobs ~num_tags:num_pos ()
    in
    (* A mismatch on a PO is a real counter-example. *)
    let cex = ref None in
    List.iter
      (fun (i, _) ->
        match verdicts.(i) with
        | Exhaustive.Mismatch { pattern; inputs } when !cex = None ->
            cex := Some (Sim.Cex.of_window_pattern g ~inputs ~pattern, i)
        | _ -> ())
      selected;
    match !cex with
    | Some (c, i) -> Error (c, i)
    | None ->
        let proved = ref 0 in
        List.iter
          (fun (i, _) ->
            match verdicts.(i) with
            | Exhaustive.Proved ->
                incr proved;
                Aig.Network.set_po g i Aig.Lit.const_false
            | _ -> ())
          selected;
        stats.Stats.pos_proved <- stats.Stats.pos_proved + !proved;
        Log.debug (fun m -> m "P phase: proved %d POs" !proved);
        (match trace with
        | Some f when !proved > 0 ->
            let pos =
              List.filter_map
                (fun (i, _) ->
                  match verdicts.(i) with Exhaustive.Proved -> Some i | _ -> None)
                selected
            in
            f { trace_phase = `P; trace_pos = pos; trace_merges = [] }
        | _ -> ());
        if !proved = 0 then Ok g
        else Ok (Aig.Reduce.sweep g).Aig.Reduce.network
  end

(* --- G phase: global function checking ----------------------------------- *)

(* Deadline observations are recorded in the stats so a run cut short by
   [time_limit] is distinguishable from one that converged. *)
let past_deadline (cfg : Config.t) ~(stats : Stats.t) ~t0 =
  match cfg.Config.time_limit with
  | None -> false
  | Some limit ->
      let over = Unix.gettimeofday () -. t0 > limit in
      if over then begin
        stats.Stats.deadline_hits <- stats.Stats.deadline_hits + 1;
        stats.Stats.deadline_exceeded <- true
      end;
      over

(* The engine stops early for two reasons: the configured [time_limit]
   (deadline) or an external cancellation token (portfolio race lost).
   Both are recorded in the stats so a cut-short run is distinguishable
   from one that converged. *)
let stopping (cfg : Config.t) ?cancel ~(stats : Stats.t) ~t0 () =
  let cancelled =
    match cancel with
    | Some c when Par.Cancel.poll c ->
        stats.Stats.cancelled <- true;
        true
    | _ -> false
  in
  cancelled || past_deadline cfg ~stats ~t0

(* Returns the reduced miter and the carried classes. *)
let global_phase (cfg : Config.t) ~pool ~arena ~(stats : Stats.t) ?cancel ~rng
    ~t0 ~trace g =
  let g = ref g in
  let sigs =
    Sim.Psim.run ~stats:stats.Stats.psim !g ~nwords:cfg.sim_words ~rng ~pool
      ~embed:[]
  in
  let classes = ref (Sim.Eclass.of_sigs !g sigs ()) in
  let repl = Array.make (Aig.Network.num_nodes !g) None in
  let merged = ref 0 in
  let continue_ = ref true in
  let iterations = ref 0 in
  while !continue_ && !iterations < 64 && not (stopping cfg ?cancel ~stats ~t0 ()) do
    incr iterations;
    stats.Stats.g_iterations <- stats.Stats.g_iterations + 1;
    let supports = Aig.Support.capped !g ~cap:cfg.k_g in
    let candidates =
      Sim.Eclass.pairs !classes
      |> List.filter_map (fun { Sim.Eclass.repr; other; compl_ } ->
             if repl.(other) <> None then None
             else
               let s_other = supports.(other) in
               let s_repr = if repr = 0 then Some [||] else supports.(repr) in
               match (s_repr, s_other) with
               | Some a, Some b -> (
                   match Aig.Support.union_capped ~cap:cfg.k_g a b with
                   | Some u -> Some (repr, other, compl_, u)
                   | None -> None)
               | _ -> None)
    in
    if candidates = [] then continue_ := false
    else begin
      let candidates = Array.of_list candidates in
      let n = Array.length candidates in
      stats.Stats.g_candidates <- stats.Stats.g_candidates + n;
      (* Without a time limit or cancel token the whole candidate set is
         one batch (the best window-merging opportunities); under a
         deadline it is split into bounded batches with a stop check
         between them, so one huge batch cannot blow far past
         [time_limit] or hold a lost race alive. *)
      let batch_cap =
        match (cfg.Config.time_limit, cancel) with
        | None, None -> n
        | _ -> 512
      in
      let verdicts = Array.make n Exhaustive.Invalid in
      let base = ref 0 in
      let stopped = ref false in
      while !base < n && not !stopped do
        let hi = min n (!base + max 1 batch_cap) in
        let jobs =
          List.init (hi - !base) (fun k ->
              let tag = !base + k in
              let repr, other, compl_, u = candidates.(tag) in
              {
                Exhaustive.inputs = u;
                pairs =
                  [
                    {
                      Exhaustive.a = other;
                      b = (if repr = 0 then -1 else repr);
                      compl_;
                      tag;
                    };
                  ];
              })
        in
        let jobs =
          if cfg.window_merging then Wmerge.merge ~k_s:cfg.k_g jobs else jobs
        in
        let batch =
          Exhaustive.run !g ~pool ~memory_words:cfg.memory_words ~arena
            ~stats:stats.Stats.exhaustive ?cancel ~jobs ~num_tags:n ()
        in
        for tag = !base to hi - 1 do
          verdicts.(tag) <- batch.(tag)
        done;
        base := hi;
        if !base < n && stopping cfg ?cancel ~stats ~t0 () then stopped := true
      done;
      let cexs = ref [] in
      Array.iteri
        (fun tag verdict ->
          let repr, other, compl_, u = candidates.(tag) in
          match verdict with
          | Exhaustive.Proved ->
              if repl.(other) = None then begin
                repl.(other) <-
                  Some
                    (if repr = 0 then Aig.Lit.xor_compl Aig.Lit.const_false compl_
                     else Aig.Lit.make repr compl_);
                incr merged
              end
          | Exhaustive.Mismatch { pattern; inputs } ->
              ignore u;
              let cex = Sim.Cex.of_window_pattern !g ~inputs ~pattern in
              cexs := cex :: !cexs;
              if cfg.distance_one_cex then
                cexs := Sim.Cex.distance_one ~limit:8 cex @ !cexs
          | Exhaustive.Invalid -> ())
        verdicts;
      stats.Stats.cex_found <- stats.Stats.cex_found + List.length !cexs;
      if !cexs = [] then continue_ := false
      else begin
        (* Refine the classes with the counter-example patterns. *)
        stats.Stats.g_refinements <- stats.Stats.g_refinements + 1;
        let sigs =
          Sim.Psim.run ~stats:stats.Stats.psim !g ~nwords:cfg.sim_words ~rng
            ~pool ~embed:!cexs
        in
        classes := Sim.Eclass.refine !classes sigs
      end
    end
  done;
  stats.Stats.pairs_proved_global <- stats.Stats.pairs_proved_global + !merged;
  Log.debug (fun m ->
      m "G phase: %d pairs merged in %d refinement iterations" !merged !iterations);
  if !merged = 0 then (!g, !classes)
  else begin
    (match trace with
    | Some f ->
        let merges = ref [] in
        Array.iteri
          (fun n t -> match t with Some l -> merges := (n, l) :: !merges | None -> ())
          repl;
        f { trace_phase = `G; trace_pos = []; trace_merges = List.rev !merges }
    | None -> ());
    let r = Aig.Reduce.apply !g ~repl in
    let classes' =
      Sim.Eclass.map_nodes !classes (fun n ->
          let l = r.Aig.Reduce.node_map.(n) in
          if l < 0 then None else Some l)
    in
    (r.Aig.Reduce.network, classes')
  end

(* --- L phases: repeated local function checking --------------------------- *)

let local_phases (cfg : Config.t) ~pool ~arena ~(stats : Stats.t) ?cancel ~rng
    ~t0 ~trace g classes =
  let g = ref g and classes = ref classes in
  let phase = ref 0 in
  let progress = ref true in
  (* §V extension: passes found ineffective are disabled on the fly. *)
  let active_passes = ref cfg.passes in
  while
    !progress && !phase < cfg.max_local_phases
    && (not (Aig.Miter.solved !g))
    && not (stopping cfg ?cancel ~stats ~t0 ())
  do
    incr phase;
    stats.Stats.local_phases <- stats.Stats.local_phases + 1;
    let repl = Array.make (Aig.Network.num_nodes !g) None in
    let merged = ref 0 in
    let surviving = ref [] in
    List.iter
      (fun pass ->
        let result =
          Local.run_pass cfg ~pass ~pool ~arena ~stats:stats.Stats.exhaustive
            ?cancel !g !classes
        in
        let dropped = Hashtbl.create 64 in
        let pass_merged = ref 0 in
        List.iter
          (fun (m, target) ->
            if repl.(m) = None then begin
              repl.(m) <- Some target;
              incr merged;
              incr pass_merged;
              Hashtbl.replace dropped m ()
            end)
          result.Local.proved;
        if (not cfg.adaptive_passes) || !pass_merged > 0 then
          surviving := pass :: !surviving;
        classes := Sim.Eclass.remove !classes dropped)
      !active_passes;
    if cfg.adaptive_passes && !surviving <> [] then
      active_passes := List.rev !surviving;
    stats.Stats.pairs_proved_local <- stats.Stats.pairs_proved_local + !merged;
    Log.debug (fun m ->
        m "L phase %d: %d pairs merged, %d AND nodes remain" !phase !merged
          (Aig.Network.num_ands !g));
    if !merged = 0 then progress := false
    else begin
      (match trace with
      | Some f ->
          let merges = ref [] in
          Array.iteri
            (fun n t -> match t with Some l -> merges := (n, l) :: !merges | None -> ())
            repl;
          f
            {
              trace_phase = `L !phase;
              trace_pos = [];
              trace_merges = List.rev !merges;
            }
      | None -> ());
      let r = Aig.Reduce.apply !g ~repl in
      g := r.Aig.Reduce.network;
      classes :=
        Sim.Eclass.map_nodes !classes (fun n ->
            let l = r.Aig.Reduce.node_map.(n) in
            if l < 0 then None else Some l);
      (* §V extension: a light rewriting round between phases changes the
         cut structures available to the next phase; the classes are
         rebuilt by fresh partial simulation on the rewritten miter. *)
      if cfg.rewrite_between_phases && not (Aig.Miter.solved !g) then begin
        g := Opt.Resyn.light !g;
        let sigs =
          Sim.Psim.run ~stats:stats.Stats.psim !g ~nwords:cfg.sim_words ~rng
            ~pool ~embed:[]
        in
        classes := Sim.Eclass.of_sigs !g sigs ()
      end
    end
  done;
  (!g, !classes)

(* --- overall flow --------------------------------------------------------- *)

let run ?(config = Config.default) ?stop_after ?trace ?pcache ?cancel ~pool miter =
  if trace <> None && config.Config.rewrite_between_phases then
    invalid_arg "Engine.run: trace is incompatible with rewrite_between_phases";
  (* A cache-discharged PO leaves no replayable reduction step, so traced
     (certificate) runs ignore the cache rather than emit unsound traces. *)
  let pcache = if trace <> None then None else pcache in
  let stats = Stats.create () in
  let t0 = Unix.gettimeofday () in
  (* The P phase rewrites PO drivers in place; never mutate the caller's
     network. *)
  let miter = Aig.Network.copy miter in
  let initial_size = Aig.Network.num_ands miter in
  let rng = Sim.Rng.create ~seed:config.seed in
  (* One simulation-table slab for the whole run: every exhaustive batch
     of every phase recycles it instead of re-allocating the budget. *)
  let arena = Arena.create ~words:config.Config.memory_words in
  (* Equivalence-cache pre-pass: discharge POs proved in earlier requests,
     replay recorded counter-examples, and remember the keys of the POs
     this run still has to decide. *)
  let cache_disproved, cache_pending =
    match pcache with
    | None -> (None, [])
    | Some pc ->
        Stats.timed stats Stats.Po_check (fun () ->
            let r = Sim.Pcheck.consult pc miter in
            stats.Stats.cache_hits <- stats.Stats.cache_hits + r.Sim.Pcheck.hits;
            stats.Stats.cache_misses <-
              stats.Stats.cache_misses + r.Sim.Pcheck.misses;
            (r.Sim.Pcheck.disproved, r.Sim.Pcheck.pending))
  in
  let finish ?classes outcome g =
    (match pcache with
    | Some pc ->
        let tag =
          match outcome with
          | Proved -> `Proved
          | Disproved (cex, po) -> `Disproved (cex, po)
          | Undecided -> `Undecided
        in
        Sim.Pcheck.record pc ~pending:cache_pending tag
    | None -> ());
    {
      outcome;
      reduced = g;
      classes;
      stats;
      initial_size;
      reduced_size = (if outcome = Proved then 0 else Aig.Network.num_ands g);
    }
  in
  match cache_disproved with
  | Some (cex, po) -> finish (Disproved (cex, po)) miter
  | None ->
  if Aig.Miter.solved miter then
    (* Every PO discharged from the cache. *)
    finish Proved (Aig.Reduce.sweep miter).Aig.Reduce.network
  else
  (* P phase. *)
  let p_result =
    Stats.timed stats Stats.Po_check (fun () ->
        po_phase config ~pool ~arena ~stats ?cancel ~trace miter)
  in
  match p_result with
  | Error (cex, po) -> finish (Disproved (cex, po)) miter
  | Ok g ->
      if Aig.Miter.solved g then finish Proved (Aig.Reduce.sweep g).Aig.Reduce.network
      else if stop_after = Some `P then finish Undecided g
      else begin
        (* G phase. *)
        let g, classes =
          Stats.timed stats Stats.Global_check (fun () ->
              global_phase config ~pool ~arena ~stats ?cancel ~rng ~t0 ~trace g)
        in
        if Aig.Miter.solved g then
          finish Proved (Aig.Reduce.sweep g).Aig.Reduce.network
        else if stop_after = Some `G then finish ~classes Undecided g
        else begin
          (* L phases. *)
          let g, classes =
            Stats.timed stats Stats.Local_check (fun () ->
                local_phases config ~pool ~arena ~stats ?cancel ~rng ~t0 ~trace
                  g classes)
          in
          if Aig.Miter.solved g then
            finish Proved (Aig.Reduce.sweep g).Aig.Reduce.network
          else finish ~classes Undecided g
        end
      end

type combined = {
  engine : run_result;
  sat_outcome : Sat.Sweep.outcome option;
  sat_stats : Sat.Sweep.stats option;
  final : outcome;
}

let check_with_fallback ?config ?(sat_config = Sat.Sweep.default_config)
    ?(transfer_classes = false) ?pcache ?cancel ~pool miter =
  let engine = run ?config ?pcache ?cancel ~pool miter in
  match engine.outcome with
  | Proved | Disproved _ ->
      { engine; sat_outcome = None; sat_stats = None; final = engine.outcome }
  | Undecided when Par.Cancel.is_set_opt cancel ->
      (* A cancelled engine run must not start the SAT fallback. *)
      { engine; sat_outcome = None; sat_stats = None; final = Undecided }
  | Undecided ->
      let classes = if transfer_classes then engine.classes else None in
      let sat_outcome, sat_stats =
        Sat.Sweep.check ~config:sat_config ?classes ?pcache ?cancel ~pool
          engine.reduced
      in
      let final =
        match sat_outcome with
        | Sat.Sweep.Equivalent -> Proved
        | Sat.Sweep.Inequivalent (cex, po) -> Disproved (cex, po)
        | Sat.Sweep.Undecided -> Undecided
      in
      {
        engine;
        sat_outcome = Some sat_outcome;
        sat_stats = Some sat_stats;
        final;
      }
