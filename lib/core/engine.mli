(** The simulation-based CEC engine (paper §III-D, Fig. 5).

    Flow: a PO-checking phase (P) proves simulatable miter outputs by
    exhaustive simulation of their global functions; after partial random
    simulation initialises the equivalence classes, the global checking
    phase (G) proves candidate pairs with bounded supports, collecting
    counter-examples to refine the classes; then local-function checking
    phases (L) — three cut-generation passes each — run repeatedly until
    the miter stops shrinking.  An undecided miter is returned reduced, so
    that a SAT-based checker can finish it (the GPU+ABC combination of
    Table II is {!check_with_fallback}). *)

type outcome =
  | Proved  (** every miter output is constant false *)
  | Disproved of Sim.Cex.t * int  (** CEX and the PO it sets *)
  | Undecided  (** engine finished without proving the miter *)

type run_result = {
  outcome : outcome;
  reduced : Aig.Network.t;  (** the miter after all reductions *)
  classes : Sim.Eclass.t option;
      (** final equivalence classes on [reduced] for EC transfer (§V) *)
  stats : Stats.t;
  initial_size : int;  (** AND nodes before *)
  reduced_size : int;  (** AND nodes after *)
}

(** Reduction ratio in percent (the "Reduced (%)" column of Table II). *)
val reduction_percent : run_result -> float

(** One reduction step of the flow, reported to the [trace] callback: the
    POs proved constant-false (P phase) or the node merges applied (G/L
    phases), with node ids referring to the miter {e as it was before this
    step's reduction}.  Replaying the same reductions in order reproduces
    the engine's intermediate miters exactly — the basis of
    {!Certificate}. *)
type trace_step = {
  trace_phase : [ `P | `G | `L of int ];
  trace_pos : int list;  (** PO indices proved constant false *)
  trace_merges : (int * Aig.Lit.t) list;  (** node, replacement literal *)
}

(** [run ?config ?stop_after ?trace ?pcache ?cancel ~pool miter] executes
    the engine.  [stop_after] truncates the flow after the named phase
    type — used to reproduce Fig. 7 (miters extracted after P, P+G,
    P+G+L).  [trace] receives every reduction step; it is incompatible
    with [rewrite_between_phases] (the rewriting steps are not replayable)
    and raises [Invalid_argument] in that combination.  [pcache] plugs in
    a cross-request equivalence cache ({!Aig.Pcache}): cached PO verdicts
    are applied before the P phase and the run's conclusion is recorded
    back; it is ignored when [trace] is set (cache-discharged POs have no
    replayable reduction step).  [cancel] is polled at every phase
    boundary, G-phase sub-batch and simulation round; a cancelled run
    returns [Undecided] with [stats.cancelled] set. *)
val run :
  ?config:Config.t ->
  ?stop_after:[ `P | `G | `L ] ->
  ?trace:(trace_step -> unit) ->
  ?pcache:Aig.Pcache.t ->
  ?cancel:Par.Cancel.t ->
  pool:Par.Pool.t ->
  Aig.Network.t ->
  run_result

type combined = {
  engine : run_result;
  sat_outcome : Sat.Sweep.outcome option;  (** [None] when not needed *)
  sat_stats : Sat.Sweep.stats option;
  final : outcome;
}

(** The paper's integrated flow: the simulation engine first, then the SAT
    sweeper on the reduced miter when the engine leaves it undecided.
    [transfer_classes] forwards the engine's equivalence classes to the
    sweeper (§V extension).  [pcache] is threaded to both the engine run
    and the SAT fallback.  A cancelled engine run skips the SAT fallback
    and returns [Undecided]. *)
val check_with_fallback :
  ?config:Config.t ->
  ?sat_config:Sat.Sweep.config ->
  ?transfer_classes:bool ->
  ?pcache:Aig.Pcache.t ->
  ?cancel:Par.Cancel.t ->
  pool:Par.Pool.t ->
  Aig.Network.t ->
  combined
