(* Proof-cache hook: the record of closures through which the engines
   consult a cross-request equivalence cache (lib/serve's Ecache) without
   depending on it.  Implementations must be safe to call from pool
   workers — the SAT sweeper looks up and records pairs inside parallel
   proof batches. *)

(* A counter-example sparse over the cone's support: PI indices paired
   with their value; unlisted inputs are don't-care (replayed as false).
   Stored sparse so an entry replays onto any network containing the same
   cone, whatever its total PI count. *)
type cex = (int * bool) list

type po_verdict =
  | Const_false  (* the cone was proved constant false: PO discharged *)
  | Cex of cex  (* an assignment was proved to set the cone to true *)

type t = {
  lookup_po : string -> po_verdict option;
  record_po : string -> po_verdict -> unit;
  lookup_pair : string -> bool;  (* true: this pair was proved equivalent *)
  record_pair : string -> unit;
}

let cex_of_array support full =
  Array.to_list
    (Array.map (fun pi -> (pi, pi < Array.length full && full.(pi))) support)

let cex_to_array ~num_pis sparse =
  let a = Array.make num_pis false in
  List.iter (fun (pi, v) -> if pi >= 0 && pi < num_pis then a.(pi) <- v) sparse;
  a
