(** Structural cone keys for cross-request proof caching.

    The serve daemon's equivalence cache memoizes verdicts keyed by what a
    cone {e is}, not where it lives: equal keys imply equal Boolean
    functions over the named PI indices, so a verdict proved for one
    request transfers soundly to any later request whose cone produces the
    same key — re-checking an incrementally edited design re-proves only
    the cones whose key changed.

    Cones with at most 4 support PIs are keyed {e functionally} — the NPN
    canonical form ({!Bv.Npn}) of their truth table plus the transform and
    support indices — which survives arbitrary restructuring.  Larger
    cones are keyed {e structurally} with cone-local numbering, which
    survives any renumbering that preserves the cone's relative node
    order.  Keys of different functions are always different; in the worst
    case a renumbering costs cache recall, never soundness. *)

(** Two independent bottom-up 64-bit hash streams over all nodes,
    invariant under node renumbering.  O(n) for the whole network. *)
type hashes

val node_hashes : Network.t -> hashes

(** [pair_key hs a b] keys the candidate equivalence [a = b] on 128 bits
    per side: symmetric in the two literals and invariant under jointly
    complementing both.  Probabilistically exact (hash-based) — used for
    the SAT sweeper's pair cache, where serializing full cones per pair
    would dominate the sweep. *)
val pair_key : hashes -> Lit.t -> Lit.t -> string

(** [cone_key g lit] returns the exact key of [lit]'s cone and the sorted
    PI indices of its support, or [None] when the cone exceeds
    [max_nodes] (default 200k — beyond that, serialization cost outweighs
    cache value). *)
val cone_key :
  ?max_nodes:int -> Network.t -> Lit.t -> (string * int array) option

(** [po_key g i] is [cone_key] of PO [i]'s driver literal. *)
val po_key : ?max_nodes:int -> Network.t -> int -> (string * int array) option
