(* Structural cone keys for the cross-request equivalence cache.

   A key is an exact canonical description of a PO/literal cone: equal
   keys imply equal Boolean functions over the named PI indices, so cache
   verdicts transfer soundly between networks (and across requests).  Two
   key forms are produced:

   - cones with at most 4 support PIs get a *functional* key: the cone's
     truth table in NPN-canonical form (Bv.Npn) together with the
     transform back to the original function and the support PI indices.
     This matches restructured-but-equivalent small cones.
   - larger cones get a *structural* key: the cone serialized with
     cone-local node numbering (nodes in ascending original id), fanin
     complement flags and PI indices spelled out.  Node ids never appear,
     so the key survives any renumbering that preserves the relative
     construction order of the cone's nodes — the common case after an
     incremental edit elsewhere in the design.

   Alongside the exact keys, [node_hashes] computes two independent
   bottom-up 64-bit hash streams for *all* nodes in one O(n) pass; the
   SAT sweeper keys its pair cache on the resulting 128 bits per side
   (probabilistically exact, collision odds ~2^-128), because serializing
   full cones for every candidate pair of every round would dominate the
   sweep. *)

(* splitmix64 finalizer: full-avalanche 64-bit mixing. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xff51afd7ed558ccdL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L in
  Int64.logxor z (Int64.shift_right_logical z 33)

type hashes = { h1 : int64 array; h2 : int64 array }

let compl_salt = 0x5bf03635f0c35a7dL

let lit_hash h l =
  let v = h.(Lit.node l) in
  if Lit.is_compl l then mix64 (Int64.logxor v compl_salt) else v

let stream g salt =
  let n = Network.num_nodes g in
  let h = Array.make n 0L in
  h.(0) <- mix64 salt;
  for i = 0 to Network.num_pis g - 1 do
    h.(Network.pi g i) <-
      mix64 (Int64.add salt (Int64.of_int ((2 * i) + 3)))
  done;
  Network.iter_ands g (fun id ->
      let a = lit_hash h (Network.fanin0 g id)
      and b = lit_hash h (Network.fanin1 g id) in
      (* Order fanins by hash value, not literal value: literal order is
         numbering-dependent, the hash is not. *)
      let lo, hi = if Int64.unsigned_compare a b <= 0 then (a, b) else (b, a) in
      h.(id) <-
        mix64
          (Int64.logxor
             (Int64.mul lo 0x2545f4914f6cdd1dL)
             (Int64.add (Int64.mul hi 0x9e3779b97f4a7c15L) salt)));
  h

let node_hashes g =
  { h1 = stream g 0x8b65_01d3_7c3a_11efL; h2 = stream g 0x41c6_4e6d_0000_3039L }

(* One side of a candidate pair, fully described by its two hash streams
   plus the complement flag. *)
let side hs l =
  Printf.sprintf "%Lx.%Lx.%c"
    (lit_hash hs.h1 l) (lit_hash hs.h2 l)
    (if Lit.is_compl l then '1' else '0')

let pair_key hs a b =
  (* The relation [a = b] equals [not a = not b] and is symmetric in the
     two sides; canonicalize over both freedoms by taking the smallest of
     the four spelled-out variants. *)
  let variant a b =
    let sa = side hs a and sb = side hs b in
    if sa <= sb then "p:" ^ sa ^ ":" ^ sb else "p:" ^ sb ^ ":" ^ sa
  in
  let v1 = variant a b and v2 = variant (Lit.neg a) (Lit.neg b) in
  if v1 <= v2 then v1 else v2

(* --- exact cone keys ----------------------------------------------------- *)

(* 16-bit projection tables of the four truth-table variables. *)
let proj4 = [| 0xaaaa; 0xcccc; 0xf0f0; 0xff00 |]

let npn_key g ~cone ~local ~support root =
  (* Evaluate the cone's 16-bit truth table over the sorted support, then
     normalize through the exact NPN canonizer.  The transform is part of
     the key, so the key still identifies the function exactly — the
     canonical form only makes it independent of the cone's internal
     structure. *)
  let nlocal = Array.length cone in
  let tt = Array.make nlocal 0 in
  let slot_of = Hashtbl.create 8 in
  Array.iteri (fun s pi_node -> Hashtbl.replace slot_of pi_node s) support;
  let lit_tt l =
    let t = tt.(Hashtbl.find local (Lit.node l)) in
    if Lit.is_compl l then lnot t land 0xffff else t
  in
  Array.iteri
    (fun i id ->
      tt.(i) <-
        (if Network.is_const id then 0
         else if Network.is_pi g id then proj4.(Hashtbl.find slot_of id)
         else lit_tt (Network.fanin0 g id) land lit_tt (Network.fanin1 g id)))
    cone;
  let f = lit_tt root in
  let canon, tf = Bv.Npn.canonize f in
  let buf = Buffer.create 48 in
  Buffer.add_string buf (Printf.sprintf "n:%04x:o%c:i%x:p" canon
                           (if tf.Bv.Npn.output_compl then '1' else '0')
                           tf.Bv.Npn.input_compl);
  Array.iter (fun p -> Buffer.add_string buf (string_of_int p)) tf.Bv.Npn.perm;
  Array.iter
    (fun pi_node ->
      Buffer.add_char buf ':';
      Buffer.add_string buf (string_of_int (Network.pi_index g pi_node)))
    support;
  Buffer.contents buf

let structural_key g ~cone ~local root =
  let buf = Buffer.create (16 * Array.length cone) in
  Buffer.add_string buf (if Lit.is_compl root then "s!" else "s:");
  Array.iter
    (fun id ->
      if Network.is_const id then Buffer.add_char buf 'c'
      else if Network.is_pi g id then begin
        Buffer.add_char buf 'i';
        Buffer.add_string buf (string_of_int (Network.pi_index g id))
      end
      else begin
        let f0 = Network.fanin0 g id and f1 = Network.fanin1 g id in
        let emit l =
          Buffer.add_char buf (if Lit.is_compl l then '!' else '.');
          Buffer.add_string buf (string_of_int (Hashtbl.find local (Lit.node l)))
        in
        Buffer.add_char buf '(';
        emit f0;
        emit f1;
        Buffer.add_char buf ')'
      end)
    cone;
  Buffer.contents buf

let cone_key ?(max_nodes = 200_000) g root =
  let root_node = Lit.node root in
  (* Iterative TFI collection (cones can be deeper than the stack). *)
  let seen = Hashtbl.create 256 in
  let stack = Stack.create () in
  Stack.push root_node stack;
  let count = ref 0 in
  (try
     while not (Stack.is_empty stack) do
       let n = Stack.pop stack in
       if not (Hashtbl.mem seen n) then begin
         Hashtbl.replace seen n ();
         incr count;
         if !count > max_nodes then raise Exit;
         if Network.is_and g n then begin
           Stack.push (Lit.node (Network.fanin0 g n)) stack;
           Stack.push (Lit.node (Network.fanin1 g n)) stack
         end
       end
     done
   with Exit -> count := -1);
  if !count < 0 then None
  else begin
    let cone = Array.make !count 0 in
    let i = ref 0 in
    Hashtbl.iter
      (fun n () ->
        cone.(!i) <- n;
        incr i)
      seen;
    Array.sort compare cone;
    let local = Hashtbl.create !count in
    Array.iteri (fun i id -> Hashtbl.replace local id i) cone;
    let support =
      Array.of_list
        (List.filter (fun id -> Network.is_pi g id) (Array.to_list cone))
    in
    (* [cone] is id-sorted but support must be ordered by PI index. *)
    Array.sort
      (fun a b -> compare (Network.pi_index g a) (Network.pi_index g b))
      support;
    let key =
      if Array.length support <= 4 then npn_key g ~cone ~local ~support root
      else structural_key g ~cone ~local root
    in
    let pis = Array.map (fun id -> Network.pi_index g id) support in
    Some (key, pis)
  end

let po_key ?max_nodes g i = cone_key ?max_nodes g (Network.po g i)
