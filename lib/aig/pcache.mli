(** Proof-cache hook consulted by the engines before re-proving.

    A record of closures so the engines (lib/core, lib/sat) can use a
    cross-request equivalence cache without depending on its
    implementation (lib/serve's [Ecache]).  Keys come from {!Shash}.
    Implementations must be thread-safe: the SAT sweeper calls the pair
    hooks from parallel pool workers. *)

(** Sparse counter-example over a cone's support: (PI index, value)
    pairs; unlisted inputs replay as false. *)
type cex = (int * bool) list

type po_verdict =
  | Const_false  (** the PO's cone was proved constant false *)
  | Cex of cex  (** a recorded assignment drives the cone to true *)

type t = {
  lookup_po : string -> po_verdict option;
  record_po : string -> po_verdict -> unit;
  lookup_pair : string -> bool;
      (** [true] iff this pair key was proved equivalent before *)
  record_pair : string -> unit;
}

(** Restrict a full-width assignment to the given support PI indices. *)
val cex_of_array : int array -> bool array -> cex

(** Expand a sparse counter-example to a full assignment of [num_pis]
    inputs (unlisted inputs false; out-of-range indices ignored). *)
val cex_to_array : num_pis:int -> cex -> bool array
