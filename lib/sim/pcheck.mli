(** Shared proof-cache pre-pass over a miter's POs ({!Aig.Pcache} hooks),
    used by the simulation engine and the SAT sweeper before sweeping.

    [consult pc g] mutates [g]: POs with a cached constant-false verdict
    are discharged in place (driver rewritten to constant false).  Cached
    counter-examples are re-evaluated on [g] before being trusted — a
    stale entry can only cost a cache miss, never a wrong verdict. *)

type result = {
  disproved : (Cex.t * int) option;
      (** first replayed-and-verified counter-example, with its PO *)
  pending : (int * string * int array) list;
      (** (po index, cone key, support PI indices) of the POs that remain
          to be decided — hand these to {!record} with the final outcome *)
  hits : int;
  misses : int;
}

val consult : Aig.Pcache.t -> Aig.Network.t -> result

(** Record the run's conclusion for every pending PO: a proved run stores
    constant-false verdicts, a disproved run stores the counter-example
    against the PO it sets, an undecided run stores nothing. *)
val record :
  Aig.Pcache.t ->
  pending:(int * string * int array) list ->
  [ `Proved | `Disproved of Cex.t * int | `Undecided ] ->
  unit
