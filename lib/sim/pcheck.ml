(* Shared proof-cache pre-pass over a miter's POs, used by both the
   simulation engine and the SAT sweeper (which cannot see lib/core).

   Consulting mutates [g] in place: POs with a cached constant-false
   verdict are discharged by rewriting their driver, exactly like a proved
   PO of the P phase.  Replayed counter-examples are re-evaluated on [g]
   before being trusted, so a stale or colliding entry costs a miss, never
   a wrong verdict. *)

type result = {
  disproved : (Cex.t * int) option;  (* first verified counter-example *)
  pending : (int * string * int array) list;
      (* (po, key, support) of POs this run still has to decide *)
  hits : int;
  misses : int;
}

let consult (pc : Aig.Pcache.t) g =
  let num_pis = Aig.Network.num_pis g in
  let pending = ref [] in
  let hits = ref 0 and misses = ref 0 in
  let disproved = ref None in
  let n = Aig.Network.num_pos g in
  let po = ref 0 in
  while !disproved = None && !po < n do
    let i = !po in
    incr po;
    if Aig.Network.po g i <> Aig.Lit.const_false then begin
      match Aig.Shash.po_key g i with
      | None -> ()  (* cone too large to key: never cached *)
      | Some (key, support) -> (
          let miss () =
            incr misses;
            pending := (i, key, support) :: !pending
          in
          match pc.Aig.Pcache.lookup_po key with
          | Some Aig.Pcache.Const_false ->
              incr hits;
              Aig.Network.set_po g i Aig.Lit.const_false
          | Some (Aig.Pcache.Cex sparse) ->
              let cex = Aig.Pcache.cex_to_array ~num_pis sparse in
              if Cex.eval_lit g cex (Aig.Network.po g i) then begin
                incr hits;
                disproved := Some (cex, i)
              end
              else miss ()
          | None -> miss ())
    end
  done;
  { disproved = !disproved; pending = List.rev !pending; hits = !hits;
    misses = !misses }

let record (pc : Aig.Pcache.t) ~pending outcome =
  match outcome with
  | `Proved ->
      List.iter
        (fun (_, key, _) -> pc.Aig.Pcache.record_po key Aig.Pcache.Const_false)
        pending
  | `Disproved ((cex : Cex.t), po) ->
      List.iter
        (fun (po', key, support) ->
          if po' = po then
            pc.Aig.Pcache.record_po key
              (Aig.Pcache.Cex (Aig.Pcache.cex_of_array support cex)))
        pending
  | `Undecided -> ()
