(* Delta-debugging for failing miters.  Three reduction moves, applied to
   a fixpoint under a predicate-evaluation budget:

   1. drop POs (try each single PO, then dropping one at a time);
   2. re-extract the cone of the kept POs (prunes dangling logic and
      unused PIs after substitutions);
   3. forward each AND node to a fanin or a constant, highest id first.

   Every candidate must both shrink the miter and keep [fails] true, so
   the result still reproduces the original failure. *)

type budget = { mutable left : int }

let check budget fails g =
  if budget.left <= 0 then false
  else begin
    budget.left <- budget.left - 1;
    fails g
  end

let size g = Aig.Network.num_ands g

let try_po_drop budget fails g =
  let npos = Aig.Network.num_pos g in
  if npos <= 1 then None
  else begin
    let result = ref None in
    (* Single POs first: the biggest possible cut. *)
    let po = ref 0 in
    while !result = None && !po < npos do
      let cand = Surgery.restrict_pos g ~keep:[ !po ] in
      if check budget fails cand then result := Some cand;
      incr po
    done;
    (* Otherwise drop POs one at a time. *)
    if !result = None then begin
      let keep = ref (List.init npos Fun.id) in
      let changed = ref false in
      let i = ref 0 in
      while !i < npos do
        if List.length !keep > 1 && List.mem !i !keep then begin
          let cand_keep = List.filter (fun j -> j <> !i) !keep in
          let cand = Surgery.restrict_pos g ~keep:cand_keep in
          if check budget fails cand then begin
            keep := cand_keep;
            changed := true
          end
        end;
        incr i
      done;
      if !changed then result := Some (Surgery.restrict_pos g ~keep:!keep)
    end;
    !result
  end

let try_node_sweep budget fails g =
  let cur = ref g in
  let progress = ref false in
  (* Highest ids first: killing a root-side node deletes its whole
     dangling cone in one rebuild. *)
  let n = ref (Aig.Network.num_nodes !cur - 1) in
  while !n >= 1 && budget.left > 0 do
    let g = !cur in
    if !n < Aig.Network.num_nodes g && Aig.Network.is_and g !n then begin
      let replacements =
        [
          Aig.Network.fanin0 g !n;
          Aig.Network.fanin1 g !n;
          Aig.Lit.const_false;
          Aig.Lit.const_true;
        ]
      in
      let rec try_rep = function
        | [] -> ()
        | by :: rest ->
            let cand = Surgery.substitute g ~node:!n ~by in
            if size cand < size g && check budget fails cand then begin
              cur := cand;
              progress := true
            end
            else try_rep rest
      in
      try_rep replacements
    end;
    decr n
  done;
  if !progress then Some !cur else None

let shrink ?(budget = 400) ~fails g =
  if not (fails g) then (g, 0)
  else begin
    let b = { left = budget } in
    let cur = ref g in
    let continue_ = ref true in
    while !continue_ && b.left > 0 do
      continue_ := false;
      (match try_po_drop b fails !cur with
      | Some g' ->
          cur := g';
          continue_ := true
      | None -> ());
      (* Prune logic orphaned by substitutions and PO drops. *)
      let pruned =
        Surgery.restrict_pos !cur
          ~keep:(List.init (Aig.Network.num_pos !cur) Fun.id)
      in
      if size pruned < size !cur && check b fails pruned then begin
        cur := pruned;
        continue_ := true
      end;
      (match try_node_sweep b fails !cur with
      | Some g' ->
          cur := g';
          continue_ := true
      | None -> ())
    done;
    (!cur, budget - b.left)
  end
