(** Whole-network surgical edits for fault injection and shrinking.

    All operations rebuild the network through {!Aig.Network.add_and}, so
    structural hashing and constant propagation re-normalise the result:
    an edit that makes logic dangling or constant also deletes it, which
    is exactly what the shrinker wants. *)

(** What to do with one AND node during a rebuild.  Literals refer to the
    {e old} graph and must name nodes strictly below the edited node (the
    rebuild proceeds in topological order). *)
type edit =
  | Keep  (** rebuild the node unchanged *)
  | Replace_with of Aig.Lit.t  (** forward the node's output to a literal *)
  | Set_fanins of Aig.Lit.t * Aig.Lit.t  (** rebuild with different fanins *)

(** [rewrite g ~edit_of] rebuilds [g] applying [edit_of] to every AND node.
    PIs and PO order are preserved; the PO {e count} never changes. *)
val rewrite : Aig.Network.t -> edit_of:(int -> edit) -> Aig.Network.t

(** [substitute g ~node ~by] forwards a single node to [by] (a constant, a
    fanin, or any older literal). *)
val substitute : Aig.Network.t -> node:int -> by:Aig.Lit.t -> Aig.Network.t

(** [restrict_pos g ~keep] keeps only the listed POs (in the given order)
    and the cone of logic feeding them; PIs outside the cone are dropped,
    compacting PI indices. *)
val restrict_pos : Aig.Network.t -> keep:int list -> Aig.Network.t
