(** The differential oracle: run every engine on a miter and flag any
    inconsistency.

    Cross-checked engines: the brute-force ground truth (≤ 16 PIs), the
    simulation engine, the combined engine+SAT flow, the SAT sweeper, the
    direct per-PO SAT check, the BDD engine under a node budget, and the
    portfolio in both its sequential and racing modes.  A failure is one
    of:

    - two engines returning conclusive opposite verdicts;
    - a counter-example that does not replay on the miter;
    - a conclusive verdict contradicting the generator's constructed
      expectation;
    - a proof whose {!Simsweep.Certificate} does not validate or does not
      replay to a solved miter. *)

type verdict =
  | V_equivalent
  | V_inequivalent of Sim.Cex.t * int
  | V_unknown of string  (** undecided / budget exceeded — never a failure *)

(** ["EQ"], ["INEQ"] or ["?"] — the deterministic log token. *)
val verdict_token : verdict -> string

(** A named engine adapter.  The self-test injects a deliberately lying
    adapter through this interface to prove the oracle catches silent
    miscompares. *)
type engine = {
  name : string;
  run : pool:Par.Pool.t -> Aig.Network.t -> verdict;
}

val default_engines :
  ?bdd_node_limit:int -> ?sat_conflict_limit:int -> unit -> engine list

type failure =
  | Disagreement of { equiv : string list; inequiv : string list }
  | Bad_cex of { engine : string; po : int }
  | Wrong_verdict of { engine : string; verdict : verdict }
  | Bad_certificate of string

(** Deterministic one-token rendering, e.g.
    [disagreement[EQ:liar|INEQ:brute,satsweep]]. *)
val failure_token : failure -> string

(** Same failure mode modulo the concrete CEX/PO (a disagreement needs a
    shared witness engine on each side) — the shrinker's notion of "the
    failure persists". *)
val similar : failure -> failure -> bool

type outcome = {
  verdicts : (string * verdict) list;  (** in engine order — deterministic *)
  failures : failure list;
}

(** [run ?engines ?expected ?certify ~pool miter].  [certify] (default
    false) additionally replays a {!Simsweep.Certificate} when the sim
    engine proves the miter. *)
val run :
  ?engines:engine list ->
  ?expected:[ `Equivalent | `Inequivalent ] ->
  ?certify:bool ->
  pool:Par.Pool.t ->
  Aig.Network.t ->
  outcome
