(** Fuzz failure artifacts and deterministic log lines.

    A repro is a shrunk miter written as an ASCII AIGER file whose comment
    section records the one-line seed replay ([bin/fuzz --seed N]), the
    case provenance and the failure tokens — everything needed to check
    the file in as a regression test. *)

type repro = {
  case_id : int;
  run_seed : int64;
  descr : string;
  failures : string list;
  original_ands : int;
  shrunk_ands : int;
  path : string;
}

(** Write [dir/repro_case<ID>.aag] (creating [dir] as needed). *)
val write :
  dir:string ->
  case_id:int ->
  run_seed:int64 ->
  descr:string ->
  failures:string list ->
  original:Aig.Network.t ->
  shrunk:Aig.Network.t ->
  repro

(** One deterministic log line per case: provenance, sizes, the verdict of
    every engine and OK/FAIL status.  Contains no timing, so two runs with
    the same seed log byte-identically. *)
val case_line : case:Gencase.t -> outcome:Oracle.outcome -> string
