(** Bit-parallel brute-force oracle — the differential harness's ground
    truth on miters with at most {!max_pis} primary inputs.

    One pass of 64-way packed simulation over all [2^n] assignments: a few
    hundred times faster than per-assignment {!Sim.Cex.eval_lit} loops, so
    the oracle can afford an exhaustive verdict on every fuzz case and the
    shrinker can afford one per candidate reduction. *)

(** Largest supported PI count (16). *)
val max_pis : int

val supported : Aig.Network.t -> bool

(** Exhaustive verdict on a miter: every PO constant false, or a concrete
    counter-example.  The returned CEX is deterministic (lowest PO index,
    then lowest pattern index).  Raises [Invalid_argument] beyond
    {!max_pis} inputs. *)
val check_miter :
  Aig.Network.t -> [ `Equivalent | `Inequivalent of Sim.Cex.t * int ]

(** Functional equivalence of two networks with matching interfaces. *)
val equivalent : Aig.Network.t -> Aig.Network.t -> bool
