type repro = {
  case_id : int;
  run_seed : int64;
  descr : string;
  failures : string list;
  original_ands : int;
  shrunk_ands : int;
  path : string;
}

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* The AIGER comment section ('c' line onward) is ignored by the reader,
   so the repro file carries its own provenance: the seed line that
   regenerates the case and the failure it exhibits. *)
let write ~dir ~case_id ~run_seed ~descr ~failures ~original ~shrunk =
  mkdir_p dir;
  let path = Filename.concat dir (Printf.sprintf "repro_case%04d.aag" case_id) in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Aig.Aiger_io.to_string shrunk);
  Buffer.add_string buf "c\n";
  Buffer.add_string buf
    (Printf.sprintf "repro: bin/fuzz --seed %Ld --cases %d\n" run_seed (case_id + 1));
  Buffer.add_string buf (Printf.sprintf "case %d: %s\n" case_id descr);
  List.iter (fun f -> Buffer.add_string buf (Printf.sprintf "failure: %s\n" f)) failures;
  Buffer.add_string buf
    (Printf.sprintf "shrunk: %d -> %d AND nodes\n"
       (Aig.Network.num_ands original) (Aig.Network.num_ands shrunk));
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents buf));
  {
    case_id;
    run_seed;
    descr;
    failures;
    original_ands = Aig.Network.num_ands original;
    shrunk_ands = Aig.Network.num_ands shrunk;
    path;
  }

let case_line ~case ~outcome =
  let open Gencase in
  let verdicts =
    String.concat " "
      (List.map
         (fun (n, v) -> Printf.sprintf "%s=%s" n (Oracle.verdict_token v))
         outcome.Oracle.verdicts)
  in
  let status =
    match outcome.Oracle.failures with
    | [] -> "OK"
    | fs -> "FAIL " ^ String.concat ";" (List.map Oracle.failure_token fs)
  in
  Printf.sprintf "case %04d [%s] expected=%s pis=%d ands=%d %s : %s" case.id
    case.descr
    (match case.expected with `Equivalent -> "EQ" | `Inequivalent -> "INEQ")
    (Aig.Network.num_pis case.miter)
    (Aig.Network.num_ands case.miter)
    verdicts status
