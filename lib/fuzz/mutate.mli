(** Seeded fault injection.

    A fault is a small structural edit whose {e intent} is to change the
    circuit function — the generator then verifies the change against the
    brute-force oracle, because a structural fault can be functionally
    masked (a redundant fault), in which case the expected verdict would be
    wrong by construction. *)

type fault =
  | Flip_fanin of { node : int; right : bool }
      (** complement one fanin polarity of an AND gate *)
  | Swap_fanin of { node : int; donor : Aig.Lit.t }
      (** rewire the left fanin to an unrelated older literal *)
  | Stuck_fanin of { node : int; right : bool; value : bool }
      (** one fanin literal stuck at a constant *)
  | Stuck_node of { node : int; value : bool }
      (** a gate output stuck at a constant *)
  | Negate_po of int  (** complement a primary output — never masked *)

(** Compact deterministic description, e.g. [flip@57.l] — part of the
    one-line repro. *)
val describe : fault -> string

(** Rebuild the network with the fault in place.  The PI/PO interface is
    preserved. *)
val apply : Aig.Network.t -> fault -> Aig.Network.t

(** Draw a random fault site from the network; [None] only for networks
    with neither AND nodes nor POs. *)
val random_fault : Sim.Rng.t -> Aig.Network.t -> fault option
