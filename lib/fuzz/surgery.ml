type edit =
  | Keep
  | Replace_with of Aig.Lit.t
  | Set_fanins of Aig.Lit.t * Aig.Lit.t

let rewrite g ~edit_of =
  let h = Aig.Network.create ~capacity:(Aig.Network.num_nodes g) () in
  (* map.(n) is the literal in [h] computing old node [n] positively;
     filled in increasing node id, so any old literal with a smaller node
     id can be referenced by an edit. *)
  let map = Array.make (Aig.Network.num_nodes g) Aig.Lit.const_false in
  let map_lit l =
    let n = Aig.Lit.node l in
    Aig.Lit.xor_compl map.(n) (Aig.Lit.is_compl l)
  in
  let check_backward n l =
    if Aig.Lit.node l >= n then
      invalid_arg "Surgery.rewrite: edit references a node at or above the edited one"
  in
  Aig.Network.iter_nodes g (fun n ->
      if Aig.Network.is_const n then ()
      else if Aig.Network.is_pi g n then map.(n) <- Aig.Network.add_pi h
      else
        map.(n) <-
          (match edit_of n with
          | Keep ->
              Aig.Network.add_and h
                (map_lit (Aig.Network.fanin0 g n))
                (map_lit (Aig.Network.fanin1 g n))
          | Replace_with l ->
              check_backward n l;
              map_lit l
          | Set_fanins (a, b) ->
              check_backward n a;
              check_backward n b;
              Aig.Network.add_and h (map_lit a) (map_lit b)));
  Array.iter (fun l -> Aig.Network.add_po h (map_lit l)) (Aig.Network.pos g);
  h

let substitute g ~node ~by = rewrite g ~edit_of:(fun n -> if n = node then Replace_with by else Keep)

let restrict_pos g ~keep =
  let npos = Aig.Network.num_pos g in
  List.iter
    (fun i -> if i < 0 || i >= npos then invalid_arg "Surgery.restrict_pos: PO out of range")
    keep;
  let roots =
    Array.of_list (List.map (fun i -> Aig.Lit.node (Aig.Network.po g i)) keep)
  in
  let mem = Aig.Cone.tfi g ~roots in
  let h = Aig.Network.create () in
  let map = Array.make (Aig.Network.num_nodes g) Aig.Lit.const_false in
  Aig.Network.iter_nodes g (fun n ->
      if mem.(n) && not (Aig.Network.is_const n) then
        if Aig.Network.is_pi g n then map.(n) <- Aig.Network.add_pi h
        else
          let ml l = Aig.Lit.xor_compl map.(Aig.Lit.node l) (Aig.Lit.is_compl l) in
          map.(n) <-
            Aig.Network.add_and h
              (ml (Aig.Network.fanin0 g n))
              (ml (Aig.Network.fanin1 g n)));
  List.iter
    (fun i ->
      let l = Aig.Network.po g i in
      Aig.Network.add_po h (Aig.Lit.xor_compl map.(Aig.Lit.node l) (Aig.Lit.is_compl l)))
    keep;
  h
