(** Deterministic random miter generator.

    Every case derives from [(run_seed, id)] alone: the same pair always
    yields the same base circuit (drawn from the {!Gen} families), the same
    {!Opt} pipeline for the right-hand side and — for mutants — the same
    injected fault.  That makes every fuzz failure a one-line repro.

    The expected verdict is known by construction: optimisation pipelines
    preserve function, and injected faults are verified against the
    brute-force oracle at generation time (a masked fault is re-drawn).
    All cases stay within {!Brute.max_pis} inputs so the exhaustive oracle
    participates in every differential comparison. *)

type kind =
  | Equiv_pair  (** left vs optimisation pipeline of left *)
  | Identical  (** left vs a plain copy — the trivial strashed miter *)
  | Mutant of Mutate.fault  (** pipeline output with an injected fault *)

type t = {
  id : int;
  run_seed : int64;
  descr : string;  (** deterministic human-readable provenance *)
  kind : kind;
  expected : [ `Equivalent | `Inequivalent ];
  left : Aig.Network.t;
  right : Aig.Network.t;
  miter : Aig.Network.t;
}

val generate : run_seed:int64 -> id:int -> t

(** [inject rng ~left right] draws faults for [right] until one visibly
    changes the function against [left] (brute-verified), falling back to
    a PO negation; returns the fault and the mutant.  Exposed for the
    self-test, which needs a mutant of a specific size. *)
val inject :
  Sim.Rng.t -> left:Aig.Network.t -> Aig.Network.t -> Mutate.fault * Aig.Network.t
