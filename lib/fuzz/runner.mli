(** Fuzz-run orchestration: generate cases, run the differential oracle,
    shrink and persist every failure.

    Everything is deterministic from [config.seed]: the case stream, every
    engine verdict, the shrink sequence and the log lines (which carry no
    timing).  Two runs with the same seed are byte-identical. *)

type config = {
  seed : int64;
  cases : int;
  out_dir : string;  (** repro AIGER files are written here *)
  bdd_node_limit : int;
  sat_conflict_limit : int;
  certify_every : int;  (** certificate-replay every Nth case; 0 disables *)
  shrink_budget : int;  (** oracle evaluations per shrink *)
}

val default_config : config

type summary = {
  cases_run : int;
  failed_cases : int;
  repros : Report.repro list;
}

(** [run ?log ?extra_engines ~pool config].  [extra_engines] join the
    differential comparison (the self-test's lying engine enters here). *)
val run :
  ?log:(string -> unit) ->
  ?extra_engines:Oracle.engine list ->
  pool:Par.Pool.t ->
  config ->
  summary

(** End-to-end harness check: build a known-inequivalent mutant, add a
    deliberately lying engine, and require that the oracle flags the
    disagreement, the shrinker reduces the miter to at most 20% of its
    AND nodes, the written AIGER repro still reproduces the disagreement
    when read back, and a portfolio race cancels a deliberately hanging
    engine once the fast racer concludes.  [Error] describes the first
    broken link. *)
val self_test :
  ?log:(string -> unit) ->
  pool:Par.Pool.t ->
  out_dir:string ->
  seed:int64 ->
  unit ->
  (Report.repro, string) result
