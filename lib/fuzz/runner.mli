(** Fuzz-run orchestration: generate cases, run the differential oracle,
    shrink and persist every failure.

    Everything is deterministic from [config.seed]: the case stream, every
    engine verdict, the shrink sequence and the log lines (which carry no
    timing).  Two runs with the same seed are byte-identical. *)

type config = {
  seed : int64;
  cases : int;
  out_dir : string;  (** repro AIGER files are written here *)
  bdd_node_limit : int;
  sat_conflict_limit : int;
  certify_every : int;  (** certificate-replay every Nth case; 0 disables *)
  shrink_budget : int;  (** oracle evaluations per shrink *)
  shard_transport : Shard.Check.transport;
      (** payload transport of the shard oracle engine: [`Shm] (the
          default data plane) or [`Inline] (bytes in the frame) — fuzzing
          under both proves verdict parity of the transports *)
}

val default_config : config

type summary = {
  cases_run : int;
  failed_cases : int;
  repros : Report.repro list;
}

(** [run ?log ?extra_engines ~pool config].  [extra_engines] join the
    differential comparison (the self-test's lying engine enters here).
    Every mode also includes a multi-process [shard] engine that races
    the coordinator against the in-process portfolio, so the host binary
    must call [Shard.Worker.maybe_become_worker] at startup. *)
val run :
  ?log:(string -> unit) ->
  ?extra_engines:Oracle.engine list ->
  pool:Par.Pool.t ->
  config ->
  summary

(** [run_soak ~minutes] streams the same deterministic case sequence as
    {!run} (ids 0, 1, 2, ...) until [minutes] of wall clock elapse, so a
    soak failure at case [id] replays exactly with [cases = id + 1].
    [progress] receives a heartbeat line roughly every 15 seconds (and a
    final total) — timing-dependent, hence separate from [log], which
    stays byte-deterministic.  [config.cases] is ignored. *)
val run_soak :
  ?log:(string -> unit) ->
  ?progress:(string -> unit) ->
  ?extra_engines:Oracle.engine list ->
  pool:Par.Pool.t ->
  minutes:float ->
  config ->
  summary

(** [run_dir ~dir] runs the oracle over every [.aig] / [.aag] file in
    [dir] (sorted by name) as an already-built miter.  No constructed
    expectation exists, so the checks are cross-engine agreement and
    counter-example replay; unreadable files are skipped with a logged
    warning and do not count as cases.  Failures shrink and persist to
    [config.out_dir] like generated cases. *)
val run_dir :
  ?log:(string -> unit) ->
  ?extra_engines:Oracle.engine list ->
  pool:Par.Pool.t ->
  dir:string ->
  config ->
  summary

(** End-to-end harness check: build a known-inequivalent mutant, add a
    deliberately lying engine, and require that the oracle flags the
    disagreement, the shrinker reduces the miter to at most 20% of its
    AND nodes, the written AIGER repro still reproduces the disagreement
    when read back, a portfolio race cancels a deliberately hanging
    engine once the fast racer concludes, a SAT stub with broken
    counter-example reconstruction is flagged by CEX replay, a
    word-level engine that trusts a mis-detected word boundary (merging
    detected chains without proof) is flagged for its wrong Proved, and
    the shard coordinator survives a worker SIGKILLed mid-shard (crash
    registered, shard rescheduled, correct verdict), and a shard worker
    fed corrupted/truncated shared-memory descriptors answers each with
    a framed [Shard_failed] and still serves a valid dispatch on the
    same connection.  [Error] describes the first broken link. *)
val self_test :
  ?log:(string -> unit) ->
  pool:Par.Pool.t ->
  out_dir:string ->
  seed:int64 ->
  unit ->
  (Report.repro, string) result
