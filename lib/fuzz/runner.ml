type config = {
  seed : int64;
  cases : int;
  out_dir : string;
  bdd_node_limit : int;
  sat_conflict_limit : int;
  certify_every : int;  (** certificate-replay every Nth case; 0 disables *)
  shrink_budget : int;
}

let default_config =
  {
    seed = 1L;
    cases = 100;
    out_dir = "fuzz-out";
    bdd_node_limit = 200_000;
    sat_conflict_limit = 10_000;
    certify_every = 10;
    shrink_budget = 400;
  }

type summary = {
  cases_run : int;
  failed_cases : int;
  repros : Report.repro list;
}

let null_log _ = ()

let shrink_failure ~engines ~pool ~budget ~(case : Gencase.t) failures =
  let fails g =
    let o = Oracle.run ~engines ~pool g in
    List.exists (fun f -> List.exists (Oracle.similar f) failures) o.Oracle.failures
  in
  Shrink.shrink ~budget ~fails case.Gencase.miter

let run ?(log = null_log) ?(extra_engines = []) ~pool config =
  let engines =
    Oracle.default_engines ~bdd_node_limit:config.bdd_node_limit
      ~sat_conflict_limit:config.sat_conflict_limit ()
    @ extra_engines
  in
  let failed = ref 0 in
  let repros = ref [] in
  for id = 0 to config.cases - 1 do
    let case = Gencase.generate ~run_seed:config.seed ~id in
    let certify = config.certify_every > 0 && id mod config.certify_every = 0 in
    let outcome =
      Oracle.run ~engines ~expected:case.Gencase.expected ~certify ~pool
        case.Gencase.miter
    in
    log (Report.case_line ~case ~outcome);
    if outcome.Oracle.failures <> [] then begin
      incr failed;
      let shrunk, evals =
        shrink_failure ~engines ~pool ~budget:config.shrink_budget ~case
          outcome.Oracle.failures
      in
      let repro =
        Report.write ~dir:config.out_dir ~case_id:id ~run_seed:config.seed
          ~descr:case.Gencase.descr
          ~failures:(List.map Oracle.failure_token outcome.Oracle.failures)
          ~original:case.Gencase.miter ~shrunk
      in
      log
        (Printf.sprintf "repro case %04d: %d -> %d AND nodes (%d shrink evals) -> %s"
           id repro.Report.original_ands repro.Report.shrunk_ands evals
           repro.Report.path);
      repros := repro :: !repros
    end
  done;
  { cases_run = config.cases; failed_cases = !failed; repros = List.rev !repros }

(* The liar: an engine with a silent miscompare, the exact failure class
   the harness exists to catch. *)
let liar = { Oracle.name = "liar"; run = (fun ~pool:_ _ -> Oracle.V_equivalent) }

(* Broken model reconstruction: a direct per-PO SAT check that runs the
   preprocessor but reads counter-example PI values from the raw search
   model ({!Sat.Solver.model_value_raw}) instead of the reconstructed one.
   When preprocessing eliminates a PI that matters, the CEX is garbage —
   the failure class the oracle's replay stage exists to catch. *)
let badrecon =
  {
    Oracle.name = "badrecon";
    run =
      (fun ~pool:_ m ->
        let solver = Sat.Solver.create () in
        if not (Sat.Cnf.load solver m) then Oracle.V_equivalent
        else begin
          let pos = Aig.Miter.unsolved_outputs m in
          let frozen =
            List.filter_map
              (fun po ->
                let l = Aig.Network.po m po in
                if Aig.Network.is_const (Aig.Lit.node l) then None
                else Some (Sat.Solver.var_of_lit (Sat.Cnf.lit l)))
              pos
          in
          Sat.Solver.simplify ~frozen solver;
          let rec go = function
            | [] -> Oracle.V_equivalent
            | po :: rest -> (
                let l = Aig.Network.po m po in
                if Aig.Network.is_const (Aig.Lit.node l) then
                  if Aig.Lit.is_compl l then go rest
                  else
                    Oracle.V_inequivalent
                      (Array.make (Aig.Network.num_pis m) false, po)
                else
                  match
                    Sat.Solver.solve ~assumptions:[ Sat.Cnf.lit l ]
                      ~conflict_limit:10_000 solver
                  with
                  | Sat.Solver.Unsat -> go rest
                  | Sat.Solver.Unknown -> Oracle.V_unknown "budget"
                  | Sat.Solver.Sat ->
                      let cex =
                        Array.init (Aig.Network.num_pis m) (fun i ->
                            Sat.Solver.model_value_raw solver (Aig.Network.pi m i))
                      in
                      Oracle.V_inequivalent (cex, po))
          in
          go pos
        end);
  }

(* Broken-reconstruction stage: generate injected-fault miters until the
   stub emits a CEX that does not replay (i.e. preprocessing eliminated a
   PI the raw model gets wrong), then check the oracle flags it. *)
let badrecon_stage log ~pool ~seed =
  let rec attempt k =
    if k >= 20 then
      Error
        "self-test: the broken-reconstruction stub never produced an \
         invalid CEX in 20 attempts"
    else
      let rng =
        Sim.Rng.create ~seed:(Int64.add seed (Int64.of_int (7001 + k)))
      in
      let left =
        Gen.Control.random_logic ~pis:12 ~nodes:200 ~pos:4 ~seed:(Sim.Rng.next64 rng)
      in
      let right = Opt.Resyn.light left in
      let _fault, mutant = Gencase.inject rng ~left right in
      let miter = Aig.Miter.build left mutant in
      match badrecon.Oracle.run ~pool miter with
      | Oracle.V_inequivalent (cex, po) when not (Sim.Cex.check miter cex po) ->
          let o = Oracle.run ~engines:[ badrecon ] ~pool miter in
          let flagged =
            List.exists
              (function
                | Oracle.Bad_cex { engine = "badrecon"; _ } -> true
                | _ -> false)
              o.Oracle.failures
          in
          if flagged then begin
            log
              (Printf.sprintf
                 "self-test: broken reconstruction flagged as bad-cex \
                  (attempt %d, PO %d)"
                 (k + 1) po);
            Ok ()
          end
          else
            Error
              "self-test: the broken-reconstruction CEX was NOT flagged by \
               the oracle"
      | _ -> attempt (k + 1)
  in
  attempt 0

(* Race-cancellation stage of the self-test: a deliberately hanging engine
   (it returns only once the shared token fires) races a fast conclusive
   one; the race must return promptly with the fast winner and a recorded
   cancel latency, proving cooperative cancellation actually unwinds a
   stuck racer. *)
let race_cancel_stage log miter =
  let open Simsweep.Portfolio in
  let fast =
    {
      racer_name = "fast";
      racer_run =
        (fun ~cancel ->
          match Sat.Sweep.check_direct ~cancel miter with
          | Sat.Sweep.Equivalent -> `Eq
          | Sat.Sweep.Inequivalent _ -> `Ineq
          | Sat.Sweep.Undecided -> `Unknown);
      racer_conclusive = (fun v -> v <> `Unknown);
    }
  in
  let hang =
    {
      racer_name = "hang";
      racer_run =
        (fun ~cancel ->
          while not (Simsweep.Cancel.poll cancel) do
            Domain.cpu_relax ()
          done;
          raise Simsweep.Cancel.Cancelled);
      racer_conclusive = (fun _ -> false);
    }
  in
  let ro = race [ fast; hang ] in
  match (ro.race_winner, ro.race_cancel_latency) with
  | Some (0, _), Some latency ->
      log
        (Printf.sprintf
           "self-test: race cancelled the hanging engine (%.3fs total, %.3fs \
            cancel latency)"
           ro.race_time latency);
      Ok ()
  | Some (i, _), _ ->
      Error
        (Printf.sprintf
           "self-test: race won by racer %d, expected the fast engine" i)
  | None, _ -> Error "self-test: race with a hanging engine returned no winner"

let self_test ?(log = null_log) ~pool ~out_dir ~seed () =
  let rng =
    Sim.Rng.create ~seed:(Int64.add (Int64.mul seed 0x2545F4914F6CDD1DL) 0x9E3779B97F4A7C15L)
  in
  (* A mutant big enough that the <= 20% shrink target is meaningful. *)
  let left =
    Gen.Control.random_logic ~pis:10 ~nodes:260 ~pos:8 ~seed:(Sim.Rng.next64 rng)
  in
  let right = Opt.Resyn.light left in
  let fault, mutant = Gencase.inject rng ~left right in
  let miter = Aig.Miter.build left mutant in
  let original_ands = Aig.Network.num_ands miter in
  log
    (Printf.sprintf "self-test: injected %s into a %d-AND miter"
       (Mutate.describe fault) original_ands);
  let engines = Oracle.default_engines () @ [ liar ] in
  let outcome = Oracle.run ~engines ~pool miter in
  let liar_caught =
    List.exists
      (function
        | Oracle.Disagreement { equiv; inequiv = _ } -> List.mem "liar" equiv
        | _ -> false)
      outcome.Oracle.failures
  in
  if not liar_caught then
    Error "self-test: the injected silent miscompare was NOT flagged by the oracle"
  else begin
    log "self-test: miscompare flagged; shrinking";
    (* The disagreement persists exactly while the miter stays
       inequivalent: the liar always says EQ, brute says INEQ. *)
    let brute_and_liar =
      List.filter (fun e -> e.Oracle.name = "brute") engines @ [ liar ]
    in
    let fails g =
      let o = Oracle.run ~engines:brute_and_liar ~pool g in
      List.exists (function Oracle.Disagreement _ -> true | _ -> false) o.Oracle.failures
    in
    let shrunk, evals = Shrink.shrink ~budget:600 ~fails miter in
    let shrunk_ands = Aig.Network.num_ands shrunk in
    log
      (Printf.sprintf "self-test: shrunk %d -> %d AND nodes (%d evals)" original_ands
         shrunk_ands evals);
    if shrunk_ands * 5 > original_ands then
      Error
        (Printf.sprintf
           "self-test: shrinker left %d of %d AND nodes (> 20%% of the original)"
           shrunk_ands original_ands)
    else begin
      let repro =
        Report.write ~dir:out_dir ~case_id:0 ~run_seed:seed ~descr:"self-test"
          ~failures:(List.map Oracle.failure_token outcome.Oracle.failures)
          ~original:miter ~shrunk
      in
      (* The written artifact must reproduce the disagreement on its own. *)
      let reread = Aig.Aiger_io.read_file repro.Report.path in
      let replay = Oracle.run ~engines ~pool reread in
      let reproduces =
        List.exists
          (function
            | Oracle.Disagreement { equiv; _ } -> List.mem "liar" equiv
            | _ -> false)
          replay.Oracle.failures
      in
      if not reproduces then
        Error "self-test: the shrunk AIGER file does not reproduce the disagreement"
      else
        match race_cancel_stage log miter with
        | Error e -> Error e
        | Ok () -> (
            match badrecon_stage log ~pool ~seed with
            | Error e -> Error e
            | Ok () ->
                log (Printf.sprintf "self-test: OK (repro %s)" repro.Report.path);
                Ok repro)
    end
  end
