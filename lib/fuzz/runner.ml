type config = {
  seed : int64;
  cases : int;
  out_dir : string;
  bdd_node_limit : int;
  sat_conflict_limit : int;
  certify_every : int;  (** certificate-replay every Nth case; 0 disables *)
  shrink_budget : int;
  shard_transport : Shard.Check.transport;
      (** payload transport of the shard oracle engine *)
}

let default_config =
  {
    seed = 1L;
    cases = 100;
    out_dir = "fuzz-out";
    bdd_node_limit = 200_000;
    sat_conflict_limit = 10_000;
    certify_every = 10;
    shrink_budget = 400;
    shard_transport = `Shm;
  }

type summary = {
  cases_run : int;
  failed_cases : int;
  repros : Report.repro list;
}

let null_log _ = ()

(* Internal bundle threaded through the shared per-case helpers. *)
type ctx = { cfg : config; pool : Par.Pool.t }

let shrink_failure ~engines ~pool ~budget ~miter failures =
  let fails g =
    let o = Oracle.run ~engines ~pool g in
    List.exists (fun f -> List.exists (Oracle.similar f) failures) o.Oracle.failures
  in
  Shrink.shrink ~budget ~fails miter

(* The multi-process shard coordinator as an oracle engine, racing the
   in-process engines on every generated miter.  A tiny shard budget makes
   even fuzz-sized miters split into several shards, so the plan/extract/
   lift path is exercised, and the deadline bounds a wedged coordinator.
   NOTE: any binary embedding this engine must call
   [Shard.Worker.maybe_become_worker] first thing in [main] — the
   coordinator re-execs the host executable to make workers. *)
let shard_engine transport =
  {
    Oracle.name = "shard";
    run =
      (fun ~pool:_ m ->
        let config =
          {
            Shard.Check.default_config with
            Shard.Check.workers = 2;
            max_shard_ands = 64;
            stall_conflicts = 4_000;
            deadline_s = Some 120.;
            transport;
          }
        in
        match Shard.Check.check ~config m with
        | Simsweep.Engine.Proved, _ -> Oracle.V_equivalent
        | Simsweep.Engine.Disproved (cex, po), _ ->
            Oracle.V_inequivalent (cex, po)
        | Simsweep.Engine.Undecided, _ -> Oracle.V_unknown "undecided");
  }

let engines_of config extra_engines =
  Oracle.default_engines ~bdd_node_limit:config.bdd_node_limit
    ~sat_conflict_limit:config.sat_conflict_limit ()
  @ [ shard_engine config.shard_transport ]
  @ extra_engines

(* Shrink a failed miter and persist the repro — shared by the seeded
   stream, the wall-clock soak and the AIGER-directory modes. *)
let record_failure ~log ~engines ~config ~case_id ~descr ~miter failures =
  let shrunk, evals =
    shrink_failure ~engines ~pool:config.pool ~budget:config.cfg.shrink_budget
      ~miter failures
  in
  let repro =
    Report.write ~dir:config.cfg.out_dir ~case_id ~run_seed:config.cfg.seed
      ~descr
      ~failures:(List.map Oracle.failure_token failures)
      ~original:miter ~shrunk
  in
  log
    (Printf.sprintf "repro case %04d: %d -> %d AND nodes (%d shrink evals) -> %s"
       case_id repro.Report.original_ands repro.Report.shrunk_ands evals
       repro.Report.path);
  repro

(* One generated case of the deterministic stream: oracle, log line, and
   (on failure) shrink + repro. *)
let run_case ~log ~engines ~config ~id =
  let cfg = config.cfg in
  let case = Gencase.generate ~run_seed:cfg.seed ~id in
  let certify = cfg.certify_every > 0 && id mod cfg.certify_every = 0 in
  let outcome =
    Oracle.run ~engines ~expected:case.Gencase.expected ~certify
      ~pool:config.pool case.Gencase.miter
  in
  log (Report.case_line ~case ~outcome);
  if outcome.Oracle.failures = [] then None
  else
    Some
      (record_failure ~log ~engines ~config ~case_id:id
         ~descr:case.Gencase.descr ~miter:case.Gencase.miter
         outcome.Oracle.failures)

let run ?(log = null_log) ?(extra_engines = []) ~pool cfg =
  let engines = engines_of cfg extra_engines in
  let config = { cfg; pool } in
  let failed = ref 0 in
  let repros = ref [] in
  for id = 0 to cfg.cases - 1 do
    match run_case ~log ~engines ~config ~id with
    | None -> ()
    | Some repro ->
        incr failed;
        repros := repro :: !repros
  done;
  { cases_run = cfg.cases; failed_cases = !failed; repros = List.rev !repros }

let run_soak ?(log = null_log) ?(progress = null_log) ?(extra_engines = [])
    ~pool ~minutes cfg =
  let engines = engines_of cfg extra_engines in
  let config = { cfg; pool } in
  let start = Unix.gettimeofday () in
  let deadline = start +. (60. *. minutes) in
  let failed = ref 0 in
  let repros = ref [] in
  let id = ref 0 in
  let last_progress = ref start in
  while Unix.gettimeofday () < deadline do
    (match run_case ~log ~engines ~config ~id:!id with
    | None -> ()
    | Some repro ->
        incr failed;
        repros := repro :: !repros);
    incr id;
    let now = Unix.gettimeofday () in
    if now -. !last_progress >= 15. then begin
      last_progress := now;
      progress
        (Printf.sprintf "soak: %d cases, %d failures, %.1f/%.1f minutes" !id
           !failed ((now -. start) /. 60.) minutes)
    end
  done;
  progress
    (Printf.sprintf "soak done: %d cases, %d failures in %.1f minutes" !id
       !failed ((Unix.gettimeofday () -. start) /. 60.));
  { cases_run = !id; failed_cases = !failed; repros = List.rev !repros }

let run_dir ?(log = null_log) ?(extra_engines = []) ~pool ~dir cfg =
  let engines = engines_of cfg extra_engines in
  let config = { cfg; pool } in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           Filename.check_suffix f ".aig" || Filename.check_suffix f ".aag")
    |> List.sort compare
  in
  let checked = ref 0 in
  let failed = ref 0 in
  let repros = ref [] in
  List.iteri
    (fun id file ->
      let path = Filename.concat dir file in
      match Aig.Aiger_io.read_file path with
      | exception e ->
          log (Printf.sprintf "skip %s: %s" path (Printexc.to_string e))
      | miter ->
          incr checked;
          (* No constructed expectation: the file is an opaque miter, so
             the oracle checks cross-engine agreement and CEX replay. *)
          let outcome = Oracle.run ~engines ~pool miter in
          log
            (Printf.sprintf "file %-28s pis=%3d ands=%5d  %s%s" file
               (Aig.Network.num_pis miter)
               (Aig.Network.num_ands miter)
               (String.concat " "
                  (List.map
                     (fun (n, v) ->
                       Printf.sprintf "%s:%s" n (Oracle.verdict_token v))
                     outcome.Oracle.verdicts))
               (if outcome.Oracle.failures = [] then "" else "  FAIL"));
          if outcome.Oracle.failures <> [] then begin
            incr failed;
            repros :=
              record_failure ~log ~engines ~config ~case_id:id
                ~descr:("file:" ^ file) ~miter outcome.Oracle.failures
              :: !repros
          end)
    files;
  { cases_run = !checked; failed_cases = !failed; repros = List.rev !repros }

(* The liar: an engine with a silent miscompare, the exact failure class
   the harness exists to catch. *)
let liar = { Oracle.name = "liar"; run = (fun ~pool:_ _ -> Oracle.V_equivalent) }

(* Broken model reconstruction: a direct per-PO SAT check that runs the
   preprocessor but reads counter-example PI values from the raw search
   model ({!Sat.Solver.model_value_raw}) instead of the reconstructed one.
   When preprocessing eliminates a PI that matters, the CEX is garbage —
   the failure class the oracle's replay stage exists to catch. *)
let badrecon =
  {
    Oracle.name = "badrecon";
    run =
      (fun ~pool:_ m ->
        let solver = Sat.Solver.create () in
        if not (Sat.Cnf.load solver m) then Oracle.V_equivalent
        else begin
          let pos = Aig.Miter.unsolved_outputs m in
          let frozen =
            List.filter_map
              (fun po ->
                let l = Aig.Network.po m po in
                if Aig.Network.is_const (Aig.Lit.node l) then None
                else Some (Sat.Solver.var_of_lit (Sat.Cnf.lit l)))
              pos
          in
          Sat.Solver.simplify ~frozen solver;
          let rec go = function
            | [] -> Oracle.V_equivalent
            | po :: rest -> (
                let l = Aig.Network.po m po in
                if Aig.Network.is_const (Aig.Lit.node l) then
                  if Aig.Lit.is_compl l then go rest
                  else
                    Oracle.V_inequivalent
                      (Array.make (Aig.Network.num_pis m) false, po)
                else
                  match
                    Sat.Solver.solve ~assumptions:[ Sat.Cnf.lit l ]
                      ~conflict_limit:10_000 solver
                  with
                  | Sat.Solver.Unsat -> go rest
                  | Sat.Solver.Unknown -> Oracle.V_unknown "budget"
                  | Sat.Solver.Sat ->
                      let cex =
                        Array.init (Aig.Network.num_pis m) (fun i ->
                            Sat.Solver.model_value_raw solver (Aig.Network.pi m i))
                      in
                      Oracle.V_inequivalent (cex, po))
          in
          go pos
        end);
  }

(* Broken-reconstruction stage: generate injected-fault miters until the
   stub emits a CEX that does not replay (i.e. preprocessing eliminated a
   PI the raw model gets wrong), then check the oracle flags it. *)
let badrecon_stage log ~pool ~seed =
  let rec attempt k =
    if k >= 20 then
      Error
        "self-test: the broken-reconstruction stub never produced an \
         invalid CEX in 20 attempts"
    else
      let rng =
        Sim.Rng.create ~seed:(Int64.add seed (Int64.of_int (7001 + k)))
      in
      let left =
        Gen.Control.random_logic ~pis:12 ~nodes:200 ~pos:4 ~seed:(Sim.Rng.next64 rng)
      in
      let right = Opt.Resyn.light left in
      let _fault, mutant = Gencase.inject rng ~left right in
      let miter = Aig.Miter.build left mutant in
      match badrecon.Oracle.run ~pool miter with
      | Oracle.V_inequivalent (cex, po) when not (Sim.Cex.check miter cex po) ->
          let o = Oracle.run ~engines:[ badrecon ] ~pool miter in
          let flagged =
            List.exists
              (function
                | Oracle.Bad_cex { engine = "badrecon"; _ } -> true
                | _ -> false)
              o.Oracle.failures
          in
          if flagged then begin
            log
              (Printf.sprintf
                 "self-test: broken reconstruction flagged as bad-cex \
                  (attempt %d, PO %d)"
                 (k + 1) po);
            Ok ()
          end
          else
            Error
              "self-test: the broken-reconstruction CEX was NOT flagged by \
               the oracle"
      | _ -> attempt (k + 1)
  in
  attempt 0

(* The word liar: trusts word detection blindly.  It tail-aligns the two
   longest detected ripple-carry chains, merges their sum and carry
   literals position by position WITHOUT proving anything, and declares EQ
   as soon as the merge collapses every PO to a constant — of either
   polarity.  That last shortcut is the planted bug: a PO that collapses
   to constant TRUE is a disproof, not a proof.  On a miter of two
   structurally aligned adders with one negated output it answers
   [V_equivalent] for a genuinely inequivalent pair — the word-level
   analogue of [liar], and exactly the mis-detection class whose absence
   {!Word.Sweep}'s exhaustive re-proving guarantees. *)
let wordliar =
  {
    Oracle.name = "wordliar";
    run =
      (fun ~pool:_ m ->
        let module N = Aig.Network in
        let module L = Aig.Lit in
        let g = N.copy m in
        let d = Word.Detect.run g in
        let chains =
          List.sort
            (fun (a : Word.Detect.chain) b ->
              compare (Array.length b.cells) (Array.length a.cells))
            d.Word.Detect.chains
        in
        match chains with
        | ca :: cb :: _ ->
            let la = Array.length ca.Word.Detect.cells
            and lb = Array.length cb.Word.Detect.cells in
            let n = min la lb in
            let repl = Array.make (N.num_nodes g) None in
            let merge x y =
              let nx = L.node x and ny = L.node y in
              if nx <> ny then begin
                let compl = L.is_compl x <> L.is_compl y in
                let lo, hi = if nx < ny then (nx, ny) else (ny, nx) in
                if N.is_and g hi && repl.(hi) = None then
                  repl.(hi) <- Some (L.make lo compl)
              end
            in
            for k = 0 to n - 1 do
              let cell_a = ca.Word.Detect.cells.(la - n + k)
              and cell_b = cb.Word.Detect.cells.(lb - n + k) in
              merge cell_a.Word.Detect.sum cell_b.Word.Detect.sum;
              merge cell_a.Word.Detect.carry cell_b.Word.Detect.carry
            done;
            let r = Aig.Reduce.apply g ~repl in
            let g' = r.Aig.Reduce.network in
            let all_const = ref true in
            for po = 0 to N.num_pos g' - 1 do
              if not (N.is_const (L.node (N.po g' po))) then all_const := false
            done;
            if !all_const then Oracle.V_equivalent
            else Oracle.V_unknown "merge left non-constant POs"
        | _ -> Oracle.V_unknown "no chains")
  }

(* Fixture for the word-liar stage: two 4-bit ripple adders whose carries
   use different but equivalent forms (majority vs. carry-propagate), so
   the halves do not strash together and detection sees two parallel
   chains; one negated sum output makes the pair inequivalent. *)
let wordliar_pair () =
  let module N = Aig.Network in
  let build form =
    let g = N.create () in
    let a = Array.init 4 (fun _ -> N.add_pi g) in
    let b = Array.init 4 (fun _ -> N.add_pi g) in
    let c = ref Aig.Lit.const_false in
    for i = 0 to 3 do
      N.add_po g (N.add_xor g (N.add_xor g a.(i) b.(i)) !c);
      c :=
        (match form with
        | `Maj ->
            N.add_or g
              (N.add_and g a.(i) b.(i))
              (N.add_or g (N.add_and g a.(i) !c) (N.add_and g b.(i) !c))
        | `Prop ->
            N.add_or g
              (N.add_and g a.(i) b.(i))
              (N.add_and g !c (N.add_xor g a.(i) b.(i))))
    done;
    (* No carry-out PO: the miter's own output-comparator XORs would
       otherwise match as half-adder cells at the chain tails and join the
       chains, and the liar would blindly merge comparator "carries" —
       killing the PO collapse it needs in order to lie. *)
    g
  in
  (build `Maj, build `Prop)

(* Word-liar stage: a mis-detected word boundary that leads an engine to a
   wrong Proved must be flagged.  The liar above really runs word
   detection and really merges what detection reports — only the proof
   step is skipped — so this checks the oracle catches the exact failure
   mode word-level sweeping could introduce. *)
let wordliar_stage log ~pool =
  let left, right = wordliar_pair () in
  let right = Mutate.apply right (Mutate.Negate_po 2) in
  let miter = Aig.Miter.build left right in
  match Brute.check_miter miter with
  | `Equivalent -> Error "self-test: the word-liar miter is unexpectedly equivalent"
  | `Inequivalent _ -> (
      match wordliar.Oracle.run ~pool miter with
      | Oracle.V_equivalent ->
          let o = Oracle.run ~engines:[ wordliar ] ~expected:`Inequivalent ~pool miter in
          let flagged =
            List.exists
              (function
                | Oracle.Wrong_verdict { engine = "wordliar"; _ } -> true
                | _ -> false)
              o.Oracle.failures
          in
          if flagged then begin
            log "self-test: word-liar mis-detection flagged as wrong-verdict";
            Ok ()
          end
          else
            Error "self-test: the word-liar's false Proved was NOT flagged"
      | v ->
          Error
            (Printf.sprintf
               "self-test: the word liar failed to lie (verdict %s) — word \
                detection no longer sees the aligned adder chains"
               (Oracle.verdict_token v)))

(* Race-cancellation stage of the self-test: a deliberately hanging engine
   (it returns only once the shared token fires) races a fast conclusive
   one; the race must return promptly with the fast winner and a recorded
   cancel latency, proving cooperative cancellation actually unwinds a
   stuck racer. *)
let race_cancel_stage log miter =
  let open Simsweep.Portfolio in
  let fast =
    {
      racer_name = "fast";
      racer_run =
        (fun ~cancel ->
          match Sat.Sweep.check_direct ~cancel miter with
          | Sat.Sweep.Equivalent -> `Eq
          | Sat.Sweep.Inequivalent _ -> `Ineq
          | Sat.Sweep.Undecided -> `Unknown);
      racer_conclusive = (fun v -> v <> `Unknown);
    }
  in
  let hang =
    {
      racer_name = "hang";
      racer_run =
        (fun ~cancel ->
          while not (Simsweep.Cancel.poll cancel) do
            Domain.cpu_relax ()
          done;
          raise Simsweep.Cancel.Cancelled);
      racer_conclusive = (fun _ -> false);
    }
  in
  let ro = race [ fast; hang ] in
  match (ro.race_winner, ro.race_cancel_latency) with
  | Some (0, _), Some latency ->
      log
        (Printf.sprintf
           "self-test: race cancelled the hanging engine (%.3fs total, %.3fs \
            cancel latency)"
           ro.race_time latency);
      Ok ()
  | Some (i, _), _ ->
      Error
        (Printf.sprintf
           "self-test: race won by racer %d, expected the fast engine" i)
  | None, _ -> Error "self-test: race with a hanging engine returned no winner"

(* Shard worker-crash stage of the self-test: a worker is SIGKILLed right
   after pulling its first shard; the coordinator must reap it, requeue
   the shard, spawn a replacement and still conclude correctly. *)
let shardkill_stage log ~seed =
  let rng =
    Sim.Rng.create
      ~seed:(Int64.add (Int64.mul seed 0x9E3779B97F4A7C15L) 0x2545F4914F6CDD1DL)
  in
  let left =
    Gen.Control.random_logic ~pis:12 ~nodes:300 ~pos:10 ~seed:(Sim.Rng.next64 rng)
  in
  let right = Opt.Resyn.light left in
  (* Equivalent by construction: resynthesis preserves semantics. *)
  let miter = Aig.Miter.build left right in
  let config =
    {
      Shard.Check.default_config with
      Shard.Check.workers = 2;
      max_shard_ands = 64;
      test_kill_worker = Some 0;
      max_respawns = 2;
      deadline_s = Some 120.;
    }
  in
  let outcome, st = Shard.Check.check ~config miter in
  if st.Shard.Stats.workers_crashed < 1 then
    Error "self-test: shard fault injection did not register a worker crash"
  else
    match outcome with
    | Simsweep.Engine.Proved ->
        log
          (Printf.sprintf
             "self-test: shard survived a worker kill (%d crashed, %d \
              respawned, %d shards)"
             st.Shard.Stats.workers_crashed st.Shard.Stats.respawns
             st.Shard.Stats.shards);
        Ok ()
    | Simsweep.Engine.Disproved _ ->
        Error "self-test: shard disproved an equivalent miter after worker kill"
    | Simsweep.Engine.Undecided ->
        Error "self-test: shard lost the killed worker's shard (undecided)"

(* Shm-fault stage of the self-test: a worker fed corrupted and truncated
   shared-memory descriptors must answer with a framed [Shard_failed] —
   never crash or wedge — and still serve a correct dispatch on the same
   connection afterwards. *)
let shmfault_stage log ~seed =
  let module Pr = Serve.Protocol in
  let rng =
    Sim.Rng.create
      ~seed:(Int64.add (Int64.mul seed 0x9E3779B97F4A7C15L) 0x51AFD2E1L)
  in
  let left =
    Gen.Control.random_logic ~pis:10 ~nodes:200 ~pos:6 ~seed:(Sim.Rng.next64 rng)
  in
  let miter = Aig.Miter.build left (Opt.Resyn.light left) in
  let seg = Shard.Shm.create (Aig.Aiger_io.to_binary_string miter) in
  Fun.protect ~finally:(fun () -> ignore (Shard.Shm.force_unlink seg))
  @@ fun () ->
  let w = Shard.Pool.spawn ~exe:Sys.executable_name ~domains:1 in
  Fun.protect ~finally:(fun () -> Shard.Pool.kill w) @@ fun () ->
  let ic = Shard.Pool.ic w and oc = Shard.Pool.oc w in
  let send task =
    let hdr, payload = Pr.shard_task_to_frame task in
    Pr.write_frame ~payload oc hdr
  in
  let recv what =
    match Pr.read_frame ic with
    | Error e ->
        Error (Printf.sprintf "self-test: shm fault (%s): frame error: %s" what e)
    | Ok inc -> (
        match Pr.shard_reply_of_frame inc with
        | Error e ->
            Error
              (Printf.sprintf "self-test: shm fault (%s): bad reply: %s" what e)
        | Ok r -> Ok r)
  in
  let check_task ~aiger = Pr.Shard_check
      {
        run = 0;
        shard = 0;
        aiger;
        stall_conflicts = 10_000;
        split_vars = 12;
        direct_sat = false;
        deadline_in = Some 60.;
      }
  in
  let ( let* ) = Result.bind in
  let* () =
    match recv "startup" with
    | Ok Pr.Shard_ready -> Ok ()
    | Ok _ -> Error "self-test: shm fault: worker did not announce ready"
    | Error e -> Error e
  in
  let expect_failed what ~seg ~off ~len =
    send (check_task ~aiger:(Pr.Shm_ref { seg; off; len }));
    match recv what with
    | Ok (Pr.Shard_failed { msg; _ }) ->
        log (Printf.sprintf "self-test: shm fault (%s) -> framed failure: %s" what msg);
        Ok ()
    | Ok _ ->
        Error
          (Printf.sprintf
             "self-test: shm fault (%s): worker answered with a verdict \
              instead of Shard_failed"
             what)
    | Error e -> Error e
  in
  (* Truncated: range runs past the end of the real segment. *)
  let* () =
    expect_failed "truncated descriptor" ~seg:(Shard.Shm.name seg) ~off:0
      ~len:(Shard.Shm.length seg + 4096)
  in
  (* Corrupted: a name that is not one of ours (path traversal attempt). *)
  let* () = expect_failed "corrupt name" ~seg:"../../etc/passwd" ~off:0 ~len:64 in
  (* The same connection must still be serviceable. *)
  send
    (check_task
       ~aiger:
         (Pr.Shm_ref
            { seg = Shard.Shm.name seg; off = 0; len = Shard.Shm.length seg }));
  match recv "valid descriptor" with
  | Ok (Pr.Shard_verdict { verdict = Pr.Sv_proved; _ }) ->
      log "self-test: shm fault stage OK (worker survived and then proved)";
      Ok ()
  | Ok _ ->
      Error
        "self-test: shm fault: worker failed the valid dispatch after \
         surviving the corrupt ones"
  | Error e -> Error e

let self_test ?(log = null_log) ~pool ~out_dir ~seed () =
  let rng =
    Sim.Rng.create ~seed:(Int64.add (Int64.mul seed 0x2545F4914F6CDD1DL) 0x9E3779B97F4A7C15L)
  in
  (* A mutant big enough that the <= 20% shrink target is meaningful. *)
  let left =
    Gen.Control.random_logic ~pis:10 ~nodes:260 ~pos:8 ~seed:(Sim.Rng.next64 rng)
  in
  let right = Opt.Resyn.light left in
  let fault, mutant = Gencase.inject rng ~left right in
  let miter = Aig.Miter.build left mutant in
  let original_ands = Aig.Network.num_ands miter in
  log
    (Printf.sprintf "self-test: injected %s into a %d-AND miter"
       (Mutate.describe fault) original_ands);
  let engines = Oracle.default_engines () @ [ liar ] in
  let outcome = Oracle.run ~engines ~pool miter in
  let liar_caught =
    List.exists
      (function
        | Oracle.Disagreement { equiv; inequiv = _ } -> List.mem "liar" equiv
        | _ -> false)
      outcome.Oracle.failures
  in
  if not liar_caught then
    Error "self-test: the injected silent miscompare was NOT flagged by the oracle"
  else begin
    log "self-test: miscompare flagged; shrinking";
    (* The disagreement persists exactly while the miter stays
       inequivalent: the liar always says EQ, brute says INEQ. *)
    let brute_and_liar =
      List.filter (fun e -> e.Oracle.name = "brute") engines @ [ liar ]
    in
    let fails g =
      let o = Oracle.run ~engines:brute_and_liar ~pool g in
      List.exists (function Oracle.Disagreement _ -> true | _ -> false) o.Oracle.failures
    in
    let shrunk, evals = Shrink.shrink ~budget:600 ~fails miter in
    let shrunk_ands = Aig.Network.num_ands shrunk in
    log
      (Printf.sprintf "self-test: shrunk %d -> %d AND nodes (%d evals)" original_ands
         shrunk_ands evals);
    if shrunk_ands * 5 > original_ands then
      Error
        (Printf.sprintf
           "self-test: shrinker left %d of %d AND nodes (> 20%% of the original)"
           shrunk_ands original_ands)
    else begin
      let repro =
        Report.write ~dir:out_dir ~case_id:0 ~run_seed:seed ~descr:"self-test"
          ~failures:(List.map Oracle.failure_token outcome.Oracle.failures)
          ~original:miter ~shrunk
      in
      (* The written artifact must reproduce the disagreement on its own. *)
      let reread = Aig.Aiger_io.read_file repro.Report.path in
      let replay = Oracle.run ~engines ~pool reread in
      let reproduces =
        List.exists
          (function
            | Oracle.Disagreement { equiv; _ } -> List.mem "liar" equiv
            | _ -> false)
          replay.Oracle.failures
      in
      if not reproduces then
        Error "self-test: the shrunk AIGER file does not reproduce the disagreement"
      else
        match race_cancel_stage log miter with
        | Error e -> Error e
        | Ok () -> (
            match badrecon_stage log ~pool ~seed with
            | Error e -> Error e
            | Ok () -> (
                match wordliar_stage log ~pool with
                | Error e -> Error e
                | Ok () -> (
                    match shardkill_stage log ~seed with
                    | Error e -> Error e
                    | Ok () -> (
                        match shmfault_stage log ~seed with
                        | Error e -> Error e
                        | Ok () ->
                            log
                              (Printf.sprintf "self-test: OK (repro %s)"
                                 repro.Report.path);
                            Ok repro))))
    end
  end
