(** Delta-debugging shrinker for failing miters.

    Reduction moves: drop POs, re-extract the cone of the kept outputs
    (via {!Aig.Cone.tfi}), and forward internal AND nodes to a fanin or a
    constant — each candidate accepted only when it is strictly smaller
    {e and} the failure predicate still holds, so the final network still
    reproduces the original disagreement. *)

(** [shrink ?budget ~fails g] returns the reduced network together with
    the number of predicate evaluations spent.  [budget] (default 400)
    bounds predicate calls — the predicate typically re-runs the whole
    differential oracle, which dominates the cost.  When [fails g] is
    already false the input is returned unchanged. *)
val shrink :
  ?budget:int ->
  fails:(Aig.Network.t -> bool) ->
  Aig.Network.t ->
  Aig.Network.t * int
