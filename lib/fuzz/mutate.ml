type fault =
  | Flip_fanin of { node : int; right : bool }
  | Swap_fanin of { node : int; donor : Aig.Lit.t }
  | Stuck_fanin of { node : int; right : bool; value : bool }
  | Stuck_node of { node : int; value : bool }
  | Negate_po of int

let describe = function
  | Flip_fanin { node; right } ->
      Printf.sprintf "flip@%d.%s" node (if right then "r" else "l")
  | Swap_fanin { node; donor } ->
      Printf.sprintf "swap@%d<-%s%d" node
        (if Aig.Lit.is_compl donor then "!" else "")
        (Aig.Lit.node donor)
  | Stuck_fanin { node; right; value } ->
      Printf.sprintf "stuck@%d.%s=%d" node (if right then "r" else "l") (Bool.to_int value)
  | Stuck_node { node; value } -> Printf.sprintf "stuck@%d=%d" node (Bool.to_int value)
  | Negate_po po -> Printf.sprintf "negpo@%d" po

let const b = if b then Aig.Lit.const_true else Aig.Lit.const_false

let apply g fault =
  match fault with
  | Negate_po po ->
      let h = Aig.Network.copy g in
      Aig.Network.set_po h po (Aig.Lit.neg (Aig.Network.po h po));
      h
  | Stuck_node { node; value } -> Surgery.substitute g ~node ~by:(const value)
  | _ ->
      let edit_of n =
        match fault with
        | Flip_fanin { node; right } when n = node ->
            let f0 = Aig.Network.fanin0 g n and f1 = Aig.Network.fanin1 g n in
            if right then Surgery.Set_fanins (f0, Aig.Lit.neg f1)
            else Surgery.Set_fanins (Aig.Lit.neg f0, f1)
        | Swap_fanin { node; donor } when n = node ->
            Surgery.Set_fanins (donor, Aig.Network.fanin1 g n)
        | Stuck_fanin { node; right; value } when n = node ->
            let f0 = Aig.Network.fanin0 g n and f1 = Aig.Network.fanin1 g n in
            if right then Surgery.Set_fanins (f0, const value)
            else Surgery.Set_fanins (const value, f1)
        | _ -> Surgery.Keep
      in
      Surgery.rewrite g ~edit_of

let and_nodes g =
  let acc = ref [] in
  Aig.Network.iter_ands g (fun n -> acc := n :: !acc);
  Array.of_list (List.rev !acc)

let random_fault rng g =
  let ands = and_nodes g in
  if Array.length ands = 0 then
    if Aig.Network.num_pos g = 0 then None
    else Some (Negate_po (Sim.Rng.int rng (Aig.Network.num_pos g)))
  else begin
    let node = ands.(Sim.Rng.int rng (Array.length ands)) in
    match Sim.Rng.int rng 4 with
    | 0 -> Some (Flip_fanin { node; right = Sim.Rng.bool rng })
    | 1 ->
        (* Donor: any strictly older non-constant node keeps the rebuild
           acyclic; complemented half the time. *)
        let donor_node = 1 + Sim.Rng.int rng (node - 1) in
        Some (Swap_fanin { node; donor = Aig.Lit.make donor_node (Sim.Rng.bool rng) })
    | 2 -> Some (Stuck_fanin { node; right = Sim.Rng.bool rng; value = Sim.Rng.bool rng })
    | _ -> Some (Stuck_node { node; value = Sim.Rng.bool rng })
  end
