type kind =
  | Equiv_pair  (** left vs optimisation pipeline of left *)
  | Identical  (** left vs a plain copy — the trivial strashed miter *)
  | Mutant of Mutate.fault  (** pipeline output with an injected fault *)

type t = {
  id : int;
  run_seed : int64;
  descr : string;
  kind : kind;
  expected : [ `Equivalent | `Inequivalent ];
  left : Aig.Network.t;
  right : Aig.Network.t;
  miter : Aig.Network.t;
}

(* Per-case rng, decorrelated from the run seed with SplitMix's golden
   constant so case [i] is independent of how many cases precede it. *)
let case_rng ~run_seed ~id =
  Sim.Rng.create
    ~seed:
      (Int64.add
         (Int64.mul run_seed 0x9E3779B97F4A7C15L)
         (Int64.mul (Int64.of_int (id + 1)) 0xBF58476D1CE4E5B9L))

let base_circuit rng =
  match Sim.Rng.int rng 8 with
  | 0 | 1 | 2 ->
      let pis = 4 + Sim.Rng.int rng 9 in
      let nodes = 20 + Sim.Rng.int rng 120 in
      let pos = 1 + Sim.Rng.int rng 6 in
      ( Printf.sprintf "rand%d.%d.%d" pis nodes pos,
        Gen.Control.random_logic ~pis ~nodes ~pos ~seed:(Sim.Rng.next64 rng) )
  | 3 ->
      let bits = 2 + Sim.Rng.int rng 5 in
      (Printf.sprintf "adder%d" bits, Gen.Arith.adder ~bits)
  | 4 ->
      let bits = 2 + Sim.Rng.int rng 4 in
      (Printf.sprintf "mult%d" bits, Gen.Arith.multiplier ~bits)
  | 5 ->
      let bits = 2 + Sim.Rng.int rng 5 in
      (Printf.sprintf "square%d" bits, Gen.Arith.square ~bits)
  | 6 ->
      let n = 5 + (2 * Sim.Rng.int rng 5) in
      (Printf.sprintf "voter%d" n, Gen.Control.voter ~n)
  | _ ->
      let bits = 2 + Sim.Rng.int rng 3 in
      (Printf.sprintf "alu%d" bits, Gen.Alu.alu ~bits)

let passes =
  [|
    ("bal", Opt.Balance.run);
    ("rw", Opt.Rewrite.run);
    ("rf", fun g -> Opt.Refactor.run g);
    ("xf", Opt.Xorflip.run);
    ("light", Opt.Resyn.light);
  |]

let pipeline rng g =
  if Sim.Rng.int rng 8 = 0 then ("resyn2", Opt.Resyn.resyn2 g)
  else begin
    let len = 1 + Sim.Rng.int rng 3 in
    let names = ref [] in
    let cur = ref g in
    for _ = 1 to len do
      let name, pass = passes.(Sim.Rng.int rng (Array.length passes)) in
      names := name :: !names;
      cur := pass !cur
    done;
    (String.concat "," (List.rev !names), !cur)
  end

(* Inject a fault that demonstrably changes the function (brute-verified);
   masked faults are re-drawn.  Falls back to a PO negation, which always
   changes the function of a non-degenerate output. *)
let inject rng ~left right =
  let rec try_faults tries =
    if tries = 0 then None
    else
      match Mutate.random_fault rng right with
      | None -> None
      | Some fault ->
          let mutant = Mutate.apply right fault in
          if Brute.equivalent left mutant then try_faults (tries - 1)
          else Some (fault, mutant)
  in
  match try_faults 16 with
  | Some fm -> fm
  | None ->
      let po = Sim.Rng.int rng (Aig.Network.num_pos right) in
      let fault = Mutate.Negate_po po in
      (fault, Mutate.apply right fault)

let generate ~run_seed ~id =
  let rng = case_rng ~run_seed ~id in
  let base_name, left = base_circuit rng in
  let roll = Sim.Rng.int rng 10 in
  if roll = 0 then begin
    let right = Aig.Network.copy left in
    let miter = Aig.Miter.build left right in
    {
      id; run_seed; kind = Identical; expected = `Equivalent;
      descr = base_name ^ "|copy"; left; right; miter;
    }
  end
  else begin
    let pipe_name, right = pipeline rng left in
    if roll <= 6 then
      {
        id; run_seed; kind = Equiv_pair; expected = `Equivalent;
        descr = Printf.sprintf "%s|%s" base_name pipe_name;
        left; right;
        miter = Aig.Miter.build left right;
      }
    else begin
      let fault, mutant = inject rng ~left right in
      {
        id; run_seed; kind = Mutant fault; expected = `Inequivalent;
        descr = Printf.sprintf "%s|%s|%s" base_name pipe_name (Mutate.describe fault);
        left; right = mutant;
        miter = Aig.Miter.build left mutant;
      }
    end
  end
