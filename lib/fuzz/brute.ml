let max_pis = 16

let supported g = Aig.Network.num_pis g <= max_pis

(* Bit-parallel exhaustive simulation: all [2^n] assignments are packed
   into [max 1 (2^n / 64)] words per node, truth-table style (global
   pattern index [m] assigns bit [i] of [m] to PI [i]). *)
let simulate g =
  let n = Aig.Network.num_pis g in
  if n > max_pis then invalid_arg "Brute: too many PIs";
  let patterns = 1 lsl n in
  let words = max 1 (patterns / 64) in
  let mask =
    if patterns >= 64 then -1L else Int64.sub (Int64.shift_left 1L patterns) 1L
  in
  let tab = Array.make_matrix (Aig.Network.num_nodes g) words 0L in
  (* Variable words: bit (w*64+b) of var i is ((w*64+b) lsr i) land 1. *)
  let var_word i w =
    if i < 6 then begin
      (* Repeating pattern within a word, independent of w. *)
      let period = 1 lsl (i + 1) in
      let chunk = 1 lsl i in
      let v = ref 0L in
      for b = 0 to 63 do
        if b mod period >= chunk then v := Int64.logor !v (Int64.shift_left 1L b)
      done;
      !v
    end
    else if (w lsr (i - 6)) land 1 = 1 then -1L
    else 0L
  in
  Aig.Network.iter_nodes g (fun nd ->
      if Aig.Network.is_pi g nd then begin
        let i = Aig.Network.pi_index g nd in
        for w = 0 to words - 1 do
          tab.(nd).(w) <- Int64.logand (var_word i w) mask
        done
      end
      else if Aig.Network.is_and g nd then begin
        let f0 = Aig.Network.fanin0 g nd and f1 = Aig.Network.fanin1 g nd in
        let r0 = tab.(Aig.Lit.node f0) and r1 = tab.(Aig.Lit.node f1) in
        let c0 = Aig.Lit.is_compl f0 and c1 = Aig.Lit.is_compl f1 in
        for w = 0 to words - 1 do
          let a = if c0 then Int64.lognot r0.(w) else r0.(w) in
          let b = if c1 then Int64.lognot r1.(w) else r1.(w) in
          tab.(nd).(w) <- Int64.logand mask (Int64.logand a b)
        done
      end);
  (tab, words, mask)

let lit_words tab mask l =
  let r = tab.(Aig.Lit.node l) in
  if Aig.Lit.is_compl l then Array.map (fun w -> Int64.logand mask (Int64.lognot w)) r
  else r

let ctz64 = Bv.Bits.ctz64

let cex_of_index g idx =
  Array.init (Aig.Network.num_pis g) (fun i -> (idx lsr i) land 1 = 1)

let check_miter g =
  let tab, words, mask = simulate g in
  let hit = ref None in
  let npos = Aig.Network.num_pos g in
  (* Deterministic first hit: lowest PO index, then lowest pattern. *)
  for po = npos - 1 downto 0 do
    let r = lit_words tab mask (Aig.Network.po g po) in
    let w = ref 0 in
    let found = ref None in
    while !found = None && !w < words do
      if r.(!w) <> 0L then found := Some ((!w * 64) + ctz64 r.(!w));
      incr w
    done;
    match !found with Some idx -> hit := Some (po, idx) | None -> ()
  done;
  match !hit with
  | None -> `Equivalent
  | Some (po, idx) -> `Inequivalent (cex_of_index g idx, po)

let equivalent g1 g2 =
  match check_miter (Aig.Miter.build g1 g2) with
  | `Equivalent -> true
  | `Inequivalent _ -> false
