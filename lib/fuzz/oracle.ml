type verdict =
  | V_equivalent
  | V_inequivalent of Sim.Cex.t * int
  | V_unknown of string

let verdict_token = function
  | V_equivalent -> "EQ"
  | V_inequivalent _ -> "INEQ"
  | V_unknown _ -> "?"

type engine = {
  name : string;
  run : pool:Par.Pool.t -> Aig.Network.t -> verdict;
}

let of_engine_outcome = function
  | Simsweep.Engine.Proved -> V_equivalent
  | Simsweep.Engine.Disproved (cex, po) -> V_inequivalent (cex, po)
  | Simsweep.Engine.Undecided -> V_unknown "undecided"

let of_sat_outcome = function
  | Sat.Sweep.Equivalent -> V_equivalent
  | Sat.Sweep.Inequivalent (cex, po) -> V_inequivalent (cex, po)
  | Sat.Sweep.Undecided -> V_unknown "undecided"

let default_engines ?(bdd_node_limit = 200_000) ?(sat_conflict_limit = 10_000) () =
  [
    {
      name = "brute";
      run =
        (fun ~pool:_ m ->
          if not (Brute.supported m) then V_unknown "too many PIs"
          else
            match Brute.check_miter m with
            | `Equivalent -> V_equivalent
            | `Inequivalent (cex, po) -> V_inequivalent (cex, po));
    };
    {
      name = "sim";
      run =
        (fun ~pool m ->
          let r = Simsweep.Engine.run ~config:Simsweep.Config.scaled ~pool m in
          of_engine_outcome r.Simsweep.Engine.outcome);
    };
    {
      name = "combined";
      run =
        (fun ~pool m ->
          let c =
            Simsweep.Engine.check_with_fallback ~config:Simsweep.Config.scaled
              ~transfer_classes:true ~pool m
          in
          of_engine_outcome c.Simsweep.Engine.final);
    };
    {
      (* Word-level hybrid sweeping: every merge it applies was detected
         structurally, so a detection bug that survived its exhaustive
         re-proving shows up here as a disagreement. *)
      name = "wordsweep";
      run =
        (fun ~pool m ->
          of_engine_outcome
            (fst (Word.Sweep.check ~config:Simsweep.Config.scaled ~pool m)));
    };
    {
      name = "satsweep";
      run = (fun ~pool m -> of_sat_outcome (fst (Sat.Sweep.check ~pool m)));
    };
    {
      name = "satdirect";
      run =
        (fun ~pool:_ m ->
          of_sat_outcome (Sat.Sweep.check_direct ~conflict_limit:sat_conflict_limit m));
    };
    {
      (* Same check with preprocessing off: cross-checks that BVE /
         subsumption / XOR-Gauss / probing never flip a verdict, and that
         reconstructed counter-examples replay (stage 1 validates every
         CEX against the miter). *)
      name = "satdirect-nosimp";
      run =
        (fun ~pool:_ m ->
          of_sat_outcome
            (Sat.Sweep.check_direct ~simplify:false
               ~conflict_limit:sat_conflict_limit m));
    };
    {
      name = "bdd";
      run =
        (fun ~pool:_ m ->
          match Bdd.check ~node_limit:bdd_node_limit m with
          | `Equivalent -> V_equivalent
          | `Inequivalent (cex, po) -> V_inequivalent (cex, po)
          | `Node_limit -> V_unknown "node limit"
          | `Timeout -> V_unknown "timeout");
    };
    {
      name = "portfolio";
      run =
        (fun ~pool m ->
          let r = Simsweep.Portfolio.check ~pool m in
          of_engine_outcome r.Simsweep.Portfolio.outcome);
    };
    {
      (* The racing portfolio is its own oracle member: any scheduling bug
         that lets cancellation corrupt a verdict shows up as a
         disagreement with the sequential engines (degrades to the
         sequential portfolio on machines without spare cores). *)
      name = "race";
      run =
        (fun ~pool m ->
          let r = Simsweep.Portfolio.check ~mode:`Race ~pool m in
          of_engine_outcome r.Simsweep.Portfolio.outcome);
    };
  ]

type failure =
  | Disagreement of { equiv : string list; inequiv : string list }
  | Bad_cex of { engine : string; po : int }
  | Wrong_verdict of { engine : string; verdict : verdict }
  | Bad_certificate of string

let failure_token = function
  | Disagreement { equiv; inequiv } ->
      Printf.sprintf "disagreement[EQ:%s|INEQ:%s]" (String.concat "," equiv)
        (String.concat "," inequiv)
  | Bad_cex { engine; po } -> Printf.sprintf "bad-cex[%s@po%d]" engine po
  | Wrong_verdict { engine; verdict } ->
      Printf.sprintf "wrong-verdict[%s=%s]" engine (verdict_token verdict)
  | Bad_certificate msg -> Printf.sprintf "bad-certificate[%s]" msg

(* Same failure mode, for checking that a shrunk miter still reproduces
   the original disagreement.  CEX patterns, PO indices and bystander
   verdicts shift as the miter shrinks, so a disagreement only needs a
   shared witness on each side of the split. *)
let inter a b = List.exists (fun x -> List.mem x b) a

let similar a b =
  match (a, b) with
  | Disagreement a, Disagreement b -> inter a.equiv b.equiv && inter a.inequiv b.inequiv
  | Bad_cex a, Bad_cex b -> a.engine = b.engine
  | Wrong_verdict a, Wrong_verdict b -> a.engine = b.engine
  | Bad_certificate _, Bad_certificate _ -> true
  | _ -> false

type outcome = {
  verdicts : (string * verdict) list;  (** in engine order — deterministic *)
  failures : failure list;
}

let certificate_failure ~pool m =
  let run, cert = Simsweep.Certificate.generate ~config:Simsweep.Config.scaled ~pool m in
  match run.Simsweep.Engine.outcome with
  | Simsweep.Engine.Proved when not cert.Simsweep.Certificate.claims_proved ->
      Some (Bad_certificate "proved run yielded a non-proving certificate")
  | Simsweep.Engine.Proved -> (
      match Simsweep.Certificate.validate m cert with
      | Error e -> Some (Bad_certificate e)
      | Ok replayed ->
          if Aig.Miter.solved replayed then None
          else Some (Bad_certificate "replayed miter not fully solved"))
  | _ -> None

let run ?engines ?expected ?(certify = false) ~pool miter =
  let engines = match engines with Some e -> e | None -> default_engines () in
  let verdicts = List.map (fun e -> (e.name, e.run ~pool miter)) engines in
  let failures = ref [] in
  let add f = failures := f :: !failures in
  (* 1. Every claimed counter-example must replay on the miter. *)
  let valid_cex = Hashtbl.create 8 in
  List.iter
    (fun (name, v) ->
      match v with
      | V_inequivalent (cex, po) ->
          if
            po >= 0
            && po < Aig.Network.num_pos miter
            && Array.length cex = Aig.Network.num_pis miter
            && Sim.Cex.check miter cex po
          then Hashtbl.replace valid_cex name ()
          else add (Bad_cex { engine = name; po })
      | _ -> ())
    verdicts;
  (* 2. Conclusive verdicts must agree with each other... *)
  let equiv =
    List.filter_map (fun (n, v) -> if v = V_equivalent then Some n else None) verdicts
  in
  let inequiv =
    List.filter_map
      (fun (n, v) ->
        match v with
        | V_inequivalent _ when Hashtbl.mem valid_cex n -> Some n
        | _ -> None)
      verdicts
  in
  if equiv <> [] && inequiv <> [] then add (Disagreement { equiv; inequiv });
  (* 3. ... and with the constructed expectation, when given. *)
  (match expected with
  | None -> ()
  | Some exp ->
      List.iter
        (fun (name, v) ->
          match (exp, v) with
          | `Equivalent, V_inequivalent _ when Hashtbl.mem valid_cex name ->
              add (Wrong_verdict { engine = name; verdict = v })
          | `Inequivalent, V_equivalent ->
              add (Wrong_verdict { engine = name; verdict = v })
          | _ -> ())
        verdicts);
  (* 4. A proof must survive independent certificate replay. *)
  if certify && List.mem "sim" equiv then
    Option.iter add (certificate_failure ~pool miter);
  { verdicts; failures = List.rev !failures }
