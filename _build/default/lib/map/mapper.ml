type lut = { root : int; inputs : int array; tt : Bv.Tt.t }

type mapping = {
  luts : lut list;
  outputs : Aig.Lit.t array;
  num_pis : int;
  depth : int;
  pi_nodes : int array;  (* original PI node ids, in input order *)
}

(* Cut arrival time: one LUT level above the latest input. *)
let cut_arrival arrival cut =
  1 + Array.fold_left (fun acc i -> max acc arrival.(i)) 0 cut

let cut_area_flow aflow cut =
  Array.fold_left (fun acc i -> acc +. aflow.(i)) 1. cut

(* Candidate cuts of [n] from the priority sets of its fanins (Eq. 1 with
   the mapper's own ranking). *)
let candidates g ~k prio n =
  let f0 = Aig.Network.fanin0 g n and f1 = Aig.Network.fanin1 g n in
  let n0 = Aig.Lit.node f0 and n1 = Aig.Lit.node f1 in
  let set0 = Cuts.Cut.trivial n0 :: prio.(n0) in
  let set1 = Cuts.Cut.trivial n1 :: prio.(n1) in
  let acc = ref [] in
  List.iter
    (fun u ->
      List.iter
        (fun v ->
          match Cuts.Cut.merge ~cap:k u v with
          | Some c -> acc := c :: !acc
          | None -> ())
        set1)
    set0;
  List.sort_uniq Cuts.Cut.compare !acc

let select ~c ~score cuts =
  let ranked = List.map (fun cut -> (score cut, cut)) cuts in
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) ranked in
  List.filteri (fun i _ -> i < c) (List.map snd sorted)

let map ?(k = 6) g =
  if k < 2 || k > 8 then invalid_arg "Mapper.map: k must be in [2, 8]";
  let n = Aig.Network.num_nodes g in
  let refs = Aig.Network.fanout_counts g in
  let prio = Array.make n [] in
  let best_cut = Array.make n [||] in
  let arrival = Array.make n 0 in
  let aflow = Array.make n 0. in
  let keep = 8 in
  (* Pass 1: depth-optimal choice, area flow as tie-breaker. *)
  Aig.Network.iter_ands g (fun id ->
      let cand = candidates g ~k prio id in
      let score cut =
        ( cut_arrival arrival cut,
          cut_area_flow aflow cut,
          Cuts.Cut.size cut )
      in
      let chosen = select ~c:keep ~score cand in
      prio.(id) <- chosen;
      let best = List.hd chosen in
      best_cut.(id) <- best;
      arrival.(id) <- cut_arrival arrival best;
      aflow.(id) <- cut_area_flow aflow best /. float_of_int (max 1 refs.(id)));
  (* Required times from the POs. *)
  let depth =
    Array.fold_left
      (fun acc l -> max acc arrival.(Aig.Lit.node l))
      0 (Aig.Network.pos g)
  in
  let req = Array.make n max_int in
  Array.iter
    (fun l ->
      let d = Aig.Lit.node l in
      if d > 0 then req.(d) <- min req.(d) depth)
    (Aig.Network.pos g);
  for id = n - 1 downto 1 do
    if Aig.Network.is_and g id && req.(id) < max_int then
      Array.iter
        (fun i -> req.(i) <- min req.(i) (req.(id) - 1))
        best_cut.(id)
  done;
  (* Pass 2: area recovery — among the stored priority cuts, pick the
     cheapest one that still meets the node's required time. *)
  Aig.Network.iter_ands g (fun id ->
      let feasible =
        List.filter (fun cut -> cut_arrival arrival cut <= req.(id)) prio.(id)
      in
      let pick =
        match feasible with
        | [] -> best_cut.(id)
        | _ ->
            List.fold_left
              (fun best cut ->
                if
                  compare
                    (cut_area_flow aflow cut, cut_arrival arrival cut)
                    (cut_area_flow aflow best, cut_arrival arrival best)
                  < 0
                then cut
                else best)
              (List.hd feasible) (List.tl feasible)
      in
      best_cut.(id) <- pick;
      arrival.(id) <- cut_arrival arrival pick;
      aflow.(id) <- cut_area_flow aflow pick /. float_of_int (max 1 refs.(id)));
  (* Cover extraction from the POs. *)
  let in_cover = Array.make n false in
  let stack = ref [] in
  let visit id =
    if Aig.Network.is_and g id && not in_cover.(id) then begin
      in_cover.(id) <- true;
      stack := id :: !stack
    end
  in
  Array.iter (fun l -> visit (Aig.Lit.node l)) (Aig.Network.pos g);
  let rec drain () =
    match !stack with
    | [] -> ()
    | id :: rest ->
        stack := rest;
        Array.iter visit best_cut.(id);
        drain ()
  in
  drain ();
  let luts = ref [] in
  (* Increasing id = topological order. *)
  Aig.Network.iter_ands g (fun id ->
      if in_cover.(id) then begin
        let inputs = best_cut.(id) in
        match Opt.Conetv.cone_tt g ~inputs ~root:id with
        | Some tt -> luts := { root = id; inputs; tt } :: !luts
        | None -> assert false (* priority cuts always bound their root *)
      end);
  let depth =
    Array.fold_left
      (fun acc l -> max acc arrival.(Aig.Lit.node l))
      0 (Aig.Network.pos g)
  in
  {
    luts = List.rev !luts;
    outputs = Aig.Network.pos g;
    num_pis = Aig.Network.num_pis g;
    depth;
    pi_nodes = Array.init (Aig.Network.num_pis g) (fun i -> Aig.Network.pi g i);
  }

let lut_count m = List.length m.luts

let input_histogram m =
  let h = Array.make 9 0 in
  List.iter
    (fun l ->
      let k = Array.length l.inputs in
      h.(k) <- h.(k) + 1)
    m.luts;
  h

let to_network m =
  let ng = Aig.Network.create () in
  let lit_of = Hashtbl.create 256 in
  Hashtbl.replace lit_of 0 Aig.Lit.const_false;
  Array.iter (fun p -> Hashtbl.replace lit_of p (Aig.Network.add_pi ng)) m.pi_nodes;
  List.iter
    (fun l ->
      let input_lits = Array.map (fun i -> Hashtbl.find lit_of i) l.inputs in
      let form = Bv.Sop.factor (Bv.Isop.isop l.tt) in
      Hashtbl.replace lit_of l.root (Opt.Conetv.build_form ng form input_lits))
    m.luts;
  Array.iter
    (fun l ->
      let base = Hashtbl.find lit_of (Aig.Lit.node l) in
      Aig.Network.add_po ng (Aig.Lit.xor_compl base (Aig.Lit.is_compl l)))
    m.outputs;
  (Aig.Reduce.sweep ng).Aig.Reduce.network
