lib/map/mapper.ml: Aig Array Bv Cuts Hashtbl List Opt
