lib/map/mapper.mli: Aig Bv
