(** Priority-cut k-LUT technology mapping.

    The cut machinery of the CEC engine descends from LUT mapping (priority
    cuts, Mishchenko et al.; FineMap); this module closes the loop: it maps
    an AIG into k-input LUTs with a depth-optimal first pass and an
    area-recovery pass, and can resynthesise the mapped netlist back into
    an AIG — post-mapping equivalence checking being the bread-and-butter
    industrial CEC workload, the pair (original, [to_network (map g)])
    makes an excellent realistic miter. *)

type lut = {
  root : int;  (** AIG node implemented by this LUT *)
  inputs : int array;  (** AIG node ids of the LUT's inputs (the cut) *)
  tt : Bv.Tt.t;  (** local function of [root] in terms of [inputs] *)
}

type mapping = {
  luts : lut list;  (** topological order (inputs precede users) *)
  outputs : Aig.Lit.t array;  (** original PO literals *)
  num_pis : int;
  depth : int;  (** LUT levels on the critical path *)
  pi_nodes : int array;  (** source-AIG node ids of the PIs, in input order *)
}

(** [map ?k g] maps the network into LUTs of at most [k] (2–8, default 6)
    inputs. *)
val map : ?k:int -> Aig.Network.t -> mapping

val lut_count : mapping -> int

(** Histogram of LUT input counts, index [i] = LUTs with [i] inputs. *)
val input_histogram : mapping -> int array

(** Resynthesise the mapped netlist into a fresh AIG (each LUT becomes the
    factored ISOP of its function) — functionally equivalent to the mapped
    network's source by construction, structurally very different. *)
val to_network : mapping -> Aig.Network.t
