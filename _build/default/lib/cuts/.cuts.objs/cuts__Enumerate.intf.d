lib/cuts/enumerate.mli: Aig Criteria Cut
