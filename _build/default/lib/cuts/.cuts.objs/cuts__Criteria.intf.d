lib/cuts/criteria.mli: Cut
