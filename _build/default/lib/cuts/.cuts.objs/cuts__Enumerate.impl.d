lib/cuts/enumerate.ml: Aig Array Criteria Cut List
