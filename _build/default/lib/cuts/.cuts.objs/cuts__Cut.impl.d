lib/cuts/cut.ml: Aig Array List Stdlib
