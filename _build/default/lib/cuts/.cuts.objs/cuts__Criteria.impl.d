lib/cuts/criteria.ml: Array
