lib/cuts/cut.mli: Aig
