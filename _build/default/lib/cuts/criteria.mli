(** Cut-selection criteria (paper Table I).

    Three passes rank candidate cuts by different priorities, increasing
    the diversity of the cuts tried in local function checking:

    {v
    Pass | Main metric  | Tie-breaker 1 | Tie-breaker 2
    1    | fanout       | cut size      | small level
    2    | small level  | cut size      | fanout
    3    | large level  | cut size      | fanout
    v}

    High average fanout of cut nodes is preferred (Kuehlmann's cutpoint
    heuristic), small cut size always, and level direction depends on the
    pass. *)

type pass = Fanout_first | Small_level_first | Large_level_first

(** The three passes in Table I order. *)
val table1 : pass list

type metrics = {
  fanout : float;  (** average fanout count of the cut nodes *)
  size : int;
  level : float;  (** average structural level of the cut nodes *)
}

val metrics : fanouts:int array -> levels:int array -> Cut.t -> metrics

(** [compare_metrics pass a b] orders better cuts first. *)
val compare_metrics : pass -> metrics -> metrics -> int
