type pass = Fanout_first | Small_level_first | Large_level_first

let table1 = [ Fanout_first; Small_level_first; Large_level_first ]

type metrics = { fanout : float; size : int; level : float }

let metrics ~fanouts ~levels cut =
  let n = Array.length cut in
  let fo = ref 0 and lv = ref 0 in
  Array.iter
    (fun id ->
      fo := !fo + fanouts.(id);
      lv := !lv + levels.(id))
    cut;
  {
    fanout = float_of_int !fo /. float_of_int n;
    size = n;
    level = float_of_int !lv /. float_of_int n;
  }

(* Chained comparison: the first non-zero criterion decides. *)
let chain c1 c2 c3 a b =
  let r = c1 a b in
  if r <> 0 then r
  else
    let r = c2 a b in
    if r <> 0 then r else c3 a b

let high_fanout a b = compare b.fanout a.fanout
let small_size a b = compare a.size b.size
let small_level a b = compare a.level b.level
let large_level a b = compare b.level a.level

let compare_metrics = function
  | Fanout_first -> chain high_fanout small_size small_level
  | Small_level_first -> chain small_level small_size high_fanout
  | Large_level_first -> chain large_level small_size high_fanout
