(** Cuts: sorted arrays of node ids such that every PI-to-root path passes
    through one of them. *)

type t = int array  (** strictly increasing node ids *)

(** Singleton (trivial) cut of a node. *)
val trivial : int -> t

(** [merge ~cap a b] is the sorted union, or [None] when it exceeds
    [cap]. *)
val merge : cap:int -> t -> t -> t option

val equal : t -> t -> bool
val compare : t -> t -> int
val size : t -> int

(** [subset a b]: every node of [a] is in [b]. *)
val subset : t -> t -> bool

(** Jaccard-sum similarity of a cut against a set of cuts (paper §III-C1):
    [s(c, P) = sum_{c' in P} |c ∩ c'| / |c ∪ c'|]. *)
val similarity : t -> t list -> float

(** [check g ~root cut] verifies the cut property by cone traversal — every
    path from a PI to [root] intersects [cut].  Test helper. *)
val check : Aig.Network.t -> root:int -> t -> bool
