(** Priority-cut enumeration (paper §III-C1, Eq. 1 and 2).

    For each AIG node [n] with fanins [n0, n1], the candidate set is

    [E(n) = { u ∪ v : u ∈ P(n0) ∪ {{n0}}, v ∈ P(n1) ∪ {{n1}}, |u ∪ v| ≤ k_l }]

    from which the best [c] cuts are kept as the priority cuts [P(n)],
    ranked by the pass criteria — or, for a non-representative node, by
    similarity to its representative's priority cuts first (so that the
    pair's common cuts are plentiful), with the pass criteria as
    tie-breaker. *)

type config = {
  k_l : int;  (** maximum cut size *)
  c : int;  (** number of priority cuts kept per node *)
}

(** Enumeration levels (Eq. 2): like structural levels, but a
    non-representative additionally depends on its representative, so that
    [P(repr(n))] exists before [P(n)] is computed.  [repr_of n] must return
    [n] for representatives and PIs. *)
val enum_levels : Aig.Network.t -> repr_of:(int -> int) -> int array

(** [node_cuts g cfg ~pass ~fanouts ~levels ~prio ~sim_target n] computes
    [P(n)].  [prio] holds the already-computed priority cuts of the fanins;
    [sim_target] supplies the representative's cuts for similarity-steered
    selection (pass criteria break ties). *)
val node_cuts :
  Aig.Network.t ->
  config ->
  pass:Criteria.pass ->
  fanouts:int array ->
  levels:int array ->
  prio:Cut.t list array ->
  sim_target:Cut.t list option ->
  int ->
  Cut.t list

(** Common cuts of a candidate pair: pairwise merges of the two priority
    cut sets under the size bound, deduplicated, trivial cuts excluded. *)
val common_cuts : k_l:int -> Cut.t list -> Cut.t list -> Cut.t list
