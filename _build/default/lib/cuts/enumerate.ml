type config = { k_l : int; c : int }

let enum_levels g ~repr_of =
  let n = Aig.Network.num_nodes g in
  let el = Array.make n 0 in
  Aig.Network.iter_ands g (fun id ->
      let f0 = Aig.Lit.node (Aig.Network.fanin0 g id) in
      let f1 = Aig.Lit.node (Aig.Network.fanin1 g id) in
      let base = 1 + max el.(f0) el.(f1) in
      let r = repr_of id in
      el.(id) <- (if r = id then base else max base (1 + el.(r))));
  el

let dedup cuts =
  let sorted = List.sort_uniq Cut.compare cuts in
  sorted

let candidates g ~k_l n ~prio =
  let f0 = Aig.Network.fanin0 g n and f1 = Aig.Network.fanin1 g n in
  let n0 = Aig.Lit.node f0 and n1 = Aig.Lit.node f1 in
  let set0 = Cut.trivial n0 :: prio.(n0) in
  let set1 = Cut.trivial n1 :: prio.(n1) in
  let acc = ref [] in
  List.iter
    (fun u ->
      List.iter
        (fun v ->
          match Cut.merge ~cap:k_l u v with
          | Some c -> acc := c :: !acc
          | None -> ())
        set1)
    set0;
  dedup !acc

let select cfg ~pass ~fanouts ~levels ~sim_target cuts =
  let scored =
    List.map (fun c -> (c, Criteria.metrics ~fanouts ~levels c)) cuts
  in
  let cmp =
    match sim_target with
    | None -> fun (_, ma) (_, mb) -> Criteria.compare_metrics pass ma mb
    | Some target ->
        fun (ca, ma) (cb, mb) ->
          let sa = Cut.similarity ca target and sb = Cut.similarity cb target in
          let r = compare sb sa in
          if r <> 0 then r else Criteria.compare_metrics pass ma mb
  in
  let sorted = List.stable_sort cmp scored in
  List.filteri (fun i _ -> i < cfg.c) (List.map fst sorted)

let node_cuts g cfg ~pass ~fanouts ~levels ~prio ~sim_target n =
  if not (Aig.Network.is_and g n) then invalid_arg "Enumerate.node_cuts: not an AND";
  let cand = candidates g ~k_l:cfg.k_l n ~prio in
  select cfg ~pass ~fanouts ~levels ~sim_target cand

let common_cuts ~k_l cuts_r cuts_n =
  let acc = ref [] in
  List.iter
    (fun u ->
      List.iter
        (fun v ->
          match Cut.merge ~cap:k_l u v with
          | Some c -> acc := c :: !acc
          | None -> ())
        cuts_n)
    cuts_r;
  dedup !acc
