type t = int array

let trivial n = [| n |]
let merge ~cap a b = Aig.Support.union_capped ~cap a b
let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b
let size = Array.length

let subset a b =
  let lb = Array.length b in
  let rec go i j =
    if i = Array.length a then true
    else if j = lb then false
    else if a.(i) = b.(j) then go (i + 1) (j + 1)
    else if a.(i) > b.(j) then go i (j + 1)
    else false
  in
  go 0 0

let inter_union_sizes a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i j inter =
    if i = la || j = lb then (inter, la + lb - inter)
    else if a.(i) = b.(j) then go (i + 1) (j + 1) (inter + 1)
    else if a.(i) < b.(j) then go (i + 1) j inter
    else go i (j + 1) inter
  in
  go 0 0 0

let similarity c cuts =
  List.fold_left
    (fun acc c' ->
      let inter, union = inter_union_sizes c c' in
      acc +. (float_of_int inter /. float_of_int union))
    0. cuts

let check g ~root cut =
  Aig.Cone.extract g ~roots:[| root |] ~inputs:cut <> None
