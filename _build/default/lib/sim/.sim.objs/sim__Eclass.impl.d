lib/sim/eclass.ml: Aig Array Hashtbl List Psim
