lib/sim/cex.mli: Aig
