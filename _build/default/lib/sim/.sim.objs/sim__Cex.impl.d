lib/sim/cex.ml: Aig Array List
