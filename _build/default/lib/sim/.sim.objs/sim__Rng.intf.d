lib/sim/rng.mli:
