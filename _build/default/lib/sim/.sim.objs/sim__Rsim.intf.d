lib/sim/rsim.mli: Aig Cex Rng
