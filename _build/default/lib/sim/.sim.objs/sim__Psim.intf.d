lib/sim/psim.mli: Aig Par Rng
