lib/sim/psim.ml: Aig Array Bytes Int64 List Par Rng
