lib/sim/rsim.ml: Aig Array Cex List Rng
