lib/sim/eclass.mli: Aig Hashtbl Psim
