type t = bool array

let of_window_pattern g ~inputs ~pattern =
  let cex = Array.make (Aig.Network.num_pis g) false in
  Array.iteri
    (fun k n ->
      if not (Aig.Network.is_pi g n) then
        invalid_arg "Cex.of_window_pattern: window input is not a PI";
      cex.(Aig.Network.pi_index g n) <- (pattern lsr k) land 1 = 1)
    inputs;
  cex

let distance_one ?(limit = max_int) cex =
  let n = min (Array.length cex) limit in
  List.init n (fun i ->
      let c = Array.copy cex in
      c.(i) <- not c.(i);
      c)

let eval_lit g cex l =
  let values = Array.make (Aig.Network.num_nodes g) false in
  Aig.Network.iter_nodes g (fun n ->
      if Aig.Network.is_pi g n then values.(n) <- cex.(Aig.Network.pi_index g n)
      else if Aig.Network.is_and g n then begin
        let f0 = Aig.Network.fanin0 g n and f1 = Aig.Network.fanin1 g n in
        let v0 = values.(Aig.Lit.node f0) <> Aig.Lit.is_compl f0 in
        let v1 = values.(Aig.Lit.node f1) <> Aig.Lit.is_compl f1 in
        values.(n) <- v0 && v1
      end);
  values.(Aig.Lit.node l) <> Aig.Lit.is_compl l

let check g cex po = eval_lit g cex (Aig.Network.po g po)

let minimize g cex po =
  if not (check g cex po) then invalid_arg "Cex.minimize: not a failing assignment";
  let cur = Array.copy cex in
  for i = 0 to Array.length cur - 1 do
    if cur.(i) then begin
      cur.(i) <- false;
      if not (check g cur po) then cur.(i) <- true
    end
  done;
  cur
