(** Deterministic SplitMix64 random generator.

    The engine must be reproducible run-to-run (simulation patterns decide
    which pairs become candidates), so all randomness flows through this
    seeded generator rather than [Random]. *)

type t

val create : seed:int64 -> t

(** Next 64 pseudo-random bits. *)
val next64 : t -> int64

(** Uniform integer in [0, bound). *)
val int : t -> int -> int

val bool : t -> bool
