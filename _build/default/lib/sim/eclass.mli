(** Equivalence-class (EC) manager (paper §III-A).

    Nodes with identical partial-simulation signatures (up to complement)
    form candidate classes; the representative is the node with the minimum
    id.  Each member carries a phase flag: [true] means the node matched
    the {e complement} of the representative's signature.  Counter-examples
    refine the classes by resimulation.  The constant node 0 participates,
    so nodes simulating to a constant form candidate constant pairs. *)

type t

type pair = {
  repr : int;  (** representative node id *)
  other : int;  (** candidate node id, [other > repr] *)
  compl_ : bool;  (** true: candidate matches the complement *)
}

(** Build classes from signatures.  Only the constant node and AND nodes
    participate ([~include_pis:true] adds PIs).  Singleton classes are
    dropped. *)
val of_sigs : Aig.Network.t -> Psim.sigs -> ?include_pis:bool -> unit -> t

(** Number of (non-singleton) classes. *)
val num_classes : t -> int

(** Total number of nodes across classes (including representatives). *)
val num_nodes : t -> int

(** All classes; each class is sorted by node id, the head is the
    representative (phase [false]). *)
val classes : t -> (int * bool) array list

(** Candidate pairs, class by class: representative vs every other
    member. *)
val pairs : t -> pair list

(** [refine t sigs] splits every class according to fresh signatures
    (typically after counter-example resimulation). *)
val refine : t -> Psim.sigs -> t

(** [remove t dropped] removes the listed node ids from all classes (they
    were merged or disproved), re-electing representatives and dropping
    classes that become singletons. *)
val remove : t -> (int, unit) Hashtbl.t -> t

(** [map_nodes t f] renames every node through [f] — the new literal of the
    node after a miter reduction; [None] drops the node.  The literal's
    complement bit folds into the member's phase.  Nodes mapping to the
    same id are deduplicated.  Used to carry ECs across reductions and to
    transfer ECs to the SAT sweeper (paper §V extension). *)
val map_nodes : t -> (int -> Aig.Lit.t option) -> t
