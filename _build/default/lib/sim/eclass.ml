type t = { classes : (int * bool) array list }

type pair = { repr : int; other : int; compl_ : bool }

(* Normalise a member list into a class array: sort by id, representative
   first, phases re-expressed relative to the representative. *)
let normalize members =
  match members with
  | [] | [ _ ] -> None
  | _ ->
      let arr = Array.of_list members in
      Array.sort (fun (a, _) (b, _) -> compare a b) arr;
      let _, repr_phase = arr.(0) in
      Some (Array.map (fun (n, ph) -> (n, ph <> repr_phase)) arr)

let of_sigs g sigs ?(include_pis = false) () =
  let groups : (string, (int * bool) list ref) Hashtbl.t = Hashtbl.create 1024 in
  let add n =
    let key = Psim.class_key sigs n in
    let ph = Psim.phase sigs n in
    match Hashtbl.find_opt groups key with
    | Some l -> l := (n, ph) :: !l
    | None -> Hashtbl.replace groups key (ref [ (n, ph) ])
  in
  add 0;
  Aig.Network.iter_nodes g (fun n ->
      if Aig.Network.is_and g n then add n
      else if include_pis && Aig.Network.is_pi g n then add n);
  let classes =
    Hashtbl.fold
      (fun _ members acc ->
        match normalize !members with Some c -> c :: acc | None -> acc)
      groups []
  in
  (* Deterministic order regardless of hash iteration. *)
  let classes = List.sort (fun a b -> compare (fst a.(0)) (fst b.(0))) classes in
  { classes }

let num_classes t = List.length t.classes
let num_nodes t = List.fold_left (fun acc c -> acc + Array.length c) 0 t.classes
let classes t = t.classes

let pairs t =
  List.concat_map
    (fun c ->
      let repr, _ = c.(0) in
      List.init
        (Array.length c - 1)
        (fun i ->
          let n, ph = c.(i + 1) in
          { repr; other = n; compl_ = ph }))
    t.classes

let refine t sigs =
  let classes =
    List.concat_map
      (fun c ->
        let groups : (string, (int * bool) list ref) Hashtbl.t = Hashtbl.create 8 in
        Array.iter
          (fun (n, _) ->
            let key = Psim.class_key sigs n in
            let ph = Psim.phase sigs n in
            match Hashtbl.find_opt groups key with
            | Some l -> l := (n, ph) :: !l
            | None -> Hashtbl.replace groups key (ref [ (n, ph) ]))
          c;
        let split =
          Hashtbl.fold
            (fun _ members acc ->
              match normalize !members with Some c -> c :: acc | None -> acc)
            groups []
        in
        List.sort (fun a b -> compare (fst a.(0)) (fst b.(0))) split)
      t.classes
  in
  { classes }

let remove t dropped =
  let classes =
    List.filter_map
      (fun c ->
        let kept =
          Array.to_list c |> List.filter (fun (n, _) -> not (Hashtbl.mem dropped n))
        in
        normalize kept)
      t.classes
  in
  { classes }

let map_nodes t f =
  let classes =
    List.filter_map
      (fun c ->
        let seen = Hashtbl.create 8 in
        let mapped =
          Array.to_list c
          |> List.filter_map (fun (n, ph) ->
                 match f n with
                 | None -> None
                 | Some l ->
                     let id = Aig.Lit.node l in
                     if Hashtbl.mem seen id then None
                     else begin
                       Hashtbl.replace seen id ();
                       Some (id, ph <> Aig.Lit.is_compl l)
                     end)
        in
        normalize mapped)
      t.classes
  in
  { classes }
