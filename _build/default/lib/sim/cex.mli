(** Counter-examples: full primary-input assignments that distinguish a
    candidate pair, collected during global function checking and fed back
    into partial simulation to split equivalence classes. *)

type t = bool array  (** value of every PI, by input index *)

(** [of_window_pattern g ~inputs ~pattern ~num_pis] lifts a pattern index
    over window {e PI} inputs to a full PI assignment (unconstrained inputs
    are false).  Only valid when every window input is a PI. *)
val of_window_pattern : Aig.Network.t -> inputs:int array -> pattern:int -> t

(** [distance_one cex] generates the [n] assignments at Hamming distance 1
    from [cex] (paper §V: distance-1 simulation of CEXs), capped at
    [limit]. *)
val distance_one : ?limit:int -> t -> t list

(** [check g cex po] evaluates output [po] of [g] under the assignment —
    used by tests and by the engine's debug mode to validate that a
    disproving pattern really sets a miter output. *)
val check : Aig.Network.t -> t -> int -> bool

(** Evaluate an arbitrary literal under a full assignment. *)
val eval_lit : Aig.Network.t -> t -> Aig.Lit.t -> bool

(** [minimize g cex po] greedily clears set bits of a failing assignment
    while output [po] stays asserted — smaller witnesses are far easier to
    debug.  The result still satisfies [check g _ po]. *)
val minimize : Aig.Network.t -> t -> int -> t
