type t = { mutable state : int64 }

let create ~seed = { state = seed }

let next64 t =
  t.state <- Int64.add t.state 0x9e3779b97f4a7c15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let x = Int64.to_int (Int64.shift_right_logical (next64 t) 2) in
  x mod bound

let bool t = Int64.logand (next64 t) 1L = 1L
