(** Reverse simulation — heuristic backward justification (paper §V cites
    it as an integration candidate, after Zhang et al.).

    [justify g ?rng lit v] searches for an input assignment that sets
    [lit] to [v] by walking the cone backwards, choosing controlling
    values: an AND that must be 1 forces both fanins to 1; an AND that
    must be 0 picks one fanin to force to 0 ([rng] breaks the tie).  The
    procedure is incomplete — conflicting requirements abort with [None] —
    but when it succeeds the returned assignment provably sets the
    literal, which makes such patterns far better class-splitters than
    random ones. *)
val justify :
  Aig.Network.t -> ?rng:Rng.t -> Aig.Lit.t -> bool -> Cex.t option

(** [justify_pair g ?rng a b] searches for an assignment making literal
    [a] true and literal [b] false simultaneously — i.e. a witness that the
    two literals differ.  Incomplete like {!justify}; a returned assignment
    is always forward-verified. *)
val justify_pair :
  Aig.Network.t -> ?rng:Rng.t -> Aig.Lit.t -> Aig.Lit.t -> Cex.t option

(** [distinguishing_patterns g ?rng ~a ~b n] generates up to [n]
    candidate patterns aimed at distinguishing nodes [a] and [b]:
    justifications of [a=1], [a=0], [b=1], [b=0] with varied tie-breaks.
    Patterns where the two nodes indeed differ are listed first. *)
val distinguishing_patterns :
  Aig.Network.t -> ?rng:Rng.t -> a:int -> b:int -> int -> Cex.t list
