(* Node requirements during backward justification: unassigned, or required
   to take a definite value. *)

(* Shared backward-justification core: demand a set of (literal, value)
   requirements, fill free PIs randomly, and verify forward. *)
let justify_core g rng demands verify =
  let req = Array.make (Aig.Network.num_nodes g) 0 in
  (* 0 = free, 1 = must be true, -1 = must be false *)
  let exception Conflict in
  let rec demand n want =
    let w = if want then 1 else -1 in
    if req.(n) = w then ()
    else if req.(n) <> 0 then raise Conflict
    else begin
      req.(n) <- w;
      if Aig.Network.is_and g n then begin
        let f0 = Aig.Network.fanin0 g n and f1 = Aig.Network.fanin1 g n in
        if want then begin
          demand (Aig.Lit.node f0) (not (Aig.Lit.is_compl f0));
          demand (Aig.Lit.node f1) (not (Aig.Lit.is_compl f1))
        end
        else begin
          let first, second = if Rng.bool rng then (f0, f1) else (f1, f0) in
          let saved = Array.copy req in
          try demand (Aig.Lit.node first) (Aig.Lit.is_compl first)
          with Conflict ->
            Array.blit saved 0 req 0 (Array.length req);
            req.(n) <- w;
            demand (Aig.Lit.node second) (Aig.Lit.is_compl second)
        end
      end
      else if n = 0 && want then raise Conflict
    end
  in
  match List.iter (fun (l, v) -> demand (Aig.Lit.node l) (v <> Aig.Lit.is_compl l)) demands with
  | () ->
      let cex =
        Array.init (Aig.Network.num_pis g) (fun i ->
            match req.(Aig.Network.pi g i) with
            | 1 -> true
            | -1 -> false
            | _ -> Rng.bool rng)
      in
      if verify cex then Some cex else None
  | exception Conflict -> None

let justify_pair g ?rng a b =
  let rng = match rng with Some r -> r | None -> Rng.create ~seed:0x9a17L in
  justify_core g rng
    [ (a, true); (b, false) ]
    (fun cex -> Cex.eval_lit g cex a && not (Cex.eval_lit g cex b))

let justify g ?rng lit v =
  let rng = match rng with Some r -> r | None -> Rng.create ~seed:0x5151L in
  justify_core g rng [ (lit, v) ] (fun cex -> Cex.eval_lit g cex lit = v)

let distinguishing_patterns g ?rng ~a ~b n =
  let rng = match rng with Some r -> r | None -> Rng.create ~seed:0xd15eL in
  let candidates = ref [] in
  let tries = max 1 (n * 2) in
  for _ = 1 to tries do
    let node, v =
      match Rng.int rng 4 with
      | 0 -> (a, true)
      | 1 -> (a, false)
      | 2 -> (b, true)
      | _ -> (b, false)
    in
    match justify g ~rng (Aig.Lit.make node false) v with
    | Some cex -> candidates := cex :: !candidates
    | None -> ()
  done;
  let distinguishes cex =
    Cex.eval_lit g cex (Aig.Lit.make a false)
    <> Cex.eval_lit g cex (Aig.Lit.make b false)
  in
  let good, rest = List.partition distinguishes !candidates in
  let rec take k = function
    | [] -> []
    | x :: xs -> if k = 0 then [] else x :: take (k - 1) xs
  in
  take n (good @ rest)
