type sigs = { nwords : int; num_nodes : int; data : Bytes.t }

type stats = {
  mutable runs : int;
  mutable level_batches : int;
  mutable node_words : int;
  mutable patterns_embedded : int;
}

let new_stats () =
  { runs = 0; level_batches = 0; node_words = 0; patterns_embedded = 0 }

let nwords s = s.nwords

let row_off s n = n * s.nwords * 8

let word s n w = Bytes.get_int64_ne s.data (row_off s n + (w * 8))

let set_word s n w x = Bytes.set_int64_ne s.data (row_off s n + (w * 8)) x

let value s n p =
  let w = p lsr 6 in
  Int64.logand (Int64.shift_right_logical (word s n w) (p land 63)) 1L <> 0L

let run ?stats g ~nwords ~rng ~pool ~embed =
  if nwords <= 0 then invalid_arg "Psim.run: nwords must be positive";
  let num_nodes = Aig.Network.num_nodes g in
  let s = { nwords; num_nodes; data = Bytes.make (num_nodes * nwords * 8) '\x00' } in
  (* Constant node: all zero (already).  PIs: random patterns. *)
  for i = 0 to Aig.Network.num_pis g - 1 do
    let n = Aig.Network.pi g i in
    for w = 0 to nwords - 1 do
      set_word s n w (Rng.next64 rng)
    done
  done;
  (* Embed specific assignments into the lowest pattern slots. *)
  List.iteri
    (fun p assignment ->
      if p < 64 * nwords then
        Array.iteri
          (fun i v ->
            let n = Aig.Network.pi g i in
            let w = p lsr 6 and b = p land 63 in
            let x = word s n w in
            let m = Int64.shift_left 1L b in
            set_word s n w
              (if v then Int64.logor x m else Int64.logand x (Int64.lognot m)))
          assignment)
    embed;
  (* Level-wise parallel evaluation. *)
  let batches = Aig.Network.level_batches g in
  (match stats with
  | Some st ->
      st.runs <- st.runs + 1;
      st.level_batches <- st.level_batches + Array.length batches;
      st.node_words <-
        st.node_words
        + (nwords * Array.fold_left (fun acc b -> acc + Array.length b) 0 batches);
      st.patterns_embedded <-
        st.patterns_embedded + min (List.length embed) (64 * nwords)
  | None -> ());
  Array.iter
    (fun batch ->
      Par.Pool.parallel_for pool ~start:0 ~stop:(Array.length batch) (fun k ->
          let n = batch.(k) in
          let f0 = Aig.Network.fanin0 g n and f1 = Aig.Network.fanin1 g n in
          let n0 = Aig.Lit.node f0 and n1 = Aig.Lit.node f1 in
          let c0 = if Aig.Lit.is_compl f0 then -1L else 0L in
          let c1 = if Aig.Lit.is_compl f1 then -1L else 0L in
          for w = 0 to nwords - 1 do
            set_word s n w
              (Int64.logand
                 (Int64.logxor (word s n0 w) c0)
                 (Int64.logxor (word s n1 w) c1))
          done))
    batches;
  s

let compare_nodes s n m =
  let rec go w eq co =
    if (not eq) && not co then `Diff
    else if w = s.nwords then if eq then `Equal else `Compl
    else
      let x = word s n w and y = word s m w in
      go (w + 1) (eq && Int64.equal x y) (co && Int64.equal x (Int64.lognot y))
  in
  go 0 true true

let compare_const s n =
  let rec go w eq co =
    if (not eq) && not co then `Diff
    else if w = s.nwords then if eq then `Equal else `Compl
    else
      let x = word s n w in
      go (w + 1) (eq && Int64.equal x 0L) (co && Int64.equal x (-1L))
  in
  go 0 true true

let phase s n = Int64.logand (word s n 0) 1L <> 0L

let class_key s n =
  let buf = Bytes.create (s.nwords * 8) in
  let flip = phase s n in
  for w = 0 to s.nwords - 1 do
    let x = word s n w in
    Bytes.set_int64_ne buf (w * 8) (if flip then Int64.lognot x else x)
  done;
  Bytes.unsafe_to_string buf
