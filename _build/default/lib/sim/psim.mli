(** Partial (random-pattern) bit-parallel simulator.

    Every node receives a signature of [nwords * 64] pattern bits; AND nodes
    are evaluated level by level, nodes within a level in parallel over the
    pool.  Pattern [p] is the assignment formed by bit [p] of every PI
    signature, so specific assignments (counter-examples) can be embedded at
    chosen pattern slots before simulation. *)

type sigs

(** Words per signature. *)
val nwords : sigs -> int

(** Simulation-effort counters, accumulated across runs when a [stats]
    record is passed to {!run}. *)
type stats = {
  mutable runs : int;
  mutable level_batches : int;  (** topological levels evaluated *)
  mutable node_words : int;  (** AND-node signature words computed *)
  mutable patterns_embedded : int;  (** counter-example patterns embedded *)
}

val new_stats : unit -> stats

(** [run g ~nwords ~rng ~pool ~embed] simulates [64*nwords] patterns:
    random PI values from [rng], with the assignments of [embed] (each a
    [bool array] over PIs, in order) written into the lowest pattern slots.
    At most [64*nwords] embedded patterns are used. *)
val run :
  ?stats:stats ->
  Aig.Network.t ->
  nwords:int ->
  rng:Rng.t ->
  pool:Par.Pool.t ->
  embed:bool array list ->
  sigs

(** [word s n w] is word [w] of node [n]'s signature. *)
val word : sigs -> int -> int -> int64

(** Compare two node signatures. *)
val compare_nodes : sigs -> int -> int -> [ `Equal | `Compl | `Diff ]

(** True when the node's signature is all zeros ([`Equal] to constant
    false) or all ones ([`Compl]). *)
val compare_const : sigs -> int -> [ `Equal | `Compl | `Diff ]

(** Key for grouping nodes into candidate equivalence classes: the
    signature normalised so that pattern 0 is [false], serialised.  Nodes
    with equal keys are equal or complementary on all simulated patterns. *)
val class_key : sigs -> int -> string

(** Phase of the node w.r.t. its normalised key: [true] when the raw
    signature had pattern 0 set (i.e. the key stores the complement). *)
val phase : sigs -> int -> bool

(** [value s n p] is the simulated value of node [n] under pattern [p]. *)
val value : sigs -> int -> int -> bool
