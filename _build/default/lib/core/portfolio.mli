(** Portfolio checker — the stand-in for the commercial tool.

    The paper describes commercial checkers as "a combination of engines",
    with multi-threading plausibly "running different engines
    simultaneously and early-stopping when an engine finishes".  This
    portfolio runs a BDD engine (with a node budget), the simulation
    engine, and the SAT sweeper, returning the first conclusive answer.
    BDDs excel on symmetric control logic (the [voter] benchmark family)
    and blow up on multipliers, which reproduces Table II's
    Conformal-vs-ours crossovers. *)

type engine = Bdd_engine | Sim_engine | Sat_engine

type result = {
  outcome : Engine.outcome;
  winner : engine option;  (** engine that produced the conclusive answer *)
  time : float;
  engine_stats : Stats.t option;
      (** simulation-engine telemetry, when that engine ran *)
  sat_stats : Sat.Sweep.stats option;
      (** SAT-fallback telemetry, when the fallback ran *)
}

(** [check ?config ?sat_config ?bdd_node_limit ~pool miter]. *)
val check :
  ?config:Config.t ->
  ?sat_config:Sat.Sweep.config ->
  ?bdd_node_limit:int ->
  pool:Par.Pool.t ->
  Aig.Network.t ->
  result

val engine_name : engine -> string
