lib/core/local.ml: Aig Array Config Cuts Exhaustive List Par Sim
