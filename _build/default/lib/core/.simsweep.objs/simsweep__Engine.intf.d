lib/core/engine.mli: Aig Config Par Sat Sim Stats
