lib/core/exhaustive.ml: Aig Arena Array Atomic Bv Bytes Fun Hashtbl Int Int64 List Par
