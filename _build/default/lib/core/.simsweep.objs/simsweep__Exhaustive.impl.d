lib/core/exhaustive.ml: Aig Array Bv Bytes Hashtbl Int64 List Par
