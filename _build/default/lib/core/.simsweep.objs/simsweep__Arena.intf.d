lib/core/arena.mli: Bytes
