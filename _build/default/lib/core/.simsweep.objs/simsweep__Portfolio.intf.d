lib/core/portfolio.mli: Aig Config Engine Par Sat Stats
