lib/core/stats.ml: Exhaustive Format Fun Sim Unix
