lib/core/stats.ml: Exhaustive Format Fun Unix
