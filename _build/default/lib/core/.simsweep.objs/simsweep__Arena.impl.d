lib/core/arena.ml: Bytes
