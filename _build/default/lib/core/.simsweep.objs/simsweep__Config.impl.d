lib/core/config.ml: Cuts
