lib/core/certificate.ml: Aig Array Buffer Engine List Printf Sat String
