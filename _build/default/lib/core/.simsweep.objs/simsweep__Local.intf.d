lib/core/local.mli: Aig Config Cuts Exhaustive Par Sim
