lib/core/local.mli: Aig Arena Config Cuts Exhaustive Par Sim
