lib/core/partition.mli: Aig Config Engine Par Sat
