lib/core/portfolio.ml: Bdd Config Engine Sat Stats Unix
