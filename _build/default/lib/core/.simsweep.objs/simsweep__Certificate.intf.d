lib/core/certificate.mli: Aig Config Engine Par
