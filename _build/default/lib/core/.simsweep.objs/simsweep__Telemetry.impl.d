lib/core/telemetry.ml: Array Buffer Char Engine Exhaustive Float Fun List Par Printf Sat Sim Stats String
