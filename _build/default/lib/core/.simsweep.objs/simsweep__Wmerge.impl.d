lib/core/wmerge.ml: Aig Array Exhaustive List
