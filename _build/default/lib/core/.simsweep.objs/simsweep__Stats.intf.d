lib/core/stats.mli: Exhaustive Format Sim
