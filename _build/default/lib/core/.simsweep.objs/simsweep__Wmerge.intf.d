lib/core/wmerge.mli: Exhaustive
