lib/core/engine.ml: Aig Arena Array Config Exhaustive Fun Hashtbl List Local Logs Opt Sat Sim Stats Unix Wmerge
