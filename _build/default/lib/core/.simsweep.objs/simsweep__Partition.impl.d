lib/core/partition.ml: Aig Array Engine Fun Hashtbl List
