lib/core/exhaustive.mli: Aig Arena Par
