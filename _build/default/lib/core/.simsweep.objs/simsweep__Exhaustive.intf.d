lib/core/exhaustive.mli: Aig Par
