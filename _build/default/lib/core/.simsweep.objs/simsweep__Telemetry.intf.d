lib/core/telemetry.mli: Engine Exhaustive Par Sat Sim Stats
