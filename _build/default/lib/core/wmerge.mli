(** Window merging (paper §III-B3).

    Overlapping windows force shared nodes to be simulated once per window;
    merging windows with similar input sets reduces the total number of
    simulated nodes at the cost of longer truth tables.  The heuristic is
    the paper's: sort the batch in lexicographic order of the (id-sorted)
    input sets, then greedily merge consecutive windows while the merged
    input set stays within [k_s].  Only used for global-function checking,
    where all window inputs are PIs so any union is still a valid input
    boundary. *)

(** [merge ~k_s jobs] returns the merged batch. *)
val merge : k_s:int -> Exhaustive.job list -> Exhaustive.job list
