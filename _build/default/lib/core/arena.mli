(** Bump allocator for simulation tables.

    One [Bytes.t] backs all window rows of a simulation chunk: the memory
    budget (Algorithm 1's [M], {!Config.memory_words}) is allocated once
    and windows take word-offset slices.  {!reset} between chunks recycles
    the whole block without touching the GC — the seed engine's
    per-window [Bytes.create] churned the major heap on every chunk of
    every round batch.

    Offsets are in 64-bit words; byte addressing is the caller's
    [8 * (offset + i)] against {!data}. *)

type t

(** [create ~words] allocates a [words]-word arena (8 bytes each). *)
val create : words:int -> t

(** Current capacity in words. *)
val capacity_words : t -> int

(** [ensure t words] grows the backing store to at least [words] words.
    Only legal while the arena is empty (just created or {!reset});
    raises [Invalid_argument] if any allocation is live, since slices
    would dangle into the discarded store. *)
val ensure : t -> int -> unit

(** Drop all allocations; capacity is retained. *)
val reset : t -> unit

(** [alloc t words] reserves [words] words and returns the slice's word
    offset.  Raises [Invalid_argument] when the arena is exhausted — the
    caller must {!ensure} a chunk's total before allocating its windows. *)
val alloc : t -> int -> int

(** The backing store.  Only valid until the next {!ensure}. *)
val data : t -> Bytes.t

(** Words currently allocated. *)
val used_words : t -> int

(** Largest {!used_words} ever reached (across {!reset}s). *)
val hwm_words : t -> int

(** Times {!ensure} had to replace the backing store. *)
val grows : t -> int
