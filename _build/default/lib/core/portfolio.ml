type engine = Bdd_engine | Sim_engine | Sat_engine

type result = {
  outcome : Engine.outcome;
  winner : engine option;
  time : float;
  engine_stats : Stats.t option;
  sat_stats : Sat.Sweep.stats option;
}

let engine_name = function
  | Bdd_engine -> "bdd"
  | Sim_engine -> "sim"
  | Sat_engine -> "sat"

let check ?(config = Config.default) ?(sat_config = Sat.Sweep.default_config)
    ?(bdd_node_limit = 1 lsl 20) ~pool miter =
  let t0 = Unix.gettimeofday () in
  let finish ?engine_stats ?sat_stats outcome winner =
    {
      outcome;
      winner;
      time = Unix.gettimeofday () -. t0;
      engine_stats;
      sat_stats;
    }
  in
  (* Engine 1: BDD with a node budget — cheap on control logic, aborts fast
     on arithmetic. *)
  match Bdd.check ~node_limit:bdd_node_limit miter with
  | `Equivalent -> finish Engine.Proved (Some Bdd_engine)
  | `Inequivalent (cex, po) -> finish (Engine.Disproved (cex, po)) (Some Bdd_engine)
  | `Node_limit -> (
      (* Engine 2 + 3: the simulation engine with SAT fallback. *)
      let combined = Engine.check_with_fallback ~config ~sat_config ~pool miter in
      let engine_stats = combined.Engine.engine.Engine.stats in
      match combined.Engine.final with
      | Engine.Proved | Engine.Disproved _ ->
          let winner =
            if combined.Engine.sat_outcome = None then Sim_engine else Sat_engine
          in
          finish ~engine_stats ?sat_stats:combined.Engine.sat_stats
            combined.Engine.final (Some winner)
      | Engine.Undecided ->
          finish ~engine_stats ?sat_stats:combined.Engine.sat_stats
            Engine.Undecided None)
