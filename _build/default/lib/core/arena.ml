type t = {
  mutable data : Bytes.t;
  mutable off : int;  (* next free word *)
  mutable hwm : int;  (* high-water mark over the arena's lifetime, words *)
  mutable grows : int;
}

let create ~words =
  if words < 0 then invalid_arg "Arena.create: negative size";
  { data = Bytes.create (words * 8); off = 0; hwm = 0; grows = 0 }

let capacity_words t = Bytes.length t.data / 8

let ensure t words =
  if capacity_words t < words then begin
    (* Live slices would dangle into the old backing store; growing is
       only legal on an empty arena. *)
    if t.off > 0 then invalid_arg "Arena.ensure: arena has live allocations";
    t.data <- Bytes.create (words * 8);
    t.grows <- t.grows + 1
  end

let reset t = t.off <- 0

let alloc t words =
  if words < 0 then invalid_arg "Arena.alloc: negative size";
  if t.off + words > capacity_words t then
    invalid_arg "Arena.alloc: arena exhausted (missing ensure?)";
  let off = t.off in
  t.off <- off + words;
  if t.off > t.hwm then t.hwm <- t.off;
  off

let data t = t.data
let used_words t = t.off
let hwm_words t = t.hwm
let grows t = t.grows
