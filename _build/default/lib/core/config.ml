(** Engine parameters (paper §III-D and §IV).

    Paper defaults: [k_P = 32], [k_p = k_g = 16], [k_l = 8], [c = 8]; the
    window-merging support bound [k_s] equals the support threshold of the
    running phase.  [memory_words] is Algorithm 1's memory budget [M]
    deciding the simulation-table entry size [E]. *)

type t = {
  k_cap_p : int;  (** [k_P]: one-shot PO-checking support threshold *)
  k_p : int;  (** fallback PO-checking support threshold *)
  k_g : int;  (** global-function-checking support threshold *)
  k_l : int;  (** maximum local cut size *)
  c : int;  (** priority cuts per node *)
  memory_words : int;  (** simulation-table budget, in 64-bit words *)
  sim_words : int;  (** partial-simulation signature words *)
  seed : int64;
  max_local_phases : int;  (** repetitions of the L phase *)
  window_merging : bool;  (** §III-B3 heuristic (global checking only) *)
  similarity_selection : bool;  (** §III-C1 similarity-steered cuts *)
  passes : Cuts.Criteria.pass list;  (** cut-selection passes per L phase *)
  cut_buffer_capacity : int;  (** common-cut buffer size (Algorithm 2) *)
  distance_one_cex : bool;  (** §V extension: distance-1 CEX expansion *)
  adaptive_passes : bool;
      (** §V extension: disable a cut-selection pass for the remaining L
          phases once it proves nothing in a phase *)
  rewrite_between_phases : bool;
      (** §V extension: interleave sweeping with logic rewriting — a light
          optimisation round on the miter between L phases opens new cut
          structures (classes are rebuilt by fresh partial simulation) *)
  time_limit : float option;
      (** wall-clock budget in seconds for the engine run; the G iteration
          and L phases stop once exceeded, leaving the miter reduced as far
          as it got (the SAT fallback can still finish it) *)
}

let default =
  {
    k_cap_p = 32;
    k_p = 16;
    k_g = 16;
    k_l = 8;
    c = 8;
    memory_words = 1 lsl 22;
    sim_words = 4;
    seed = 0xdacL;
    max_local_phases = 50;
    window_merging = true;
    similarity_selection = true;
    passes = Cuts.Criteria.table1;
    cut_buffer_capacity = 4096;
    distance_one_cex = false;
    adaptive_passes = false;
    rewrite_between_phases = false;
    time_limit = None;
  }

(** Scaled-down thresholds for CPU-sized experiments: same structure, the
    exhaustive-simulation budgets shrunk so a laptop plays the role of the
    paper's 48 GB GPU. *)
let scaled =
  {
    default with
    k_cap_p = 20;
    k_p = 14;
    k_g = 14;
    memory_words = 1 lsl 20;
  }
