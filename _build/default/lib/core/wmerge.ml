let lex_compare (a : Exhaustive.job) (b : Exhaustive.job) =
  compare (Array.to_list a.Exhaustive.inputs) (Array.to_list b.Exhaustive.inputs)

let merge ~k_s jobs =
  let sorted = List.sort lex_compare jobs in
  let rec go acc cur = function
    | [] -> List.rev (match cur with None -> acc | Some j -> j :: acc)
    | (j : Exhaustive.job) :: rest -> (
        match cur with
        | None -> go acc (Some j) rest
        | Some c -> (
            match Aig.Support.union_capped ~cap:k_s c.Exhaustive.inputs j.inputs with
            | Some inputs ->
                go acc
                  (Some { Exhaustive.inputs; pairs = c.pairs @ j.pairs })
                  rest
            | None -> go (c :: acc) (Some j) rest))
  in
  go [] None sorted
