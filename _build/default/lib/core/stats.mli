(** Engine statistics: per-phase wall-clock timers (Fig. 6) and work
    counters. *)

type phase = Po_check | Global_check | Local_check

type t = {
  mutable time_p : float;
  mutable time_g : float;
  mutable time_l : float;
  mutable pos_proved : int;
  mutable pairs_proved_global : int;
  mutable pairs_proved_local : int;
  mutable cex_found : int;
  mutable local_phases : int;
  exhaustive : Exhaustive.stats;
}

val create : unit -> t

(** [timed stats phase f] runs [f] and adds its duration to the phase
    timer. *)
val timed : t -> phase -> (unit -> 'a) -> 'a

val total_time : t -> float

(** Runtime fractions (p, g, l) of the total, for the Fig. 6 breakdown. *)
val breakdown : t -> float * float * float

val pp : Format.formatter -> t -> unit
