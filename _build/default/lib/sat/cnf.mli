(** Tseitin encoding of an AIG into a SAT solver.

    Every network node [n] maps to solver variable [n]; the constant node
    is constrained to false with a unit clause, and each AND gate
    contributes the three standard clauses. *)

(** [load solver g] allocates variables and clauses for the whole network;
    returns [false] when the instance is trivially unsatisfiable. *)
val load : Solver.t -> Aig.Network.t -> bool

(** Solver literal of an AIG literal. *)
val lit : Aig.Lit.t -> Solver.lit

(** Extract the PI assignment from the last model. *)
val model_cex : Solver.t -> Aig.Network.t -> Sim.Cex.t
