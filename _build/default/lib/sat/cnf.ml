let lit (l : Aig.Lit.t) : Solver.lit =
  Solver.mklit (Aig.Lit.node l) (Aig.Lit.is_compl l)

let load solver g =
  let ok = ref true in
  let add c = if not (Solver.add_clause solver c) then ok := false in
  Aig.Network.iter_nodes g (fun n -> ignore (Solver.new_var solver); ignore n);
  add [ Solver.mklit 0 true ];
  Aig.Network.iter_ands g (fun n ->
      let f0 = lit (Aig.Network.fanin0 g n) and f1 = lit (Aig.Network.fanin1 g n) in
      let vn = Solver.mklit n false in
      add [ Solver.neg vn; f0 ];
      add [ Solver.neg vn; f1 ];
      add [ vn; Solver.neg f0; Solver.neg f1 ]);
  !ok

let model_cex solver g =
  Array.init (Aig.Network.num_pis g) (fun i ->
      Solver.model_value solver (Aig.Network.pi g i))
