(** DIMACS CNF interchange.

    Lets the CDCL solver act as a standalone SAT tool, and — more usefully
    for a CEC flow — exports a miter as a standard CNF file so an external
    solver can confirm a verdict: [of_miter] produces a formula that is
    unsatisfiable exactly when every miter output is constant false. *)

(** [parse text] returns (variable count, clauses as nonzero DIMACS
    literals). *)
val parse : string -> (int * int list list, string) result

(** Render a CNF in DIMACS format. *)
val to_string : nvars:int -> int list list -> string

(** [load solver text] parses and adds the formula, allocating variables;
    returns [Ok false] when the formula is trivially unsatisfiable at the
    root level. *)
val load : Solver.t -> string -> (bool, string) result

(** [of_miter g] is the Tseitin CNF of [g] plus the disjunction of its
    outputs: UNSAT iff the miter is proved.  Variable [i+1] corresponds to
    node [i] (DIMACS variables are 1-based). *)
val of_miter : Aig.Network.t -> string
