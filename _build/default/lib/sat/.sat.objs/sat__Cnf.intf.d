lib/sat/cnf.mli: Aig Sim Solver
