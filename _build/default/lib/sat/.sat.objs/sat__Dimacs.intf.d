lib/sat/dimacs.mli: Aig Solver
