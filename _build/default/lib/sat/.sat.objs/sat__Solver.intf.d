lib/sat/solver.mli:
