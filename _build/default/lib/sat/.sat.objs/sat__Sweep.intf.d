lib/sat/sweep.mli: Aig Par Sim
