lib/sat/solver.ml: Array Bool List
