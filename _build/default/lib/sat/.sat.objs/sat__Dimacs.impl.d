lib/sat/dimacs.ml: Aig Array Buffer List Printf Solver String
