lib/sat/cnf.ml: Aig Array Solver
