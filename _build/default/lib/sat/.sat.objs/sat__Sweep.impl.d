lib/sat/sweep.ml: Aig Array Cnf List Sim Solver
