(** Cone truth tables and MFFC sizing — shared helpers of the rewriting and
    refactoring passes. *)

(** [cone_tt g ~inputs ~root] is the local function of [root] in terms of
    the cut [inputs] (at most 16 of them), or [None] when the cut does not
    bound the cone. *)
val cone_tt : Aig.Network.t -> inputs:int array -> root:int -> Bv.Tt.t option

(** [mffc_size g ~fanouts ~inputs ~root] counts the AND nodes of the cone
    that would become dangling if [root] were replaced (maximum fanout-free
    cone restricted to the cut cone).  [fanouts] is
    [Network.fanout_counts g]. *)
val mffc_size :
  Aig.Network.t -> fanouts:int array -> inputs:int array -> root:int -> int

(** [build_form dst form input_lits] materialises a factored form in [dst],
    feeding leaf variable [i] with [input_lits.(i)]. *)
val build_form : Aig.Network.t -> Bv.Sop.form -> Aig.Lit.t array -> Aig.Lit.t
