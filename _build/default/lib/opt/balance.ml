let run g =
  let fanouts = Aig.Network.fanout_counts g in
  let ng = Aig.Network.create ~capacity:(Aig.Network.num_nodes g) () in
  let map = Array.make (Aig.Network.num_nodes g) (-1) in
  map.(0) <- Aig.Lit.const_false;
  let map_lit l = Aig.Lit.xor_compl map.(Aig.Lit.node l) (Aig.Lit.is_compl l) in
  (* Levels of the network under construction, memoised on demand. *)
  let lvl = Hashtbl.create 1024 in
  let rec level_of_node n =
    if not (Aig.Network.is_and ng n) then 0
    else
      match Hashtbl.find_opt lvl n with
      | Some l -> l
      | None ->
          let l0 = level_of_node (Aig.Lit.node (Aig.Network.fanin0 ng n)) in
          let l1 = level_of_node (Aig.Lit.node (Aig.Network.fanin1 ng n)) in
          let l = 1 + max l0 l1 in
          Hashtbl.replace lvl n l;
          l
  in
  let level_of l = level_of_node (Aig.Lit.node l) in
  (* Collect the conjunct leaves of the maximal AND tree rooted at [n]:
     descend through non-complemented fanin edges into single-fanout AND
     nodes. *)
  let rec leaves acc l =
    let n = Aig.Lit.node l in
    if (not (Aig.Lit.is_compl l)) && Aig.Network.is_and g n && fanouts.(n) <= 1
    then leaves (leaves acc (Aig.Network.fanin0 g n)) (Aig.Network.fanin1 g n)
    else l :: acc
  in
  (* Combine the two shallowest operands first (Huffman-style), yielding a
     depth-minimal conjunction tree. *)
  let build_balanced lits =
    let rec insert l = function
      | [] -> [ l ]
      | x :: rest as all ->
          if level_of l <= level_of x then l :: all else x :: insert l rest
    in
    let rec go = function
      | [] -> Aig.Lit.const_true
      | [ l ] -> l
      | a :: b :: rest -> go (insert (Aig.Network.add_and ng a b) rest)
    in
    go (List.fold_left (fun acc l -> insert l acc) [] lits)
  in
  Aig.Network.iter_nodes g (fun n ->
      if Aig.Network.is_pi g n then map.(n) <- Aig.Network.add_pi ng
      else if Aig.Network.is_and g n then begin
        let ls =
          leaves (leaves [] (Aig.Network.fanin0 g n)) (Aig.Network.fanin1 g n)
        in
        map.(n) <- build_balanced (List.map map_lit ls)
      end);
  Array.iter (fun l -> Aig.Network.add_po ng (map_lit l)) (Aig.Network.pos g);
  (Aig.Reduce.sweep ng).Aig.Reduce.network
