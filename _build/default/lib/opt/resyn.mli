(** The [resyn2]-style optimisation script used to produce the "optimized"
    circuit of every benchmark miter (the paper runs ABC [resyn2] — several
    rounds of balancing, rewriting and refactoring). *)

(** [resyn2 g]: balance; rewrite; refactor; balance; rewrite; rewrite;
    balance; refactor; rewrite; balance. *)
val resyn2 : Aig.Network.t -> Aig.Network.t

(** A single light round: balance; rewrite; balance — cheaper, for large
    inputs. *)
val light : Aig.Network.t -> Aig.Network.t
