let rec form_gates = function
  | Bv.Sop.Const _ | Bv.Sop.Lit _ -> 0
  | Bv.Sop.And (a, b) | Bv.Sop.Or (a, b) -> 1 + form_gates a + form_gates b

let run ?(k = 8) g =
  let fanouts = Aig.Network.fanout_counts g in
  let levels = Aig.Network.levels g in
  let prio = Array.make (Aig.Network.num_nodes g) [] in
  for i = 0 to Aig.Network.num_pis g - 1 do
    let p = Aig.Network.pi g i in
    prio.(p) <- [ Cuts.Cut.trivial p ]
  done;
  let ecfg = { Cuts.Enumerate.k_l = k; c = 3 } in
  Aig.Network.iter_ands g (fun n ->
      prio.(n) <-
        Cuts.Enumerate.node_cuts g ecfg ~pass:Cuts.Criteria.Small_level_first
          ~fanouts ~levels ~prio ~sim_target:None n);
  let decide n =
    if not (Aig.Network.is_and g n) then Drive.Default
    else begin
      let best = ref Drive.Default and best_gain = ref 0 in
      List.iter
        (fun cut ->
          if Array.length cut >= 3 then
            let saved = Conetv.mffc_size g ~fanouts ~inputs:cut ~root:n in
            if saved >= 3 then
              match Conetv.cone_tt g ~inputs:cut ~root:n with
              | None -> ()
              | Some tt ->
                  let form = Bv.Sop.factor (Bv.Isop.isop tt) in
                  let gain = saved - form_gates form in
                  if gain > !best_gain then begin
                    best_gain := gain;
                    best := Drive.Replace { inputs = cut; form }
                  end)
        prio.(n);
      !best
    end
  in
  Drive.rebuild g ~decide
