lib/opt/refactor.ml: Aig Array Bv Conetv Cuts Drive List
