lib/opt/resyn.ml: Balance Refactor Rewrite Xorflip
