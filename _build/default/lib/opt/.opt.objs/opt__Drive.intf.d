lib/opt/drive.mli: Aig Bv
