lib/opt/xorflip.mli: Aig
