lib/opt/conetv.ml: Aig Array Bv Hashtbl List
