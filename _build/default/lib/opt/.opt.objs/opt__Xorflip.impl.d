lib/opt/xorflip.ml: Aig Array
