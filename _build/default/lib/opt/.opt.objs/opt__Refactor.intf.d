lib/opt/refactor.mli: Aig
