lib/opt/resyn.mli: Aig
