lib/opt/balance.ml: Aig Array Hashtbl List
