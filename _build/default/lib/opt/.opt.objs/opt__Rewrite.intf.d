lib/opt/rewrite.mli: Aig
