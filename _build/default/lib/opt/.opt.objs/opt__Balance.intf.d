lib/opt/balance.mli: Aig
