lib/opt/drive.ml: Aig Array Bv Conetv
