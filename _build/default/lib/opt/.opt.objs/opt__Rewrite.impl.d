lib/opt/rewrite.ml: Aig Array Bv Conetv Cuts Drive Hashtbl List
