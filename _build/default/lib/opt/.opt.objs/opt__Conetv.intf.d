lib/opt/conetv.mli: Aig Bv
