(* Detect n = AND(!x, !y) with x = AND(p, q), y = AND(r, s) over the same
   two operand nodes {a, b}.  Polarity patterns (a&b | !a&!b) mean n = a^b;
   (a&!b | !a&b) mean n = !(a^b). *)
type shape = Xor of Aig.Lit.t * Aig.Lit.t | Xnor of Aig.Lit.t * Aig.Lit.t

let detect g n =
  if not (Aig.Network.is_and g n) then None
  else begin
    let f0 = Aig.Network.fanin0 g n and f1 = Aig.Network.fanin1 g n in
    if not (Aig.Lit.is_compl f0 && Aig.Lit.is_compl f1) then None
    else begin
      let x = Aig.Lit.node f0 and y = Aig.Lit.node f1 in
      if not (Aig.Network.is_and g x && Aig.Network.is_and g y) then None
      else begin
        let p = Aig.Network.fanin0 g x and q = Aig.Network.fanin1 g x in
        let r = Aig.Network.fanin0 g y and s = Aig.Network.fanin1 g y in
        (* Match operand nodes irrespective of order (fanins are sorted, so
           p/r and q/s line up when the operand nodes agree). *)
        if Aig.Lit.node p = Aig.Lit.node r && Aig.Lit.node q = Aig.Lit.node s
        then begin
          let cp = Aig.Lit.is_compl p <> Aig.Lit.is_compl r in
          let cq = Aig.Lit.is_compl q <> Aig.Lit.is_compl s in
          if cp && cq then
            (* x = u&v, y = !u&!v (up to a consistent relabeling):
               n = !(u&v) & !(!u&!v).  Whether this is XOR or XNOR depends
               on the polarity pattern of x's fanins. *)
            if Aig.Lit.is_compl p = Aig.Lit.is_compl q then
              (* u&v or !u&!v in the same gate: n = u ^ v *)
              Some (Xor (Aig.Lit.abs p, Aig.Lit.abs q))
            else
              (* u&!v pattern: n = !(u ^ v) *)
              Some (Xnor (Aig.Lit.abs p, Aig.Lit.abs q))
          else None
        end
        else None
      end
    end
  end

(* Flip a deterministic pseudo-random subset of the detected shapes.  Real
   rewriting only restructures where it sees gain, so large parts of the
   circuit keep their original structure; flipping everything would leave
   the two circuits of a miter with no shared internal nodes, starving the
   sweeping engine of candidate cuts — unrealistically adversarial. *)
let should_flip n = (n * 2654435761) land 0x7fffffff mod 16 < 9

let run g =
  let ng = Aig.Network.create ~capacity:(Aig.Network.num_nodes g) () in
  let map = Array.make (Aig.Network.num_nodes g) (-1) in
  map.(0) <- Aig.Lit.const_false;
  let map_lit l = Aig.Lit.xor_compl map.(Aig.Lit.node l) (Aig.Lit.is_compl l) in
  let xor_alt a b =
    (* (a & !b) | (!a & b), the dual of the (a&b)/(!a&!b) decomposition. *)
    let u = Aig.Network.add_and ng a (Aig.Lit.neg b) in
    let v = Aig.Network.add_and ng (Aig.Lit.neg a) b in
    Aig.Lit.neg (Aig.Network.add_and ng (Aig.Lit.neg u) (Aig.Lit.neg v))
  in
  let xnor_alt a b =
    (* (a & b) | (!a & !b). *)
    let u = Aig.Network.add_and ng a b in
    let v = Aig.Network.add_and ng (Aig.Lit.neg a) (Aig.Lit.neg b) in
    Aig.Lit.neg (Aig.Network.add_and ng (Aig.Lit.neg u) (Aig.Lit.neg v))
  in
  Aig.Network.iter_nodes g (fun n ->
      if Aig.Network.is_pi g n then map.(n) <- Aig.Network.add_pi ng
      else if Aig.Network.is_and g n then
        map.(n) <-
          (match (if should_flip n then detect g n else None) with
          | Some (Xor (a, b)) -> xor_alt (map_lit a) (map_lit b)
          | Some (Xnor (a, b)) -> xnor_alt (map_lit a) (map_lit b)
          | None ->
              Aig.Network.add_and ng
                (map_lit (Aig.Network.fanin0 g n))
                (map_lit (Aig.Network.fanin1 g n))));
  Array.iter (fun l -> Aig.Network.add_po ng (map_lit l)) (Aig.Network.pos g);
  (Aig.Reduce.sweep ng).Aig.Reduce.network
