(** AND-tree balancing (ABC [balance] analogue).

    Maximal conjunction trees — chains of AND nodes reached through
    non-complemented edges from single-fanout nodes — are collected and
    rebuilt as depth-minimal balanced trees, pairing the shallowest
    operands first.  The result is functionally equivalent with usually a
    smaller network level. *)

val run : Aig.Network.t -> Aig.Network.t
