(** Cone refactoring (ABC [refactor] analogue).

    Like {!Rewrite} but with larger cuts (up to 8 inputs) and a direct
    factored ISOP of the cone function — no NPN library, since the class
    space is too large to cache.  Only cones with a sizeable fanout-free
    core are replaced. *)

val run : ?k:int -> Aig.Network.t -> Aig.Network.t
