let rec form_gates = function
  | Bv.Sop.Const _ | Bv.Sop.Lit _ -> 0
  | Bv.Sop.And (a, b) | Bv.Sop.Or (a, b) -> 1 + form_gates a + form_gates b

(* Factored form of the canonical representative of each NPN class,
   computed once per class from its irredundant SOP. *)
let class_form cache canon =
  match Hashtbl.find_opt cache canon with
  | Some f -> f
  | None ->
      let tt = Bv.Tt.of_uint16 canon in
      let f = Bv.Sop.factor (Bv.Isop.isop tt) in
      Hashtbl.replace cache canon f;
      f

let compute_priority_cuts g =
  let fanouts = Aig.Network.fanout_counts g in
  let levels = Aig.Network.levels g in
  let prio = Array.make (Aig.Network.num_nodes g) [] in
  for i = 0 to Aig.Network.num_pis g - 1 do
    let p = Aig.Network.pi g i in
    prio.(p) <- [ Cuts.Cut.trivial p ]
  done;
  let ecfg = { Cuts.Enumerate.k_l = 4; c = 5 } in
  Aig.Network.iter_ands g (fun n ->
      prio.(n) <-
        Cuts.Enumerate.node_cuts g ecfg ~pass:Cuts.Criteria.Fanout_first
          ~fanouts ~levels ~prio ~sim_target:None n);
  (prio, fanouts)

let run g =
  let prio, fanouts = compute_priority_cuts g in
  let cache = Hashtbl.create 256 in
  let decide n =
    if not (Aig.Network.is_and g n) then Drive.Default
    else begin
      (* Pick the cut with the best gain. *)
      let best = ref Drive.Default and best_gain = ref 0 in
      List.iter
        (fun cut ->
          if Array.length cut >= 2 then
            match Conetv.cone_tt g ~inputs:cut ~root:n with
            | None -> ()
            | Some tt ->
                let t16 = Bv.Tt.to_uint16 tt in
                let canon, tf = Bv.Npn.canonize t16 in
                let form = class_form cache canon in
                let cost = form_gates form in
                let saved = Conetv.mffc_size g ~fanouts ~inputs:cut ~root:n in
                let gain = saved - cost in
                if gain > !best_gain then begin
                  best_gain := gain;
                  (* Feed canonical variable [i] with original input
                     [itf.perm.(i)], complemented per the inverse
                     transform; complement the output when required. *)
                  let itf = Bv.Npn.invert tf in
                  let inputs4 =
                    Array.init 4 (fun i ->
                        let src = itf.Bv.Npn.perm.(i) in
                        if src < Array.length cut then cut.(src) else 0)
                  in
                  ignore form;
                  let wrap =
                    Array.init 4 (fun i ->
                        (itf.Bv.Npn.input_compl lsr i) land 1 = 1)
                  in
                  (* Complemented inputs fold into the form's leaves; an
                     output complement is realised by factoring the ISOP of
                     the complemented canonical function instead. *)
                  let rec fix = function
                    | Bv.Sop.Const b -> Bv.Sop.Const b
                    | Bv.Sop.Lit (v, c) -> Bv.Sop.Lit (v, c <> wrap.(v))
                    | Bv.Sop.And (a, b) -> Bv.Sop.And (fix a, fix b)
                    | Bv.Sop.Or (a, b) -> Bv.Sop.Or (fix a, fix b)
                  in
                  let form =
                    if itf.Bv.Npn.output_compl then
                      let tt_c = Bv.Tt.bnot (Bv.Tt.of_uint16 canon) in
                      fix (Bv.Sop.factor (Bv.Isop.isop tt_c))
                    else fix (class_form cache canon)
                  in
                  best := Drive.Replace { inputs = inputs4; form }
                end)
        prio.(n);
      !best
    end
  in
  Drive.rebuild g ~decide
