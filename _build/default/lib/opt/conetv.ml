let cone_tt g ~inputs ~root =
  let nvars = Array.length inputs in
  if nvars > 16 then invalid_arg "Conetv.cone_tt: more than 16 inputs";
  match Aig.Cone.extract g ~roots:[| root |] ~inputs with
  | None -> None
  | Some { Aig.Cone.inputs; nodes } ->
      let tts = Hashtbl.create 32 in
      Array.iteri
        (fun i n -> Hashtbl.replace tts n (Bv.Tt.proj ~nvars i))
        inputs;
      Array.iter
        (fun n ->
          let f0 = Aig.Network.fanin0 g n and f1 = Aig.Network.fanin1 g n in
          let t0 = Hashtbl.find tts (Aig.Lit.node f0) in
          let t1 = Hashtbl.find tts (Aig.Lit.node f1) in
          Hashtbl.replace tts n
            (Bv.Tt.and_maybe_not ~c0:(Aig.Lit.is_compl f0) t0
               ~c1:(Aig.Lit.is_compl f1) t1))
        nodes;
      (* The root may coincide with a cut input (trivial cone). *)
      Hashtbl.find_opt tts root

let mffc_size g ~fanouts ~inputs ~root =
  match Aig.Cone.extract g ~roots:[| root |] ~inputs with
  | None -> 0
  | Some { Aig.Cone.nodes; _ } ->
      let in_cone = Hashtbl.create 32 in
      Array.iter (fun n -> Hashtbl.replace in_cone n ()) nodes;
      (* Reference-count dereferencing from the root. *)
      let refs = Hashtbl.create 32 in
      Array.iter (fun n -> Hashtbl.replace refs n fanouts.(n)) nodes;
      let count = ref 0 in
      let rec deref n =
        incr count;
        List.iter
          (fun f ->
            let m = Aig.Lit.node f in
            if Hashtbl.mem in_cone m then begin
              let r = Hashtbl.find refs m - 1 in
              Hashtbl.replace refs m r;
              if r = 0 then deref m
            end)
          [ Aig.Network.fanin0 g n; Aig.Network.fanin1 g n ]
      in
      if Hashtbl.mem in_cone root then deref root;
      !count

let rec build_form dst form input_lits =
  match form with
  | Bv.Sop.Const b -> if b then Aig.Lit.const_true else Aig.Lit.const_false
  | Bv.Sop.Lit (v, compl_) -> Aig.Lit.xor_compl input_lits.(v) compl_
  | Bv.Sop.And (a, b) ->
      Aig.Network.add_and dst (build_form dst a input_lits)
        (build_form dst b input_lits)
  | Bv.Sop.Or (a, b) ->
      Aig.Network.add_or dst (build_form dst a input_lits)
        (build_form dst b input_lits)
