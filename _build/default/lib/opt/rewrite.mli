(** DAG-aware 4-cut rewriting (ABC [rewrite] analogue).

    For every node, 4-input cuts are enumerated; the cut function is
    NPN-canonicalised and resynthesised from a cached factored irredundant
    SOP of its class representative; the node is replaced when the new
    structure costs fewer AND gates than the maximum fanout-free cone it
    frees.  Functional equivalence is preserved by construction. *)

val run : Aig.Network.t -> Aig.Network.t
