type decision =
  | Default
  | Replace of { inputs : int array; form : Bv.Sop.form }

let rebuild g ~decide =
  let ng = Aig.Network.create ~capacity:(Aig.Network.num_nodes g) () in
  let map = Array.make (Aig.Network.num_nodes g) (-1) in
  map.(0) <- Aig.Lit.const_false;
  for i = 0 to Aig.Network.num_pis g - 1 do
    map.(Aig.Network.pi g i) <- Aig.Network.add_pi ng
  done;
  let rec map_node n =
    if map.(n) >= 0 then map.(n)
    else begin
      let l =
        match decide n with
        | Replace { inputs; form } ->
            let input_lits = Array.map (fun i -> map_node i) inputs in
            Conetv.build_form ng form input_lits
        | Default ->
            Aig.Network.add_and ng
              (map_lit (Aig.Network.fanin0 g n))
              (map_lit (Aig.Network.fanin1 g n))
      in
      map.(n) <- l;
      l
    end
  and map_lit l = Aig.Lit.xor_compl (map_node (Aig.Lit.node l)) (Aig.Lit.is_compl l) in
  Array.iter (fun l -> Aig.Network.add_po ng (map_lit l)) (Aig.Network.pos g);
  (Aig.Reduce.sweep ng).Aig.Reduce.network
