let resyn2 g =
  g |> Xorflip.run |> Balance.run |> Rewrite.run |> Refactor.run |> Balance.run
  |> Rewrite.run |> Rewrite.run |> Balance.run |> Refactor.run |> Rewrite.run
  |> Balance.run

let light g = g |> Xorflip.run |> Balance.run |> Rewrite.run |> Balance.run
