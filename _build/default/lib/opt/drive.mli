(** Shared rebuild driver for the rewriting passes: every node either maps
    to a plain AND of its mapped fanins or is replaced by a resynthesised
    factored form over a cut.  The new network is built lazily from the
    POs, so logic made dangling by replacements is never constructed. *)

type decision =
  | Default
  | Replace of { inputs : int array; form : Bv.Sop.form }
      (** [inputs] are old-graph node ids (the cut); variable [i] of
          [form] refers to [inputs.(i)]. *)

val rebuild : Aig.Network.t -> decide:(int -> decision) -> Aig.Network.t
