(** Alternative-decomposition selection for XOR/XNOR cones.

    An XOR over an AIG has two classic 3-AND decompositions:
    [a^b = !(!(a&b) & !(!a&!b))] and [a^b = !(!(a&!b) & !(!a&b))].
    ABC's rewriting switches between such decompositions through its
    precomputed NPN structure library; this pass supplies the same
    diversity explicitly by re-expressing every detected XOR/XNOR shape
    with the dual decomposition.  It preserves function exactly while
    breaking structural sharing against the original circuit — which is
    what makes the benchmark miters non-trivial, as with real resyn2. *)

val run : Aig.Network.t -> Aig.Network.t
