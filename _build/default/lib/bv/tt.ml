type t = { nvars : int; bits : Bits.t }

let check_nvars k =
  if k < 0 || k > 24 then invalid_arg "Tt: nvars out of supported range [0,24]"

let len_of_nvars k = 1 lsl k

let const0 ~nvars =
  check_nvars nvars;
  { nvars; bits = Bits.create ~len:(len_of_nvars nvars) false }

let const1 ~nvars =
  check_nvars nvars;
  { nvars; bits = Bits.create ~len:(len_of_nvars nvars) true }

(* Repeating masks of the projection tables for variables 0..5. *)
let proj_masks =
  [| 0xaaaaaaaaaaaaaaaaL; 0xccccccccccccccccL; 0xf0f0f0f0f0f0f0f0L;
     0xff00ff00ff00ff00L; 0xffff0000ffff0000L; 0xffffffff00000000L |]

let proj_word ~var w =
  if var < 0 then invalid_arg "Tt.proj_word: negative variable";
  if var < 6 then proj_masks.(var)
  else if (w lsr (var - 6)) land 1 = 1 then -1L
  else 0L

let proj ~nvars i =
  check_nvars nvars;
  if i < 0 || i >= nvars then invalid_arg "Tt.proj: variable out of range";
  let bits = Bits.create ~len:(len_of_nvars nvars) false in
  let nw = Bits.num_words bits in
  for w = 0 to nw - 1 do
    Bits.set_word bits w (proj_word ~var:i w)
  done;
  { nvars; bits }

let same_arity a b name =
  if a.nvars <> b.nvars then invalid_arg (name ^ ": arity mismatch")

let bnot a = { a with bits = Bits.bnot a.bits }

let band a b =
  same_arity a b "Tt.band";
  { a with bits = Bits.band a.bits b.bits }

let bor a b =
  same_arity a b "Tt.bor";
  { a with bits = Bits.bor a.bits b.bits }

let bxor a b =
  same_arity a b "Tt.bxor";
  { a with bits = Bits.bxor a.bits b.bits }

let and_maybe_not ~c0 a ~c1 b =
  same_arity a b "Tt.and_maybe_not";
  { a with bits = Bits.and_maybe_not ~c0 a.bits ~c1 b.bits }

let equal a b = a.nvars = b.nvars && Bits.equal a.bits b.bits
let is_const0 a = Bits.is_zero a.bits
let is_const1 a = Bits.is_ones a.bits

let index_of_assignment vals =
  let idx = ref 0 in
  Array.iteri (fun i b -> if b then idx := !idx lor (1 lsl i)) vals;
  !idx

let eval tt vals =
  if Array.length vals <> tt.nvars then invalid_arg "Tt.eval: arity mismatch";
  Bits.get tt.bits (index_of_assignment vals)

let of_fun ~nvars f =
  check_nvars nvars;
  let bits = Bits.create ~len:(len_of_nvars nvars) false in
  let vals = Array.make nvars false in
  for i = 0 to len_of_nvars nvars - 1 do
    for v = 0 to nvars - 1 do
      vals.(v) <- (i lsr v) land 1 = 1
    done;
    if f vals then Bits.set bits i true
  done;
  { nvars; bits }

let cofactor tt i b =
  if i < 0 || i >= tt.nvars then invalid_arg "Tt.cofactor: variable out of range";
  let n = len_of_nvars tt.nvars in
  let bits = Bits.create ~len:n false in
  let bit = 1 lsl i in
  for p = 0 to n - 1 do
    let src = if b then p lor bit else p land lnot bit in
    if Bits.get tt.bits src then Bits.set bits p true
  done;
  { tt with bits }

let depends_on tt i = not (equal (cofactor tt i false) (cofactor tt i true))
let count_ones tt = Bits.popcount tt.bits

let of_uint16 x =
  let bits = Bits.create ~len:16 false in
  Bits.set_word bits 0 (Int64.of_int (x land 0xffff));
  { nvars = 4; bits }

let to_uint16 tt =
  if tt.nvars > 4 then invalid_arg "Tt.to_uint16: arity exceeds 4";
  (* Widen smaller arities by repeating the pattern up to 16 bits. *)
  let base = Int64.to_int (Bits.get_word tt.bits 0) in
  let l = len_of_nvars tt.nvars in
  let rec widen v width = if width >= 16 then v else widen (v lor (v lsl width)) (width * 2) in
  widen (base land ((1 lsl l) - 1)) l land 0xffff

let of_string ~nvars s =
  check_nvars nvars;
  if String.length s <> len_of_nvars nvars then
    invalid_arg "Tt.of_string: length does not match arity";
  { nvars; bits = Bits.of_string s }

let to_string tt = Bits.to_string tt.bits
let pp fmt tt = Format.pp_print_string fmt (to_string tt)
