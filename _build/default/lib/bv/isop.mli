(** Irredundant sum-of-products computation (Minato–Morreale).

    [isop tt] returns an SOP covering exactly the on-set of [tt]; every cube
    is prime relative to the interval and no cube is redundant.  Used by the
    rewriting and refactoring passes to resynthesise cut functions. *)

(** Exact irredundant cover of the function. *)
val isop : Tt.t -> Sop.t

(** [isop_interval ~lower ~upper] returns an SOP [s] with
    [lower <= s <= upper] (as functions); used when don't-cares are known. *)
val isop_interval : lower:Tt.t -> upper:Tt.t -> Sop.t
