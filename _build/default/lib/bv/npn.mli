(** Exact NPN canonicalization of 4-input functions.

    Two functions are NPN-equivalent when one can be obtained from the other
    by permuting inputs, complementing a subset of inputs and optionally
    complementing the output.  The rewriting pass keys its structure library
    on the canonical representative, so a handful of precomputed optimal
    implementations covers all 65536 4-input functions (222 NPN classes). *)

type transform = {
  perm : int array;  (** [perm.(i)] is the source variable feeding slot [i] *)
  input_compl : int;  (** bit [i] set: input slot [i] is complemented *)
  output_compl : bool;
}

(** The identity transform. *)
val identity : transform

(** [apply tf tt] transforms a 16-bit truth table: the result [g] satisfies
    [g(x_0..x_3) = f(y_0..y_3) xor out] with
    [y_i = x_{perm.(i)} xor input_compl_i]. *)
val apply : transform -> int -> int

(** [canonize tt] returns the canonical class representative (smallest
    transformed table) and a transform [tf] with [apply tf tt = canon]. *)
val canonize : int -> int * transform

(** [invert tf] is the transform undoing [tf]:
    [apply (invert tf) (apply tf tt) = tt]. *)
val invert : transform -> transform

(** Compose: [apply (compose a b) tt = apply a (apply b tt)]. *)
val compose : transform -> transform -> transform
