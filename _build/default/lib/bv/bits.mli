(** Packed bit-vectors backed by [Bytes] with 64-bit word access.

    A bit-vector of length [l] stores bits [0 .. l-1]; bit [i] of the vector
    corresponds to pattern index [i] when the vector is used as a truth table
    or as a column of simulation patterns.  All operations keep the unused
    tail bits of the last word zeroed, so structural equality of the
    underlying bytes coincides with logical equality. *)

type t

(** [create ~len fill] is a vector of [len] bits, all set to [fill]. *)
val create : len:int -> bool -> t

(** Number of bits. *)
val length : t -> int

(** Number of 64-bit words backing the vector. *)
val num_words : t -> int

(** Deep copy. *)
val copy : t -> t

(** [get v i] is bit [i].  Raises [Invalid_argument] when out of range. *)
val get : t -> int -> bool

(** [set v i b] sets bit [i] to [b] in place. *)
val set : t -> int -> bool -> unit

(** [get_word v w] is the [w]-th 64-bit word. *)
val get_word : t -> int -> int64

(** [set_word v w x] stores word [x] at index [w]; tail bits of the last
    word are masked off automatically. *)
val set_word : t -> int -> int64 -> unit

(** Bitwise negation, allocating. *)
val bnot : t -> t

(** Bitwise AND of two vectors of equal length, allocating. *)
val band : t -> t -> t

(** Bitwise OR, allocating. *)
val bor : t -> t -> t

(** Bitwise XOR, allocating. *)
val bxor : t -> t -> t

(** [and_maybe_not ~c0 a ~c1 b] is [(a xor c0) land (b xor c1)] where a
    [true] flag complements the operand — the fundamental AIG simulation
    step. *)
val and_maybe_not : c0:bool -> t -> c1:bool -> t -> t

(** In-place destination variants used by the simulators. *)
val blit_not : src:t -> dst:t -> unit

val blit_and : c0:bool -> t -> c1:bool -> t -> dst:t -> unit

(** Logical equality. *)
val equal : t -> t -> bool

(** [equal_mod_compl a b] is [`Equal] if [a = b], [`Compl] if [a = not b],
    [`Diff] otherwise — one pass over the words. *)
val equal_mod_compl : t -> t -> [ `Equal | `Compl | `Diff ]

(** Total order (by length, then lexicographic on words). *)
val compare : t -> t -> int

(** Hash of the contents, suitable for [Hashtbl]. *)
val hash : t -> int

(** True when every bit is 0. *)
val is_zero : t -> bool

(** True when every bit is 1. *)
val is_ones : t -> bool

(** Number of set bits. *)
val popcount : t -> int

(** [ctz64 x] is the number of trailing zero bits of [x], and 64 when
    [x = 0].  Branchless De Bruijn multiplication — the shared primitive
    behind {!first_diff}, {!first_one} and the simulators' mismatch
    pattern extraction. *)
val ctz64 : int64 -> int

(** Index of the first bit where the vectors differ, if any. *)
val first_diff : t -> t -> int option

(** Index of the first set bit, if any. *)
val first_one : t -> int option

(** [randomize v rand64] fills [v] with words drawn from [rand64]. *)
val randomize : t -> (unit -> int64) -> unit

(** [to_string v] prints in truth-table convention: most significant
    pattern first, i.e. bit [len-1] down to bit [0]. *)
val to_string : t -> string

(** Inverse of [to_string]. *)
val of_string : string -> t

val pp : Format.formatter -> t -> unit
