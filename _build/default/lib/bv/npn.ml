type transform = { perm : int array; input_compl : int; output_compl : bool }

let identity = { perm = [| 0; 1; 2; 3 |]; input_compl = 0; output_compl = false }

let apply tf tt =
  let r = ref 0 in
  for m = 0 to 15 do
    (* y_i = x_{perm.(i)} xor c_i ; source index is built from the y bits. *)
    let src = ref 0 in
    for i = 0 to 3 do
      let x = (m lsr tf.perm.(i)) land 1 in
      let y = x lxor ((tf.input_compl lsr i) land 1) in
      src := !src lor (y lsl i)
    done;
    let bit = (tt lsr !src) land 1 in
    let bit = if tf.output_compl then bit lxor 1 else bit in
    r := !r lor (bit lsl m)
  done;
  !r

let all_perms =
  let rec perms = function
    | [] -> [ [] ]
    | l ->
        List.concat_map
          (fun x ->
            let rest = List.filter (fun y -> y <> x) l in
            List.map (fun p -> x :: p) (perms rest))
          l
  in
  List.map Array.of_list (perms [ 0; 1; 2; 3 ])

let canonize tt =
  let best = ref (tt, identity) in
  List.iter
    (fun perm ->
      for input_compl = 0 to 15 do
        for out = 0 to 1 do
          let tf = { perm; input_compl; output_compl = out = 1 } in
          let v = apply tf tt in
          if v < fst !best then best := (v, tf)
        done
      done)
    all_perms;
  !best

let invert tf =
  let iperm = Array.make 4 0 in
  Array.iteri (fun i j -> iperm.(j) <- i) tf.perm;
  let input_compl = ref 0 in
  for j = 0 to 3 do
    if (tf.input_compl lsr iperm.(j)) land 1 = 1 then
      input_compl := !input_compl lor (1 lsl j)
  done;
  { perm = iperm; input_compl = !input_compl; output_compl = tf.output_compl }

let compose a b =
  let perm = Array.init 4 (fun i -> a.perm.(b.perm.(i))) in
  let input_compl = ref 0 in
  for i = 0 to 3 do
    let c =
      ((b.input_compl lsr i) land 1) lxor ((a.input_compl lsr b.perm.(i)) land 1)
    in
    if c = 1 then input_compl := !input_compl lor (1 lsl i)
  done;
  {
    perm;
    input_compl = !input_compl;
    output_compl = a.output_compl <> b.output_compl;
  }
