type cube = { pos : int; neg : int }
type t = { nvars : int; cubes : cube list }

let full_cube = { pos = 0; neg = 0 }

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let cube_literals c = popcount c.pos + popcount c.neg
let literals sop = List.fold_left (fun acc c -> acc + cube_literals c) 0 sop.cubes

let eval_cube c vals =
  let ok = ref true in
  Array.iteri
    (fun i v ->
      let bit = 1 lsl i in
      if c.pos land bit <> 0 && not v then ok := false;
      if c.neg land bit <> 0 && v then ok := false)
    vals;
  !ok

let eval sop vals = List.exists (fun c -> eval_cube c vals) sop.cubes

let to_tt sop = Tt.of_fun ~nvars:sop.nvars (fun vals -> eval sop vals)

type form =
  | Const of bool
  | Lit of int * bool
  | And of form * form
  | Or of form * form

let rec eval_form f vals =
  match f with
  | Const b -> b
  | Lit (v, compl_) -> vals.(v) <> compl_
  | And (a, b) -> eval_form a vals && eval_form b vals
  | Or (a, b) -> eval_form a vals || eval_form b vals

let rec form_literals = function
  | Const _ -> 0
  | Lit _ -> 1
  | And (a, b) | Or (a, b) -> form_literals a + form_literals b

(* Count occurrences of every literal; returns the most frequent one
   occurring in at least two cubes, if any. *)
let most_frequent_literal nvars cubes =
  let best = ref None in
  for v = 0 to nvars - 1 do
    let bit = 1 lsl v in
    let np = List.length (List.filter (fun c -> c.pos land bit <> 0) cubes) in
    let nn = List.length (List.filter (fun c -> c.neg land bit <> 0) cubes) in
    let consider count compl_ =
      if count >= 2 then
        match !best with
        | Some (c, _, _) when c >= count -> ()
        | _ -> best := Some (count, v, compl_)
    in
    consider np false;
    consider nn true
  done;
  match !best with Some (_, v, compl_) -> Some (v, compl_) | None -> None

let cube_to_form c =
  let lits = ref [] in
  for v = 29 downto 0 do
    let bit = 1 lsl v in
    if c.pos land bit <> 0 then lits := Lit (v, false) :: !lits;
    if c.neg land bit <> 0 then lits := Lit (v, true) :: !lits
  done;
  match !lits with
  | [] -> Const true
  | f :: rest -> List.fold_left (fun acc l -> And (acc, l)) f rest

let rec factor_cubes nvars cubes =
  match cubes with
  | [] -> Const false
  | [ c ] -> cube_to_form c
  | _ -> (
      match most_frequent_literal nvars cubes with
      | None ->
          let forms = List.map cube_to_form cubes in
          List.fold_left (fun acc f -> Or (acc, f)) (List.hd forms) (List.tl forms)
      | Some (v, compl_) ->
          let bit = 1 lsl v in
          let has c = if compl_ then c.neg land bit <> 0 else c.pos land bit <> 0 in
          let inside, outside = List.partition has cubes in
          let strip c =
            if compl_ then { c with neg = c.neg land lnot bit }
            else { c with pos = c.pos land lnot bit }
          in
          let quotient = factor_cubes nvars (List.map strip inside) in
          let divided = And (Lit (v, compl_), quotient) in
          if outside = [] then divided
          else Or (divided, factor_cubes nvars outside))

let factor sop = factor_cubes sop.nvars sop.cubes
