lib/bv/tt.ml: Array Bits Format Int64 String
