lib/bv/isop.ml: List Sop Tt
