lib/bv/sop.mli: Tt
