lib/bv/tt.mli: Bits Format
