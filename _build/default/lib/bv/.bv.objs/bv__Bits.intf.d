lib/bv/bits.mli: Format
