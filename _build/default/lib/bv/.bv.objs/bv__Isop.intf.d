lib/bv/isop.mli: Sop Tt
