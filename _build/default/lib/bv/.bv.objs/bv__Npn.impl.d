lib/bv/npn.ml: Array List
