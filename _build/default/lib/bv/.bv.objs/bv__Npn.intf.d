lib/bv/npn.mli:
