lib/bv/bits.ml: Array Bytes Format Hashtbl Int64 Stdlib String
