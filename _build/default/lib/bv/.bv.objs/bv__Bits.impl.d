lib/bv/bits.ml: Bytes Format Hashtbl Int64 Stdlib String
