lib/bv/sop.ml: Array List Tt
