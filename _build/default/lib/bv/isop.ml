(* Minato-Morreale irredundant SOP on truth tables.

   [cover l u vars] returns cubes [c] with [l <= c <= u], recursing on the
   highest variable in [vars] on which either bound depends.  The invariant
   maintained by the two recursive literal branches and the final
   literal-free branch is the classical one: the cubes with literal x (resp.
   x') cover the minterms of [l] that cannot be covered without the literal,
   and the remainder is covered inside [u0 & u1]. *)

let rec cover l u vars =
  if Tt.is_const0 l then []
  else if Tt.is_const1 u then [ Sop.full_cube ]
  else
    match vars with
    | [] ->
        (* No variable left: l must be const0 or u const1; l <= u forces it. *)
        assert (Tt.is_const0 l || Tt.is_const1 u);
        if Tt.is_const0 l then [] else [ Sop.full_cube ]
    | v :: rest ->
        if not (Tt.depends_on l v || Tt.depends_on u v) then cover l u rest
        else begin
          let l0 = Tt.cofactor l v false and l1 = Tt.cofactor l v true in
          let u0 = Tt.cofactor u v false and u1 = Tt.cofactor u v true in
          (* Minterms of l0 not coverable by cubes valid on both branches. *)
          let c0 = cover (Tt.band l0 (Tt.bnot u1)) u0 rest in
          let c1 = cover (Tt.band l1 (Tt.bnot u0)) u1 rest in
          let bit = 1 lsl v in
          let cubes0 = List.map (fun c -> Sop.{ c with neg = c.neg lor bit }) c0 in
          let cubes1 = List.map (fun c -> Sop.{ c with pos = c.pos lor bit }) c1 in
          let covered0 = sop_tt l.Tt.nvars c0 in
          let covered1 = sop_tt l.Tt.nvars c1 in
          let l' =
            Tt.bor
              (Tt.band l0 (Tt.bnot covered0))
              (Tt.band l1 (Tt.bnot covered1))
          in
          let cstar = cover l' (Tt.band u0 u1) rest in
          cubes0 @ cubes1 @ cstar
        end

and sop_tt nvars cubes = Sop.to_tt { Sop.nvars; cubes }

let isop_interval ~lower ~upper =
  if lower.Tt.nvars <> upper.Tt.nvars then
    invalid_arg "Isop.isop_interval: arity mismatch";
  let vars = List.init lower.Tt.nvars (fun i -> lower.Tt.nvars - 1 - i) in
  { Sop.nvars = lower.Tt.nvars; cubes = cover lower upper vars }

let isop tt = isop_interval ~lower:tt ~upper:tt
