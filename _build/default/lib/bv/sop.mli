(** Sum-of-products (cube list) representation and a light algebraic
    factoring, used by the refactoring pass of the resyn2 stand-in.

    A cube over [n] variables is a pair of bit masks: [pos] lists the
    variables appearing as positive literals, [neg] those appearing
    complemented.  A variable in neither mask is absent from the cube. *)

type cube = { pos : int; neg : int }

type t = { nvars : int; cubes : cube list }

(** The cube containing no literal (constant true). *)
val full_cube : cube

(** Number of literals in a cube. *)
val cube_literals : cube -> int

(** Total number of literals in the SOP. *)
val literals : t -> int

(** [eval sop vals] evaluates the SOP on an assignment. *)
val eval : t -> bool array -> bool

(** Tabulate the SOP as a truth table. *)
val to_tt : t -> Tt.t

(** A factored Boolean formula tree produced by {!factor}. *)
type form =
  | Const of bool
  | Lit of int * bool  (** variable index, complemented flag *)
  | And of form * form
  | Or of form * form

(** [factor sop] extracts common literals recursively (weak division by the
    most frequent literal), yielding a formula with no more literals than
    the flat SOP and usually fewer. *)
val factor : t -> form

(** Evaluate a factored form on an assignment. *)
val eval_form : form -> bool array -> bool

(** Number of literal leaves in a form. *)
val form_literals : form -> int
