(** Truth tables of [k]-input Boolean functions.

    A truth table is a {!Bits.t} of length [2^k]; bit [i] is the function
    value under the input assignment whose binary encoding is [i]
    (input [a_0] is the least significant bit, as in the paper). *)

type t = { nvars : int; bits : Bits.t }

(** Constant-false function of [nvars] inputs. *)
val const0 : nvars:int -> t

(** Constant-true function of [nvars] inputs. *)
val const1 : nvars:int -> t

(** [proj ~nvars i] is the projection truth table of variable [i]
    ([0 <= i < nvars]), i.e. the function [f(x_0,...,x_{k-1}) = x_i]. *)
val proj : nvars:int -> int -> t

(** [proj_word ~var w] is the [w]-th 64-bit word of the projection table of
    variable [var] — usable without materialising the table, for streaming
    round-based simulation (Algorithm 1). *)
val proj_word : var:int -> int -> int64

val bnot : t -> t
val band : t -> t -> t
val bor : t -> t -> t
val bxor : t -> t -> t

(** AIG simulation step with complemented-edge flags. *)
val and_maybe_not : c0:bool -> t -> c1:bool -> t -> t

val equal : t -> t -> bool
val is_const0 : t -> bool
val is_const1 : t -> bool

(** [eval tt assignment] evaluates the function; [assignment] lists the
    values of inputs [x_0, ..., x_{k-1}]. *)
val eval : t -> bool array -> bool

(** [of_fun ~nvars f] tabulates [f] over all [2^nvars] assignments. *)
val of_fun : nvars:int -> (bool array -> bool) -> t

(** [depends_on tt i] is true when the function value changes with [x_i]
    for at least one assignment of the other inputs. *)
val depends_on : t -> int -> bool

(** [cofactor tt i b] is the [nvars]-input function with [x_i] fixed to [b]
    (the result still formally depends on [nvars] variables). *)
val cofactor : t -> int -> bool -> t

(** Number of satisfying assignments. *)
val count_ones : t -> int

(** [of_uint16 x] is the 4-variable truth table encoded in the low 16 bits
    of [x]; [to_uint16] is its inverse.  Used by the NPN rewriting library. *)
val of_uint16 : int -> t

val to_uint16 : t -> int

(** Parse / print in the paper's most-significant-pattern-first convention. *)
val of_string : nvars:int -> string -> t

val to_string : t -> string

val pp : Format.formatter -> t -> unit
