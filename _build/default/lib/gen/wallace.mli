(** Wallace-tree multiplier — an architecturally different implementation
    of multiplication.  Checking it against the array multiplier of
    {!Arith.multiplier} is a classic hard CEC instance: the two circuits
    share no internal structure, so sweeping finds few internal
    equivalences and the checker must work for its answer. *)

(** [multiplier ~bits]: same interface as {!Arith.multiplier} ([2n] PIs,
    [2n] POs) built from a carry-save reduction tree and a final
    ripple-carry adder. *)
val multiplier : bits:int -> Aig.Network.t
