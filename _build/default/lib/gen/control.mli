(** Control-dominated benchmark families: the voter (majority) circuit of
    the EPFL suite and shallow register-file / display-controller style
    logic standing in for the IWLS [ac97_ctrl] and [vga_lcd] cases. *)

(** Majority of [n] inputs (a popcount tree and a comparator). *)
val voter : n:int -> Aig.Network.t

(** Register-file style control block: address decode, write muxing and a
    read port — wide, shallow (AC97-controller-like shape: depth around a
    dozen levels, very many PIs/POs once doubled). *)
val regfile : regs:int -> width:int -> Aig.Network.t

(** Display-controller style logic: counters compared against programmable
    thresholds, sync/blank decoding and pixel muxing (VGA/LCD-like
    shape). *)
val display : hbits:int -> vbits:int -> Aig.Network.t

(** Random AIG over [pis] inputs with roughly [nodes] gates — fuzzing and
    property-test workloads. *)
val random_logic : pis:int -> nodes:int -> pos:int -> seed:int64 -> Aig.Network.t
