let alu ~bits =
  let g = Aig.Network.create () in
  let a = Vecops.inputs g bits and b = Vecops.inputs g bits in
  let op = Vecops.inputs g 3 in
  let add = Vecops.add g a b in
  let sub, no_borrow = Vecops.sub g a b in
  let map2 f = Array.map2 (fun x y -> f g x y) a b in
  let and_ = map2 Aig.Network.add_and in
  let or_ = map2 Aig.Network.add_or in
  let xor_ = map2 Aig.Network.add_xor in
  let shl1 = Vecops.resize (Vecops.shl a 1) ~width:bits in
  let shr1 = Array.init bits (fun i -> if i + 1 < bits then a.(i + 1) else Aig.Lit.const_false) in
  let results =
    [|
      Vecops.resize add ~width:bits; sub; and_; or_; xor_; shl1; shr1; a;
    |]
  in
  (* 8-way mux tree over the opcode. *)
  let mux_level sel pairs =
    Array.init
      (Array.length pairs / 2)
      (fun i -> Vecops.mux g sel pairs.((2 * i) + 1) pairs.(2 * i))
  in
  let l1 = mux_level op.(0) results in
  let l2 = mux_level op.(1) l1 in
  let result = (mux_level op.(2) l2).(0) in
  let carry =
    (* carry-out of ADD, no-borrow of SUB, 0 otherwise *)
    let is_add =
      Aig.Network.add_and g
        (Aig.Lit.neg op.(0))
        (Aig.Network.add_and g (Aig.Lit.neg op.(1)) (Aig.Lit.neg op.(2)))
    in
    let is_sub =
      Aig.Network.add_and g op.(0)
        (Aig.Network.add_and g (Aig.Lit.neg op.(1)) (Aig.Lit.neg op.(2)))
    in
    Aig.Network.add_or g
      (Aig.Network.add_and g is_add add.(bits))
      (Aig.Network.add_and g is_sub no_borrow)
  in
  let zero =
    Array.fold_left
      (fun acc r -> Aig.Network.add_and g acc (Aig.Lit.neg r))
      Aig.Lit.const_true result
  in
  Vecops.outputs g result;
  Aig.Network.add_po g carry;
  Aig.Network.add_po g zero;
  g
