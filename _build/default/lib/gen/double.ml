let double g =
  let d = Aig.Network.create ~capacity:(2 * Aig.Network.num_nodes g) () in
  let n_pi = Aig.Network.num_pis g in
  let pi1 = Array.init n_pi (fun _ -> Aig.Network.add_pi d) in
  let pi2 = Array.init n_pi (fun _ -> Aig.Network.add_pi d) in
  let out1 = Aig.Miter.append d g ~pi_map:pi1 in
  let out2 = Aig.Miter.append d g ~pi_map:pi2 in
  Array.iter (Aig.Network.add_po d) out1;
  Array.iter (Aig.Network.add_po d) out2;
  d

let rec times n g = if n <= 0 then g else times (n - 1) (double g)
