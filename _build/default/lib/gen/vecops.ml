type vec = Aig.Lit.t array

let inputs g n = Array.init n (fun _ -> Aig.Network.add_pi g)

let const ~width v =
  Array.init width (fun i ->
      if (v lsr i) land 1 = 1 then Aig.Lit.const_true else Aig.Lit.const_false)

let resize v ~width =
  Array.init width (fun i ->
      if i < Array.length v then v.(i) else Aig.Lit.const_false)

let full_adder g a b c =
  let ab = Aig.Network.add_xor g a b in
  let sum = Aig.Network.add_xor g ab c in
  let carry =
    Aig.Network.add_or g (Aig.Network.add_and g a b) (Aig.Network.add_and g ab c)
  in
  (sum, carry)

let add g a b =
  let width = max (Array.length a) (Array.length b) in
  let a = resize a ~width and b = resize b ~width in
  let out = Array.make (width + 1) Aig.Lit.const_false in
  let carry = ref Aig.Lit.const_false in
  for i = 0 to width - 1 do
    let s, c = full_adder g a.(i) b.(i) !carry in
    out.(i) <- s;
    carry := c
  done;
  out.(width) <- !carry;
  out

let sub g a b =
  let width = Array.length a in
  let b = resize b ~width in
  let out = Array.make width Aig.Lit.const_false in
  let carry = ref Aig.Lit.const_true in
  for i = 0 to width - 1 do
    let s, c = full_adder g a.(i) (Aig.Lit.neg b.(i)) !carry in
    out.(i) <- s;
    carry := c
  done;
  (out, !carry)

let geq g a b =
  let width = max (Array.length a) (Array.length b) in
  let _, ok = sub g (resize a ~width) (resize b ~width) in
  ok

let shl v n = Array.append (Array.make n Aig.Lit.const_false) v

let mux g sel a b =
  if Array.length a <> Array.length b then invalid_arg "Vecops.mux: width mismatch";
  Array.map2 (fun x y -> Aig.Network.add_mux g sel x y) a b

let mul g a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let acc = ref (const ~width:(la + lb) 0) in
    for j = 0 to lb - 1 do
      let pp = Array.map (fun ai -> Aig.Network.add_and g ai b.(j)) a in
      acc := resize (add g !acc (resize (shl pp j) ~width:(la + lb))) ~width:(la + lb)
    done;
    !acc
  end

let outputs g v = Array.iter (fun l -> Aig.Network.add_po g l) v
