(** Restoring integer divider.

    [divide ~bits] takes a [bits]-bit dividend and divisor and produces the
    [bits]-bit quotient followed by the [bits]-bit remainder.  Division by
    zero yields an all-ones quotient and the dividend as remainder (the
    conventional hardware behaviour of an unguarded restoring divider is
    normalised here for testability).  The circuit is deep — one
    subtract/mux stage per quotient bit — which makes it a good stand-in
    for the paper's "hard deep arithmetic" category alongside sqrt. *)

val divide : bits:int -> Aig.Network.t
