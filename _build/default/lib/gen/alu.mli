(** A small ALU: two operands, a 3-bit opcode, one result word plus
    carry/zero flags — the mixed control-and-datapath shape typical of the
    IWLS control benchmarks.

    Opcodes: 0 ADD, 1 SUB, 2 AND, 3 OR, 4 XOR, 5 shift-left-1,
    6 logical-shift-right-1, 7 pass-through A. *)

val alu : bits:int -> Aig.Network.t
