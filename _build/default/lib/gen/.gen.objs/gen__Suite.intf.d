lib/gen/suite.mli: Aig
