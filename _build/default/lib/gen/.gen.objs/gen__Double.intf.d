lib/gen/double.mli: Aig
