lib/gen/arith.ml: Aig Array Float List Vecops
