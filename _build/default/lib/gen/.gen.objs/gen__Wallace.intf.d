lib/gen/wallace.mli: Aig
