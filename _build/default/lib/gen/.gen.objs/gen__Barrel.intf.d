lib/gen/barrel.mli: Aig
