lib/gen/barrel.ml: Aig Array Vecops
