lib/gen/alu.ml: Aig Array Vecops
