lib/gen/control.mli: Aig
