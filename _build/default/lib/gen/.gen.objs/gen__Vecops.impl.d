lib/gen/vecops.ml: Aig Array
