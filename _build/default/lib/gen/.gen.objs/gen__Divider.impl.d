lib/gen/divider.ml: Aig Array Vecops
