lib/gen/suite.ml: Aig Arith Control Double List Opt
