lib/gen/alu.mli: Aig
