lib/gen/divider.mli: Aig
