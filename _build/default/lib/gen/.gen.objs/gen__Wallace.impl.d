lib/gen/wallace.ml: Aig Array List Vecops
