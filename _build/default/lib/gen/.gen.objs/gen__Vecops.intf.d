lib/gen/vecops.mli: Aig
