lib/gen/control.ml: Aig Array Float List Sim Vecops
