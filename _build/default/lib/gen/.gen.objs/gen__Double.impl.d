lib/gen/double.ml: Aig Array
