let voter ~n =
  let g = Aig.Network.create () in
  let xs = Vecops.inputs g n in
  (* Popcount by layered full-adder reduction of equal-weight columns. *)
  let rec reduce (columns : Aig.Lit.t list array) =
    if Array.for_all (fun c -> List.length c <= 1) columns then
      Array.map (function [ l ] -> l | _ -> Aig.Lit.const_false) columns
    else begin
      let next = Array.make (Array.length columns + 1) [] in
      Array.iteri
        (fun w col ->
          let rec take = function
            | a :: b :: c :: rest ->
                let s, cy = Vecops.full_adder g a b c in
                next.(w) <- s :: next.(w);
                next.(w + 1) <- cy :: next.(w + 1);
                take rest
            | [ a; b ] ->
                let s, cy = Vecops.full_adder g a b Aig.Lit.const_false in
                next.(w) <- s :: next.(w);
                next.(w + 1) <- cy :: next.(w + 1)
            | [ a ] -> next.(w) <- a :: next.(w)
            | [] -> ()
          in
          take col)
        columns;
      reduce next
    end
  in
  let count = reduce [| Array.to_list xs |] in
  let majority = Vecops.geq g count (Vecops.const ~width:(Array.length count) ((n / 2) + 1)) in
  Aig.Network.add_po g majority;
  g

let regfile ~regs ~width =
  let g = Aig.Network.create () in
  let abits = max 1 (int_of_float (ceil (Float.log2 (float_of_int regs)))) in
  let waddr = Vecops.inputs g abits in
  let raddr = Vecops.inputs g abits in
  let wdata = Vecops.inputs g width in
  let wen = Aig.Network.add_pi g in
  let state = Array.init regs (fun _ -> Vecops.inputs g width) in
  (* One-hot decode. *)
  let decode addr i =
    let sel = ref Aig.Lit.const_true in
    Array.iteri
      (fun k bit ->
        let want = (i lsr k) land 1 = 1 in
        sel := Aig.Network.add_and g !sel (Aig.Lit.xor_compl bit (not want)))
      addr;
    !sel
  in
  (* Next state of each register and the read port. *)
  for i = 0 to regs - 1 do
    let wsel = Aig.Network.add_and g (decode waddr i) wen in
    Vecops.outputs g (Vecops.mux g wsel wdata state.(i))
  done;
  let rdata = ref (Vecops.const ~width 0) in
  for i = 0 to regs - 1 do
    let rsel = decode raddr i in
    let masked = Array.map (fun b -> Aig.Network.add_and g b rsel) state.(i) in
    rdata := Array.map2 (fun a b -> Aig.Network.add_or g a b) !rdata masked
  done;
  Vecops.outputs g !rdata;
  g

let display ~hbits ~vbits =
  let g = Aig.Network.create () in
  let h = Vecops.inputs g hbits and v = Vecops.inputs g vbits in
  let h_active = Vecops.inputs g hbits and h_sync_start = Vecops.inputs g hbits in
  let v_active = Vecops.inputs g vbits and v_sync_start = Vecops.inputs g vbits in
  let rgb = Vecops.inputs g 12 in
  let h_vis = Aig.Lit.neg (Vecops.geq g h h_active) in
  let v_vis = Aig.Lit.neg (Vecops.geq g v v_active) in
  let visible = Aig.Network.add_and g h_vis v_vis in
  let hsync = Vecops.geq g h h_sync_start in
  let vsync = Vecops.geq g v v_sync_start in
  Aig.Network.add_po g hsync;
  Aig.Network.add_po g vsync;
  Aig.Network.add_po g (Aig.Lit.neg visible);
  (* Pixel outputs gated by visibility; checkerboard pattern mixed in. *)
  let checker = Aig.Network.add_xor g h.(0) v.(0) in
  Array.iter
    (fun c ->
      let px = Aig.Network.add_mux g checker c (Aig.Lit.neg c) in
      Aig.Network.add_po g (Aig.Network.add_and g px visible))
    rgb;
  (* Line address: v * 2^hbits + h as simple concatenation plus an adder
     stage for realism. *)
  let addr = Vecops.add g (Array.append (Vecops.const ~width:hbits 0) v) (Vecops.resize h ~width:(hbits + vbits)) in
  Vecops.outputs g addr;
  g

let random_logic ~pis ~nodes ~pos ~seed =
  let g = Aig.Network.create () in
  let rng = Sim.Rng.create ~seed in
  let lits = ref [] in
  for _ = 1 to pis do
    lits := Aig.Network.add_pi g :: !lits
  done;
  let arr = ref (Array.of_list !lits) in
  for _ = 1 to nodes do
    let a = !arr.(Sim.Rng.int rng (Array.length !arr)) in
    let b = !arr.(Sim.Rng.int rng (Array.length !arr)) in
    let a = Aig.Lit.xor_compl a (Sim.Rng.bool rng) in
    let b = Aig.Lit.xor_compl b (Sim.Rng.bool rng) in
    let l = Aig.Network.add_and g a b in
    if Aig.Lit.node l > 0 then arr := Array.append !arr [| l |]
  done;
  let n = Array.length !arr in
  for _ = 1 to pos do
    Aig.Network.add_po g
      (Aig.Lit.xor_compl !arr.(Sim.Rng.int rng n) (Sim.Rng.bool rng))
  done;
  g
