(** Barrel shifter and rotator — logarithmic mux-stage structures, the
    classic "wide but shallow" datapath shape (EPFL has a 128-bit barrel
    shifter in its random/control set). *)

(** [shifter ~bits ~rotate] shifts (or rotates) a [bits]-bit word left by a
    [log2 bits]-bit amount; [bits] must be a power of two.  PIs: data then
    amount; POs: the shifted word. *)
val shifter : bits:int -> rotate:bool -> Aig.Network.t
