(** Word-level circuit construction helpers over arrays of AIG literals
    (least significant bit first). *)

type vec = Aig.Lit.t array

(** [inputs g n] appends [n] fresh PIs. *)
val inputs : Aig.Network.t -> int -> vec

(** Constant vector of the integer's low [width] bits. *)
val const : width:int -> int -> vec

(** Zero-extend / truncate to [width]. *)
val resize : vec -> width:int -> vec

(** Full adder: returns (sum, carry). *)
val full_adder : Aig.Network.t -> Aig.Lit.t -> Aig.Lit.t -> Aig.Lit.t -> Aig.Lit.t * Aig.Lit.t

(** Ripple-carry addition; result is one bit wider than the widest input. *)
val add : Aig.Network.t -> vec -> vec -> vec

(** [sub g a b] is the two's-complement difference truncated to the width
    of [a], together with the no-borrow flag ([a >= b] for unsigned
    operands of equal width). *)
val sub : Aig.Network.t -> vec -> vec -> vec * Aig.Lit.t

(** Unsigned comparison [a >= b]. *)
val geq : Aig.Network.t -> vec -> vec -> Aig.Lit.t

(** Constant left shift (zero fill), keeping all bits. *)
val shl : vec -> int -> vec

(** Bitwise 2-to-1 multiplexer: [sel ? a : b], on equal widths. *)
val mux : Aig.Network.t -> Aig.Lit.t -> vec -> vec -> vec

(** Array multiplier; result width is [len a + len b]. *)
val mul : Aig.Network.t -> vec -> vec -> vec

(** Register the vector's bits as POs, LSB first. *)
val outputs : Aig.Network.t -> vec -> unit
