let divide ~bits =
  let g = Aig.Network.create () in
  let dividend = Vecops.inputs g bits and divisor = Vecops.inputs g bits in
  let w = bits + 1 in
  let divisor_w = Vecops.resize divisor ~width:w in
  (* Restoring long division, MSB first. *)
  let rem = ref (Vecops.const ~width:w 0) in
  let quot = Array.make bits Aig.Lit.const_false in
  for i = bits - 1 downto 0 do
    (* rem = (rem << 1) | dividend[i] *)
    let shifted = Vecops.resize (Vecops.shl !rem 1) ~width:w in
    shifted.(0) <- dividend.(i);
    let diff, fits = Vecops.sub g shifted divisor_w in
    quot.(i) <- fits;
    rem := Vecops.mux g fits diff shifted
  done;
  (* Division by zero: force quotient to all ones and remainder to the
     dividend, making the function total and easily testable. *)
  let zero_div =
    Array.fold_left
      (fun acc b -> Aig.Network.add_and g acc (Aig.Lit.neg b))
      Aig.Lit.const_true divisor
  in
  let ones = Vecops.const ~width:bits (-1) in
  let quot = Vecops.mux g zero_div ones quot in
  let rem =
    Vecops.mux g zero_div
      (Vecops.resize dividend ~width:bits)
      (Vecops.resize !rem ~width:bits)
  in
  Vecops.outputs g quot;
  Vecops.outputs g rem;
  g
