let multiplier ~bits =
  let g = Aig.Network.create () in
  let a = Vecops.inputs g bits and b = Vecops.inputs g bits in
  let width = 2 * bits in
  (* Partial products arranged by output column weight. *)
  let columns = Array.make width [] in
  for i = 0 to bits - 1 do
    for j = 0 to bits - 1 do
      let pp = Aig.Network.add_and g a.(i) b.(j) in
      columns.(i + j) <- pp :: columns.(i + j)
    done
  done;
  (* Carry-save reduction: repeatedly compress columns with full/half
     adders until every column holds at most two bits. *)
  let rec compress columns =
    if Array.for_all (fun c -> List.length c <= 2) columns then columns
    else begin
      let next = Array.make width [] in
      Array.iteri
        (fun w col ->
          let rec take = function
            | x :: y :: z :: rest ->
                let s, c = Vecops.full_adder g x y z in
                next.(w) <- s :: next.(w);
                if w + 1 < width then next.(w + 1) <- c :: next.(w + 1);
                take rest
            | [ x; y ] ->
                let s, c = Vecops.full_adder g x y Aig.Lit.const_false in
                next.(w) <- s :: next.(w);
                if w + 1 < width then next.(w + 1) <- c :: next.(w + 1);
                take []
            | [ x ] -> next.(w) <- x :: next.(w)
            | [] -> ()
          in
          take col)
        columns;
      compress next
    end
  in
  let columns = compress columns in
  (* Final carry-propagate addition of the two remaining rows. *)
  let row k =
    Array.init width (fun w ->
        match List.nth_opt columns.(w) k with
        | Some l -> l
        | None -> Aig.Lit.const_false)
  in
  let sum = Vecops.add g (row 0) (row 1) in
  Vecops.outputs g (Array.sub sum 0 width);
  g
