let shifter ~bits ~rotate =
  if bits land (bits - 1) <> 0 || bits < 2 then
    invalid_arg "Barrel.shifter: bits must be a power of two";
  let g = Aig.Network.create () in
  let data = Vecops.inputs g bits in
  let stages =
    let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
    log2 bits
  in
  let amount = Vecops.inputs g stages in
  let cur = ref data in
  for s = 0 to stages - 1 do
    let k = 1 lsl s in
    let shifted =
      Array.init bits (fun i ->
          if i >= k then !cur.(i - k)
          else if rotate then !cur.(bits + i - k)
          else Aig.Lit.const_false)
    in
    cur := Vecops.mux g amount.(s) shifted !cur
  done;
  Vecops.outputs g !cur;
  g
