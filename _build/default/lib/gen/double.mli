(** ABC's [double] command: enlarge a benchmark by instantiating it twice
    on disjoint fresh PIs and concatenating the outputs — the method the
    paper (and earlier parallel-synthesis work) uses to scale circuits. *)

(** One doubling. *)
val double : Aig.Network.t -> Aig.Network.t

(** [times n g] applies {!double} [n] times (size grows by [2^n]). *)
val times : int -> Aig.Network.t -> Aig.Network.t
