(** An ABC-style command interpreter over the whole toolkit.

    The interpreter keeps a {e current network} plus a store of named
    networks, and executes line-oriented commands — reading/generating
    circuits, running optimisation passes, building miters and invoking the
    checkers.  It backs the [simsweep-shell] binary and is a plain library
    so scripts are unit-testable.

    Commands (see [exec _ "help"] for the same list):
    {v
    read FILE              load an AIGER file as the current network
    write FILE             write the current network (.aig = binary)
    gen FAMILY [N]         generate a circuit (adder, multiplier, wallace,
                           square, sqrt, hypot, log2, sin, voter, divider,
                           barrel, alu, regfile, display); N = width/size
    strash                 sweep dangling nodes
    balance | rewrite | refactor | xorflip | resyn2 | light
                           optimisation passes
    double [N]             enlarge N times (default 1)
    store NAME             save the current network under NAME
    load NAME              make a stored network current
    miter NAME             replace current with miter(current, NAME)
    cec [sim|sat|bdd|portfolio|combined|partitioned]
                           check the current miter (default combined)
    certify                check with certificate generation + validation
    sim N                  print N random simulation vectors
    stats                  print size statistics
    dot FILE               write Graphviz
    help                   this list
    v}  *)

type state

(** Fresh interpreter state.  When [pool] is omitted a private pool is
    created lazily and shut down by [Gc] finalisation at exit. *)
val create : ?pool:Par.Pool.t -> unit -> state

(** [exec state line] runs one command; returns its printable output or an
    error message.  Empty lines and [#] comments yield [Ok ""]. *)
val exec : state -> string -> (string, string) result

(** Run a whole script (newline- or [;]-separated), stopping at the first
    error; returns the concatenated output. *)
val exec_script : state -> string -> (string, string) result
