lib/shell/command.mli: Par
