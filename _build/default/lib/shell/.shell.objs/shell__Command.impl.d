lib/shell/command.ml: Aig Array Bdd Buffer Format Gen Hashtbl Lazy List Lutmap Opt Par Printf Sat Sim Simsweep String
