exception Parse_error of string

let to_string g =
  let buf = Buffer.create 4096 in
  let n_pi = Network.num_pis g and n_po = Network.num_pos g in
  let n_and = Network.num_ands g in
  (* Renumber: PIs take variables 1..I, ANDs follow in topological order. *)
  let var_of = Array.make (Network.num_nodes g) 0 in
  let next = ref 1 in
  for i = 0 to n_pi - 1 do
    var_of.(Network.pi g i) <- !next;
    incr next
  done;
  Network.iter_ands g (fun n ->
      var_of.(n) <- !next;
      incr next);
  let lit_of l = (2 * var_of.(Lit.node l)) lor Bool.to_int (Lit.is_compl l) in
  Buffer.add_string buf
    (Printf.sprintf "aag %d %d 0 %d %d\n" (!next - 1) n_pi n_po n_and);
  for i = 0 to n_pi - 1 do
    Buffer.add_string buf (Printf.sprintf "%d\n" (2 * var_of.(Network.pi g i)))
  done;
  Array.iter (fun l -> Buffer.add_string buf (Printf.sprintf "%d\n" (lit_of l))) (Network.pos g);
  Network.iter_ands g (fun n ->
      Buffer.add_string buf
        (Printf.sprintf "%d %d %d\n" (2 * var_of.(n))
           (lit_of (Network.fanin0 g n))
           (lit_of (Network.fanin1 g n))));
  Buffer.contents buf

let to_binary_string g =
  let buf = Buffer.create 4096 in
  let n_pi = Network.num_pis g and n_po = Network.num_pos g in
  let n_and = Network.num_ands g in
  let var_of = Array.make (Network.num_nodes g) 0 in
  let next = ref 1 in
  for i = 0 to n_pi - 1 do
    var_of.(Network.pi g i) <- !next;
    incr next
  done;
  Network.iter_ands g (fun n ->
      var_of.(n) <- !next;
      incr next);
  let lit_of l = (2 * var_of.(Lit.node l)) lor Bool.to_int (Lit.is_compl l) in
  Buffer.add_string buf
    (Printf.sprintf "aig %d %d 0 %d %d\n" (!next - 1) n_pi n_po n_and);
  (* Inputs are implicit in the binary format. *)
  Array.iter
    (fun l -> Buffer.add_string buf (Printf.sprintf "%d\n" (lit_of l)))
    (Network.pos g);
  let emit_leb x =
    let x = ref x in
    while !x >= 0x80 do
      Buffer.add_char buf (Char.chr ((!x land 0x7f) lor 0x80));
      x := !x lsr 7
    done;
    Buffer.add_char buf (Char.chr !x)
  in
  Network.iter_ands g (fun n ->
      let lhs = 2 * var_of.(n) in
      let a = lit_of (Network.fanin0 g n) and b = lit_of (Network.fanin1 g n) in
      let rhs0 = max a b and rhs1 = min a b in
      assert (lhs > rhs0);
      emit_leb (lhs - rhs0);
      emit_leb (rhs0 - rhs1));
  Buffer.contents buf

let of_binary_string s =
  (* Parse the header and output lines (text), then the LEB128 gates. *)
  let len = String.length s in
  let pos = ref 0 in
  let read_line () =
    let start = !pos in
    while !pos < len && s.[!pos] <> '\n' do
      incr pos
    done;
    if !pos >= len then raise (Parse_error "truncated binary file");
    let line = String.sub s start (!pos - start) in
    incr pos;
    line
  in
  match String.split_on_char ' ' (String.trim (read_line ())) with
  | [ "aig"; m; i; l; o; a ] ->
      let int_of name v =
        match int_of_string_opt v with
        | Some x when x >= 0 -> x
        | _ -> raise (Parse_error ("bad " ^ name ^ " field"))
      in
      let _m = int_of "M" m in
      let n_pi = int_of "I" i in
      let n_latch = int_of "L" l in
      let n_po = int_of "O" o in
      let n_and = int_of "A" a in
      if n_latch <> 0 then raise (Parse_error "latches are not supported");
      let g = Network.create ~capacity:(n_pi + n_and + 2) () in
      let lits = Array.make (n_pi + n_and + 1) Lit.const_false in
      for v = 1 to n_pi do
        lits.(v) <- Network.add_pi g
      done;
      let out_lits = Array.init n_po (fun _ -> int_of "output" (String.trim (read_line ()))) in
      let read_leb () =
        let x = ref 0 and shift = ref 0 and fin = ref false in
        while not !fin do
          if !pos >= len then raise (Parse_error "truncated delta section");
          let b = Char.code s.[!pos] in
          incr pos;
          x := !x lor ((b land 0x7f) lsl !shift);
          shift := !shift + 7;
          if b land 0x80 = 0 then fin := true
        done;
        !x
      in
      let lit_of filelit =
        let v = filelit lsr 1 in
        if v > n_pi + n_and then raise (Parse_error "literal out of range");
        Lit.xor_compl lits.(v) (filelit land 1 = 1)
      in
      for k = 0 to n_and - 1 do
        let lhs = 2 * (n_pi + 1 + k) in
        let d0 = read_leb () in
        let d1 = read_leb () in
        let rhs0 = lhs - d0 in
        let rhs1 = rhs0 - d1 in
        if rhs0 < 0 || rhs1 < 0 || rhs0 >= lhs then
          raise (Parse_error "invalid delta encoding");
        lits.(n_pi + 1 + k) <- Network.add_and g (lit_of rhs0) (lit_of rhs1)
      done;
      Array.iter (fun ol -> Network.add_po g (lit_of ol)) out_lits;
      g
  | _ -> raise (Parse_error "bad binary header")

let of_ascii_string s =
  let lines = String.split_on_char '\n' s in
  let lines = List.filter (fun l -> String.trim l <> "") lines in
  match lines with
  | [] -> raise (Parse_error "empty file")
  | header :: rest -> (
      match String.split_on_char ' ' (String.trim header) with
      | [ "aag"; m; i; l; o; a ] -> (
          let int_of name s =
            match int_of_string_opt s with
            | Some v when v >= 0 -> v
            | _ -> raise (Parse_error ("bad " ^ name ^ " field"))
          in
          let _m = int_of "M" m in
          let n_pi = int_of "I" i in
          let n_latch = int_of "L" l in
          let n_po = int_of "O" o in
          let n_and = int_of "A" a in
          if n_latch <> 0 then raise (Parse_error "latches are not supported");
          let g = Network.create ~capacity:(n_pi + n_and + 2) () in
          (* Map from file variable to our literal. *)
          let map = Hashtbl.create (n_pi + n_and + 1) in
          Hashtbl.replace map 0 Lit.const_false;
          let lit_of filelit =
            let v = filelit lsr 1 in
            match Hashtbl.find_opt map v with
            | Some l -> Lit.xor_compl l (filelit land 1 = 1)
            | None -> raise (Parse_error (Printf.sprintf "undefined literal %d" filelit))
          in
          let rest = Array.of_list rest in
          if Array.length rest < n_pi + n_po + n_and then
            raise (Parse_error "truncated file");
          for k = 0 to n_pi - 1 do
            let filelit = int_of "input" (String.trim rest.(k)) in
            if filelit land 1 = 1 then raise (Parse_error "complemented input definition");
            Hashtbl.replace map (filelit lsr 1) (Network.add_pi g)
          done;
          (* AND definitions come after outputs in the file, but may be
             referenced by the output section; parse ANDs first. *)
          for k = 0 to n_and - 1 do
            let line = String.trim rest.(n_pi + n_po + k) in
            match String.split_on_char ' ' line with
            | [ lhs; rhs0; rhs1 ] ->
                let lhs = int_of "and lhs" lhs in
                if lhs land 1 = 1 then raise (Parse_error "complemented and definition");
                let l0 = lit_of (int_of "and rhs0" rhs0) in
                let l1 = lit_of (int_of "and rhs1" rhs1) in
                Hashtbl.replace map (lhs lsr 1) (Network.add_and g l0 l1)
            | _ -> raise (Parse_error ("bad and line: " ^ line))
          done;
          for k = 0 to n_po - 1 do
            let filelit = int_of "output" (String.trim rest.(n_pi + k)) in
            Network.add_po g (lit_of filelit)
          done;
          g)
      | _ -> raise (Parse_error "bad header"))

let of_string s =
  if String.length s >= 4 && String.sub s 0 4 = "aig " then of_binary_string s
  else of_ascii_string s

let write_file path g =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      if Filename.check_suffix path ".aig" then
        output_string oc (to_binary_string g)
      else output_string oc (to_string g))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_string (really_input_string ic n))
