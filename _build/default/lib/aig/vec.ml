type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 16) () = { data = Array.make (max 1 capacity) 0; len = 0 }
let length v = v.len

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get: index out of range";
  Array.unsafe_get v.data i

let set v i x =
  if i < 0 || i >= v.len then invalid_arg "Vec.set: index out of range";
  Array.unsafe_set v.data i x

let push v x =
  if v.len = Array.length v.data then begin
    let data = Array.make (2 * v.len) 0 in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end;
  Array.unsafe_set v.data v.len x;
  v.len <- v.len + 1

let clear v = v.len <- 0
let to_array v = Array.sub v.data 0 v.len
let of_array a = { data = Array.copy a; len = Array.length a }

let iter f v =
  for i = 0 to v.len - 1 do
    f (Array.unsafe_get v.data i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i (Array.unsafe_get v.data i)
  done
