(** Miter construction (Brand).

    The miter of two networks with matching PI/PO interfaces shares the PIs,
    strashes both circuits into one graph and XORs corresponding PO pairs;
    the two circuits are equivalent iff every miter output is constant
    false. *)

(** [append dst src ~pi_map] copies [src] into [dst] mapping the [i]-th PI
    of [src] to literal [pi_map.(i)]; returns the literals of the [src]
    outputs in [dst].  Structural hashing in [dst] applies. *)
val append : Network.t -> Network.t -> pi_map:Lit.t array -> Lit.t array

(** [build g1 g2] is the miter network of [g1] and [g2].
    Raises [Invalid_argument] when the interfaces disagree. *)
val build : Network.t -> Network.t -> Network.t

(** [solved g] is true when every PO literal of [g] is constant false —
    i.e. the miter is proved. *)
val solved : Network.t -> bool

(** Outputs not yet reduced to constant false. *)
val unsolved_outputs : Network.t -> int list
