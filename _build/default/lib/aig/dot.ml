let to_string ?(max_nodes = 2000) g =
  if Network.num_nodes g > max_nodes then
    invalid_arg "Dot.to_string: network too large to plot";
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph aig {\n  rankdir=BT;\n";
  Network.iter_nodes g (fun n ->
      if Network.is_pi g n then
        Buffer.add_string buf
          (Printf.sprintf "  n%d [shape=box,label=\"x%d\"];\n" n
             (Network.pi_index g n))
      else if Network.is_and g n then begin
        Buffer.add_string buf
          (Printf.sprintf "  n%d [shape=circle,label=\"%d\"];\n" n n);
        List.iter
          (fun f ->
            Buffer.add_string buf
              (Printf.sprintf "  n%d -> n%d%s;\n" (Lit.node f) n
                 (if Lit.is_compl f then " [style=dashed]" else "")))
          [ Network.fanin0 g n; Network.fanin1 g n ]
      end);
  Array.iteri
    (fun i l ->
      Buffer.add_string buf
        (Printf.sprintf "  o%d [shape=doublecircle,label=\"y%d\"];\n" i i);
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> o%d%s;\n" (Lit.node l) i
           (if Lit.is_compl l then " [style=dashed]" else "")))
    (Network.pos g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file ?max_nodes path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?max_nodes g))
