(** And-Inverter Graph.

    Nodes are numbered densely; node 0 is the constant-false node, nodes
    with fanins [-1] are primary inputs, all other nodes are two-input AND
    gates over literals.  Construction maintains the invariant that fanins
    are created before their fanouts, so increasing node id is a valid
    topological order.  [add_and] performs constant propagation, fanin
    normalisation and structural hashing, so structurally identical gates
    are never duplicated. *)

type t

(** Fresh empty network. *)
val create : ?capacity:int -> unit -> t

(** Append a primary input; returns its (positive) literal. *)
val add_pi : t -> Lit.t

(** [add_and g a b] returns the literal of [a AND b], reusing an existing
    node when possible (structural hashing) and simplifying the trivial
    cases [a&0], [a&1], [a&a], [a&!a]. *)
val add_and : t -> Lit.t -> Lit.t -> Lit.t

(** Raw AND node without hashing or simplification — used only by readers
    of external files that must preserve node numbering. *)
val add_and_raw : t -> Lit.t -> Lit.t -> Lit.t

(** Derived gates, built from [add_and]. *)
val add_or : t -> Lit.t -> Lit.t -> Lit.t

val add_xor : t -> Lit.t -> Lit.t -> Lit.t
val add_mux : t -> Lit.t -> Lit.t -> Lit.t -> Lit.t

(** Register a primary output driven by the given literal. *)
val add_po : t -> Lit.t -> unit

(** Replace the driver of output [i]. *)
val set_po : t -> int -> Lit.t -> unit

val num_nodes : t -> int

(** Number of AND nodes (excludes constant and PIs). *)
val num_ands : t -> int

val num_pis : t -> int
val num_pos : t -> int

(** [pi g i] is the node id of the [i]-th primary input. *)
val pi : t -> int -> int

(** [pi_index g n] is the input position of PI node [n]. *)
val pi_index : t -> int -> int

(** Driver literal of output [i]. *)
val po : t -> int -> Lit.t

(** All output literals. *)
val pos : t -> Lit.t array

(** True when the node is a primary input. *)
val is_pi : t -> int -> bool

(** True when the node is the constant node. *)
val is_const : int -> bool

(** True when the node is an AND gate. *)
val is_and : t -> int -> bool

(** Fanin literals of an AND node. *)
val fanin0 : t -> int -> Lit.t

val fanin1 : t -> int -> Lit.t

(** Iterate node ids in topological (increasing id) order, constant and PIs
    included. *)
val iter_nodes : t -> (int -> unit) -> unit

(** Iterate only AND node ids in topological order. *)
val iter_ands : t -> (int -> unit) -> unit

(** Number of fanouts of every node (PO references count one each). *)
val fanout_counts : t -> int array

(** Structural levels: PIs and constant are level 0, an AND is
    [1 + max level(fanins)]. *)
val levels : t -> int array

(** Level of the network: maximum PO driver level. *)
val depth : t -> int

(** Nodes of each level, for level-wise parallel processing:
    [batches.(l)] lists the AND node ids at level [l] (level 0 omitted). *)
val level_batches : t -> int array array

(** Deep copy. *)
val copy : t -> t

(** Invariant checker used by the tests: fanins precede fanouts, fanin ids
    are in range, PO drivers exist. *)
val check : t -> (unit, string) result
