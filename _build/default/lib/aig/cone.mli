(** Logic cones and simulation windows (paper §III-B1).

    A window for roots [n, m] and input set [I] contains the intersection of
    the TFIs of the roots with the TFOs of the inputs, plus the roots — i.e.
    every AND node on a path from an input to a root.  Extraction walks the
    TFI of the roots and stops at input nodes; when a PI (or the constant
    node) outside [I] is reached, [I] is not a valid common cut and the
    extraction reports failure. *)

type window = {
  inputs : int array;  (** input node ids, sorted increasingly *)
  nodes : int array;  (** AND nodes of the window in increasing-id (topological) order, roots included *)
}

(** [extract g ~roots ~inputs] builds the window, or [None] when some path
    from the roots escapes the input boundary. *)
val extract : Network.t -> roots:int array -> inputs:int array -> window option

(** TFI node set of the given roots (all nodes, including PIs), as a
    membership array of size [num_nodes]. *)
val tfi : Network.t -> roots:int array -> bool array
