lib/aig/dot.ml: Array Buffer Fun List Lit Network Printf
