lib/aig/cone.ml: Array Hashtbl Lit Network
