lib/aig/reduce.ml: Array Lit Network
