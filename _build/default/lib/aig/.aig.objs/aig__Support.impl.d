lib/aig/support.ml: Array Hashtbl Lit Network
