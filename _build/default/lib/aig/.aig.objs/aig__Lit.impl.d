lib/aig/lit.ml: Bool Format
