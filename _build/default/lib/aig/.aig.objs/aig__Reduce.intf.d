lib/aig/reduce.mli: Lit Network
