lib/aig/miter.ml: Array Lit Network
