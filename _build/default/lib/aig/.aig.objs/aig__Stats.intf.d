lib/aig/stats.mli: Format Network
