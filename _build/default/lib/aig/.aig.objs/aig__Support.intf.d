lib/aig/support.mli: Network
