lib/aig/network.mli: Lit
