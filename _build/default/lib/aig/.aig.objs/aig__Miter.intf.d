lib/aig/miter.mli: Lit Network
