lib/aig/aiger_io.mli: Network
