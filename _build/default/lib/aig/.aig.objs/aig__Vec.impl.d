lib/aig/vec.ml: Array
