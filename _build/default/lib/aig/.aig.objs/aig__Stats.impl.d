lib/aig/stats.ml: Format Network
