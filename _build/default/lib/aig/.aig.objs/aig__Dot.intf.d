lib/aig/dot.mli: Network
