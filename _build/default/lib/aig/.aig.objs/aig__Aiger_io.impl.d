lib/aig/aiger_io.ml: Array Bool Buffer Char Filename Fun Hashtbl List Lit Network Printf String
