lib/aig/network.ml: Array Hashtbl Lit Printf Vec
