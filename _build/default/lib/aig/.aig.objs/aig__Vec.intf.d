lib/aig/vec.mli:
