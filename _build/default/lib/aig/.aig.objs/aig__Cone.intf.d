lib/aig/cone.mli: Network
