(** Miter reduction: merge proved-equivalent nodes and sweep dangling logic.

    This is the miter manager's reduction step (paper §III-A): after a batch
    of pairs is proved, every non-representative node is replaced by (a
    possibly complemented literal of) its representative and the network is
    rebuilt, dropping logic no longer reachable from the POs. *)

type result = {
  network : Network.t;
  node_map : Lit.t array;
      (** [node_map.(old_id)] is the literal implementing the old node in
          the new network, or [-1] when the node was swept away. *)
}

(** [apply g ~repl] rebuilds [g] after substitution.  [repl.(n) = Some l]
    replaces node [n] by literal [l] (referring to the {e old} graph);
    replacement chains are followed.  Representative nodes must have
    smaller ids than the nodes they replace. *)
val apply : Network.t -> repl:Lit.t option array -> result

(** [sweep g] is [apply g] with no replacements: just removes dangling
    nodes. *)
val sweep : Network.t -> result
