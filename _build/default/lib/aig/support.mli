(** Structural support computation.

    The engine only ever needs supports up to a threshold (the phase
    parameters [k_P], [k_p], [k_g]), so the main entry point computes, for
    every node, either the exact support set or the fact that it exceeds a
    cap — in one bottom-up pass with small sorted arrays. *)

(** [capped g ~cap] returns per-node supports as sorted arrays of PI node
    ids; [None] marks nodes whose support exceeds [cap]. *)
val capped : Network.t -> cap:int -> int array option array

(** [size_capped g ~cap] returns per-node support sizes, [-1] when the
    support exceeds [cap]. *)
val size_capped : Network.t -> cap:int -> int array

(** Exact support of one node, by cone traversal (sorted PI node ids). *)
val exact : Network.t -> int -> int array

(** Sorted union of two sorted arrays; [None] when the union exceeds
    [cap]. *)
val union_capped : cap:int -> int array -> int array -> int array option
