let union_capped ~cap a b =
  let la = Array.length a and lb = Array.length b in
  let buf = Array.make (min (la + lb) (cap + 1)) 0 in
  let rec go i j k =
    if k > cap then None
    else if i = la && j = lb then Some (Array.sub buf 0 k)
    else if k = Array.length buf then None
    else if j = lb || (i < la && a.(i) < b.(j)) then begin
      buf.(k) <- a.(i);
      go (i + 1) j (k + 1)
    end
    else if i = la || b.(j) < a.(i) then begin
      buf.(k) <- b.(j);
      go i (j + 1) (k + 1)
    end
    else begin
      buf.(k) <- a.(i);
      go (i + 1) (j + 1) (k + 1)
    end
  in
  go 0 0 0

let capped g ~cap =
  let n = Network.num_nodes g in
  let supports = Array.make n None in
  supports.(0) <- Some [||];
  Network.iter_nodes g (fun id ->
      if Network.is_pi g id then supports.(id) <- Some [| id |]
      else if Network.is_and g id then begin
        let s0 = supports.(Lit.node (Network.fanin0 g id)) in
        let s1 = supports.(Lit.node (Network.fanin1 g id)) in
        supports.(id) <-
          (match (s0, s1) with
          | Some a, Some b -> union_capped ~cap a b
          | _ -> None)
      end);
  supports

let size_capped g ~cap =
  let supports = capped g ~cap in
  Array.map (function Some a -> Array.length a | None -> -1) supports

let exact g root =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  let rec dfs n =
    if not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      if Network.is_pi g n then acc := n :: !acc
      else if Network.is_and g n then begin
        dfs (Lit.node (Network.fanin0 g n));
        dfs (Lit.node (Network.fanin1 g n))
      end
    end
  in
  dfs root;
  let a = Array.of_list !acc in
  Array.sort compare a;
  a
