(** Growable int vector used throughout the AIG package. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val get : t -> int -> int
val set : t -> int -> int -> unit
val push : t -> int -> unit
val clear : t -> unit
val to_array : t -> int array
val of_array : int array -> t
val iter : (int -> unit) -> t -> unit
val iteri : (int -> int -> unit) -> t -> unit
