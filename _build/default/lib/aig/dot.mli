(** Graphviz export for small networks — debugging aid. *)

(** [to_string ?max_nodes g] renders the AIG as a [dot] digraph: PIs as
    boxes, ANDs as circles, POs as double circles; complemented edges are
    dashed.  Raises [Invalid_argument] when the network exceeds
    [max_nodes] (default 2000) — plotting bigger graphs is never useful. *)
val to_string : ?max_nodes:int -> Network.t -> string

val write_file : ?max_nodes:int -> string -> Network.t -> unit
