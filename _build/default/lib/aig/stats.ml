type t = { pis : int; pos : int; ands : int; depth : int }

let of_network g =
  {
    pis = Network.num_pis g;
    pos = Network.num_pos g;
    ands = Network.num_ands g;
    depth = Network.depth g;
  }

let pp fmt t =
  Format.fprintf fmt "pi=%d po=%d and=%d depth=%d" t.pis t.pos t.ands t.depth
