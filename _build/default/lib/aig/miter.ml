let append dst src ~pi_map =
  if Array.length pi_map <> Network.num_pis src then
    invalid_arg "Miter.append: pi_map arity mismatch";
  let map = Array.make (Network.num_nodes src) (-1) in
  map.(0) <- Lit.const_false;
  Network.iter_nodes src (fun n ->
      if Network.is_pi src n then map.(n) <- pi_map.(Network.pi_index src n)
      else if Network.is_and src n then begin
        let f0 = Network.fanin0 src n and f1 = Network.fanin1 src n in
        let m0 = Lit.xor_compl map.(Lit.node f0) (Lit.is_compl f0) in
        let m1 = Lit.xor_compl map.(Lit.node f1) (Lit.is_compl f1) in
        map.(n) <- Network.add_and dst m0 m1
      end);
  Array.map
    (fun l -> Lit.xor_compl map.(Lit.node l) (Lit.is_compl l))
    (Network.pos src)

let build g1 g2 =
  if Network.num_pis g1 <> Network.num_pis g2 then
    invalid_arg "Miter.build: PI count mismatch";
  if Network.num_pos g1 <> Network.num_pos g2 then
    invalid_arg "Miter.build: PO count mismatch";
  let m = Network.create ~capacity:(Network.num_nodes g1 + Network.num_nodes g2) () in
  let pi_map = Array.init (Network.num_pis g1) (fun _ -> Network.add_pi m) in
  let out1 = append m g1 ~pi_map in
  let out2 = append m g2 ~pi_map in
  Array.iteri (fun i o1 -> Network.add_po m (Network.add_xor m o1 out2.(i))) out1;
  m

let solved g =
  let ok = ref true in
  Array.iter (fun l -> if l <> Lit.const_false then ok := false) (Network.pos g);
  !ok

let unsolved_outputs g =
  let acc = ref [] in
  let outs = Network.pos g in
  for i = Array.length outs - 1 downto 0 do
    if outs.(i) <> Lit.const_false then acc := i :: !acc
  done;
  !acc
