(** AIGER reader/writer for combinational networks — both the ASCII
    ([aag]) and the binary delta-encoded ([aig]) formats.

    Latches are not supported (the paper is about combinational checking);
    reading a file with latches raises [Parse_error]. *)

exception Parse_error of string

(** Serialise to the ASCII [aag] format.  Nodes are renumbered: inputs
    first, then AND gates in topological order. *)
val to_string : Network.t -> string

(** Serialise to the binary [aig] format (LEB128 fanin deltas). *)
val to_binary_string : Network.t -> string

(** Parse file contents in either format (dispatches on the header).  The
    structural hash of the resulting network may merge duplicated gates. *)
val of_string : string -> Network.t

(** [write_file path g] writes binary when [path] ends in [.aig], ASCII
    otherwise. *)
val write_file : string -> Network.t -> unit

val read_file : string -> Network.t
