(** Network statistics used by the CLIs and bench tables. *)

type t = { pis : int; pos : int; ands : int; depth : int }

val of_network : Network.t -> t
val pp : Format.formatter -> t -> unit
