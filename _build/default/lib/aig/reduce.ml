type result = { network : Network.t; node_map : Lit.t array }

let apply g ~repl =
  let n = Network.num_nodes g in
  if Array.length repl <> n then invalid_arg "Reduce.apply: repl size mismatch";
  (* Resolve replacement chains with memoisation. *)
  let resolved = Array.make n (-1) in
  let rec resolve id =
    if resolved.(id) >= 0 then resolved.(id)
    else begin
      let r =
        match repl.(id) with
        | None -> Lit.make id false
        | Some l ->
            if Lit.node l >= id then
              invalid_arg "Reduce.apply: replacement must point to a smaller id";
            Lit.xor_compl (resolve (Lit.node l)) (Lit.is_compl l)
      in
      resolved.(id) <- r;
      r
    end
  in
  let resolve_lit l = Lit.xor_compl (resolve (Lit.node l)) (Lit.is_compl l) in
  (* Mark nodes reachable from the POs through the substitution. *)
  let reachable = Array.make n false in
  reachable.(0) <- true;
  let stack = ref [] in
  let mark l =
    let id = Lit.node (resolve_lit l) in
    if not reachable.(id) then begin
      reachable.(id) <- true;
      stack := id :: !stack
    end
  in
  Array.iter mark (Network.pos g);
  let rec drain () =
    match !stack with
    | [] -> ()
    | id :: rest ->
        stack := rest;
        if Network.is_and g id then begin
          mark (Network.fanin0 g id);
          mark (Network.fanin1 g id)
        end;
        drain ()
  in
  drain ();
  (* Rebuild.  PIs are always kept so the interface is preserved. *)
  let ng = Network.create ~capacity:n () in
  let node_map = Array.make n (-1) in
  node_map.(0) <- Lit.const_false;
  Network.iter_nodes g (fun id ->
      if Network.is_pi g id then node_map.(id) <- Network.add_pi ng
      else if Network.is_and g id && reachable.(id) && repl.(id) = None then begin
        let tr l =
          let r = resolve_lit l in
          let m = node_map.(Lit.node r) in
          assert (m >= 0);
          Lit.xor_compl m (Lit.is_compl r)
        in
        node_map.(id) <-
          Network.add_and ng (tr (Network.fanin0 g id)) (tr (Network.fanin1 g id))
      end);
  (* Nodes that were replaced still get a mapping (through their
     representative) so that callers can translate old literals. *)
  Network.iter_nodes g (fun id ->
      if node_map.(id) = -1 then begin
        let r = resolve id in
        let m = node_map.(Lit.node r) in
        if m >= 0 then node_map.(id) <- Lit.xor_compl m (Lit.is_compl r)
      end);
  Array.iter
    (fun l ->
      let r = resolve_lit l in
      let m = node_map.(Lit.node r) in
      Network.add_po ng (Lit.xor_compl m (Lit.is_compl r)))
    (Network.pos g);
  { network = ng; node_map }

let sweep g = apply g ~repl:(Array.make (Network.num_nodes g) None)
