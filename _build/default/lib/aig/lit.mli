(** AIG literals: a node id together with an optional complement flag,
    packed as [2*id + complement].  Node 0 is the constant-false node, so
    literal 0 is constant false and literal 1 constant true. *)

type t = int

val const_false : t
val const_true : t

(** [make id compl] packs a literal. *)
val make : int -> bool -> t

(** Node id of a literal. *)
val node : t -> int

(** Complement flag. *)
val is_compl : t -> bool

(** Flip the complement flag. *)
val neg : t -> t

(** [xor_compl l b] complements [l] when [b] holds. *)
val xor_compl : t -> bool -> t

(** The positive (non-complemented) literal of the same node. *)
val abs : t -> t

val pp : Format.formatter -> t -> unit
